package gosmr_test

// Benchmark harness: one benchmark per figure and table of the paper's
// evaluation (regenerated on the deterministic simulator — see DESIGN.md §3
// for the experiment index), plus benchmarks of the real Go implementation
// (in-process transport) and its substrates.
//
// The figure/table benchmarks report the headline metric of each experiment
// via b.ReportMetric (requests/second, speedup, packets/second, ...). They
// run at reduced fidelity; `go run ./cmd/gosmr-bench` prints the full
// tables.

import (
	"fmt"
	"testing"
	"time"

	"gosmr"
	"gosmr/internal/batch"
	"gosmr/internal/executor"
	"gosmr/internal/experiments"
	"gosmr/internal/paxos"
	"gosmr/internal/profiling"
	"gosmr/internal/queue"
	"gosmr/internal/replycache"
	"gosmr/internal/retrans"
	"gosmr/internal/service"
	"gosmr/internal/simrsm"
	"gosmr/internal/wal"
	"gosmr/internal/wire"
)

// benchOpts keeps simulator benchmarks quick.
func benchOpts() experiments.Options {
	return experiments.Options{
		Warmup:  50 * time.Millisecond,
		Measure: 150 * time.Millisecond,
		Cores:   []int{1, 8, 24},
	}
}

func BenchmarkFig01ZooKeeperScalability(b *testing.B) {
	for b.Loop() {
		r := experiments.NewSuite(benchOpts()).Fig1()
		b.ReportMetric(r.Throughput[len(r.Throughput)-1], "zk-req/s@24c")
	}
}

func BenchmarkFig04ThroughputVsCores(b *testing.B) {
	for b.Loop() {
		r := experiments.NewSuite(benchOpts()).Fig4()
		b.ReportMetric(r.N3[len(r.N3)-1], "req/s@24c")
		b.ReportMetric(r.SpeedN3[len(r.SpeedN3)-1], "speedup@24c")
	}
}

func BenchmarkFig05CPUAndBlocking(b *testing.B) {
	for b.Loop() {
		n3, _ := experiments.NewSuite(benchOpts()).Fig5()
		last := len(n3.Cores) - 1
		b.ReportMetric(n3.CPU[0][last], "leader-cpu-%")
		b.ReportMetric(n3.Blocked[0][last], "leader-blocked-%")
	}
}

func BenchmarkFig06EdelThroughput(b *testing.B) {
	for b.Loop() {
		r := experiments.NewSuite(benchOpts()).Fig6()
		b.ReportMetric(r.N3[len(r.N3)-1], "req/s@8c")
	}
}

func BenchmarkFig07EdelCPUAndBlocking(b *testing.B) {
	for b.Loop() {
		n3, _ := experiments.NewSuite(benchOpts()).Fig7()
		last := len(n3.Cores) - 1
		b.ReportMetric(n3.CPU[0][last], "leader-cpu-%")
	}
}

func BenchmarkFig08PerThreadUtilization(b *testing.B) {
	for b.Loop() {
		profiles := experiments.NewSuite(benchOpts()).Fig8()
		// Report the leader Protocol thread's busy share at full cores.
		for _, p := range profiles {
			if p.Label != "parapluie-24cores" {
				continue
			}
			for _, st := range p.Threads {
				if st.Name == "Protocol" {
					b.ReportMetric(100*float64(st.Busy)/float64(p.Window), "protocol-busy-%")
				}
			}
		}
	}
}

func BenchmarkFig09ClientIOThreads(b *testing.B) {
	for b.Loop() {
		r := experiments.NewSuite(benchOpts()).Fig9()
		peak := 0.0
		for _, v := range r.Tput {
			if v > peak {
				peak = v
			}
		}
		b.ReportMetric(peak, "peak-req/s")
		b.ReportMetric(r.Tput[0], "req/s@1thread")
	}
}

func BenchmarkFig10WindowSize(b *testing.B) {
	for b.Loop() {
		r := experiments.NewSuite(benchOpts()).Fig10()
		b.ReportMetric(r.Tput[len(r.Tput)-1], "req/s@WND50")
		b.ReportMetric(float64(r.Lat[len(r.Lat)-1].Microseconds()), "latency-us@WND50")
	}
}

func BenchmarkFig11BatchSize(b *testing.B) {
	for b.Loop() {
		r := experiments.NewSuite(benchOpts()).Fig11()
		b.ReportMetric(r.Tput[len(r.Tput)-1], "req/s@BSZ10400")
	}
}

func BenchmarkFig12JPaxosVsZooKeeper(b *testing.B) {
	for b.Loop() {
		r := experiments.NewSuite(benchOpts()).Fig12()
		last := len(r.Cores) - 1
		b.ReportMetric(r.JPaxos[last]/r.ZooKeeper[last], "jpaxos/zk@24c")
	}
}

func BenchmarkFig13ZooKeeperContention(b *testing.B) {
	for b.Loop() {
		r := experiments.NewSuite(benchOpts()).Fig13()
		leader := len(r.CPU) - 1
		b.ReportMetric(r.Blocked[leader][len(r.Cores)-1], "zk-blocked-%@24c")
	}
}

func BenchmarkFig14ZooKeeperThreads(b *testing.B) {
	for b.Loop() {
		profiles := experiments.NewSuite(benchOpts()).Fig14()
		for _, p := range profiles {
			for _, st := range p.Threads {
				if st.Name == "CommitProcessor" {
					b.ReportMetric(100*float64(st.Busy+st.Blocked)/float64(p.Window),
						"commitproc-busy+blocked-%")
				}
			}
		}
	}
}

func BenchmarkTableIQueueSizes(b *testing.B) {
	for b.Loop() {
		r := experiments.NewSuite(benchOpts()).TableI()
		b.ReportMetric(r.RequestQ[0], "requestq-avg@WND10")
		b.ReportMetric(r.AvgBallots[len(r.AvgBallots)-1], "ballots@WND50")
	}
}

func BenchmarkTableIIPingRTT(b *testing.B) {
	for b.Loop() {
		r := experiments.NewSuite(benchOpts()).TableII()
		b.ReportMetric(float64(r.Idle.Microseconds()), "idle-rtt-us")
		b.ReportMetric(float64(r.LeaderToAny.Microseconds()), "leader-rtt-us")
	}
}

func BenchmarkTableIIIPackets(b *testing.B) {
	for b.Loop() {
		r := experiments.NewSuite(benchOpts()).TableIII()
		b.ReportMetric(r.PktsOut[1], "pkts/s-out@BSZ1300")
		b.ReportMetric(r.Tput[1], "req/s@BSZ1300")
	}
}

func BenchmarkAblationRSS(b *testing.B) {
	for b.Loop() {
		r := experiments.NewSuite(benchOpts()).AblationRSS()
		b.ReportMetric(r.Variant/r.Baseline, "rss-speedup")
	}
}

func BenchmarkAblationNoBatcher(b *testing.B) {
	for b.Loop() {
		r := experiments.NewSuite(benchOpts()).AblationNoBatcher()
		b.ReportMetric(r.Variant/r.Baseline, "nobatcher-ratio")
	}
}

func BenchmarkAblationWindow1(b *testing.B) {
	// Pipelining ablation: WND=1 (no pipelining) vs the default WND=10.
	for b.Loop() {
		off := simrsm.RunJPaxos(simrsm.Config{Window: 1}, 50*time.Millisecond, 150*time.Millisecond)
		on := simrsm.RunJPaxos(simrsm.Config{}, 50*time.Millisecond, 150*time.Millisecond)
		b.ReportMetric(on.Throughput/off.Throughput, "pipelining-speedup")
	}
}

// ---------------------------------------------------------------------------
// Real-implementation benchmarks (actual goroutine pipeline, in-process
// transport; numbers reflect this host, not the paper's testbed).

// benchCluster starts a 3-replica cluster and returns a ready client.
func benchCluster(b *testing.B) (*gosmr.Client, func()) {
	b.Helper()
	net := gosmr.NewInprocNetwork()
	peers := []string{"r0", "r1", "r2"}
	var reps []*gosmr.Replica
	for i := range 3 {
		rep, err := gosmr.NewReplica(gosmr.Config{
			ID: i, Peers: peers, ClientAddr: fmt.Sprintf("c%d", i), Network: net,
			BatchDelay: time.Millisecond,
		}, &service.Null{})
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.Start(); err != nil {
			b.Fatal(err)
		}
		reps = append(reps, rep)
	}
	cli, err := gosmr.Dial(gosmr.ClientConfig{
		Addrs: []string{"c0", "c1", "c2"}, Network: net, Timeout: 30 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	return cli, func() {
		cli.Close()
		for _, r := range reps {
			r.Stop()
		}
	}
}

func BenchmarkRealPipelineEndToEnd(b *testing.B) {
	cli, stop := benchCluster(b)
	defer stop()
	payload := make([]byte, 128)
	b.ResetTimer()
	for b.Loop() {
		if _, err := cli.Execute(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealOrderingThroughput(b *testing.B) {
	// Closed-loop clients against the real pipeline; reports requests/s.
	cli, stop := benchCluster(b)
	defer stop()
	payload := make([]byte, 128)
	start := time.Now()
	b.ResetTimer()
	for b.Loop() {
		if _, err := cli.Execute(payload); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
	}
}

// BenchmarkExecutorConflictRate is the executor-scaling tracking benchmark:
// executed throughput of the real pipeline (in-proc transport, conflict-aware
// KV with non-trivial per-command cost) at 0%, 10% and 100% conflicting keys,
// for the sequential baseline (1 worker) and 8 workers. On multi-core hosts
// the 0%-conflict rows should show workers=8 clearly above workers=1, while
// 100% conflicts serialize on the hot key and gain nothing; on a single-core
// host the rows converge. Compare executed/s across BENCH_*.json over time.
func BenchmarkExecutorConflictRate(b *testing.B) {
	for _, pct := range []int{0, 10, 100} {
		for _, workers := range []int{1, 8} {
			b.Run(fmt.Sprintf("conflict=%d%%/workers=%d", pct, workers), func(b *testing.B) {
				for b.Loop() {
					r := experiments.ExecutorScaling(experiments.ExecutorOptions{
						Workers:     []int{workers},
						ConflictPct: []int{pct},
						Clients:     16,
						Measure:     150 * time.Millisecond,
					})
					b.ReportMetric(r.Tput[0][0], "executed/s")
				}
			})
		}
	}
}

// BenchmarkDurabilitySyncPolicy is the WAL bench smoke: decided-batch
// throughput with SyncPolicy=batch (group commit) against the no-fsync
// SyncPolicy=none baseline, on the real pipeline writing real data
// directories. The reported ratio is the number to watch — per-record
// fsyncs (a SyncAlways-like regression) collapse it by an order of
// magnitude; healthy group commit keeps it near 1 on multi-core hosts.
func BenchmarkDurabilitySyncPolicy(b *testing.B) {
	for b.Loop() {
		r, err := experiments.DurabilitySmoke(experiments.DurabilityOptions{
			Dir:     b.TempDir(),
			Clients: 8,
			Warmup:  100 * time.Millisecond,
			Measure: 250 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Cells[len(r.Cells)-1].Batches, "batch-decided/s")
		b.ReportMetric(r.Ratio(wal.SyncBatch), "batch/none-ratio")
	}
}

// BenchmarkExecutorDispatch measures the scheduler's per-request dispatch
// overhead (key hashing + FIFO handoff) against the inline sequential path —
// the fixed cost parallel execution must amortize.
func BenchmarkExecutorDispatch(b *testing.B) {
	keys := func(req []byte) []string { return []string{string(req)} }
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := executor.New(executor.Config{Workers: workers, Keys: keys})
			e.Start()
			defer e.Stop()
			th := profiling.NewRegistry().Register("bench-scheduler")
			reqs := make([][]byte, 64)
			for i := range reqs {
				reqs[i] = []byte(fmt.Sprintf("key-%d", i))
			}
			task := executor.Task(func(*profiling.Thread) {})
			b.ResetTimer()
			for i := 0; b.Loop(); i++ {
				e.Submit(th, reqs[i%len(reqs)], task)
			}
			e.Quiesce(th)
		})
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks.

func BenchmarkQueuePutTake(b *testing.B) {
	q := queue.NewBounded[int]("bench", 1024)
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		_ = q.Put(nil, i)
		_, _ = q.Take(nil)
	}
}

func BenchmarkCodecMarshalPropose(b *testing.B) {
	msg := &wire.Propose{View: 3, ID: 42, DecidedUpTo: 41, Value: make([]byte, 1300)}
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		_ = wire.Marshal(msg)
	}
}

// BenchmarkCodecAppendPropose is the steady-state encode path the peer
// senders run: append into a reused buffer. The acceptance bar is 0
// allocs/op (guarded by TestEncodeHotPathAllocs in internal/wire).
func BenchmarkCodecAppendPropose(b *testing.B) {
	msg := &wire.Propose{View: 3, ID: 42, DecidedUpTo: 41, Value: make([]byte, 1300)}
	buf := make([]byte, 0, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		buf = wire.AppendMessage(buf[:0], msg)
	}
}

// BenchmarkCodecAppendGroupMsg measures the multi-group envelope encode,
// which the zero-copy path encodes inline (the legacy path nested a full
// Marshal and copied it).
func BenchmarkCodecAppendGroupMsg(b *testing.B) {
	msg := &wire.GroupMsg{Group: 2,
		Msg: &wire.Propose{View: 3, ID: 42, DecidedUpTo: 41, Value: make([]byte, 1300)}}
	buf := make([]byte, 0, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		buf = wire.AppendMessage(buf[:0], msg)
	}
}

// BenchmarkCodecUnmarshalPropose is the steady-state decode path the peer
// readers run: borrow from the frame, hand the struct back to the pool.
func BenchmarkCodecUnmarshalPropose(b *testing.B) {
	buf := wire.Marshal(&wire.Propose{View: 3, ID: 42, Value: make([]byte, 1300)})
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		m, err := wire.Unmarshal(buf)
		if err != nil {
			b.Fatal(err)
		}
		wire.Release(m)
	}
}

// BenchmarkCodecDecodeBatchInto is the deliver path: a decided batch decoded
// into reused storage, requests released after "execution".
func BenchmarkCodecDecodeBatchInto(b *testing.B) {
	value := wire.EncodeBatch([]*wire.ClientRequest{
		{ClientID: 1, Seq: 1, Payload: make([]byte, 128)},
		{ClientID: 2, Seq: 2, Payload: make([]byte, 128)},
		{ClientID: 3, Seq: 3, Payload: make([]byte, 128)},
	})
	var reqs []*wire.ClientRequest
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		var err error
		reqs, err = wire.DecodeBatchInto(reqs, value)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range reqs {
			wire.Release(r)
		}
	}
}

// BenchmarkWALAppend measures the journaling hot path: encode-into-pending
// under SyncNone (no fsync wait), with the Syncer draining concurrently.
// Double-buffered pending keeps steady-state appends allocation-free.
func BenchmarkWALAppend(b *testing.B) {
	w, _, err := wal.Open(wal.Options{Dir: b.TempDir(), Policy: wal.SyncNone})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	rec := wal.Record{Type: wal.RecAccept, ID: 1, View: 1, Value: make([]byte, 1300)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		rec.ID = wire.InstanceID(i)
		w.Append(rec)
	}
}

func BenchmarkBatchBuilder(b *testing.B) {
	builder := batch.NewBuilder(batch.Policy{MaxBytes: 1300})
	req := &wire.ClientRequest{ClientID: 1, Seq: 1, Payload: make([]byte, 128)}
	b.ResetTimer()
	for b.Loop() {
		if builder.Add(req) {
			_ = builder.Flush()
		}
	}
}

func BenchmarkReplyCacheSharded(b *testing.B) {
	c := replycache.NewSharded()
	b.RunParallel(func(pb *testing.PB) {
		th := profiling.NewRegistry().Register("w")
		i := uint64(0)
		for pb.Next() {
			i++
			c.Update(th, i%512, i, nil)
			c.Lookup(th, i%512, i)
		}
	})
}

func BenchmarkReplyCacheCoarse(b *testing.B) {
	c := replycache.NewCoarse()
	b.RunParallel(func(pb *testing.PB) {
		th := profiling.NewRegistry().Register("w")
		i := uint64(0)
		for pb.Next() {
			i++
			c.Update(th, i%512, i, nil)
			c.Lookup(th, i%512, i)
		}
	})
}

func BenchmarkRetransmitterAddCancel(b *testing.B) {
	r := retrans.New(retrans.Options{Period: time.Hour})
	defer r.Stop()
	b.ResetTimer()
	for b.Loop() {
		h := r.Add(func() {})
		h.Cancel()
	}
}

func BenchmarkPaxosProposeDecide(b *testing.B) {
	// Pure protocol state machine: one full instance per iteration.
	nd := paxos.NewNode(paxos.Options{ID: 0, N: 3, Window: 1024})
	nd.Start()
	nd.HandleMessage(1, &wire.PrepareOK{View: 0})
	value := wire.EncodeBatch([]*wire.ClientRequest{{ClientID: 1, Seq: 1, Payload: make([]byte, 128)}})
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		e, ok := nd.ProposeBatch(value)
		if !ok {
			b.Fatal("window closed")
		}
		id := wire.InstanceID(i)
		_ = e
		nd.HandleMessage(1, &wire.Accept{View: 0, ID: id})
	}
}
