package gosmr_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"gosmr"
	"gosmr/internal/service"
)

func TestClientTimeoutWhenClusterDown(t *testing.T) {
	net := gosmr.NewInprocNetwork()
	cli, err := gosmr.Dial(gosmr.ClientConfig{
		Addrs:          []string{"nowhere-0", "nowhere-1"},
		Network:        net,
		Timeout:        300 * time.Millisecond,
		AttemptTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	start := time.Now()
	_, err = cli.Execute([]byte("x"))
	if !errors.Is(err, gosmr.ErrTimeout) {
		t.Fatalf("Execute = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed < 250*time.Millisecond || elapsed > 3*time.Second {
		t.Errorf("timed out after %v, want ~300ms", elapsed)
	}
}

func TestClientFailsOverFromDeadTarget(t *testing.T) {
	// Only replicas 1 and 2 of a 3-address cluster are up; the client's
	// initial target (0) is dead and it must rotate to the live ones.
	net := gosmr.NewInprocNetwork()
	peers := []string{"cf-r0", "cf-r1", "cf-r2"}
	for i := 1; i < 3; i++ {
		rep, err := gosmr.NewReplica(gosmr.Config{
			ID: i, Peers: peers, ClientAddr: fmt.Sprintf("cf-c%d", i),
			Network:           net,
			BatchDelay:        time.Millisecond,
			HeartbeatInterval: 20 * time.Millisecond,
			SuspectTimeout:    150 * time.Millisecond,
		}, service.NewKV())
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Start(); err != nil {
			t.Fatal(err)
		}
		defer rep.Stop()
	}
	cli, err := gosmr.Dial(gosmr.ClientConfig{
		Addrs:          []string{"cf-c0", "cf-c1", "cf-c2"}, // c0 never listens
		Network:        net,
		Timeout:        20 * time.Second,
		AttemptTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	reply, err := cli.Execute(service.EncodePut("k", []byte("v")))
	if err != nil {
		t.Fatalf("Execute with dead initial target: %v", err)
	}
	if st, _ := service.DecodeReply(reply); st != service.KVOK {
		t.Fatalf("status = %d", st)
	}
}

func TestClientIDsUniqueAndStable(t *testing.T) {
	net := gosmr.NewInprocNetwork()
	seen := make(map[uint64]bool)
	for range 50 {
		cli, err := gosmr.Dial(gosmr.ClientConfig{Addrs: []string{"a"}, Network: net})
		if err != nil {
			t.Fatal(err)
		}
		id := cli.ID()
		if id == 0 {
			t.Fatal("zero client ID generated")
		}
		if seen[id] {
			t.Fatalf("duplicate client ID %d", id)
		}
		seen[id] = true
		cli.Close()
	}
	cli, err := gosmr.Dial(gosmr.ClientConfig{Addrs: []string{"a"}, Network: net, ID: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if cli.ID() != 42 {
		t.Errorf("explicit ID = %d, want 42", cli.ID())
	}
}

func TestClientClosedErrors(t *testing.T) {
	net := gosmr.NewInprocNetwork()
	cli, err := gosmr.Dial(gosmr.ClientConfig{Addrs: []string{"a"}, Network: net})
	if err != nil {
		t.Fatal(err)
	}
	cli.Close()
	if _, err := cli.Execute([]byte("x")); !errors.Is(err, gosmr.ErrClientClosed) {
		t.Fatalf("Execute after Close = %v, want ErrClientClosed", err)
	}
	cli.Close() // idempotent
}

func TestClientBadInitialTargetClamped(t *testing.T) {
	net := gosmr.NewInprocNetwork()
	cli, err := gosmr.Dial(gosmr.ClientConfig{
		Addrs: []string{"a", "b"}, Network: net, InitialTarget: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	cli.Close()
}
