package gosmr_test

// Failure-injection tests: the full replica pipeline under a lossy,
// duplicating network. The retransmitter (Sec. V-C4) and the catch-up
// protocol must mask the losses; duplication must be absorbed by the
// protocol's idempotent handlers and the reply cache.

import (
	"bytes"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gosmr"
	"gosmr/internal/service"
	"gosmr/internal/transport"
)

// lossyCluster boots 3 replicas (with `groups` ordering groups each) over an
// inproc network with the given fault function installed for inter-replica
// traffic only (client traffic stays clean so the test measures
// protocol-level recovery, not client retries).
func lossyCluster(t *testing.T, groups int, fault transport.FaultFunc) (*gosmr.Client, []*service.KV, func() []*gosmr.Replica) {
	t.Helper()
	net := transport.NewInproc(0)
	net.SetFault(func(from, to string, frame []byte) (bool, bool) {
		if strings.HasPrefix(from, "fi-r") && strings.HasPrefix(to, "fi-r") {
			return fault(from, to, frame)
		}
		return false, false
	})
	peers := []string{"fi-r0", "fi-r1", "fi-r2"}
	var reps []*gosmr.Replica
	var stores []*service.KV
	for i := range 3 {
		kv := service.NewKV()
		rep, err := gosmr.NewReplica(gosmr.Config{
			ID: i, Peers: peers, ClientAddr: fmt.Sprintf("fi-c%d", i),
			Network:           net,
			Groups:            groups,
			BatchDelay:        time.Millisecond,
			HeartbeatInterval: 20 * time.Millisecond,
			SuspectTimeout:    400 * time.Millisecond,
		}, kv)
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Start(); err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
		stores = append(stores, kv)
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.Stop()
		}
	})
	cli, err := gosmr.Dial(gosmr.ClientConfig{
		Addrs:   []string{"fi-c0", "fi-c1", "fi-c2"},
		Network: net, Timeout: 30 * time.Second, AttemptTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)
	return cli, stores, func() []*gosmr.Replica { return reps }
}

func TestProgressUnderMessageLoss(t *testing.T) {
	// Drop 20% of inter-replica frames, deterministically spread.
	var n atomic.Uint64
	cli, stores, _ := lossyCluster(t, 1, func(from, to string, frame []byte) (bool, bool) {
		return n.Add(1)%5 == 0, false
	})
	for i := range 30 {
		key := fmt.Sprintf("lossy-%d", i)
		reply, err := cli.Execute(service.EncodePut(key, []byte("v")))
		if err != nil {
			t.Fatalf("PUT %d under loss: %v", i, err)
		}
		if st, _ := service.DecodeReply(reply); st != service.KVOK {
			t.Fatalf("PUT %d status %d", i, st)
		}
	}
	// All replicas converge despite the losses (watermarks + catch-up).
	waitKV(t, stores, 30, 15*time.Second)
}

func TestProgressUnderDuplication(t *testing.T) {
	// Duplicate every third inter-replica frame.
	var n atomic.Uint64
	cli, stores, reps := lossyCluster(t, 1, func(from, to string, frame []byte) (bool, bool) {
		return false, n.Add(1)%3 == 0
	})
	for i := range 30 {
		if _, err := cli.Execute(service.EncodePut(fmt.Sprintf("dup-%d", i), []byte("v"))); err != nil {
			t.Fatalf("PUT %d under duplication: %v", i, err)
		}
	}
	waitKV(t, stores, 30, 15*time.Second)
	// Exactly 30 executions at the leader: duplicates never re-execute.
	if got := reps()[0].Executed(); got != 30 {
		t.Errorf("leader executed %d, want 30", got)
	}
}

func TestProgressUnderLossAndDuplication(t *testing.T) {
	var n atomic.Uint64
	cli, stores, _ := lossyCluster(t, 1, func(from, to string, frame []byte) (bool, bool) {
		i := n.Add(1)
		return i%7 == 0, i%3 == 0
	})
	for i := range 20 {
		if _, err := cli.Execute(service.EncodePut(fmt.Sprintf("chaos-%d", i), []byte("v"))); err != nil {
			t.Fatalf("PUT %d under chaos: %v", i, err)
		}
	}
	waitKV(t, stores, 20, 15*time.Second)
}

// waitKV waits until every store holds `keys` keys and their snapshots are
// identical.
func waitKV(t *testing.T, stores []*service.KV, keys int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		all := true
		for _, s := range stores {
			if s.Len() != keys {
				all = false
			}
		}
		if all {
			ref, err := stores[0].Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			same := true
			for _, s := range stores[1:] {
				got, err := s.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, ref) {
					same = false
				}
			}
			if same {
				return
			}
		}
		time.Sleep(15 * time.Millisecond)
	}
	for i, s := range stores {
		t.Logf("store %d: %d keys", i, s.Len())
	}
	t.Fatalf("stores did not converge to %d identical keys within %v", keys, timeout)
}

func TestMultiGroupProgressUnderLoss(t *testing.T) {
	// Multi-group ordering under 20% inter-replica frame loss: per-group
	// retransmission and catch-up must recover every group's stream, and
	// the merge must still deliver one identical total order everywhere.
	var n atomic.Uint64
	cli, stores, reps := lossyCluster(t, 2, func(from, to string, frame []byte) (bool, bool) {
		return n.Add(1)%5 == 0, false
	})
	for i := range 30 {
		key := fmt.Sprintf("mg-lossy-%d", i)
		reply, err := cli.Execute(service.EncodePut(key, []byte("v")))
		if err != nil {
			t.Fatalf("PUT %d under loss: %v", i, err)
		}
		if st, _ := service.DecodeReply(reply); st != service.KVOK {
			t.Fatalf("PUT %d status %d", i, st)
		}
	}
	waitKV(t, stores, 30, 15*time.Second)
	if g := reps()[0].Groups(); g != 2 {
		t.Errorf("Groups() = %d, want 2", g)
	}
}

func TestMultiGroupSnapshotTruncationConverges(t *testing.T) {
	// A clean multi-group cluster snapshotting aggressively: snapshots are
	// cut at merged indices, each group truncates its own log at its share
	// of the prefix, and replicas stay byte-identical throughout.
	net := transport.NewInproc(0)
	peers := []string{"mgs-r0", "mgs-r1", "mgs-r2"}
	var stores []*service.KV
	for i := range 3 {
		kv := service.NewKV()
		rep, err := gosmr.NewReplica(gosmr.Config{
			ID: i, Peers: peers, ClientAddr: fmt.Sprintf("mgs-c%d", i),
			Network:       net,
			Groups:        4,
			SnapshotEvery: 10,
			BatchDelay:    time.Millisecond,
		}, kv)
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rep.Stop)
		stores = append(stores, kv)
	}
	cli, err := gosmr.Dial(gosmr.ClientConfig{
		Addrs:   []string{"mgs-c0", "mgs-c1", "mgs-c2"},
		Network: net, Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)
	for i := range 60 {
		if _, err := cli.Execute(service.EncodePut(fmt.Sprintf("mgs-%d", i), []byte("v"))); err != nil {
			t.Fatalf("PUT %d: %v", i, err)
		}
	}
	waitKV(t, stores, 60, 15*time.Second)
}
