package gosmr_test

// Failure-injection tests: the full replica pipeline under a lossy,
// duplicating network. The retransmitter (Sec. V-C4) and the catch-up
// protocol must mask the losses; duplication must be absorbed by the
// protocol's idempotent handlers and the reply cache.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gosmr"
	"gosmr/internal/service"
	"gosmr/internal/transport"
	"gosmr/internal/wire"
)

// lossyCluster boots 3 replicas (with `groups` ordering groups each) over an
// inproc network with the given fault function installed for inter-replica
// traffic only (client traffic stays clean so the test measures
// protocol-level recovery, not client retries). Each replica dials through
// an identity-stamped view of the network (Inproc.As) so BOTH endpoints of
// peer traffic carry replica names — without it the dialing side is
// anonymous and a name-filtered fault would match nothing.
func lossyCluster(t *testing.T, groups int, fault transport.FaultFunc) (*gosmr.Client, []*service.KV, func() []*gosmr.Replica) {
	t.Helper()
	net := transport.NewInproc(0)
	net.SetFault(func(from, to string, frame []byte) (bool, bool) {
		if strings.HasPrefix(from, "fi-r") && strings.HasPrefix(to, "fi-r") {
			return fault(from, to, frame)
		}
		return false, false
	})
	peers := []string{"fi-r0", "fi-r1", "fi-r2"}
	var reps []*gosmr.Replica
	var stores []*service.KV
	for i := range 3 {
		kv := service.NewKV()
		rep, err := gosmr.NewReplica(gosmr.Config{
			ID: i, Peers: peers, ClientAddr: fmt.Sprintf("fi-c%d", i),
			Network:           net.As(peers[i]),
			Groups:            groups,
			BatchDelay:        time.Millisecond,
			HeartbeatInterval: 20 * time.Millisecond,
			SuspectTimeout:    400 * time.Millisecond,
		}, kv)
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Start(); err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
		stores = append(stores, kv)
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.Stop()
		}
	})
	cli, err := gosmr.Dial(gosmr.ClientConfig{
		Addrs:   []string{"fi-c0", "fi-c1", "fi-c2"},
		Network: net, Timeout: 30 * time.Second, AttemptTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)
	return cli, stores, func() []*gosmr.Replica { return reps }
}

func TestProgressUnderMessageLoss(t *testing.T) {
	// Drop 20% of inter-replica frames, deterministically spread.
	var n atomic.Uint64
	cli, stores, _ := lossyCluster(t, 1, func(from, to string, frame []byte) (bool, bool) {
		return n.Add(1)%5 == 0, false
	})
	for i := range 30 {
		key := fmt.Sprintf("lossy-%d", i)
		reply, err := cli.Execute(service.EncodePut(key, []byte("v")))
		if err != nil {
			t.Fatalf("PUT %d under loss: %v", i, err)
		}
		if st, _ := service.DecodeReply(reply); st != service.KVOK {
			t.Fatalf("PUT %d status %d", i, st)
		}
	}
	// All replicas converge despite the losses (watermarks + catch-up).
	waitKV(t, stores, 30, 15*time.Second)
}

func TestProgressUnderDuplication(t *testing.T) {
	// Duplicate every third inter-replica frame.
	var n atomic.Uint64
	cli, stores, reps := lossyCluster(t, 1, func(from, to string, frame []byte) (bool, bool) {
		return false, n.Add(1)%3 == 0
	})
	for i := range 30 {
		if _, err := cli.Execute(service.EncodePut(fmt.Sprintf("dup-%d", i), []byte("v"))); err != nil {
			t.Fatalf("PUT %d under duplication: %v", i, err)
		}
	}
	waitKV(t, stores, 30, 15*time.Second)
	// Exactly 30 executions at the leader: duplicates never re-execute.
	if got := reps()[0].Executed(); got != 30 {
		t.Errorf("leader executed %d, want 30", got)
	}
}

func TestProgressUnderLossAndDuplication(t *testing.T) {
	var n atomic.Uint64
	cli, stores, _ := lossyCluster(t, 1, func(from, to string, frame []byte) (bool, bool) {
		i := n.Add(1)
		return i%7 == 0, i%3 == 0
	})
	for i := range 20 {
		if _, err := cli.Execute(service.EncodePut(fmt.Sprintf("chaos-%d", i), []byte("v"))); err != nil {
			t.Fatalf("PUT %d under chaos: %v", i, err)
		}
	}
	waitKV(t, stores, 20, 15*time.Second)
}

// waitKV waits until every store holds `keys` keys and their snapshots are
// identical.
func waitKV(t *testing.T, stores []*service.KV, keys int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		all := true
		for _, s := range stores {
			if s.Len() != keys {
				all = false
			}
		}
		if all {
			ref, err := stores[0].Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			same := true
			for _, s := range stores[1:] {
				got, err := s.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, ref) {
					same = false
				}
			}
			if same {
				return
			}
		}
		time.Sleep(15 * time.Millisecond)
	}
	for i, s := range stores {
		t.Logf("store %d: %d keys", i, s.Len())
	}
	t.Fatalf("stores did not converge to %d identical keys within %v", keys, timeout)
}

func TestMultiGroupProgressUnderLoss(t *testing.T) {
	// Multi-group ordering under 20% inter-replica frame loss: per-group
	// retransmission and catch-up must recover every group's stream, and
	// the merge must still deliver one identical total order everywhere.
	var n atomic.Uint64
	cli, stores, reps := lossyCluster(t, 2, func(from, to string, frame []byte) (bool, bool) {
		return n.Add(1)%5 == 0, false
	})
	for i := range 30 {
		key := fmt.Sprintf("mg-lossy-%d", i)
		reply, err := cli.Execute(service.EncodePut(key, []byte("v")))
		if err != nil {
			t.Fatalf("PUT %d under loss: %v", i, err)
		}
		if st, _ := service.DecodeReply(reply); st != service.KVOK {
			t.Fatalf("PUT %d status %d", i, st)
		}
	}
	waitKV(t, stores, 30, 15*time.Second)
	if g := reps()[0].Groups(); g != 2 {
		t.Errorf("Groups() = %d, want 2", g)
	}
}

// durableCluster boots a 3-replica durable cluster (DataDir per replica,
// SyncPolicy=batch) on an inproc network and returns a restart function
// that builds replica i again from its data directory with a fresh service
// — the in-process stand-in for kill -9 + restart: the old object's entire
// in-memory state is discarded and only the DataDir survives.
type durableCluster struct {
	t      *testing.T
	net    *transport.Inproc
	peers  []string
	dirs   []string
	cfg    gosmr.Config
	reps   []*gosmr.Replica
	stores []*service.KV
}

func newDurableCluster(t *testing.T, prefix string, groups, workers, snapshotEvery int) *durableCluster {
	t.Helper()
	c := &durableCluster{
		t:     t,
		net:   transport.NewInproc(0),
		peers: []string{prefix + "-r0", prefix + "-r1", prefix + "-r2"},
	}
	c.cfg = gosmr.Config{
		Peers:             c.peers,
		Network:           c.net,
		Groups:            groups,
		ExecutorWorkers:   workers,
		SnapshotEvery:     snapshotEvery,
		SyncPolicy:        "batch",
		BatchDelay:        time.Millisecond,
		HeartbeatInterval: 20 * time.Millisecond,
		SuspectTimeout:    400 * time.Millisecond,
	}
	c.reps = make([]*gosmr.Replica, 3)
	c.stores = make([]*service.KV, 3)
	c.dirs = make([]string, 3)
	for i := range 3 {
		c.dirs[i] = t.TempDir()
		c.boot(i, prefix)
	}
	t.Cleanup(func() {
		for _, r := range c.reps {
			if r != nil {
				r.Stop()
			}
		}
	})
	return c
}

// boot builds and starts replica i from its (possibly already written)
// DataDir with a brand-new service instance.
func (c *durableCluster) boot(i int, prefix string) {
	c.t.Helper()
	cfg := c.cfg
	cfg.ID = i
	cfg.ClientAddr = fmt.Sprintf("%s-c%d", prefix, i)
	cfg.DataDir = c.dirs[i]
	kv := service.NewKV()
	rep, err := gosmr.NewReplica(cfg, kv)
	if err != nil {
		c.t.Fatal(err)
	}
	if err := rep.Start(); err != nil {
		c.t.Fatal(err)
	}
	c.reps[i] = rep
	c.stores[i] = kv
}

// kill stops replica i and discards every in-memory structure; only its
// DataDir remains.
func (c *durableCluster) kill(i int) {
	c.t.Helper()
	c.reps[i].Stop()
	c.reps[i] = nil
	c.stores[i] = nil
}

// client dials the cluster.
func (c *durableCluster) client(prefix string) *gosmr.Client {
	c.t.Helper()
	cli, err := gosmr.Dial(gosmr.ClientConfig{
		Addrs:   []string{prefix + "-c0", prefix + "-c1", prefix + "-c2"},
		Network: c.net, Timeout: 30 * time.Second, AttemptTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	c.t.Cleanup(cli.Close)
	return cli
}

// put writes n sequential keys through cli and fails the test on any error.
func putKeys(t *testing.T, cli *gosmr.Client, prefix string, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		reply, err := cli.Execute(service.EncodePut(fmt.Sprintf("%s-%d", prefix, i), []byte("v")))
		if err != nil {
			t.Fatalf("PUT %d: %v", i, err)
		}
		if st, _ := service.DecodeReply(reply); st != service.KVOK {
			t.Fatalf("PUT %d status %d", i, st)
		}
	}
}

// waitReplyCaches waits until every replica's marshaled reply cache is
// byte-identical to replica 0's.
func waitReplyCaches(t *testing.T, reps []*gosmr.Replica, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ref := reps[0].ReplyCacheBytes()
		same := len(ref) > 0
		for _, r := range reps[1:] {
			if !bytes.Equal(ref, r.ReplyCacheBytes()) {
				same = false
			}
		}
		if same {
			return
		}
		time.Sleep(15 * time.Millisecond)
	}
	for i, r := range reps {
		t.Logf("replica %d reply cache: %d bytes", i, len(r.ReplyCacheBytes()))
	}
	t.Fatal("reply caches did not converge to identical bytes")
}

// TestReplicaKillRestartRecovery kills a replica mid-run (its full
// in-memory state discarded), restarts it from its DataDir, and asserts it
// rejoins with service snapshots and reply caches byte-identical to the
// survivors — across the Groups×ExecutorWorkers matrix. Snapshots are
// disabled so the survivors retain full logs: the restarted replica must
// recover its durable prefix from its own WAL and fetch only the tail via
// catch-up, never a state transfer (StateTransfers stays 0).
func TestReplicaKillRestartRecovery(t *testing.T) {
	for _, groups := range []int{1, 2} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("groups=%d_workers=%d", groups, workers), func(t *testing.T) {
				prefix := fmt.Sprintf("krr-g%d-w%d", groups, workers)
				c := newDurableCluster(t, prefix, groups, workers, 0)
				cli := c.client(prefix)

				putKeys(t, cli, "pre", 0, 15)
				waitKV(t, c.stores, 15, 15*time.Second)

				// Kill follower 2: everything it knew is gone but the WAL.
				c.kill(2)

				// The cluster keeps committing on the surviving majority.
				putKeys(t, cli, "mid", 0, 15)

				// Restart from the data directory and let it rejoin.
				c.boot(2, prefix)
				putKeys(t, cli, "post", 0, 5)

				waitKV(t, c.stores, 35, 20*time.Second)
				waitReplyCaches(t, c.reps, 20*time.Second)
				if n := c.reps[2].StateTransfers(); n != 0 {
					t.Errorf("restarted replica used %d state transfers; its durable prefix should come from the WAL", n)
				}
				if g := c.reps[2].Groups(); g != groups {
					t.Errorf("Groups() = %d, want %d", g, groups)
				}
			})
		}
	}
}

// TestClusterRestartDurability commits commands, stops the whole cluster,
// and reboots every replica from its DataDir: all committed KV state must
// survive — the client saw a reply for each command, so each had been
// fsynced by the group-commit Syncer before the reply could exist. Runs
// with snapshots enabled so boot exercises the snapshot + WAL-suffix path,
// and at 2 ordering groups so per-group logs and the merge position all
// recover.
func TestClusterRestartDurability(t *testing.T) {
	const prefix = "crd"
	c := newDurableCluster(t, prefix, 2, 2, 10)
	cli := c.client(prefix)
	putKeys(t, cli, "dur", 0, 30)
	waitKV(t, c.stores, 30, 15*time.Second)
	cli.Close()

	for i := range 3 {
		c.kill(i)
	}
	for i := range 3 {
		c.boot(i, prefix)
	}

	// Recovery replays snapshots + WAL suffixes; the cluster re-elects and
	// converges on exactly the committed state.
	waitKV(t, c.stores, 30, 20*time.Second)
	waitReplyCaches(t, c.reps, 20*time.Second)

	// And it still makes progress: new commands commit after the restart.
	cli2 := c.client(prefix)
	putKeys(t, cli2, "dur", 30, 5)
	waitKV(t, c.stores, 35, 15*time.Second)
}

// TestSingleReplicaRestartRecoversFromWAL is the isolation proof for local
// recovery: with n=1 there is no peer to catch up from, so every recovered
// command can only have come from the data directory.
func TestSingleReplicaRestartRecoversFromWAL(t *testing.T) {
	net := transport.NewInproc(0)
	dir := t.TempDir()
	boot := func() (*gosmr.Replica, *service.KV) {
		kv := service.NewKV()
		rep, err := gosmr.NewReplica(gosmr.Config{
			ID: 0, Peers: []string{"solo-r0"}, ClientAddr: "solo-c0",
			Network: net, DataDir: dir, SyncPolicy: "batch",
			BatchDelay: time.Millisecond,
		}, kv)
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Start(); err != nil {
			t.Fatal(err)
		}
		return rep, kv
	}
	rep, kv := boot()
	cli, err := gosmr.Dial(gosmr.ClientConfig{
		Addrs: []string{"solo-c0"}, Network: net, Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	putKeys(t, cli, "solo", 0, 12)
	wantSnap, err := kv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	wantCache := rep.ReplyCacheBytes()
	cli.Close()
	rep.Stop()

	rep2, kv2 := boot()
	defer rep2.Stop()
	deadline := time.Now().Add(10 * time.Second)
	for kv2.Len() < 12 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	gotSnap, err := kv2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotSnap, wantSnap) {
		t.Errorf("recovered KV state diverged from pre-restart state (%d keys, want 12)", kv2.Len())
	}
	gotCache := rep2.ReplyCacheBytes()
	for !bytes.Equal(gotCache, wantCache) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		gotCache = rep2.ReplyCacheBytes()
	}
	if !bytes.Equal(gotCache, wantCache) {
		t.Error("recovered reply cache diverged from pre-restart cache")
	}
}

// TestWALServedCatchUpAvoidsStateTransfer pins catch-up tier 2: a follower
// whose gap reaches below the responder's in-memory truncation base — but
// stays inside the WAL's one-checkpoint-generation retention — refills from
// the responder's DISK, with zero state transfers.
//
// The gap is carved deterministically with fault injection: every frame from
// the leader to follower 2 is dropped for a window of commits, so the
// follower misses exactly those proposes (nothing is queued for replay on a
// reconnect — the messages are gone; the retransmitter cancels on decide).
// Arithmetic (groups=1, sequential client: one instance per command):
// SnapshotEvery=20 cuts at instances 20 (before the window — the follower
// holds it) and 40 (inside it). When the window lifts, the leader's memory
// starts at 40, so the follower's gap [~25, 40) can only come from the
// leader's WAL — which retains the generation since cut 20 — or from a full
// snapshot transfer. StateTransfers == 0 proves the disk path served it.
func TestWALServedCatchUpAvoidsStateTransfer(t *testing.T) {
	net := transport.NewInproc(0)
	var dropToVictim atomic.Bool
	net.SetFault(func(from, to string, frame []byte) (bool, bool) {
		return dropToVictim.Load() && from == "wcu-r0" && to == "wcu-r2", false
	})
	peers := []string{"wcu-r0", "wcu-r1", "wcu-r2"}
	reps := make([]*gosmr.Replica, 3)
	stores := make([]*service.KV, 3)
	dirs := make([]string, 3)
	for i := range 3 {
		dirs[i] = t.TempDir()
		kv := service.NewKV()
		rep, err := gosmr.NewReplica(gosmr.Config{
			ID: i, Peers: peers, ClientAddr: fmt.Sprintf("wcu-c%d", i),
			Network:           net.As(peers[i]),
			DataDir:           dirs[i],
			SyncPolicy:        "batch",
			SnapshotEvery:     20,
			BatchDelay:        time.Millisecond,
			HeartbeatInterval: 20 * time.Millisecond,
			SuspectTimeout:    400 * time.Millisecond,
		}, kv)
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rep.Stop)
		reps[i] = rep
		stores[i] = kv
	}
	cli, err := gosmr.Dial(gosmr.ClientConfig{
		Addrs:   []string{"wcu-c0", "wcu-c1", "wcu-c2"},
		Network: net, Timeout: 30 * time.Second, AttemptTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)

	// Follower 2 tracks the first 25 instances normally (through the first
	// snapshot cut at 20).
	putKeys(t, cli, "pre", 0, 25)
	waitKV(t, stores, 25, 15*time.Second)

	// Blackout window: follower 2 sees nothing while 30 commands commit on
	// the majority, crossing the cut at 40 — the leader truncates its
	// in-memory log past the follower's position.
	dropToVictim.Store(true)
	putKeys(t, cli, "mid", 0, 30)
	// The leader must have committed the cut-at-40 snapshot (manifest
	// manifest-...27.mf, LastIncluded 39) before the window lifts, or the
	// test would prove nothing.
	waitForSnapshotCut(t, dirs[0], 39, 15*time.Second)
	dropToVictim.Store(false)

	putKeys(t, cli, "post", 0, 3)
	waitKV(t, stores, 58, 20*time.Second)
	waitReplyCaches(t, reps, 20*time.Second)
	if n := reps[2].StateTransfers(); n != 0 {
		t.Errorf("catch-up used %d state transfers; a WAL-coverable gap must be served from the responder's disk", n)
	}
}

// waitForSnapshotCut waits until dir holds a committed snapshot manifest
// whose cut is at least minCut.
func waitForSnapshotCut(t *testing.T, dataDir string, minCut uint64, timeout time.Duration) {
	t.Helper()
	snapDir := filepath.Join(dataDir, "snapshots")
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		entries, err := os.ReadDir(snapDir)
		if err == nil {
			for _, e := range entries {
				var cut uint64
				if _, err := fmt.Sscanf(e.Name(), "manifest-%016x.mf", &cut); err == nil && cut >= minCut {
					return
				}
			}
		}
		time.Sleep(15 * time.Millisecond)
	}
	t.Fatalf("no snapshot manifest with cut >= %d appeared in %s within %v", minCut, snapDir, timeout)
}

// TestSnapshotPullResumesFromStagedChunks pins the two load-bearing
// properties of chunked state transfer:
//
//  1. No snapshot crosses the wire as a single unbounded unit: with
//     SnapshotChunkBytes set far below the state size, every SnapshotChunk
//     frame the donors emit must stay within the configured cap (plus frame
//     header), and the stream must take many frames.
//  2. An interrupted pull resumes from the last durable chunk, not byte 0:
//     the fault injector lets exactly two chunk frames through, starves the
//     rest until the puller gives up (SnapshotFailures rises), then heals
//     the network. The retried pull must reuse the fsynced staging prefix —
//     TransferResumedBytes lands on a chunk boundary > 0.
//
// The same cap must hold on disk, so after convergence the victim's
// snapshot directory is walked: every committed chunk file obeys the cap
// and the installed snapshot spans several of them.
func TestSnapshotPullResumesFromStagedChunks(t *testing.T) {
	const (
		chunkBytes = 2048
		valueBytes = 1024
		preKeys    = 12
		midKeys    = 80
	)
	net := transport.NewInproc(0)
	peers := []string{"spr-r0", "spr-r1", "spr-r2"}
	const victim = "spr-r2"

	// Fault modes, advanced by the test as the scenario unfolds.
	const (
		faultOff    = int32(iota) // clean network
		faultGap                  // starve the victim of ordering + catch-up payloads
		faultChunks               // deliver chunkQuota SnapshotChunk frames, drop the rest
	)
	var (
		mode          atomic.Int32
		chunkQuota    atomic.Int32
		chunkFrames   atomic.Int64 // SnapshotChunk frames observed toward the victim
		maxChunkFrame atomic.Int64 // largest such frame, bytes
	)
	net.SetFault(func(from, to string, frame []byte) (bool, bool) {
		if to != victim || len(frame) == 0 {
			return false, false
		}
		typ := wire.MsgType(frame[0])
		if typ == wire.TSnapshotChunk {
			chunkFrames.Add(1)
			if n := int64(len(frame)); n > maxChunkFrame.Load() {
				maxChunkFrame.Store(n)
			}
		}
		switch mode.Load() {
		case faultGap:
			// Connections stay up (so nothing is replayed from SendQueue
			// backlogs later) but the victim learns no values: only
			// liveness traffic passes.
			switch typ {
			case wire.THello, wire.THeartbeat, wire.TLeaseAck:
				return false, false
			}
			return true, false
		case faultChunks:
			if typ == wire.TSnapshotChunk {
				return chunkQuota.Add(-1) < 0, false
			}
		}
		return false, false
	})

	reps := make([]*gosmr.Replica, 3)
	stores := make([]*service.KV, 3)
	dirs := make([]string, 3)
	for i := range 3 {
		dirs[i] = t.TempDir()
		kv := service.NewKV()
		rep, err := gosmr.NewReplica(gosmr.Config{
			ID: i, Peers: peers, ClientAddr: fmt.Sprintf("spr-c%d", i),
			Network:            net.As(peers[i]),
			DataDir:            dirs[i],
			SyncPolicy:         "batch",
			SnapshotEvery:      20,
			SnapshotChunkBytes: chunkBytes,
			BatchDelay:         time.Millisecond,
			HeartbeatInterval:  20 * time.Millisecond,
			SuspectTimeout:     400 * time.Millisecond,
		}, kv)
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rep.Stop)
		reps[i] = rep
		stores[i] = kv
	}
	cli, err := gosmr.Dial(gosmr.ClientConfig{
		Addrs:   []string{"spr-c0", "spr-c1"},
		Network: net, Timeout: 30 * time.Second, AttemptTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)
	value := bytes.Repeat([]byte("x"), valueBytes)
	put := func(prefix string, from, n int) {
		t.Helper()
		for i := from; i < from+n; i++ {
			reply, err := cli.Execute(service.EncodePut(fmt.Sprintf("%s-%d", prefix, i), value))
			if err != nil {
				t.Fatalf("PUT %s-%d: %v", prefix, i, err)
			}
			if st, _ := service.DecodeReply(reply); st != service.KVOK {
				t.Fatalf("PUT %s-%d status %d", prefix, i, st)
			}
		}
	}

	// The victim tracks the cluster normally through the first 1 KiB values.
	put("pre", 0, preKeys)
	waitKV(t, stores, preKeys, 15*time.Second)

	// Starvation window: midKeys commands commit on the majority while the
	// victim sees only heartbeats. SnapshotEvery=20 cuts several snapshot
	// generations in the window, so every donor's WAL retention is outrun —
	// the victim's gap can only be closed by a snapshot transfer of ~92 KiB
	// of state, far above the 2 KiB chunk cap.
	mode.Store(faultGap)
	put("mid", 0, midKeys)
	waitForSnapshotCut(t, dirs[0], uint64(preKeys+midKeys-20), 15*time.Second)

	// Let the transfer start but strangle it after two staged chunks: the
	// puller must eventually give up (a visible snapshot failure), leaving a
	// durable 2-chunk staging prefix.
	chunkQuota.Store(2)
	mode.Store(faultChunks)
	deadline := time.Now().Add(30 * time.Second)
	for reps[2].SnapshotFailures() == 0 && time.Now().Before(deadline) {
		time.Sleep(15 * time.Millisecond)
	}
	if reps[2].SnapshotFailures() == 0 {
		t.Fatal("starved pull never surfaced as a snapshot failure")
	}

	// Heal. The re-armed catch-up re-advertises the snapshot, and the retried
	// pull must resume from the staged chunks instead of refetching them.
	mode.Store(faultOff)
	waitKV(t, stores, preKeys+midKeys, 30*time.Second)
	waitReplyCaches(t, reps, 20*time.Second)

	if n := reps[2].StateTransfers(); n == 0 {
		t.Error("victim rejoined without a state transfer; the scenario proved nothing")
	}
	resumed := reps[2].TransferResumedBytes()
	if resumed == 0 {
		t.Error("retried pull restarted from byte 0; staged chunks were not reused")
	}
	if resumed%chunkBytes != 0 {
		t.Errorf("resumed %d bytes, not a chunk boundary (chunk cap %d): staging must fsync whole chunks", resumed, chunkBytes)
	}

	// Wire bound: many frames, none above the cap (+ small frame header).
	if n := chunkFrames.Load(); n < 3 {
		t.Errorf("observed %d SnapshotChunk frames, want a multi-frame stream", n)
	}
	if max := maxChunkFrame.Load(); max > chunkBytes+64 {
		t.Errorf("largest SnapshotChunk frame = %d bytes, exceeds cap %d", max, chunkBytes)
	}

	// Disk bound: the victim's installed snapshot is stored as many capped
	// chunk files, never one unbounded blob.
	var chunkFiles int
	err = filepath.Walk(filepath.Join(dirs[2], "snapshots"), func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".chk") {
			return err
		}
		chunkFiles++
		if info.Size() > chunkBytes {
			t.Errorf("chunk file %s is %d bytes, exceeds cap %d", path, info.Size(), chunkBytes)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if chunkFiles < 2 {
		t.Errorf("victim snapshot dir holds %d chunk files, want a multi-chunk layout", chunkFiles)
	}
}

func TestMultiGroupSnapshotTruncationConverges(t *testing.T) {
	// A clean multi-group cluster snapshotting aggressively: snapshots are
	// cut at merged indices, each group truncates its own log at its share
	// of the prefix, and replicas stay byte-identical throughout.
	net := transport.NewInproc(0)
	peers := []string{"mgs-r0", "mgs-r1", "mgs-r2"}
	var stores []*service.KV
	for i := range 3 {
		kv := service.NewKV()
		rep, err := gosmr.NewReplica(gosmr.Config{
			ID: i, Peers: peers, ClientAddr: fmt.Sprintf("mgs-c%d", i),
			Network:       net,
			Groups:        4,
			SnapshotEvery: 10,
			BatchDelay:    time.Millisecond,
		}, kv)
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rep.Stop)
		stores = append(stores, kv)
	}
	cli, err := gosmr.Dial(gosmr.ClientConfig{
		Addrs:   []string{"mgs-c0", "mgs-c1", "mgs-c2"},
		Network: net, Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)
	for i := range 60 {
		if _, err := cli.Execute(service.EncodePut(fmt.Sprintf("mgs-%d", i), []byte("v"))); err != nil {
			t.Fatalf("PUT %d: %v", i, err)
		}
	}
	waitKV(t, stores, 60, 15*time.Second)
}
