// Command gosmr-client is the closed-loop workload generator of the paper's
// evaluation (Sec. VI): N client goroutines each send a fixed-size request,
// wait for the reply, and immediately send the next. It prints achieved
// throughput and latency percentiles.
//
// Example against a local gosmr-replica cluster:
//
//	gosmr-client -addrs :8000,:8001,:8002 -clients 100 -duration 30s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gosmr"
	"gosmr/internal/service"
)

// reconfigure runs one administrative add/remove against the cluster and
// prints the committed topology: the add output includes the exact flags the
// joiner must be started with.
func reconfigure(addrList []string, add string, removeID int) {
	cli, err := gosmr.Dial(gosmr.ClientConfig{Addrs: addrList, Timeout: 30 * time.Second})
	if err != nil {
		log.Fatalf("dialing cluster: %v", err)
	}
	defer cli.Close()
	var t *gosmr.Topology
	if add != "" {
		parts := strings.SplitN(add, ",", 2)
		if len(parts) != 2 {
			log.Fatalf("-add-replica wants peerAddr,clientAddr (got %q)", add)
		}
		if t, err = cli.AddReplica(parts[0], parts[1]); err != nil {
			log.Fatalf("add replica: %v", err)
		}
		joiner := len(t.Peers) - 1
		fmt.Printf("committed epoch %d: added replica %d\n", t.Epoch, joiner)
		fmt.Printf("start the joiner with:\n  gosmr-replica -id %d -peers %s -client %s -client-peers %s -epoch %d -base-view %d\n",
			joiner, strings.Join(t.Peers, ","), t.Clients[joiner], strings.Join(t.Clients, ","), t.Epoch, t.BaseView)
	} else {
		if t, err = cli.RemoveReplica(removeID); err != nil {
			log.Fatalf("remove replica: %v", err)
		}
		fmt.Printf("committed epoch %d: removed replica %d\n", t.Epoch, removeID)
	}
	fmt.Printf("topology: epoch=%d baseView=%d peers=%v clients=%v\n", t.Epoch, t.BaseView, t.Peers, t.Clients)
}

func main() {
	var (
		addrs    = flag.String("addrs", "", "comma-separated client addresses, indexed by replica ID")
		clients  = flag.Int("clients", 100, "number of closed-loop clients")
		duration = flag.Duration("duration", 30*time.Second, "run duration")
		warmup   = flag.Duration("warmup", 3*time.Second, "warm-up discarded from results")
		payload  = flag.Int("payload", 128, "request payload bytes (paper: 128)")
		kvKeys   = flag.Int("kv-keys", 0, "send well-formed KV PUTs over this many keys per client instead of raw payloads (exercises conflict-aware parallel execution; 0 = raw)")
		addRep   = flag.String("add-replica", "", "administrative mode: commit an add-replica reconfiguration; value is peerAddr,clientAddr of the joiner")
		removeID = flag.Int("remove-replica", -1, "administrative mode: commit a remove-replica reconfiguration for this replica ID")
	)
	flag.Parse()
	if *addrs == "" {
		fmt.Fprintln(os.Stderr, "usage: gosmr-client -addrs a,b,c [-clients N] [-duration D]")
		os.Exit(2)
	}
	addrList := strings.Split(*addrs, ",")

	if *addRep != "" || *removeID >= 0 {
		reconfigure(addrList, *addRep, *removeID)
		return
	}

	var (
		done      atomic.Bool
		completed atomic.Uint64
		measuring atomic.Bool
		latMu     sync.Mutex
		lats      []time.Duration
	)
	body := make([]byte, *payload)

	var wg sync.WaitGroup
	for i := range *clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli, err := gosmr.Dial(gosmr.ClientConfig{Addrs: addrList, Timeout: 30 * time.Second})
			if err != nil {
				log.Printf("client %d: %v", i, err)
				return
			}
			defer cli.Close()
			for n := 0; !done.Load(); n++ {
				req := body
				if *kvKeys > 0 {
					req = service.EncodePut(fmt.Sprintf("c%d-k%d", i, n%*kvKeys), body)
				}
				start := time.Now()
				if _, err := cli.Execute(req); err != nil {
					log.Printf("client %d: %v", i, err)
					return
				}
				if measuring.Load() {
					completed.Add(1)
					if i < 32 { // sample latency from a subset of clients
						latMu.Lock()
						lats = append(lats, time.Since(start))
						latMu.Unlock()
					}
				}
			}
		}(i)
	}

	log.Printf("warming up for %v...", *warmup)
	time.Sleep(*warmup)
	measuring.Store(true)
	start := time.Now()
	time.Sleep(*duration)
	elapsed := time.Since(start)
	done.Store(true)
	wg.Wait()

	total := completed.Load()
	fmt.Printf("clients:    %d\n", *clients)
	fmt.Printf("duration:   %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("requests:   %d\n", total)
	fmt.Printf("throughput: %.0f req/s\n", float64(total)/elapsed.Seconds())
	latMu.Lock()
	defer latMu.Unlock()
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) time.Duration { return lats[int(p*float64(len(lats)-1))] }
		fmt.Printf("latency:    p50=%v p95=%v p99=%v\n",
			pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
			pct(0.99).Round(time.Microsecond))
	}
}
