// Command gosmr-replica runs one replica of a replicated key-value store
// over TCP. Start n=2f+1 of them with the same -peers list, then point
// gosmr-client (or any gosmr.Client) at their -client addresses.
//
// Example (three replicas on one host):
//
//	gosmr-replica -id 0 -peers :7000,:7001,:7002 -client :8000 &
//	gosmr-replica -id 1 -peers :7000,:7001,:7002 -client :8001 &
//	gosmr-replica -id 2 -peers :7000,:7001,:7002 -client :8002 &
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gosmr"
	"gosmr/internal/service"
)

func main() {
	var (
		id          = flag.Int("id", 0, "replica ID (index into -peers)")
		peers       = flag.String("peers", "", "comma-separated replica addresses, indexed by ID")
		clientAddr  = flag.String("client", "", "client-facing listen address")
		workers     = flag.Int("clientio", 4, "ClientIO worker pool size")
		groups      = flag.Int("groups", 1, "parallel ordering (Paxos) groups; must match on every replica")
		window      = flag.Int("window", 10, "pipelining window WND per ordering group")
		batchBytes  = flag.Int("batch", 1300, "batch size budget BSZ in bytes")
		snapEvery   = flag.Int("snapshot-every", 10000, "snapshot every N instances (0 = off)")
		snapChunk   = flag.Int("snapshot-chunk-bytes", 0, "size cap for snapshot chunk files and transfer frames (0 = default; must match on every replica)")
		execWorkers = flag.Int("executor-workers", 1, "parallel execution workers (KV declares per-key conflicts; 1 = sequential)")
		dataDir     = flag.String("data-dir", "", "directory for the write-ahead log and snapshots (empty = in-memory replica, no crash recovery)")
		syncPolicy  = flag.String("sync", "batch", "WAL fsync policy: batch (group commit), always, or none")
		clientPeers = flag.String("client-peers", "", "comma-separated client-facing addresses, indexed by ID (required for reconfigurable clusters)")
		epoch       = flag.Int64("epoch", 0, "topology epoch to boot into (0 = static cluster; a joiner passes the epoch from the committed topology)")
		baseView    = flag.Int64("base-view", 0, "first view of the boot epoch (from the committed topology; only with -epoch > 0)")
		stats       = flag.Duration("stats", 10*time.Second, "stats print interval (0 = off)")
	)
	flag.Parse()

	peerList := strings.Split(*peers, ",")
	if *peers == "" || *clientAddr == "" {
		fmt.Fprintln(os.Stderr, "usage: gosmr-replica -id N -peers a,b,c -client addr")
		os.Exit(2)
	}
	var clientPeerList []string
	if *clientPeers != "" {
		clientPeerList = strings.Split(*clientPeers, ",")
	}

	// A faulted replica (failed disk, or permanently removed from the
	// cluster) has already stopped participating; the daemon should exit
	// rather than linger printing stats for a dead replica.
	faulted := make(chan struct{})
	rep, err := gosmr.NewReplica(gosmr.Config{
		ID:               *id,
		Peers:            peerList,
		ClientAddr:       *clientAddr,
		PeerClientAddrs:  clientPeerList,
		TopologyEpoch:    *epoch,
		TopologyBaseView: *baseView,
		OnFaulted: func(reason string) {
			log.Printf("replica faulted: %s", reason)
			close(faulted)
		},
		ClientIOWorkers:    *workers,
		Groups:             *groups,
		Window:             *window,
		BatchBytes:         *batchBytes,
		SnapshotEvery:      *snapEvery,
		SnapshotChunkBytes: *snapChunk,
		DataDir:            *dataDir,
		SyncPolicy:         *syncPolicy,
		ExecutorWorkers:    *execWorkers,
	}, service.NewKV())
	if err != nil {
		log.Fatalf("configuring replica: %v", err)
	}
	if err := rep.Start(); err != nil {
		log.Fatalf("starting replica: %v", err)
	}
	log.Printf("replica %d up: epoch=%d peers=%v clients=%s", *id, rep.Epoch(), peerList, rep.ClientAddr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if *stats > 0 {
		ticker := time.NewTicker(*stats)
		defer ticker.Stop()
		var last uint64
		for {
			select {
			case <-ticker.C:
				cur := rep.Executed()
				log.Printf("leader=%d view=%d executed=%d (+%.0f/s) decided-batches=%d queues=%v",
					rep.Leader(), rep.View(), cur,
					float64(cur-last)/stats.Seconds(), rep.DecidedBatches(), rep.QueueStats())
				last = cur
			case <-stop:
				log.Printf("shutting down")
				rep.Stop()
				return
			case <-faulted:
				rep.Stop()
				return
			}
		}
	}
	select {
	case <-stop:
	case <-faulted:
	}
	rep.Stop()
}
