// Command gosmr-bench regenerates every figure and table of the paper's
// evaluation (Sec. VI) on the deterministic simulator and prints them in
// paper order. See DESIGN.md §3 for the experiment index and EXPERIMENTS.md
// for paper-vs-measured numbers.
//
// Usage:
//
//	gosmr-bench                      # run everything at full fidelity
//	gosmr-bench -experiment fig10    # one experiment
//	gosmr-bench -measure 1s          # longer measurement windows
//	gosmr-bench -json BENCH_PR7.json # machine-readable perf snapshot
//	                                 # (pipeline throughput sweeps + allocs/op)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gosmr/internal/experiments"
)

func main() {
	var (
		warmup  = flag.Duration("warmup", 200*time.Millisecond, "virtual warm-up per run (discarded)")
		measure = flag.Duration("measure", 500*time.Millisecond, "virtual measurement window per run")
		which   = flag.String("experiment", "all",
			"experiment to run: all, fig1, fig4, fig5, fig6, fig7, fig8, fig9, fig10, fig11, fig12, fig13, fig14, table1, table2, table3, rss, nobatcher, executor, groupscaling, readmix, conflictsweep, bigstate, reconfig")
		jsonPath = flag.String("json", "",
			"write a machine-readable perf snapshot (group-scaling + durability + read-mix + conflict-sweep throughput and latency, codec/WAL/executor allocs/op) to this path and exit")
	)
	flag.Parse()

	start := time.Now()
	if *jsonPath != "" {
		// The perf snapshot runs on the real pipeline (not the simulator):
		// decided-batch throughput across groups/durability plus the
		// zero-copy hot-path alloc probes.
		snap, gr, dr, rm, cs, bs, rc, err := experiments.BenchSnapshot(
			experiments.GroupOptions{Warmup: *warmup, Measure: *measure},
			experiments.DurabilityOptions{Warmup: *warmup, Measure: *measure},
			experiments.ReadMixOptions{Warmup: *warmup, Measure: *measure},
			experiments.ConflictSweepOptions{Warmup: *warmup, Measure: *measure},
			experiments.BigStateOptions{},
			experiments.ReconfigOptions{Warmup: *warmup, Phase: *measure},
		)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench snapshot: %v\n", err)
			os.Exit(1)
		}
		if err := experiments.WriteBenchJSON(*jsonPath, snap); err != nil {
			fmt.Fprintf(os.Stderr, "bench snapshot: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(gr.Report, dr.Report, rm.Report, cs.Report, bs.Report, rc.Report)
		fmt.Printf("\nwrote %s (done in %v)\n", *jsonPath, time.Since(start).Round(time.Millisecond))
		return
	}

	s := experiments.NewSuite(experiments.Options{Warmup: *warmup, Measure: *measure})
	switch strings.ToLower(*which) {
	case "all":
		fmt.Print(s.All())
	case "fig1":
		fmt.Print(s.Fig1().Report)
	case "fig4":
		fmt.Print(s.Fig4().Report)
	case "fig5":
		n3, n5 := s.Fig5()
		fmt.Print(n3.Report, n5.Report)
	case "fig6":
		fmt.Print(s.Fig6().Report)
	case "fig7":
		n3, n5 := s.Fig7()
		fmt.Print(n3.Report, n5.Report)
	case "fig8":
		for _, p := range s.Fig8() {
			fmt.Print(p.Report)
		}
	case "fig9":
		fmt.Print(s.Fig9().Report)
	case "fig10":
		fmt.Print(s.Fig10().Report)
	case "fig11":
		fmt.Print(s.Fig11().Report)
	case "fig12":
		fmt.Print(s.Fig12().Report)
	case "fig13":
		fmt.Print(s.Fig13().Report)
	case "fig14":
		for _, p := range s.Fig14() {
			fmt.Print(p.Report)
		}
	case "table1":
		fmt.Print(s.TableI().Report)
	case "table2":
		fmt.Print(s.TableII().Report)
	case "table3":
		fmt.Print(s.TableIII().Report)
	case "rss":
		fmt.Print(s.AblationRSS().Report)
	case "nobatcher":
		fmt.Print(s.AblationNoBatcher().Report)
	case "executor":
		// Runs on the real pipeline (not the simulator): executed throughput
		// vs executor workers and workload conflict rate.
		fmt.Print(experiments.ExecutorScaling(experiments.ExecutorOptions{
			Warmup: *warmup, Measure: *measure,
		}).Report)
	case "groupscaling":
		// Runs on the real pipeline: decided-batch throughput vs ordering
		// groups, window size, and workload conflict rate.
		fmt.Print(experiments.GroupScaling(experiments.GroupOptions{
			Warmup: *warmup, Measure: *measure,
		}).Report)
	case "conflictsweep":
		// Runs on the real pipeline: op throughput of a mixed single/multi-key
		// transfer workload, fence scheduling vs the barrier compat mode.
		fmt.Print(experiments.ConflictSweep(experiments.ConflictSweepOptions{
			Warmup: *warmup, Measure: *measure,
		}).Report)
	case "bigstate":
		// Runs on the real pipeline and the service layer: cut pause vs
		// state size, delta bytes vs churn, chunked transfer vs frame
		// ceiling.
		bs, err := experiments.BigState(experiments.BigStateOptions{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "bigstate: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bs.Report)
	case "reconfig":
		// Runs on the real pipeline: a live 3→4 replica add under closed-loop
		// write load — throughput dip across the stop-the-group handoff,
		// add commit latency, joiner catch-up, zero acked-write loss.
		rc, err := experiments.Reconfig(experiments.ReconfigOptions{
			Warmup: *warmup, Phase: *measure,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "reconfig: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(rc.Report)
	case "readmix":
		// Runs on the real pipeline: mixed read/write workload on the
		// lease / read-index read path, leader-only vs follower reads,
		// with per-class latency percentiles.
		fmt.Print(experiments.ReadMix(experiments.ReadMixOptions{
			Warmup: *warmup, Measure: *measure,
		}).Report)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *which)
		os.Exit(2)
	}
	fmt.Printf("\n(done in %v)\n", time.Since(start).Round(time.Millisecond))
}
