package gosmr_test

// Disk-fault injection tests: the full replica pipeline with a scripted
// filesystem under it. The network stays clean — these scenarios isolate the
// DISK fault policy (fail-stop for the WAL append path, degrade for snapshot
// persistence, quarantine for read corruption) and check each one against
// the only oracle that matters: after the faulty replica recovers on a
// healthy filesystem, no acknowledged write is missing anywhere.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gosmr"
	"gosmr/internal/service"
	"gosmr/internal/transport"
	"gosmr/internal/vfs"
)

// faultCluster is durableCluster's disk-fault sibling: each replica's entire
// durable path (WAL, snapshots, transfer staging) goes through its own
// scriptable vfs.FaultFS, injected via Config.FS. With no rules installed
// the FaultFS is a passthrough, so a faultCluster behaves exactly like a
// durableCluster until a test scripts a fault.
type faultCluster struct {
	t      *testing.T
	net    *transport.Inproc
	prefix string
	peers  []string
	dirs   []string
	fss    []*vfs.FaultFS
	cfg    gosmr.Config
	reps   []*gosmr.Replica
	stores []*service.KV
}

func newFaultCluster(t *testing.T, prefix string, groups, snapshotEvery int) *faultCluster {
	t.Helper()
	c := &faultCluster{
		t:      t,
		net:    transport.NewInproc(0),
		prefix: prefix,
		peers:  []string{prefix + "-r0", prefix + "-r1", prefix + "-r2"},
	}
	c.cfg = gosmr.Config{
		Peers:             c.peers,
		Network:           c.net,
		Groups:            groups,
		SnapshotEvery:     snapshotEvery,
		SyncPolicy:        "batch",
		BatchDelay:        time.Millisecond,
		HeartbeatInterval: 20 * time.Millisecond,
		SuspectTimeout:    400 * time.Millisecond,
	}
	c.reps = make([]*gosmr.Replica, 3)
	c.stores = make([]*service.KV, 3)
	c.dirs = make([]string, 3)
	c.fss = make([]*vfs.FaultFS, 3)
	for i := range 3 {
		c.dirs[i] = t.TempDir()
		c.fss[i] = vfs.NewFaultFS(nil)
		c.boot(i)
	}
	t.Cleanup(func() {
		for _, r := range c.reps {
			if r != nil {
				r.Stop()
			}
		}
	})
	return c
}

// boot builds and starts replica i from its DataDir through its current
// FaultFS, with a brand-new service instance.
func (c *faultCluster) boot(i int) {
	c.t.Helper()
	cfg := c.cfg
	cfg.ID = i
	cfg.ClientAddr = fmt.Sprintf("%s-c%d", c.prefix, i)
	cfg.DataDir = c.dirs[i]
	cfg.FS = c.fss[i]
	kv := service.NewKV()
	rep, err := gosmr.NewReplica(cfg, kv)
	if err != nil {
		c.t.Fatal(err)
	}
	if err := rep.Start(); err != nil {
		c.t.Fatal(err)
	}
	c.reps[i] = rep
	c.stores[i] = kv
}

// kill stops replica i (idempotent — a fail-stopped replica has already
// begun stopping itself) and discards its in-memory state.
func (c *faultCluster) kill(i int) {
	c.t.Helper()
	c.reps[i].Stop()
	c.reps[i] = nil
	c.stores[i] = nil
}

// bootClean restarts replica i from its (possibly damaged) DataDir on a
// fresh, fault-free filesystem — the "disk replaced / space freed, process
// restarted" recovery event every oracle below ends with.
func (c *faultCluster) bootClean(i int) {
	c.t.Helper()
	c.fss[i] = vfs.NewFaultFS(nil)
	c.boot(i)
}

func (c *faultCluster) client() *gosmr.Client {
	c.t.Helper()
	cli, err := gosmr.Dial(gosmr.ClientConfig{
		Addrs:   []string{c.prefix + "-c0", c.prefix + "-c1", c.prefix + "-c2"},
		Network: c.net, Timeout: 30 * time.Second, AttemptTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	c.t.Cleanup(cli.Close)
	return cli
}

// TestDiskFaultMatrix drives seeded fault schedules through every injection
// point of the durable stack, for 1 and 2 ordering groups. One seed scripts
// the whole matrix: vfs.SeedNth turns (seed, cell) into the occurrence
// number that trips, so each cell hits a different point of the replica's
// write history yet every run of the test replays the same schedules.
//
// Cells split by declared policy:
//
//   - fail-stop (wal-append, wal-fsync, segment-seal): the faulted follower
//     must latch Faulted, stop participating (the surviving quorum keeps
//     committing), and — the oracle — rejoin after a restart on a clean
//     filesystem with every acknowledged write intact.
//   - degrade (manifest-rename, chunk-write-enospc): the replica must NOT
//     stop; the failure is counted in SnapshotFailures, the next cut retries
//     and lands a manifest, and the same no-acked-write-lost oracle holds
//     across a restart.
func TestDiskFaultMatrix(t *testing.T) {
	const seed = 20260808
	cells := []struct {
		name     string
		op       vfs.Op
		path     string
		mode     vfs.Mode
		maxNth   int
		failstop bool
	}{
		// A torn in-place write is the nastiest append failure: half the
		// record lands on disk, so the restart oracle also exercises
		// torn-tail repair.
		{"wal-append", vfs.OpWrite, ".seg", vfs.ModeShortWrite, 20, true},
		// fsyncgate: one failed fsync poisons the whole append path.
		{"wal-fsync", vfs.OpSync, ".seg", vfs.ModeError, 8, true},
		// Close is where some filesystems first report buffered write
		// errors; segments are closed when a checkpoint rolls past them.
		{"segment-seal", vfs.OpClose, ".seg", vfs.ModeError, 2, true},
		// Losing the manifest rename loses the cut, not the replica. The
		// match pins the tmp->committed rename itself ("x.mf.tmp -> x.mf"):
		// a bare "manifest-" would also match the test's TempDir, which
		// embeds the subtest name.
		{"manifest-rename", vfs.OpRename, ".mf.tmp ->", vfs.ModeError, 2, false},
		// ENOSPC on a chunk write additionally drives the retention-shrink
		// reaction (errors.Is(err, ENOSPC) → WAL drops catch-up extras).
		{"chunk-write-enospc", vfs.OpWrite, ".chk", vfs.ModeENOSPC, 3, false},
	}
	for _, groups := range []int{1, 2} {
		for _, cl := range cells {
			t.Run(fmt.Sprintf("%s_groups=%d", cl.name, groups), func(t *testing.T) {
				prefix := fmt.Sprintf("dfm-%s-g%d", cl.name, groups)
				c := newFaultCluster(t, prefix, groups, 8)
				nth := vfs.SeedNth(seed, prefix, cl.maxNth)
				c.fss[2].Fail(vfs.Rule{
					Op: cl.op, Path: cl.path, Nth: nth,
					Sticky: cl.failstop, Mode: cl.mode,
				})
				cli := c.client()
				total := 0
				if cl.failstop {
					// Write until the scripted fault trips on follower 2 and
					// it latches the fail-stop state.
					for i := 0; i < 600 && !c.reps[2].Faulted(); i++ {
						putKeys(t, cli, "k", total, 1)
						total++
					}
					if !c.reps[2].Faulted() {
						t.Fatalf("replica 2 never fail-stopped after %d writes (nth=%d, trips=%v)",
							total, nth, c.fss[2].Trips())
					}
					if c.reps[2].WALFaults() == 0 {
						t.Error("Faulted replica reports zero WALFaults")
					}
					// A fail-stopped follower must look dead, not block the
					// quorum: the survivors keep acknowledging writes.
					putKeys(t, cli, "post", 0, 10)
					total += 10
				} else {
					// Write until the scripted fault trips on a snapshot cut.
					for i := 0; i < 600 && c.reps[2].SnapshotFailures() == 0; i++ {
						putKeys(t, cli, "k", total, 1)
						total++
					}
					if c.reps[2].SnapshotFailures() == 0 {
						t.Fatalf("snapshot fault never surfaced after %d writes (nth=%d, trips=%v)",
							total, nth, c.fss[2].Trips())
					}
					if c.reps[2].Faulted() {
						t.Fatal("degrade-class fault fail-stopped the replica")
					}
					// The fault was transient: the next cut retries the
					// persist and must land a manifest on replica 2's disk.
					putKeys(t, cli, "post", 0, 30)
					total += 30
					waitForSnapshotCut(t, c.dirs[2], 8, 20*time.Second)
					if c.reps[2].Faulted() {
						t.Fatal("replica 2 fail-stopped while degrading")
					}
				}
				// Oracle: restart replica 2 from whatever its damaged run
				// left on disk, on a healthy filesystem. Every acknowledged
				// write must reappear on all three replicas — from replica
				// 2's own durable prefix plus catch-up/state transfer for
				// the rest.
				c.kill(2)
				c.bootClean(2)
				waitKV(t, c.stores, total, 30*time.Second)
				waitReplyCaches(t, c.reps, 20*time.Second)
			})
		}
	}
}

// TestCorruptWALSegmentBootQuarantines corrupts a SEALED (non-final) WAL
// segment of a stopped replica — silent media corruption, not a crash
// artifact — and restarts it. Because the replica has two live peers, boot
// must not refuse: the corrupt group's segments are quarantined to
// *.corrupt (visible in DiskQuarantines and preserved for forensics) and
// the replica rejoins via catch-up/state transfer, converging on every
// acknowledged write.
func TestCorruptWALSegmentBootQuarantines(t *testing.T) {
	const prefix = "quar"
	c := newFaultCluster(t, prefix, 1, 8)
	cli := c.client()
	putKeys(t, cli, "pre", 0, 20)
	waitKV(t, c.stores, 20, 15*time.Second)
	c.kill(2)

	// Find the newest segment of group 0, then plant a crafted successor
	// holding only a valid header (copied from the real segment). That makes
	// the real segment non-final, so the corruption below cannot be
	// mistaken for a legal torn tail of the live append target.
	gdir := filepath.Join(c.dirs[2], "group-0")
	entries, err := os.ReadDir(gdir)
	if err != nil {
		t.Fatal(err)
	}
	maxSeq := 0
	for _, e := range entries {
		var seq int
		if _, err := fmt.Sscanf(e.Name(), "wal-%08d.seg", &seq); err == nil &&
			e.Name() == fmt.Sprintf("wal-%08d.seg", seq) && seq > maxSeq {
			maxSeq = seq
		}
	}
	if maxSeq == 0 {
		t.Fatalf("no WAL segments in %s", gdir)
	}
	segPath := filepath.Join(gdir, fmt.Sprintf("wal-%08d.seg", maxSeq))
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 16 {
		t.Fatalf("segment %s is only %d bytes; nothing to corrupt", segPath, len(data))
	}
	successor := filepath.Join(gdir, fmt.Sprintf("wal-%08d.seg", maxSeq+1))
	if err := os.WriteFile(successor, data[:8], 0o644); err != nil {
		t.Fatal(err)
	}
	// Flip the first record's bytes: its CRC cannot match.
	for i := 8; i < 12; i++ {
		data[i] ^= 0xFF
	}
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	c.bootClean(2)
	if got := c.reps[2].DiskQuarantines(); got < 2 {
		t.Errorf("DiskQuarantines = %d, want >= 2 (corrupt segment + crafted successor)", got)
	}
	quarantined, err := filepath.Glob(filepath.Join(gdir, "*.seg.corrupt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(quarantined) < 2 {
		t.Errorf("found %d *.seg.corrupt files in %s, want >= 2", len(quarantined), gdir)
	}
	// The quarantined replica rejoins and converges; new writes still land.
	putKeys(t, cli, "post", 0, 10)
	waitKV(t, c.stores, 30, 30*time.Second)
	waitReplyCaches(t, c.reps, 20*time.Second)
}

// TestPullStageWriteFaultDegrades wipes a replica and makes the first write
// to its snapshot-transfer staging file fail. A pull-stage fault is
// degrade-class: the failed pull surfaces in SnapshotFailures, the replica
// keeps running, and the retried transfer (the fault was transient)
// completes the rejoin.
func TestPullStageWriteFaultDegrades(t *testing.T) {
	const prefix = "pullf"
	c := newFaultCluster(t, prefix, 1, 8)
	cli := c.client()
	putKeys(t, cli, "pre", 0, 40)
	waitKV(t, c.stores, 40, 15*time.Second)

	// Wipe replica 2 entirely: its gap now starts at instance 0, far below
	// the survivors' WAL retention, so only a snapshot transfer can close it.
	c.kill(2)
	if err := os.RemoveAll(c.dirs[2]); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(c.dirs[2], 0o755); err != nil {
		t.Fatal(err)
	}
	c.fss[2] = vfs.NewFaultFS(nil).Fail(vfs.Rule{Op: vfs.OpWrite, Path: "pull-"})
	c.boot(2)

	waitKV(t, c.stores, 40, 30*time.Second)
	waitReplyCaches(t, c.reps, 20*time.Second)
	if c.reps[2].SnapshotFailures() == 0 {
		t.Error("failed stage write never surfaced as a snapshot failure")
	}
	if c.reps[2].StateTransfers() == 0 {
		t.Error("wiped replica rejoined without a state transfer; the scenario proved nothing")
	}
	if c.reps[2].Faulted() {
		t.Error("pull-stage fault fail-stopped the replica; staging faults must degrade")
	}
	if n := c.reps[2].WALFaults(); n != 0 {
		t.Errorf("WALFaults = %d after a staging-only fault, want 0", n)
	}
}
