package gosmr

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"gosmr/internal/transport"
	"gosmr/internal/wire"
)

// Client errors.
var (
	// ErrTimeout reports that a request did not complete within
	// ClientConfig.Timeout despite retries and failover.
	ErrTimeout = errors.New("gosmr: request timed out")
	// ErrClientClosed reports use of a closed client.
	ErrClientClosed = errors.New("gosmr: client closed")
)

// ClientConfig configures a Client.
type ClientConfig struct {
	// Addrs lists every replica's client-facing address, indexed by replica
	// ID (required — redirects name replicas by ID).
	Addrs []string
	// Network selects the transport; nil means TCP. Must match the
	// replicas' transport.
	Network Network
	// Timeout bounds one Execute call end to end, including retries
	// (default 10s).
	Timeout time.Duration
	// AttemptTimeout bounds one network attempt before the client resends
	// or fails over (default 500ms).
	AttemptTimeout time.Duration
	// ID overrides the client's unique ID (default: crypto-random).
	// Reusing an ID across live clients breaks at-most-once semantics.
	ID uint64
	// InitialTarget is the replica to contact first (default 0). Redirects
	// move the client to the leader regardless of the starting point.
	InitialTarget int
}

// Client is a synchronous SMR client: it tracks the leader, retries across
// replica failures, and tags every request with a (clientID, sequence) pair
// so the cluster executes it at most once. One request is outstanding at a
// time; concurrent Execute calls are serialized.
type Client struct {
	cfg ClientConfig

	mu      sync.Mutex
	id      uint64
	seq     uint64
	target  int // replica we currently believe is leader
	conn    transport.FrameConn
	replies chan *wire.ClientReply
	closed  bool
	wg      sync.WaitGroup
}

// Dial returns a ready client. It does not connect eagerly; the first
// Execute establishes the connection.
func Dial(cfg ClientConfig) (*Client, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("gosmr: ClientConfig.Addrs is empty")
	}
	if cfg.Network == nil {
		cfg.Network = TCPNetwork()
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 500 * time.Millisecond
	}
	id := cfg.ID
	if id == 0 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return nil, fmt.Errorf("gosmr: generating client ID: %w", err)
		}
		id = binary.LittleEndian.Uint64(b[:]) | 1 // never zero
	}
	target := cfg.InitialTarget
	if target < 0 || target >= len(cfg.Addrs) {
		target = 0
	}
	return &Client{cfg: cfg, id: id, target: target}, nil
}

// ID returns the client's unique ID.
func (c *Client) ID() uint64 {
	return c.id
}

// Execute submits req and blocks until the cluster executes it and returns
// the service's reply, or the configured timeout expires. Safe for
// concurrent use (calls are serialized: the protocol permits one outstanding
// request per client ID).
func (c *Client) Execute(req []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClientClosed
	}
	c.seq++
	frame := wire.Marshal(&wire.ClientRequest{ClientID: c.id, Seq: c.seq, Payload: req})
	deadline := time.Now().Add(c.cfg.Timeout)

	for time.Now().Before(deadline) {
		if c.conn == nil {
			if err := c.connectLocked(); err != nil {
				c.rotateLocked()
				c.sleepLocked(20 * time.Millisecond)
				continue
			}
		}
		if err := c.conn.WriteFrame(frame); err != nil {
			c.dropConnLocked()
			c.rotateLocked()
			continue
		}
		reply, ok := c.awaitLocked(deadline)
		if !ok {
			// Attempt timed out: resend on the same or the next replica.
			// The reply cache makes the retry idempotent.
			c.dropConnLocked()
			c.rotateLocked()
			continue
		}
		// Copy the fields out and release the pooled struct before acting on
		// it; the retained payload is ours to return.
		replyOK, redirect, payload := reply.OK, reply.Redirect, reply.Payload
		wire.Release(reply)
		switch {
		case replyOK:
			return payload, nil
		case redirect >= 0 && int(redirect) < len(c.cfg.Addrs):
			if int(redirect) == c.target {
				// The target thinks it will lead but has not established
				// leadership yet; wait briefly and retry.
				c.sleepLocked(20 * time.Millisecond)
			} else {
				c.dropConnLocked()
				c.target = int(redirect)
			}
		default:
			c.sleepLocked(20 * time.Millisecond)
		}
	}
	return nil, ErrTimeout
}

// Read submits a read-only request on the read path: the contacted replica
// answers from local state — leaseholder after a lease check, follower after
// one read-index round — without ordering the read through the log. When the
// read path is unavailable (leases disabled, leadership in flux, replica
// overloaded) Read transparently falls back to Execute, which orders the
// request like a write. The payload must therefore be read-only: it may be
// executed through the ordered path, where it runs under the at-most-once
// machinery like any command.
//
// Unlike Execute, Read does not fail over across replicas on its own — the
// point of follower reads is to read from the replica you picked — so a dead
// target simply falls back to the ordered path (which does fail over).
func (c *Client) Read(req []byte, rc ReadConsistency) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.seq++
	frame := wire.Marshal(&wire.ClientRead{
		ClientID: c.id, Seq: c.seq, Consistency: uint8(rc), Payload: req,
	})
	deadline := time.Now().Add(c.cfg.Timeout)
	pinned := c.target
	served, payload := false, []byte(nil)
	if c.conn != nil || c.connectLocked() == nil {
		if err := c.conn.WriteFrame(frame); err != nil {
			c.dropConnLocked()
		} else if reply, ok := c.awaitLocked(deadline); !ok {
			c.dropConnLocked()
		} else {
			served, payload = reply.OK, reply.Payload
			wire.Release(reply)
		}
	}
	c.mu.Unlock()
	if served {
		return payload, nil
	}
	// Bounced or timed out: order the read like a write (always correct;
	// reads are idempotent, so the retry machinery applies unchanged). The
	// ordered path redirects toward the leader, so re-pin the client to the
	// replica it was reading from afterwards — one unavailable read must not
	// silently turn a follower-reading client into a leader-reading one.
	out, err := c.Execute(req)
	c.mu.Lock()
	if !c.closed && c.target != pinned {
		c.dropConnLocked()
		c.target = pinned
	}
	c.mu.Unlock()
	return out, err
}

// connectLocked dials the current target and starts its reader goroutine.
func (c *Client) connectLocked() error {
	conn, err := c.cfg.Network.Dial(c.cfg.Addrs[c.target])
	if err != nil {
		return err
	}
	c.conn = conn
	c.replies = make(chan *wire.ClientReply, 16)
	replies := c.replies
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer close(replies)
		for {
			f, pooled, err := transport.ReadFrameOwned(conn)
			if err != nil {
				return
			}
			msg, err := wire.Unmarshal(f)
			if err != nil {
				transport.RecycleFrame(f, pooled)
				continue
			}
			rep, ok := msg.(*wire.ClientReply)
			if !ok {
				wire.Release(msg)
				transport.RecycleFrame(f, pooled)
				continue
			}
			// The reply outlives the frame (it crosses the channel to
			// Execute): copy its payload out, then recycle the frame.
			wire.Retain(rep)
			transport.RecycleFrame(f, pooled)
			select {
			case replies <- rep:
			default: // slow consumer: drop; the request layer retries
				wire.Release(rep)
			}
		}
	}()
	return nil
}

// awaitLocked waits for the reply to the current sequence number.
func (c *Client) awaitLocked(deadline time.Time) (*wire.ClientReply, bool) {
	attempt := time.Now().Add(c.cfg.AttemptTimeout)
	if attempt.After(deadline) {
		attempt = deadline
	}
	timer := time.NewTimer(time.Until(attempt))
	defer timer.Stop()
	for {
		select {
		case rep, ok := <-c.replies:
			if !ok {
				return nil, false // connection died
			}
			if rep.ClientID != c.id || rep.Seq != c.seq {
				wire.Release(rep)
				continue // stale reply from an earlier attempt
			}
			return rep, true
		case <-timer.C:
			return nil, false
		}
	}
}

// dropConnLocked closes the current connection (reader exits on its own).
func (c *Client) dropConnLocked() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
}

// rotateLocked moves to the next replica address.
func (c *Client) rotateLocked() {
	c.target = (c.target + 1) % len(c.cfg.Addrs)
}

// sleepLocked pauses briefly without giving up the client lock (Execute is
// serialized anyway).
func (c *Client) sleepLocked(d time.Duration) {
	time.Sleep(d)
}

// Close releases the client's connection. In-flight Execute calls fail.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	c.dropConnLocked()
	c.mu.Unlock()
	c.wg.Wait()
}
