package gosmr

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"gosmr/internal/transport"
	"gosmr/internal/wire"
)

// Client errors.
var (
	// ErrTimeout reports that a request did not complete within
	// ClientConfig.Timeout despite retries and failover.
	ErrTimeout = errors.New("gosmr: request timed out")
	// ErrClientClosed reports use of a closed client.
	ErrClientClosed = errors.New("gosmr: client closed")
)

// ClientConfig configures a Client.
type ClientConfig struct {
	// Addrs lists every replica's client-facing address, indexed by replica
	// ID (required — redirects name replicas by ID).
	Addrs []string
	// Network selects the transport; nil means TCP. Must match the
	// replicas' transport.
	Network Network
	// Timeout bounds one Execute call end to end, including retries
	// (default 10s).
	Timeout time.Duration
	// AttemptTimeout bounds one network attempt before the client resends
	// or fails over (default 500ms).
	AttemptTimeout time.Duration
	// ID overrides the client's unique ID (default: crypto-random).
	// Reusing an ID across live clients breaks at-most-once semantics.
	ID uint64
	// InitialTarget is the replica to contact first (default 0). Redirects
	// move the client to the leader regardless of the starting point.
	InitialTarget int
}

// Client is a synchronous SMR client: it tracks the leader, retries across
// replica failures, and tags every request with a (clientID, sequence) pair
// so the cluster executes it at most once. One request is outstanding at a
// time; concurrent Execute calls are serialized.
type Client struct {
	cfg ClientConfig

	mu      sync.Mutex
	id      uint64
	seq     uint64
	target  int // replica we currently believe is leader
	conn    transport.FrameConn
	replies chan *wire.ClientReply
	closed  bool
	wg      sync.WaitGroup

	// The client's view of the cluster topology, re-resolved from every
	// TopoUpdate a replica pushes (connection greeting, reconfiguration
	// broadcast, stale-epoch bounce). Guarded by its own mutex: the reader
	// goroutine updates it while Execute holds mu awaiting a reply.
	topoMu sync.Mutex
	epoch  int64
	addrs  []string // client-facing addresses by replica ID; "" = removed
}

// Dial returns a ready client. It does not connect eagerly; the first
// Execute establishes the connection.
func Dial(cfg ClientConfig) (*Client, error) {
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("gosmr: ClientConfig.Addrs is empty")
	}
	if cfg.Network == nil {
		cfg.Network = TCPNetwork()
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 500 * time.Millisecond
	}
	id := cfg.ID
	if id == 0 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return nil, fmt.Errorf("gosmr: generating client ID: %w", err)
		}
		id = binary.LittleEndian.Uint64(b[:]) | 1 // never zero
	}
	target := cfg.InitialTarget
	if target < 0 || target >= len(cfg.Addrs) {
		target = 0
	}
	return &Client{
		cfg:    cfg,
		id:     id,
		target: target,
		addrs:  append([]string(nil), cfg.Addrs...),
	}, nil
}

// applyTopo folds a received topology into the client's address map. Stale
// epochs are ignored; replicas without a client-facing address in the update
// keep whatever the client already had for that ID.
func (c *Client) applyTopo(t *wire.Topology) {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	if t.Epoch <= c.epoch {
		return
	}
	c.epoch = t.Epoch
	for len(c.addrs) < len(t.Peers) {
		c.addrs = append(c.addrs, "")
	}
	for i := range t.Peers {
		switch {
		case t.Peers[i] == "":
			c.addrs[i] = "" // removed: never dial it again
		case i < len(t.Clients) && t.Clients[i] != "":
			c.addrs[i] = t.Clients[i]
		}
	}
}

// Epoch returns the highest topology epoch the client has learned.
func (c *Client) Epoch() int64 {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	return c.epoch
}

// ClientAddrs returns a copy of the client's current address map (by replica
// ID; "" marks a removed replica).
func (c *Client) ClientAddrs() []string {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	return append([]string(nil), c.addrs...)
}

// addrAt returns replica id's client-facing address ("" if unknown/removed).
func (c *Client) addrAt(id int) string {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	if id < 0 || id >= len(c.addrs) {
		return ""
	}
	return c.addrs[id]
}

// numAddrs returns the size of the address map (removed slots included).
func (c *Client) numAddrs() int {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	return len(c.addrs)
}

// ID returns the client's unique ID.
func (c *Client) ID() uint64 {
	return c.id
}

// Execute submits req and blocks until the cluster executes it and returns
// the service's reply, or the configured timeout expires. Safe for
// concurrent use (calls are serialized: the protocol permits one outstanding
// request per client ID).
func (c *Client) Execute(req []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClientClosed
	}
	c.seq++
	frame := wire.Marshal(&wire.ClientRequest{ClientID: c.id, Seq: c.seq, Payload: req})
	deadline := time.Now().Add(c.cfg.Timeout)

	for time.Now().Before(deadline) {
		if c.conn == nil {
			if err := c.connectLocked(); err != nil {
				c.rotateLocked()
				c.sleepLocked(20 * time.Millisecond)
				continue
			}
		}
		if err := c.conn.WriteFrame(frame); err != nil {
			c.dropConnLocked()
			c.rotateLocked()
			continue
		}
		reply, ok := c.awaitLocked(deadline)
		if !ok {
			// Attempt timed out: resend on the same or the next replica.
			// The reply cache makes the retry idempotent.
			c.dropConnLocked()
			c.rotateLocked()
			continue
		}
		// Copy the fields out and release the pooled struct before acting on
		// it; the retained payload is ours to return.
		replyOK, redirect, payload := reply.OK, reply.Redirect, reply.Payload
		wire.Release(reply)
		switch {
		case replyOK:
			return payload, nil
		case redirect >= 0 && c.addrAt(int(redirect)) != "":
			if int(redirect) == c.target {
				// The target thinks it will lead but has not established
				// leadership yet; wait briefly and retry.
				c.sleepLocked(20 * time.Millisecond)
			} else {
				c.dropConnLocked()
				c.target = int(redirect)
			}
		default:
			c.sleepLocked(20 * time.Millisecond)
		}
	}
	return nil, ErrTimeout
}

// Read submits a read-only request on the read path: the contacted replica
// answers from local state — leaseholder after a lease check, follower after
// one read-index round — without ordering the read through the log. When the
// read path is unavailable (leases disabled, leadership in flux, replica
// overloaded) Read transparently falls back to Execute, which orders the
// request like a write. The payload must therefore be read-only: it may be
// executed through the ordered path, where it runs under the at-most-once
// machinery like any command.
//
// Unlike Execute, Read does not fail over across replicas on its own — the
// point of follower reads is to read from the replica you picked — so a dead
// target simply falls back to the ordered path (which does fail over).
func (c *Client) Read(req []byte, rc ReadConsistency) ([]byte, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	c.seq++
	frame := wire.Marshal(&wire.ClientRead{
		ClientID: c.id, Seq: c.seq, Consistency: uint8(rc), Payload: req,
	})
	deadline := time.Now().Add(c.cfg.Timeout)
	pinned := c.target
	served, payload := false, []byte(nil)
	if c.conn != nil || c.connectLocked() == nil {
		if err := c.conn.WriteFrame(frame); err != nil {
			c.dropConnLocked()
		} else if reply, ok := c.awaitLocked(deadline); !ok {
			c.dropConnLocked()
		} else {
			served, payload = reply.OK, reply.Payload
			wire.Release(reply)
		}
	}
	c.mu.Unlock()
	if served {
		return payload, nil
	}
	// Bounced or timed out: order the read like a write (always correct;
	// reads are idempotent, so the retry machinery applies unchanged). The
	// ordered path redirects toward the leader, so re-pin the client to the
	// replica it was reading from afterwards — one unavailable read must not
	// silently turn a follower-reading client into a leader-reading one.
	out, err := c.Execute(req)
	c.mu.Lock()
	if !c.closed && c.target != pinned && c.addrAt(pinned) != "" {
		c.dropConnLocked()
		c.target = pinned
	}
	c.mu.Unlock()
	return out, err
}

// AddReplica asks the cluster to commit a single-step reconfiguration
// appending one replica with the given peer-facing and client-facing
// addresses, following redirects to the leader. It returns the committed
// topology — the joiner must be booted with exactly this topology as its
// configuration seed.
func (c *Client) AddReplica(peerAddr, clientAddr string) (*Topology, error) {
	return c.reconfigure(-1, peerAddr, clientAddr)
}

// RemoveReplica asks the cluster to commit a single-step reconfiguration
// removing replica id, following redirects to the leader.
func (c *Client) RemoveReplica(id int) (*Topology, error) {
	return c.reconfigure(int32(id), "", "")
}

// reconfigure runs one administrative request. Unlike Execute it does NOT
// resend after a successful write whose reply timed out: config commands
// bypass the reply cache, so a blind retry could commit the change twice.
// The caller checks the cluster topology and retries deliberately.
func (c *Client) reconfigure(remove int32, peerAddr, clientAddr string) (*Topology, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClientClosed
	}
	c.seq++
	frame := wire.Marshal(&wire.Reconfig{
		ClientID: c.id, Seq: c.seq,
		Remove: remove, PeerAddr: peerAddr, ClientAddr: clientAddr,
	})
	deadline := time.Now().Add(c.cfg.Timeout)

	for time.Now().Before(deadline) {
		if c.conn == nil {
			if err := c.connectLocked(); err != nil {
				c.rotateLocked()
				c.sleepLocked(20 * time.Millisecond)
				continue
			}
		}
		if err := c.conn.WriteFrame(frame); err != nil {
			c.dropConnLocked()
			c.rotateLocked()
			continue
		}
		reply, ok := c.awaitLocked(deadline)
		if !ok {
			c.dropConnLocked()
			return nil, fmt.Errorf("gosmr: reconfiguration outcome unknown (no reply); inspect the cluster topology before retrying")
		}
		replyOK, redirect, payload := reply.OK, reply.Redirect, reply.Payload
		wire.Release(reply)
		switch {
		case replyOK:
			t, err := wire.DecodeTopology(payload)
			if err != nil {
				return nil, fmt.Errorf("gosmr: malformed topology in reconfiguration reply: %w", err)
			}
			c.applyTopo(t)
			return t, nil
		case redirect >= 0 && c.addrAt(int(redirect)) != "":
			if int(redirect) == c.target {
				c.sleepLocked(20 * time.Millisecond)
			} else {
				c.dropConnLocked()
				c.target = int(redirect)
			}
		case len(payload) > 0:
			return nil, fmt.Errorf("gosmr: reconfiguration refused: %s", payload)
		default:
			c.sleepLocked(20 * time.Millisecond)
		}
	}
	return nil, ErrTimeout
}

// connectLocked dials the current target and starts its reader goroutine.
func (c *Client) connectLocked() error {
	addr := c.addrAt(c.target)
	if addr == "" {
		return fmt.Errorf("gosmr: replica %d has no client address (removed?)", c.target)
	}
	conn, err := c.cfg.Network.Dial(addr)
	if err != nil {
		return err
	}
	c.conn = conn
	c.replies = make(chan *wire.ClientReply, 16)
	replies := c.replies
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer close(replies)
		for {
			f, pooled, err := transport.ReadFrameOwned(conn)
			if err != nil {
				return
			}
			msg, err := wire.Unmarshal(f)
			if err != nil {
				transport.RecycleFrame(f, pooled)
				continue
			}
			if tu, ok := msg.(*wire.TopoUpdate); ok {
				// The topology's strings are owned (decoded by copy), so it
				// survives the frame recycle.
				t := tu.Topo
				transport.RecycleFrame(f, pooled)
				c.applyTopo(&t)
				continue
			}
			rep, ok := msg.(*wire.ClientReply)
			if !ok {
				wire.Release(msg)
				transport.RecycleFrame(f, pooled)
				continue
			}
			// The reply outlives the frame (it crosses the channel to
			// Execute): copy its payload out, then recycle the frame.
			wire.Retain(rep)
			transport.RecycleFrame(f, pooled)
			select {
			case replies <- rep:
			default: // slow consumer: drop; the request layer retries
				wire.Release(rep)
			}
		}
	}()
	return nil
}

// awaitLocked waits for the reply to the current sequence number.
func (c *Client) awaitLocked(deadline time.Time) (*wire.ClientReply, bool) {
	attempt := time.Now().Add(c.cfg.AttemptTimeout)
	if attempt.After(deadline) {
		attempt = deadline
	}
	timer := time.NewTimer(time.Until(attempt))
	defer timer.Stop()
	for {
		select {
		case rep, ok := <-c.replies:
			if !ok {
				return nil, false // connection died
			}
			if rep.ClientID != c.id || rep.Seq != c.seq {
				wire.Release(rep)
				continue // stale reply from an earlier attempt
			}
			return rep, true
		case <-timer.C:
			return nil, false
		}
	}
}

// dropConnLocked closes the current connection (reader exits on its own).
func (c *Client) dropConnLocked() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
}

// rotateLocked moves to the next live replica address, skipping the holes
// removed replicas leave behind.
func (c *Client) rotateLocked() {
	n := c.numAddrs()
	for range n {
		c.target = (c.target + 1) % n
		if c.addrAt(c.target) != "" {
			return
		}
	}
}

// sleepLocked pauses briefly without giving up the client lock (Execute is
// serialized anyway).
func (c *Client) sleepLocked(d time.Duration) {
	time.Sleep(d)
}

// Close releases the client's connection. In-flight Execute calls fail.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	c.dropConnLocked()
	c.mu.Unlock()
	c.wg.Wait()
}
