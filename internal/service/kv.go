package service

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// KV command opcodes.
const (
	kvPut byte = iota + 1
	kvGet
	kvDel
)

// KV status bytes returned as the first byte of every reply.
const (
	KVOK       byte = 1
	KVNotFound byte = 2
	KVBadCmd   byte = 3
)

// KV is a deterministic key-value store service (the coordination-service
// workload of the paper's introduction). Commands and replies are binary;
// use EncodePut/EncodeGet/EncodeDel to build requests.
//
// KV implements ConflictAware (Keys): each command declares the single key
// it touches, so a replica configured with ExecutorWorkers > 1 executes
// commands on different keys concurrently. KV is internally synchronized so
// executor workers, examples, and tests can all touch it safely.
type KV struct {
	// ExecuteCost adds that many rounds of hash mixing per command before
	// the state update, emulating a service with non-trivial per-command
	// processing (the knob behind the executor-scaling experiments; 0 for
	// the plain store). The work depends only on the request bytes, so it is
	// deterministic, and it runs outside the state lock, so it parallelizes.
	ExecuteCost int

	mu sync.Mutex
	m  map[string][]byte
}

// NewKV returns an empty store.
func NewKV() *KV { return &KV{m: make(map[string][]byte)} }

// Len returns the number of keys.
func (s *KV) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// EncodePut builds a PUT command.
func EncodePut(key string, value []byte) []byte {
	b := []byte{kvPut}
	b = appendBytes(b, []byte(key))
	b = appendBytes(b, value)
	return b
}

// EncodeGet builds a GET command.
func EncodeGet(key string) []byte {
	return appendBytes([]byte{kvGet}, []byte(key))
}

// EncodeDel builds a DEL command.
func EncodeDel(key string) []byte {
	return appendBytes([]byte{kvDel}, []byte(key))
}

// DecodeReply splits a KV reply into status and value.
func DecodeReply(reply []byte) (status byte, value []byte) {
	if len(reply) == 0 {
		return KVBadCmd, nil
	}
	return reply[0], reply[1:]
}

// Keys implements ConflictAware: every well-formed command conflicts exactly
// on the key it addresses. Malformed commands return nil, which the executor
// treats as a global barrier — the conservative answer.
func (s *KV) Keys(req []byte) []string {
	if len(req) == 0 {
		return nil
	}
	switch req[0] {
	case kvPut, kvGet, kvDel:
		if key, _, ok := takeBytes(req[1:]); ok {
			return []string{string(key)}
		}
	}
	return nil
}

// Execute implements the service.
func (s *KV) Execute(req []byte) []byte {
	if s.ExecuteCost > 0 {
		spin(req, s.ExecuteCost)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(req) == 0 {
		return []byte{KVBadCmd}
	}
	op, rest := req[0], req[1:]
	key, rest, ok := takeBytes(rest)
	if !ok {
		return []byte{KVBadCmd}
	}
	switch op {
	case kvPut:
		value, _, ok := takeBytes(rest)
		if !ok {
			return []byte{KVBadCmd}
		}
		cp := make([]byte, len(value))
		copy(cp, value)
		s.m[string(key)] = cp
		return []byte{KVOK}
	case kvGet:
		v, ok := s.m[string(key)]
		if !ok {
			return []byte{KVNotFound}
		}
		return append([]byte{KVOK}, v...)
	case kvDel:
		if _, ok := s.m[string(key)]; !ok {
			return []byte{KVNotFound}
		}
		delete(s.m, string(key))
		return []byte{KVOK}
	default:
		return []byte{KVBadCmd}
	}
}

// Snapshot implements the service: keys serialized in sorted order so the
// blob is deterministic across replicas.
func (s *KV) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b := appendU32(nil, uint32(len(keys)))
	for _, k := range keys {
		b = appendBytes(b, []byte(k))
		b = appendBytes(b, s.m[k])
	}
	return b, nil
}

// Restore implements the service.
func (s *KV) Restore(snap []byte) error {
	n, rest, ok := takeU32(snap)
	if !ok {
		return ErrCorruptSnapshot
	}
	m := make(map[string][]byte, n)
	for range n {
		var key, value []byte
		key, rest, ok = takeBytes(rest)
		if !ok {
			return ErrCorruptSnapshot
		}
		value, rest, ok = takeBytes(rest)
		if !ok {
			return ErrCorruptSnapshot
		}
		m[string(key)] = value
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorruptSnapshot, len(rest))
	}
	s.mu.Lock()
	s.m = m
	s.mu.Unlock()
	return nil
}

// spin burns rounds of FNV-1a mixing over req — pure CPU work with no
// allocation, the stand-in for real command processing. It runs on
// concurrent executor workers, so the sink write is atomic.
func spin(req []byte, rounds int) {
	h := uint64(14695981039346656037)
	for range rounds {
		for _, b := range req {
			h ^= uint64(b)
			h *= 1099511628211
		}
	}
	spinSink.Store(h)
}

// spinSink keeps the compiler from eliminating spin's loop.
var spinSink atomic.Uint64

// appendU32/appendBytes/takeU32/takeBytes are tiny length-prefixed codec
// helpers shared by the services.
func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendBytes(b, v []byte) []byte {
	b = appendU32(b, uint32(len(v)))
	return append(b, v...)
}

func takeU32(b []byte) (uint32, []byte, bool) {
	if len(b) < 4 {
		return 0, nil, false
	}
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	return v, b[4:], true
}

func takeBytes(b []byte) ([]byte, []byte, bool) {
	n, rest, ok := takeU32(b)
	if !ok || uint64(n) > uint64(len(rest)) {
		return nil, nil, false
	}
	return rest[:n], rest[n:], true
}
