package service

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// KV command opcodes.
const (
	kvPut byte = iota + 1
	kvGet
	kvDel
	kvMGet
	kvMSet
	kvTxn
)

// KV status bytes returned as the first byte of every reply.
const (
	KVOK       byte = 1
	KVNotFound byte = 2
	KVBadCmd   byte = 3
	// KVInsufficient is a TXN transfer refusing to overdraw the source
	// account (its balance was below the transfer amount).
	KVInsufficient byte = 4
)

// KV is a deterministic key-value store service (the coordination-service
// workload of the paper's introduction). Commands and replies are binary;
// use EncodePut/EncodeGet/EncodeDel (single key) and
// EncodeMGet/EncodeMSet/EncodeTxn (multi-key) to build requests.
//
// KV implements ConflictAware (Keys): each command declares exactly the keys
// it touches — one for PUT/GET/DEL, all of them for MGET/MSET, and the two
// accounts of a TXN transfer — so a replica configured with
// ExecutorWorkers > 1 executes commands on disjoint keys concurrently and
// fence-schedules multi-key commands onto only their involved workers. KV is
// internally synchronized so executor workers, examples, and tests can all
// touch it safely.
type KV struct {
	// ExecuteCost adds that many rounds of hash mixing per command before
	// the state update, emulating a service with non-trivial per-command
	// processing (the knob behind the executor-scaling experiments; 0 for
	// the plain store). The work depends only on the request bytes, so it is
	// deterministic, and it runs outside the state lock, so it parallelizes.
	ExecuteCost int
	// ExecuteWait sleeps that long per command before the state update,
	// emulating a service whose commands have wall-clock latency rather than
	// CPU cost (auxiliary I/O, lock waits). Scheduling experiments use it to
	// measure worker overlap independently of the host's core count — a
	// spin-based cost cannot show parallelism on a 1-core CI box, a
	// wait-based one can. Deterministic: the sleep never touches state.
	ExecuteWait time.Duration

	mu sync.Mutex
	m  map[string][]byte
}

// NewKV returns an empty store.
func NewKV() *KV { return &KV{m: make(map[string][]byte)} }

// Len returns the number of keys.
func (s *KV) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// EncodePut builds a PUT command.
func EncodePut(key string, value []byte) []byte {
	b := []byte{kvPut}
	b = appendBytes(b, []byte(key))
	b = appendBytes(b, value)
	return b
}

// EncodeGet builds a GET command.
func EncodeGet(key string) []byte {
	return appendBytes([]byte{kvGet}, []byte(key))
}

// EncodeDel builds a DEL command.
func EncodeDel(key string) []byte {
	return appendBytes([]byte{kvDel}, []byte(key))
}

// EncodeMGet builds a multi-key GET command.
func EncodeMGet(keys ...string) []byte {
	b := appendU32([]byte{kvMGet}, uint32(len(keys)))
	for _, k := range keys {
		b = appendBytes(b, []byte(k))
	}
	return b
}

// EncodeMSet builds a multi-key PUT command from key/value pairs.
func EncodeMSet(pairs map[string][]byte) []byte {
	keys := make([]string, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic request bytes regardless of map order
	b := appendU32([]byte{kvMSet}, uint32(len(keys)))
	for _, k := range keys {
		b = appendBytes(b, []byte(k))
		b = appendBytes(b, pairs[k])
	}
	return b
}

// EncodeTxn builds a two-key transfer: move amount from the src account's
// balance to dst's. Balances are 8-byte little-endian unsigned integers (a
// missing or malformed value reads as 0).
func EncodeTxn(src, dst string, amount uint64) []byte {
	b := appendBytes([]byte{kvTxn}, []byte(src))
	b = appendBytes(b, []byte(dst))
	return appendU64(b, amount)
}

// EncodeBalance renders a TXN account balance as a storable value.
func EncodeBalance(v uint64) []byte { return appendU64(nil, v) }

// DecodeBalance reads a TXN account balance (0 for missing/malformed).
func DecodeBalance(v []byte) uint64 {
	if len(v) < 8 {
		return 0
	}
	return takeU64(v)
}

// DecodeReply splits a KV reply into status and value.
func DecodeReply(reply []byte) (status byte, value []byte) {
	if len(reply) == 0 {
		return KVBadCmd, nil
	}
	return reply[0], reply[1:]
}

// DecodeMGetReply splits an MGET reply into per-key values (nil for a key
// that was absent), in request order.
func DecodeMGetReply(reply []byte) (status byte, values [][]byte, ok bool) {
	if len(reply) == 0 {
		return KVBadCmd, nil, false
	}
	status, rest := reply[0], reply[1:]
	if status != KVOK {
		return status, nil, true
	}
	n, rest, okN := takeU32(rest)
	if !okN {
		return status, nil, false
	}
	values = make([][]byte, 0, n)
	for range n {
		var found byte
		if len(rest) == 0 {
			return status, nil, false
		}
		found, rest = rest[0], rest[1:]
		if found == 0 {
			values = append(values, nil)
			continue
		}
		var v []byte
		v, rest, okN = takeBytes(rest)
		if !okN {
			return status, nil, false
		}
		values = append(values, v)
	}
	return status, values, len(rest) == 0
}

// Keys implements ConflictAware: every well-formed command conflicts exactly
// on the keys it addresses — single-key ops declare one, MGET/MSET declare
// all of theirs, TXN declares both accounts. Malformed commands return nil,
// which the executor treats as a global barrier — the conservative answer.
// Keys is a pure function of the request bytes, as the executor requires.
func (s *KV) Keys(req []byte) []string {
	if len(req) == 0 {
		return nil
	}
	switch req[0] {
	case kvPut, kvGet, kvDel:
		if key, _, ok := takeBytes(req[1:]); ok {
			return []string{string(key)}
		}
	case kvMGet, kvMSet:
		n, rest, ok := takeU32(req[1:])
		if !ok || n == 0 {
			return nil
		}
		keys := make([]string, 0, n)
		for range n {
			var key []byte
			key, rest, ok = takeBytes(rest)
			if !ok {
				return nil
			}
			keys = append(keys, string(key))
			if req[0] == kvMSet {
				if _, rest, ok = takeBytes(rest); !ok {
					return nil
				}
			}
		}
		return keys
	case kvTxn:
		src, rest, ok := takeBytes(req[1:])
		if !ok {
			return nil
		}
		dst, rest, ok := takeBytes(rest)
		if !ok || len(rest) != 8 {
			return nil
		}
		return []string{string(src), string(dst)}
	}
	return nil
}

// Execute implements the service.
func (s *KV) Execute(req []byte) []byte {
	if s.ExecuteCost > 0 {
		spin(req, s.ExecuteCost)
	}
	if s.ExecuteWait > 0 {
		time.Sleep(s.ExecuteWait)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(req) == 0 {
		return []byte{KVBadCmd}
	}
	op, rest := req[0], req[1:]
	switch op {
	case kvPut, kvGet, kvDel:
		key, rest, ok := takeBytes(rest)
		if !ok {
			return []byte{KVBadCmd}
		}
		switch op {
		case kvPut:
			value, _, ok := takeBytes(rest)
			if !ok {
				return []byte{KVBadCmd}
			}
			cp := make([]byte, len(value))
			copy(cp, value)
			s.m[string(key)] = cp
			return []byte{KVOK}
		case kvGet:
			v, ok := s.m[string(key)]
			if !ok {
				return []byte{KVNotFound}
			}
			return append([]byte{KVOK}, v...)
		default: // kvDel
			if _, ok := s.m[string(key)]; !ok {
				return []byte{KVNotFound}
			}
			delete(s.m, string(key))
			return []byte{KVOK}
		}
	case kvMGet:
		n, rest, ok := takeU32(rest)
		if !ok {
			return []byte{KVBadCmd}
		}
		out := appendU32([]byte{KVOK}, n)
		for range n {
			var key []byte
			key, rest, ok = takeBytes(rest)
			if !ok {
				return []byte{KVBadCmd}
			}
			if v, found := s.m[string(key)]; found {
				out = append(out, 1)
				out = appendBytes(out, v)
			} else {
				out = append(out, 0)
			}
		}
		return out
	case kvMSet:
		n, rest, ok := takeU32(rest)
		if !ok {
			return []byte{KVBadCmd}
		}
		// Validate the whole command before mutating anything, so a
		// truncated MSET is all-or-nothing like every other command.
		type pair struct{ key, value []byte }
		pairs := make([]pair, 0, n)
		for range n {
			var key, value []byte
			key, rest, ok = takeBytes(rest)
			if !ok {
				return []byte{KVBadCmd}
			}
			value, rest, ok = takeBytes(rest)
			if !ok {
				return []byte{KVBadCmd}
			}
			pairs = append(pairs, pair{key, value})
		}
		for _, p := range pairs {
			cp := make([]byte, len(p.value))
			copy(cp, p.value)
			s.m[string(p.key)] = cp
		}
		return []byte{KVOK}
	case kvTxn:
		src, rest, ok := takeBytes(rest)
		if !ok {
			return []byte{KVBadCmd}
		}
		dst, rest, ok2 := takeBytes(rest)
		if !ok2 || len(rest) < 8 {
			return []byte{KVBadCmd}
		}
		amount := takeU64(rest)
		srcBal := DecodeBalance(s.m[string(src)])
		if srcBal < amount {
			return append([]byte{KVInsufficient}, appendU64(nil, srcBal)...)
		}
		if string(src) != string(dst) {
			s.m[string(src)] = appendU64(nil, srcBal-amount)
			s.m[string(dst)] = appendU64(nil, DecodeBalance(s.m[string(dst)])+amount)
			srcBal -= amount
		}
		return append([]byte{KVOK}, appendU64(nil, srcBal)...)
	default:
		return []byte{KVBadCmd}
	}
}

// Snapshot implements the service: keys serialized in sorted order so the
// blob is deterministic across replicas.
func (s *KV) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b := appendU32(nil, uint32(len(keys)))
	for _, k := range keys {
		b = appendBytes(b, []byte(k))
		b = appendBytes(b, s.m[k])
	}
	return b, nil
}

// Restore implements the service.
func (s *KV) Restore(snap []byte) error {
	n, rest, ok := takeU32(snap)
	if !ok {
		return ErrCorruptSnapshot
	}
	m := make(map[string][]byte, n)
	for range n {
		var key, value []byte
		key, rest, ok = takeBytes(rest)
		if !ok {
			return ErrCorruptSnapshot
		}
		value, rest, ok = takeBytes(rest)
		if !ok {
			return ErrCorruptSnapshot
		}
		m[string(key)] = value
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorruptSnapshot, len(rest))
	}
	s.mu.Lock()
	s.m = m
	s.mu.Unlock()
	return nil
}

// spin burns rounds of FNV-1a mixing over req — pure CPU work with no
// allocation, the stand-in for real command processing. It runs on
// concurrent executor workers, so the sink write is atomic.
func spin(req []byte, rounds int) {
	h := uint64(14695981039346656037)
	for range rounds {
		for _, b := range req {
			h ^= uint64(b)
			h *= 1099511628211
		}
	}
	spinSink.Store(h)
}

// spinSink keeps the compiler from eliminating spin's loop.
var spinSink atomic.Uint64

// appendU32/appendBytes/takeU32/takeBytes are tiny length-prefixed codec
// helpers shared by the services.
func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendBytes(b, v []byte) []byte {
	b = appendU32(b, uint32(len(v)))
	return append(b, v...)
}

func takeU32(b []byte) (uint32, []byte, bool) {
	if len(b) < 4 {
		return 0, nil, false
	}
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	return v, b[4:], true
}

func takeBytes(b []byte) ([]byte, []byte, bool) {
	n, rest, ok := takeU32(b)
	if !ok || uint64(n) > uint64(len(rest)) {
		return nil, nil, false
	}
	return rest[:n], rest[n:], true
}
