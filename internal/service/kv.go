package service

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gosmr/internal/snapshot"
)

// KV command opcodes.
const (
	kvPut byte = iota + 1
	kvGet
	kvDel
	kvMGet
	kvMSet
	kvTxn
)

// KV status bytes returned as the first byte of every reply.
const (
	KVOK       byte = 1
	KVNotFound byte = 2
	KVBadCmd   byte = 3
	// KVInsufficient is a TXN transfer refusing to overdraw the source
	// account (its balance was below the transfer amount).
	KVInsufficient byte = 4
)

// KV is a deterministic key-value store service (the coordination-service
// workload of the paper's introduction). Commands and replies are binary;
// use EncodePut/EncodeGet/EncodeDel (single key) and
// EncodeMGet/EncodeMSet/EncodeTxn (multi-key) to build requests.
//
// KV implements ConflictAware (Keys): each command declares exactly the keys
// it touches — one for PUT/GET/DEL, all of them for MGET/MSET, and the two
// accounts of a TXN transfer — so a replica configured with
// ExecutorWorkers > 1 executes commands on disjoint keys concurrently and
// fence-schedules multi-key commands onto only their involved workers. KV is
// internally synchronized so executor workers, examples, and tests can all
// touch it safely.
type KV struct {
	// ExecuteCost adds that many rounds of hash mixing per command before
	// the state update, emulating a service with non-trivial per-command
	// processing (the knob behind the executor-scaling experiments; 0 for
	// the plain store). The work depends only on the request bytes, so it is
	// deterministic, and it runs outside the state lock, so it parallelizes.
	ExecuteCost int
	// ExecuteWait sleeps that long per command before the state update,
	// emulating a service whose commands have wall-clock latency rather than
	// CPU cost (auxiliary I/O, lock waits). Scheduling experiments use it to
	// measure worker overlap independently of the host's core count — a
	// spin-based cost cannot show parallelism on a 1-core CI box, a
	// wait-based one can. Deterministic: the sleep never touches state.
	ExecuteWait time.Duration

	mu sync.Mutex
	m  map[string][]byte
	// dirty tracks the keys mutated since the last snapshot cut, making
	// delta generations possible: a delta cut emits only these keys.
	dirty map[string]struct{}
	// cut is the active copy-on-write cut, nil when no drain is running.
	cut *kvCut
}

// NewKV returns an empty store.
func NewKV() *KV {
	return &KV{m: make(map[string][]byte), dirty: make(map[string]struct{})}
}

// Len returns the number of keys.
func (s *KV) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// EncodePut builds a PUT command.
func EncodePut(key string, value []byte) []byte {
	b := []byte{kvPut}
	b = appendBytes(b, []byte(key))
	b = appendBytes(b, value)
	return b
}

// EncodeGet builds a GET command.
func EncodeGet(key string) []byte {
	return appendBytes([]byte{kvGet}, []byte(key))
}

// EncodeDel builds a DEL command.
func EncodeDel(key string) []byte {
	return appendBytes([]byte{kvDel}, []byte(key))
}

// EncodeMGet builds a multi-key GET command.
func EncodeMGet(keys ...string) []byte {
	b := appendU32([]byte{kvMGet}, uint32(len(keys)))
	for _, k := range keys {
		b = appendBytes(b, []byte(k))
	}
	return b
}

// EncodeMSet builds a multi-key PUT command from key/value pairs.
func EncodeMSet(pairs map[string][]byte) []byte {
	keys := make([]string, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic request bytes regardless of map order
	b := appendU32([]byte{kvMSet}, uint32(len(keys)))
	for _, k := range keys {
		b = appendBytes(b, []byte(k))
		b = appendBytes(b, pairs[k])
	}
	return b
}

// EncodeTxn builds a two-key transfer: move amount from the src account's
// balance to dst's. Balances are 8-byte little-endian unsigned integers (a
// missing or malformed value reads as 0).
func EncodeTxn(src, dst string, amount uint64) []byte {
	b := appendBytes([]byte{kvTxn}, []byte(src))
	b = appendBytes(b, []byte(dst))
	return appendU64(b, amount)
}

// EncodeBalance renders a TXN account balance as a storable value.
func EncodeBalance(v uint64) []byte { return appendU64(nil, v) }

// DecodeBalance reads a TXN account balance (0 for missing/malformed).
func DecodeBalance(v []byte) uint64 {
	if len(v) < 8 {
		return 0
	}
	return takeU64(v)
}

// DecodeReply splits a KV reply into status and value.
func DecodeReply(reply []byte) (status byte, value []byte) {
	if len(reply) == 0 {
		return KVBadCmd, nil
	}
	return reply[0], reply[1:]
}

// DecodeMGetReply splits an MGET reply into per-key values (nil for a key
// that was absent), in request order.
func DecodeMGetReply(reply []byte) (status byte, values [][]byte, ok bool) {
	if len(reply) == 0 {
		return KVBadCmd, nil, false
	}
	status, rest := reply[0], reply[1:]
	if status != KVOK {
		return status, nil, true
	}
	n, rest, okN := takeU32(rest)
	if !okN {
		return status, nil, false
	}
	values = make([][]byte, 0, n)
	for range n {
		var found byte
		if len(rest) == 0 {
			return status, nil, false
		}
		found, rest = rest[0], rest[1:]
		if found == 0 {
			values = append(values, nil)
			continue
		}
		var v []byte
		v, rest, okN = takeBytes(rest)
		if !okN {
			return status, nil, false
		}
		values = append(values, v)
	}
	return status, values, len(rest) == 0
}

// Keys implements ConflictAware: every well-formed command conflicts exactly
// on the keys it addresses — single-key ops declare one, MGET/MSET declare
// all of theirs, TXN declares both accounts. Malformed commands return nil,
// which the executor treats as a global barrier — the conservative answer.
// Keys is a pure function of the request bytes, as the executor requires.
func (s *KV) Keys(req []byte) []string {
	if len(req) == 0 {
		return nil
	}
	switch req[0] {
	case kvPut, kvGet, kvDel:
		if key, _, ok := takeBytes(req[1:]); ok {
			return []string{string(key)}
		}
	case kvMGet, kvMSet:
		n, rest, ok := takeU32(req[1:])
		if !ok || n == 0 {
			return nil
		}
		keys := make([]string, 0, n)
		for range n {
			var key []byte
			key, rest, ok = takeBytes(rest)
			if !ok {
				return nil
			}
			keys = append(keys, string(key))
			if req[0] == kvMSet {
				if _, rest, ok = takeBytes(rest); !ok {
					return nil
				}
			}
		}
		return keys
	case kvTxn:
		src, rest, ok := takeBytes(req[1:])
		if !ok {
			return nil
		}
		dst, rest, ok := takeBytes(rest)
		if !ok || len(rest) != 8 {
			return nil
		}
		return []string{string(src), string(dst)}
	}
	return nil
}

// Execute implements the service.
func (s *KV) Execute(req []byte) []byte {
	if s.ExecuteCost > 0 {
		spin(req, s.ExecuteCost)
	}
	if s.ExecuteWait > 0 {
		time.Sleep(s.ExecuteWait)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(req) == 0 {
		return []byte{KVBadCmd}
	}
	op, rest := req[0], req[1:]
	switch op {
	case kvPut, kvGet, kvDel:
		key, rest, ok := takeBytes(rest)
		if !ok {
			return []byte{KVBadCmd}
		}
		switch op {
		case kvPut:
			value, _, ok := takeBytes(rest)
			if !ok {
				return []byte{KVBadCmd}
			}
			cp := make([]byte, len(value))
			copy(cp, value)
			s.touch(string(key))
			s.m[string(key)] = cp
			return []byte{KVOK}
		case kvGet:
			v, ok := s.m[string(key)]
			if !ok {
				return []byte{KVNotFound}
			}
			return append([]byte{KVOK}, v...)
		default: // kvDel
			if _, ok := s.m[string(key)]; !ok {
				return []byte{KVNotFound}
			}
			s.touch(string(key))
			delete(s.m, string(key))
			return []byte{KVOK}
		}
	case kvMGet:
		n, rest, ok := takeU32(rest)
		if !ok {
			return []byte{KVBadCmd}
		}
		out := appendU32([]byte{KVOK}, n)
		for range n {
			var key []byte
			key, rest, ok = takeBytes(rest)
			if !ok {
				return []byte{KVBadCmd}
			}
			if v, found := s.m[string(key)]; found {
				out = append(out, 1)
				out = appendBytes(out, v)
			} else {
				out = append(out, 0)
			}
		}
		return out
	case kvMSet:
		n, rest, ok := takeU32(rest)
		if !ok {
			return []byte{KVBadCmd}
		}
		// Validate the whole command before mutating anything, so a
		// truncated MSET is all-or-nothing like every other command.
		type pair struct{ key, value []byte }
		pairs := make([]pair, 0, n)
		for range n {
			var key, value []byte
			key, rest, ok = takeBytes(rest)
			if !ok {
				return []byte{KVBadCmd}
			}
			value, rest, ok = takeBytes(rest)
			if !ok {
				return []byte{KVBadCmd}
			}
			pairs = append(pairs, pair{key, value})
		}
		for _, p := range pairs {
			cp := make([]byte, len(p.value))
			copy(cp, p.value)
			s.touch(string(p.key))
			s.m[string(p.key)] = cp
		}
		return []byte{KVOK}
	case kvTxn:
		src, rest, ok := takeBytes(rest)
		if !ok {
			return []byte{KVBadCmd}
		}
		dst, rest, ok2 := takeBytes(rest)
		if !ok2 || len(rest) < 8 {
			return []byte{KVBadCmd}
		}
		amount := takeU64(rest)
		srcBal := DecodeBalance(s.m[string(src)])
		if srcBal < amount {
			return append([]byte{KVInsufficient}, appendU64(nil, srcBal)...)
		}
		if string(src) != string(dst) {
			s.touch(string(src))
			s.touch(string(dst))
			s.m[string(src)] = appendU64(nil, srcBal-amount)
			s.m[string(dst)] = appendU64(nil, DecodeBalance(s.m[string(dst)])+amount)
			srcBal -= amount
		}
		return append([]byte{KVOK}, appendU64(nil, srcBal)...)
	default:
		return []byte{KVBadCmd}
	}
}

// Snapshot implements the service: keys serialized in sorted order so the
// blob is deterministic across replicas.
func (s *KV) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b := appendU32(nil, uint32(len(keys)))
	for _, k := range keys {
		b = appendBytes(b, []byte(k))
		b = appendBytes(b, s.m[k])
	}
	return b, nil
}

// Restore implements the service.
func (s *KV) Restore(snap []byte) error {
	n, rest, ok := takeU32(snap)
	if !ok {
		return ErrCorruptSnapshot
	}
	// Validate the claimed count against the remaining bytes before sizing
	// any allocation from it: every entry costs at least its two 4-byte
	// length prefixes, so a count a corrupt blob cannot back is rejected
	// here instead of pre-allocating an attacker-sized map.
	if uint64(n)*8 > uint64(len(rest)) {
		return fmt.Errorf("%w: count %d exceeds remaining %d bytes", ErrCorruptSnapshot, n, len(rest))
	}
	m := make(map[string][]byte, n)
	for range n {
		var key, value []byte
		key, rest, ok = takeBytes(rest)
		if !ok {
			return ErrCorruptSnapshot
		}
		value, rest, ok = takeBytes(rest)
		if !ok {
			return ErrCorruptSnapshot
		}
		m[string(key)] = value
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorruptSnapshot, len(rest))
	}
	s.mu.Lock()
	s.m = m
	s.resetTrackingLocked()
	s.mu.Unlock()
	return nil
}

// touch records the imminent mutation of key k: it marks k dirty for the
// next delta cut and, while a cut is draining, saves k's pre-cut value into
// the copy-on-write overlay so the drain still observes the cut state.
// Values are stored immutably (Execute always writes fresh copies), so the
// overlay saves references, not byte copies. Callers hold s.mu and call
// touch only for real mutations.
func (s *KV) touch(k string) {
	if c := s.cut; c != nil {
		if _, saved := c.overlay[k]; !saved {
			if v, ok := s.m[k]; ok {
				c.overlay[k] = v
			} else {
				c.overlay[k] = nil // absent at cut
			}
		}
	}
	s.dirty[k] = struct{}{}
}

// resetTrackingLocked clears delta tracking after a wholesale state
// replacement; the restored state becomes the new delta baseline.
func (s *KV) resetTrackingLocked() {
	s.dirty = make(map[string]struct{})
	if s.cut != nil {
		s.cut.done = true
		s.cut = nil
	}
}

// CutSnapshot implements snapshot.Cutter. Marking the cut is cheap — it
// collects the key list to emit (the dirty set for a delta, every key for a
// full cut) and installs the copy-on-write overlay — so the caller can
// resume execution immediately and drain the returned Source concurrently.
func (s *KV) CutSnapshot(full bool) (snapshot.Source, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cut != nil {
		return nil, false, snapshot.ErrCutActive
	}
	c := &kvCut{kv: s, full: full, overlay: make(map[string][]byte), prevDirty: s.dirty}
	if full {
		c.keys = make([]string, 0, len(s.m))
		for k := range s.m {
			c.keys = append(c.keys, k)
		}
	} else {
		c.keys = make([]string, 0, len(s.dirty))
		for k := range s.dirty {
			c.keys = append(c.keys, k)
		}
	}
	s.dirty = make(map[string]struct{})
	s.cut = c
	return c, full, nil
}

// RestoreChunks implements snapshot.Cutter: it folds a chain of
// generations, oldest first, into the new state. Only the suffix from the
// last full generation matters; earlier generations are skipped. Chunk
// bytes are borrowed, so values are copied into owned storage (preserving
// the invariant that stored values are immutable fresh copies).
func (s *KV) RestoreChunks(gens []snapshot.Gen) error {
	start := -1
	for i, g := range gens {
		if g.Full {
			start = i
		}
	}
	if start < 0 {
		return fmt.Errorf("%w: chain has no full generation", ErrCorruptSnapshot)
	}
	m := make(map[string][]byte)
	for _, g := range gens[start:] {
		for _, chunk := range g.Chunks {
			n, rest, ok := takeU32(chunk)
			if !ok {
				return ErrCorruptSnapshot
			}
			// Same alloc-bound rule as Restore: a set entry costs ≥ 9
			// bytes (flag + two prefixes), a tombstone ≥ 5.
			if uint64(n)*5 > uint64(len(rest)) {
				return fmt.Errorf("%w: chunk count %d exceeds remaining %d bytes", ErrCorruptSnapshot, n, len(rest))
			}
			for range n {
				if len(rest) == 0 {
					return ErrCorruptSnapshot
				}
				flag := rest[0]
				var key []byte
				key, rest, ok = takeBytes(rest[1:])
				if !ok {
					return ErrCorruptSnapshot
				}
				switch flag {
				case kvEntrySet:
					var value []byte
					value, rest, ok = takeBytes(rest)
					if !ok {
						return ErrCorruptSnapshot
					}
					cp := make([]byte, len(value))
					copy(cp, value)
					m[string(key)] = cp
				case kvEntryDel:
					delete(m, string(key))
				default:
					return fmt.Errorf("%w: unknown entry flag %d", ErrCorruptSnapshot, flag)
				}
			}
			if len(rest) != 0 {
				return fmt.Errorf("%w: %d trailing chunk bytes", ErrCorruptSnapshot, len(rest))
			}
		}
	}
	s.mu.Lock()
	s.m = m
	s.resetTrackingLocked()
	s.mu.Unlock()
	return nil
}

// Chunk entry flags: a chunk is u32 count followed by count entries, each
// flag byte + length-prefixed key + (for kvEntrySet) length-prefixed value.
// kvEntryDel is a tombstone: the key was deleted since the previous
// generation. Full generations contain only kvEntrySet entries.
const (
	kvEntryDel byte = 0
	kvEntrySet byte = 1
)

// kvCut is the drain state of one active cut. Next/Close run on a single
// drainer goroutine; the overlay is shared with Execute under kv.mu.
type kvCut struct {
	kv        *KV
	full      bool
	keys      []string // emit set; sorted lazily on first Next, off-lock
	sorted    bool
	idx       int
	overlay   map[string][]byte   // pre-cut values; nil = absent at cut
	prevDirty map[string]struct{} // restored into kv.dirty if abandoned
	done      bool
}

// Next implements snapshot.Source: it packs sorted entries into one chunk
// of at most maxBytes (except when a single entry alone exceeds it), reading
// pre-cut values through the overlay. The KV lock is held only per chunk,
// so execution interleaves with the drain.
func (c *kvCut) Next(maxBytes int) ([]byte, error) {
	if c.done {
		return nil, nil
	}
	if !c.sorted {
		// Sorting happens on the drainer, outside the lock: a full cut of a
		// large store pays its O(n log n) here, not under quiesce.
		sort.Strings(c.keys)
		c.sorted = true
	}
	if maxBytes <= 0 {
		maxBytes = 1
	}
	s := c.kv
	s.mu.Lock()
	defer s.mu.Unlock()
	var b []byte
	count := uint32(0)
	for c.idx < len(c.keys) {
		k := c.keys[c.idx]
		v, present := c.lookupLocked(k)
		need := 1 + 4 + len(k)
		if present {
			need += 4 + len(v)
		}
		if count > 0 && len(b)+need > maxBytes {
			break
		}
		if count == 0 {
			b = appendU32(make([]byte, 0, max(maxBytes, 4+need)), 0)
		}
		if present {
			b = append(b, kvEntrySet)
			b = appendBytes(b, []byte(k))
			b = appendBytes(b, v)
		} else {
			b = append(b, kvEntryDel)
			b = appendBytes(b, []byte(k))
		}
		c.idx++
		count++
	}
	if c.idx == len(c.keys) {
		c.finishLocked(true)
	}
	if count == 0 {
		return nil, nil
	}
	b[0] = byte(count)
	b[1] = byte(count >> 8)
	b[2] = byte(count >> 16)
	b[3] = byte(count >> 24)
	return b, nil
}

// lookupLocked reads key k as of the cut: the overlay wins (it holds the
// pre-cut value of every key mutated since), otherwise the live map (the
// key is unmutated since the cut).
func (c *kvCut) lookupLocked(k string) ([]byte, bool) {
	if ov, saved := c.overlay[k]; saved {
		return ov, ov != nil
	}
	v, ok := c.kv.m[k]
	return v, ok
}

// Close implements snapshot.Source.
func (c *kvCut) Close() {
	s := c.kv
	s.mu.Lock()
	defer s.mu.Unlock()
	c.finishLocked(c.idx == len(c.keys))
}

// finishLocked releases the copy-on-write state. An abandoned drain merges
// the pre-cut dirty set back in, so the next delta cut still covers
// everything this one was supposed to persist — including keys deleted
// before the cut.
func (c *kvCut) finishLocked(complete bool) {
	if c.done {
		return
	}
	c.done = true
	if !complete {
		for k := range c.prevDirty {
			c.kv.dirty[k] = struct{}{}
		}
	}
	c.overlay = nil
	c.prevDirty = nil
	if c.kv.cut == c {
		c.kv.cut = nil
	}
}

// spin burns rounds of FNV-1a mixing over req — pure CPU work with no
// allocation, the stand-in for real command processing. It runs on
// concurrent executor workers, so the sink write is atomic.
func spin(req []byte, rounds int) {
	h := uint64(14695981039346656037)
	for range rounds {
		for _, b := range req {
			h ^= uint64(b)
			h *= 1099511628211
		}
	}
	spinSink.Store(h)
}

// spinSink keeps the compiler from eliminating spin's loop.
var spinSink atomic.Uint64

// appendU32/appendBytes/takeU32/takeBytes are tiny length-prefixed codec
// helpers shared by the services.
func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendBytes(b, v []byte) []byte {
	b = appendU32(b, uint32(len(v)))
	return append(b, v...)
}

func takeU32(b []byte) (uint32, []byte, bool) {
	if len(b) < 4 {
		return 0, nil, false
	}
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	return v, b[4:], true
}

func takeBytes(b []byte) ([]byte, []byte, bool) {
	n, rest, ok := takeU32(b)
	if !ok || uint64(n) > uint64(len(rest)) {
		return nil, nil, false
	}
	return rest[:n], rest[n:], true
}
