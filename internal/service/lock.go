package service

import "sync"

// Lock command opcodes.
const (
	lockAcquire byte = iota + 1
	lockRelease
	lockHolder
)

// Lock status bytes.
const (
	LockGranted  byte = 1
	LockBusy     byte = 2
	LockReleased byte = 3
	LockNotHeld  byte = 4
	LockFree     byte = 5
	LockHeldBy   byte = 6
	LockBadCmd   byte = 7
)

// LockServer is a deterministic try-lock service (the Chubby-style
// lock-server workload of the paper's introduction [1]). Each lock is owned
// by at most one session token; acquire is non-blocking (the client polls),
// which keeps the service deterministic.
type LockServer struct {
	mu     sync.Mutex
	owners map[string]uint64
}

// NewLockServer returns an empty lock table.
func NewLockServer() *LockServer {
	return &LockServer{owners: make(map[string]uint64)}
}

// Held returns the number of currently held locks.
func (s *LockServer) Held() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.owners)
}

// EncodeAcquire builds a try-acquire command for the given session token.
func EncodeAcquire(name string, session uint64) []byte {
	b := appendBytes([]byte{lockAcquire}, []byte(name))
	return appendU64(b, session)
}

// EncodeRelease builds a release command.
func EncodeRelease(name string, session uint64) []byte {
	b := appendBytes([]byte{lockRelease}, []byte(name))
	return appendU64(b, session)
}

// EncodeHolder builds a holder query.
func EncodeHolder(name string) []byte {
	return appendBytes([]byte{lockHolder}, []byte(name))
}

// DecodeLockReply splits a lock reply into status and the session it
// mentions (owner for LockHeldBy/LockBusy, zero otherwise).
func DecodeLockReply(reply []byte) (status byte, session uint64) {
	if len(reply) == 0 {
		return LockBadCmd, 0
	}
	status = reply[0]
	if len(reply) >= 9 {
		session = takeU64(reply[1:])
	}
	return status, session
}

// Keys implements ConflictAware: every well-formed command conflicts exactly
// on the lock it names; malformed commands are global (nil).
func (s *LockServer) Keys(req []byte) []string {
	if len(req) == 0 {
		return nil
	}
	switch req[0] {
	case lockAcquire, lockRelease, lockHolder:
		if name, _, ok := takeBytes(req[1:]); ok {
			return []string{string(name)}
		}
	}
	return nil
}

// Execute implements the service.
func (s *LockServer) Execute(req []byte) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(req) == 0 {
		return []byte{LockBadCmd}
	}
	op, rest := req[0], req[1:]
	name, rest, ok := takeBytes(rest)
	if !ok {
		return []byte{LockBadCmd}
	}
	switch op {
	case lockAcquire:
		if len(rest) < 8 {
			return []byte{LockBadCmd}
		}
		session := takeU64(rest)
		owner, held := s.owners[string(name)]
		if !held || owner == session {
			s.owners[string(name)] = session
			return appendU64([]byte{LockGranted}, session)
		}
		return appendU64([]byte{LockBusy}, owner)
	case lockRelease:
		if len(rest) < 8 {
			return []byte{LockBadCmd}
		}
		session := takeU64(rest)
		owner, held := s.owners[string(name)]
		if !held || owner != session {
			return []byte{LockNotHeld}
		}
		delete(s.owners, string(name))
		return []byte{LockReleased}
	case lockHolder:
		owner, held := s.owners[string(name)]
		if !held {
			return []byte{LockFree}
		}
		return appendU64([]byte{LockHeldBy}, owner)
	default:
		return []byte{LockBadCmd}
	}
}

// Snapshot implements the service (sorted for determinism).
func (s *LockServer) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kv := &KV{m: make(map[string][]byte, len(s.owners))}
	for name, owner := range s.owners {
		kv.m[name] = appendU64(nil, owner)
	}
	return kv.Snapshot()
}

// Restore implements the service.
func (s *LockServer) Restore(snap []byte) error {
	kv := NewKV()
	if err := kv.Restore(snap); err != nil {
		return err
	}
	owners := make(map[string]uint64, len(kv.m))
	for name, blob := range kv.m {
		if len(blob) != 8 {
			return ErrCorruptSnapshot
		}
		owners[name] = takeU64(blob)
	}
	s.mu.Lock()
	s.owners = owners
	s.mu.Unlock()
	return nil
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func takeU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
