// Package service provides deterministic services to replicate: the null
// service used by the paper's evaluation (Sec. VI: "a null service, which
// discards the payload of the request and sends back a byte array of the
// size required by the test"), plus the two workloads the paper's
// introduction motivates — a key-value/coordination store (ZooKeeper-style)
// and a lock server (Chubby-style).
package service

import (
	"encoding/binary"
	"errors"
	"sync/atomic"

	"gosmr/internal/executor"
	"gosmr/internal/snapshot"
)

// ErrCorruptSnapshot reports a malformed snapshot blob.
var ErrCorruptSnapshot = errors.New("service: corrupt snapshot")

// KV and LockServer declare per-key conflicts, enabling parallel execution;
// Null deliberately does not (it is the sequential-baseline workload).
var (
	_ executor.ConflictAware = (*KV)(nil)
	_ executor.ConflictAware = (*LockServer)(nil)
)

// KV additionally implements the chunked snapshot contract — cuts are
// copy-on-write marks and chunks drain concurrently with execution, with
// delta generations tracking per-key dirty state. Null and LockServer keep
// the plain blob Snapshot/Restore contract; the replica core wraps them in
// a single-chunk (well, single-generation) adapter, so small-state services
// never need to implement snapshot.Cutter themselves.
var _ snapshot.Cutter = (*KV)(nil)

// Null is the paper's evaluation service: it ignores the request payload
// and returns ReplySize zero bytes (default 8, the paper's answer size).
// Safe for concurrent observation while the replica executes.
type Null struct {
	// ReplySize is the reply length in bytes (default 8).
	ReplySize int
	executed  atomic.Uint64
}

// Execute implements the service.
func (s *Null) Execute(req []byte) []byte {
	s.executed.Add(1)
	n := s.ReplySize
	if n <= 0 {
		n = 8
	}
	return make([]byte, n)
}

// Executed returns the number of requests executed.
func (s *Null) Executed() uint64 { return s.executed.Load() }

// Snapshot implements the service.
func (s *Null) Snapshot() ([]byte, error) {
	return binary.LittleEndian.AppendUint64(nil, s.executed.Load()), nil
}

// Restore implements the service.
func (s *Null) Restore(snap []byte) error {
	if len(snap) != 8 {
		return ErrCorruptSnapshot
	}
	s.executed.Store(binary.LittleEndian.Uint64(snap))
	return nil
}
