package service

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func TestNullService(t *testing.T) {
	s := &Null{}
	reply := s.Execute([]byte("anything at all"))
	if len(reply) != 8 {
		t.Errorf("default reply size = %d, want 8", len(reply))
	}
	s2 := &Null{ReplySize: 64}
	if got := len(s2.Execute(nil)); got != 64 {
		t.Errorf("reply size = %d, want 64", got)
	}
	if s.Executed() != 1 {
		t.Errorf("Executed = %d, want 1", s.Executed())
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s3 := &Null{}
	if err := s3.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if s3.Executed() != 1 {
		t.Errorf("restored Executed = %d, want 1", s3.Executed())
	}
	if err := s3.Restore([]byte{1, 2}); err == nil {
		t.Error("Restore of corrupt snapshot succeeded")
	}
}

func TestKVBasicOps(t *testing.T) {
	s := NewKV()
	if st, _ := DecodeReply(s.Execute(EncodeGet("missing"))); st != KVNotFound {
		t.Errorf("GET missing = %d, want NotFound", st)
	}
	if st, _ := DecodeReply(s.Execute(EncodePut("k", []byte("v1")))); st != KVOK {
		t.Errorf("PUT = %d, want OK", st)
	}
	st, v := DecodeReply(s.Execute(EncodeGet("k")))
	if st != KVOK || string(v) != "v1" {
		t.Errorf("GET = %d %q, want OK v1", st, v)
	}
	if st, _ := DecodeReply(s.Execute(EncodePut("k", []byte("v2")))); st != KVOK {
		t.Errorf("overwrite = %d, want OK", st)
	}
	if _, v := DecodeReply(s.Execute(EncodeGet("k"))); string(v) != "v2" {
		t.Errorf("GET after overwrite = %q, want v2", v)
	}
	if st, _ := DecodeReply(s.Execute(EncodeDel("k"))); st != KVOK {
		t.Errorf("DEL = %d, want OK", st)
	}
	if st, _ := DecodeReply(s.Execute(EncodeDel("k"))); st != KVNotFound {
		t.Errorf("DEL again = %d, want NotFound", st)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d, want 0", s.Len())
	}
}

func TestKVMalformedCommands(t *testing.T) {
	s := NewKV()
	for _, req := range [][]byte{nil, {}, {99}, {1, 5, 0, 0, 0}, {1, 255, 255, 255, 255, 1}} {
		if st, _ := DecodeReply(s.Execute(req)); st != KVBadCmd {
			t.Errorf("Execute(%v) = %d, want BadCmd", req, st)
		}
	}
	if st, _ := DecodeReply(nil); st != KVBadCmd {
		t.Errorf("DecodeReply(nil) = %d, want BadCmd", st)
	}
}

func TestKVSnapshotRoundTrip(t *testing.T) {
	s := NewKV()
	s.Execute(EncodePut("a", []byte("1")))
	s.Execute(EncodePut("b", []byte("2")))
	s.Execute(EncodePut("c", nil))
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewKV()
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "c"} {
		st1, v1 := DecodeReply(s.Execute(EncodeGet(k)))
		st2, v2 := DecodeReply(s2.Execute(EncodeGet(k)))
		if st1 != st2 || !bytes.Equal(v1, v2) {
			t.Errorf("key %q differs after restore: %d %q vs %d %q", k, st1, v1, st2, v2)
		}
	}
	// Snapshot is deterministic (sorted keys).
	snapB, _ := s2.Snapshot()
	if !bytes.Equal(snap, snapB) {
		t.Error("snapshots of identical state differ")
	}
	for _, bad := range [][]byte{{1}, {1, 0, 0, 0}, append(append([]byte{}, snap...), 9)} {
		if err := s2.Restore(bad); err == nil {
			t.Errorf("Restore(%v) succeeded", bad)
		}
	}
}

func TestPropertyKVPutGet(t *testing.T) {
	f := func(key string, value []byte) bool {
		s := NewKV()
		s.Execute(EncodePut(key, value))
		st, v := DecodeReply(s.Execute(EncodeGet(key)))
		return st == KVOK && bytes.Equal(v, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyKVSnapshotPreservesState(t *testing.T) {
	f := func(keys []string, value []byte) bool {
		s := NewKV()
		for _, k := range keys {
			s.Execute(EncodePut(k, value))
		}
		snap, err := s.Snapshot()
		if err != nil {
			return false
		}
		s2 := NewKV()
		if err := s2.Restore(snap); err != nil {
			return false
		}
		return s2.Len() == s.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKVMultiKeyOps(t *testing.T) {
	s := NewKV()
	st, _ := DecodeReply(s.Execute(EncodeMSet(map[string][]byte{
		"a": []byte("1"), "b": []byte("2"), "c": nil,
	})))
	if st != KVOK {
		t.Fatalf("MSET = %d, want OK", st)
	}
	st, vals, ok := DecodeMGetReply(s.Execute(EncodeMGet("a", "missing", "c", "b")))
	if st != KVOK || !ok {
		t.Fatalf("MGET = %d ok=%v, want OK true", st, ok)
	}
	want := [][]byte{[]byte("1"), nil, {}, []byte("2")}
	if len(vals) != len(want) {
		t.Fatalf("MGET returned %d values, want %d", len(vals), len(want))
	}
	if string(vals[0]) != "1" || vals[1] != nil || vals[2] == nil || len(vals[2]) != 0 || string(vals[3]) != "2" {
		t.Errorf("MGET values = %q, want %q (with present-but-empty c)", vals, want)
	}
	// MSET request bytes are deterministic regardless of map iteration order.
	m := map[string][]byte{"x": []byte("1"), "y": []byte("2"), "z": []byte("3")}
	first := EncodeMSet(m)
	for range 8 {
		if !bytes.Equal(EncodeMSet(m), first) {
			t.Fatal("EncodeMSet not deterministic across map iteration orders")
		}
	}
}

func TestKVTxnTransfer(t *testing.T) {
	s := NewKV()
	s.Execute(EncodePut("alice", EncodeBalance(100)))

	// Overdraw from a funded account refused, balance untouched.
	st, v := DecodeReply(s.Execute(EncodeTxn("alice", "bob", 150)))
	if st != KVInsufficient || DecodeBalance(v) != 100 {
		t.Fatalf("overdraw = %d bal=%d, want Insufficient 100", st, DecodeBalance(v))
	}

	// Normal transfer moves funds and conserves the total.
	st, v = DecodeReply(s.Execute(EncodeTxn("alice", "bob", 30)))
	if st != KVOK || DecodeBalance(v) != 70 {
		t.Fatalf("transfer = %d srcbal=%d, want OK 70", st, DecodeBalance(v))
	}
	_, bv := DecodeReply(s.Execute(EncodeGet("bob")))
	if DecodeBalance(bv) != 30 {
		t.Errorf("bob balance = %d, want 30", DecodeBalance(bv))
	}

	// Missing source account reads as balance 0: transfer of 0 is OK,
	// anything more is insufficient.
	if st, _ := DecodeReply(s.Execute(EncodeTxn("ghost", "bob", 1))); st != KVInsufficient {
		t.Errorf("transfer from missing = %d, want Insufficient", st)
	}
	if st, _ := DecodeReply(s.Execute(EncodeTxn("ghost", "bob", 0))); st != KVOK {
		t.Errorf("zero transfer from missing = %d, want OK", st)
	}

	// Self-transfer is a no-op that still reports the balance.
	st, v = DecodeReply(s.Execute(EncodeTxn("alice", "alice", 50)))
	if st != KVOK || DecodeBalance(v) != 70 {
		t.Errorf("self transfer = %d bal=%d, want OK 70", st, DecodeBalance(v))
	}
}

func TestKVMultiKeyKeys(t *testing.T) {
	s := NewKV()
	got := s.Keys(EncodeMGet("a", "b", "c"))
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("Keys(MGET) = %q, want [a b c]", got)
	}
	got = s.Keys(EncodeMSet(map[string][]byte{"x": nil, "y": []byte("v")}))
	if len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("Keys(MSET) = %q, want [x y]", got)
	}
	got = s.Keys(EncodeTxn("src", "dst", 5))
	if len(got) != 2 || got[0] != "src" || got[1] != "dst" {
		t.Errorf("Keys(TXN) = %q, want [src dst]", got)
	}
	// Malformed multi-key commands fall back to nil (global barrier), and
	// Execute rejects them rather than partially applying.
	for _, bad := range [][]byte{
		EncodeMGet(),             // zero keys
		EncodeMGet("a", "b")[:8], // truncated key list
		EncodeMSet(map[string][]byte{"k": []byte("v")})[:9], // truncated value
		EncodeTxn("s", "d", 1)[:12],                         // truncated amount
	} {
		if got := s.Keys(bad); got != nil {
			t.Errorf("Keys(%v) = %q, want nil", bad, got)
		}
		if st, _ := DecodeReply(s.Execute(bad)); st != KVBadCmd && len(bad) > 5 {
			t.Errorf("Execute(%v) = %d, want BadCmd", bad, st)
		}
	}
}

func TestKVExecuteWait(t *testing.T) {
	s := NewKV()
	s.ExecuteWait = 5 * time.Millisecond
	start := time.Now()
	if st, _ := DecodeReply(s.Execute(EncodePut("k", []byte("v")))); st != KVOK {
		t.Fatalf("PUT with wait failed")
	}
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Errorf("ExecuteWait not honored: elapsed %v", elapsed)
	}
}

func TestLockServer(t *testing.T) {
	s := NewLockServer()
	const alice, bob = 1, 2

	st, owner := DecodeLockReply(s.Execute(EncodeAcquire("L", alice)))
	if st != LockGranted || owner != alice {
		t.Fatalf("acquire = %d %d, want granted to alice", st, owner)
	}
	// Re-acquire by the owner is idempotent.
	if st, _ := DecodeLockReply(s.Execute(EncodeAcquire("L", alice))); st != LockGranted {
		t.Errorf("re-acquire = %d, want granted", st)
	}
	st, owner = DecodeLockReply(s.Execute(EncodeAcquire("L", bob)))
	if st != LockBusy || owner != alice {
		t.Errorf("contended acquire = %d %d, want busy/alice", st, owner)
	}
	st, owner = DecodeLockReply(s.Execute(EncodeHolder("L")))
	if st != LockHeldBy || owner != alice {
		t.Errorf("holder = %d %d, want alice", st, owner)
	}
	if st, _ := DecodeLockReply(s.Execute(EncodeRelease("L", bob))); st != LockNotHeld {
		t.Errorf("release by non-owner = %d, want not-held", st)
	}
	if st, _ := DecodeLockReply(s.Execute(EncodeRelease("L", alice))); st != LockReleased {
		t.Errorf("release = %d, want released", st)
	}
	if st, _ := DecodeLockReply(s.Execute(EncodeHolder("L"))); st != LockFree {
		t.Errorf("holder after release = %d, want free", st)
	}
	// Bob can take it now.
	if st, _ := DecodeLockReply(s.Execute(EncodeAcquire("L", bob))); st != LockGranted {
		t.Errorf("acquire after release = %d, want granted", st)
	}
	if s.Held() != 1 {
		t.Errorf("Held = %d, want 1", s.Held())
	}
}

func TestLockServerMalformed(t *testing.T) {
	s := NewLockServer()
	for _, req := range [][]byte{nil, {}, {99}, {1, 1, 0, 0, 0, 'x'}, {1, 1, 0, 0, 0, 'x', 1, 2}} {
		if st, _ := DecodeLockReply(s.Execute(req)); st != LockBadCmd {
			t.Errorf("Execute(%v) = %d, want BadCmd", req, st)
		}
	}
}

func TestLockServerSnapshot(t *testing.T) {
	s := NewLockServer()
	s.Execute(EncodeAcquire("a", 10))
	s.Execute(EncodeAcquire("b", 20))
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewLockServer()
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if s2.Held() != 2 {
		t.Fatalf("restored Held = %d, want 2", s2.Held())
	}
	st, owner := DecodeLockReply(s2.Execute(EncodeHolder("a")))
	if st != LockHeldBy || owner != 10 {
		t.Errorf("holder(a) = %d %d, want 10", st, owner)
	}
	if err := s2.Restore([]byte{7}); err == nil {
		t.Error("Restore of garbage succeeded")
	}
}
