package service

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNullService(t *testing.T) {
	s := &Null{}
	reply := s.Execute([]byte("anything at all"))
	if len(reply) != 8 {
		t.Errorf("default reply size = %d, want 8", len(reply))
	}
	s2 := &Null{ReplySize: 64}
	if got := len(s2.Execute(nil)); got != 64 {
		t.Errorf("reply size = %d, want 64", got)
	}
	if s.Executed() != 1 {
		t.Errorf("Executed = %d, want 1", s.Executed())
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s3 := &Null{}
	if err := s3.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if s3.Executed() != 1 {
		t.Errorf("restored Executed = %d, want 1", s3.Executed())
	}
	if err := s3.Restore([]byte{1, 2}); err == nil {
		t.Error("Restore of corrupt snapshot succeeded")
	}
}

func TestKVBasicOps(t *testing.T) {
	s := NewKV()
	if st, _ := DecodeReply(s.Execute(EncodeGet("missing"))); st != KVNotFound {
		t.Errorf("GET missing = %d, want NotFound", st)
	}
	if st, _ := DecodeReply(s.Execute(EncodePut("k", []byte("v1")))); st != KVOK {
		t.Errorf("PUT = %d, want OK", st)
	}
	st, v := DecodeReply(s.Execute(EncodeGet("k")))
	if st != KVOK || string(v) != "v1" {
		t.Errorf("GET = %d %q, want OK v1", st, v)
	}
	if st, _ := DecodeReply(s.Execute(EncodePut("k", []byte("v2")))); st != KVOK {
		t.Errorf("overwrite = %d, want OK", st)
	}
	if _, v := DecodeReply(s.Execute(EncodeGet("k"))); string(v) != "v2" {
		t.Errorf("GET after overwrite = %q, want v2", v)
	}
	if st, _ := DecodeReply(s.Execute(EncodeDel("k"))); st != KVOK {
		t.Errorf("DEL = %d, want OK", st)
	}
	if st, _ := DecodeReply(s.Execute(EncodeDel("k"))); st != KVNotFound {
		t.Errorf("DEL again = %d, want NotFound", st)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d, want 0", s.Len())
	}
}

func TestKVMalformedCommands(t *testing.T) {
	s := NewKV()
	for _, req := range [][]byte{nil, {}, {99}, {1, 5, 0, 0, 0}, {1, 255, 255, 255, 255, 1}} {
		if st, _ := DecodeReply(s.Execute(req)); st != KVBadCmd {
			t.Errorf("Execute(%v) = %d, want BadCmd", req, st)
		}
	}
	if st, _ := DecodeReply(nil); st != KVBadCmd {
		t.Errorf("DecodeReply(nil) = %d, want BadCmd", st)
	}
}

func TestKVSnapshotRoundTrip(t *testing.T) {
	s := NewKV()
	s.Execute(EncodePut("a", []byte("1")))
	s.Execute(EncodePut("b", []byte("2")))
	s.Execute(EncodePut("c", nil))
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewKV()
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "c"} {
		st1, v1 := DecodeReply(s.Execute(EncodeGet(k)))
		st2, v2 := DecodeReply(s2.Execute(EncodeGet(k)))
		if st1 != st2 || !bytes.Equal(v1, v2) {
			t.Errorf("key %q differs after restore: %d %q vs %d %q", k, st1, v1, st2, v2)
		}
	}
	// Snapshot is deterministic (sorted keys).
	snapB, _ := s2.Snapshot()
	if !bytes.Equal(snap, snapB) {
		t.Error("snapshots of identical state differ")
	}
	for _, bad := range [][]byte{{1}, {1, 0, 0, 0}, append(append([]byte{}, snap...), 9)} {
		if err := s2.Restore(bad); err == nil {
			t.Errorf("Restore(%v) succeeded", bad)
		}
	}
}

func TestPropertyKVPutGet(t *testing.T) {
	f := func(key string, value []byte) bool {
		s := NewKV()
		s.Execute(EncodePut(key, value))
		st, v := DecodeReply(s.Execute(EncodeGet(key)))
		return st == KVOK && bytes.Equal(v, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyKVSnapshotPreservesState(t *testing.T) {
	f := func(keys []string, value []byte) bool {
		s := NewKV()
		for _, k := range keys {
			s.Execute(EncodePut(k, value))
		}
		snap, err := s.Snapshot()
		if err != nil {
			return false
		}
		s2 := NewKV()
		if err := s2.Restore(snap); err != nil {
			return false
		}
		return s2.Len() == s.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLockServer(t *testing.T) {
	s := NewLockServer()
	const alice, bob = 1, 2

	st, owner := DecodeLockReply(s.Execute(EncodeAcquire("L", alice)))
	if st != LockGranted || owner != alice {
		t.Fatalf("acquire = %d %d, want granted to alice", st, owner)
	}
	// Re-acquire by the owner is idempotent.
	if st, _ := DecodeLockReply(s.Execute(EncodeAcquire("L", alice))); st != LockGranted {
		t.Errorf("re-acquire = %d, want granted", st)
	}
	st, owner = DecodeLockReply(s.Execute(EncodeAcquire("L", bob)))
	if st != LockBusy || owner != alice {
		t.Errorf("contended acquire = %d %d, want busy/alice", st, owner)
	}
	st, owner = DecodeLockReply(s.Execute(EncodeHolder("L")))
	if st != LockHeldBy || owner != alice {
		t.Errorf("holder = %d %d, want alice", st, owner)
	}
	if st, _ := DecodeLockReply(s.Execute(EncodeRelease("L", bob))); st != LockNotHeld {
		t.Errorf("release by non-owner = %d, want not-held", st)
	}
	if st, _ := DecodeLockReply(s.Execute(EncodeRelease("L", alice))); st != LockReleased {
		t.Errorf("release = %d, want released", st)
	}
	if st, _ := DecodeLockReply(s.Execute(EncodeHolder("L"))); st != LockFree {
		t.Errorf("holder after release = %d, want free", st)
	}
	// Bob can take it now.
	if st, _ := DecodeLockReply(s.Execute(EncodeAcquire("L", bob))); st != LockGranted {
		t.Errorf("acquire after release = %d, want granted", st)
	}
	if s.Held() != 1 {
		t.Errorf("Held = %d, want 1", s.Held())
	}
}

func TestLockServerMalformed(t *testing.T) {
	s := NewLockServer()
	for _, req := range [][]byte{nil, {}, {99}, {1, 1, 0, 0, 0, 'x'}, {1, 1, 0, 0, 0, 'x', 1, 2}} {
		if st, _ := DecodeLockReply(s.Execute(req)); st != LockBadCmd {
			t.Errorf("Execute(%v) = %d, want BadCmd", req, st)
		}
	}
}

func TestLockServerSnapshot(t *testing.T) {
	s := NewLockServer()
	s.Execute(EncodeAcquire("a", 10))
	s.Execute(EncodeAcquire("b", 20))
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewLockServer()
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if s2.Held() != 2 {
		t.Fatalf("restored Held = %d, want 2", s2.Held())
	}
	st, owner := DecodeLockReply(s2.Execute(EncodeHolder("a")))
	if st != LockHeldBy || owner != 10 {
		t.Errorf("holder(a) = %d %d, want 10", st, owner)
	}
	if err := s2.Restore([]byte{7}); err == nil {
		t.Error("Restore of garbage succeeded")
	}
}
