package service

import (
	"bytes"
	"fmt"
	"testing"

	"gosmr/internal/snapshot"
)

// fullCut drains a full cut at the given cap into a Gen.
func fullCut(t *testing.T, s *KV, maxBytes int) snapshot.Gen {
	t.Helper()
	src, full, err := s.CutSnapshot(true)
	if err != nil {
		t.Fatal(err)
	}
	if !full {
		t.Fatal("full cut reported as delta")
	}
	chunks, err := snapshot.Drain(src, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return snapshot.Gen{Full: true, Chunks: chunks}
}

func deltaCut(t *testing.T, s *KV, maxBytes int) snapshot.Gen {
	t.Helper()
	src, full, err := s.CutSnapshot(false)
	if err != nil {
		t.Fatal(err)
	}
	if full {
		t.Fatal("delta cut promoted to full")
	}
	chunks, err := snapshot.Drain(src, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return snapshot.Gen{Full: false, Chunks: chunks}
}

// canon returns the canonical sorted blob — the cross-replica comparison
// currency the determinism suites already use.
func canon(t *testing.T, s *KV) []byte {
	t.Helper()
	b, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestKVCutterFullRoundTrip(t *testing.T) {
	s := NewKV()
	for i := range 100 {
		s.Execute(EncodePut(fmt.Sprintf("key-%03d", i), bytes.Repeat([]byte{byte(i)}, 50)))
	}
	gen := fullCut(t, s, 256)
	if len(gen.Chunks) < 2 {
		t.Fatalf("expected multiple chunks at a 256-byte cap, got %d", len(gen.Chunks))
	}
	for i, c := range gen.Chunks {
		// One entry here is ~64 bytes, far under the cap, so every chunk
		// must respect it strictly.
		if len(c) > 256 {
			t.Errorf("chunk %d is %d bytes, cap 256", i, len(c))
		}
	}
	s2 := NewKV()
	if err := s2.RestoreChunks([]snapshot.Gen{gen}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canon(t, s), canon(t, s2)) {
		t.Fatal("restored state differs from original")
	}
}

func TestKVCutterOversizedEntryExceedsCapAlone(t *testing.T) {
	s := NewKV()
	big := bytes.Repeat([]byte{7}, 1000)
	s.Execute(EncodePut("big", big))
	s.Execute(EncodePut("a", []byte("x")))
	gen := fullCut(t, s, 64)
	// The oversized entry must land in a chunk of its own; every other
	// chunk respects the cap.
	over := 0
	for _, c := range gen.Chunks {
		if len(c) > 64 {
			over++
			n, _, _ := takeU32(c)
			if n != 1 {
				t.Errorf("oversized chunk holds %d entries, want exactly 1", n)
			}
		}
	}
	if over != 1 {
		t.Errorf("%d oversized chunks, want 1", over)
	}
	s2 := NewKV()
	if err := s2.RestoreChunks([]snapshot.Gen{gen}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canon(t, s), canon(t, s2)) {
		t.Fatal("restored state differs")
	}
}

func TestKVCutterCOWDrainSeesCutState(t *testing.T) {
	s := NewKV()
	for i := range 50 {
		s.Execute(EncodePut(fmt.Sprintf("k%02d", i), []byte("before")))
	}
	src, _, err := s.CutSnapshot(true)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate heavily after the mark, before draining a single chunk:
	// overwrite half the keys, delete some, add new ones. None of it may
	// leak into the cut.
	for i := range 25 {
		s.Execute(EncodePut(fmt.Sprintf("k%02d", i), []byte("after")))
	}
	s.Execute(EncodeDel("k30"))
	s.Execute(EncodePut("new-key", []byte("post-cut")))
	chunks, err := snapshot.Drain(src, 128)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewKV()
	if err := s2.RestoreChunks([]snapshot.Gen{{Full: true, Chunks: chunks}}); err != nil {
		t.Fatal(err)
	}
	want := NewKV()
	for i := range 50 {
		want.Execute(EncodePut(fmt.Sprintf("k%02d", i), []byte("before")))
	}
	if !bytes.Equal(canon(t, want), canon(t, s2)) {
		t.Fatal("drain observed post-cut mutations")
	}
	// And the live store kept the post-cut state.
	if st, v := DecodeReply(s.Execute(EncodeGet("k00"))); st != KVOK || string(v) != "after" {
		t.Fatalf("live store lost post-cut write: %d %q", st, v)
	}
	if st, _ := DecodeReply(s.Execute(EncodeGet("k30"))); st != KVNotFound {
		t.Fatal("live store resurrected deleted key")
	}
}

func TestKVCutterDeltaTombstones(t *testing.T) {
	s := NewKV()
	s.Execute(EncodePut("keep", []byte("v")))
	s.Execute(EncodePut("gone", []byte("v")))
	base := fullCut(t, s, 1<<20)

	s.Execute(EncodeDel("gone"))
	s.Execute(EncodePut("added", []byte("w")))
	delta := deltaCut(t, s, 1<<20)

	s2 := NewKV()
	if err := s2.RestoreChunks([]snapshot.Gen{base, delta}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canon(t, s), canon(t, s2)) {
		t.Fatal("base+delta fold differs from live state")
	}
	if st, _ := DecodeReply(s2.Execute(EncodeGet("gone"))); st != KVNotFound {
		t.Fatal("tombstone did not delete the key on restore")
	}
}

// TestKVCutterDeltaBytesScaleWithChurn is the delta acceptance criterion:
// with k% of keys mutated between cuts, the bytes a delta generation
// persists scale with k, not with total state size — measured at two churn
// levels against the same 2000-key store.
func TestKVCutterDeltaBytesScaleWithChurn(t *testing.T) {
	const keys = 2000
	val := bytes.Repeat([]byte{42}, 100)
	churnBytes := func(churnPct int) (delta, full int) {
		s := NewKV()
		for i := range keys {
			s.Execute(EncodePut(fmt.Sprintf("key-%06d", i), val))
		}
		base := fullCut(t, s, 4096)
		for i := 0; i < keys*churnPct/100; i++ {
			s.Execute(EncodePut(fmt.Sprintf("key-%06d", i), val))
		}
		d := deltaCut(t, s, 4096)
		return d.Bytes(), base.Bytes()
	}

	d1, full := churnBytes(1)
	d10, _ := churnBytes(10)
	if d1 == 0 || d10 == 0 {
		t.Fatalf("empty deltas: %d, %d", d1, d10)
	}
	// 1% churn must cost ~1% of a full snapshot (loose 3× bound for
	// per-chunk headers), and 10× the churn must cost ~10× the bytes.
	if d1*100 > full*3 {
		t.Errorf("1%% churn delta = %d bytes vs full %d — not proportional to churn", d1, full)
	}
	if ratio := float64(d10) / float64(d1); ratio < 5 || ratio > 20 {
		t.Errorf("10%%/1%% delta byte ratio = %.1f, want ≈10", ratio)
	}
}

// TestKVCutterDeterministicChunks: two stores that executed the same
// commands — in different interleavings of non-conflicting keys — must cut
// byte-identical chunk sequences. That is what makes chunk files and
// transfer images comparable across replicas.
func TestKVCutterDeterministicChunks(t *testing.T) {
	build := func(reverse bool) *KV {
		s := NewKV()
		n := 100
		for i := range n {
			j := i
			if reverse {
				j = n - 1 - i
			}
			s.Execute(EncodePut(fmt.Sprintf("k%03d", j), bytes.Repeat([]byte{byte(j)}, j%60)))
		}
		return s
	}
	a, b := build(false), build(true)
	ga := fullCut(t, a, 300)
	gb := fullCut(t, b, 300)
	if len(ga.Chunks) != len(gb.Chunks) {
		t.Fatalf("chunk counts differ: %d vs %d", len(ga.Chunks), len(gb.Chunks))
	}
	for i := range ga.Chunks {
		if !bytes.Equal(ga.Chunks[i], gb.Chunks[i]) {
			t.Fatalf("chunk %d differs between execution orders", i)
		}
	}
	// Same for a delta after divergent-order churn.
	for _, s := range []*KV{a, b} {
		for i := range 30 {
			s.Execute(EncodePut(fmt.Sprintf("k%03d", i*3), []byte("churn")))
		}
	}
	da, db := deltaCut(t, a, 300), deltaCut(t, b, 300)
	if !bytes.Equal(snapshot.EncodeChain([]snapshot.Gen{da}), snapshot.EncodeChain([]snapshot.Gen{db})) {
		t.Fatal("delta generations differ between execution orders")
	}
}

func TestKVCutterAbandonedCutRestoresDirtySet(t *testing.T) {
	s := NewKV()
	s.Execute(EncodePut("a", []byte("1")))
	fullCut(t, s, 1<<20) // baseline; dirty now empty

	s.Execute(EncodePut("b", []byte("2")))
	src, _, err := s.CutSnapshot(false)
	if err != nil {
		t.Fatal(err)
	}
	src.Close() // abandon before draining anything

	// The abandoned delta's keys must reappear in the next delta,
	// otherwise "b" would never be persisted.
	d := deltaCut(t, s, 1<<20)
	s2 := NewKV()
	if err := s2.RestoreChunks([]snapshot.Gen{{Full: true, Chunks: nil}, d}); err != nil {
		t.Fatal(err)
	}
	if st, v := DecodeReply(s2.Execute(EncodeGet("b"))); st != KVOK || string(v) != "2" {
		t.Fatalf("abandoned cut lost key b: %d %q", st, v)
	}
}

func TestKVCutterSecondCutWhileDraining(t *testing.T) {
	s := NewKV()
	s.Execute(EncodePut("a", []byte("1")))
	src, _, err := s.CutSnapshot(true)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.CutSnapshot(true); err == nil {
		t.Fatal("second cut during drain succeeded")
	}
	if _, err := snapshot.Drain(src, 1<<20); err != nil {
		t.Fatal(err)
	}
	src2, _, err := s.CutSnapshot(true)
	if err != nil {
		t.Fatalf("cut after drain completed: %v", err)
	}
	src2.Close()
}

// TestKVRestoreCorruptCountBounded is the satellite fix: a corrupt blob
// claiming 2^32-ish entries must be rejected by the length check, not
// pre-allocate a giant map. The alloc bound proves the map was never sized
// from the untrusted count.
func TestKVRestoreCorruptCountBounded(t *testing.T) {
	blob := appendU32(nil, 1<<31) // claims 2 billion entries, carries none
	blob = append(blob, 1, 2, 3)
	s := NewKV()
	allocs := testing.AllocsPerRun(10, func() {
		if err := s.Restore(blob); err == nil {
			t.Fatal("corrupt count accepted")
		}
	})
	// Rejecting the blob costs a handful of allocations (the wrapped
	// error); sizing a map for 2^31 entries would cost many orders of
	// magnitude more memory than this bound allows.
	if allocs > 10 {
		t.Errorf("Restore of corrupt blob did %.0f allocs — count not validated before allocation", allocs)
	}

	// Same bound for a corrupt chunk count on the chunked path.
	chunk := appendU32(nil, 1<<31)
	chunk = append(chunk, 9, 9, 9)
	allocs = testing.AllocsPerRun(10, func() {
		if err := s.RestoreChunks([]snapshot.Gen{{Full: true, Chunks: [][]byte{chunk}}}); err == nil {
			t.Fatal("corrupt chunk count accepted")
		}
	})
	if allocs > 10 {
		t.Errorf("RestoreChunks of corrupt chunk did %.0f allocs", allocs)
	}
}

func TestKVRestoreChunksRejectsDeltaOnlyChain(t *testing.T) {
	s := NewKV()
	s.Execute(EncodePut("a", []byte("1")))
	d := fullCut(t, s, 1<<20)
	d.Full = false
	if err := NewKV().RestoreChunks([]snapshot.Gen{d}); err == nil {
		t.Fatal("chain without a full generation accepted")
	}
}

func TestSnapshotChainCodecRoundTrip(t *testing.T) {
	gens := []snapshot.Gen{
		{Full: true, Chunks: [][]byte{[]byte("abc"), []byte("")}},
		{Full: false, Chunks: nil},
		{Full: false, Chunks: [][]byte{[]byte("delta-bytes")}},
	}
	b := snapshot.EncodeChain(gens)
	got, err := snapshot.DecodeChain(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(gens) {
		t.Fatalf("gen count %d, want %d", len(got), len(gens))
	}
	for i := range gens {
		if got[i].Full != gens[i].Full || len(got[i].Chunks) != len(gens[i].Chunks) {
			t.Fatalf("gen %d mismatch", i)
		}
		for j := range gens[i].Chunks {
			if !bytes.Equal(got[i].Chunks[j], gens[i].Chunks[j]) {
				t.Fatalf("gen %d chunk %d mismatch", i, j)
			}
		}
	}
	for i := range b {
		mut := bytes.Clone(b)
		mut[i] ^= 0xFF
		if _, err := snapshot.DecodeChain(mut); err == nil {
			// Some single-byte flips decode (chunk payload bytes);
			// flips in the structure must not panic — reaching here
			// without a panic is the property.
			continue
		}
	}
	if _, err := snapshot.DecodeChain(b[:len(b)-1]); err == nil {
		t.Fatal("truncated chain accepted")
	}
}
