// Package storage implements the replicated log: one entry per consensus
// instance, holding the acceptor state (accepted view and value) and the
// decided flag (Sec. III-C, "Log management"). The log supports truncation
// below a snapshot point and suffix extraction for Phase 1 and catch-up.
//
// A Log is owned by the Protocol thread and is deliberately NOT safe for
// concurrent use: the paper's architecture gives the Protocol thread
// exclusive write access to the replicated log (Sec. V-C2), which is what
// makes the core thread-safe without locks.
//
// Value ownership: the log stores the []byte values it is handed (Accept,
// MarkDecided, RestoreEntry) without copying, retains them until truncation,
// and shares them freely — with PrepareOK/catch-up responses, the decision
// stream, and the WAL journal. Callers must therefore hand it OWNED,
// immutable memory, never a transport frame that will be recycled: the
// Protocol thread's reader Retains value-carrying messages (see wire.Retain)
// before they reach the log. This is the storage end of the wire package's
// borrow/retain rule.
package storage

import (
	"bytes"
	"fmt"

	"gosmr/internal/wire"
)

// NoView marks an entry that has not accepted any value yet.
const NoView wire.View = -1

// Journal receives the log's durable state transitions, in the order they
// happen. A durable Log — one with a journal attached via SetJournal —
// forwards every accept, decide and truncation to it (the write-ahead log)
// before the owning Protocol thread's effects become visible to peers; the
// in-memory Log behaves exactly as before when no journal is attached.
// (Ensure alone creates only empty slots, which carry no acceptor state
// and need no journaling: replaying the accepts recreates them.)
type Journal interface {
	// JournalAccept records that value was accepted for id in view.
	JournalAccept(id wire.InstanceID, view wire.View, value []byte)
	// JournalDecide records that id was decided. hasValue distinguishes an
	// explicit value from "the value accepted earlier" (already journaled).
	JournalDecide(id wire.InstanceID, value []byte, hasValue bool)
	// JournalCut records that everything below cut is covered by a durable
	// snapshot (truncation, cover-prefix, or snapshot install).
	JournalCut(cut wire.InstanceID)
}

// Entry is one slot of the replicated log.
type Entry struct {
	ID           wire.InstanceID
	AcceptedView wire.View // view in which Value was accepted; NoView if none
	Value        []byte
	Decided      bool
}

// Log is the replicated log of one replica.
type Log struct {
	base           wire.InstanceID // lowest retained instance
	entries        []*Entry        // entries[i] is instance base+int64(i)
	firstUndecided wire.InstanceID
	next           wire.InstanceID // lowest never-used instance id
	journal        Journal         // nil for the in-memory variant
}

// NewLog returns an empty log starting at instance 0.
func NewLog() *Log {
	return &Log{}
}

// SetJournal attaches (or detaches, with nil) the journal. Recovery builds
// the log first — replaying the old journal through RestoreEntry, Accept
// and MarkDecided — and attaches the journal only afterwards, so replay
// does not re-journal itself.
func (l *Log) SetJournal(j Journal) { l.journal = j }

// Base returns the lowest retained instance ID.
func (l *Log) Base() wire.InstanceID { return l.base }

// Next returns the lowest instance ID that has never been touched.
func (l *Log) Next() wire.InstanceID { return l.next }

// FirstUndecided returns the lowest instance not yet known decided. All
// instances below it are decided (and executable in order).
func (l *Log) FirstUndecided() wire.InstanceID { return l.firstUndecided }

// Len returns the number of retained slots.
func (l *Log) Len() int { return len(l.entries) }

// Ensure returns the entry for id, creating empty slots as needed. It panics
// if id is below the truncation base: callers must check Base first.
func (l *Log) Ensure(id wire.InstanceID) *Entry {
	if id < l.base {
		panic(fmt.Sprintf("storage: Ensure(%d) below base %d", id, l.base))
	}
	for wire.InstanceID(len(l.entries)) <= id-l.base {
		slot := l.base + wire.InstanceID(len(l.entries))
		l.entries = append(l.entries, &Entry{ID: slot, AcceptedView: NoView})
	}
	if id >= l.next {
		l.next = id + 1
	}
	return l.entries[id-l.base]
}

// Get returns the entry for id, or nil if id is below the base or has never
// been created.
func (l *Log) Get(id wire.InstanceID) *Entry {
	if id < l.base || id-l.base >= wire.InstanceID(len(l.entries)) {
		return nil
	}
	return l.entries[id-l.base]
}

// Accept records that value was accepted for instance id in view. A decided
// entry is never overwritten (Paxos safety: decisions are final).
func (l *Log) Accept(id wire.InstanceID, view wire.View, value []byte) *Entry {
	e := l.Ensure(id)
	if e.Decided {
		return e
	}
	e.AcceptedView = view
	e.Value = value
	if l.journal != nil {
		l.journal.JournalAccept(id, view, value)
	}
	return e
}

// RestoreEntry reinstalls one slot's acceptor state from a journal replay or
// a checkpoint dump, bypassing the journal. Slots below the base are skipped.
func (l *Log) RestoreEntry(st wire.InstanceState) {
	if st.ID < l.base {
		return
	}
	e := l.Ensure(st.ID)
	e.AcceptedView = st.AcceptedView
	e.Value = st.Value
	e.Decided = st.Decided
	if st.Decided {
		l.advance()
	}
}

// MarkDecided records that instance id was decided with value, then advances
// the first-undecided watermark across any contiguous decided prefix. If
// value is nil, the entry's accepted value is kept (used when the decision
// is learned via watermark and the value was accepted earlier).
func (l *Log) MarkDecided(id wire.InstanceID, value []byte) *Entry {
	e := l.Ensure(id)
	if !e.Decided {
		wasAccepted := e.AcceptedView != NoView
		sameValue := value == nil || (wasAccepted && bytes.Equal(e.Value, value))
		e.Decided = true
		if value != nil {
			e.Value = value
		}
		if l.journal != nil {
			// When the decided value is the one this replica already
			// accepted — the common case: the leader decides its own
			// proposal, a follower learns via watermark — the decide record
			// references the accept record instead of writing the batch a
			// second time. Replay then keeps the accepted value.
			if sameValue && wasAccepted {
				l.journal.JournalDecide(id, nil, false)
			} else {
				l.journal.JournalDecide(id, value, value != nil)
			}
		}
	}
	l.advance()
	return e
}

// advance moves firstUndecided over the contiguous decided prefix.
func (l *Log) advance() {
	for {
		e := l.Get(l.firstUndecided)
		if e == nil || !e.Decided {
			return
		}
		l.firstUndecided++
	}
}

// TruncateBelow drops all entries with ID < id, typically after a snapshot
// covering instances below id. Truncation never crosses the undecided
// watermark: it is capped at FirstUndecided.
func (l *Log) TruncateBelow(id wire.InstanceID) {
	if id > l.firstUndecided {
		id = l.firstUndecided
	}
	if id <= l.base {
		return
	}
	n := id - l.base
	if n >= wire.InstanceID(len(l.entries)) {
		l.entries = l.entries[:0]
	} else {
		// Copy down to release references to truncated entries.
		kept := copy(l.entries, l.entries[n:])
		for i := kept; i < len(l.entries); i++ {
			l.entries[i] = nil
		}
		l.entries = l.entries[:kept]
	}
	l.base = id
	if l.next < l.base {
		l.next = l.base
	}
	if l.journal != nil {
		l.journal.JournalCut(id)
	}
}

// CoverPrefix marks every instance below cut as covered by an installed
// snapshot: entries below cut are discarded and considered decided, while
// entries at or above cut — including undecided acceptor state — are
// retained. This is the safe fast-forward for a log that may hold live
// accepted values above the snapshot's cut (wiping them, as InstallSnapshot
// does, would break Paxos quorum intersection: an acceptor could "forget" a
// value it promised, letting a later leader decide a different value for a
// slot that was already decided and acknowledged).
func (l *Log) CoverPrefix(cut wire.InstanceID) {
	if cut <= l.base {
		return
	}
	n := cut - l.base
	if n >= wire.InstanceID(len(l.entries)) {
		l.entries = l.entries[:0]
	} else {
		kept := copy(l.entries, l.entries[n:])
		for i := kept; i < len(l.entries); i++ {
			l.entries[i] = nil
		}
		l.entries = l.entries[:kept]
	}
	l.base = cut
	if l.firstUndecided < cut {
		l.firstUndecided = cut
	}
	if l.next < cut {
		l.next = cut
	}
	if l.journal != nil {
		l.journal.JournalCut(cut)
	}
	// Retained entries from cut onward may already be decided.
	l.advance()
}

// InstallSnapshot resets the log after installing a snapshot covering all
// instances <= lastIncluded: everything at or below it is discarded and
// considered decided.
func (l *Log) InstallSnapshot(lastIncluded wire.InstanceID) {
	if lastIncluded+1 <= l.base {
		return
	}
	l.entries = l.entries[:0]
	l.base = lastIncluded + 1
	if l.firstUndecided < l.base {
		l.firstUndecided = l.base
	}
	if l.next < l.base {
		l.next = l.base
	}
	if l.journal != nil {
		l.journal.JournalCut(l.base)
	}
}

// SuffixFrom returns the entries with ID >= id that carry an accepted or
// decided value, for inclusion in PrepareOK (Phase 1b).
func (l *Log) SuffixFrom(id wire.InstanceID) []wire.InstanceState {
	if id < l.base {
		id = l.base
	}
	var out []wire.InstanceState
	for ; id-l.base < wire.InstanceID(len(l.entries)); id++ {
		e := l.entries[id-l.base]
		if e.AcceptedView == NoView && !e.Decided {
			continue
		}
		out = append(out, wire.InstanceState{
			ID:           e.ID,
			AcceptedView: e.AcceptedView,
			Decided:      e.Decided,
			Value:        e.Value,
		})
	}
	return out
}

// DecidedInRange returns the decided values with From <= ID < To that are
// still retained, for catch-up responses. The second result reports whether
// part of the range was truncated (the requester needs a snapshot).
func (l *Log) DecidedInRange(from, to wire.InstanceID) (vals []wire.DecidedValue, truncated bool) {
	if from < l.base {
		truncated = true
		from = l.base
	}
	for id := from; id < to; id++ {
		e := l.Get(id)
		if e == nil || !e.Decided {
			continue
		}
		vals = append(vals, wire.DecidedValue{ID: e.ID, Value: e.Value})
	}
	return vals, truncated
}

// MissingDecidedBelow returns the instances below the watermark upTo whose
// values this replica does not have decided yet — the gaps catch-up must
// fill. Instances below the base are covered by a snapshot and not missing.
func (l *Log) MissingDecidedBelow(upTo wire.InstanceID) []wire.InstanceID {
	var out []wire.InstanceID
	for id := max(l.firstUndecided, l.base); id < upTo; id++ {
		e := l.Get(id)
		if e == nil || !e.Decided {
			out = append(out, id)
		}
	}
	return out
}
