package storage

import (
	"fmt"
	"testing"
	"testing/quick"

	"gosmr/internal/wire"
)

func TestEmptyLog(t *testing.T) {
	l := NewLog()
	if l.Base() != 0 || l.Next() != 0 || l.FirstUndecided() != 0 || l.Len() != 0 {
		t.Errorf("empty log = base %d next %d fu %d len %d, want all 0",
			l.Base(), l.Next(), l.FirstUndecided(), l.Len())
	}
	if l.Get(0) != nil {
		t.Error("Get(0) on empty log != nil")
	}
}

func TestEnsureCreatesSlots(t *testing.T) {
	l := NewLog()
	e := l.Ensure(3)
	if e.ID != 3 || e.AcceptedView != NoView || e.Decided {
		t.Errorf("Ensure(3) = %+v", e)
	}
	if l.Len() != 4 || l.Next() != 4 {
		t.Errorf("Len = %d Next = %d, want 4, 4", l.Len(), l.Next())
	}
	for i := wire.InstanceID(0); i < 4; i++ {
		if g := l.Get(i); g == nil || g.ID != i {
			t.Errorf("Get(%d) = %+v", i, g)
		}
	}
	if l.Ensure(3) != e {
		t.Error("Ensure(3) twice returned different entries")
	}
}

func TestEnsureBelowBasePanics(t *testing.T) {
	l := NewLog()
	for i := wire.InstanceID(0); i < 5; i++ {
		l.MarkDecided(i, []byte{byte(i)})
	}
	l.TruncateBelow(3)
	defer func() {
		if recover() == nil {
			t.Error("Ensure below base did not panic")
		}
	}()
	l.Ensure(1)
}

func TestAcceptAndDecide(t *testing.T) {
	l := NewLog()
	l.Accept(0, 2, []byte("v0"))
	e := l.Get(0)
	if e.AcceptedView != 2 || string(e.Value) != "v0" || e.Decided {
		t.Errorf("after Accept: %+v", e)
	}
	// Higher view overwrites an undecided value.
	l.Accept(0, 3, []byte("v0b"))
	if e.AcceptedView != 3 || string(e.Value) != "v0b" {
		t.Errorf("after re-Accept: %+v", e)
	}
	l.MarkDecided(0, nil) // decide with accepted value
	if !e.Decided || string(e.Value) != "v0b" {
		t.Errorf("after MarkDecided(nil): %+v", e)
	}
	// Decided entries are immutable.
	l.Accept(0, 9, []byte("evil"))
	if string(e.Value) != "v0b" {
		t.Errorf("Accept overwrote decided value: %q", e.Value)
	}
	l.MarkDecided(0, []byte("evil2"))
	if string(e.Value) != "v0b" {
		t.Errorf("MarkDecided overwrote decided value: %q", e.Value)
	}
}

func TestFirstUndecidedAdvances(t *testing.T) {
	l := NewLog()
	l.MarkDecided(1, []byte("b")) // gap at 0
	if l.FirstUndecided() != 0 {
		t.Errorf("FirstUndecided = %d, want 0 (gap)", l.FirstUndecided())
	}
	l.MarkDecided(0, []byte("a"))
	if l.FirstUndecided() != 2 {
		t.Errorf("FirstUndecided = %d, want 2 after filling gap", l.FirstUndecided())
	}
	l.MarkDecided(2, []byte("c"))
	if l.FirstUndecided() != 3 {
		t.Errorf("FirstUndecided = %d, want 3", l.FirstUndecided())
	}
}

func TestTruncateBelow(t *testing.T) {
	l := NewLog()
	for i := wire.InstanceID(0); i < 10; i++ {
		l.MarkDecided(i, []byte{byte(i)})
	}
	l.TruncateBelow(5)
	if l.Base() != 5 {
		t.Errorf("Base = %d, want 5", l.Base())
	}
	if l.Get(4) != nil {
		t.Error("Get(4) survived truncation")
	}
	if e := l.Get(5); e == nil || e.Value[0] != 5 {
		t.Errorf("Get(5) = %+v", e)
	}
	// Truncation never crosses the undecided watermark.
	l.Ensure(12)
	l.TruncateBelow(12)
	if l.Base() != 10 {
		t.Errorf("Base = %d, want 10 (capped at FirstUndecided)", l.Base())
	}
	// Truncating below base is a no-op.
	l.TruncateBelow(3)
	if l.Base() != 10 {
		t.Errorf("Base = %d after no-op truncate, want 10", l.Base())
	}
}

func TestInstallSnapshot(t *testing.T) {
	l := NewLog()
	l.Accept(0, 1, []byte("x"))
	l.Accept(7, 1, []byte("y"))
	l.InstallSnapshot(9)
	if l.Base() != 10 || l.FirstUndecided() != 10 || l.Next() != 10 {
		t.Errorf("after snapshot: base %d fu %d next %d, want 10,10,10",
			l.Base(), l.FirstUndecided(), l.Next())
	}
	if l.Get(7) != nil {
		t.Error("entry below snapshot survived")
	}
	// Installing an older snapshot is a no-op.
	l.InstallSnapshot(5)
	if l.Base() != 10 {
		t.Errorf("Base = %d after stale snapshot, want 10", l.Base())
	}
}

func TestSuffixFrom(t *testing.T) {
	l := NewLog()
	l.Accept(0, 1, []byte("a"))
	l.Ensure(1) // empty slot: excluded from suffix
	l.Accept(2, 2, []byte("c"))
	l.MarkDecided(2, nil)
	suffix := l.SuffixFrom(0)
	if len(suffix) != 2 {
		t.Fatalf("suffix len = %d, want 2", len(suffix))
	}
	if suffix[0].ID != 0 || suffix[0].AcceptedView != 1 || suffix[0].Decided {
		t.Errorf("suffix[0] = %+v", suffix[0])
	}
	if suffix[1].ID != 2 || !suffix[1].Decided {
		t.Errorf("suffix[1] = %+v", suffix[1])
	}
	if got := l.SuffixFrom(3); len(got) != 0 {
		t.Errorf("SuffixFrom(3) = %v, want empty", got)
	}
	// From below base clamps.
	l.MarkDecided(0, nil)
	l.MarkDecided(1, []byte("b"))
	l.TruncateBelow(2)
	if got := l.SuffixFrom(0); len(got) != 1 || got[0].ID != 2 {
		t.Errorf("SuffixFrom(0) after truncate = %+v", got)
	}
}

func TestDecidedInRange(t *testing.T) {
	l := NewLog()
	for i := wire.InstanceID(0); i < 6; i++ {
		l.MarkDecided(i, []byte{byte(i)})
	}
	l.Accept(6, 1, []byte("undecided"))
	vals, truncated := l.DecidedInRange(2, 7)
	if truncated {
		t.Error("truncated = true, want false")
	}
	if len(vals) != 4 || vals[0].ID != 2 || vals[3].ID != 5 {
		t.Errorf("vals = %+v", vals)
	}
	l.TruncateBelow(4)
	vals, truncated = l.DecidedInRange(0, 6)
	if !truncated {
		t.Error("truncated = false after truncation, want true")
	}
	if len(vals) != 2 || vals[0].ID != 4 {
		t.Errorf("vals after truncate = %+v", vals)
	}
}

func TestMissingDecidedBelow(t *testing.T) {
	l := NewLog()
	l.MarkDecided(0, []byte("a"))
	l.MarkDecided(2, []byte("c")) // 1 missing
	missing := l.MissingDecidedBelow(5)
	want := []wire.InstanceID{1, 3, 4}
	if len(missing) != len(want) {
		t.Fatalf("missing = %v, want %v", missing, want)
	}
	for i := range want {
		if missing[i] != want[i] {
			t.Errorf("missing[%d] = %d, want %d", i, missing[i], want[i])
		}
	}
	if got := l.MissingDecidedBelow(0); len(got) != 0 {
		t.Errorf("MissingDecidedBelow(0) = %v, want empty", got)
	}
}

// TestPropertyWatermarkInvariant checks that after any sequence of decides,
// every instance below FirstUndecided is decided and the one at it (if
// present) is not.
func TestPropertyWatermarkInvariant(t *testing.T) {
	f := func(ids []uint8) bool {
		l := NewLog()
		for _, raw := range ids {
			l.MarkDecided(wire.InstanceID(raw%32), []byte{raw})
		}
		fu := l.FirstUndecided()
		for i := wire.InstanceID(0); i < fu; i++ {
			e := l.Get(i)
			if e == nil || !e.Decided {
				return false
			}
		}
		if e := l.Get(fu); e != nil && e.Decided {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTruncatePreservesRetained checks truncation never loses
// entries at or above the new base and never moves the watermark.
func TestPropertyTruncatePreservesRetained(t *testing.T) {
	f := func(decideUpTo, truncAt uint8) bool {
		n := wire.InstanceID(decideUpTo % 40)
		l := NewLog()
		for i := wire.InstanceID(0); i < n; i++ {
			l.MarkDecided(i, []byte{byte(i)})
		}
		fuBefore := l.FirstUndecided()
		l.TruncateBelow(wire.InstanceID(truncAt % 50))
		if l.FirstUndecided() != fuBefore {
			return false
		}
		for i := l.Base(); i < n; i++ {
			e := l.Get(i)
			if e == nil || !e.Decided || e.Value[0] != byte(i) {
				return false
			}
		}
		return l.Base() <= fuBefore
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCoverPrefixRetainsSuffixState(t *testing.T) {
	l := NewLog()
	for i := range 6 {
		l.Accept(wire.InstanceID(i), 3, []byte{byte(i)})
	}
	l.MarkDecided(0, nil)
	l.MarkDecided(1, nil)

	// Cover instances below 4: unlike InstallSnapshot, acceptor state at
	// and above the cut must survive (Paxos quorum intersection).
	l.CoverPrefix(4)
	if l.Base() != 4 || l.FirstUndecided() != 4 || l.Next() != 6 {
		t.Fatalf("base=%d firstUndecided=%d next=%d, want 4/4/6", l.Base(), l.FirstUndecided(), l.Next())
	}
	for i := 4; i < 6; i++ {
		e := l.Get(wire.InstanceID(i))
		if e == nil || e.AcceptedView != 3 || len(e.Value) != 1 || e.Value[0] != byte(i) {
			t.Fatalf("entry %d lost after CoverPrefix: %+v", i, e)
		}
	}
	if got := l.SuffixFrom(0); len(got) != 2 || got[0].ID != 4 {
		t.Fatalf("SuffixFrom after CoverPrefix = %+v, want entries 4 and 5", got)
	}

	// Covering past every entry leaves an empty log at the cut.
	l.CoverPrefix(10)
	if l.Base() != 10 || l.FirstUndecided() != 10 || l.Next() != 10 || l.Len() != 0 {
		t.Fatalf("after CoverPrefix(10): base=%d fu=%d next=%d len=%d", l.Base(), l.FirstUndecided(), l.Next(), l.Len())
	}
	// Backwards cover is a no-op.
	l.CoverPrefix(5)
	if l.Base() != 10 {
		t.Errorf("backwards CoverPrefix moved base to %d", l.Base())
	}
}

func TestCoverPrefixAdvancesOverDecidedSuffix(t *testing.T) {
	l := NewLog()
	for i := range 4 {
		l.Accept(wire.InstanceID(i), 1, []byte("v"))
	}
	l.MarkDecided(2, nil)
	l.MarkDecided(3, nil)
	// Covering 0..1 exposes the already-decided 2..3 as the new prefix.
	l.CoverPrefix(2)
	if l.FirstUndecided() != 4 {
		t.Errorf("FirstUndecided = %d, want 4 (decided suffix)", l.FirstUndecided())
	}
}

// recJournal records journal callbacks for assertions.
type recJournal struct {
	ops []string
}

func (j *recJournal) JournalAccept(id wire.InstanceID, view wire.View, value []byte) {
	j.ops = append(j.ops, fmt.Sprintf("accept(%d,v%d,%q)", id, view, value))
}

func (j *recJournal) JournalDecide(id wire.InstanceID, value []byte, hasValue bool) {
	if hasValue {
		j.ops = append(j.ops, fmt.Sprintf("decide(%d,%q)", id, value))
	} else {
		j.ops = append(j.ops, fmt.Sprintf("decide(%d)", id))
	}
}

func (j *recJournal) JournalCut(cut wire.InstanceID) {
	j.ops = append(j.ops, fmt.Sprintf("cut(%d)", cut))
}

// TestDurableLogJournalsTransitions asserts a journal-attached Log
// journals exactly the transitions recovery needs: accepts with their
// values, decides (referencing the accept when the value is unchanged,
// carrying it when it differs), and truncation cuts — and that re-accepts
// over a decided slot or duplicate decides journal nothing.
func TestDurableLogJournalsTransitions(t *testing.T) {
	j := &recJournal{}
	l := NewLog()
	l.SetJournal(j)

	l.Accept(0, 1, []byte("a"))
	l.MarkDecided(0, []byte("a")) // same value: decide references the accept
	l.Accept(1, 1, []byte("b"))
	l.MarkDecided(1, nil)         // watermark decide
	l.MarkDecided(1, nil)         // duplicate: no journal
	l.Accept(1, 2, []byte("x"))   // decided slot: no overwrite, no journal
	l.MarkDecided(2, []byte("c")) // decide without prior accept: carries value
	l.TruncateBelow(2)

	want := []string{
		`accept(0,v1,"a")`,
		`decide(0)`,
		`accept(1,v1,"b")`,
		`decide(1)`,
		`decide(2,"c")`,
		`cut(2)`,
	}
	if fmt.Sprint(j.ops) != fmt.Sprint(want) {
		t.Errorf("journal ops:\n got %v\nwant %v", j.ops, want)
	}
}

// TestRestoreEntryBypassesJournal asserts replay writes (RestoreEntry) are
// never re-journaled and rebuild watermarks correctly.
func TestRestoreEntryBypassesJournal(t *testing.T) {
	j := &recJournal{}
	l := NewLog()
	l.SetJournal(j)
	l.RestoreEntry(wire.InstanceState{ID: 0, AcceptedView: 3, Decided: true, Value: []byte("r")})
	l.RestoreEntry(wire.InstanceState{ID: 1, AcceptedView: 3, Value: []byte("s")})
	if len(j.ops) != 0 {
		t.Errorf("RestoreEntry journaled %v", j.ops)
	}
	if l.FirstUndecided() != 1 {
		t.Errorf("FirstUndecided = %d, want 1", l.FirstUndecided())
	}
	if e := l.Get(1); e == nil || e.AcceptedView != 3 || string(e.Value) != "s" {
		t.Errorf("restored entry 1 = %+v", l.Get(1))
	}
	// A journal attached later (post-replay) sees new transitions only.
	l2 := NewLog()
	l2.RestoreEntry(wire.InstanceState{ID: 0, AcceptedView: 1, Value: []byte("v")})
	l2.SetJournal(j)
	l2.MarkDecided(0, nil)
	if len(j.ops) != 1 {
		t.Errorf("post-attach ops = %v, want one decide", j.ops)
	}
}
