package retrans

import (
	"sync/atomic"
	"testing"
	"time"

	"gosmr/internal/profiling"
)

func TestRetransmitsUntilCancel(t *testing.T) {
	r := New(Options{Period: 10 * time.Millisecond, MaxPeriod: 10 * time.Millisecond})
	defer r.Stop()
	var n atomic.Int32
	h := r.Add(func() { n.Add(1) })
	deadline := time.Now().Add(2 * time.Second)
	for n.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n.Load() < 3 {
		t.Fatalf("resends = %d, want >= 3", n.Load())
	}
	h.Cancel()
	if !h.Cancelled() {
		t.Error("Cancelled = false after Cancel")
	}
	after := n.Load()
	time.Sleep(50 * time.Millisecond)
	// At most one in-flight send can race the cancel.
	if n.Load() > after+1 {
		t.Errorf("resends after Cancel: %d -> %d", after, n.Load())
	}
}

func TestCancelBeforeFirstFire(t *testing.T) {
	r := New(Options{Period: 20 * time.Millisecond})
	defer r.Stop()
	var n atomic.Int32
	h := r.Add(func() { n.Add(1) })
	h.Cancel()
	time.Sleep(60 * time.Millisecond)
	if n.Load() != 0 {
		t.Errorf("cancelled message fired %d times", n.Load())
	}
	if r.Pending() != 0 {
		t.Errorf("Pending = %d, want 0 after lazy removal", r.Pending())
	}
}

func TestBackoff(t *testing.T) {
	r := New(Options{Period: 5 * time.Millisecond, MaxPeriod: 40 * time.Millisecond})
	defer r.Stop()
	var times []time.Time
	done := make(chan struct{})
	var mu atomic.Int32
	r.Add(func() {
		times = append(times, time.Now()) // only the retransmitter goroutine appends
		if mu.Add(1) == 4 {
			close(done)
		}
	})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for 4 resends")
	}
	// Gaps must be non-decreasing-ish (exponential backoff): gap3 > gap1.
	g1 := times[1].Sub(times[0])
	g3 := times[3].Sub(times[2])
	if g3 < g1 {
		t.Errorf("backoff not increasing: gap1=%v gap3=%v", g1, g3)
	}
}

func TestManyMessagesOrdering(t *testing.T) {
	r := New(Options{Period: 15 * time.Millisecond})
	defer r.Stop()
	var n atomic.Int32
	handles := make([]*Handle, 50)
	for i := range handles {
		handles[i] = r.Add(func() { n.Add(1) })
	}
	// Cancel all but a few: only the survivors should fire.
	for i, h := range handles {
		if i%10 != 0 {
			h.Cancel()
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for n.Load() < 5 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := n.Load(); got < 5 {
		t.Errorf("fired = %d, want >= 5 (the survivors)", got)
	}
	if got := r.Resends(); got < 5 {
		t.Errorf("Resends = %d, want >= 5", got)
	}
}

func TestStopIdempotentAndUnblocks(t *testing.T) {
	th := profiling.NewRegistry().Register("Retransmitter")
	r := New(Options{Period: time.Hour, Thread: th})
	r.Add(func() {})
	done := make(chan struct{})
	go func() {
		r.Stop()
		r.Stop() // idempotent
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Stop did not return")
	}
}

func TestAddAfterEarlierDeadlineWakes(t *testing.T) {
	r := New(Options{Period: 30 * time.Millisecond})
	defer r.Stop()
	// First entry far in the future relative to test, then a near one: the
	// near one must still fire promptly (wake channel re-arms the timer).
	var slow, fast atomic.Int32
	h1 := r.Add(func() { slow.Add(1) })
	defer h1.Cancel()
	h2 := r.Add(func() { fast.Add(1) })
	defer h2.Cancel()
	deadline := time.Now().Add(time.Second)
	for fast.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if fast.Load() == 0 {
		t.Error("second entry never fired")
	}
}

// TestAddAfterStopReturnsCancelledHandle is the regression test for the
// shutdown race: an Add that loses the race with Stop used to park its
// handle on a heap no goroutine would ever drain — "scheduled" forever,
// with Pending() lying about it. Post-Stop Adds must come back already
// cancelled, never fire, and leave nothing pending.
func TestAddAfterStopReturnsCancelledHandle(t *testing.T) {
	r := New(Options{Period: time.Millisecond})
	r.Stop()

	var fired atomic.Int64
	h := r.Add(func() { fired.Add(1) })
	if h == nil {
		t.Fatal("Add after Stop returned nil handle")
	}
	if !h.Cancelled() {
		t.Error("Add after Stop returned a live handle")
	}
	if got := r.Pending(); got != 0 {
		t.Errorf("Pending() = %d after post-Stop Add, want 0", got)
	}
	time.Sleep(5 * time.Millisecond)
	if got := fired.Load(); got != 0 {
		t.Errorf("post-Stop Add fired %d times", got)
	}
	// Cancel stays idempotent on the dead handle.
	h.Cancel()
	if !h.Cancelled() {
		t.Error("Cancel lost the cancelled state")
	}
}
