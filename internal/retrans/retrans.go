// Package retrans implements the Retransmitter thread of Sec. V-C4: messages
// essential to protocol progress are re-sent until cancelled. The design
// follows the paper exactly:
//
//   - a priority queue orders pending messages by retransmission deadline;
//   - cancellation is lock-free: the Protocol thread flips an atomic flag on
//     the message's handle without waking the Retransmitter, which lazily
//     drops cancelled entries when their deadline fires. This keeps the
//     per-decision cancel — executed for every message sent — off the
//     critical path.
package retrans

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"time"

	"gosmr/internal/profiling"
)

// DefaultPeriod is the initial retransmission delay.
const DefaultPeriod = 100 * time.Millisecond

// DefaultMaxPeriod caps exponential backoff.
const DefaultMaxPeriod = 2 * time.Second

// Handle identifies one scheduled retransmission. Cancel may be called from
// any goroutine, any number of times, without locking.
type Handle struct {
	cancelled atomic.Bool
	send      func()
	period    time.Duration
	deadline  time.Time
	index     int // heap index; owned by the Retransmitter
}

// Cancel stops future retransmissions of the message. It never blocks.
func (h *Handle) Cancel() { h.cancelled.Store(true) }

// Cancelled reports whether Cancel has been called.
func (h *Handle) Cancelled() bool { return h.cancelled.Load() }

// pq is a deadline-ordered heap of handles.
type pq []*Handle

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].deadline.Before(q[j].deadline) }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i]; q[i].index = i; q[j].index = j }
func (q *pq) Push(x any)        { h := x.(*Handle); h.index = len(*q); *q = append(*q, h) }
func (q *pq) Pop() any {
	old := *q
	n := len(old)
	h := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return h
}

// Options configures a Retransmitter.
type Options struct {
	// Period is the initial retransmission delay (DefaultPeriod if zero).
	Period time.Duration
	// MaxPeriod caps the exponential backoff (DefaultMaxPeriod if zero).
	MaxPeriod time.Duration
	// Thread receives profiling accounting (may be nil).
	Thread *profiling.Thread
}

// Retransmitter runs the retransmission loop. Construct with New, stop with
// Stop.
type Retransmitter struct {
	period    time.Duration
	maxPeriod time.Duration
	th        *profiling.Thread

	mu      sync.Mutex
	q       pq
	stopped bool // set under mu by Stop; Add after Stop is a no-op
	wake    chan struct{}
	stop    chan struct{}
	wg      sync.WaitGroup

	resends atomic.Uint64
}

// New returns a started Retransmitter.
func New(opts Options) *Retransmitter {
	if opts.Period <= 0 {
		opts.Period = DefaultPeriod
	}
	if opts.MaxPeriod <= 0 {
		opts.MaxPeriod = DefaultMaxPeriod
	}
	r := &Retransmitter{
		period:    opts.Period,
		maxPeriod: opts.MaxPeriod,
		th:        opts.Thread,
		wake:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
	}
	r.wg.Add(1)
	go r.run()
	return r
}

// Add schedules send to be called every backoff period until the returned
// handle is cancelled. send must be safe to call from the Retransmitter
// goroutine. The first retransmission fires one period from now (the caller
// has just sent the original message).
//
// After Stop, Add returns an already-cancelled handle without enqueuing
// anything: the loop that would drain the heap is gone, so a handle parked
// there would count as Pending forever and its message would silently never
// retransmit — the caller observes the truth (cancelled) instead.
func (r *Retransmitter) Add(send func()) *Handle {
	h := &Handle{send: send, period: r.period, deadline: time.Now().Add(r.period)}
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		h.Cancel()
		return h
	}
	heap.Push(&r.q, h)
	front := r.q[0] == h
	r.mu.Unlock()
	if front {
		// New earliest deadline: wake the loop to re-arm its timer.
		select {
		case r.wake <- struct{}{}:
		default:
		}
	}
	return h
}

// Resends returns the number of retransmissions performed (for tests and
// metrics).
func (r *Retransmitter) Resends() uint64 { return r.resends.Load() }

// Pending returns the number of queued (possibly cancelled) entries.
func (r *Retransmitter) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.q)
}

// Stop terminates the loop and waits for it to exit. Add calls that race
// with or follow Stop return already-cancelled handles.
func (r *Retransmitter) Stop() {
	r.mu.Lock()
	already := r.stopped
	r.stopped = true
	r.mu.Unlock()
	if already {
		return
	}
	close(r.stop)
	r.wg.Wait()
}

// run is the Retransmitter thread body.
func (r *Retransmitter) run() {
	defer r.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		next, ok := r.fireDue()
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		if ok {
			timer.Reset(time.Until(next))
		} else {
			timer.Reset(time.Hour)
		}
		r.th.Transition(profiling.StateOther) // idle: sleeping until deadline
		select {
		case <-timer.C:
		case <-r.wake:
		case <-r.stop:
			r.th.Transition(profiling.StateWaiting)
			return
		}
		r.th.Transition(profiling.StateBusy)
	}
}

// fireDue sends every due, non-cancelled entry and reschedules it with
// exponential backoff; cancelled entries are dropped. It returns the next
// deadline, if any.
func (r *Retransmitter) fireDue() (next time.Time, ok bool) {
	now := time.Now()
	for {
		r.mu.Lock()
		if len(r.q) == 0 {
			r.mu.Unlock()
			return time.Time{}, false
		}
		h := r.q[0]
		if h.deadline.After(now) {
			r.mu.Unlock()
			return h.deadline, true
		}
		heap.Pop(&r.q)
		if h.cancelled.Load() {
			r.mu.Unlock()
			continue // lazy removal of cancelled entries
		}
		// Reschedule with backoff before sending so Cancel during send still
		// takes effect at the next deadline.
		h.period *= 2
		if h.period > r.maxPeriod {
			h.period = r.maxPeriod
		}
		h.deadline = now.Add(h.period)
		heap.Push(&r.q, h)
		r.mu.Unlock()

		r.resends.Add(1)
		h.send()
	}
}
