package sim

import (
	"testing"
	"time"
)

func TestClockAndEvents(t *testing.T) {
	w := NewWorld()
	var order []int
	w.At(10*time.Millisecond, func() { order = append(order, 2) })
	w.At(5*time.Millisecond, func() { order = append(order, 1) })
	w.At(10*time.Millisecond, func() { order = append(order, 3) }) // FIFO tie-break
	w.Run(time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if w.Now() != time.Second {
		t.Fatalf("Now = %v, want 1s", w.Now())
	}
}

func TestRunStopsAtUntil(t *testing.T) {
	w := NewWorld()
	fired := false
	w.At(2*time.Second, func() { fired = true })
	w.Run(time.Second)
	if fired {
		t.Fatal("event beyond `until` fired")
	}
	w.Run(3 * time.Second)
	if !fired {
		t.Fatal("event never fired")
	}
}

func TestWorkConsumesVirtualTime(t *testing.T) {
	w := NewWorld()
	n := w.NewNode(NodeConfig{Name: "a", Cores: 1, CtxSwitch: time.Microsecond})
	var finished Time
	n.Spawn("worker", func(t *Thread) {
		t.Work(10 * time.Millisecond)
		t.Work(5 * time.Millisecond)
		finished = t.Now()
	})
	w.Run(time.Second)
	defer w.Shutdown()
	// The initial dispatch lands on an idle core: a cheap wake at
	// ctxSwitch/10 rather than a full cache-cold switch.
	want := 15*time.Millisecond + time.Microsecond/10
	if finished != want {
		t.Fatalf("finished at %v, want %v", finished, want)
	}
	st := w.ThreadStats()[0]
	if st.Busy != 15*time.Millisecond {
		t.Fatalf("busy = %v, want 15ms", st.Busy)
	}
}

func TestCoresLimitParallelism(t *testing.T) {
	// Two CPU-bound threads on 1 core take twice as long as on 2 cores.
	elapsed := func(cores int) Time {
		w := NewWorld()
		n := w.NewNode(NodeConfig{Name: "a", Cores: cores, CtxSwitch: 0, Quantum: time.Hour})
		var last Time
		for i := range 2 {
			_ = i
			n.Spawn("w", func(t *Thread) {
				t.Work(50 * time.Millisecond)
				if t.Now() > last {
					last = t.Now()
				}
			})
		}
		w.Run(10 * time.Second)
		w.Shutdown()
		return last
	}
	e1 := elapsed(1)
	e2 := elapsed(2)
	if e2 >= e1 {
		t.Fatalf("2-core run (%v) not faster than 1-core (%v)", e2, e1)
	}
	ratio := float64(e1) / float64(e2)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("speedup = %.2f, want ~2", ratio)
	}
}

func TestPreemptionSharesCore(t *testing.T) {
	// With a small quantum, two long-running threads interleave rather than
	// run to completion serially; both make progress before either finishes.
	w := NewWorld()
	n := w.NewNode(NodeConfig{Name: "a", Cores: 1, CtxSwitch: time.Microsecond, Quantum: time.Millisecond})
	var aDone, bDone Time
	n.Spawn("a", func(t *Thread) {
		for range 10 {
			t.Work(time.Millisecond)
		}
		aDone = t.Now()
	})
	n.Spawn("b", func(t *Thread) {
		for range 10 {
			t.Work(time.Millisecond)
		}
		bDone = t.Now()
	})
	w.Run(time.Second)
	defer w.Shutdown()
	if aDone == 0 || bDone == 0 {
		t.Fatal("threads did not finish")
	}
	// Interleaved: both finish within ~2ms of each other near t=20ms, rather
	// than a finishing at 10ms and b at 20ms.
	gap := bDone - aDone
	if gap < 0 {
		gap = -gap
	}
	if gap > 5*time.Millisecond {
		t.Fatalf("completion gap %v suggests serial execution (a=%v b=%v)", gap, aDone, bDone)
	}
	// Context switching charged to Other.
	stats := w.ThreadStats()
	if stats[0].Other == 0 && stats[1].Other == 0 {
		t.Error("no 'other' time despite preemption")
	}
}

func TestQueueBlockingAndHandoff(t *testing.T) {
	w := NewWorld()
	n := w.NewNode(NodeConfig{Name: "a", Cores: 2, CtxSwitch: 0})
	q := w.NewQueue("q", 2)
	var got []int
	n.Spawn("consumer", func(t *Thread) {
		for range 5 {
			v := q.Take(t).(int)
			got = append(got, v)
			t.Work(time.Millisecond)
		}
	})
	n.Spawn("producer", func(t *Thread) {
		for i := range 5 {
			t.Work(100 * time.Microsecond)
			q.Put(t, i)
		}
	})
	w.Run(time.Second)
	defer w.Shutdown()
	if len(got) != 5 {
		t.Fatalf("consumed %d items, want 5", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d (FIFO)", i, v, i)
		}
	}
	// Consumer must have accumulated waiting time (queue empty at start).
	if st := w.ThreadStats()[0]; st.Waiting == 0 {
		t.Error("consumer never waited")
	}
	if q.Takes() != 5 || q.Puts() != 5 {
		t.Errorf("takes/puts = %d/%d, want 5/5", q.Takes(), q.Puts())
	}
}

func TestQueueCapacityBlocksProducer(t *testing.T) {
	w := NewWorld()
	n := w.NewNode(NodeConfig{Name: "a", Cores: 2, CtxSwitch: 0})
	q := w.NewQueue("q", 1)
	var producerDone Time
	n.Spawn("producer", func(t *Thread) {
		for i := range 3 {
			q.Put(t, i)
		}
		producerDone = t.Now()
	})
	n.Spawn("consumer", func(t *Thread) {
		t.Sleep(10 * time.Millisecond)
		for range 3 {
			q.Take(t)
			t.Sleep(10 * time.Millisecond)
		}
	})
	w.Run(time.Second)
	defer w.Shutdown()
	// Producer's third put can only complete after the consumer frees space
	// at t>=20ms.
	if producerDone < 20*time.Millisecond {
		t.Fatalf("producer finished at %v, want >= 20ms (backpressure)", producerDone)
	}
}

func TestTryPutTryTake(t *testing.T) {
	w := NewWorld()
	n := w.NewNode(NodeConfig{Name: "a", Cores: 1})
	q := w.NewQueue("q", 1)
	var results []bool
	var taken []any
	n.Spawn("t", func(t *Thread) {
		results = append(results, q.TryPut(1)) // ok
		results = append(results, q.TryPut(2)) // full
		v, ok := q.TryTake()
		taken = append(taken, v)
		results = append(results, ok)
		_, ok = q.TryTake()
		results = append(results, ok) // empty
	})
	w.Run(time.Second)
	defer w.Shutdown()
	want := []bool{true, false, true, false}
	for i, r := range results {
		if r != want[i] {
			t.Fatalf("results[%d] = %v, want %v", i, r, want[i])
		}
	}
	if taken[0].(int) != 1 {
		t.Fatalf("taken = %v, want 1", taken[0])
	}
}

func TestLockMutualExclusionAndBlockedAccounting(t *testing.T) {
	w := NewWorld()
	n := w.NewNode(NodeConfig{Name: "a", Cores: 2, CtxSwitch: 0})
	l := w.NewLock("big")
	inCS := 0
	maxCS := 0
	for range 2 {
		n.Spawn("worker", func(t *Thread) {
			for range 5 {
				l.Lock(t)
				inCS++
				if inCS > maxCS {
					maxCS = inCS
				}
				t.Work(time.Millisecond)
				inCS--
				l.Unlock()
				t.Work(100 * time.Microsecond)
			}
		})
	}
	w.Run(time.Second)
	defer w.Shutdown()
	if maxCS != 1 {
		t.Fatalf("max threads in critical section = %d, want 1", maxCS)
	}
	if l.Contended() == 0 {
		t.Error("no contention recorded despite overlapping critical sections")
	}
	blocked := Time(0)
	for _, st := range w.ThreadStats() {
		blocked += st.Blocked
	}
	if blocked == 0 {
		t.Error("no blocked time accounted")
	}
}

func TestQueueAvgLen(t *testing.T) {
	w := NewWorld()
	n := w.NewNode(NodeConfig{Name: "a", Cores: 1})
	q := w.NewQueue("q", 100)
	n.Spawn("p", func(t *Thread) {
		for i := range 10 {
			q.Put(t, i)
		}
		t.Sleep(100 * time.Millisecond)
	})
	w.Run(100 * time.Millisecond)
	defer w.Shutdown()
	avg := q.AvgLen()
	if avg < 9.5 || avg > 10.1 {
		t.Fatalf("AvgLen = %.2f, want ~10", avg)
	}
}

func TestNICBandwidthAndQueueing(t *testing.T) {
	w := NewWorld()
	a := w.NewNode(NodeConfig{Name: "a", Cores: 1})
	b := w.NewNode(NodeConfig{Name: "b", Cores: 1})
	an := w.NewNIC(a, NICConfig{PacketService: 10 * time.Microsecond})
	bn := w.NewNIC(b, NICConfig{PacketService: 10 * time.Microsecond})
	delivered := 0
	// 100 single-frame messages sent at t=0 serialize through the egress
	// queue: last delivery ≈ 100 × 10µs + prop + ingress.
	var last Time
	for range 100 {
		an.Send(bn, 100, func() {
			delivered++
			last = w.Now()
		})
	}
	w.Run(time.Second)
	defer w.Shutdown()
	if delivered != 100 {
		t.Fatalf("delivered = %d, want 100", delivered)
	}
	wantMin := 100 * 10 * time.Microsecond
	if last < wantMin {
		t.Fatalf("last delivery at %v, want >= %v (egress serialization)", last, wantMin)
	}
	st := an.Stats()
	if st.PktsOut != 100 {
		t.Fatalf("PktsOut = %d, want 100", st.PktsOut)
	}
	if st.AvgOutDelay < 100*time.Microsecond {
		t.Fatalf("AvgOutDelay = %v, want queueing delay growth", st.AvgOutDelay)
	}
}

func TestNICFragmentsLargeMessages(t *testing.T) {
	w := NewWorld()
	a := w.NewNode(NodeConfig{Name: "a", Cores: 1})
	b := w.NewNode(NodeConfig{Name: "b", Cores: 1})
	an := w.NewNIC(a, NICConfig{})
	bn := w.NewNIC(b, NICConfig{})
	if got := an.Frames(4000); got != 3 {
		t.Fatalf("Frames(4000) = %d, want 3", got)
	}
	if got := an.Frames(0); got != 1 {
		t.Fatalf("Frames(0) = %d, want 1", got)
	}
	done := false
	an.Send(bn, 4000, func() { done = true })
	w.Run(time.Second)
	defer w.Shutdown()
	if !done {
		t.Fatal("message not delivered")
	}
	if st := an.Stats(); st.PktsOut != 3 || st.BytesOut != 4000 {
		t.Fatalf("stats = %+v, want 3 pkts / 4000 bytes", st)
	}
}

func TestNICAcks(t *testing.T) {
	w := NewWorld()
	a := w.NewNode(NodeConfig{Name: "a", Cores: 1})
	b := w.NewNode(NodeConfig{Name: "b", Cores: 1})
	an := w.NewNIC(a, NICConfig{AckEvery: 2})
	bn := w.NewNIC(b, NICConfig{AckEvery: 2})
	for range 10 {
		an.Send(bn, 100, nil)
	}
	w.Run(time.Second)
	defer w.Shutdown()
	// 10 data frames → 5 coalesced ACKs back.
	if st := bn.Stats(); st.PktsOut != 5 {
		t.Fatalf("receiver sent %d packets, want 5 ACKs", st.PktsOut)
	}
	if st := an.Stats(); st.PktsIn != 5 {
		t.Fatalf("sender received %d packets, want 5 ACKs", st.PktsIn)
	}
}

func TestPingIdleAndUnderLoad(t *testing.T) {
	w := NewWorld()
	a := w.NewNode(NodeConfig{Name: "a", Cores: 1})
	b := w.NewNode(NodeConfig{Name: "b", Cores: 1})
	an := w.NewNIC(a, NICConfig{})
	bn := w.NewNIC(b, NICConfig{})
	var idleRTT time.Duration
	an.Ping(bn, func(rtt time.Duration) { idleRTT = rtt })
	w.Run(10 * time.Millisecond)
	// Idle RTT ≈ 2×(svc_out + prop + svc_in) ≈ 2×(6.45+28+6.45)µs ≈ 82µs,
	// close to the paper's 0.06 ms scale.
	if idleRTT < 50*time.Microsecond || idleRTT > 150*time.Microsecond {
		t.Fatalf("idle RTT = %v, want ~80µs", idleRTT)
	}
	// Saturate a's egress, then ping: RTT must inflate (Table II).
	for range 500 {
		an.Send(bn, 1400, nil)
	}
	var loadedRTT time.Duration
	an.Ping(bn, func(rtt time.Duration) { loadedRTT = rtt })
	w.Run(w.Now() + 100*time.Millisecond)
	defer w.Shutdown()
	if loadedRTT < 10*idleRTT {
		t.Fatalf("loaded RTT = %v vs idle %v: no queueing inflation", loadedRTT, idleRTT)
	}
}

func TestRSSSpreadsService(t *testing.T) {
	w := NewWorld()
	a := w.NewNode(NodeConfig{Name: "a", Cores: 8})
	b := w.NewNode(NodeConfig{Name: "b", Cores: 8})
	an := w.NewNIC(a, NICConfig{RSSQueues: 8})
	bn := w.NewNIC(b, NICConfig{RSSQueues: 8})
	var last Time
	for range 100 {
		an.Send(bn, 100, func() { last = w.Now() })
	}
	w.Run(time.Second)
	defer w.Shutdown()
	// With 8-way RSS, egress serialization is ~8x faster than single-queue.
	singleQueue := 100 * DefaultPacketService
	if last > singleQueue/4 {
		t.Fatalf("last delivery %v with RSS, want well under %v", last, singleQueue)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (Time, uint64) {
		w := NewWorld()
		n := w.NewNode(NodeConfig{Name: "a", Cores: 2})
		m := w.NewNode(NodeConfig{Name: "b", Cores: 2})
		nn := w.NewNIC(n, NICConfig{AckEvery: 2})
		mn := w.NewNIC(m, NICConfig{AckEvery: 2})
		q := w.NewQueue("q", 4)
		l := w.NewLock("l")
		n.Spawn("p", func(t *Thread) {
			for i := range 200 {
				t.Work(13 * time.Microsecond)
				q.Put(t, i)
				nn.Send(mn, 300, nil)
			}
		})
		var checksum Time
		n.Spawn("c", func(t *Thread) {
			for range 200 {
				q.Take(t)
				l.Lock(t)
				t.Work(7 * time.Microsecond)
				l.Unlock()
				checksum += t.Now()
			}
		})
		w.Run(time.Second)
		w.Shutdown()
		return checksum, mn.Stats().PktsIn
	}
	c1, p1 := run()
	c2, p2 := run()
	if c1 != c2 || p1 != p2 {
		t.Fatalf("non-deterministic: (%v,%d) vs (%v,%d)", c1, p1, c2, p2)
	}
}

func TestSleepReleasesCore(t *testing.T) {
	w := NewWorld()
	n := w.NewNode(NodeConfig{Name: "a", Cores: 1, CtxSwitch: 0})
	var workerDone Time
	n.Spawn("sleeper", func(t *Thread) {
		t.Sleep(100 * time.Millisecond)
	})
	n.Spawn("worker", func(t *Thread) {
		t.Work(time.Millisecond)
		workerDone = t.Now()
	})
	w.Run(time.Second)
	defer w.Shutdown()
	if workerDone > 10*time.Millisecond {
		t.Fatalf("worker finished at %v: sleeper held the core", workerDone)
	}
}
