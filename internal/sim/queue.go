package sim

// Queue is a bounded FIFO connecting simulated threads, the analogue of the
// replica's message queues. Takes on an empty queue and puts on a full one
// park the thread in the waiting state — the paper's "waiting" profile
// category — and wake in FIFO order. It also integrates average length over
// virtual time (Table I's statistic).
type Queue struct {
	w    *World
	name string
	cap  int

	items []any

	takeWaiters []*Thread
	putWaiters  []putWaiter

	lastChange Time
	trackFrom  Time
	lenIntegrl float64 // length × seconds
	puts       uint64
	takes      uint64
}

type putWaiter struct {
	t *Thread
	v any
}

// NewQueue creates a bounded queue (capacity >= 1).
func (w *World) NewQueue(name string, capacity int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue{w: w, name: name, cap: capacity, lastChange: w.now, trackFrom: w.now}
}

// Name returns the queue's name.
func (q *Queue) Name() string { return q.name }

// Len returns the instantaneous queue length.
func (q *Queue) Len() int { return len(q.items) }

// Cap returns the capacity.
func (q *Queue) Cap() int { return q.cap }

// note integrates the current length before a change.
func (q *Queue) note() {
	now := q.w.now
	q.lenIntegrl += float64(len(q.items)) * (now - q.lastChange).Seconds()
	q.lastChange = now
}

// AvgLen returns the time-averaged length since tracking started.
func (q *Queue) AvgLen() float64 {
	q.note()
	window := (q.w.now - q.trackFrom).Seconds()
	if window <= 0 {
		return 0
	}
	return q.lenIntegrl / window
}

// Puts returns the number of completed put operations.
func (q *Queue) Puts() uint64 { return q.puts }

// Takes returns the number of completed take operations.
func (q *Queue) Takes() uint64 { return q.takes }

// ResetStats restarts average tracking (warm-up discard).
func (q *Queue) ResetStats() {
	q.lenIntegrl = 0
	q.lastChange = q.w.now
	q.trackFrom = q.w.now
	q.puts = 0
	q.takes = 0
}

// Put appends v, parking the thread while the queue is full.
func (q *Queue) Put(t *Thread, v any) {
	q.puts++
	// Direct hand-off to a parked taker keeps the queue length at zero.
	if len(q.takeWaiters) > 0 {
		tw := q.takeWaiters[0]
		q.takeWaiters = q.takeWaiters[1:]
		tw.out = v
		q.takes++
		tw.node.makeRunnable(tw)
		return
	}
	if len(q.items) < q.cap {
		q.note()
		q.items = append(q.items, v)
		return
	}
	q.putWaiters = append(q.putWaiters, putWaiter{t: t, v: v})
	t.block(StateWaiting)
}

// TryPut appends v without blocking, reporting success.
func (q *Queue) TryPut(v any) bool {
	if len(q.takeWaiters) > 0 || len(q.items) < q.cap {
		q.Put(nil, v)
		return true
	}
	return false
}

// Take removes the oldest item, parking the thread while the queue is empty.
func (q *Queue) Take(t *Thread) any {
	if len(q.items) > 0 {
		q.note()
		v := q.items[0]
		q.items = q.items[1:]
		q.takes++
		// A parked putter can now deposit.
		if len(q.putWaiters) > 0 {
			pw := q.putWaiters[0]
			q.putWaiters = q.putWaiters[1:]
			q.note()
			q.items = append(q.items, pw.v)
			pw.t.node.makeRunnable(pw.t)
		}
		return v
	}
	q.takeWaiters = append(q.takeWaiters, t)
	t.block(StateWaiting)
	// The putter counted this take when it handed the value over.
	out := t.out
	t.out = nil
	return out
}

// TryTake removes the oldest item without blocking.
func (q *Queue) TryTake() (any, bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	return q.Take(nil), true
}

// Lock is a mutex between simulated threads; contended acquisition parks
// the thread in the blocked state — the paper's contention metric.
type Lock struct {
	w       *World
	name    string
	holder  *Thread
	waiters []*Thread

	contended uint64
	acquired  uint64
}

// NewLock creates a lock.
func (w *World) NewLock(name string) *Lock {
	return &Lock{w: w, name: name}
}

// Lock acquires, parking the thread (state blocked) while held elsewhere.
// The lock barges like JVM/pthread mutexes: a running thread can take a
// just-released lock ahead of parked waiters, which avoids the pathological
// convoy a strict FIFO hand-off would create on few cores; a woken waiter
// re-checks and may park again (that re-parking is how contention shows up
// as blocked time on many cores).
func (l *Lock) Lock(t *Thread) {
	l.acquired++
	for l.holder != nil {
		l.contended++
		l.waiters = append(l.waiters, t)
		t.block(StateBlocked)
	}
	l.holder = t
}

// Unlock releases and wakes one parked waiter to retry. The waiter's
// blocked accounting ends at the wake: the run-queue delay before it
// actually retries is scheduling time, not lock contention.
func (l *Lock) Unlock() {
	l.holder = nil
	if len(l.waiters) > 0 {
		next := l.waiters[0]
		l.waiters = l.waiters[1:]
		next.transition(StateOther)
		next.node.makeRunnable(next)
	}
}

// Held reports whether the lock is currently held (used by spin models).
func (l *Lock) Held() bool { return l.holder != nil }

// Waiters returns the number of threads parked on the lock.
func (l *Lock) Waiters() int { return len(l.waiters) }

// Contended returns how many acquisitions had to park.
func (l *Lock) Contended() uint64 { return l.contended }

// Acquired returns total acquisitions.
func (l *Lock) Acquired() uint64 { return l.acquired }
