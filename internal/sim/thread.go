package sim

import (
	"fmt"
	"time"
)

// State mirrors the four thread states of the paper's profiles.
type State uint8

// Thread states: busy (on core, working), blocked (lock), waiting (queue),
// other (sleeping, switching, or runnable-but-descheduled).
const (
	StateBusy State = iota + 1
	StateBlocked
	StateWaiting
	StateOther
)

// String returns the profile label.
func (s State) String() string {
	switch s {
	case StateBusy:
		return "busy"
	case StateBlocked:
		return "blocked"
	case StateWaiting:
		return "waiting"
	case StateOther:
		return "other"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// reqKind tags a thread's yield reason.
type reqKind uint8

const (
	reqNone reqKind = iota
	reqWork
	reqSleep
	reqBlocked // waiting on queue/lock; external code wakes the thread
	reqExit
)

// Thread is one simulated thread. Bodies run in a dedicated goroutine but
// only while the scheduler waits on them — execution is serialized.
type Thread struct {
	node *Node
	name string

	resume chan struct{}
	yield  chan struct{}

	kind reqKind
	dur  time.Duration // reqWork/reqSleep
	out  any           // value deposited by a waker (queue take)

	state      State
	stateSince Time
	totals     [5]Time

	sliceStart Time
	runqSince  Time // when the thread entered the run queue
	finished   bool
	dead       bool
}

// Spawn starts a thread on node n running body. The body runs when the
// simulation first dispatches it; it must use only the Thread's API (and
// other sim types) to interact with virtual time, and should return when
// done.
func (n *Node) Spawn(name string, body func(t *Thread)) *Thread {
	t := &Thread{
		node:   n,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
		state:  StateOther,
	}
	n.w.threads = append(n.w.threads, t)
	go func() {
		<-t.resume
		if t.dead {
			return
		}
		runBody(t, body)
		if t.dead {
			return // unwound by Shutdown; the scheduler is gone
		}
		t.kind = reqExit
		t.yield <- struct{}{}
	}()
	n.makeRunnable(t)
	return t
}

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// Node returns the thread's machine.
func (t *Thread) Node() *Node { return t.node }

// Now returns the current virtual time.
func (t *Thread) Now() Time { return t.node.w.now }

// transition charges elapsed virtual time to the current state.
func (t *Thread) transition(s State) {
	now := t.node.w.now
	t.totals[t.state] += now - t.stateSince
	t.state = s
	t.stateSince = now
}

// Stats is a snapshot of one thread's accounting.
type Stats struct {
	Name    string
	Node    string
	Busy    Time
	Blocked Time
	Waiting Time
	Other   Time
}

// Total sums all states.
func (s Stats) Total() Time { return s.Busy + s.Blocked + s.Waiting + s.Other }

// Stats returns the thread's accumulated state times including the current
// interval.
func (t *Thread) Stats() Stats {
	totals := t.totals
	totals[t.state] += t.node.w.now - t.stateSince
	return Stats{
		Name:    t.name,
		Node:    t.node.name,
		Busy:    totals[StateBusy],
		Blocked: totals[StateBlocked],
		Waiting: totals[StateWaiting],
		Other:   totals[StateOther],
	}
}

// ResetStats zeroes accounting (warm-up discard).
func (t *Thread) ResetStats() {
	t.totals = [5]Time{}
	t.stateSince = t.node.w.now
}

// ThreadStats returns stats for every thread in the world, in spawn order.
func (w *World) ThreadStats() []Stats {
	out := make([]Stats, 0, len(w.threads))
	for _, t := range w.threads {
		out = append(out, t.Stats())
	}
	return out
}

// ResetAllStats clears thread, node and NIC statistics (warm-up discard).
func (w *World) ResetAllStats() {
	for _, t := range w.threads {
		t.ResetStats()
	}
	for _, n := range w.nodes {
		n.ResetStats()
		if n.NIC != nil {
			n.NIC.ResetStats()
		}
	}
}

// beginSlice resumes the thread after a dispatch; runs its slice to the next
// yield and processes the yield reason. Runs in scheduler context.
func (t *Thread) beginSlice() {
	t.transition(StateBusy)
	t.sliceStart = t.node.w.now
	t.runSlice()
}

// runSlice hands control to the thread goroutine and handles its next yield.
func (t *Thread) runSlice() {
	t.resume <- struct{}{}
	<-t.yield
	w := t.node.w
	switch t.kind {
	case reqWork:
		d := t.dur
		t.node.busy += d
		w.At(w.now+d, func() { t.afterWork() })
	case reqSleep:
		t.node.running--
		t.transition(StateOther)
		w.markPending(t.node)
		d := t.dur
		w.At(w.now+d, func() { t.node.makeRunnable(t) })
	case reqBlocked:
		// Queue/lock code already recorded the wait state and will wake us
		// via makeRunnable.
		t.node.running--
		w.markPending(t.node)
	case reqExit:
		t.finished = true
		t.node.running--
		t.transition(StateOther)
		w.markPending(t.node)
	}
}

// afterWork continues the thread once a Work interval finishes, preempting
// it if its slice is up and other threads wait for a core.
func (t *Thread) afterWork() {
	n := t.node
	if n.w.now-t.sliceStart >= n.quantum && len(n.runq) > 0 {
		t.transition(StateOther) // preempted: runnable but off core
		n.running--
		n.makeRunnable(t) // will re-dispatch with a context switch
		return
	}
	t.runSlice()
}

// Work consumes d of CPU on the thread's core.
func (t *Thread) Work(d time.Duration) {
	if d <= 0 {
		return
	}
	t.kind = reqWork
	t.dur = d
	t.yieldAndWait()
}

// Sleep releases the core for d.
func (t *Thread) Sleep(d time.Duration) {
	t.kind = reqSleep
	t.dur = d
	t.yieldAndWait()
}

// block parks the thread in state s until some other code wakes it with
// makeRunnable; the waker may deposit a value in t.out first.
func (t *Thread) block(s State) {
	t.transition(s)
	t.kind = reqBlocked
	t.yieldAndWait()
}

// yieldAndWait hands control back to the scheduler until resumed. When the
// thread was off-core (sleep/block), resumption goes through the run queue
// and beginSlice; Work resumptions keep the core and come back directly.
func (t *Thread) yieldAndWait() {
	t.yield <- struct{}{}
	<-t.resume
	if t.dead {
		// World shut down: unwind the goroutine via panic recovered in a
		// wrapper… simpler: park forever is a leak, so use runtime.Goexit.
		panic(threadShutdown{})
	}
}

// threadShutdown unwinds a thread goroutine at World.Shutdown.
type threadShutdown struct{}

// shutdown releases the thread goroutine if it is still parked. Every
// non-finished thread goroutine is blocked receiving on t.resume (that is
// the only way a thread parks), so the send below wakes it; the dead flag
// then unwinds it without yielding back.
func (t *Thread) shutdown() {
	if t.finished {
		return
	}
	t.dead = true
	select {
	case t.resume <- struct{}{}:
	default:
	}
}

// Spawned bodies run under this recover so Shutdown can unwind them.
func runBody(t *Thread, body func(*Thread)) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(threadShutdown); !ok {
				panic(r)
			}
		}
	}()
	body(t)
}
