package sim

import (
	"math"
	"time"
)

// Network constants mirroring the paper's testbed (Sec. VI: 1 GbE with
// ~114 MB/s effective bandwidth, 0.06 ms idle RTT).
const (
	// DefaultMTU is the Ethernet frame payload budget.
	DefaultMTU = 1500
	// DefaultPropDelay is the one-way propagation delay (0.06 ms RTT idle).
	DefaultPropDelay = 28 * time.Microsecond
	// DefaultPacketService is the per-packet kernel processing time with
	// the single interrupt queue of Linux < 2.6.35 ([14]): ~6.45 µs/packet
	// ≈ 155K packets/s, the ceiling the paper measures in Table III.
	DefaultPacketService = 6450 * time.Nanosecond
	// AckBytes is the size of a pure TCP ACK frame.
	AckBytes = 66
)

// NICConfig configures a node's network interface.
type NICConfig struct {
	// MTU is the maximum frame payload (DefaultMTU if zero).
	MTU int
	// PacketService is the per-packet kernel processing cost in the single
	// interrupt queue (DefaultPacketService if zero).
	PacketService time.Duration
	// PropDelay is the one-way wire latency to any other node
	// (DefaultPropDelay if zero).
	PropDelay time.Duration
	// RSSQueues spreads packet processing over min(RSSQueues, cores) queues
	// (the RSS/RPS ablation of the paper's footnote 5); 0 or 1 means the
	// single-queue bottleneck.
	RSSQueues int
	// AckEvery emits one pure-ACK frame back per AckEvery data frames
	// received (delayed ACK coalescing); 0 disables ACK modeling.
	AckEvery int
	// Coalesce adds a fixed interrupt-coalescing delay between a frame's
	// ingress processing and its delivery to the application — latency
	// without throughput cost, as NIC interrupt moderation behaves.
	Coalesce time.Duration
	// ServiceOverheadPerThread adds a fractional per-packet overhead for
	// each I/O thread beyond 8 hammering the stack concurrently — the
	// kernel-contention effect behind the throughput drop at high ClientIO
	// counts (Fig. 9). Typical value 0.04 (4% per extra thread).
	ServiceOverheadPerThread float64
	// IOThreads is the number of application I/O threads using this NIC
	// (feeds ServiceOverheadPerThread).
	IOThreads int
}

// NIC models one machine's network path: an egress and an ingress packet
// queue, each served at a fixed per-packet rate by the kernel. Queueing
// delay under saturation is what produces the paper's 2.5 ms leader RTT
// (Table II) and the instance-latency growth of Fig. 10b.
type NIC struct {
	w    *World
	node *Node
	cfg  NICConfig

	svc time.Duration // effective per-packet service time

	outBusyUntil Time
	inBusyUntil  Time

	// Stats.
	pktsOut, pktsIn   uint64
	bytesOut, bytesIn uint64
	outDelaySum       Time
	outDelayCnt       uint64
	ackPending        int

	statsFrom Time
}

// NewNIC attaches a network interface to n.
func (w *World) NewNIC(n *Node, cfg NICConfig) *NIC {
	if cfg.MTU <= 0 {
		cfg.MTU = DefaultMTU
	}
	if cfg.PacketService <= 0 {
		cfg.PacketService = DefaultPacketService
	}
	if cfg.PropDelay <= 0 {
		cfg.PropDelay = DefaultPropDelay
	}
	nic := &NIC{w: w, node: n, cfg: cfg}
	nic.svc = nic.effectiveService()
	n.NIC = nic
	return nic
}

// effectiveService derives the per-packet service time from the RSS mode
// and the I/O-thread contention overhead.
func (nic *NIC) effectiveService() time.Duration {
	svc := float64(nic.cfg.PacketService)
	if q := nic.cfg.RSSQueues; q > 1 {
		spread := min(q, nic.node.cores)
		if spread > 1 {
			svc /= float64(spread)
		}
	}
	if extra := nic.cfg.IOThreads - 8; extra > 0 && nic.cfg.ServiceOverheadPerThread > 0 {
		svc *= 1 + nic.cfg.ServiceOverheadPerThread*float64(extra)
	}
	return time.Duration(svc)
}

// Frames returns how many MTU-sized frames a payload of the given size
// occupies on the wire.
func (nic *NIC) Frames(bytes int) int {
	if bytes <= 0 {
		return 1
	}
	return int(math.Ceil(float64(bytes) / float64(nic.cfg.MTU)))
}

// Send transmits a message of the given size to dst, invoking deliver at
// dst once the last frame has been processed by its ingress path. deliver
// may be nil (fire-and-forget, e.g. ACKs).
func (nic *NIC) Send(dst *NIC, bytes int, deliver func()) {
	frames := nic.Frames(bytes)
	remaining := bytes
	for i := range frames {
		sz := min(remaining, nic.cfg.MTU)
		remaining -= sz
		last := i == frames-1
		var cb func()
		if last {
			cb = deliver
		}
		nic.sendFrame(sz, dst, cb, true)
	}
}

// sendFrame pushes one frame through egress service, the wire, and the
// destination's ingress service.
func (nic *NIC) sendFrame(bytes int, dst *NIC, deliver func(), wantAck bool) {
	now := nic.w.now
	start := now
	if nic.outBusyUntil > start {
		start = nic.outBusyUntil
	}
	done := start + nic.svc
	nic.outBusyUntil = done
	nic.pktsOut++
	nic.bytesOut += uint64(bytes)
	nic.outDelaySum += done - now
	nic.outDelayCnt++
	arrival := done + nic.cfg.PropDelay
	nic.w.At(arrival, func() { dst.receiveFrame(bytes, nic, deliver, wantAck) })
}

// receiveFrame runs a frame through the ingress packet queue, then delivers
// and possibly emits a coalesced ACK.
func (nic *NIC) receiveFrame(bytes int, from *NIC, deliver func(), wantAck bool) {
	now := nic.w.now
	start := now
	if nic.inBusyUntil > start {
		start = nic.inBusyUntil
	}
	done := start + nic.svc
	nic.inBusyUntil = done
	nic.pktsIn++
	nic.bytesIn += uint64(bytes)
	nic.w.At(done+nic.cfg.Coalesce, func() {
		if wantAck && nic.cfg.AckEvery > 0 {
			nic.ackPending++
			if nic.ackPending >= nic.cfg.AckEvery {
				nic.ackPending = 0
				nic.sendFrame(AckBytes, from, nil, false)
			}
		}
		if deliver != nil {
			deliver()
		}
	})
}

// Ping measures the round-trip time of one small frame to dst and back,
// calling done with the result. Like ICMP it bypasses application threads:
// only the kernel NIC queues are involved — exactly the paper's Table II
// methodology.
func (nic *NIC) Ping(dst *NIC, done func(rtt time.Duration)) {
	start := nic.w.now
	nic.sendFrame(AckBytes, dst, func() {
		dst.sendFrame(AckBytes, nic, func() {
			done(nic.w.now - start)
		}, false)
	}, false)
}

// NICStats is a snapshot of a NIC's counters.
type NICStats struct {
	PktsOut, PktsIn   uint64
	BytesOut, BytesIn uint64
	// AvgOutDelay is the mean egress queueing+service delay per packet.
	AvgOutDelay time.Duration
	// Window is the observation window (since last ResetStats).
	Window time.Duration
}

// Stats returns the NIC's counters since the last reset.
func (nic *NIC) Stats() NICStats {
	s := NICStats{
		PktsOut: nic.pktsOut, PktsIn: nic.pktsIn,
		BytesOut: nic.bytesOut, BytesIn: nic.bytesIn,
		Window: nic.w.now - nic.statsFrom,
	}
	if nic.outDelayCnt > 0 {
		s.AvgOutDelay = nic.outDelaySum / Time(nic.outDelayCnt)
	}
	return s
}

// ResetStats zeroes the counters (warm-up discard).
func (nic *NIC) ResetStats() {
	nic.pktsOut, nic.pktsIn = 0, 0
	nic.bytesOut, nic.bytesIn = 0, 0
	nic.outDelaySum, nic.outDelayCnt = 0, 0
	nic.statsFrom = nic.w.now
}
