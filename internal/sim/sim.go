// Package sim is a deterministic discrete-event simulator of the paper's
// testbed: multi-core nodes running cooperating threads, connected by a
// Gigabit network whose kernel packet-processing path has the pre-2.6.35
// Linux single-interrupt-queue bottleneck the paper identifies in Sec. VI-D.
//
// It substitutes for the Grid5000 clusters the paper measured on (this
// reproduction runs on arbitrary hosts, including single-core ones): cores,
// context switches, queues, locks and NIC service are modeled in virtual
// time, so every scalability figure is regenerated deterministically,
// byte-identical across runs and machines.
//
// # Execution model
//
// A World owns a virtual clock and an event heap. Threads are real
// goroutines, but exactly one runs at a time: the scheduler resumes a
// thread and waits for it to yield (Work, Sleep, blocking queue/lock op, or
// exit). Between yields a thread may freely mutate simulation state — the
// handshake makes execution single-threaded and deterministic. A Node
// schedules its threads onto a fixed number of cores with a round-robin run
// queue, charging a context-switch cost on every dispatch from the run
// queue; threads that exhaust their time slice while others wait are
// preempted. This mechanistically produces the paper's observation that CPU
// utilization grows more slowly than throughput: more cores mean fewer
// switches.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is virtual time since the start of the run.
type Time = time.Duration

// event is one scheduled callback.
type event struct {
	at  Time
	seq uint64 // FIFO tie-break for determinism
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event   { return h[0] }

// World is one simulation run.
type World struct {
	now     Time
	seq     uint64
	events  eventHeap
	nodes   []*Node
	threads []*Thread

	// dispatch work list: nodes with runnable threads and free cores.
	pending []*Node

	stopped bool
}

// NewWorld returns an empty simulation at time zero.
func NewWorld() *World {
	return &World{}
}

// Now returns the current virtual time.
func (w *World) Now() Time { return w.now }

// At schedules fn at time t (>= now).
func (w *World) At(t Time, fn func()) {
	if t < w.now {
		t = w.now
	}
	w.seq++
	heap.Push(&w.events, event{at: t, seq: w.seq, fn: fn})
}

// After schedules fn after duration d.
func (w *World) After(d time.Duration, fn func()) { w.At(w.now+d, fn) }

// Run executes events until the clock reaches `until` (events at exactly
// `until` are executed) or no events remain.
func (w *World) Run(until Time) {
	for {
		w.drainDispatch()
		if len(w.events) == 0 {
			w.now = until
			return
		}
		next := w.events.peek()
		if next.at > until {
			w.now = until
			return
		}
		heap.Pop(&w.events)
		w.now = next.at
		next.fn()
	}
}

// Stop makes Run return after the current event (used by tests).
func (w *World) Stop() { w.stopped = true }

// markPending notes that node may have dispatchable threads.
func (w *World) markPending(n *Node) {
	if !n.inPending {
		n.inPending = true
		w.pending = append(w.pending, n)
	}
}

// drainDispatch grants free cores to runnable threads on all pending nodes.
func (w *World) drainDispatch() {
	for len(w.pending) > 0 {
		n := w.pending[0]
		w.pending = w.pending[1:]
		n.inPending = false
		n.dispatch()
	}
}

// Shutdown releases all thread goroutines. Call once the run is complete;
// the World is unusable afterwards.
func (w *World) Shutdown() {
	for _, t := range w.threads {
		t.shutdown()
	}
}

// Node is one machine with a fixed number of cores.
type Node struct {
	w    *World
	name string

	cores   int
	running int
	runq    []*Thread

	// ctxSwitch is charged whenever a thread is dispatched after having
	// waited in the run queue (it was descheduled while runnable, so its
	// cache state is cold). Dispatches onto an idle core — a plain wakeup —
	// cost ctxSwitch/10. This asymmetry is what makes low-core-count runs
	// pay heavy switching overhead while many-core runs do not, producing
	// the paper's "CPU grows slower than throughput" effect.
	ctxSwitch time.Duration
	// quantum is the maximum time slice before a thread is preempted when
	// other threads are waiting for a core.
	quantum time.Duration

	inPending bool

	// busy accumulates core-busy time (thread work + context switches) for
	// CPU-utilization reporting.
	busy Time

	// NIC is this machine's network interface (assigned by NewNIC).
	NIC *NIC
}

// NodeConfig configures a simulated machine.
type NodeConfig struct {
	// Name identifies the node in stats.
	Name string
	// Cores is the number of cores (the experiments' x-axis).
	Cores int
	// CtxSwitch is the context-switch cost (default 3µs).
	CtxSwitch time.Duration
	// Quantum is the preemption time slice (default 1ms).
	Quantum time.Duration
}

// NewNode adds a machine to the world.
func (w *World) NewNode(cfg NodeConfig) *Node {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if cfg.CtxSwitch <= 0 {
		cfg.CtxSwitch = 3 * time.Microsecond
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = time.Millisecond
	}
	n := &Node{
		w:         w,
		name:      cfg.Name,
		cores:     cfg.Cores,
		ctxSwitch: cfg.CtxSwitch,
		quantum:   cfg.Quantum,
	}
	w.nodes = append(w.nodes, n)
	return n
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Cores returns the node's core count.
func (n *Node) Cores() int { return n.cores }

// BusyTime returns total core-busy time accumulated (across all cores), the
// basis of the paper's "% of single core time" CPU-utilization metric.
func (n *Node) BusyTime() Time { return n.busy }

// ResetStats clears the node's busy accounting (warm-up discard).
func (n *Node) ResetStats() { n.busy = 0 }

// dispatch grants free cores to run-queued threads.
func (n *Node) dispatch() {
	for n.running < n.cores && len(n.runq) > 0 {
		t := n.runq[0]
		n.runq = n.runq[1:]
		n.running++
		sw := n.ctxSwitch
		if t.runqSince == n.w.now {
			sw = n.ctxSwitch / 10 // wakeup onto an idle core: cache still warm
		}
		// The core is occupied for the switch itself, then the thread runs.
		n.busy += sw
		n.w.At(n.w.now+sw, func() { t.beginSlice() })
	}
}

// makeRunnable queues t for a core.
func (n *Node) makeRunnable(t *Thread) {
	t.runqSince = n.w.now
	n.runq = append(n.runq, t)
	n.w.markPending(n)
}

func (n *Node) String() string { return fmt.Sprintf("node(%s,%dc)", n.name, n.cores) }
