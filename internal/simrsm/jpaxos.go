package simrsm

import (
	"fmt"
	"time"

	"gosmr/internal/sim"
)

// Config describes one simulated JPaxos experiment (defaults match the
// paper's baseline setup of Sec. VI: n=3, 1800 closed-loop clients over 6
// machines, 128 B requests, 8 B replies, WND=10, BSZ=1300, 24-core nodes).
type Config struct {
	N               int // replicas
	Cores           int // cores per replica node
	ClientIOThreads int
	Window          int // WND
	BatchBytes      int // BSZ
	Clients         int
	ClientMachines  int
	ReqPayload      int

	// RSS enables the multi-queue NIC ablation (footnote 5).
	RSS bool
	// NoBatcher folds batch building into the Protocol thread (ablation of
	// the Sec. V-C1 design decision: no dedicated Batcher thread).
	NoBatcher bool
	// PacketService overrides the NIC per-packet cost (0 = default).
	PacketService time.Duration

	Costs Costs
}

// withDefaults fills in the paper's baseline parameters.
func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 3
	}
	if c.Cores == 0 {
		c.Cores = 24
	}
	if c.ClientIOThreads == 0 {
		c.ClientIOThreads = 5
	}
	if c.Window == 0 {
		c.Window = 10
	}
	if c.BatchBytes == 0 {
		c.BatchBytes = 1300
	}
	if c.Clients == 0 {
		c.Clients = 1800
	}
	if c.ClientMachines == 0 {
		c.ClientMachines = 6
	}
	if c.ReqPayload == 0 {
		c.ReqPayload = 128
	}
	if c.Costs == (Costs{}) {
		c.Costs = DefaultCosts()
	}
	return c
}

// batchReqs returns how many requests fill one batch (the paper packs
// ~1300/128 ≈ 10 requests per baseline batch, i.e. small per-request
// framing overhead).
func (c Config) batchReqs() int {
	per := c.ReqPayload + 5
	n := (c.BatchBytes - 4) / per
	if n < 1 {
		n = 1
	}
	return n
}

// event types flowing through the model's queues.
type reqEv struct {
	group *clientGroup
	slot  int
}

type batchEv struct {
	reqs    []reqEv
	propose sim.Time // when the leader proposed it (latency tracking)
}

type accept2bEv struct {
	id int64
}

type proposalHint struct{}

// replicaNode is one replica's thread/queue structure in the model.
type replicaNode struct {
	id   int
	node *sim.Node
	nic  *sim.NIC

	// Leader-side queues (allocated for every node; only used when leading
	// — leadership is fixed to node 0 for these steady-state experiments,
	// as in the paper's measurements).
	cioIn     []*sim.Queue // per ClientIO worker: socket events
	requestQ  *sim.Queue
	proposalQ *sim.Queue
	dispatchQ *sim.Queue
	decisionQ *sim.Queue
	sendQ     []*sim.Queue // per peer

	// Follower-side.
	rcvQ            *sim.Queue // socket frames from leader
	toLeaderDeliver func(id int64)
}

// Cluster is a running JPaxos model.
type Cluster struct {
	w   *sim.World
	cfg Config

	replicas []*replicaNode
	groups   []*clientGroup

	// Leader protocol state.
	nextInstance int64
	open         map[int64]*instance
	openIntegral float64
	openLast     sim.Time

	// Metrics.
	replies     uint64
	batchSizes  uint64
	batchCount  uint64
	latencySum  sim.Time
	latencyCnt  uint64
	measureFrom sim.Time
}

type instance struct {
	id       int64
	batch    batchEv
	acks     int
	proposed sim.Time
}

// clientGroup is one client machine: `slots` closed-loop clients sharing a
// NIC. Clients are reactive (no CPU model): on reply, send the next request
// immediately — the paper's zero-think-time loop.
type clientGroup struct {
	c    *Cluster
	idx  int
	nic  *sim.NIC
	slot int
}

// New builds the model in w.
func New(w *sim.World, cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{
		w:    w,
		cfg:  cfg,
		open: make(map[int64]*instance),
	}
	k := cfg.ClientIOThreads
	for i := range cfg.N {
		node := w.NewNode(sim.NodeConfig{
			Name:      fmt.Sprintf("replica-%d", i+1),
			Cores:     cfg.Cores,
			CtxSwitch: cfg.Costs.CtxSwitch,
			Quantum:   cfg.Costs.Quantum,
		})
		nicCfg := sim.NICConfig{
			AckEvery:                 12,
			Coalesce:                 400 * time.Microsecond,
			PacketService:            cfg.PacketService,
			IOThreads:                k,
			ServiceOverheadPerThread: 0.045,
		}
		if cfg.RSS {
			nicCfg.RSSQueues = cfg.Cores
		}
		nic := w.NewNIC(node, nicCfg)
		r := &replicaNode{id: i, node: node, nic: nic}
		c.replicas = append(c.replicas, r)
	}
	c.buildLeader(c.replicas[0])
	for _, r := range c.replicas[1:] {
		c.buildFollower(r)
	}
	// Client machines.
	perMachine := cfg.Clients / cfg.ClientMachines
	for m := range cfg.ClientMachines {
		node := w.NewNode(sim.NodeConfig{Name: fmt.Sprintf("clients-%d", m+1), Cores: 8})
		nic := w.NewNIC(node, sim.NICConfig{AckEvery: 12, Coalesce: 40 * time.Microsecond})
		g := &clientGroup{c: c, idx: m, nic: nic, slot: perMachine}
		c.groups = append(c.groups, g)
	}
	// Kick off the closed loop.
	w.At(0, func() {
		for _, g := range c.groups {
			for s := range g.slot {
				g.send(s)
			}
		}
	})
	return c
}

// buildLeader spawns the full Fig. 3 thread set on r.
func (c *Cluster) buildLeader(r *replicaNode) {
	w, cfg, cost := c.w, c.cfg, c.cfg.Costs
	k := cfg.ClientIOThreads
	// Sharded reply cache: ClientIO lookups and ServiceManager updates
	// contend mildly (Sec. V-D) — 8 shards keep blocked time small.
	replyShards := make([]*sim.Lock, 16)
	for i := range replyShards {
		replyShards[i] = w.NewLock(fmt.Sprintf("replycache-%d", i))
	}
	replyCache := func(t *sim.Thread, key int) {
		l := replyShards[key%len(replyShards)]
		l.Lock(t)
		t.Work(300 * time.Nanosecond)
		l.Unlock()
	}
	batchReqs := cfg.batchReqs()
	r.cioIn = make([]*sim.Queue, k)
	for i := range k {
		r.cioIn[i] = w.NewQueue(fmt.Sprintf("ClientIOQueue-%d", i), 1<<20)
	}
	r.requestQ = w.NewQueue("RequestQueue", 1000)
	r.proposalQ = w.NewQueue("ProposalQueue", 20)
	r.dispatchQ = w.NewQueue("DispatcherQueue", 1<<20)
	r.decisionQ = w.NewQueue("DecisionQueue", 512)
	r.sendQ = make([]*sim.Queue, cfg.N)
	for p := 1; p < cfg.N; p++ {
		r.sendQ[p] = w.NewQueue(fmt.Sprintf("SendQueue-%d", p), 1024)
	}

	// ClientIO workers.
	for i := range k {
		q := r.cioIn[i]
		r.node.Spawn(fmt.Sprintf("ClientIO-%d", i), func(t *sim.Thread) {
			for {
				switch ev := q.Take(t).(type) {
				case reqEv:
					t.Work(cost.CIOIngress)
					replyCache(t, ev.group.idx*1000+ev.slot)
					r.requestQ.Put(t, ev)
					if cfg.NoBatcher {
						r.dispatchQ.TryPut(proposalHint{})
					}
				case replyEv:
					t.Work(cost.CIOEgress)
					g := ev.group
					slot := ev.slot
					r.nic.Send(g.nic, cost.ReplyWire, func() { g.onReply(slot) })
				}
			}
		})
	}

	// Batcher (unless ablated away — then the Protocol thread builds
	// batches itself, paying the batching CPU on the critical path).
	if !cfg.NoBatcher {
		r.node.Spawn("Batcher", func(t *sim.Thread) {
			for {
				first := r.requestQ.Take(t).(reqEv)
				reqs := []reqEv{first}
				for len(reqs) < batchReqs {
					v, ok := r.requestQ.TryTake()
					if !ok {
						break
					}
					reqs = append(reqs, v.(reqEv))
				}
				t.Work(cost.BatchBase + time.Duration(len(reqs))*cost.BatchPerReq)
				r.proposalQ.Put(t, batchEv{reqs: reqs})
				r.dispatchQ.TryPut(proposalHint{})
			}
		})
	}

	// Protocol.
	r.node.Spawn("Protocol", func(t *sim.Thread) {
		for {
			switch ev := r.dispatchQ.Take(t).(type) {
			case proposalHint:
				// handled by the drain below
			case accept2bEv:
				t.Work(cost.Accept2b)
				if inst, ok := c.open[ev.id]; ok {
					inst.acks++
					if inst.acks >= cfg.N/2+1 {
						c.noteOpenChange()
						delete(c.open, ev.id)
						c.latencySum += t.Now() - inst.proposed
						c.latencyCnt++
						r.decisionQ.Put(t, inst.batch)
					}
				}
			}
			for len(c.open) < cfg.Window {
				var b batchEv
				if cfg.NoBatcher {
					first, ok := r.requestQ.TryTake()
					if !ok {
						break
					}
					reqs := []reqEv{first.(reqEv)}
					for len(reqs) < batchReqs {
						v, ok := r.requestQ.TryTake()
						if !ok {
							break
						}
						reqs = append(reqs, v.(reqEv))
					}
					t.Work(cost.BatchBase + time.Duration(len(reqs))*cost.BatchPerReq)
					b = batchEv{reqs: reqs}
				} else {
					v, ok := r.proposalQ.TryTake()
					if !ok {
						break
					}
					b = v.(batchEv)
				}
				t.Work(cost.Propose + time.Duration(len(c.open))*cost.PerInstance)
				id := c.nextInstance
				c.nextInstance++
				c.noteOpenChange()
				inst := &instance{id: id, batch: b, acks: 1, proposed: t.Now()}
				c.open[id] = inst
				c.batchSizes += uint64(len(b.reqs))
				c.batchCount++
				for p := 1; p < cfg.N; p++ {
					r.sendQ[p].Put(t, inst)
				}
				if cfg.N == 1 {
					c.noteOpenChange()
					delete(c.open, id)
					r.decisionQ.Put(t, b)
				}
			}
		}
	})

	// Per-peer sender and receiver threads.
	for p := 1; p < cfg.N; p++ {
		peer := c.replicas[p]
		sq := r.sendQ[p]
		r.node.Spawn(fmt.Sprintf("ReplicaIOSnd-%d", p-1), func(t *sim.Thread) {
			for {
				inst := sq.Take(t).(*instance)
				t.Work(cost.SndSerialize)
				size := cfg.HdrSize() + 4 + len(inst.batch.reqs)*(cfg.ReqPayload+5)
				id := inst.id
				r.nic.Send(peer.nic, size, func() {
					peer.rcvQ.TryPut(folProposeEv{id: id, reqs: len(inst.batch.reqs)})
				})
			}
		})
		rq := w.NewQueue(fmt.Sprintf("LdrRcvQueue-%d", p), 1<<20)
		peer.toLeaderDeliver = func(id int64) { rq.TryPut(accept2bEv{id: id}) }
		r.node.Spawn(fmt.Sprintf("ReplicaIORcv-%d", p-1), func(t *sim.Thread) {
			for {
				ev := rq.Take(t).(accept2bEv)
				t.Work(cost.RcvDeser2b)
				r.dispatchQ.Put(t, ev)
			}
		})
	}

	// ServiceManager ("Replica" thread).
	r.node.Spawn("Replica", func(t *sim.Thread) {
		for {
			b := r.decisionQ.Take(t).(batchEv)
			t.Work(time.Duration(len(b.reqs)) * cost.Exec)
			for _, req := range b.reqs {
				replyCache(t, req.group.idx*1000+req.slot)
				worker := (req.group.idx*100003 + req.slot) % len(r.cioIn)
				r.cioIn[worker].Put(t, replyEv(req))
			}
		}
	})

	// Satellites: mostly-idle FailureDetector and Retransmitter.
	r.node.Spawn("FailureDetector", func(t *sim.Thread) {
		for {
			t.Sleep(50 * time.Millisecond)
			t.Work(20 * time.Microsecond)
		}
	})
	r.node.Spawn("Retransmitter", func(t *sim.Thread) {
		for {
			t.Sleep(100 * time.Millisecond)
			t.Work(10 * time.Microsecond)
		}
	})
}

// replyEv routes one executed request's reply back through ClientIO.
type replyEv reqEv

// folProposeEv is a batch arriving at a follower.
type folProposeEv struct {
	id   int64
	reqs int
}

// HdrSize returns the wire overhead of one batch message.
func (c Config) HdrSize() int { return c.Costs.HdrBatch }

// buildFollower spawns the follower thread set on r.
func (c *Cluster) buildFollower(r *replicaNode) {
	w, cost := c.w, c.cfg.Costs
	r.rcvQ = w.NewQueue(fmt.Sprintf("FolRcvQueue-%d", r.id), 1<<20)
	protoQ := w.NewQueue(fmt.Sprintf("FolDispatch-%d", r.id), 1<<20)
	sndQ := w.NewQueue(fmt.Sprintf("FolSendQueue-%d", r.id), 1024)
	execQ := w.NewQueue(fmt.Sprintf("FolDecision-%d", r.id), 512)
	leader := c.replicas[0]

	r.node.Spawn("ReplicaIORcv-0", func(t *sim.Thread) {
		for {
			ev := r.rcvQ.Take(t).(folProposeEv)
			t.Work(cost.FolRcvProp)
			protoQ.Put(t, ev)
		}
	})
	r.node.Spawn("Protocol", func(t *sim.Thread) {
		for {
			ev := protoQ.Take(t).(folProposeEv)
			t.Work(cost.FolPropose)
			sndQ.Put(t, ev)
			execQ.TryPut(ev)
		}
	})
	r.node.Spawn("ReplicaIOSnd-0", func(t *sim.Thread) {
		for {
			ev := sndQ.Take(t).(folProposeEv)
			t.Work(cost.FolSnd2b)
			id := ev.id
			r.nic.Send(leader.nic, cost.Wire2b, func() {
				if r.toLeaderDeliver != nil {
					r.toLeaderDeliver(id)
				}
			})
		}
	})
	r.node.Spawn("Replica", func(t *sim.Thread) {
		for {
			ev := execQ.Take(t).(folProposeEv)
			t.Work(time.Duration(ev.reqs) * cost.FolExec)
		}
	})
	r.node.Spawn("FailureDetector", func(t *sim.Thread) {
		for {
			t.Sleep(50 * time.Millisecond)
			t.Work(15 * time.Microsecond)
		}
	})
}

// send issues one request from a client slot to the leader.
func (g *clientGroup) send(slot int) {
	c := g.c
	leader := c.replicas[0]
	worker := (g.idx*100003 + slot) % len(leader.cioIn)
	g.nic.Send(leader.nic, c.cfg.Costs.ReqWire, func() {
		leader.cioIn[worker].TryPut(reqEv{group: g, slot: slot})
	})
}

// onReply closes the loop: count and send the next request.
func (g *clientGroup) onReply(slot int) {
	c := g.c
	if c.w.Now() >= c.measureFrom {
		c.replies++
	}
	g.send(slot)
}

// noteOpenChange integrates the open-instance count (avg window, Fig. 10d).
func (c *Cluster) noteOpenChange() {
	now := c.w.Now()
	c.openIntegral += float64(len(c.open)) * (now - c.openLast).Seconds()
	c.openLast = now
}
