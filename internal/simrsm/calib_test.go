package simrsm

import (
	"fmt"
	"testing"
	"time"
)

func TestCalibrationCurve(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	for _, cores := range []int{1, 2, 4, 6, 8, 12, 16, 24} {
		res := RunJPaxos(Config{Cores: cores}, 200*time.Millisecond, 500*time.Millisecond)
		fmt.Printf("cores=%2d tput=%8.0f lat=%8v win=%5.1f batch=%4.1f cpu=%6.0f%% blocked=%5.1f%% pktsOut/s=%8.0f reqQ=%6.1f propQ=%5.1f ldrRTT=%v\n",
			cores, res.Throughput, res.InstanceLatency, res.AvgWindow, res.AvgBatchReqs,
			res.CPUPercent[0], res.BlockedPercent[0],
			float64(res.LeaderNIC.PktsOut)/res.Window.Seconds(),
			res.QueueAvg["RequestQueue"], res.QueueAvg["ProposalQueue"], res.PingLeaderRTT)
	}
}

func TestZKCalibrationCurve(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	for _, cores := range []int{1, 2, 4, 8, 16, 24} {
		res := RunZK(ZKConfig{Cores: cores}, 200*time.Millisecond, 500*time.Millisecond)
		lead := len(res.CPUPercent) - 1
		fmt.Printf("cores=%2d tput=%8.0f cpu(leader)=%6.0f%% blocked(leader)=%6.1f%%\n",
			cores, res.Throughput, res.CPUPercent[lead], res.BlockedPercent[lead])
	}
}
