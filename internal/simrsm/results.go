package simrsm

import (
	"time"

	"gosmr/internal/sim"
)

// Results is everything one experiment run measures, covering all the
// quantities the paper reports across Figs. 4-11 and Tables I-III.
type Results struct {
	// Throughput in requests/second over the measurement window.
	Throughput float64
	// InstanceLatency is the mean propose→decide latency (Fig. 10b).
	InstanceLatency time.Duration
	// AvgBatchReqs is the mean number of requests per batch (Fig. 10c).
	AvgBatchReqs float64
	// AvgWindow is the time-averaged number of parallel ballots (Fig. 10d,
	// Table I).
	AvgWindow float64
	// QueueAvg holds time-averaged lengths of the leader's RequestQueue,
	// ProposalQueue and DispatcherQueue (Table I).
	QueueAvg map[string]float64
	// CPUPercent is each replica's CPU utilization as % of one core
	// (Fig. 5a/5c), indexed by replica (leader first... replica order as
	// built, leader is index 0).
	CPUPercent []float64
	// BlockedPercent is each replica's total thread blocked time as % of
	// the run (Fig. 5b/5d).
	BlockedPercent []float64
	// WaitingPercent is like BlockedPercent for queue waits.
	WaitingPercent []float64
	// LeaderThreads is the per-thread profile of the leader (Fig. 8).
	LeaderThreads []sim.Stats
	// LeaderNIC counts the leader's packets/bytes (Table III).
	LeaderNIC sim.NICStats
	// PingLeaderRTT and PingFollowerRTT are in-experiment ping times
	// (Table II).
	PingLeaderRTT   time.Duration
	PingFollowerRTT time.Duration
	// Window is the measurement window.
	Window time.Duration
}

// Run executes the model: warm up, reset statistics, measure. It returns
// the collected results and shuts the world down.
func (c *Cluster) Run(warmup, measure time.Duration) Results {
	w := c.w
	w.Run(warmup)
	// Discard warm-up.
	w.ResetAllStats()
	c.replies = 0
	c.batchSizes, c.batchCount = 0, 0
	c.latencySum, c.latencyCnt = 0, 0
	c.openIntegral, c.openLast = 0, w.Now()
	c.measureFrom = w.Now()
	leader := c.replicas[0]
	leader.requestQ.ResetStats()
	leader.proposalQ.ResetStats()
	leader.dispatchQ.ResetStats()
	leader.decisionQ.ResetStats()

	// In-experiment pings every 5 ms (Table II methodology).
	var (
		ldrSum, folSum time.Duration
		ldrCnt, folCnt int
	)
	if c.cfg.N >= 2 {
		var pinger func()
		pinger = func() {
			leader.nic.Ping(c.replicas[1].nic, func(rtt time.Duration) {
				ldrSum += rtt
				ldrCnt++
			})
			if c.cfg.N >= 3 {
				c.replicas[1].nic.Ping(c.replicas[2].nic, func(rtt time.Duration) {
					folSum += rtt
					folCnt++
				})
			}
			w.After(5*time.Millisecond, pinger)
		}
		w.After(time.Millisecond, pinger)
	}

	end := w.Now() + measure
	w.Run(end)
	c.noteOpenChange()

	res := Results{
		Throughput: float64(c.replies) / measure.Seconds(),
		AvgWindow:  c.openIntegral / measure.Seconds(),
		QueueAvg: map[string]float64{
			"RequestQueue":    leader.requestQ.AvgLen(),
			"ProposalQueue":   leader.proposalQ.AvgLen(),
			"DispatcherQueue": leader.dispatchQ.AvgLen(),
		},
		LeaderNIC: leader.nic.Stats(),
		Window:    measure,
	}
	if c.batchCount > 0 {
		res.AvgBatchReqs = float64(c.batchSizes) / float64(c.batchCount)
	}
	if c.latencyCnt > 0 {
		res.InstanceLatency = c.latencySum / sim.Time(c.latencyCnt)
	}
	if ldrCnt > 0 {
		res.PingLeaderRTT = ldrSum / time.Duration(ldrCnt)
	}
	if folCnt > 0 {
		res.PingFollowerRTT = folSum / time.Duration(folCnt)
	}
	// Per-replica CPU and contention, plus the leader's thread profile.
	for _, r := range c.replicas {
		res.CPUPercent = append(res.CPUPercent,
			100*float64(r.node.BusyTime())/float64(measure))
		var blocked, waiting sim.Time
		for _, st := range w.ThreadStats() {
			if st.Node == r.node.Name() {
				blocked += st.Blocked
				waiting += st.Waiting
			}
		}
		res.BlockedPercent = append(res.BlockedPercent,
			100*float64(blocked)/float64(measure))
		res.WaitingPercent = append(res.WaitingPercent,
			100*float64(waiting)/float64(measure))
	}
	for _, st := range w.ThreadStats() {
		if st.Node == leader.node.Name() {
			res.LeaderThreads = append(res.LeaderThreads, st)
		}
	}
	w.Shutdown()
	return res
}

// RunJPaxos builds and runs one JPaxos experiment with the given config.
func RunJPaxos(cfg Config, warmup, measure time.Duration) Results {
	w := sim.NewWorld()
	c := New(w, cfg)
	return c.Run(warmup, measure)
}

// IdlePing measures the idle network RTT (Table II's baseline row) in a
// fresh world with no workload.
func IdlePing() time.Duration {
	w := sim.NewWorld()
	a := w.NewNode(sim.NodeConfig{Name: "a", Cores: 1})
	b := w.NewNode(sim.NodeConfig{Name: "b", Cores: 1})
	an := w.NewNIC(a, sim.NICConfig{})
	bn := w.NewNIC(b, sim.NICConfig{})
	var rtt time.Duration
	an.Ping(bn, func(d time.Duration) { rtt = d })
	w.Run(time.Second)
	w.Shutdown()
	return rtt
}
