package simrsm

import (
	"fmt"
	"time"

	"gosmr/internal/sim"
)

// ZKConfig describes one simulated ZooKeeper-baseline experiment (Fig. 1,
// 12, 13, 14): n replicas, clients connected to the followers only (the
// paper configures the leader to refuse clients), 128 B write requests.
type ZKConfig struct {
	N              int
	Cores          int
	Clients        int
	ClientMachines int

	Costs ZKCosts
}

func (c ZKConfig) withDefaults() ZKConfig {
	if c.N == 0 {
		c.N = 3
	}
	if c.Cores == 0 {
		c.Cores = 24
	}
	if c.Clients == 0 {
		c.Clients = 1800
	}
	if c.ClientMachines == 0 {
		c.ClientMachines = 6
	}
	if c.Costs == (ZKCosts{}) {
		c.Costs = DefaultZKCosts()
	}
	return c
}

// ZKResults is what the baseline experiments report.
type ZKResults struct {
	Throughput     float64
	CPUPercent     []float64 // per replica, leader last (replica N-1 leads, as in Fig. 13)
	BlockedPercent []float64
	LeaderThreads  []sim.Stats
	Window         time.Duration
}

// zkRequest tracks one request through the leader pipeline.
type zkRequest struct {
	group *clientGroup2
	slot  int
	acks  int
}

// clientGroup2 is a closed-loop client machine for the baseline (clients
// talk to followers).
type clientGroup2 struct {
	z    *zkCluster
	idx  int
	nic  *sim.NIC
	fol  int // follower index this machine's clients connect to
	slot int
}

// zkCluster is the running baseline model.
type zkCluster struct {
	w   *sim.World
	cfg ZKConfig

	leaderNode *sim.Node
	leaderNIC  *sim.NIC
	folNodes   []*sim.Node
	folNICs    []*sim.NIC

	// Leader pipeline.
	processQ *sim.Queue   // forwarded client requests
	learnerQ []*sim.Queue // per-follower ack queues
	commitQ  *sim.Queue
	syncQ    *sim.Queue
	sendQ    []*sim.Queue // per-follower sender queues

	// Follower pipelines: inbound client requests and inbound commits.
	folInQ     []*sim.Queue
	folCommitQ []*sim.Queue
	folFwdQ    []*sim.Queue

	groups []*clientGroup2

	replies     uint64
	measureFrom sim.Time
}

// NewZK builds the baseline model in w.
func NewZK(w *sim.World, cfg ZKConfig) *zkCluster {
	cfg = cfg.withDefaults()
	z := &zkCluster{w: w, cfg: cfg}
	cost := cfg.Costs

	followers := cfg.N - 1
	// Follower nodes first (replica 1..N-1 in Fig. 13 numbering; the leader
	// is the last replica).
	for f := range followers {
		node := w.NewNode(sim.NodeConfig{
			Name:      fmt.Sprintf("replica-%d", f+1),
			Cores:     cfg.Cores,
			CtxSwitch: cost.CtxSwitch,
			Quantum:   cost.Quantum,
		})
		nic := w.NewNIC(node, sim.NICConfig{AckEvery: 12, Coalesce: 100 * time.Microsecond})
		z.folNodes = append(z.folNodes, node)
		z.folNICs = append(z.folNICs, nic)
	}
	z.leaderNode = w.NewNode(sim.NodeConfig{
		Name:      fmt.Sprintf("replica-%d", cfg.N),
		Cores:     cfg.Cores,
		CtxSwitch: cost.CtxSwitch,
		Quantum:   cost.Quantum,
	})
	z.leaderNIC = w.NewNIC(z.leaderNode, sim.NICConfig{AckEvery: 12, Coalesce: 100 * time.Microsecond})

	z.buildLeader()
	for f := range followers {
		z.buildFollower(f)
	}

	perMachine := cfg.Clients / cfg.ClientMachines
	for m := range cfg.ClientMachines {
		node := w.NewNode(sim.NodeConfig{Name: fmt.Sprintf("clients-%d", m+1), Cores: 8})
		nic := w.NewNIC(node, sim.NICConfig{AckEvery: 12, Coalesce: 40 * time.Microsecond})
		g := &clientGroup2{z: z, idx: m, nic: nic, fol: m % followers, slot: perMachine}
		z.groups = append(z.groups, g)
	}
	w.At(0, func() {
		for _, g := range z.groups {
			for s := range g.slot {
				g.send(s)
			}
		}
	})
	return z
}

// buildLeader spawns the ZooKeeper leader's thread set (Fig. 1b/14):
// ProcessThread, LearnerHandler per follower, CommitProcessor, SyncThread,
// Sender per follower — all serializing on one global lock, with a hand-off
// penalty growing with the number of waiters.
func (z *zkCluster) buildLeader() {
	w, cfg, cost := z.w, z.cfg, z.cfg.Costs
	followers := cfg.N - 1
	node := z.leaderNode

	z.processQ = w.NewQueue("zk-process", 1<<20)
	z.commitQ = w.NewQueue("zk-commit", 1<<20)
	z.syncQ = w.NewQueue("zk-sync", 1<<20)
	for f := range followers {
		z.learnerQ = append(z.learnerQ, w.NewQueue(fmt.Sprintf("zk-learner-%d", f), 1<<20))
		z.sendQ = append(z.sendQ, w.NewQueue(fmt.Sprintf("zk-send-%d", f), 1<<20))
	}

	g := w.NewLock("zk-global")
	// critical runs a critical section under the global lock. Beyond the
	// queued-waiter hand-off penalty, every active core adds cache-coherence
	// traffic on the lock word and the shared structures it guards (the
	// leader is a 2-socket NUMA machine): the per-core coherence penalty is
	// what collapses throughput past ~4 cores in Fig. 1a while CPU
	// utilization keeps rising (Fig. 13a) — cycles burned on contention.
	coherence := time.Duration(cfg.Cores-1) * 300 * time.Nanosecond
	critical := func(t *sim.Thread, cs time.Duration) {
		// Adaptive spinning before parking burns CPU under contention —
		// this is why ZooKeeper's CPU utilization keeps climbing while its
		// throughput falls (Fig. 13a): the extra cycles go to contention.
		if g.Held() {
			t.Work(3 * time.Microsecond)
		}
		g.Lock(t)
		t.Work(cs + coherence + time.Duration(g.Waiters())*cost.Handoff)
		g.Unlock()
	}

	node.Spawn("ProcessThread", func(t *sim.Thread) {
		for {
			req := z.processQ.Take(t).(*zkRequest)
			critical(t, cost.CSProcess)
			t.Work(cost.Process)
			for f := range followers {
				z.sendQ[f].Put(t, proposalMsg{req: req})
			}
			z.syncQ.Put(t, req)
		}
	})

	node.Spawn("SyncThread", func(t *sim.Thread) {
		for {
			_ = z.syncQ.Take(t)
			critical(t, cost.CSSync)
			t.Work(cost.Sync)
		}
	})

	for f := range followers {
		lq := z.learnerQ[f]
		node.Spawn(fmt.Sprintf("LearnerHandler:%d", f+1), func(t *sim.Thread) {
			for {
				req := lq.Take(t).(*zkRequest)
				critical(t, cost.CSLearner)
				t.Work(cost.Learner)
				req.acks++
				if req.acks == 1 { // leader + first follower = majority (n=3)
					z.commitQ.Put(t, req)
				}
			}
		})
		sq := z.sendQ[f]
		folIdx := f
		node.Spawn(fmt.Sprintf("Sender:%d", f+1), func(t *sim.Thread) {
			for {
				first := sq.Take(t)
				msgs := []any{first}
				for len(msgs) < 10 {
					v, ok := sq.TryTake()
					if !ok {
						break
					}
					msgs = append(msgs, v)
				}
				t.Work(time.Duration(len(msgs)) * cost.Sender)
				size := 0
				for _, m := range msgs {
					if _, isProp := m.(proposalMsg); isProp {
						size += 180
					} else {
						size += 40
					}
				}
				batch := msgs
				z.leaderNIC.Send(z.folNICs[folIdx], size, func() {
					for _, m := range batch {
						z.folDeliver(folIdx, m)
					}
				})
			}
		})
	}

	node.Spawn("CommitProcessor", func(t *sim.Thread) {
		for {
			req := z.commitQ.Take(t).(*zkRequest)
			critical(t, cost.CSCommit)
			t.Work(cost.Commit)
			for f := range followers {
				z.sendQ[f].Put(t, commitMsg{req: req})
			}
		}
	})
}

type proposalMsg struct{ req *zkRequest }
type commitMsg struct{ req *zkRequest }

// folDeliver routes a leader message into follower f's queues.
func (z *zkCluster) folDeliver(f int, m any) {
	switch msg := m.(type) {
	case proposalMsg:
		z.folInQ[f].TryPut(msg)
	case commitMsg:
		z.folCommitQ[f].TryPut(msg)
	}
}

// buildFollower spawns follower f's threads: request forwarding, proposal
// ack, commit+reply.
func (z *zkCluster) buildFollower(f int) {
	w, cost := z.w, z.cfg.Costs
	if z.folInQ == nil {
		z.folInQ = make([]*sim.Queue, z.cfg.N-1)
		z.folCommitQ = make([]*sim.Queue, z.cfg.N-1)
		z.folFwdQ = make([]*sim.Queue, z.cfg.N-1)
	}
	z.folInQ[f] = w.NewQueue(fmt.Sprintf("fol%d-in", f), 1<<20)
	z.folCommitQ[f] = w.NewQueue(fmt.Sprintf("fol%d-commit", f), 1<<20)
	z.folFwdQ[f] = w.NewQueue(fmt.Sprintf("fol%d-fwd", f), 1<<20)
	node := z.folNodes[f]
	nic := z.folNICs[f]

	// Forwarder: client request → leader, batched like the Senders.
	node.Spawn("Forwarder", func(t *sim.Thread) {
		for {
			first := z.folFwdQ[f].Take(t)
			reqs := []any{first}
			for len(reqs) < 10 {
				v, ok := z.folFwdQ[f].TryTake()
				if !ok {
					break
				}
				reqs = append(reqs, v)
			}
			t.Work(time.Duration(len(reqs)) * cost.FolWork / 3)
			batch := reqs
			nic.Send(z.leaderNIC, len(reqs)*170, func() {
				for _, r := range batch {
					z.processQ.TryPut(r)
				}
			})
		}
	})
	// Acker: proposal → ack to leader.
	node.Spawn("Acker", func(t *sim.Thread) {
		for {
			msg := z.folInQ[f].Take(t).(proposalMsg)
			t.Work(cost.FolWork / 3)
			req := msg.req
			nic.Send(z.leaderNIC, 60, func() {
				z.learnerQ[f].TryPut(req)
			})
		}
	})
	// Committer: commit → execute → reply to the owning client.
	node.Spawn("Committer", func(t *sim.Thread) {
		for {
			msg := z.folCommitQ[f].Take(t).(commitMsg)
			t.Work(cost.FolWork/3 + cost.ReplyWork)
			req := msg.req
			if req.group.fol == f {
				nic.Send(req.group.nic, 48, func() {
					req.group.onReply(req.slot)
				})
			}
		}
	})
}

// send issues one request from a client slot to its follower.
func (g *clientGroup2) send(slot int) {
	z := g.z
	g.nic.Send(z.folNICs[g.fol], 170, func() {
		z.folFwdQ[g.fol].TryPut(&zkRequest{group: g, slot: slot})
	})
}

// onReply closes the loop.
func (g *clientGroup2) onReply(slot int) {
	z := g.z
	if z.w.Now() >= z.measureFrom {
		z.replies++
	}
	g.send(slot)
}

// Run executes the baseline model and collects results.
func (z *zkCluster) Run(warmup, measure time.Duration) ZKResults {
	w := z.w
	w.Run(warmup)
	w.ResetAllStats()
	z.replies = 0
	z.measureFrom = w.Now()
	w.Run(w.Now() + measure)

	res := ZKResults{
		Throughput: float64(z.replies) / measure.Seconds(),
		Window:     measure,
	}
	nodes := append(append([]*sim.Node{}, z.folNodes...), z.leaderNode)
	for _, n := range nodes {
		res.CPUPercent = append(res.CPUPercent, 100*float64(n.BusyTime())/float64(measure))
		var blocked sim.Time
		for _, st := range w.ThreadStats() {
			if st.Node == n.Name() {
				blocked += st.Blocked
			}
		}
		res.BlockedPercent = append(res.BlockedPercent, 100*float64(blocked)/float64(measure))
	}
	for _, st := range w.ThreadStats() {
		if st.Node == z.leaderNode.Name() {
			res.LeaderThreads = append(res.LeaderThreads, st)
		}
	}
	w.Shutdown()
	return res
}

// RunZK builds and runs one baseline experiment.
func RunZK(cfg ZKConfig, warmup, measure time.Duration) ZKResults {
	w := sim.NewWorld()
	z := NewZK(w, cfg)
	return z.Run(warmup, measure)
}
