// Package simrsm models the two systems the paper measures on the sim
// substrate: the JPaxos multi-core threading architecture (Fig. 3) and the
// ZooKeeper-style coarse-locked baseline (Fig. 1/13/14). Thread structure,
// queues and message flows mirror the real implementations; per-operation
// CPU costs are calibrated once (this file) so the single-core throughput
// matches the paper's parapluie cluster, and every scalability curve is
// then *generated* by the model, not fitted.
package simrsm

import "time"

// Costs are the calibrated per-operation CPU costs of the JPaxos model,
// chosen to reproduce the leader-side cost profile of Fig. 8 (ClientIO and
// Batcher dominate; Replica second; Protocol and ReplicaIO light) and the
// ~15K req/s single-core throughput of Fig. 4 (parapluie, n=3).
type Costs struct {
	// ClientIO worker: per-request ingress (read+deserialize+reply-cache)
	// and egress (serialize+write reply).
	CIOIngress time.Duration
	CIOEgress  time.Duration

	// Batcher: per request folded into a batch, plus per-batch overhead.
	BatchPerReq time.Duration
	BatchBase   time.Duration

	// Protocol thread: starting a ballot, handling one Phase 2b, and the
	// per-open-instance bookkeeping that grows with the window (the WND>35
	// throughput dip of Fig. 10a).
	Propose     time.Duration
	Accept2b    time.Duration
	PerInstance time.Duration

	// ReplicaIO: serializing one outbound batch, deserializing one 2b at
	// the leader; follower-side propose deserialize and 2b serialize.
	SndSerialize time.Duration
	RcvDeser2b   time.Duration
	FolRcvProp   time.Duration
	FolSnd2b     time.Duration
	FolPropose   time.Duration

	// ServiceManager (the "Replica" thread): per-request execution +
	// reply-cache update; follower executions are slightly cheaper (no
	// reply routing).
	Exec    time.Duration
	FolExec time.Duration

	// Node scheduling.
	CtxSwitch time.Duration
	Quantum   time.Duration

	// Wire sizes (bytes on the wire including headers).
	ReqWire   int
	ReplyWire int
	Wire2b    int
	HdrBatch  int
}

// DefaultCosts returns the parapluie-calibrated constants.
func DefaultCosts() Costs {
	return Costs{
		CIOIngress: 16 * time.Microsecond,
		CIOEgress:  10 * time.Microsecond,

		BatchPerReq: 3500 * time.Nanosecond,
		BatchBase:   3 * time.Microsecond,

		Propose:     10 * time.Microsecond,
		Accept2b:    4 * time.Microsecond,
		PerInstance: 800 * time.Nanosecond,

		SndSerialize: 7 * time.Microsecond,
		RcvDeser2b:   4 * time.Microsecond,
		FolRcvProp:   6 * time.Microsecond,
		FolSnd2b:     5 * time.Microsecond,
		FolPropose:   8 * time.Microsecond,

		Exec:    6 * time.Microsecond,
		FolExec: 5 * time.Microsecond,

		CtxSwitch: 30 * time.Microsecond,
		Quantum:   120 * time.Microsecond,

		ReqWire:   160, // 128 B payload + framing/TCP-IP headers
		ReplyWire: 48,  // 8 B payload + headers
		Wire2b:    64,
		HdrBatch:  40,
	}
}

// Scale returns a copy with every CPU cost multiplied by f (used to model
// the edel cluster's different per-core speed; wire sizes are unchanged).
func (c Costs) Scale(f float64) Costs {
	s := c
	mul := func(d time.Duration) time.Duration { return time.Duration(float64(d) * f) }
	s.CIOIngress = mul(c.CIOIngress)
	s.CIOEgress = mul(c.CIOEgress)
	s.BatchPerReq = mul(c.BatchPerReq)
	s.BatchBase = mul(c.BatchBase)
	s.Propose = mul(c.Propose)
	s.Accept2b = mul(c.Accept2b)
	s.PerInstance = mul(c.PerInstance)
	s.SndSerialize = mul(c.SndSerialize)
	s.RcvDeser2b = mul(c.RcvDeser2b)
	s.FolRcvProp = mul(c.FolRcvProp)
	s.FolSnd2b = mul(c.FolSnd2b)
	s.FolPropose = mul(c.FolPropose)
	s.Exec = mul(c.Exec)
	s.FolExec = mul(c.FolExec)
	return s
}

// ZKCosts are the calibrated constants of the ZooKeeper-style baseline: the
// same Paxos-shaped message flow, but a monolithic pipeline where every
// stage serializes on one global lock, the CommitProcessor does the heavy
// lifting, and lock hand-offs pay a convoy/cache penalty that grows with
// the number of waiters — the mechanism behind Fig. 1a's collapse.
type ZKCosts struct {
	// Per-request work by each leader thread (outside the lock).
	Process   time.Duration // ProcessThread: proposal creation
	Learner   time.Duration // LearnerHandler: one follower ack
	Commit    time.Duration // CommitProcessor: commit + apply
	Sync      time.Duration // SyncThread: txn log (ramdisk)
	Sender    time.Duration // Sender: serialize one outbound message
	FolWork   time.Duration // follower per request total
	ReplyWork time.Duration // follower reply path
	// Critical sections (inside the global lock) per stage.
	CSProcess time.Duration
	CSLearner time.Duration
	CSCommit  time.Duration
	CSSync    time.Duration
	// Handoff is the extra work the next lock holder pays per queued
	// waiter when the lock is handed over contended (cache-line bouncing /
	// convoying).
	Handoff time.Duration

	CtxSwitch time.Duration
	Quantum   time.Duration
}

// DefaultZKCosts returns constants calibrated to Fig. 1a (peak ~50K req/s
// at 4 cores, under 30K at 24) with 128-byte writes.
func DefaultZKCosts() ZKCosts {
	return ZKCosts{
		Process:   10 * time.Microsecond,
		Learner:   7 * time.Microsecond,
		Commit:    10 * time.Microsecond,
		Sync:      8 * time.Microsecond,
		Sender:    4 * time.Microsecond,
		FolWork:   30 * time.Microsecond,
		ReplyWork: 10 * time.Microsecond,

		CSProcess: 1000 * time.Nanosecond,
		CSLearner: 800 * time.Nanosecond,
		CSCommit:  1200 * time.Nanosecond,
		CSSync:    800 * time.Nanosecond,

		Handoff: 400 * time.Nanosecond,

		CtxSwitch: 30 * time.Microsecond,
		Quantum:   120 * time.Microsecond,
	}
}
