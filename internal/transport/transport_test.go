package transport

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gosmr/internal/wire"
)

// networks returns both implementations with a fresh address namespace.
func networks(t *testing.T) map[string]Network {
	t.Helper()
	return map[string]Network{
		"tcp":    &TCP{},
		"inproc": NewInproc(0),
	}
}

// listenAddr returns a suitable listen address for the given network kind.
func listenAddr(kind string) string {
	if kind == "tcp" {
		return "127.0.0.1:0"
	}
	return "node-a"
}

func TestRoundTrip(t *testing.T) {
	for kind, nw := range networks(t) {
		t.Run(kind, func(t *testing.T) {
			l, err := nw.Listen(listenAddr(kind))
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()

			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, err := l.Accept()
				if err != nil {
					t.Errorf("Accept: %v", err)
					return
				}
				defer c.Close()
				for {
					f, err := c.ReadFrame()
					if err != nil {
						return
					}
					if err := c.WriteFrame(append([]byte("echo:"), f...)); err != nil {
						t.Errorf("echo write: %v", err)
						return
					}
				}
			}()

			c, err := nw.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			for i := range 100 {
				msg := []byte(fmt.Sprintf("frame-%d", i))
				if err := c.WriteFrame(msg); err != nil {
					t.Fatal(err)
				}
				got, err := c.ReadFrame()
				if err != nil {
					t.Fatal(err)
				}
				if want := append([]byte("echo:"), msg...); !bytes.Equal(got, want) {
					t.Fatalf("frame %d = %q, want %q", i, got, want)
				}
			}
			c.Close()
			wg.Wait()
		})
	}
}

func TestLargeFrames(t *testing.T) {
	for kind, nw := range networks(t) {
		t.Run(kind, func(t *testing.T) {
			l, err := nw.Listen(listenAddr(kind))
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			big := bytes.Repeat([]byte{0xAB}, 4<<20)
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, err := l.Accept()
				if err != nil {
					return
				}
				defer c.Close()
				f, err := c.ReadFrame()
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if !bytes.Equal(f, big) {
					t.Errorf("large frame corrupted: len %d", len(f))
				}
				_ = c.WriteFrame([]byte("ok"))
			}()
			c, err := nw.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if err := c.WriteFrame(big); err != nil {
				t.Fatal(err)
			}
			if _, err := c.ReadFrame(); err != nil {
				t.Fatal(err)
			}
			wg.Wait()
		})
	}
}

func TestDialNoListener(t *testing.T) {
	nw := NewInproc(0)
	if _, err := nw.Dial("nowhere"); !errors.Is(err, ErrNoListener) {
		t.Errorf("Dial = %v, want ErrNoListener", err)
	}
	tcp := &TCP{}
	if _, err := tcp.Dial("127.0.0.1:1"); err == nil {
		t.Error("TCP dial to closed port succeeded")
	}
}

func TestInprocAddrInUse(t *testing.T) {
	nw := NewInproc(0)
	l, err := nw.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Listen("a"); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("second Listen = %v, want ErrAddrInUse", err)
	}
	l.Close()
	// Address is reusable after close.
	l2, err := nw.Listen("a")
	if err != nil {
		t.Fatalf("Listen after Close: %v", err)
	}
	l2.Close()
}

func TestCloseUnblocksReader(t *testing.T) {
	for kind, nw := range networks(t) {
		t.Run(kind, func(t *testing.T) {
			l, err := nw.Listen(listenAddr(kind))
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			accepted := make(chan FrameConn, 1)
			go func() {
				c, err := l.Accept()
				if err == nil {
					accepted <- c
				}
			}()
			c, err := nw.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			srv := <-accepted
			errc := make(chan error, 1)
			go func() {
				_, err := srv.ReadFrame()
				errc <- err
			}()
			c.Close()
			if err := <-errc; err == nil {
				t.Error("ReadFrame returned nil after peer close")
			}
			srv.Close()
		})
	}
}

func TestPeerCloseDrainsPendingFrames(t *testing.T) {
	nw := NewInproc(8)
	l, _ := nw.Listen("srv")
	defer l.Close()
	accepted := make(chan FrameConn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := nw.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted
	for i := range 3 {
		if err := c.WriteFrame([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	for i := range 3 {
		f, err := srv.ReadFrame()
		if err != nil || f[0] != byte(i) {
			t.Fatalf("frame %d = %v, %v", i, f, err)
		}
	}
	if _, err := srv.ReadFrame(); !errors.Is(err, ErrConnClosed) {
		t.Errorf("after drain: %v, want ErrConnClosed", err)
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	for kind, nw := range networks(t) {
		t.Run(kind, func(t *testing.T) {
			l, err := nw.Listen(listenAddr(kind))
			if err != nil {
				t.Fatal(err)
			}
			errc := make(chan error, 1)
			go func() {
				_, err := l.Accept()
				errc <- err
			}()
			l.Close()
			if err := <-errc; err == nil {
				t.Error("Accept returned nil after listener close")
			}
		})
	}
}

func TestFaultInjectionDropAndDuplicate(t *testing.T) {
	nw := NewInproc(64)
	var mu sync.Mutex
	mode := "none"
	nw.SetFault(func(from, to string, frame []byte) (bool, bool) {
		mu.Lock()
		defer mu.Unlock()
		switch mode {
		case "drop":
			return true, false
		case "dup":
			return false, true
		default:
			return false, false
		}
	})
	l, _ := nw.Listen("srv")
	defer l.Close()
	accepted := make(chan FrameConn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := nw.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := <-accepted
	defer srv.Close()

	setMode := func(m string) { mu.Lock(); mode = m; mu.Unlock() }

	setMode("drop")
	if err := c.WriteFrame([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	setMode("dup")
	if err := c.WriteFrame([]byte("twice")); err != nil {
		t.Fatal(err)
	}
	setMode("none")
	if err := c.WriteFrame([]byte("final")); err != nil {
		t.Fatal(err)
	}
	want := []string{"twice", "twice", "final"} // "lost" never arrives
	for i, w := range want {
		f, err := srv.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if string(f) != w {
			t.Fatalf("frame %d = %q, want %q", i, f, w)
		}
	}
}

func TestWriteFrameCopiesBuffer(t *testing.T) {
	nw := NewInproc(8)
	l, _ := nw.Listen("srv")
	defer l.Close()
	accepted := make(chan FrameConn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := nw.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := <-accepted
	buf := []byte("mutate-me")
	if err := c.WriteFrame(buf); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 'X'
	}
	f, err := srv.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if string(f) != "mutate-me" {
		t.Errorf("frame = %q: WriteFrame aliased the caller's buffer", f)
	}
}

// countingConn wraps a net.Conn and counts Write syscalls.
type countingConn struct {
	net.Conn
	writes atomic.Int64
}

func (c *countingConn) Write(b []byte) (int, error) {
	c.writes.Add(1)
	return c.Conn.Write(b)
}

// TestBatchWriterCoalescesFrames asserts that frames written with
// WriteFrameNoFlush share one underlying write (and hence one syscall/
// packet) when flushed together — the sender-side fix for the
// flush-per-frame regression — while WriteFrame still flushes eagerly.
func TestBatchWriterCoalescesFrames(t *testing.T) {
	client, server := net.Pipe()
	cc := &countingConn{Conn: client}
	conn := newTCPConn(cc)
	defer conn.Close()
	defer server.Close()

	// Drain the server side so Pipe writes don't block.
	received := make(chan []byte, 64)
	go func() {
		defer close(received)
		srv := newTCPConn(server)
		for {
			f, err := srv.ReadFrame()
			if err != nil {
				return
			}
			received <- f
		}
	}()

	bw, ok := FrameConn(conn).(BatchWriter)
	if !ok {
		t.Fatal("tcpConn does not implement BatchWriter")
	}
	const frames = 16
	for i := range frames {
		if err := bw.WriteFrameNoFlush([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := cc.writes.Load(); got != 0 {
		t.Errorf("WriteFrameNoFlush hit the socket %d times before Flush", got)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := cc.writes.Load(); got != 1 {
		t.Errorf("%d frames flushed with %d writes, want 1 shared write", frames, got)
	}
	for i := range frames {
		f := <-received
		if len(f) != 1 || f[0] != byte(i) {
			t.Fatalf("frame %d corrupted: %v", i, f)
		}
	}

	// The eager path still flushes per frame: two frames, two+ writes.
	before := cc.writes.Load()
	for i := range 2 {
		if err := conn.WriteFrame([]byte{0xF0 ^ byte(i)}); err != nil {
			t.Fatal(err)
		}
		<-received
	}
	if got := cc.writes.Load() - before; got < 2 {
		t.Errorf("2 eager WriteFrames produced %d writes, want >= 2", got)
	}
}

func TestInprocDelayedDelivery(t *testing.T) {
	net := NewInproc(0)
	const delay = 20 * time.Millisecond
	net.SetDelay(delay)
	l, err := net.Listen("delayed")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan FrameConn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	cli, err := net.Dial("delayed")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srv := <-accepted
	defer srv.Close()

	// A frame becomes readable no earlier than one delay after the write,
	// and the writer is not blocked by the delay.
	start := time.Now()
	if err := cli.WriteFrame([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if wrote := time.Since(start); wrote > delay/2 {
		t.Errorf("WriteFrame blocked %v; the delay must not block writers", wrote)
	}
	frame, err := srv.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Errorf("frame delivered after %v, want >= %v", elapsed, delay)
	}
	if string(frame) != "one" {
		t.Errorf("frame = %q", frame)
	}

	// Pipelined frames overlap their latencies: two frames written
	// back-to-back arrive ~one delay later, not two.
	start = time.Now()
	_ = cli.WriteFrame([]byte("a"))
	_ = cli.WriteFrame([]byte("b"))
	if _, err := srv.ReadFrame(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.ReadFrame(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*delay {
		t.Errorf("two pipelined frames took %v, want ~%v (latencies must overlap)", elapsed, delay)
	}
}

// TestInprocBatchWriterStagesUntilFlush asserts the in-proc transport
// implements the coalescing extension with the same visibility semantics as
// TCP: nothing reaches the peer before Flush, and Flush delivers in order —
// so experiments sweeping the in-proc network measure the same send path as
// production TCP.
func TestInprocBatchWriterStagesUntilFlush(t *testing.T) {
	nw := NewInproc(64)
	l, _ := nw.Listen("srv")
	defer l.Close()
	accepted := make(chan FrameConn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := nw.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := <-accepted
	defer srv.Close()

	bw, ok := c.(BatchWriter)
	if !ok {
		t.Fatal("inprocConn does not implement BatchWriter")
	}
	for i := range 5 {
		if err := bw.WriteFrameNoFlush([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing visible before Flush.
	ic := srv.(*inprocConn)
	if n := len(ic.in); n != 0 {
		t.Fatalf("%d frames visible before Flush", n)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := range 5 {
		f, err := srv.ReadFrame()
		if err != nil || len(f) != 1 || f[0] != byte(i) {
			t.Fatalf("frame %d = %v, %v", i, f, err)
		}
	}
}

// TestMessageWriterMatchesMarshal checks that the zero-copy encode path
// (WriteMessageNoFlush) produces frames byte-identical to Marshal on both
// transports, including messages larger than the TCP write buffer.
func TestMessageWriterMatchesMarshal(t *testing.T) {
	msgs := []wire.Message{
		&wire.Accept{View: 3, ID: 9},
		&wire.Propose{View: 3, ID: 9, DecidedUpTo: 8, Value: bytes.Repeat([]byte{0x5A}, 1300)},
		&wire.GroupMsg{Group: 2, Msg: &wire.Propose{View: 1, ID: 4, Value: []byte("grouped")}},
		// Larger than the 64 KiB bufio buffer: exercises the scratch path.
		&wire.Propose{View: 9, ID: 1, Value: bytes.Repeat([]byte{0xC3}, 200<<10)},
	}
	for kind, nw := range networks(t) {
		t.Run(kind, func(t *testing.T) {
			l, err := nw.Listen(listenAddr(kind))
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			accepted := make(chan FrameConn, 1)
			go func() {
				c, err := l.Accept()
				if err == nil {
					accepted <- c
				}
			}()
			c, err := nw.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			srv := <-accepted
			defer srv.Close()

			mw, ok := c.(MessageWriter)
			if !ok {
				t.Fatalf("%T does not implement MessageWriter", c)
			}
			for _, m := range msgs {
				if err := mw.WriteMessageNoFlush(m); err != nil {
					t.Fatal(err)
				}
			}
			if err := mw.Flush(); err != nil {
				t.Fatal(err)
			}
			for i, m := range msgs {
				f, err := srv.ReadFrame()
				if err != nil {
					t.Fatal(err)
				}
				if want := wire.Marshal(m); !bytes.Equal(f, want) {
					t.Fatalf("message %d: frame differs from Marshal (len %d vs %d)", i, len(f), len(want))
				}
			}
		})
	}
}

// TestDuplicateFaultDoesNotAliasRecycledFrames injects duplication and
// recycles each received frame: the duplicate must own its bytes, or the
// recycled first copy would be rewritten under it.
func TestDuplicateFaultDoesNotAliasRecycledFrames(t *testing.T) {
	nw := NewInproc(64)
	nw.SetFault(func(from, to string, frame []byte) (bool, bool) { return false, true })
	l, _ := nw.Listen("srv")
	defer l.Close()
	accepted := make(chan FrameConn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := nw.Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := <-accepted
	defer srv.Close()

	pr := srv.(PooledReader)
	for i := range 32 {
		payload := []byte(fmt.Sprintf("frame-%02d", i))
		if err := c.WriteFrame(payload); err != nil {
			t.Fatal(err)
		}
		for copies := range 2 {
			f, err := pr.ReadFramePooled()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(f, payload) {
				t.Fatalf("frame %d copy %d = %q, want %q", i, copies, f, payload)
			}
			// Scribble, then recycle: if the two deliveries aliased, the
			// second read would observe the scribble.
			for j := range f {
				f[j] = 0xEE
			}
			PutFrameBuf(f)
		}
	}
}

// TestFrameBufPoolRoundTrip pins the pool contract: buffers cycle without
// allocation, grow on demand, and oversized buffers are not retained.
func TestFrameBufPoolRoundTrip(t *testing.T) {
	b := GetFrameBuf(100)
	if len(b) != 100 {
		t.Fatalf("GetFrameBuf(100) len = %d", len(b))
	}
	PutFrameBuf(b)
	steady := testing.AllocsPerRun(100, func() {
		buf := GetFrameBuf(1024)
		PutFrameBuf(buf)
	})
	if steady > 1 {
		t.Errorf("pooled Get/Put allocates %.1f allocs/op", steady)
	}
	huge := GetFrameBuf(maxPooledFrame + 1)
	PutFrameBuf(huge) // dropped, not pooled
	next := GetFrameBuf(16)
	if cap(next) > maxPooledFrame {
		t.Error("oversized buffer was retained by the pool")
	}
	PutFrameBuf(next)
}

// TestInprocAsStampsDialerIdentity pins the As contract: connections dialed
// through an identity view carry the caller's name as their local endpoint,
// so a FaultFunc can match directed node pairs. A plain Dial stays
// anonymous ("inproc-client-N"), which name-filtered fault injectors would
// silently never match.
func TestInprocAsStampsDialerIdentity(t *testing.T) {
	net := NewInproc(0)
	type seenFrame struct{ from, to string }
	var mu sync.Mutex
	var seen []seenFrame
	net.SetFault(func(from, to string, frame []byte) (bool, bool) {
		mu.Lock()
		seen = append(seen, seenFrame{from, to})
		mu.Unlock()
		// Drop node-b → node-a traffic, matched by name in BOTH directions
		// of the same connection.
		return from == "node-b" && to == "node-a", false
	})
	l, err := net.Listen("node-a")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan FrameConn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	dialer, err := net.As("node-b").Dial("node-a")
	if err != nil {
		t.Fatal(err)
	}
	defer dialer.Close()
	server := <-accepted
	defer server.Close()

	// b → a is dropped by the fault...
	if err := dialer.WriteFrame([]byte("dropped")); err != nil {
		t.Fatal(err)
	}
	// ...while a → b passes.
	if err := server.WriteFrame([]byte("delivered")); err != nil {
		t.Fatal(err)
	}
	frame, err := dialer.ReadFrame()
	if err != nil || string(frame) != "delivered" {
		t.Fatalf("a->b frame = %q, %v", frame, err)
	}
	mu.Lock()
	want := map[seenFrame]bool{
		{"node-b", "node-a"}: true,
		{"node-a", "node-b"}: true,
	}
	for _, s := range seen {
		if !want[s] {
			t.Errorf("fault saw unexpected endpoints %+v (identity not stamped?)", s)
		}
	}
	if len(seen) != 2 {
		t.Errorf("fault saw %d frames, want 2", len(seen))
	}
	mu.Unlock()

	// Plain Dial stays anonymous: its frames reach the fault under an
	// inproc-client name, never a node name.
	anon, err := net.Dial("node-a")
	if err != nil {
		t.Fatal(err)
	}
	defer anon.Close()
	if err := anon.WriteFrame([]byte("anon")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	last := seen[len(seen)-1]
	mu.Unlock()
	if !strings.HasPrefix(last.from, "inproc-client-") || last.to != "node-a" {
		t.Errorf("plain Dial frame endpoints = %+v, want anonymous inproc-client-*", last)
	}
}
