// Package transport abstracts the byte transport under the ClientIO and
// ReplicaIO modules, so the same replica pipeline runs over real TCP
// (production, Sec. V-A/V-B) or over an in-process network (tests, single-
// host benchmarks, fault injection).
//
// Connections are frame-oriented: each frame carries one wire message. A
// FrameConn is safe for one concurrent reader plus one concurrent writer —
// exactly the paper's threading discipline (one reader thread and one sender
// thread per socket).
//
// # Buffer ownership
//
// The zero-copy extensions make frame-buffer ownership explicit:
//
//   - GetFrameBuf/PutFrameBuf manage a shared pool of frame buffers.
//   - PooledReader.ReadFramePooled returns a frame the CALLER owns; the
//     caller recycles it with PutFrameBuf once every borrowed reference
//     into it is dead or retained (wire.Retain). Never recycle twice.
//   - MessageWriter.WriteMessageNoFlush encodes a wire.Message directly
//     into the connection's write buffer — no intermediate frame slice.
package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"gosmr/internal/wire"
)

// FrameConn is a bidirectional, frame-oriented connection.
type FrameConn interface {
	// WriteFrame sends one frame. Not safe for concurrent writers.
	WriteFrame(frame []byte) error
	// ReadFrame receives one frame. Not safe for concurrent readers.
	ReadFrame() ([]byte, error)
	// Close shuts down the connection, unblocking pending reads/writes.
	Close() error
	// RemoteAddr describes the peer, for logging.
	RemoteAddr() string
}

// BatchWriter is the optional coalescing extension of FrameConn: a sender
// draining a queue writes each frame with WriteFrameNoFlush and calls Flush
// once the queue is empty, so back-to-back frames share one syscall (and,
// with TCP_NODELAY, one packet) instead of one each. Both built-in
// transports implement it; external FrameConns that do not buffer simply
// skip it and senders fall back to WriteFrame.
type BatchWriter interface {
	// WriteFrameNoFlush buffers one frame without forcing it onto the wire.
	// The frame is sent no later than the next Flush (or when the internal
	// buffer fills). The implementation must copy (or fully consume) frame
	// before returning — callers encode into a reused scratch buffer and
	// rewrite it immediately, so retaining the slice corrupts later frames.
	// Not safe for concurrent writers.
	WriteFrameNoFlush(frame []byte) error
	// Flush pushes all buffered frames to the wire.
	Flush() error
}

// MessageWriter is the zero-copy extension of BatchWriter: the sender hands
// over the wire.Message itself and the transport encodes it straight into
// its write buffer (wire.AppendMessage), skipping the intermediate frame
// slice entirely. Like the rest of the write API it is single-writer.
type MessageWriter interface {
	// WriteMessageNoFlush encodes m directly into the connection's write
	// buffer. The message is sent no later than the next Flush.
	WriteMessageNoFlush(m wire.Message) error
	// Flush pushes all buffered frames to the wire.
	Flush() error
}

// PooledReader is the zero-copy read extension: frames are returned in
// pooled buffers the caller owns and recycles with PutFrameBuf.
type PooledReader interface {
	// ReadFramePooled reads one frame into a pooled buffer. The caller owns
	// the returned slice; once every reference into it is dead or retained
	// it should be handed back with PutFrameBuf. Not safe for concurrent
	// readers.
	ReadFramePooled() ([]byte, error)
}

// Listener accepts inbound FrameConns.
type Listener interface {
	Accept() (FrameConn, error)
	Close() error
	Addr() string
}

// Network creates listeners and outbound connections.
type Network interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (FrameConn, error)
}

// ---------------------------------------------------------------------------
// Frame buffer pool.

// maxPooledFrame caps the buffers the pool retains: the occasional giant
// frame (a snapshot transfer) is better garbage collected than pinned.
const maxPooledFrame = 64 << 10

// maxRetainedScratch caps the per-connection encode scratch for the same
// reason (it only sees frames too large for the write buffer).
const maxRetainedScratch = 1 << 20

// TrimScratch is the one shared policy for reused encode-scratch buffers:
// it returns b unchanged while its capacity is reasonable and drops it
// (returns nil) once a one-off giant frame — a snapshot transfer — has
// grown it past the retention cap, so senders never pin tens of MB.
func TrimScratch(b []byte) []byte {
	if cap(b) > maxRetainedScratch {
		return nil
	}
	return b
}

// frameBuf wraps a slice so pool Put/Get cycles do not allocate; wrappers
// shuttle between the two pools.
type frameBuf struct{ b []byte }

var (
	framePool   = sync.Pool{New: func() any { return &frameBuf{b: make([]byte, 0, 2048)} }}
	wrapperPool = sync.Pool{New: func() any { return new(frameBuf) }}
)

// GetFrameBuf returns a pooled buffer of length n (growing it if the pooled
// capacity is short). The caller owns it until PutFrameBuf.
func GetFrameBuf(n int) []byte {
	fb := framePool.Get().(*frameBuf)
	b := fb.b
	fb.b = nil
	wrapperPool.Put(fb)
	if cap(b) < n {
		b = make([]byte, n)
	}
	return b[:n]
}

// PutFrameBuf recycles b for a later GetFrameBuf. The caller must not touch
// b afterwards; b must not be recycled twice. Nil and oversized buffers are
// dropped on the floor (garbage collected).
func PutFrameBuf(b []byte) {
	if b == nil || cap(b) > maxPooledFrame {
		return
	}
	fb := wrapperPool.Get().(*frameBuf)
	fb.b = b[:0]
	framePool.Put(fb)
}

// ReadFrameOwned reads one frame from conn, preferring the pooled-buffer
// extension; pooled reports whether the frame must eventually go back
// through RecycleFrame. The one reader-loop entry point shared by the
// replica modules and the client, so the ownership rule lives in one place.
func ReadFrameOwned(conn FrameConn) (frame []byte, pooled bool, err error) {
	if pr, ok := conn.(PooledReader); ok {
		frame, err = pr.ReadFramePooled()
		return frame, true, err
	}
	frame, err = conn.ReadFrame()
	return frame, false, err
}

// RecycleFrame returns a fully-consumed frame from ReadFrameOwned to the
// shared pool.
func RecycleFrame(frame []byte, pooled bool) {
	if pooled {
		PutFrameBuf(frame)
	}
}

// ---------------------------------------------------------------------------
// TCP.

// TCP is the production transport, using one TCP connection per peer/client
// with TCP_NODELAY set (small-request latency matters more than packing,
// Sec. VI-D3).
type TCP struct {
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
}

var _ Network = (*TCP)(nil)

// Listen implements Network.
func (t *TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &tcpListener{l: l}, nil
}

// Dial implements Network.
func (t *TCP) Dial(addr string) (FrameConn, error) {
	timeout := t.DialTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return newTCPConn(c), nil
}

type tcpListener struct {
	l net.Listener
}

func (tl *tcpListener) Accept() (FrameConn, error) {
	c, err := tl.l.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(c), nil
}

func (tl *tcpListener) Close() error { return tl.l.Close() }
func (tl *tcpListener) Addr() string { return tl.l.Addr().String() }

type tcpConn struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
	// scratch holds the encoding of messages too large for the write
	// buffer's free space; it is owned by the single writer goroutine.
	scratch []byte
}

func newTCPConn(c net.Conn) *tcpConn {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return &tcpConn{
		c: c,
		r: bufio.NewReaderSize(c, 64<<10),
		w: bufio.NewWriterSize(c, 64<<10),
	}
}

func (tc *tcpConn) WriteFrame(frame []byte) error {
	if err := wire.WriteFrame(tc.w, frame); err != nil {
		return err
	}
	return tc.w.Flush()
}

// WriteFrameNoFlush implements BatchWriter: the frame lands in the 64 KiB
// write buffer and reaches the socket on Flush (or when the buffer fills).
func (tc *tcpConn) WriteFrameNoFlush(frame []byte) error {
	return wire.WriteFrame(tc.w, frame)
}

// WriteMessageNoFlush implements MessageWriter: the message is appended
// straight into the bufio writer's free space (header + body), so the send
// path moves each byte exactly once — encoder to socket buffer.
func (tc *tcpConn) WriteMessageNoFlush(m wire.Message) error {
	n := wire.Size(m)
	if n > wire.MaxFrameSize {
		return wire.ErrFrameTooBig
	}
	if 4+n > tc.w.Available() && tc.w.Buffered() > 0 {
		if err := tc.w.Flush(); err != nil {
			return err
		}
	}
	if 4+n <= tc.w.Available() {
		buf := tc.w.AvailableBuffer()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
		buf = wire.AppendMessage(buf, m)
		_, err := tc.w.Write(buf)
		return err
	}
	// Larger than the whole write buffer: encode once into the reusable
	// scratch and frame-write it (bufio passes large writes through).
	tc.scratch = wire.AppendMessage(tc.scratch[:0], m)
	err := wire.WriteFrame(tc.w, tc.scratch)
	tc.scratch = TrimScratch(tc.scratch)
	return err
}

// Flush implements BatchWriter and MessageWriter.
func (tc *tcpConn) Flush() error { return tc.w.Flush() }

var (
	_ BatchWriter   = (*tcpConn)(nil)
	_ MessageWriter = (*tcpConn)(nil)
	_ PooledReader  = (*tcpConn)(nil)
)

func (tc *tcpConn) ReadFrame() ([]byte, error) { return wire.ReadFrame(tc.r) }

// ReadFramePooled implements PooledReader: the frame is read into a pooled
// buffer the caller owns and recycles with PutFrameBuf. The framing itself
// (header width, size validation) stays in the wire package.
func (tc *tcpConn) ReadFramePooled() ([]byte, error) {
	n, err := wire.ReadFrameHeader(tc.r)
	if err != nil {
		return nil, err
	}
	buf := GetFrameBuf(n)
	if _, err := io.ReadFull(tc.r, buf); err != nil {
		PutFrameBuf(buf)
		return nil, fmt.Errorf("transport: read frame payload: %w", err)
	}
	return buf, nil
}

func (tc *tcpConn) Close() error       { return tc.c.Close() }
func (tc *tcpConn) RemoteAddr() string { return tc.c.RemoteAddr().String() }
