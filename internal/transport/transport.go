// Package transport abstracts the byte transport under the ClientIO and
// ReplicaIO modules, so the same replica pipeline runs over real TCP
// (production, Sec. V-A/V-B) or over an in-process network (tests, single-
// host benchmarks, fault injection).
//
// Connections are frame-oriented: each frame carries one wire message. A
// FrameConn is safe for one concurrent reader plus one concurrent writer —
// exactly the paper's threading discipline (one reader thread and one sender
// thread per socket).
package transport

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"gosmr/internal/wire"
)

// FrameConn is a bidirectional, frame-oriented connection.
type FrameConn interface {
	// WriteFrame sends one frame. Not safe for concurrent writers.
	WriteFrame(frame []byte) error
	// ReadFrame receives one frame. Not safe for concurrent readers.
	ReadFrame() ([]byte, error)
	// Close shuts down the connection, unblocking pending reads/writes.
	Close() error
	// RemoteAddr describes the peer, for logging.
	RemoteAddr() string
}

// BatchWriter is the optional coalescing extension of FrameConn: a sender
// draining a queue writes each frame with WriteFrameNoFlush and calls Flush
// once the queue is empty, so back-to-back frames share one syscall (and,
// with TCP_NODELAY, one packet) instead of one each. Implementations whose
// WriteFrame has no buffering (the in-process transport) simply do not
// implement it; senders fall back to WriteFrame.
type BatchWriter interface {
	// WriteFrameNoFlush buffers one frame without forcing it onto the wire.
	// The frame is sent no later than the next Flush (or when the internal
	// buffer fills). Not safe for concurrent writers.
	WriteFrameNoFlush(frame []byte) error
	// Flush pushes all buffered frames to the wire.
	Flush() error
}

// Listener accepts inbound FrameConns.
type Listener interface {
	Accept() (FrameConn, error)
	Close() error
	Addr() string
}

// Network creates listeners and outbound connections.
type Network interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (FrameConn, error)
}

// TCP is the production transport, using one TCP connection per peer/client
// with TCP_NODELAY set (small-request latency matters more than packing,
// Sec. VI-D3).
type TCP struct {
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
}

var _ Network = (*TCP)(nil)

// Listen implements Network.
func (t *TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &tcpListener{l: l}, nil
}

// Dial implements Network.
func (t *TCP) Dial(addr string) (FrameConn, error) {
	timeout := t.DialTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return newTCPConn(c), nil
}

type tcpListener struct {
	l net.Listener
}

func (tl *tcpListener) Accept() (FrameConn, error) {
	c, err := tl.l.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(c), nil
}

func (tl *tcpListener) Close() error { return tl.l.Close() }
func (tl *tcpListener) Addr() string { return tl.l.Addr().String() }

type tcpConn struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

func newTCPConn(c net.Conn) *tcpConn {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return &tcpConn{
		c: c,
		r: bufio.NewReaderSize(c, 64<<10),
		w: bufio.NewWriterSize(c, 64<<10),
	}
}

func (tc *tcpConn) WriteFrame(frame []byte) error {
	if err := wire.WriteFrame(tc.w, frame); err != nil {
		return err
	}
	return tc.w.Flush()
}

// WriteFrameNoFlush implements BatchWriter: the frame lands in the 64 KiB
// write buffer and reaches the socket on Flush (or when the buffer fills).
func (tc *tcpConn) WriteFrameNoFlush(frame []byte) error {
	return wire.WriteFrame(tc.w, frame)
}

// Flush implements BatchWriter.
func (tc *tcpConn) Flush() error { return tc.w.Flush() }

var _ BatchWriter = (*tcpConn)(nil)

func (tc *tcpConn) ReadFrame() ([]byte, error) { return wire.ReadFrame(tc.r) }
func (tc *tcpConn) Close() error               { return tc.c.Close() }
func (tc *tcpConn) RemoteAddr() string         { return tc.c.RemoteAddr().String() }
