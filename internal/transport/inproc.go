package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gosmr/internal/wire"
)

// Inproc errors.
var (
	ErrConnClosed  = errors.New("transport: connection closed")
	ErrAddrInUse   = errors.New("transport: address already in use")
	ErrNoListener  = errors.New("transport: no listener at address")
	ErrNetClosed   = errors.New("transport: network closed")
	errFrameQueued = errors.New("transport: frame queue full") // internal backpressure sentinel
)

// FaultFunc inspects a frame in flight and decides its fate. Returning
// drop=true discards the frame; duplicate=true delivers it twice. Used by
// tests to inject message loss and duplication under the real pipeline.
//
// from and to name the frame's endpoints. A listener side is named by its
// listen address; a plain-Dial side is anonymous ("inproc-client-N"), so a
// fault injector cannot tell which replica dialed. Replicas that should be
// matchable by name must dial through the view returned by As, which stamps
// outbound connections with the caller's identity.
type FaultFunc func(from, to string, frame []byte) (drop, duplicate bool)

// Inproc is an in-process Network: connections are pairs of buffered frame
// queues. It supports optional fault injection and is safe for concurrent
// use.
type Inproc struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener
	fault     FaultFunc
	queueCap  int
	delay     time.Duration
	nextConn  int
}

var _ Network = (*Inproc)(nil)

// NewInproc returns an empty in-process network. queueCap bounds each
// direction's frame queue (default 1024); a full queue blocks the writer,
// modeling TCP backpressure.
func NewInproc(queueCap int) *Inproc {
	if queueCap <= 0 {
		queueCap = 1024
	}
	return &Inproc{
		listeners: make(map[string]*inprocListener),
		queueCap:  queueCap,
	}
}

// SetFault installs f as the fault injector (nil disables).
func (n *Inproc) SetFault(f FaultFunc) {
	n.mu.Lock()
	n.fault = f
	n.mu.Unlock()
}

// SetDelay installs a one-way frame delivery delay (0 disables), modeling
// network latency: a frame written at t becomes readable at t+d. Writers are
// never blocked by the delay and deliveries stay ordered, so pipelined
// traffic overlaps its latencies exactly as on a real network. Used by
// experiments that study windowing and multi-group ordering, where the
// consensus round trip — not CPU — bounds a single ordering pipeline.
func (n *Inproc) SetDelay(d time.Duration) {
	n.mu.Lock()
	n.delay = d
	n.mu.Unlock()
}

func (n *Inproc) getDelay() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.delay
}

func (n *Inproc) getFault() FaultFunc {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fault
}

// Listen implements Network.
func (n *Inproc) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	l := &inprocListener{
		net:     n,
		addr:    addr,
		backlog: make(chan *inprocConn, 64),
		done:    make(chan struct{}),
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial implements Network. The local endpoint is anonymous; see As for
// identity-stamped dialing.
func (n *Inproc) Dial(addr string) (FrameConn, error) {
	return n.dialAs("", addr)
}

func (n *Inproc) dialAs(localName, addr string) (FrameConn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.nextConn++
	id := n.nextConn
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoListener, addr)
	}
	if localName == "" {
		localName = fmt.Sprintf("inproc-client-%d", id)
	}
	client, server := newInprocPair(n, localName, addr)
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done:
		return nil, fmt.Errorf("%w: %s", ErrNoListener, addr)
	}
}

// As returns a view of the network that stamps every outbound connection
// with name as its local endpoint, so a FaultFunc can match directed pairs
// of named nodes (e.g. "drop everything replica 0 sends to replica 2").
// Without it the dialing side of a connection is anonymous — a fault
// injector filtering on replica names would silently match nothing, turning
// a loss-injection test into a no-op. Listen is unaffected and shared with
// the underlying network.
func (n *Inproc) As(name string) Network {
	return &boundInproc{n: n, name: name}
}

// boundInproc is an identity-stamped view of an Inproc network.
type boundInproc struct {
	n    *Inproc
	name string
}

func (b *boundInproc) Listen(addr string) (Listener, error) { return b.n.Listen(addr) }
func (b *boundInproc) Dial(addr string) (FrameConn, error)  { return b.n.dialAs(b.name, addr) }

// removeListener unregisters a closed listener.
func (n *Inproc) removeListener(addr string) {
	n.mu.Lock()
	delete(n.listeners, addr)
	n.mu.Unlock()
}

type inprocListener struct {
	net     *Inproc
	addr    string
	backlog chan *inprocConn
	done    chan struct{}
	once    sync.Once
}

func (l *inprocListener) Accept() (FrameConn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrNetClosed
	}
}

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.removeListener(l.addr)
	})
	return nil
}

func (l *inprocListener) Addr() string { return l.addr }

// timedFrame is one queued frame with its earliest delivery time (zero when
// the network has no configured delay).
type timedFrame struct {
	at time.Time
	b  []byte
}

// inprocConn is one endpoint of an in-process connection pair.
type inprocConn struct {
	net        *Inproc
	localAddr  string
	remoteAddr string
	in         chan timedFrame // frames to read
	peerIn     chan timedFrame // peer's read queue (we write here)
	closed     chan struct{}   // our closed signal
	peerClosed chan struct{}   // peer's closed signal
	once       sync.Once

	// pending stages frames between WriteFrameNoFlush/WriteMessageNoFlush
	// and Flush, mirroring the TCP transport's write buffer so in-proc
	// sweeps exercise the same coalescing send path as real TCP. The
	// staged buffers come from the shared frame pool; pendMu lets Close
	// (any goroutine) reclaim them under the single-writer contract, and
	// pendSpare double-buffers the slice across flushes.
	pendMu    sync.Mutex
	pending   [][]byte
	pendSpare [][]byte
}

// newInprocPair builds both endpoints of a connection.
func newInprocPair(n *Inproc, addrA, addrB string) (a, b *inprocConn) {
	qa := make(chan timedFrame, n.queueCap)
	qb := make(chan timedFrame, n.queueCap)
	ca := make(chan struct{})
	cb := make(chan struct{})
	a = &inprocConn{net: n, localAddr: addrA, remoteAddr: addrB,
		in: qa, peerIn: qb, closed: ca, peerClosed: cb}
	b = &inprocConn{net: n, localAddr: addrB, remoteAddr: addrA,
		in: qb, peerIn: qa, closed: cb, peerClosed: ca}
	return a, b
}

var (
	_ BatchWriter   = (*inprocConn)(nil)
	_ MessageWriter = (*inprocConn)(nil)
	_ PooledReader  = (*inprocConn)(nil)
)

func (c *inprocConn) WriteFrame(frame []byte) error {
	if err := c.WriteFrameNoFlush(frame); err != nil {
		return err
	}
	return c.Flush()
}

// WriteFrameNoFlush implements BatchWriter: the frame is copied into a
// pooled buffer (the caller may reuse its own) and staged until Flush.
func (c *inprocConn) WriteFrameNoFlush(frame []byte) error {
	cp := GetFrameBuf(len(frame))
	copy(cp, frame)
	c.stage(cp)
	return nil
}

// WriteMessageNoFlush implements MessageWriter: the message is encoded once,
// directly into a pooled buffer that becomes the delivered frame — the
// in-proc equivalent of encoding into the TCP write buffer.
func (c *inprocConn) WriteMessageNoFlush(m wire.Message) error {
	n := wire.Size(m)
	if n > wire.MaxFrameSize {
		return wire.ErrFrameTooBig
	}
	buf := GetFrameBuf(n)
	buf = wire.AppendMessage(buf[:0], m)
	c.stage(buf)
	return nil
}

// stage appends one owned frame to the pending batch.
func (c *inprocConn) stage(frame []byte) {
	c.pendMu.Lock()
	c.pending = append(c.pending, frame)
	c.pendMu.Unlock()
}

// takePending detaches the staged batch (double-buffering the slice).
func (c *inprocConn) takePending() [][]byte {
	c.pendMu.Lock()
	pending := c.pending
	c.pending = c.pendSpare[:0]
	c.pendSpare = nil
	c.pendMu.Unlock()
	return pending
}

// returnPending hands the drained slice back for reuse.
func (c *inprocConn) returnPending(pending [][]byte) {
	c.pendMu.Lock()
	if c.pendSpare == nil {
		c.pendSpare = pending[:0]
	}
	c.pendMu.Unlock()
}

// Flush implements BatchWriter/MessageWriter: every staged frame is pushed
// through fault injection, stamped with the delivery delay, and enqueued at
// the peer in order.
func (c *inprocConn) Flush() error {
	pending := c.takePending()
	if len(pending) == 0 {
		c.returnPending(pending)
		return nil
	}
	for i, frame := range pending {
		pending[i] = nil
		if err := c.deliverFrame(frame); err != nil {
			// Undelivered frames are ours to recycle; delivered ones belong
			// to the receiver now.
			for _, rest := range pending[i+1:] {
				PutFrameBuf(rest)
			}
			c.returnPending(pending)
			return err
		}
	}
	c.returnPending(pending)
	return nil
}

// deliverFrame hands one staged frame (ownership included) to the peer.
func (c *inprocConn) deliverFrame(frame []byte) error {
	select {
	case <-c.closed:
		PutFrameBuf(frame)
		return ErrConnClosed
	case <-c.peerClosed:
		PutFrameBuf(frame)
		return ErrConnClosed
	default:
	}
	dup := 1
	if f := c.net.getFault(); f != nil {
		drop, duplicate := f(c.localAddr, c.remoteAddr, frame)
		if drop {
			PutFrameBuf(frame) // silently lost in the network
			return nil
		}
		if duplicate {
			dup = 2
		}
	}
	var at time.Time
	if d := c.net.getDelay(); d > 0 {
		at = time.Now().Add(d)
	}
	for i := range dup {
		b := frame
		if i > 0 {
			// Each delivery owns its bytes: a duplicated frame must not
			// alias the first copy, which the receiver may recycle.
			b = GetFrameBuf(len(frame))
			copy(b, frame)
		}
		select {
		case c.peerIn <- timedFrame{at: at, b: b}:
		case <-c.closed:
			PutFrameBuf(b)
			return ErrConnClosed
		case <-c.peerClosed:
			PutFrameBuf(b)
			return ErrConnClosed
		}
	}
	return nil
}

// deliver holds a popped frame until its delivery time. Frames are enqueued
// in send order with monotonically increasing delivery times, so waiting on
// the head never delays a frame behind it past its own deadline.
func (c *inprocConn) deliver(f timedFrame) []byte {
	if !f.at.IsZero() {
		if d := time.Until(f.at); d > 0 {
			time.Sleep(d)
		}
	}
	return f.b
}

func (c *inprocConn) ReadFrame() ([]byte, error) {
	select {
	case f := <-c.in:
		return c.deliver(f), nil
	default:
	}
	select {
	case f := <-c.in:
		return c.deliver(f), nil
	case <-c.closed:
		return nil, ErrConnClosed
	case <-c.peerClosed:
		// Drain anything already delivered before reporting EOF-like close.
		select {
		case f := <-c.in:
			return c.deliver(f), nil
		default:
			return nil, ErrConnClosed
		}
	}
}

// ReadFramePooled implements PooledReader. Delivered frames already live in
// buffers the reader owns, so this is ReadFrame under the pooled-ownership
// contract: recycle with PutFrameBuf when done.
func (c *inprocConn) ReadFramePooled() ([]byte, error) { return c.ReadFrame() }

func (c *inprocConn) Close() error {
	c.once.Do(func() {
		close(c.closed)
		// Reclaim staged-but-never-flushed frames (they are still ours).
		for _, frame := range c.takePending() {
			PutFrameBuf(frame)
		}
	})
	return nil
}

func (c *inprocConn) RemoteAddr() string { return c.remoteAddr }
