//go:build !linux

package wal

import "gosmr/internal/vfs"

// preallocate extends f to size; the extension reads as zeros. Without a
// portable fallocate this is a sparse extension — correctness (zero reads,
// crash safety) is identical, only the block-allocation smoothing of the
// Linux path is lost.
func preallocate(f vfs.File, size int64) error {
	return f.Truncate(size)
}
