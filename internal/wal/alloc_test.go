package wal

import (
	"testing"

	"gosmr/internal/vfs"
	"gosmr/internal/wire"
)

// TestAppendHotPathAllocs enforces the PR 4 acceptance budget on the WAL's
// journaling hot path: steady-state Append must not allocate (the pending
// buffer and its drained spare double-buffer each other). SyncAlways keeps
// the whole append→drain→write cycle on this goroutine, so the measurement
// is deterministic; the budget of 1 absorbs the occasional buffer regrowth
// after a capacity miss.
func TestAppendHotPathAllocs(t *testing.T) {
	w, _, err := Open(Options{Dir: t.TempDir(), Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	rec := Record{Type: RecAccept, ID: 0, View: 1, Value: make([]byte, 1300)}
	// Warm: grow the pending buffer and its spare to steady size.
	for i := range 32 {
		rec.ID = wire.InstanceID(i)
		w.Append(rec)
	}
	i := 0
	got := testing.AllocsPerRun(150, func() {
		rec.ID = wire.InstanceID(i)
		i++
		w.Append(rec)
	})
	if got > 1 {
		t.Errorf("WAL.Append allocates %.1f allocs/op, budget 1", got)
	}
}

// TestAppendPassthroughVFSHotPathAllocs proves the VFS seam costs nothing:
// with the passthrough filesystem spelled out explicitly (the same
// interface dispatch every injected FS pays), steady-state Append stays at
// ZERO allocs/op — *os.File satisfies vfs.File natively, Failed() is an
// atomic load, and no fault-injection bookkeeping exists on the hot path.
func TestAppendPassthroughVFSHotPathAllocs(t *testing.T) {
	w, _, err := Open(Options{Dir: t.TempDir(), Policy: SyncAlways, FS: vfs.OS})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	rec := Record{Type: RecAccept, ID: 0, View: 1, Value: make([]byte, 1300)}
	// Warm until the pending buffer and its drained spare reach steady
	// capacity; after that the double-buffer cycle allocates nothing.
	for i := range 64 {
		rec.ID = wire.InstanceID(i)
		w.Append(rec)
	}
	i := 0
	got := testing.AllocsPerRun(200, func() {
		rec.ID = wire.InstanceID(i)
		i++
		w.Append(rec)
	})
	if got != 0 {
		t.Errorf("WAL.Append through passthrough VFS allocates %.1f allocs/op, want 0", got)
	}
}
