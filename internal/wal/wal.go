// Package wal implements the write-ahead log behind crash-restart recovery:
// a segmented, checksummed, append-only journal of one ordering group's
// acceptor state transitions (promised view, accepted view/value, decided
// marker) and snapshot cuts. A replica killed mid-run replays its WAL at
// boot and rejoins with every durable promise intact, so Paxos safety holds
// across restarts without state transfer of the already-durable prefix.
//
// Durability follows the group-commit design of HT-Paxos: the appender (the
// group's Protocol thread) only copies encoded records into an in-memory
// buffer — it never touches the disk — while a dedicated Syncer goroutine
// drains whatever accumulated into one write and one fsync. Everything that
// piled up during the previous fsync rides the next one, so the fsync rate
// is decoupled from the append rate and the disk sees large sequential
// writes. The caller gates protocol *output* (messages, decisions) on the
// durable watermark: an acceptor's promise or accept is on disk before any
// peer can observe it.
//
// Three policies trade safety for speed:
//
//   - SyncBatch (default): group commit as above. Safe against machine
//     crashes; output latency grows by at most one fsync.
//   - SyncAlways: every Append writes and fsyncs inline, on the calling
//     thread. Maximal paranoia, one fsync per record.
//   - SyncNone: records are written by the Syncer but never fsynced, and
//     output is not gated on anything. Best-effort only: a clean Close
//     loses nothing and a kill usually loses at most the last instants
//     (records reach the OS within MinSyncInterval), but there is no
//     durability guarantee of any kind.
//
// Disk faults follow an explicit policy (the README's "Failure model"
// section): any write, fsync, seal, or close failure on the append path is
// FAIL-STOP — the WAL latches Failed(), the durable watermark freezes
// forever (a failed fsync may mean the kernel already dropped the dirty
// pages, so retrying it and re-reporting success would un-durable records
// peers observed — the fsyncgate lesson), and the OnFault hook lets the
// replica stop participating so the quorum continues without it. Failing to
// CREATE the next segment (ENOSPC, typically) merely DEGRADES: the current
// segment is already sealed and keeps absorbing appends past its nominal
// size, and the roll is retried. Corruption of a sealed segment found at
// Open is reported as *CorruptError so a clustered caller can quarantine
// the directory (QuarantineSegments) and rejoin via state transfer.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gosmr/internal/vfs"
	"gosmr/internal/wire"
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy uint8

// Sync policies. The zero value is SyncBatch, the recommended default.
const (
	// SyncBatch groups pending appends into one fsync issued by the Syncer
	// goroutine (group commit).
	SyncBatch SyncPolicy = iota
	// SyncAlways fsyncs inline on every Append.
	SyncAlways
	// SyncNone never fsyncs; records reach the OS promptly but nothing is
	// guaranteed — best-effort recovery only.
	SyncNone
)

// String returns the policy's config spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return "batch"
	}
}

// ParsePolicy parses a config spelling ("always", "batch", "none"; "" means
// batch).
func ParsePolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "", "batch":
		return SyncBatch, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	default:
		return SyncBatch, fmt.Errorf("wal: unknown sync policy %q (want always, batch or none)", s)
	}
}

// RecordType discriminates WAL records.
type RecordType uint8

// Record types.
const (
	// RecView records a promise: the acceptor moved to View and will reject
	// lower ballots.
	RecView RecordType = iota + 1
	// RecAccept records that Value was accepted for instance ID in View.
	RecAccept
	// RecDecide records that instance ID was decided. HasValue distinguishes
	// an explicit value from "the previously accepted value" (the watermark
	// learning path, which avoids writing each batch twice).
	RecDecide
	// RecCut records that everything below instance ID is covered by a
	// durable snapshot. Written on truncation and as a checkpoint segment's
	// header.
	RecCut
	// RecState carries one retained log slot inside a checkpoint segment:
	// the acceptor state that was live when older segments were discarded.
	RecState
	// RecCkpt heads a checkpoint segment: like RecCut it records that
	// everything below instance ID is covered by a durable snapshot, but it
	// additionally marks its segment as self-contained (the RecState dump
	// that follows holds every live slot), which is what makes the segment a
	// valid garbage-collection and cold-read boundary. An Append-path RecCut
	// that happens to land first in a freshly rolled segment must NOT be
	// mistaken for one — its segment depends on its predecessors.
	RecCkpt
	// RecTopo records an epoch-stamped cluster topology (Value holds
	// wire.EncodeTopology bytes): the shape this replica was in when the
	// record was journaled. Replay adopts the highest epoch seen, so a
	// reboot after a reconfiguration comes back in the epoch it crashed in.
	// Carries no log-slot ID (not slot-bearing).
	RecTopo
)

// segRange is the closed [min,max] interval of slot-bearing record IDs in
// one segment. min > max is the empty range (a segment holding only
// RecView/RecCut markers, or nothing yet).
type segRange struct{ min, max int64 }

// emptyRange is the identity for segRange.add.
var emptyRange = segRange{min: math.MaxInt64, max: -1}

func (s segRange) empty() bool { return s.min > s.max }

func (s *segRange) add(id int64) {
	if id < s.min {
		s.min = id
	}
	if id > s.max {
		s.max = id
	}
}

// merge folds another range into s.
func (s *segRange) merge(o segRange) {
	if o.empty() {
		return
	}
	s.add(o.min)
	s.add(o.max)
}

// slotBearing reports whether a record type carries a log-slot ID the
// segment index must cover (the record types ReadDecidedRange folds).
func slotBearing(t RecordType) bool {
	return t == RecAccept || t == RecDecide || t == RecState
}

// Record is one WAL entry. Which fields are meaningful depends on Type.
type Record struct {
	Type     RecordType
	View     wire.View       // RecView, RecAccept, RecState (accepted view)
	ID       wire.InstanceID // RecAccept, RecDecide, RecCut, RecState, RecCkpt
	HasValue bool            // RecDecide: explicit value follows
	Decided  bool            // RecState
	Value    []byte          // RecAccept, RecDecide (if HasValue), RecState, RecTopo
}

// Encoding: each record is
//
//	u32 crc   IEEE CRC32 of everything after this field
//	u32 len   length of the payload (type byte + body)
//	u8  type
//	...body (little-endian, per type)
//
// and each segment file starts with a fixed 8-byte header (magic + version).
// Records never span segments.
const (
	segMagic      = 0x4C415747 // "GWAL"
	segVersion    = 1
	segHeaderSize = 8
	recHeaderSize = 8

	// maxRecordSize rejects absurd length prefixes before allocating, the
	// same defense the wire codec and the reply cache apply to untrusted
	// length fields.
	maxRecordSize = 64 << 20

	// DefaultSegmentBytes is the segment size the log rolls at.
	DefaultSegmentBytes = 8 << 20
)

// DefaultMinSyncInterval spaces consecutive group-commit fsyncs. 500µs adds
// at most that much output latency under load — far below a consensus round
// trip — while capping the fsync rate at 2k/s. With the adaptive Syncer
// (MinSyncInterval unset) it is the lower clamp: a disk whose fsync is
// faster than SyncCPUShare×500µs syncs at exactly this spacing, the pre-PR7
// behavior.
const DefaultMinSyncInterval = 500 * time.Microsecond

// MaxAdaptiveSyncInterval caps how far the adaptive Syncer will stretch the
// sync spacing on a slow disk. 20ms keeps worst-case added commit latency
// within one WAN round trip even when fsync itself costs ~10ms (spinning
// rust, throttled cloud volumes).
const MaxAdaptiveSyncInterval = 20 * time.Millisecond

// DefaultSyncCPUShare is the fraction of one core the adaptive Syncer
// budgets for time spent inside fsync: spacing = ewma(fsync)/share, so a
// 100µs-fsync NVMe stays near the 500µs floor while a 5ms-fsync EBS volume
// backs off to 10ms spacing instead of spending its life blocked in fsync.
const DefaultSyncCPUShare = 0.5

// DefaultRetainCheckpoints is how many previous checkpoint generations of
// segments Checkpoint keeps on disk for cold catch-up reads (the pre-PR7
// fixed policy).
const DefaultRetainCheckpoints = 1

// Options configures Open.
type Options struct {
	// Dir holds the segment files; created if missing.
	Dir string
	// Policy selects the fsync discipline (default SyncBatch).
	Policy SyncPolicy
	// SegmentBytes rolls to a new segment once the current one exceeds this
	// size (default DefaultSegmentBytes).
	SegmentBytes int64
	// MinSyncInterval floors the Syncer's fsync rate under sustained load:
	// consecutive fsyncs are spaced at least this far apart, so more appends
	// coalesce into each one and the fsync syscall rate stays bounded on
	// busy (or share-one-core) hosts. The first sync after an idle stretch
	// is never delayed, so lightly loaded latency is one bare fsync.
	//
	// Zero (the default) selects the ADAPTIVE floor: the Syncer tracks an
	// EWMA of recent fsync latency and spaces syncs at ewma/SyncCPUShare,
	// clamped to [DefaultMinSyncInterval, MaxAdaptiveSyncInterval], so the
	// same binary self-tunes from laptop NVMe (floor-spaced, ~500µs) to a
	// slow cloud volume (backed off so fsync consumes at most SyncCPUShare
	// of a core). A positive value overrides adaptation with that fixed
	// floor; negative disables the floor entirely (sync on every wake).
	MinSyncInterval time.Duration
	// SyncCPUShare is the adaptive floor's target fraction of one core
	// spent inside fsync (default DefaultSyncCPUShare). Only meaningful
	// when MinSyncInterval is zero.
	SyncCPUShare float64
	// RetainCheckpoints is how many previous checkpoint generations of
	// sealed segments Checkpoint keeps for cold catch-up reads (default
	// DefaultRetainCheckpoints; values < 1 take the default — at least one
	// full generation below the newest cut is always retained, the window
	// ReadDecidedRange's contract depends on).
	RetainCheckpoints int
	// RetainBytes, when > 0, extends retention below the generation floor:
	// older segments are kept — oldest discarded first — while the total
	// size of retained segment files stays within this budget, so
	// disk-rich deployments serve deep catch-up gaps from the log instead
	// of forcing state transfer. It never shrinks the generation
	// guarantee; 0 keeps generations-only retention.
	RetainBytes int64
	// PreallocSpares is how many segment files a background pipeline keeps
	// prepared ahead of the writer — preallocated to SegmentBytes and
	// zero-filled, with files freed by Checkpoint recycled into spares — so
	// a segment roll is a rename plus header write and the group-commit
	// fsync loop never pays file creation or block allocation. 0 means the
	// default of 1 ("create N+1 ahead"); negative disables preallocation
	// entirely (every roll creates a plain growing file, the pre-PR4
	// behavior).
	PreallocSpares int
	// OnDurable, if non-nil, is called from the Syncer goroutine after each
	// sync advances the durable watermark. Callbacks must not block for
	// long and must not call back into the WAL.
	OnDurable func(durable int64)
	// FS abstracts the filesystem for fault injection; nil selects the real
	// filesystem (vfs.OS, a zero-overhead passthrough).
	FS vfs.FS
	// OnFault, if non-nil, is called exactly once — from whichever goroutine
	// first hit the failure — when the WAL fail-stops on an unrecoverable
	// disk error. It must not block and must not call back into the WAL
	// synchronously (Close in particular: the callback may run on the Syncer
	// goroutine Close waits for).
	OnFault func(err error)
}

// WAL is one ordering group's write-ahead log. Append is single-appender
// (the group's Protocol thread); the Syncer goroutine and Close may run
// concurrently with it.
type WAL struct {
	dir      string
	fs       vfs.FS
	policy   SyncPolicy
	segBytes int64
	minSync  time.Duration
	onSync   func(int64)
	onFault  func(error)

	// fault latches the first unrecoverable disk error (fail-stop). Once
	// set: the durable watermark never advances again, Append becomes a
	// no-op, and Close skips the final seal — nothing may be re-reported
	// durable after a failed write or fsync.
	fault atomic.Pointer[faultErr]

	// adaptive group commit: when adaptive is set (MinSyncInterval was
	// unset), the Syncer spaces fsyncs at fsyncEWMA/syncShare instead of
	// the fixed minSync floor. fsyncEWMA is the smoothed fsync latency in
	// nanoseconds, written by the Syncer, readable from any goroutine.
	adaptive  bool
	syncShare float64
	fsyncEWMA atomic.Int64

	// mu guards buf, spare, appended and pendRange: the only state Append
	// touches.
	mu       sync.Mutex
	buf      []byte
	spare    []byte // drained buffer cycled back for reuse (double buffering)
	appended int64  // total encoded bytes handed to Append this run
	// pendRange accumulates the slot range of records encoded into buf since
	// the last drain. The Syncer transfers it to curRange when it writes the
	// batch — a drained batch lands in exactly one segment because
	// writeLocked rolls only at batch start, never mid-write.
	pendRange segRange

	durable atomic.Int64 // appended bytes known flushed (and fsynced, unless SyncNone)

	// fileMu serializes all file access: the Syncer's drain, Checkpoint,
	// SyncAlways appends, and Close.
	fileMu   sync.Mutex
	f        vfs.File
	fileSize int64 // logical size: header + records written this incarnation
	prealloc bool  // current segment is preallocated (physical size > logical)
	seq      int   // current segment sequence number

	// ckptSeq is the sequence number of the newest checkpoint segment (one
	// headed by RecCkpt + a full live-state dump; 0 = none yet). Garbage
	// collection keeps every segment from the PREVIOUS checkpoint onward, so
	// the WAL always retains one full checkpoint generation below the
	// current cut — the disk-backed catch-up range ReadDecidedRange serves.
	// retainSeq is that retention floor: segments below it are GC'd (though
	// a file may linger under its segment name until the recycle pipeline
	// renames it, so cold reads must not trust the directory listing alone).
	// Both guarded by fileMu. ckptHist is the ascending sequence numbers of
	// every still-retained checkpoint segment — the generation ladder the
	// retention policy walks (rebuilt at replay, appended by Checkpoint,
	// pruned with GC). retainCkpts/retainBytes hold the retention knobs.
	ckptSeq     int
	retainSeq   int
	ckptHist    []int
	retainCkpts int
	retainBytes int64

	// segIndex maps each sealed segment to the closed [min,max] range of
	// slot-bearing record IDs (RecAccept/RecDecide/RecState) it holds, so
	// ReadDecidedRange opens only segments that can intersect a query instead
	// of scanning the whole retained log. curRange accumulates the range of
	// the unsealed current segment; sealLocked moves it into the index.
	// Rebuilt from the segment scan at replay, pruned with garbage
	// collection. Guarded by fileMu.
	segIndex map[int]segRange
	curRange segRange

	// pipeline prepares the next segment file ahead of the writer (nil when
	// preallocation is disabled).
	pipeline *filePipeline

	wake   chan struct{}
	stopc  chan struct{}
	wg     sync.WaitGroup
	closed bool
}

// faultErr boxes the latched fail-stop error (atomic.Pointer element type).
type faultErr struct{ err error }

// Failed returns the latched fail-stop error, or nil while the WAL is
// healthy. Safe (and allocation-free) from any goroutine.
func (w *WAL) Failed() error {
	if p := w.fault.Load(); p != nil {
		return p.err
	}
	return nil
}

// fail latches the fail-stop state and fires OnFault exactly once. Returns
// the latched error (the first one wins; later callers see it, not theirs).
func (w *WAL) fail(op string, err error) error {
	fe := &faultErr{err: fmt.Errorf("wal: %s: %w", op, err)}
	if w.fault.CompareAndSwap(nil, fe) && w.onFault != nil {
		w.onFault(fe.err)
	}
	return w.Failed()
}

// CorruptError is Open's report of unrecoverable corruption in a sealed
// (non-final) segment: fsynced acceptor state peers may have observed is
// unreadable. The caller owns the policy decision — a clustered replica can
// quarantine the directory (QuarantineSegments) and rejoin via snapshot +
// state transfer, while a single replica has no safe fallback and must
// surface the error.
type CorruptError struct {
	Segment string // path of the corrupt segment file
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: segment %s is corrupt below later segments: fsynced records are unreadable", e.Segment)
}

// QuarantineSegments renames every WAL segment file in dir to
// <name>.corrupt, removing it from replay's view while preserving the bytes
// for forensics, and returns the names it quarantined. ALL segments move,
// not just the corrupt one: records above a corrupt segment depend on the
// unreadable prefix (acceptor state is cumulative), so a partial replay
// would be exactly the half-blind boot the corruption refusal exists to
// prevent. After quarantine, Open finds an empty log and the replica
// rebuilds from the snapshot store and state transfer.
func QuarantineSegments(fsys vfs.FS, dir string) ([]string, error) {
	if fsys == nil {
		fsys = vfs.OS
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: quarantine read dir: %w", err)
	}
	var quarantined []string
	for _, e := range entries {
		name := e.Name()
		var seq int
		if _, err := fmt.Sscanf(name, "wal-%08d.seg", &seq); err != nil || name != segName(seq) {
			continue
		}
		if err := fsys.Rename(filepath.Join(dir, name), filepath.Join(dir, name+".corrupt")); err != nil {
			return quarantined, fmt.Errorf("wal: quarantine %s: %w", name, err)
		}
		quarantined = append(quarantined, name)
	}
	if len(quarantined) > 0 {
		if err := fsys.SyncDir(dir); err != nil {
			return quarantined, fmt.Errorf("wal: quarantine fsync dir: %w", err)
		}
	}
	return quarantined, nil
}

// Open creates or reopens the WAL in dir and returns every intact record in
// append order for replay. A torn tail of the FINAL segment (a crash
// mid-write) is truncated away — under the batch and always policies,
// everything at or below the last fsync is intact, and nothing past a torn
// record was ever observable by a peer. Corruption anywhere else is not a
// crash artifact (a segment is fsynced before its successor is created): it
// means fsynced acceptor state this replica may have advertised is gone, so
// Open refuses to proceed — with *CorruptError, so a caller that has a safe
// fallback can quarantine and rejoin — rather than silently reboot the
// acceptor with amnesia.
func Open(opts Options) (*WAL, []Record, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.FS == nil {
		opts.FS = vfs.OS
	}
	adaptive := opts.MinSyncInterval == 0
	if adaptive {
		opts.MinSyncInterval = DefaultMinSyncInterval
	}
	if opts.SyncCPUShare <= 0 || opts.SyncCPUShare > 1 {
		opts.SyncCPUShare = DefaultSyncCPUShare
	}
	if opts.RetainCheckpoints < 1 {
		opts.RetainCheckpoints = DefaultRetainCheckpoints
	}
	if err := opts.FS.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: create dir: %w", err)
	}
	w := &WAL{
		dir:         opts.Dir,
		fs:          opts.FS,
		policy:      opts.Policy,
		segBytes:    opts.SegmentBytes,
		minSync:     opts.MinSyncInterval,
		adaptive:    adaptive,
		syncShare:   opts.SyncCPUShare,
		retainCkpts: opts.RetainCheckpoints,
		retainBytes: opts.RetainBytes,
		onSync:      opts.OnDurable,
		onFault:     opts.OnFault,
		pendRange:   emptyRange,
		segIndex:    make(map[int]segRange),
		curRange:    emptyRange,
		wake:        make(chan struct{}, 1),
		stopc:       make(chan struct{}),
	}
	// Leftover pipeline spares are in an unknown preparation state after a
	// crash (their zero fill may not be durable): discard them before
	// anything else, so a stale spare can never be renamed into a segment.
	if entries, err := w.fs.ReadDir(opts.Dir); err == nil {
		for _, e := range entries {
			if isSpareName(e.Name()) {
				// best-effort: a stale spare that survives is still outside
				// the segment namespace and gets re-prepared or re-dropped.
				_ = w.fs.Remove(filepath.Join(opts.Dir, e.Name()))
			}
		}
	}
	recs, err := w.replay()
	if err != nil {
		return nil, nil, err
	}
	if opts.PreallocSpares >= 0 {
		spares := opts.PreallocSpares
		if spares == 0 {
			spares = 1
		}
		w.pipeline = newFilePipeline(w.fs, opts.Dir, opts.SegmentBytes, spares, opts.Policy != SyncNone)
	}
	if w.policy != SyncAlways {
		w.wg.Add(1)
		go w.runSyncer()
	}
	return w, recs, nil
}

// segName formats a segment file name; lexical order is append order.
func segName(seq int) string { return fmt.Sprintf("wal-%08d.seg", seq) }

// segments lists the existing segment sequence numbers in order. The
// round-trip check against segName rejects names Sscanf merely
// prefix-matches — "wal-00000001.seg.corrupt" parses as 1 but is a
// quarantined file, not a segment.
func (w *WAL) segments() ([]int, error) {
	entries, err := w.fs.ReadDir(w.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	var seqs []int
	for _, e := range entries {
		var seq int
		if _, err := fmt.Sscanf(e.Name(), "wal-%08d.seg", &seq); err == nil && e.Name() == segName(seq) {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// replay scans the segments, collects intact records, repairs a torn tail,
// and positions the WAL to append after the last intact record.
func (w *WAL) replay() ([]Record, error) {
	seqs, err := w.segments()
	if err != nil {
		return nil, err
	}
	// Drop trailing headerless segments first. A crash at segment creation
	// leaves one; so does a crashed degrade-mode roll (file created, header
	// write failed, removal not yet durable). Either way the PREDECESSOR was
	// the live append target and may legally carry a torn tail, so finality
	// for the corruption check below must rest on the newest segment that
	// actually holds an intact header.
	for len(seqs) > 0 {
		last := seqs[len(seqs)-1]
		path := filepath.Join(w.dir, segName(last))
		data, err := w.fs.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("wal: read segment: %w", err)
		}
		if _, valid, _ := scanSegment(data); valid >= segHeaderSize {
			break
		}
		if err := w.fs.Remove(path); err != nil {
			return nil, fmt.Errorf("wal: drop headerless segment: %w", err)
		}
		w.seq = last
		seqs = seqs[:len(seqs)-1]
	}
	var recs []Record
	for i, seq := range seqs {
		path := filepath.Join(w.dir, segName(seq))
		data, err := w.fs.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("wal: read segment: %w", err)
		}
		segRecs, valid, intact := scanSegment(data)
		if len(segRecs) > 0 && segRecs[0].Type == RecCkpt {
			w.ckptSeq = seq // newest self-contained checkpoint boundary
			w.ckptHist = append(w.ckptHist, seq)
		}
		// Rebuild the segment's slot index from the intact records (for a
		// torn final segment the scan stops at the tear, which is exactly
		// the prefix the truncation below keeps).
		rng := emptyRange
		for _, rec := range segRecs {
			if slotBearing(rec.Type) {
				rng.add(int64(rec.ID))
			}
		}
		if !intact && i < len(seqs)-1 {
			// A torn record below later segments cannot come from a crash
			// (segments are fsynced before their successors exist): this is
			// corruption of durable state peers may have observed. Refusing
			// to boot is the safe outcome; a clustered caller quarantines the
			// directory and rejoins via state transfer (single replicas have
			// no fallback and surface the error to the operator).
			return nil, &CorruptError{Segment: path}
		}
		recs = append(recs, segRecs...)
		if intact && i < len(seqs)-1 {
			w.segIndex[seq] = rng
			continue
		}
		// Final segment: truncate a torn tail and append here from now on.
		if !intact {
			if err := w.fs.Truncate(path, valid); err != nil {
				return nil, fmt.Errorf("wal: repair torn segment: %w", err)
			}
		}
		f, err := w.fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: reopen segment: %w", err)
		}
		w.f, w.fileSize, w.seq = f, valid, seq
		w.curRange = rng // resume accumulating the reopened segment's range
		return recs, nil
	}
	// Empty directory (or only headerless segments, dropped above): the
	// first Append rolls to a fresh segment.
	return recs, nil
}

// scanSegment parses one segment image, returning its intact records, the
// byte offset of the valid prefix, and whether the whole file was intact.
func scanSegment(data []byte) (recs []Record, valid int64, intact bool) {
	if len(data) < segHeaderSize {
		return nil, 0, false
	}
	if binary.LittleEndian.Uint32(data) != segMagic ||
		binary.LittleEndian.Uint32(data[4:]) != segVersion {
		return nil, 0, false
	}
	off := int64(segHeaderSize)
	rest := data[segHeaderSize:]
	for len(rest) > 0 {
		rec, n, ok := decodeRecord(rest)
		if !ok {
			return recs, off, false
		}
		recs = append(recs, rec)
		off += int64(n)
		rest = rest[n:]
	}
	return recs, off, true
}

// encodeRecord appends rec's encoding to b.
func encodeRecord(b []byte, rec Record) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0) // crc + len placeholders
	b = append(b, byte(rec.Type))
	switch rec.Type {
	case RecView:
		b = binary.LittleEndian.AppendUint32(b, uint32(rec.View))
	case RecAccept:
		b = binary.LittleEndian.AppendUint64(b, uint64(rec.ID))
		b = binary.LittleEndian.AppendUint32(b, uint32(rec.View))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(rec.Value)))
		b = append(b, rec.Value...)
	case RecDecide:
		b = binary.LittleEndian.AppendUint64(b, uint64(rec.ID))
		if rec.HasValue {
			b = append(b, 1)
			b = binary.LittleEndian.AppendUint32(b, uint32(len(rec.Value)))
			b = append(b, rec.Value...)
		} else {
			b = append(b, 0)
		}
	case RecCut, RecCkpt:
		b = binary.LittleEndian.AppendUint64(b, uint64(rec.ID))
	case RecState:
		b = binary.LittleEndian.AppendUint64(b, uint64(rec.ID))
		b = binary.LittleEndian.AppendUint32(b, uint32(rec.View))
		if rec.Decided {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(len(rec.Value)))
		b = append(b, rec.Value...)
	case RecTopo:
		b = binary.LittleEndian.AppendUint32(b, uint32(len(rec.Value)))
		b = append(b, rec.Value...)
	default:
		panic(fmt.Sprintf("wal: encode of unknown record type %d", rec.Type))
	}
	payload := b[start+recHeaderSize:]
	binary.LittleEndian.PutUint32(b[start:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(b[start+4:], uint32(len(payload)))
	return b
}

// decodeRecord parses the first record in b, returning its total encoded
// size. ok is false for a short, oversized, or corrupt record. Every length
// field is validated against the remaining bytes before any allocation.
func decodeRecord(b []byte) (rec Record, n int, ok bool) {
	if len(b) < recHeaderSize {
		return rec, 0, false
	}
	crc := binary.LittleEndian.Uint32(b)
	plen := binary.LittleEndian.Uint32(b[4:])
	if plen == 0 || plen > maxRecordSize || uint64(plen) > uint64(len(b)-recHeaderSize) {
		return rec, 0, false
	}
	payload := b[recHeaderSize : recHeaderSize+int(plen)]
	if crc32.ChecksumIEEE(payload) != crc {
		return rec, 0, false
	}
	rec.Type = RecordType(payload[0])
	body := payload[1:]
	u32 := func() (uint32, bool) {
		if len(body) < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(body)
		body = body[4:]
		return v, true
	}
	u64 := func() (uint64, bool) {
		if len(body) < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(body)
		body = body[8:]
		return v, true
	}
	u8 := func() (byte, bool) {
		if len(body) < 1 {
			return 0, false
		}
		v := body[0]
		body = body[1:]
		return v, true
	}
	// bytes validates the length prefix against the remaining body before
	// allocating (the replycache.unmarshalMap guard, mirrored here).
	bytes := func() ([]byte, bool) {
		n, ok := u32()
		if !ok || uint64(n) > uint64(len(body)) {
			return nil, false
		}
		v := make([]byte, n)
		copy(v, body[:n])
		body = body[n:]
		return v, true
	}
	switch rec.Type {
	case RecView:
		v, ok := u32()
		if !ok {
			return rec, 0, false
		}
		rec.View = wire.View(int32(v))
	case RecAccept:
		id, ok1 := u64()
		v, ok2 := u32()
		val, ok3 := bytes()
		if !ok1 || !ok2 || !ok3 {
			return rec, 0, false
		}
		rec.ID, rec.View, rec.Value = wire.InstanceID(id), wire.View(int32(v)), val
	case RecDecide:
		id, ok1 := u64()
		has, ok2 := u8()
		if !ok1 || !ok2 {
			return rec, 0, false
		}
		rec.ID = wire.InstanceID(id)
		if has != 0 {
			val, ok := bytes()
			if !ok {
				return rec, 0, false
			}
			rec.HasValue, rec.Value = true, val
		}
	case RecCut, RecCkpt:
		id, ok := u64()
		if !ok {
			return rec, 0, false
		}
		rec.ID = wire.InstanceID(id)
	case RecState:
		id, ok1 := u64()
		v, ok2 := u32()
		dec, ok3 := u8()
		val, ok4 := bytes()
		if !ok1 || !ok2 || !ok3 || !ok4 {
			return rec, 0, false
		}
		rec.ID, rec.View, rec.Decided, rec.Value =
			wire.InstanceID(id), wire.View(int32(v)), dec != 0, val
	case RecTopo:
		val, ok := bytes()
		if !ok {
			return rec, 0, false
		}
		rec.Value = val
	default:
		return rec, 0, false
	}
	if len(body) != 0 {
		return rec, 0, false
	}
	return rec, recHeaderSize + int(plen), true
}

// Append journals rec. Under SyncBatch and SyncNone it only copies the
// encoding into the pending buffer and wakes the Syncer — it never blocks
// on the disk. Under SyncAlways it writes and fsyncs inline. Disk failures
// fail-stop the WAL (Failed() latches, the durable watermark freezes, and
// the OnFault hook fires): an acceptor that cannot persist its promises
// must stop acknowledging ballots it will forget, and after a failed fsync
// the kernel may already have dropped the pages — retrying is unsound.
// Appends after the fault are silently dropped; they could never become
// durable and nothing downstream may observe them (the caller's durable
// gate holds their output forever).
func (w *WAL) Append(rec Record) {
	if w.Failed() != nil {
		return
	}
	w.mu.Lock()
	w.buf = encodeRecord(w.buf, rec)
	if slotBearing(rec.Type) {
		w.pendRange.add(int64(rec.ID))
	}
	w.mu.Unlock()
	if w.policy == SyncAlways {
		w.syncNow()
		return
	}
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// AppendedLSN returns the total encoded bytes appended this run — the gate
// position callers pair with DurableLSN.
func (w *WAL) AppendedLSN() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendedLocked()
}

func (w *WAL) appendedLocked() int64 { return w.appended + int64(len(w.buf)) }

// DurableLSN returns the appended bytes known durable under the policy.
func (w *WAL) DurableLSN() int64 { return w.durable.Load() }

// runSyncer is the Syncer goroutine: group commit. Each pass drains
// whatever the appender accumulated — including everything that piled up
// while the previous fsync was in flight — into one write and one fsync.
func (w *WAL) runSyncer() {
	defer w.wg.Done()
	var lastSync time.Time
	for {
		select {
		case <-w.wake:
		case <-w.stopc:
			w.syncNow() // final drain so a graceful Close loses nothing
			return
		}
		// Floor the sync rate under sustained load: waiting out the
		// remainder of the interval lets more appends pile into this fsync
		// (the whole point of group commit) and bounds the syscall rate.
		// After an idle stretch the wait is already elapsed and the sync is
		// immediate. The adaptive floor re-reads the fsync EWMA each pass,
		// so the spacing tracks the disk it actually runs on.
		if floor := w.SyncInterval(); floor > 0 {
			if d := floor - time.Since(lastSync); d > 0 {
				select {
				case <-time.After(d):
				case <-w.stopc:
					w.syncNow()
					return
				}
			}
			lastSync = time.Now()
		}
		w.syncNow()
		if w.Failed() != nil {
			return // fail-stop: nothing will ever become durable again
		}
	}
}

// syncNow drains the pending buffer into the current segment and advances
// the durable watermark. Safe to call from any goroutine.
func (w *WAL) syncNow() {
	w.fileMu.Lock()
	defer w.fileMu.Unlock()
	w.drainLocked()
}

// maxRecycledBuf caps the pending buffer the WAL keeps for reuse; a one-off
// giant batch should not pin its buffer forever.
const maxRecycledBuf = 1 << 20

// drainLocked does the work of syncNow with fileMu held. The pending buffer
// and its spare double-buffer each other: the appender fills one while the
// Syncer writes the other, so steady-state appends never allocate. On any
// write or fsync failure it returns WITHOUT advancing the durable watermark
// — the batch was never durable and, with the WAL now fail-stopped, never
// will be.
func (w *WAL) drainLocked() {
	if w.Failed() != nil {
		return
	}
	w.mu.Lock()
	pending := w.buf
	w.buf = w.spare[:0]
	w.spare = nil
	w.appended += int64(len(pending))
	lsn := w.appended
	pr := w.pendRange
	w.pendRange = emptyRange
	w.mu.Unlock()
	if len(pending) == 0 {
		w.recycleBuf(pending)
		return
	}
	if !w.writeLocked(pending) {
		return // fail-stopped inside the write path
	}
	// After writeLocked: a roll happens before the batch is written, so the
	// whole batch — and its slot range — belongs to the (possibly new)
	// current segment.
	w.curRange.merge(pr)
	if w.policy != SyncNone {
		start := time.Now()
		if err := w.f.Sync(); err != nil {
			// fsyncgate: the kernel may have dropped the dirty pages and
			// cleared the error; a retried fsync that "succeeds" proves
			// nothing. The records in this batch are not durable and must
			// never be reported as such.
			w.fail("fsync "+w.f.Name(), err)
			return
		}
		w.observeFsync(time.Since(start))
	}
	w.recycleBuf(pending)
	w.durable.Store(lsn)
	if w.onSync != nil {
		w.onSync(lsn)
	}
}

// observeFsync folds one fsync duration into the smoothed latency the
// adaptive Syncer spaces itself by (EWMA, α=1/8: jumpy enough to follow a
// throttled volume within a dozen syncs, smooth enough to ignore one slow
// outlier).
func (w *WAL) observeFsync(d time.Duration) {
	old := w.fsyncEWMA.Load()
	if old == 0 {
		w.fsyncEWMA.Store(int64(d))
		return
	}
	w.fsyncEWMA.Store(old + (int64(d)-old)/8)
}

// FsyncEWMA returns the smoothed fsync latency the adaptive Syncer has
// observed (0 before the first sync). Safe from any goroutine.
func (w *WAL) FsyncEWMA() time.Duration { return time.Duration(w.fsyncEWMA.Load()) }

// SyncInterval returns the sync-spacing floor currently in effect: the
// fixed MinSyncInterval when one was configured, otherwise the adaptive
// interval derived from recent fsync latency. Safe from any goroutine.
func (w *WAL) SyncInterval() time.Duration {
	if !w.adaptive {
		return w.minSync
	}
	return adaptiveSyncInterval(time.Duration(w.fsyncEWMA.Load()), w.syncShare)
}

// adaptiveSyncInterval maps a smoothed fsync latency to a sync spacing that
// keeps the Syncer inside fsync at most `share` of the time: spacing =
// ewma/share, clamped to [DefaultMinSyncInterval, MaxAdaptiveSyncInterval].
// With no observation yet it returns the floor — the conservative (fast
// disk) assumption, corrected after the first real fsync.
func adaptiveSyncInterval(ewma time.Duration, share float64) time.Duration {
	if ewma <= 0 {
		return DefaultMinSyncInterval
	}
	iv := time.Duration(float64(ewma) / share)
	if iv < DefaultMinSyncInterval {
		return DefaultMinSyncInterval
	}
	if iv > MaxAdaptiveSyncInterval {
		return MaxAdaptiveSyncInterval
	}
	return iv
}

// retentionFloorLocked computes the segment sequence below which Checkpoint
// may garbage-collect, from the checkpoint-generation ladder and the
// optional byte budget. The generation rule keeps every segment from the
// retainCkpts-th previous checkpoint onward (0 = keep everything: not
// enough generations exist yet). RetainBytes then extends the floor
// DOWNWARD — oldest segments dropped first — while the total size of
// retained files fits the budget; it never raises the floor above the
// generation guarantee. Requires fileMu.
func (w *WAL) retentionFloorLocked() int {
	n := len(w.ckptHist)
	if n <= w.retainCkpts {
		return 0
	}
	floor := w.ckptHist[n-1-w.retainCkpts]
	if w.retainBytes <= 0 || floor <= 0 {
		return floor
	}
	seqs, err := w.segments()
	if err != nil {
		return floor
	}
	var total int64
	for i := len(seqs) - 1; i >= 0; i-- {
		size := int64(0)
		if fi, err := w.fs.Stat(filepath.Join(w.dir, segName(seqs[i]))); err == nil {
			size = fi.Size() // physical size: preallocated tails count
		}
		if seqs[i] >= floor {
			total += size // generation-guaranteed: kept regardless of budget
			continue
		}
		if total+size > w.retainBytes {
			break
		}
		total += size
		floor = seqs[i]
	}
	return floor
}

// recycleBuf hands a fully-written pending buffer back to the appender.
func (w *WAL) recycleBuf(b []byte) {
	if cap(b) > maxRecycledBuf {
		return
	}
	w.mu.Lock()
	if w.spare == nil {
		w.spare = b[:0]
	}
	w.mu.Unlock()
}

// writeLocked writes b to the current segment, rolling first if the segment
// is full, and reports whether the bytes reached the file. A roll failure
// with the old segment still open is the DEGRADE path: the sealed current
// segment absorbs the batch past its nominal size and the roll is retried
// at the next size check. Every other failure fail-stops. Requires fileMu.
func (w *WAL) writeLocked(b []byte) bool {
	if w.f == nil || w.fileSize >= w.segBytes {
		if err := w.rollLocked(); err != nil && w.f == nil {
			return false // fail-stopped: no segment to fall back to
		}
	}
	if _, err := w.f.Write(b); err != nil {
		w.fail("write "+w.f.Name(), err)
		return false
	}
	w.fileSize += int64(len(b))
	return true
}

// rollLocked seals the current segment and switches to the next one.
// Sealing — fsync records, trim preallocated padding, fsync the new length
// — happens BEFORE the successor is created, preserving the invariant that
// only the newest headed segment ever has a torn tail; the old file is
// closed only after the successor is in place. Failures split by layer:
//
//   - Seal or close failure is FAIL-STOP: the records at risk are exactly
//     the durable prefix peers may have observed (a close can surface
//     buffered write errors, so it counts as a sync failure).
//   - Failure to OBTAIN the next segment (create/header/dir-fsync —
//     typically ENOSPC) DEGRADES when the old segment is still open: the
//     error is returned, the sealed old segment keeps absorbing appends,
//     and the caller retries later. With no old segment to fall back to it
//     fail-stops.
//
// The next file comes from the preallocation pipeline when one is ready
// (rename + header write, no create or block allocation on this thread) and
// falls back to plain creation otherwise. The directory is fsynced after
// the rename/create: without it the durable watermark could cover records
// in a file whose directory entry does not survive a machine crash.
// Requires fileMu.
func (w *WAL) rollLocked() error {
	if w.f != nil {
		if err := w.sealCurrentLocked(); err != nil {
			return w.fail("seal "+w.f.Name(), err)
		}
	}
	seq := w.seq + 1
	path := filepath.Join(w.dir, segName(seq))
	var f vfs.File
	prealloc := false
	if w.pipeline != nil {
		if spare, ok := w.pipeline.take(); ok {
			if err := w.fs.Rename(spare, path); err == nil {
				if ff, err := w.fs.OpenFile(path, os.O_RDWR, 0o644); err == nil {
					f, prealloc = ff, true
				}
			} else {
				// best-effort: an unremovable dead spare is outside the
				// segment namespace and harmless; the direct create below
				// takes over.
				_ = w.fs.Remove(spare)
			}
		}
	}
	if f == nil {
		ff, err := w.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return w.rollFailedLocked(fmt.Sprintf("create segment %s", path), err)
		}
		f = ff
	}
	var hdr [segHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[:], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:], segVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		w.abandonSegmentLocked(f, path)
		return w.rollFailedLocked("write segment header", err)
	}
	if w.policy != SyncNone {
		if err := w.fs.SyncDir(w.dir); err != nil {
			w.abandonSegmentLocked(f, path)
			return w.rollFailedLocked("fsync dir "+w.dir, err)
		}
	}
	// The successor exists and is durable: retire the old segment. Close is
	// where some filesystems first report buffered write failures, so a
	// close error is a sync failure — fail-stop, and the new segment is
	// abandoned with the rest of the replica.
	if w.f != nil {
		if err := w.f.Close(); err != nil {
			_ = f.Close() // best-effort: fail-stopping anyway
			return w.fail("close "+w.f.Name(), err)
		}
		w.segIndex[w.seq] = w.curRange
		w.curRange = emptyRange
	}
	w.seq = seq
	w.f, w.fileSize, w.prealloc = f, segHeaderSize, prealloc
	return nil
}

// rollFailedLocked classifies a failure to obtain the next segment: degrade
// (return the error, keep appending to the still-open old segment) when
// possible, fail-stop when there is no old segment to fall back to.
func (w *WAL) rollFailedLocked(op string, err error) error {
	if w.f != nil {
		return fmt.Errorf("wal: %s: %w", op, err)
	}
	return w.fail(op, err)
}

// abandonSegmentLocked discards a partially-initialized successor segment.
// The removal matters: a headerless file ABOVE the live append target would
// make a later torn tail look like non-final corruption at boot. If the
// file cannot be removed, fail-stop rather than leave that trap armed.
func (w *WAL) abandonSegmentLocked(f vfs.File, path string) {
	_ = f.Close() // best-effort: nothing in the file is wanted
	if err := w.fs.Remove(path); err != nil {
		w.fail("abandon segment "+path, err)
		return
	}
	if w.policy != SyncNone {
		// best-effort: if the removal is not durable, replay's trailing-
		// headerless repair drops the leftover at next boot.
		_ = w.fs.SyncDir(w.dir)
	}
}

// sealCurrentLocked makes the current segment's bytes exactly its intact
// records: fsync the records, trim preallocated zero padding, fsync the new
// length — a later replay must never have to guess where a recycled file's
// zero tail begins in a non-final segment. The file stays OPEN: rollLocked
// closes it only once the successor exists, and a failed successor creation
// resumes appending here. Idempotent, so a degrade-mode roll retry re-seals
// cheaply. Requires fileMu.
func (w *WAL) sealCurrentLocked() error {
	if w.policy != SyncNone {
		if err := w.f.Sync(); err != nil {
			return err
		}
	}
	if w.prealloc {
		if err := w.f.Truncate(w.fileSize); err != nil {
			return err
		}
		if w.policy != SyncNone {
			// The truncation itself must be durable before a successor
			// segment exists, or a crash could revive the zero tail under a
			// non-final segment and trip the corruption refusal.
			if err := w.f.Sync(); err != nil {
				return err
			}
		}
		w.prealloc = false
	}
	return nil
}

// Checkpoint compacts the WAL after a snapshot covering everything below
// cut became durable: pending appends are drained, a fresh segment is
// started with a RecCkpt header followed by the retained live state, and
// segments older than the PREVIOUS checkpoint are deleted. Keeping one full
// checkpoint generation on disk is what lets ReadDecidedRange serve
// catch-up queries for values the in-memory log has already truncated (the
// retention mirrors the two-newest-snapshots policy of the snapshot store).
// Called by the owning Protocol thread on log truncation — the one WAL
// operation that intentionally touches the disk on that thread (snapshots
// are rare).
//
// A returned error with Failed() still nil is the DEGRADE outcome: the
// roll to a fresh checkpoint segment failed (ENOSPC, typically), nothing
// was compacted, appends continue in the current segment, and the caller
// retries at the next truncation. Failures past the roll — the dump's own
// write or fsync — fail-stop like any append-path failure.
func (w *WAL) Checkpoint(cut wire.InstanceID, states []Record) error {
	var cp []byte
	cp = encodeRecord(cp, Record{Type: RecCkpt, ID: cut})
	cpRng := emptyRange
	for _, st := range states {
		cp = encodeRecord(cp, st)
		if slotBearing(st.Type) {
			cpRng.add(int64(st.ID))
		}
	}

	w.fileMu.Lock()
	defer w.fileMu.Unlock()
	if err := w.Failed(); err != nil {
		return err
	}
	// Everything appended so far belongs before the checkpoint; drain it
	// into the old segment first so record order matches append order.
	w.drainLocked()
	if err := w.Failed(); err != nil {
		return err
	}
	if err := w.rollLocked(); err != nil {
		// Compaction aborted before any dump bytes were accounted: the
		// durable watermark, retention ladder and segment set are exactly as
		// before the call.
		return err
	}
	w.mu.Lock()
	w.appended += int64(len(cp))
	lsn := w.appended
	w.mu.Unlock()
	if _, err := w.f.Write(cp); err != nil {
		return w.fail("write checkpoint", err)
	}
	w.fileSize += int64(len(cp))
	w.curRange.merge(cpRng) // the dump bypasses writeLocked; index it here
	if w.policy != SyncNone {
		if err := w.f.Sync(); err != nil {
			return w.fail("fsync checkpoint", err)
		}
	}
	w.durable.Store(lsn)
	// Segments below the retention floor are fully covered by enough
	// durable snapshots and out of the cold-read retention window
	// (rollLocked already made the new segment's directory entry durable,
	// so discarding the old prefix cannot strand a crash with neither).
	// The floor keeps RetainCheckpoints previous generations, extended
	// further down while RetainBytes has budget for the older segments.
	// Freed files are offered to the preallocation pipeline for recycling —
	// it renames them out of the segment namespace, zeroes and reuses them
	// — with plain removal when the pipeline is full or disabled. If the
	// removals/renames do not survive a crash, replay handles the
	// leftovers: the checkpoints' RecCkpt cuts cover them idempotently.
	w.ckptSeq = w.seq
	w.ckptHist = append(w.ckptHist, w.seq)
	keepFrom := w.retentionFloorLocked()
	if keepFrom > w.retainSeq {
		w.retainSeq = keepFrom
	}
	for len(w.ckptHist) > 0 && w.ckptHist[0] < keepFrom {
		w.ckptHist = w.ckptHist[1:] // its generation is gone from disk
	}
	for seq := range w.segIndex {
		if seq < w.retainSeq {
			delete(w.segIndex, seq) // GC'd: out of the cold-read window
		}
	}
	if seqs, err := w.segments(); err == nil {
		for _, seq := range seqs {
			if seq < keepFrom {
				path := filepath.Join(w.dir, segName(seq))
				if w.pipeline == nil || !w.pipeline.offerRecycle(path) {
					// best-effort: a segment that refuses removal is below
					// every cut and replay covers it idempotently.
					_ = w.fs.Remove(path)
				}
			}
		}
		if w.policy != SyncNone {
			// best-effort: if the removals are not durable a crash revives
			// already-covered segments, which replay handles; failing the
			// checkpoint over it would throw away real compaction.
			_ = w.fs.SyncDir(w.dir)
		}
	}
	if w.onSync != nil {
		w.onSync(lsn)
	}
	return nil
}

// ShrinkRetention garbage-collects retained segments down to the
// RetainCheckpoints generation floor, zeroing the RetainBytes extension for
// the rest of this run, and returns how many segment files it removed. This
// is the ENOSPC degrade hook: when a snapshot persist fails for lack of
// space, the byte-budget-extended catch-up window is the cheapest disk the
// replica can give back without touching any guarantee — the generation
// floor (and with it ReadDecidedRange's contract) is preserved, deeper
// catch-up just falls back to state transfer. Files are removed outright,
// never recycled: the point is freeing space. Safe from any goroutine.
func (w *WAL) ShrinkRetention() int {
	w.fileMu.Lock()
	defer w.fileMu.Unlock()
	w.retainBytes = 0
	n := len(w.ckptHist)
	if n <= w.retainCkpts {
		return 0
	}
	floor := w.ckptHist[n-1-w.retainCkpts]
	removed := 0
	if seqs, err := w.segments(); err == nil {
		for _, seq := range seqs {
			if seq >= floor {
				break // ascending: everything from the floor up is kept
			}
			if err := w.fs.Remove(filepath.Join(w.dir, segName(seq))); err == nil {
				removed++
			}
		}
		if removed > 0 && w.policy != SyncNone {
			// best-effort: non-durable removals resurrect covered segments
			// at worst, which replay tolerates.
			_ = w.fs.SyncDir(w.dir)
		}
	}
	if floor > w.retainSeq {
		w.retainSeq = floor
	}
	for len(w.ckptHist) > 0 && w.ckptHist[0] < floor {
		w.ckptHist = w.ckptHist[1:]
	}
	for seq := range w.segIndex {
		if seq < w.retainSeq {
			delete(w.segIndex, seq)
		}
	}
	return removed
}

// ReadDecidedRange serves decided values from the WAL's sealed segments —
// the disk-backed catch-up tier between the in-memory log (truncated at the
// newest snapshot cut) and full state transfer. It consults the per-segment
// slot index to pick only the sealed segments whose [min,max] record range
// intersects [from, to), scans those in append order, folding
// RecAccept/RecDecide/RecState records into the latest decided value per
// slot, and returns the contiguous decided prefix starting exactly at from,
// capped at maxEntries values. ok is false when the retention window does
// not reach down to from (the requester needs a snapshot); a
// shorter-than-requested prefix with ok=true is served and the requester
// pages through the rest.
//
// Cost: fileMu is held only for the index lookup — a map scan, no I/O — so
// a cold catch-up read never stalls the Syncer's group-commit fsync loop.
// The file reads and CRC scans run outside the lock; if a concurrent
// checkpoint garbage-collects a chosen segment out from under the read (the
// file vanishes, or a recycled file scans torn), the read reports ok=false
// and the requester falls back to snapshot transfer — the same answer it
// would get for any below-retention range.
func (w *WAL) ReadDecidedRange(from, to wire.InstanceID, maxEntries int) ([]wire.DecidedValue, bool) {
	if to <= from {
		return nil, true
	}
	if maxEntries > 0 && to-from > wire.InstanceID(maxEntries) {
		to = from + wire.InstanceID(maxEntries)
	}
	w.fileMu.Lock()
	var seqs []int
	for seq, rng := range w.segIndex {
		if seq >= w.seq || seq < w.retainSeq {
			continue // unsealed (the Syncer's alone) or GC'd
		}
		if rng.empty() || rng.max < int64(from) || rng.min >= int64(to) {
			continue // cannot intersect [from, to): skip without touching it
		}
		seqs = append(seqs, seq)
	}
	w.fileMu.Unlock()
	sort.Ints(seqs)                         // fold order must be append order
	acc := make(map[wire.InstanceID][]byte) // latest accepted value per slot
	dec := make(map[wire.InstanceID][]byte) // decided value per slot
	inRange := func(id wire.InstanceID) bool { return id >= from && id < to }
	for _, seq := range seqs {
		data, err := w.fs.ReadFile(filepath.Join(w.dir, segName(seq)))
		if err != nil {
			return nil, false // GC'd or recycled since the lookup; fall back
		}
		recs, _, intact := scanSegment(data)
		if !intact {
			return nil, false // sealed segments always scan intact; give up
		}
		for _, rec := range recs {
			if !inRange(rec.ID) {
				continue
			}
			switch rec.Type {
			case RecAccept:
				acc[rec.ID] = rec.Value
			case RecDecide:
				if rec.HasValue {
					dec[rec.ID] = rec.Value
				} else if v, ok := acc[rec.ID]; ok {
					dec[rec.ID] = v // watermark decide: value rode the accept
				}
			case RecState:
				if rec.Decided {
					dec[rec.ID] = rec.Value
				} else {
					acc[rec.ID] = rec.Value
				}
			}
		}
	}
	var out []wire.DecidedValue
	for id := from; id < to; id++ {
		v, ok := dec[id]
		if !ok {
			break
		}
		out = append(out, wire.DecidedValue{ID: id, Value: v})
	}
	if len(out) == 0 {
		return nil, false // cannot serve `from`: below retention (or a hole)
	}
	return out, true
}

// Sync forces a full drain and fsync (tests, graceful shutdown).
func (w *WAL) Sync() {
	w.syncNow()
}

// Close drains pending appends, stops the Syncer, and closes the current
// segment. The WAL must not be appended to afterwards.
func (w *WAL) Close() {
	w.fileMu.Lock()
	already := w.closed
	w.closed = true
	w.fileMu.Unlock()
	if already {
		return
	}
	if w.policy != SyncAlways {
		close(w.stopc)
		w.wg.Wait()
	} else {
		w.syncNow()
	}
	if w.pipeline != nil {
		w.pipeline.stop()
	}
	w.fileMu.Lock()
	defer w.fileMu.Unlock()
	if w.f == nil {
		return
	}
	if w.Failed() != nil {
		// Fail-stopped: fsyncing or trimming now could only fabricate
		// durability that was already denied.
		_ = w.f.Close() // best-effort: the replica is abandoning the handle
		w.f, w.prealloc = nil, false
		return
	}
	// Seal on the way out: a cleanly closed preallocated segment is trimmed
	// to its records, so reopening finds only intact bytes. Close errors can
	// carry buffered write failures, so both latch the fault for any
	// late Failed() observer.
	if err := w.sealCurrentLocked(); err != nil {
		w.fail("seal "+w.f.Name(), err)
		_ = w.f.Close() // best-effort: fault latched, handle abandoned
	} else if err := w.f.Close(); err != nil {
		w.fail("close "+w.f.Name(), err)
	}
	w.f, w.prealloc = nil, false
	w.segIndex[w.seq] = w.curRange
	w.curRange = emptyRange
}
