package wal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"gosmr/internal/wire"
)

// open is a test helper wrapping Open.
func open(t *testing.T, dir string, policy SyncPolicy, segBytes int64) (*WAL, []Record) {
	t.Helper()
	w, recs, err := Open(Options{Dir: dir, Policy: policy, SegmentBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	return w, recs
}

// sample exercises every record type.
func sample() []Record {
	return []Record{
		{Type: RecView, View: 3},
		{Type: RecAccept, ID: 7, View: 3, Value: []byte("batch-7")},
		{Type: RecDecide, ID: 7},                                      // watermark decide: no value
		{Type: RecDecide, ID: 8, HasValue: true, Value: []byte("b8")}, // explicit value
		{Type: RecAccept, ID: 9, View: 4, Value: nil},                 // empty value
		{Type: RecCut, ID: 5},
		{Type: RecState, ID: 9, View: 4, Decided: true, Value: []byte("st")},
	}
}

// normalize maps empty and nil Value to nil for comparison.
func normalize(rs []Record) []Record {
	out := make([]Record, len(rs))
	copy(out, rs)
	for i := range out {
		if len(out[i].Value) == 0 {
			out[i].Value = nil
		}
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncBatch, SyncNone} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			w, recs := open(t, dir, policy, 0)
			if len(recs) != 0 {
				t.Fatalf("fresh WAL replayed %d records", len(recs))
			}
			want := sample()
			for _, r := range want {
				w.Append(r)
			}
			w.Close()

			w2, got := open(t, dir, policy, 0)
			defer w2.Close()
			if !reflect.DeepEqual(normalize(got), normalize(want)) {
				t.Errorf("replay mismatch:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

func TestReplayAcrossReopens(t *testing.T) {
	dir := t.TempDir()
	var want []Record
	for round := range 3 {
		w, got := open(t, dir, SyncBatch, 0)
		if !reflect.DeepEqual(normalize(got), normalize(want)) {
			t.Fatalf("round %d: replay mismatch (%d vs %d records)", round, len(got), len(want))
		}
		rec := Record{Type: RecAccept, ID: wire.InstanceID(round), View: 1, Value: []byte{byte(round)}}
		w.Append(rec)
		want = append(want, rec)
		w.Close()
	}
}

func TestSegmentRollover(t *testing.T) {
	dir := t.TempDir()
	w, _ := open(t, dir, SyncBatch, 256) // tiny segments force rolls
	var want []Record
	val := make([]byte, 100)
	for i := range 20 {
		rec := Record{Type: RecAccept, ID: wire.InstanceID(i), View: 1, Value: val}
		w.Append(rec)
		want = append(want, rec)
		w.Sync() // drain each record so rolls happen between records
	}
	w.Close()

	segs, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Errorf("expected multiple segments, got %d", len(segs))
	}
	w2, got := open(t, dir, SyncBatch, 256)
	defer w2.Close()
	if !reflect.DeepEqual(normalize(got), normalize(want)) {
		t.Errorf("rollover replay mismatch: got %d records, want %d", len(got), len(want))
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, _ := open(t, dir, SyncBatch, 0)
	want := sample()
	for _, r := range want {
		w.Append(r)
	}
	w.Close()

	// Tear the tail: append garbage, then half of a "record".
	path := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var torn [12]byte
	binary.LittleEndian.PutUint32(torn[4:], 100) // claims 100-byte payload, absent
	if _, err := f.Write(torn[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, got := open(t, dir, SyncBatch, 0)
	if !reflect.DeepEqual(normalize(got), normalize(want)) {
		t.Fatalf("torn-tail replay lost records: got %d, want %d", len(got), len(want))
	}
	// The torn bytes are gone: appending and reopening stays consistent.
	extra := Record{Type: RecView, View: 9}
	w2.Append(extra)
	w2.Close()
	w3, got3 := open(t, dir, SyncBatch, 0)
	defer w3.Close()
	if !reflect.DeepEqual(normalize(got3), normalize(append(want, extra))) {
		t.Errorf("append after torn-tail repair diverged")
	}
}

func TestCorruptLengthPrefixRejected(t *testing.T) {
	// A record claiming a huge payload must be rejected by bounds checks
	// before any allocation (the untrusted-length guard).
	var b []byte
	b = append(b, 0, 0, 0, 0)
	b = binary.LittleEndian.AppendUint32(b, 0xFFFFFF00)
	b = append(b, byte(RecAccept))
	if _, _, ok := decodeRecord(b); ok {
		t.Error("decodeRecord accepted an absurd length prefix")
	}
	// Flipped bit fails the checksum.
	enc := encodeRecord(nil, Record{Type: RecAccept, ID: 1, View: 1, Value: []byte("v")})
	enc[len(enc)-1] ^= 0x01
	if _, _, ok := decodeRecord(enc); ok {
		t.Error("decodeRecord accepted a corrupt payload")
	}
}

func TestCheckpointCompactsSegments(t *testing.T) {
	dir := t.TempDir()
	w, _ := open(t, dir, SyncBatch, 0)
	for i := range 50 {
		w.Append(Record{Type: RecAccept, ID: wire.InstanceID(i), View: 1, Value: []byte("x")})
		w.Append(Record{Type: RecDecide, ID: wire.InstanceID(i)})
	}
	states := []Record{
		{Type: RecState, ID: 40, View: 1, Decided: true, Value: []byte("x")},
		{Type: RecState, ID: 41, View: 2, Value: []byte("y")},
	}
	w.Checkpoint(40, states)
	w.Append(Record{Type: RecAccept, ID: 42, View: 2, Value: []byte("z")})
	w.Close()

	segs, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Errorf("checkpoint left %d segments, want 1", len(segs))
	}
	w2, got := open(t, dir, SyncBatch, 0)
	defer w2.Close()
	want := append([]Record{{Type: RecCut, ID: 40}}, states...)
	want = append(want, Record{Type: RecAccept, ID: 42, View: 2, Value: []byte("z")})
	if !reflect.DeepEqual(normalize(got), normalize(want)) {
		t.Errorf("post-checkpoint replay:\n got %+v\nwant %+v", got, want)
	}
}

func TestBatchDurableWatermarkAndCallback(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	var calls []int64
	w, _, err := Open(Options{Dir: dir, Policy: SyncBatch, OnDurable: func(lsn int64) {
		mu.Lock()
		calls = append(calls, lsn)
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	w.Append(Record{Type: RecView, View: 1})
	lsn := w.AppendedLSN()
	if lsn <= 0 {
		t.Fatal("AppendedLSN did not advance")
	}
	deadline := time.Now().Add(2 * time.Second)
	for w.DurableLSN() < lsn && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := w.DurableLSN(); got < lsn {
		t.Fatalf("durable watermark %d never reached appended %d", got, lsn)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(calls) == 0 || calls[len(calls)-1] < lsn {
		t.Errorf("OnDurable calls %v never covered %d", calls, lsn)
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"": SyncBatch, "batch": SyncBatch, "always": SyncAlways, "none": SyncNone, "NONE": SyncNone,
	} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted bogus policy")
	}
}

// TestCorruptNonFinalSegmentRefusesOpen asserts corruption below later
// segments — which cannot be a crash artifact, since a segment is fsynced
// before its successor exists — aborts recovery instead of silently
// rebooting the acceptor without fsynced promises peers already observed.
func TestCorruptNonFinalSegmentRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	w, _ := open(t, dir, SyncBatch, 256)
	val := make([]byte, 100)
	for i := range 10 {
		w.Append(Record{Type: RecAccept, ID: wire.InstanceID(i), View: 1, Value: val})
		w.Sync()
	}
	w.Close()
	seqs, err := w.segments()
	if err != nil || len(seqs) < 2 {
		t.Fatalf("need >= 2 segments, got %v (%v)", seqs, err)
	}
	// Flip a byte inside the FIRST segment's records.
	path := filepath.Join(dir, segName(seqs[0]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir, Policy: SyncBatch, SegmentBytes: 256}); err == nil {
		t.Fatal("Open succeeded on a WAL with a corrupt non-final segment")
	}
}
