package wal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"gosmr/internal/wire"
)

// open is a test helper wrapping Open.
func open(t *testing.T, dir string, policy SyncPolicy, segBytes int64) (*WAL, []Record) {
	t.Helper()
	w, recs, err := Open(Options{Dir: dir, Policy: policy, SegmentBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	return w, recs
}

// sample exercises every record type.
func sample() []Record {
	return []Record{
		{Type: RecView, View: 3},
		{Type: RecAccept, ID: 7, View: 3, Value: []byte("batch-7")},
		{Type: RecDecide, ID: 7},                                      // watermark decide: no value
		{Type: RecDecide, ID: 8, HasValue: true, Value: []byte("b8")}, // explicit value
		{Type: RecAccept, ID: 9, View: 4, Value: nil},                 // empty value
		{Type: RecCut, ID: 5},
		{Type: RecState, ID: 9, View: 4, Decided: true, Value: []byte("st")},
	}
}

// segFiles lists the wal-*.seg files in dir (pipeline spares excluded).
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		var seq int
		// Round-trip the name: Sscanf alone prefix-matches, which would
		// count quarantined wal-*.seg.corrupt files as live segments.
		if _, err := fmt.Sscanf(e.Name(), "wal-%08d.seg", &seq); err == nil && e.Name() == segName(seq) {
			segs = append(segs, e.Name())
		}
	}
	return segs
}

// normalize maps empty and nil Value to nil for comparison.
func normalize(rs []Record) []Record {
	out := make([]Record, len(rs))
	copy(out, rs)
	for i := range out {
		if len(out[i].Value) == 0 {
			out[i].Value = nil
		}
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncBatch, SyncNone} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			w, recs := open(t, dir, policy, 0)
			if len(recs) != 0 {
				t.Fatalf("fresh WAL replayed %d records", len(recs))
			}
			want := sample()
			for _, r := range want {
				w.Append(r)
			}
			w.Close()

			w2, got := open(t, dir, policy, 0)
			defer w2.Close()
			if !reflect.DeepEqual(normalize(got), normalize(want)) {
				t.Errorf("replay mismatch:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

func TestReplayAcrossReopens(t *testing.T) {
	dir := t.TempDir()
	var want []Record
	for round := range 3 {
		w, got := open(t, dir, SyncBatch, 0)
		if !reflect.DeepEqual(normalize(got), normalize(want)) {
			t.Fatalf("round %d: replay mismatch (%d vs %d records)", round, len(got), len(want))
		}
		rec := Record{Type: RecAccept, ID: wire.InstanceID(round), View: 1, Value: []byte{byte(round)}}
		w.Append(rec)
		want = append(want, rec)
		w.Close()
	}
}

func TestSegmentRollover(t *testing.T) {
	dir := t.TempDir()
	w, _ := open(t, dir, SyncBatch, 256) // tiny segments force rolls
	var want []Record
	val := make([]byte, 100)
	for i := range 20 {
		rec := Record{Type: RecAccept, ID: wire.InstanceID(i), View: 1, Value: val}
		w.Append(rec)
		want = append(want, rec)
		w.Sync() // drain each record so rolls happen between records
	}
	w.Close()

	if segs := segFiles(t, dir); len(segs) < 3 {
		t.Errorf("expected multiple segments, got %d", len(segs))
	}
	w2, got := open(t, dir, SyncBatch, 256)
	defer w2.Close()
	if !reflect.DeepEqual(normalize(got), normalize(want)) {
		t.Errorf("rollover replay mismatch: got %d records, want %d", len(got), len(want))
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, _ := open(t, dir, SyncBatch, 0)
	want := sample()
	for _, r := range want {
		w.Append(r)
	}
	w.Close()

	// Tear the tail: append garbage, then half of a "record".
	path := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var torn [12]byte
	binary.LittleEndian.PutUint32(torn[4:], 100) // claims 100-byte payload, absent
	if _, err := f.Write(torn[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, got := open(t, dir, SyncBatch, 0)
	if !reflect.DeepEqual(normalize(got), normalize(want)) {
		t.Fatalf("torn-tail replay lost records: got %d, want %d", len(got), len(want))
	}
	// The torn bytes are gone: appending and reopening stays consistent.
	extra := Record{Type: RecView, View: 9}
	w2.Append(extra)
	w2.Close()
	w3, got3 := open(t, dir, SyncBatch, 0)
	defer w3.Close()
	if !reflect.DeepEqual(normalize(got3), normalize(append(want, extra))) {
		t.Errorf("append after torn-tail repair diverged")
	}
}

func TestCorruptLengthPrefixRejected(t *testing.T) {
	// A record claiming a huge payload must be rejected by bounds checks
	// before any allocation (the untrusted-length guard).
	var b []byte
	b = append(b, 0, 0, 0, 0)
	b = binary.LittleEndian.AppendUint32(b, 0xFFFFFF00)
	b = append(b, byte(RecAccept))
	if _, _, ok := decodeRecord(b); ok {
		t.Error("decodeRecord accepted an absurd length prefix")
	}
	// Flipped bit fails the checksum.
	enc := encodeRecord(nil, Record{Type: RecAccept, ID: 1, View: 1, Value: []byte("v")})
	enc[len(enc)-1] ^= 0x01
	if _, _, ok := decodeRecord(enc); ok {
		t.Error("decodeRecord accepted a corrupt payload")
	}
}

// TestCheckpointCompactsSegments pins the retention policy: each checkpoint
// keeps one full previous checkpoint generation on disk (the cold range
// ReadDecidedRange serves to lagging peers) and deletes everything older, so
// disk usage stays bounded at roughly two generations.
func TestCheckpointCompactsSegments(t *testing.T) {
	dir := t.TempDir()
	w, _ := open(t, dir, SyncBatch, 0)
	for i := range 50 {
		w.Append(Record{Type: RecAccept, ID: wire.InstanceID(i), View: 1, Value: []byte("x")})
		w.Append(Record{Type: RecDecide, ID: wire.InstanceID(i)})
	}
	states := []Record{
		{Type: RecState, ID: 40, View: 1, Decided: true, Value: []byte("x")},
		{Type: RecState, ID: 41, View: 2, Value: []byte("y")},
	}
	w.Checkpoint(40, states)
	// The first checkpoint retains the pre-checkpoint segment: it is the
	// previous generation, and the disk must keep serving [0, 40) for
	// catch-up until the NEXT checkpoint supersedes it.
	if segs := segFiles(t, dir); len(segs) != 2 {
		t.Errorf("first checkpoint left %d segments, want 2 (previous generation retained): %v", len(segs), segs)
	}
	if vals, ok := w.ReadDecidedRange(0, 40, 1000); !ok || len(vals) != 40 {
		t.Errorf("previous generation not readable: ok=%v len=%d, want 40 decided values", ok, len(vals))
	}

	states2 := []Record{{Type: RecState, ID: 45, View: 2, Value: []byte("y")}}
	w.Checkpoint(45, states2)
	w.Append(Record{Type: RecAccept, ID: 46, View: 2, Value: []byte("z")})
	w.Close()

	// The second checkpoint drops everything below the first checkpoint's
	// segment: two generations remain (the first checkpoint's and the live
	// one).
	if segs := segFiles(t, dir); len(segs) != 2 {
		t.Errorf("second checkpoint left %d segments, want 2: %v", len(segs), segs)
	}
	w2, got := open(t, dir, SyncBatch, 0)
	defer w2.Close()
	want := append([]Record{{Type: RecCkpt, ID: 40}}, states...)
	want = append(want, Record{Type: RecCkpt, ID: 45})
	want = append(want, states2...)
	want = append(want, Record{Type: RecAccept, ID: 46, View: 2, Value: []byte("z")})
	if !reflect.DeepEqual(normalize(got), normalize(want)) {
		t.Errorf("post-checkpoint replay:\n got %+v\nwant %+v", got, want)
	}
}

// TestReadDecidedRange pins the disk-backed catch-up read path: decided
// values in sealed segments — explicit decides, watermark decides riding an
// earlier accept, and checkpoint RecState dumps — are served back as a
// contiguous prefix, capped at maxEntries, with ok=false exactly when the
// retention window cannot serve the start of the range.
func TestReadDecidedRange(t *testing.T) {
	dir := t.TempDir()
	w, _ := open(t, dir, SyncBatch, 0)
	defer w.Close()

	val := func(i int) []byte { return []byte(fmt.Sprintf("batch-%d", i)) }
	for i := range 10 {
		w.Append(Record{Type: RecAccept, ID: wire.InstanceID(i), View: 1, Value: val(i)})
		if i%2 == 0 {
			w.Append(Record{Type: RecDecide, ID: wire.InstanceID(i)}) // watermark decide
		} else {
			w.Append(Record{Type: RecDecide, ID: wire.InstanceID(i), HasValue: true, Value: val(i)})
		}
	}
	// Checkpoint at 8: slots 8..9 stay live and ride the RecState dump; the
	// pre-checkpoint segment is sealed and becomes the previous generation.
	states := []Record{
		{Type: RecState, ID: 8, View: 1, Decided: true, Value: val(8)},
		{Type: RecState, ID: 9, View: 1, Decided: true, Value: val(9)},
	}
	w.Checkpoint(8, states)

	vals, ok := w.ReadDecidedRange(2, 8, 100)
	if !ok || len(vals) != 6 {
		t.Fatalf("ReadDecidedRange(2,8) = %d values ok=%v, want 6 true", len(vals), ok)
	}
	for i, dv := range vals {
		want := wire.InstanceID(2 + i)
		if dv.ID != want || string(dv.Value) != string(val(int(want))) {
			t.Fatalf("value %d = (%d, %q), want (%d, %q)", i, dv.ID, dv.Value, want, val(int(want)))
		}
	}
	// The cap truncates to a shorter contiguous prefix, still ok.
	if vals, ok := w.ReadDecidedRange(0, 8, 3); !ok || len(vals) != 3 || vals[0].ID != 0 || vals[2].ID != 2 {
		t.Errorf("capped read = %+v ok=%v, want instances 0..2", vals, ok)
	}
	// After a second checkpoint the first generation is GC'd: instance 2 is
	// out of retention and the read reports it cannot serve the range.
	w.Checkpoint(10, nil)
	if _, ok := w.ReadDecidedRange(2, 8, 100); ok {
		t.Error("read below the retention window reported ok")
	}
	// But the previous (first-checkpoint) generation still serves its slots:
	// 8..9 were live in the RecState dump at cut 8.
	if vals, ok := w.ReadDecidedRange(8, 10, 100); !ok || len(vals) != 2 {
		t.Errorf("RecState-backed read = %+v ok=%v, want instances 8..9", vals, ok)
	}
	// An empty range is trivially served.
	if _, ok := w.ReadDecidedRange(5, 5, 100); !ok {
		t.Error("empty range not ok")
	}
}

// TestReadDecidedRangeSurvivesReopen pins that the cold-read path works on a
// reopened WAL (recovery replays the previous generation, and the ckptSeq
// retention boundary is rediscovered from the segment headers).
func TestReadDecidedRangeSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	w, _ := open(t, dir, SyncBatch, 0)
	for i := range 6 {
		w.Append(Record{Type: RecAccept, ID: wire.InstanceID(i), View: 1, Value: []byte{byte(i)}})
		w.Append(Record{Type: RecDecide, ID: wire.InstanceID(i)})
	}
	w.Checkpoint(6, nil)
	w.Close()

	w2, _ := open(t, dir, SyncBatch, 0)
	defer w2.Close()
	if vals, ok := w2.ReadDecidedRange(0, 6, 100); !ok || len(vals) != 6 {
		t.Fatalf("cold read after reopen = %d values ok=%v, want 6 true", len(vals), ok)
	}
	// The reopened WAL remembers the checkpoint boundary: its next
	// checkpoint must GC the pre-checkpoint generation, not retain it
	// forever.
	w2.Append(Record{Type: RecAccept, ID: 7, View: 1, Value: []byte("x")})
	w2.Checkpoint(7, nil)
	if _, ok := w2.ReadDecidedRange(0, 6, 100); ok {
		t.Error("generation below the reopened checkpoint boundary survived GC")
	}
}

func TestBatchDurableWatermarkAndCallback(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	var calls []int64
	w, _, err := Open(Options{Dir: dir, Policy: SyncBatch, OnDurable: func(lsn int64) {
		mu.Lock()
		calls = append(calls, lsn)
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	w.Append(Record{Type: RecView, View: 1})
	lsn := w.AppendedLSN()
	if lsn <= 0 {
		t.Fatal("AppendedLSN did not advance")
	}
	deadline := time.Now().Add(2 * time.Second)
	for w.DurableLSN() < lsn && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := w.DurableLSN(); got < lsn {
		t.Fatalf("durable watermark %d never reached appended %d", got, lsn)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(calls) == 0 || calls[len(calls)-1] < lsn {
		t.Errorf("OnDurable calls %v never covered %d", calls, lsn)
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"": SyncBatch, "batch": SyncBatch, "always": SyncAlways, "none": SyncNone, "NONE": SyncNone,
	} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted bogus policy")
	}
}

// TestCorruptNonFinalSegmentRefusesOpen asserts corruption below later
// segments — which cannot be a crash artifact, since a segment is fsynced
// before its successor exists — aborts recovery instead of silently
// rebooting the acceptor without fsynced promises peers already observed.
func TestCorruptNonFinalSegmentRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	w, _ := open(t, dir, SyncBatch, 256)
	val := make([]byte, 100)
	for i := range 10 {
		w.Append(Record{Type: RecAccept, ID: wire.InstanceID(i), View: 1, Value: val})
		w.Sync()
	}
	w.Close()
	seqs, err := w.segments()
	if err != nil || len(seqs) < 2 {
		t.Fatalf("need >= 2 segments, got %v (%v)", seqs, err)
	}
	// Flip a byte inside the FIRST segment's records.
	path := filepath.Join(dir, segName(seqs[0]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(Options{Dir: dir, Policy: SyncBatch, SegmentBytes: 256}); err == nil {
		t.Fatal("Open succeeded on a WAL with a corrupt non-final segment")
	}
}

// crashCopy snapshots dir into a fresh directory, byte for byte — the disk
// image an abrupt kill would leave (modulo lost page-cache writes, which the
// recycling design keeps out of the correctness envelope via fsynced zero
// fill). The WAL stays open; nothing is gracefully flushed.
func crashCopy(t *testing.T, dir string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// waitForSpare blocks until the preallocation pipeline has a prepared spare
// on disk, so a subsequent roll deterministically consumes it.
func waitForSpare(t *testing.T, dir string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if isSpareName(e.Name()) {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("pipeline never prepared a spare file")
}

// TestSegmentRecyclingAcrossCrashReopen is the PR's recycling acceptance
// test: roll across >= 3 recycled segments (checkpoints free files, the
// pipeline zeroes and reuses them), then crash-reopen from a raw copy of the
// directory and verify replay returns exactly the surviving records — the
// recycled files' previous lives must not resurrect a single record, even
// though the active file physically contains preallocated space past its
// logical tail.
func TestSegmentRecyclingAcrossCrashReopen(t *testing.T) {
	dir := t.TempDir()
	const segBytes = 4 << 10
	w, _ := open(t, dir, SyncBatch, segBytes)
	defer w.Close()

	val := make([]byte, 512)
	for i := range val {
		val[i] = byte(i) // distinctive non-zero stale bytes for old lives
	}
	// everWritten records every record this WAL ever journaled (keyed by
	// encoding): anything replay returns beyond this set is a resurrected
	// ghost from a recycled file's previous life.
	everWritten := map[string]bool{}
	note := func(rec Record) { everWritten[string(encodeRecord(nil, rec))] = true }

	recycledRolls := 0
	var lastCut wire.InstanceID
	id := wire.InstanceID(0)
	for round := 0; recycledRolls < 3 && round < 40; round++ {
		waitForSpare(t, dir)
		// Fill past the segment size to force at least one roll, which
		// consumes the prepared (possibly recycled) spare.
		for range (segBytes / len(val)) + 2 {
			rec := Record{Type: RecAccept, ID: id, View: 1, Value: val}
			w.Append(rec)
			note(rec)
			id++
		}
		w.Sync()
		w.fileMu.Lock()
		active := w.prealloc
		w.fileMu.Unlock()
		if active {
			recycledRolls++
		}
		// Checkpoint everything so far: frees segments below the previous
		// checkpoint into the recycle queue and starts a fresh
		// (pipeline-fed) segment.
		lastCut = id
		w.Checkpoint(lastCut, nil)
		note(Record{Type: RecCkpt, ID: lastCut})
	}
	if recycledRolls < 3 {
		t.Fatalf("only %d rolls landed in preallocated files", recycledRolls)
	}
	// A few more durable records on the (preallocated) active segment: the
	// exact tail a crash replay must reproduce.
	var tail []Record
	for range 3 {
		rec := Record{Type: RecAccept, ID: id, View: 2, Value: val}
		w.Append(rec)
		note(rec)
		tail = append(tail, rec)
		id++
	}
	w.Sync()

	// The active segment is preallocated: physically larger than its
	// logical content, with a guaranteed-zero tail.
	w.fileMu.Lock()
	path := filepath.Join(w.dir, segName(w.seq))
	logical := w.fileSize
	active := w.prealloc
	w.fileMu.Unlock()
	if !active {
		t.Fatal("active segment is not preallocated")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) <= logical {
		t.Fatalf("active segment %d bytes, want > logical %d (preallocated tail)", len(data), logical)
	}
	for i := logical; i < int64(len(data)); i++ {
		if data[i] != 0 {
			t.Fatalf("recycled segment has non-zero stale byte at %d: stale tails must be zeroed", i)
		}
	}

	// Crash: reopen from a raw copy of the directory (no graceful close).
	// Replay may legitimately include records from GC'd segments the
	// pipeline had not recycled yet (core recovery covers those through the
	// checkpoint's RecCut), but it must (a) never return a record this WAL
	// did not write — no resurrection from recycled files' previous lives —
	// and (b) reproduce the post-checkpoint tail exactly.
	crashDir := crashCopy(t, dir)
	w2, got, err := Open(Options{Dir: crashDir, Policy: SyncBatch, SegmentBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range got {
		if !everWritten[string(encodeRecord(nil, rec))] {
			t.Fatalf("replay record %d was never written (ghost from a recycled file): %+v", i, rec)
		}
	}
	lastCutIdx := -1
	for i, rec := range got {
		if rec.Type == RecCkpt && rec.ID == lastCut {
			lastCutIdx = i
		}
	}
	if lastCutIdx < 0 {
		t.Fatalf("replay lost the last checkpoint cut %d", lastCut)
	}
	if !reflect.DeepEqual(normalize(got[lastCutIdx+1:]), normalize(tail)) {
		t.Fatalf("post-checkpoint tail mismatch:\n got %d records\nwant %d records",
			len(got)-lastCutIdx-1, len(tail))
	}
	// The repaired WAL keeps working: append, close, reopen.
	extra := Record{Type: RecView, View: 9}
	w2.Append(extra)
	w2.Close()
	w3, got3, err := Open(Options{Dir: crashDir, Policy: SyncBatch, SegmentBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if len(got3) != len(got)+1 || !reflect.DeepEqual(normalize(got3[:len(got)]), normalize(got)) ||
		!reflect.DeepEqual(normalize(got3[len(got):]), normalize([]Record{extra})) {
		t.Errorf("append after crash-reopen diverged (%d vs %d records)", len(got3), len(got)+1)
	}
}

// TestSealedRecycledSegmentsScanIntact asserts rolls trim the preallocated
// padding when sealing, so non-final segments keep the strict
// intact-or-refuse corruption check.
func TestSealedRecycledSegmentsScanIntact(t *testing.T) {
	dir := t.TempDir()
	const segBytes = 2 << 10
	w, _ := open(t, dir, SyncBatch, segBytes)
	val := make([]byte, 256)
	waitForSpare(t, dir)
	var want []Record
	for i := range 30 { // enough to roll several times
		rec := Record{Type: RecAccept, ID: wire.InstanceID(i), View: 1, Value: val}
		w.Append(rec)
		want = append(want, rec)
		w.Sync()
	}
	w.fileMu.Lock()
	cur := w.seq
	w.fileMu.Unlock()
	if cur < 3 {
		t.Fatalf("expected >= 3 segments, at %d", cur)
	}
	// Every sealed segment must be exactly its records: intact scan, no
	// zero padding left behind.
	for _, name := range segFiles(t, dir) {
		var seq int
		fmt.Sscanf(name, "wal-%08d.seg", &seq)
		if seq == cur {
			continue // active segment may carry preallocated padding
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if _, valid, intact := scanSegment(data); !intact {
			t.Errorf("sealed segment %s not intact (valid prefix %d of %d)", name, valid, len(data))
		}
	}
	w.Close()
	w2, got := open(t, dir, SyncBatch, segBytes)
	defer w2.Close()
	if !reflect.DeepEqual(normalize(got), normalize(want)) {
		t.Errorf("replay across recycled rolls mismatch: got %d records, want %d", len(got), len(want))
	}
}

// TestPreallocDisabled pins the opt-out: negative PreallocSpares keeps the
// plain growing-file behavior with no pipeline and no spare files.
func TestPreallocDisabled(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, Policy: SyncBatch, SegmentBytes: 256, PreallocSpares: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range 10 {
		w.Append(Record{Type: RecAccept, ID: wire.InstanceID(i), View: 1, Value: make([]byte, 100)})
		w.Sync()
	}
	w.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if isSpareName(e.Name()) {
			t.Errorf("preallocation disabled but spare %s exists", e.Name())
		}
	}
	w2, got := open(t, dir, SyncBatch, 256)
	defer w2.Close()
	if len(got) != 10 {
		t.Errorf("replay returned %d records, want 10", len(got))
	}
}

// TestStaleSparesRemovedAtOpen asserts leftover spare files — whose zero
// fill may not have survived a crash — are discarded at Open rather than
// ever renamed into segments.
func TestStaleSparesRemovedAtOpen(t *testing.T) {
	dir := t.TempDir()
	// A "spare" full of stale, CRC-valid-looking bytes from a previous life.
	stale := encodeRecord(nil, Record{Type: RecAccept, ID: 999, View: 9, Value: []byte("ghost")})
	if err := os.WriteFile(filepath.Join(dir, spareName(0)), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	w, recs := open(t, dir, SyncBatch, 0)
	defer w.Close()
	if len(recs) != 0 {
		t.Fatalf("stale spare leaked %d records into replay", len(recs))
	}
	if _, err := os.Stat(filepath.Join(dir, spareName(0))); !os.IsNotExist(err) {
		t.Error("stale spare file survived Open")
	}
}

// TestAdaptiveSyncInterval pins the adaptive group-commit floor mapping:
// spacing = ewma/share clamped to [DefaultMinSyncInterval,
// MaxAdaptiveSyncInterval], with the floor as the no-observation default.
func TestAdaptiveSyncInterval(t *testing.T) {
	cases := []struct {
		ewma  time.Duration
		share float64
		want  time.Duration
	}{
		{0, 0.5, DefaultMinSyncInterval},                       // nothing observed yet
		{100 * time.Microsecond, 0.5, DefaultMinSyncInterval},  // NVMe: clamped to floor
		{250 * time.Microsecond, 0.5, DefaultMinSyncInterval},  // exactly the floor
		{2 * time.Millisecond, 0.5, 4 * time.Millisecond},      // EBS-ish: backs off
		{5 * time.Millisecond, 0.25, MaxAdaptiveSyncInterval},  // slow disk, small share: capped
		{100 * time.Millisecond, 0.5, MaxAdaptiveSyncInterval}, // pathological: capped
		{1 * time.Millisecond, 1.0, 1 * time.Millisecond},      // full-core budget
	}
	for _, c := range cases {
		if got := adaptiveSyncInterval(c.ewma, c.share); got != c.want {
			t.Errorf("adaptiveSyncInterval(%v, %v) = %v, want %v", c.ewma, c.share, got, c.want)
		}
	}
}

// TestSyncIntervalModes asserts the three MinSyncInterval modes: unset
// adapts from measured fsync latency, positive is a fixed override,
// negative disables the floor.
func TestSyncIntervalModes(t *testing.T) {
	w, _, err := Open(Options{Dir: t.TempDir(), Policy: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.SyncInterval(); got != DefaultMinSyncInterval {
		t.Errorf("adaptive interval before any fsync = %v, want floor %v", got, DefaultMinSyncInterval)
	}
	if got := w.FsyncEWMA(); got != 0 {
		t.Errorf("FsyncEWMA before any fsync = %v, want 0", got)
	}
	w.Append(Record{Type: RecAccept, ID: 1, View: 1, Value: []byte("x")})
	w.Sync()
	if got := w.FsyncEWMA(); got <= 0 {
		t.Errorf("FsyncEWMA after a sync = %v, want > 0", got)
	}
	iv := w.SyncInterval()
	if iv < DefaultMinSyncInterval || iv > MaxAdaptiveSyncInterval {
		t.Errorf("adaptive interval %v outside [%v, %v]", iv, DefaultMinSyncInterval, MaxAdaptiveSyncInterval)
	}
	w.Close()

	fixed, _, err := Open(Options{Dir: t.TempDir(), Policy: SyncBatch, MinSyncInterval: 3 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	fixed.Append(Record{Type: RecAccept, ID: 1, View: 1, Value: []byte("x")})
	fixed.Sync()
	if got := fixed.SyncInterval(); got != 3*time.Millisecond {
		t.Errorf("fixed override interval = %v, want 3ms regardless of fsync latency", got)
	}
	fixed.Close()

	off, _, err := Open(Options{Dir: t.TempDir(), Policy: SyncBatch, MinSyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := off.SyncInterval(); got > 0 {
		t.Errorf("disabled floor interval = %v, want <= 0", got)
	}
	off.Close()
}

// fillGeneration appends accept+decide pairs for ids [from, to).
func fillGeneration(w *WAL, from, to int) {
	for i := from; i < to; i++ {
		w.Append(Record{Type: RecAccept, ID: wire.InstanceID(i), View: 1, Value: []byte("v")})
		w.Append(Record{Type: RecDecide, ID: wire.InstanceID(i)})
	}
	w.Sync()
}

// TestRetainCheckpointsKeepsGenerations pins the generations knob: with
// RetainCheckpoints=2 the catch-up window reaches two checkpoint
// generations below the newest cut, where the default (1) serves only one.
func TestRetainCheckpointsKeepsGenerations(t *testing.T) {
	for _, c := range []struct {
		retain   int
		wantSegs int
		deepOK   bool // can [10, 20) still be served after 3 checkpoints?
	}{
		{0, 2, false}, // 0 takes the default of 1
		{1, 2, false},
		{2, 3, true},
	} {
		dir := t.TempDir()
		w, _, err := Open(Options{Dir: dir, Policy: SyncBatch, RetainCheckpoints: c.retain})
		if err != nil {
			t.Fatal(err)
		}
		fillGeneration(w, 0, 10)
		w.Checkpoint(10, nil)
		fillGeneration(w, 10, 20)
		w.Checkpoint(20, nil)
		fillGeneration(w, 20, 30)
		w.Checkpoint(30, nil)
		vals, ok := w.ReadDecidedRange(10, 20, 1000)
		if gotOK := ok && len(vals) == 10; gotOK != c.deepOK {
			t.Errorf("retain=%d: read of generation-2 range ok=%v len=%d, want served=%v", c.retain, ok, len(vals), c.deepOK)
		}
		// The newest previous generation is always served.
		if vals, ok := w.ReadDecidedRange(20, 30, 1000); !ok || len(vals) != 10 {
			t.Errorf("retain=%d: newest previous generation unreadable: ok=%v len=%d", c.retain, ok, len(vals))
		}
		// Close first: a GC'd segment may linger under its name until the
		// recycle pipeline (stopped by Close) processes it.
		w.Close()
		if segs := segFiles(t, dir); len(segs) != c.wantSegs {
			t.Errorf("retain=%d: %d segments on disk, want %d: %v", c.retain, len(segs), c.wantSegs, segs)
		}
	}
}

// TestRetainBytesExtendsRetention pins the byte-budget knob: a large
// RetainBytes keeps segments below the generation floor alive — deep
// catch-up served from disk — while a tiny budget degrades to
// generations-only retention, never below the generation guarantee.
func TestRetainBytesExtendsRetention(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, Policy: SyncBatch, RetainBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	fillGeneration(w, 0, 10)
	w.Checkpoint(10, nil)
	fillGeneration(w, 10, 20)
	w.Checkpoint(20, nil)
	fillGeneration(w, 20, 30)
	w.Checkpoint(30, nil)
	// Budget is effectively unbounded: every generation survives.
	if vals, ok := w.ReadDecidedRange(0, 30, 1000); !ok || len(vals) != 30 {
		t.Errorf("deep catch-up read ok=%v len=%d, want 30 values from slot 0", ok, len(vals))
	}
	w.Close()

	// Replay rebuilds the generation ladder: another checkpoint after
	// reopen must still honor the byte budget.
	w2, _, err := Open(Options{Dir: dir, Policy: SyncBatch, RetainBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	fillGeneration(w2, 30, 40)
	w2.Checkpoint(40, nil)
	if vals, ok := w2.ReadDecidedRange(0, 40, 1000); !ok || len(vals) != 40 {
		t.Errorf("post-reopen deep read ok=%v len=%d, want 40", ok, len(vals))
	}
	w2.Close()

	// A budget too small to cover anything extra degrades to the
	// generation guarantee (identical to RetainBytes=0).
	dir2 := t.TempDir()
	w3, _, err := Open(Options{Dir: dir2, Policy: SyncBatch, RetainBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	fillGeneration(w3, 0, 10)
	w3.Checkpoint(10, nil)
	fillGeneration(w3, 10, 20)
	w3.Checkpoint(20, nil)
	fillGeneration(w3, 20, 30)
	w3.Checkpoint(30, nil)
	if vals, ok := w3.ReadDecidedRange(20, 30, 1000); !ok || len(vals) != 10 {
		t.Errorf("generation guarantee broken under tiny budget: ok=%v len=%d", ok, len(vals))
	}
	w3.Close() // flush the recycle pipeline before counting segments
	if segs := segFiles(t, dir2); len(segs) != 2 {
		t.Errorf("tiny budget left %d segments, want 2 (generation guarantee only): %v", len(segs), segs)
	}
}
