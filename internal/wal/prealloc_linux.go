//go:build linux

package wal

import (
	"os"
	"syscall"
)

// preallocate reserves size bytes for f and extends it to that length; the
// unwritten range reads as zeros. fallocate allocates real blocks — so the
// steady-state fsync loop never waits on block allocation — with a sparse
// fallback for filesystems that do not support it.
func preallocate(f *os.File, size int64) error {
	for {
		err := syscall.Fallocate(int(f.Fd()), 0, 0, size)
		switch err {
		case nil:
			return nil
		case syscall.EINTR:
			continue
		default:
			return f.Truncate(size)
		}
	}
}
