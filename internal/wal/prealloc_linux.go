//go:build linux

package wal

import (
	"syscall"

	"gosmr/internal/vfs"
)

// preallocate reserves size bytes for f and extends it to that length; the
// unwritten range reads as zeros. fallocate allocates real blocks — so the
// steady-state fsync loop never waits on block allocation — with a sparse
// fallback for filesystems that do not support it and for injected
// filesystems whose files carry no descriptor (correctness — zero reads,
// crash safety — is identical either way).
func preallocate(f vfs.File, size int64) error {
	fd, ok := f.(interface{ Fd() uintptr })
	if !ok {
		return f.Truncate(size)
	}
	for {
		err := syscall.Fallocate(int(fd.Fd()), 0, 0, size)
		switch err {
		case nil:
			return nil
		case syscall.EINTR:
			continue
		default:
			return f.Truncate(size)
		}
	}
}
