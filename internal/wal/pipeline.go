package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gosmr/internal/vfs"
)

// filePipeline prepares the next segment file ahead of time, off the fsync
// path (the etcd wal.filePipeline idea): while the WAL appends to segment N,
// a background goroutine keeps segment N+1's file ready — preallocated to
// the segment size and guaranteed zero-filled — so a roll is a rename plus a
// header write instead of create + block allocation inside the group-commit
// loop. Files freed by Checkpoint are recycled into spares: their blocks are
// released and reallocated (Truncate(0) + preallocate), which both reuses
// the GC'd inode and — critically — guarantees the recycled file reads as
// zeros past whatever the new incarnation writes. Replay relies on that: a
// scan of the active segment stops at the zero tail, so stale records from
// the file's previous life can never resurrect.
//
// The pipeline is strictly an optimization: if it falls behind (or died on
// a disk error) the roll falls back to the direct-create path.
type filePipeline struct {
	fs   vfs.FS
	dir  string
	size int64
	sync bool // fsync prepared spares (off under SyncNone)

	recycle chan string // GC'd segment paths offered by Checkpoint
	ready   chan string // prepared spare paths, consumed by rollLocked
	stopc   chan struct{}
	done    chan struct{}
	n       int // spare name counter
}

// spareName formats a prepared-file name. The ".tmp" suffix keeps spares
// invisible to the segment scan; Open removes leftovers (their preparation
// state is unknown after a crash).
func spareName(n int) string { return fmt.Sprintf("spare-%d.tmp", n) }

// isSpareName reports whether a directory entry is a pipeline spare.
func isSpareName(name string) bool {
	return strings.HasPrefix(name, "spare-") && strings.HasSuffix(name, ".tmp")
}

// newFilePipeline starts the preparation goroutine with room for `spares`
// ready files (the "create N+1 ahead" depth).
func newFilePipeline(fs vfs.FS, dir string, size int64, spares int, sync bool) *filePipeline {
	p := &filePipeline{
		fs:      fs,
		dir:     dir,
		size:    size,
		sync:    sync,
		recycle: make(chan string, spares+1),
		ready:   make(chan string, spares),
		stopc:   make(chan struct{}),
		done:    make(chan struct{}),
	}
	go p.run()
	return p
}

// run keeps the ready channel stocked until stopped.
func (p *filePipeline) run() {
	defer close(p.done)
	for {
		path, err := p.prepareOne()
		if err != nil {
			// Disk trouble preparing ahead is not fatal: rolls fall back to
			// direct creation, which reports errors where they matter.
			return
		}
		select {
		case p.ready <- path:
		case <-p.stopc:
			// best-effort: Open discards leftover spares at next boot.
			_ = p.fs.Remove(path)
			return
		}
	}
}

// prepareOne produces one zeroed, preallocated spare — recycling a GC'd
// segment when one is queued, creating a fresh file otherwise.
func (p *filePipeline) prepareOne() (string, error) {
	var src string
	select {
	case src = <-p.recycle:
	case <-p.stopc:
		return "", os.ErrClosed
	default:
	}
	spare := filepath.Join(p.dir, spareName(p.n))
	p.n++
	if src != "" {
		// Reuse the GC'd file's inode. A concurrent second Checkpoint may
		// have removed it already; fall through to plain creation then.
		if err := p.fs.Rename(src, spare); err != nil {
			src = ""
		}
	}
	f, err := p.fs.OpenFile(spare, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return "", err
	}
	// Discard any previous contents, then preallocate: the resulting file
	// reads as zeros everywhere it has not been rewritten, even after a
	// crash (truncation and block allocation are journaled metadata).
	if err := f.Truncate(0); err != nil {
		_ = f.Close() // best-effort: the failed spare is abandoned
		return "", err
	}
	if err := preallocate(f, p.size); err != nil {
		_ = f.Close() // best-effort: the failed spare is abandoned
		return "", err
	}
	if p.sync {
		if err := f.Sync(); err != nil {
			_ = f.Close() // best-effort: the failed spare is abandoned
			return "", err
		}
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return spare, nil
}

// take returns a prepared spare path if one is ready (never blocks the
// caller — the Protocol thread's fsync loop).
func (p *filePipeline) take() (string, bool) {
	select {
	case path := <-p.ready:
		return path, true
	default:
		return "", false
	}
}

// offerRecycle queues a GC'd segment for reuse; false means the queue is
// full and the caller should just remove the file.
func (p *filePipeline) offerRecycle(path string) bool {
	select {
	case p.recycle <- path:
		return true
	default:
		return false
	}
}

// stop shuts the pipeline down and removes files it still owns: prepared
// spares (unconsumed) and recycled-but-unprocessed segments.
func (p *filePipeline) stop() {
	close(p.stopc)
	<-p.done
	for {
		select {
		case path := <-p.ready:
			// best-effort: unconsumed spares are re-dropped at next Open.
			_ = p.fs.Remove(path)
		case path := <-p.recycle:
			// best-effort: an unprocessed recycled segment is below every
			// checkpoint cut; replay covers it idempotently.
			_ = p.fs.Remove(path)
		default:
			return
		}
	}
}
