package wal

import (
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"

	"gosmr/internal/vfs"
	"gosmr/internal/wire"
)

// openFault opens a WAL over a scripted FaultFS with the deterministic
// direct-create roll path (no preallocation pipeline) and an OnFault
// counter.
func openFault(t *testing.T, dir string, policy SyncPolicy, fs vfs.FS, faults *atomic.Int32) *WAL {
	t.Helper()
	w, recs, err := Open(Options{
		Dir:            dir,
		Policy:         policy,
		PreallocSpares: -1,
		FS:             fs,
		OnFault: func(error) {
			if faults != nil {
				faults.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh WAL replayed %d records", len(recs))
	}
	return w
}

// TestFsyncFailureFailStops pins the fsyncgate policy: the first failed
// fsync on the append path permanently fail-stops the WAL — the durable
// watermark freezes, later appends are ignored, OnFault fires exactly once
// — even though the underlying fault was transient and a retried fsync
// would have "succeeded".
func TestFsyncFailureFailStops(t *testing.T) {
	dir := t.TempDir()
	fs := vfs.NewFaultFS(nil).Fail(vfs.Rule{Op: vfs.OpSync, Path: ".seg", Nth: 2})
	var faults atomic.Int32
	w := openFault(t, dir, SyncAlways, fs, &faults)
	defer w.Close()

	w.Append(Record{Type: RecAccept, ID: 1, View: 1, Value: []byte("acked")})
	durable := w.DurableLSN()
	if durable == 0 || w.Failed() != nil {
		t.Fatalf("first append: durable=%d failed=%v, want durable>0 and healthy", durable, w.Failed())
	}

	w.Append(Record{Type: RecAccept, ID: 2, View: 1, Value: []byte("lost")})
	if err := w.Failed(); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("after failed fsync: Failed() = %v, want injected fault", err)
	}
	if got := w.DurableLSN(); got != durable {
		t.Fatalf("durable advanced across a failed fsync: %d -> %d", durable, got)
	}

	// The fault was transient — the third sync would succeed — but
	// fail-stop is permanent: the append is a no-op and durable is frozen.
	lsn := w.AppendedLSN()
	w.Append(Record{Type: RecAccept, ID: 3, View: 1, Value: []byte("ignored")})
	if got := w.AppendedLSN(); got != lsn {
		t.Fatalf("append after fail-stop still encoded bytes: %d -> %d", lsn, got)
	}
	if got := w.DurableLSN(); got != durable {
		t.Fatalf("durable advanced after fail-stop: %d -> %d", durable, got)
	}
	if n := faults.Load(); n != 1 {
		t.Fatalf("OnFault fired %d times, want exactly 1", n)
	}

	// The acknowledged record survives a reopen on a healthy filesystem.
	w.Close()
	w2, recs := open(t, dir, SyncAlways, 0)
	defer w2.Close()
	found := false
	for _, r := range recs {
		if r.Type == RecAccept && r.ID == 1 && string(r.Value) == "acked" {
			found = true
		}
	}
	if !found {
		t.Fatalf("acked record missing after recovery; replayed %d records", len(recs))
	}
}

// TestWriteFailureFailStops covers the write half of the fail-stop policy,
// in both error shapes a dying disk produces: a rejected write and a short
// write.
func TestWriteFailureFailStops(t *testing.T) {
	for _, mode := range []vfs.Mode{vfs.ModeError, vfs.ModeShortWrite} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			// Segment writes: #1 header, #2 first batch, #3 second batch.
			fs := vfs.NewFaultFS(nil).Fail(vfs.Rule{Op: vfs.OpWrite, Path: ".seg", Nth: 3, Sticky: true, Mode: mode})
			var faults atomic.Int32
			w := openFault(t, dir, SyncAlways, fs, &faults)
			defer w.Close()

			w.Append(Record{Type: RecAccept, ID: 1, View: 1, Value: []byte("ok")})
			durable := w.DurableLSN()
			w.Append(Record{Type: RecAccept, ID: 2, View: 1, Value: []byte("torn")})
			if w.Failed() == nil {
				t.Fatal("failed write did not fail-stop the WAL")
			}
			if got := w.DurableLSN(); got != durable {
				t.Fatalf("durable advanced across a failed write: %d -> %d", durable, got)
			}
			if n := faults.Load(); n != 1 {
				t.Fatalf("OnFault fired %d times, want exactly 1", n)
			}
		})
	}
}

// TestSyncBatchFsyncFailStopHoldsGate runs the same fsync fault under group
// commit: the Syncer goroutine hits it, nothing ever becomes durable, and
// the fault latches for the appender to observe.
func TestSyncBatchFsyncFailStopHoldsGate(t *testing.T) {
	dir := t.TempDir()
	fs := vfs.NewFaultFS(nil).Fail(vfs.Rule{Op: vfs.OpSync, Path: ".seg", Nth: 1, Sticky: true})
	var faults atomic.Int32
	w := openFault(t, dir, SyncBatch, fs, &faults)
	defer w.Close()

	w.Append(Record{Type: RecAccept, ID: 1, View: 1, Value: []byte("gated")})
	w.Sync() // force the drain instead of waiting out the group-commit floor
	if w.Failed() == nil {
		t.Fatal("failed group-commit fsync did not fail-stop the WAL")
	}
	if got := w.DurableLSN(); got != 0 {
		t.Fatalf("durable = %d after a failed first fsync, want 0", got)
	}
	if n := faults.Load(); n != 1 {
		t.Fatalf("OnFault fired %d times, want exactly 1", n)
	}
}

// TestCheckpointRollENOSPCDegrades pins the degrade half of the fault
// policy: when Checkpoint cannot create its fresh segment (ENOSPC), the WAL
// keeps running — appends continue in the sealed-but-open current segment,
// nothing is compacted, Failed() stays nil — and the next Checkpoint, with
// space back, compacts normally.
func TestCheckpointRollENOSPCDegrades(t *testing.T) {
	dir := t.TempDir()
	// Segment opens: #1 the first segment, #2 the checkpoint's roll target.
	fs := vfs.NewFaultFS(nil).Fail(vfs.Rule{Op: vfs.OpOpen, Path: ".seg", Nth: 2, Mode: vfs.ModeENOSPC})
	var faults atomic.Int32
	w := openFault(t, dir, SyncAlways, fs, &faults)
	defer w.Close()

	for i := 1; i <= 4; i++ {
		w.Append(Record{Type: RecAccept, ID: wire.InstanceID(i), View: 1, Value: []byte("v")})
		w.Append(Record{Type: RecDecide, ID: wire.InstanceID(i)})
	}
	states := []Record{{Type: RecState, ID: 4, View: 1, Decided: true, Value: []byte("v")}}
	err := w.Checkpoint(4, states)
	if err == nil {
		t.Fatal("Checkpoint with no space for its segment returned nil")
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Checkpoint error = %v, want ENOSPC", err)
	}
	if w.Failed() != nil {
		t.Fatalf("ENOSPC roll failure fail-stopped the WAL: %v", w.Failed())
	}

	// Degrade mode: appends keep landing durably in the old segment.
	durable := w.DurableLSN()
	w.Append(Record{Type: RecAccept, ID: 5, View: 1, Value: []byte("after-enospc")})
	if got := w.DurableLSN(); got <= durable {
		t.Fatalf("degrade-mode append not durable: %d -> %d", durable, got)
	}

	// Space freed (the transient rule is spent): the retry compacts.
	states = append(states, Record{Type: RecState, ID: 5, View: 1, Decided: false, Value: []byte("after-enospc")})
	if err := w.Checkpoint(5, states); err != nil {
		t.Fatalf("Checkpoint retry after space freed: %v", err)
	}
	if n := faults.Load(); n != 0 {
		t.Fatalf("OnFault fired %d times across a degrade cycle, want 0", n)
	}
	w.Close()

	// The compacted log replays: the cut covers the old records, the dump
	// carries the live state.
	w2, recs := open(t, dir, SyncAlways, 0)
	defer w2.Close()
	sawCut := false
	for _, r := range recs {
		if r.Type == RecCkpt && r.ID == 5 {
			sawCut = true
		}
	}
	if !sawCut {
		t.Fatalf("checkpoint cut missing from replay (%d records)", len(recs))
	}
}

// TestCheckpointENOSPCFromWriteBudget drives the same degrade loop through
// the byte-budget injector instead of a scripted Nth: the budget runs out
// mid-checkpoint, retention GC (ShrinkRetention) credits bytes back, and
// the retry lands.
func TestShrinkRetentionFreesBudget(t *testing.T) {
	dir := t.TempDir()
	w, recs, err := Open(Options{
		Dir: dir, Policy: SyncAlways, PreallocSpares: -1,
		SegmentBytes: 256, RetainBytes: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(recs) != 0 {
		t.Fatalf("fresh WAL replayed %d records", len(recs))
	}
	// Three checkpoint generations; the generous byte budget retains every
	// superseded segment.
	id := wire.InstanceID(0)
	for ckpt := 0; ckpt < 3; ckpt++ {
		for i := 0; i < 4; i++ {
			id++
			w.Append(Record{Type: RecAccept, ID: id, View: 1, Value: make([]byte, 128)})
			w.Append(Record{Type: RecDecide, ID: id})
		}
		if err := w.Checkpoint(id, []Record{{Type: RecState, ID: id, View: 1, Decided: true}}); err != nil {
			t.Fatalf("checkpoint %d: %v", ckpt, err)
		}
	}
	before := len(segFiles(t, dir))
	removed := w.ShrinkRetention()
	if removed == 0 {
		t.Fatalf("ShrinkRetention removed nothing (%d segments retained)", before)
	}
	after := len(segFiles(t, dir))
	if after >= before {
		t.Fatalf("segment count %d -> %d after ShrinkRetention(%d)", before, after, removed)
	}
	// The generation floor survives: the WAL still reopens and replays.
	w.Close()
	w2, _ := open(t, dir, SyncAlways, 256)
	w2.Close()
}

// TestCorruptSealedSegmentQuarantineReopen walks the full quarantine flow:
// a sealed (non-final) segment fails its CRC at Open, the typed
// CorruptError names it, QuarantineSegments renames every segment aside,
// and a fresh Open on the same directory boots an empty, working log.
func TestCorruptSealedSegmentQuarantineReopen(t *testing.T) {
	dir := t.TempDir()
	w, recs, err := Open(Options{Dir: dir, Policy: SyncAlways, PreallocSpares: -1, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh WAL replayed %d records", len(recs))
	}
	for i := 1; i <= 8; i++ {
		w.Append(Record{Type: RecAccept, ID: wire.InstanceID(i), View: 1, Value: make([]byte, 128)})
	}
	w.Close()
	segs := segFiles(t, dir)
	if len(segs) < 2 {
		t.Fatalf("want >= 2 segments for a sealed-corruption test, got %v", segs)
	}

	// Flip one bit mid-record in the FIRST (sealed, non-final) segment.
	first := filepath.Join(dir, segs[0])
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x01
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(Options{Dir: dir, Policy: SyncAlways, PreallocSpares: -1, SegmentBytes: 256})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Open over sealed corruption = %v, want *CorruptError", err)
	}
	if ce.Segment != first {
		t.Fatalf("CorruptError.Segment = %q, want %q", ce.Segment, first)
	}

	quarantined, err := QuarantineSegments(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(quarantined) != len(segs) {
		t.Fatalf("quarantined %v, want all of %v (records above a corrupt segment depend on it)", quarantined, segs)
	}
	for _, name := range quarantined {
		if _, err := os.Stat(filepath.Join(dir, name+".corrupt")); err != nil {
			t.Fatalf("quarantined segment %s.corrupt missing: %v", name, err)
		}
	}
	if left := segFiles(t, dir); len(left) != 0 {
		t.Fatalf("segments left in namespace after quarantine: %v", left)
	}

	// The directory is usable again: empty replay, appends work.
	w2, recs, err := Open(Options{Dir: dir, Policy: SyncAlways, PreallocSpares: -1, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(recs) != 0 {
		t.Fatalf("post-quarantine replay returned %d records, want 0", len(recs))
	}
	w2.Append(Record{Type: RecAccept, ID: 99, View: 2, Value: []byte("fresh")})
	if w2.Failed() != nil || w2.DurableLSN() == 0 {
		t.Fatalf("post-quarantine WAL unhealthy: failed=%v durable=%d", w2.Failed(), w2.DurableLSN())
	}
}

// TestTornFinalTailStillRecovers contrasts the corruption refusal: a torn
// tail on the FINAL segment is the expected crash artifact and replay
// truncates it instead of refusing.
func TestTornFinalTailStillRecovers(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(Options{Dir: dir, Policy: SyncAlways, PreallocSpares: -1})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(Record{Type: RecAccept, ID: 1, View: 1, Value: []byte("whole")})
	w.Close()
	segs := segFiles(t, dir)
	path := filepath.Join(dir, segs[len(segs)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Append half a record: a crash mid-write.
	torn := append(data, encodeRecord(nil, Record{Type: RecAccept, ID: 2, View: 1, Value: []byte("torn")})[:7]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, recs, err := Open(Options{Dir: dir, Policy: SyncAlways, PreallocSpares: -1})
	if err != nil {
		t.Fatalf("torn final tail must recover, got %v", err)
	}
	defer w2.Close()
	if len(recs) != 1 || recs[0].ID != 1 {
		t.Fatalf("replay = %+v, want exactly the whole record", recs)
	}
}
