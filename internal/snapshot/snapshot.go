// Package snapshot defines the chunked snapshot contract shared by the
// service layer and the replica core.
//
// The old contract — Snapshot() ([]byte, error) — forced three unbounded
// costs at once: the cut serialized the whole state under a quiesced
// executor (pause ∝ state size), the blob hit disk as one write (bytes ∝
// state size regardless of churn), and it crossed the wire as the last
// unbounded frame in the system. The chunked contract splits those:
//
//   - A Cutter marks a consistent cut and returns a Source. Marking is
//     cheap (copy-on-write: the service clones a key's pre-cut value only
//     when a post-cut command first mutates it), so execution resumes
//     immediately and the chunks drain concurrently.
//   - A Source yields deterministic, sorted, size-bounded chunks. Given the
//     same cut state and the same maxBytes, every replica produces the
//     identical chunk sequence — chunk files and transfer images are
//     byte-comparable across the cluster.
//   - A generation (Gen) is one cut's worth of chunks, either Full (the
//     complete state) or a delta against the previous generation. Chains of
//     generations fold oldest→newest into the state at the newest cut, so
//     steady-state persistence writes only what changed.
//
// Services that do not implement Cutter keep working: the core wraps their
// Snapshot() blob in a single always-full generation, split into bounded
// chunks at arbitrary byte offsets (see the core's blob adapter).
package snapshot

import "errors"

// ErrCutActive is returned by CutSnapshot while a previous cut's Source has
// not been fully drained or closed. The core serializes cuts, so seeing it
// indicates a caller bug.
var ErrCutActive = errors.New("snapshot: previous cut still draining")

// ErrCorruptChunk reports an undecodable chunk or chain during restore.
var ErrCorruptChunk = errors.New("snapshot: corrupt chunk")

// Source drains the chunks of one cut. Implementations must tolerate
// concurrent Execute calls on the owning service — that is the point.
type Source interface {
	// Next returns the next chunk, packed up to maxBytes. A chunk exceeds
	// maxBytes only when a single atomic entry does (one key/value pair
	// larger than the cap cannot be split). Next returns (nil, nil) when
	// the generation is fully drained; the Source releases its
	// copy-on-write state at that point.
	Next(maxBytes int) ([]byte, error)
	// Close abandons the drain and releases copy-on-write state early.
	// Idempotent; draining to completion makes it a no-op.
	Close()
}

// Cutter is the chunked snapshot contract. A service implementing it is
// snapshotted by marking a cut (fast, under quiesce) and draining chunks in
// the background while execution continues.
type Cutter interface {
	// CutSnapshot marks a consistent cut of the current state and returns
	// a Source draining it. full requests a complete generation; false
	// requests a delta holding only the keys mutated since the previous
	// cut. The returned bool reports the fullness actually produced (an
	// implementation may promote a delta to full — e.g. on its first cut).
	// Only one cut may be active at a time.
	CutSnapshot(full bool) (Source, bool, error)
	// RestoreChunks replaces the state from a chain of generations,
	// oldest first. The first generation of the chain must be Full;
	// later deltas overlay it. Chunk slices are borrowed for the call.
	RestoreChunks(gens []Gen) error
}

// Gen is one snapshot generation: the chunks drained from a single cut.
type Gen struct {
	// Full marks a complete-state generation; false is a delta against
	// the previous generation in the chain.
	Full bool
	// Chunks are the drained chunks in Source order.
	Chunks [][]byte
}

// Bytes returns the total payload size of the generation.
func (g Gen) Bytes() int {
	n := 0
	for _, c := range g.Chunks {
		n += len(c)
	}
	return n
}

// Drain pulls every chunk from src at the given cap and closes it.
func Drain(src Source, maxBytes int) ([][]byte, error) {
	defer src.Close()
	var chunks [][]byte
	for {
		c, err := src.Next(maxBytes)
		if err != nil {
			return nil, err
		}
		if c == nil {
			return chunks, nil
		}
		chunks = append(chunks, c)
	}
}

// EncodeChain frames a chain of generations into one blob — the in-memory
// currency for an assembled snapshot's service state (wire.Snapshot
// carries it, the disk manifest decomposes it, transfer re-frames it).
//
// Layout: u32 ngens, then per generation: u8 full, u32 nchunks, then per
// chunk: u32 len + bytes. All little-endian.
func EncodeChain(gens []Gen) []byte {
	n := 4
	for _, g := range gens {
		n += 5
		for _, c := range g.Chunks {
			n += 4 + len(c)
		}
	}
	b := make([]byte, 0, n)
	b = appendU32(b, uint32(len(gens)))
	for _, g := range gens {
		if g.Full {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendU32(b, uint32(len(g.Chunks)))
		for _, c := range g.Chunks {
			b = appendU32(b, uint32(len(c)))
			b = append(b, c...)
		}
	}
	return b
}

// DecodeChain parses an EncodeChain blob. The returned chunk slices borrow
// from b — valid only while b is.
func DecodeChain(b []byte) ([]Gen, error) {
	ngens, rest, ok := takeU32(b)
	if !ok || uint64(ngens) > uint64(len(rest)) {
		return nil, ErrCorruptChunk
	}
	gens := make([]Gen, 0, ngens)
	for range ngens {
		if len(rest) == 0 {
			return nil, ErrCorruptChunk
		}
		g := Gen{Full: rest[0] == 1}
		var nchunks uint32
		nchunks, rest, ok = takeU32(rest[1:])
		if !ok || uint64(nchunks) > uint64(len(rest)) {
			return nil, ErrCorruptChunk
		}
		g.Chunks = make([][]byte, 0, nchunks)
		for range nchunks {
			var c []byte
			c, rest, ok = takeBytes(rest)
			if !ok {
				return nil, ErrCorruptChunk
			}
			g.Chunks = append(g.Chunks, c)
		}
		gens = append(gens, g)
	}
	if len(rest) != 0 {
		return nil, ErrCorruptChunk
	}
	return gens, nil
}

// SplitBlob slices blob into cap-sized chunks at arbitrary byte offsets —
// the shape of a blob service's single full generation. Concatenating the
// chunks reproduces blob exactly. A nil/empty blob yields no chunks.
func SplitBlob(blob []byte, maxBytes int) [][]byte {
	if maxBytes <= 0 {
		maxBytes = 1
	}
	var chunks [][]byte
	for len(blob) > 0 {
		n := min(len(blob), maxBytes)
		chunks = append(chunks, blob[:n:n])
		blob = blob[n:]
	}
	return chunks
}

// JoinChunks concatenates chunks back into one blob.
func JoinChunks(chunks [][]byte) []byte {
	n := 0
	for _, c := range chunks {
		n += len(c)
	}
	b := make([]byte, 0, n)
	for _, c := range chunks {
		b = append(b, c...)
	}
	return b
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func takeU32(b []byte) (uint32, []byte, bool) {
	if len(b) < 4 {
		return 0, nil, false
	}
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	return v, b[4:], true
}

func takeBytes(b []byte) ([]byte, []byte, bool) {
	n, rest, ok := takeU32(b)
	if !ok || uint64(n) > uint64(len(rest)) {
		return nil, nil, false
	}
	return rest[:n:n], rest[n:], true
}
