// Package replycache implements the reply cache of Sec. V-D: the table of
// each client's last executed sequence number and reply, used for at-most-
// once execution. It is queried by every ClientIO thread on request arrival
// and updated by the ServiceManager thread after execution, so under load it
// is hit from many threads at once.
//
// Two implementations are provided:
//
//   - Sharded: fine-grained locking across 2^k shards, the analogue of the
//     java.util.concurrent.ConcurrentHashMap the paper adopted, which
//     "eliminated any signs of contention in the reply cache".
//   - Coarse: a single lock around one map, the naive design the paper
//     reports performing poorly; kept as an ablation baseline.
//
// Both integrate with package profiling so lock contention shows up as
// blocked time exactly like the paper's measurements.
package replycache

import (
	"encoding/binary"
	"errors"
	"sort"

	"gosmr/internal/profiling"
)

// Status classifies a Lookup result.
type Status uint8

// Lookup outcomes.
const (
	// StatusNew means the sequence number is newer than anything executed:
	// the request should be ordered and executed.
	StatusNew Status = iota + 1
	// StatusCached means the request is the client's most recent executed
	// one; the cached reply must be returned without re-execution.
	StatusCached
	// StatusStale means the request is older than the client's last executed
	// one; the reply is gone and the request must be ignored.
	StatusStale
)

// String returns a label for s.
func (s Status) String() string {
	switch s {
	case StatusNew:
		return "new"
	case StatusCached:
		return "cached"
	case StatusStale:
		return "stale"
	default:
		return "unknown"
	}
}

// Cache is the reply cache interface shared by both implementations.
type Cache interface {
	// Lookup classifies (client, seq) and returns the cached reply when
	// StatusCached. th accounts lock contention (may be nil).
	Lookup(th *profiling.Thread, client, seq uint64) ([]byte, Status)
	// Update records the reply for the client's executed request seq.
	// Updates with seq lower than the recorded one are ignored.
	Update(th *profiling.Thread, client, seq uint64, reply []byte)
	// Len returns the number of clients tracked.
	Len() int
	// LastSeqs returns every client's last recorded sequence number — used
	// to rebuild the execution scheduler's at-most-once table after a
	// snapshot install.
	LastSeqs() map[uint64]uint64
	// Marshal serializes the cache for snapshots/state transfer.
	Marshal() []byte
	// Restore replaces the contents from a Marshal-ed blob.
	Restore(b []byte) error
}

type entry struct {
	seq   uint64
	reply []byte
}

// numShards is the shard count of the fine-grained implementation. 64 shards
// comfortably exceed any realistic ClientIO pool size, so the probability of
// two threads colliding on a shard is small.
const numShards = 64

type shard struct {
	mu profiling.Mutex
	m  map[uint64]entry
}

// Sharded is the fine-grained-locking reply cache.
type Sharded struct {
	shards [numShards]shard
}

// Interface compliance checks.
var (
	_ Cache = (*Sharded)(nil)
	_ Cache = (*Coarse)(nil)
)

// NewSharded returns an empty sharded cache.
func NewSharded() *Sharded {
	c := &Sharded{}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]entry)
	}
	return c
}

// shardFor maps a client ID to its shard with a Fibonacci hash, so
// sequentially assigned client IDs still spread across shards.
func (c *Sharded) shardFor(client uint64) *shard {
	const fib = 0x9E3779B97F4A7C15
	return &c.shards[(client*fib)>>(64-6)]
}

// Lookup implements Cache.
func (c *Sharded) Lookup(th *profiling.Thread, client, seq uint64) ([]byte, Status) {
	s := c.shardFor(client)
	s.mu.Lock(th)
	defer s.mu.Unlock()
	return classify(s.m, client, seq)
}

// Update implements Cache.
func (c *Sharded) Update(th *profiling.Thread, client, seq uint64, reply []byte) {
	s := c.shardFor(client)
	s.mu.Lock(th)
	defer s.mu.Unlock()
	store(s.m, client, seq, reply)
}

// Len implements Cache.
func (c *Sharded) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock(nil)
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// LastSeqs implements Cache.
func (c *Sharded) LastSeqs() map[uint64]uint64 {
	out := make(map[uint64]uint64)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock(nil)
		for k, v := range s.m {
			out[k] = v.seq
		}
		s.mu.Unlock()
	}
	return out
}

// Marshal implements Cache.
func (c *Sharded) Marshal() []byte {
	merged := make(map[uint64]entry)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock(nil)
		for k, v := range s.m {
			merged[k] = v
		}
		s.mu.Unlock()
	}
	return marshalMap(merged)
}

// Restore implements Cache.
func (c *Sharded) Restore(b []byte) error {
	m, err := unmarshalMap(b)
	if err != nil {
		return err
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock(nil)
		s.m = make(map[uint64]entry)
		s.mu.Unlock()
	}
	for k, v := range m {
		s := c.shardFor(k)
		s.mu.Lock(nil)
		s.m[k] = v
		s.mu.Unlock()
	}
	return nil
}

// Coarse is the single-lock reply cache (ablation baseline).
type Coarse struct {
	mu profiling.Mutex
	m  map[uint64]entry
}

// NewCoarse returns an empty coarse-locked cache.
func NewCoarse() *Coarse {
	return &Coarse{m: make(map[uint64]entry)}
}

// Lookup implements Cache.
func (c *Coarse) Lookup(th *profiling.Thread, client, seq uint64) ([]byte, Status) {
	c.mu.Lock(th)
	defer c.mu.Unlock()
	return classify(c.m, client, seq)
}

// Update implements Cache.
func (c *Coarse) Update(th *profiling.Thread, client, seq uint64, reply []byte) {
	c.mu.Lock(th)
	defer c.mu.Unlock()
	store(c.m, client, seq, reply)
}

// Len implements Cache.
func (c *Coarse) Len() int {
	c.mu.Lock(nil)
	defer c.mu.Unlock()
	return len(c.m)
}

// LastSeqs implements Cache.
func (c *Coarse) LastSeqs() map[uint64]uint64 {
	c.mu.Lock(nil)
	defer c.mu.Unlock()
	out := make(map[uint64]uint64, len(c.m))
	for k, v := range c.m {
		out[k] = v.seq
	}
	return out
}

// Marshal implements Cache.
func (c *Coarse) Marshal() []byte {
	c.mu.Lock(nil)
	defer c.mu.Unlock()
	return marshalMap(c.m)
}

// Restore implements Cache.
func (c *Coarse) Restore(b []byte) error {
	m, err := unmarshalMap(b)
	if err != nil {
		return err
	}
	c.mu.Lock(nil)
	c.m = m
	c.mu.Unlock()
	return nil
}

func classify(m map[uint64]entry, client, seq uint64) ([]byte, Status) {
	e, ok := m[client]
	switch {
	case !ok || seq > e.seq:
		return nil, StatusNew
	case seq == e.seq:
		return e.reply, StatusCached
	default:
		return nil, StatusStale
	}
}

func store(m map[uint64]entry, client, seq uint64, reply []byte) {
	if e, ok := m[client]; ok && seq <= e.seq {
		return
	}
	m[client] = entry{seq: seq, reply: reply}
}

// ErrCorrupt reports a malformed marshaled cache.
var ErrCorrupt = errors.New("replycache: corrupt snapshot")

// marshalMap serializes entries in ascending client order, so two caches
// with equal contents produce byte-identical blobs — required for comparing
// snapshots across replicas (and worker counts) in the determinism tests.
func marshalMap(m map[uint64]entry) []byte {
	clients := make([]uint64, 0, len(m))
	for k := range m {
		clients = append(clients, k)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	b := binary.LittleEndian.AppendUint32(nil, uint32(len(m)))
	for _, k := range clients {
		v := m[k]
		b = binary.LittleEndian.AppendUint64(b, k)
		b = binary.LittleEndian.AppendUint64(b, v.seq)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(v.reply)))
		b = append(b, v.reply...)
	}
	return b
}

func unmarshalMap(b []byte) (map[uint64]entry, error) {
	if len(b) < 4 {
		return nil, ErrCorrupt
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	// Validate the untrusted count against the remaining bytes before
	// allocating: every entry occupies at least 20 bytes (client + seq +
	// reply length), so a corrupt or malicious blob with a huge count is
	// rejected here instead of ballooning the map pre-allocation.
	if uint64(n)*20 > uint64(len(b)) {
		return nil, ErrCorrupt
	}
	m := make(map[uint64]entry, n)
	for range n {
		if len(b) < 20 {
			return nil, ErrCorrupt
		}
		k := binary.LittleEndian.Uint64(b)
		seq := binary.LittleEndian.Uint64(b[8:])
		rl := binary.LittleEndian.Uint32(b[16:])
		b = b[20:]
		if uint64(rl) > uint64(len(b)) {
			return nil, ErrCorrupt
		}
		reply := make([]byte, rl)
		copy(reply, b[:rl])
		b = b[rl:]
		m[k] = entry{seq: seq, reply: reply}
	}
	if len(b) != 0 {
		return nil, ErrCorrupt
	}
	return m, nil
}
