package replycache

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"gosmr/internal/profiling"
)

// caches returns both implementations for shared table tests.
func caches() map[string]func() Cache {
	return map[string]func() Cache{
		"sharded": func() Cache { return NewSharded() },
		"coarse":  func() Cache { return NewCoarse() },
	}
}

func TestStatusString(t *testing.T) {
	tests := []struct {
		s    Status
		want string
	}{
		{StatusNew, "new"}, {StatusCached, "cached"}, {StatusStale, "stale"}, {Status(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("Status(%d) = %q, want %q", tt.s, got, tt.want)
		}
	}
}

func TestLookupClassification(t *testing.T) {
	for name, mk := range caches() {
		t.Run(name, func(t *testing.T) {
			c := mk()
			if _, st := c.Lookup(nil, 7, 1); st != StatusNew {
				t.Errorf("unknown client = %v, want new", st)
			}
			c.Update(nil, 7, 5, []byte("r5"))
			if reply, st := c.Lookup(nil, 7, 5); st != StatusCached || string(reply) != "r5" {
				t.Errorf("same seq = %v %q, want cached r5", st, reply)
			}
			if _, st := c.Lookup(nil, 7, 4); st != StatusStale {
				t.Errorf("old seq = %v, want stale", st)
			}
			if _, st := c.Lookup(nil, 7, 6); st != StatusNew {
				t.Errorf("new seq = %v, want new", st)
			}
		})
	}
}

func TestUpdateMonotonic(t *testing.T) {
	for name, mk := range caches() {
		t.Run(name, func(t *testing.T) {
			c := mk()
			c.Update(nil, 1, 10, []byte("ten"))
			c.Update(nil, 1, 3, []byte("three")) // stale update ignored
			if reply, st := c.Lookup(nil, 1, 10); st != StatusCached || string(reply) != "ten" {
				t.Errorf("after stale update = %v %q, want cached ten", st, reply)
			}
			c.Update(nil, 1, 11, []byte("eleven"))
			if _, st := c.Lookup(nil, 1, 10); st != StatusStale {
				t.Errorf("overwritten seq = %v, want stale", st)
			}
		})
	}
}

func TestLen(t *testing.T) {
	for name, mk := range caches() {
		t.Run(name, func(t *testing.T) {
			c := mk()
			for i := range uint64(100) {
				c.Update(nil, i, 1, nil)
			}
			if c.Len() != 100 {
				t.Errorf("Len = %d, want 100", c.Len())
			}
		})
	}
}

func TestMarshalRestore(t *testing.T) {
	for srcName, mkSrc := range caches() {
		for dstName, mkDst := range caches() {
			t.Run(srcName+"_to_"+dstName, func(t *testing.T) {
				src := mkSrc()
				for i := range uint64(50) {
					src.Update(nil, i, i+1, []byte(fmt.Sprintf("reply-%d", i)))
				}
				dst := mkDst()
				dst.Update(nil, 999, 1, []byte("stale-state")) // must be replaced
				if err := dst.Restore(src.Marshal()); err != nil {
					t.Fatal(err)
				}
				if dst.Len() != 50 {
					t.Fatalf("restored Len = %d, want 50", dst.Len())
				}
				for i := range uint64(50) {
					reply, st := dst.Lookup(nil, i, i+1)
					if st != StatusCached || string(reply) != fmt.Sprintf("reply-%d", i) {
						t.Errorf("client %d = %v %q", i, st, reply)
					}
				}
				if _, st := dst.Lookup(nil, 999, 1); st != StatusNew {
					t.Errorf("pre-restore state survived: %v", st)
				}
			})
		}
	}
}

func TestRestoreCorrupt(t *testing.T) {
	for name, mk := range caches() {
		t.Run(name, func(t *testing.T) {
			c := mk()
			for _, b := range [][]byte{nil, {1}, {1, 0, 0, 0}, {1, 0, 0, 0, 9, 9, 9}} {
				if err := c.Restore(b); err == nil {
					t.Errorf("Restore(%v) succeeded", b)
				}
			}
			// Trailing garbage after a valid entry.
			good := NewCoarse()
			good.Update(nil, 1, 1, []byte("x"))
			if err := c.Restore(append(good.Marshal(), 0xFF)); err == nil {
				t.Error("Restore with trailing bytes succeeded")
			}
		})
	}
}

// TestRestoreHugeCountRejectedBeforeAlloc feeds blobs whose length prefix
// claims up to 2^32-1 entries backed by almost no bytes. The count must be
// rejected by the bounds check up front — pre-allocating a map for it would
// balloon memory before the per-entry parsing ever failed. Run with a tight
// memory ceiling this is the regression test for the untrusted-length
// guard; here we assert rejection and that allocations stay sane.
func TestRestoreHugeCountRejectedBeforeAlloc(t *testing.T) {
	for name, mk := range caches() {
		t.Run(name, func(t *testing.T) {
			for _, n := range []uint32{21, 1 << 20, 1 << 31, ^uint32(0)} {
				blob := binary.LittleEndian.AppendUint32(nil, n)
				blob = append(blob, make([]byte, 20)...) // room for one entry at most
				allocs := testing.AllocsPerRun(10, func() {
					c := mk()
					if err := c.Restore(blob); err == nil {
						t.Fatalf("Restore with claimed count %d succeeded", n)
					}
				})
				// A guarded failure allocates the cache shell and little
				// else; a 2^32-entry map pre-allocation would dwarf this.
				if allocs > 100 {
					t.Errorf("count %d: %v allocations before rejection", n, allocs)
				}
			}
		})
	}
}

func TestConcurrentAccess(t *testing.T) {
	for name, mk := range caches() {
		t.Run(name, func(t *testing.T) {
			c := mk()
			var wg sync.WaitGroup
			for w := range 8 {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := range uint64(500) {
						client := i % 32
						c.Update(nil, client, i, []byte{byte(w)})
						c.Lookup(nil, client, i)
					}
				}(w)
			}
			wg.Wait()
			if c.Len() != 32 {
				t.Errorf("Len = %d, want 32", c.Len())
			}
		})
	}
}

func TestShardedContentionLowerThanCoarse(t *testing.T) {
	// Structural check of the paper's ablation: with many threads hammering
	// distinct clients, the coarse cache serializes everything while the
	// sharded one mostly avoids lock overlap. We assert the sharded cache
	// accrues no more blocked time than the coarse one (timing-based, so
	// only a weak inequality with slack is asserted).
	measure := func(c Cache) (blocked int64) {
		reg := profiling.NewRegistry()
		var wg sync.WaitGroup
		for w := range 8 {
			th := reg.Register(fmt.Sprintf("w%d", w))
			th.Transition(profiling.StateBusy)
			wg.Add(1)
			go func(w int, th *profiling.Thread) {
				defer wg.Done()
				for i := range uint64(3000) {
					client := uint64(w)*1000 + i%100
					c.Update(th, client, i, nil)
					c.Lookup(th, client, i)
				}
			}(w, th)
		}
		wg.Wait()
		return int64(reg.TotalBlocked())
	}
	sharded := measure(NewSharded())
	coarse := measure(NewCoarse())
	if sharded > coarse*2+int64(1e7) {
		t.Errorf("sharded blocked %d > coarse blocked %d: sharding made contention worse", sharded, coarse)
	}
}

// TestPropertyAtMostOnce checks the at-most-once invariant: for any update
// sequence, Lookup(client, seq) returns Cached only for the highest seq
// updated, and the reply it returns is the one stored with that seq.
func TestPropertyAtMostOnce(t *testing.T) {
	f := func(seqs []uint8) bool {
		c := NewSharded()
		var maxSeq uint64
		for _, s := range seqs {
			seq := uint64(s)
			c.Update(nil, 42, seq, []byte{s})
			if seq > maxSeq {
				maxSeq = seq
			}
		}
		if len(seqs) == 0 {
			_, st := c.Lookup(nil, 42, 0)
			return st == StatusNew
		}
		reply, st := c.Lookup(nil, 42, maxSeq)
		if st != StatusCached || len(reply) != 1 || uint64(reply[0]) != maxSeq {
			return false
		}
		_, st = c.Lookup(nil, 42, maxSeq+1)
		return st == StatusNew
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMarshalRoundTrip checks snapshot round-trips for arbitrary
// contents.
func TestPropertyMarshalRoundTrip(t *testing.T) {
	f := func(clients []uint64, reply []byte) bool {
		src := NewSharded()
		for i, cl := range clients {
			src.Update(nil, cl, uint64(i+1), reply)
		}
		dst := NewSharded()
		if err := dst.Restore(src.Marshal()); err != nil {
			return false
		}
		return dst.Len() == src.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
