// Package queue implements the bounded blocking message queues that connect
// the replica's module threads (RequestQueue, ProposalQueue, DispatcherQueue,
// DecisionQueue, per-peer SendQueues — Fig. 3 of the paper).
//
// Bounded capacities are the flow-control mechanism of Sec. V-E: when a stage
// cannot keep up, its input queue fills and upstream stages block, which
// ultimately pushes back on the clients through TCP. Queues integrate with
// package profiling: time blocked on a full/empty queue is credited to the
// calling thread's "waiting" state, matching the paper's measurements.
//
// Each queue also tracks its time-averaged length, which is the statistic
// reported in Table I of the paper.
package queue

import (
	"errors"
	"sync"
	"time"

	"gosmr/internal/profiling"
)

// ErrClosed is returned by Put after Close, and by Take once the queue is
// closed and drained.
var ErrClosed = errors.New("queue: closed")

// Bounded is a multi-producer multi-consumer FIFO queue with a fixed
// capacity. The zero value is not usable; construct with NewBounded.
type Bounded[T any] struct {
	name string
	ch   chan T
	done chan struct{}

	closeOnce sync.Once

	statsMu    sync.Mutex
	lastChange time.Time
	lenSeconds float64 // integral of queue length over time
	trackStart time.Time
	puts       uint64
	takes      uint64
}

// NewBounded returns an empty queue with the given capacity (minimum 1).
// The name is used in experiment output.
func NewBounded[T any](name string, capacity int) *Bounded[T] {
	if capacity < 1 {
		capacity = 1
	}
	now := time.Now()
	return &Bounded[T]{
		name:       name,
		ch:         make(chan T, capacity),
		done:       make(chan struct{}),
		lastChange: now,
		trackStart: now,
	}
}

// Name returns the queue's name.
func (q *Bounded[T]) Name() string { return q.name }

// Cap returns the queue's capacity.
func (q *Bounded[T]) Cap() int { return cap(q.ch) }

// Len returns the current number of queued items.
func (q *Bounded[T]) Len() int { return len(q.ch) }

// account records a length change for the time-averaged length statistic.
func (q *Bounded[T]) account(isPut bool) {
	now := time.Now()
	q.statsMu.Lock()
	// Length *before* this op decided the integral contribution; len(q.ch)
	// already reflects the op, so back it out.
	l := float64(len(q.ch))
	if isPut {
		l--
		q.puts++
	} else {
		l++
		q.takes++
	}
	if l < 0 {
		l = 0
	}
	q.lenSeconds += l * now.Sub(q.lastChange).Seconds()
	q.lastChange = now
	q.statsMu.Unlock()
}

// AvgLen returns the time-averaged queue length since construction or the
// last ResetStats call (Table I's statistic).
func (q *Bounded[T]) AvgLen() float64 {
	now := time.Now()
	q.statsMu.Lock()
	defer q.statsMu.Unlock()
	total := q.lenSeconds + float64(len(q.ch))*now.Sub(q.lastChange).Seconds()
	window := now.Sub(q.trackStart).Seconds()
	if window <= 0 {
		return 0
	}
	return total / window
}

// Puts returns the number of successful Put/TryPut operations.
func (q *Bounded[T]) Puts() uint64 {
	q.statsMu.Lock()
	defer q.statsMu.Unlock()
	return q.puts
}

// Takes returns the number of successful Take/TryTake operations.
func (q *Bounded[T]) Takes() uint64 {
	q.statsMu.Lock()
	defer q.statsMu.Unlock()
	return q.takes
}

// ResetStats restarts average-length tracking, discarding warm-up effects.
func (q *Bounded[T]) ResetStats() {
	now := time.Now()
	q.statsMu.Lock()
	q.lenSeconds = 0
	q.lastChange = now
	q.trackStart = now
	q.puts = 0
	q.takes = 0
	q.statsMu.Unlock()
}

// Put appends v, blocking while the queue is full. Time spent blocked is
// credited to th's waiting state. Returns ErrClosed once the queue is closed.
func (q *Bounded[T]) Put(th *profiling.Thread, v T) error {
	select {
	case <-q.done:
		return ErrClosed
	default:
	}
	select {
	case q.ch <- v: // fast path: space available
		q.account(true)
		return nil
	default:
	}
	th.Transition(profiling.StateWaiting)
	defer th.Transition(profiling.StateBusy)
	select {
	case q.ch <- v:
		q.account(true)
		return nil
	case <-q.done:
		return ErrClosed
	}
}

// TryPut appends v without blocking. It reports whether the item was
// accepted; err is ErrClosed if the queue has been closed.
func (q *Bounded[T]) TryPut(v T) (ok bool, err error) {
	select {
	case <-q.done:
		return false, ErrClosed
	default:
	}
	select {
	case q.ch <- v:
		q.account(true)
		return true, nil
	default:
		return false, nil
	}
}

// Take removes and returns the oldest item, blocking while the queue is
// empty. Time spent blocked is credited to th's waiting state. Once the
// queue is closed, remaining items are drained before ErrClosed is returned.
func (q *Bounded[T]) Take(th *profiling.Thread) (T, error) {
	select {
	case v := <-q.ch: // fast path: item available
		q.account(false)
		return v, nil
	default:
	}
	th.Transition(profiling.StateWaiting)
	defer th.Transition(profiling.StateBusy)
	for {
		select {
		case v := <-q.ch:
			q.account(false)
			return v, nil
		case <-q.done:
			// Closed: drain anything that raced in, then report closed.
			select {
			case v := <-q.ch:
				q.account(false)
				return v, nil
			default:
				var zero T
				return zero, ErrClosed
			}
		}
	}
}

// TryTake removes and returns the oldest item without blocking.
func (q *Bounded[T]) TryTake() (T, bool) {
	select {
	case v := <-q.ch:
		q.account(false)
		return v, true
	default:
		var zero T
		return zero, false
	}
}

// Poll is Take with a deadline: it waits up to d for an item. It reports
// ok=false on timeout, and ErrClosed once the queue is closed and drained.
func (q *Bounded[T]) Poll(th *profiling.Thread, d time.Duration) (v T, ok bool, err error) {
	select {
	case v := <-q.ch:
		q.account(false)
		return v, true, nil
	default:
	}
	th.Transition(profiling.StateWaiting)
	defer th.Transition(profiling.StateBusy)
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case v := <-q.ch:
		q.account(false)
		return v, true, nil
	case <-timer.C:
		var zero T
		return zero, false, nil
	case <-q.done:
		select {
		case v := <-q.ch:
			q.account(false)
			return v, true, nil
		default:
			var zero T
			return zero, false, ErrClosed
		}
	}
}

// Close marks the queue closed: subsequent Puts fail immediately and blocked
// Puts unblock with ErrClosed; Takes drain remaining items first. Close is
// idempotent and safe to call concurrently with any operation.
func (q *Bounded[T]) Close() {
	q.closeOnce.Do(func() { close(q.done) })
}

// Closed reports whether Close has been called.
func (q *Bounded[T]) Closed() bool {
	select {
	case <-q.done:
		return true
	default:
		return false
	}
}
