package queue

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"gosmr/internal/profiling"
)

func TestFIFOOrder(t *testing.T) {
	q := NewBounded[int]("q", 16)
	for i := range 10 {
		if err := q.Put(nil, i); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	for i := range 10 {
		v, err := q.Take(nil)
		if err != nil {
			t.Fatalf("Take: %v", err)
		}
		if v != i {
			t.Fatalf("Take = %d, want %d", v, i)
		}
	}
}

func TestCapacityMinimum(t *testing.T) {
	q := NewBounded[int]("q", 0)
	if q.Cap() != 1 {
		t.Errorf("Cap = %d, want 1", q.Cap())
	}
}

func TestTryPutFullAndTryTakeEmpty(t *testing.T) {
	q := NewBounded[string]("q", 2)
	if _, ok := q.TryTake(); ok {
		t.Error("TryTake on empty queue succeeded")
	}
	for _, s := range []string{"a", "b"} {
		ok, err := q.TryPut(s)
		if !ok || err != nil {
			t.Fatalf("TryPut(%q) = %v, %v", s, ok, err)
		}
	}
	if ok, err := q.TryPut("c"); ok || err != nil {
		t.Errorf("TryPut on full queue = %v, %v; want false, nil", ok, err)
	}
	if q.Len() != 2 {
		t.Errorf("Len = %d, want 2", q.Len())
	}
}

func TestPutBlocksUntilTake(t *testing.T) {
	q := NewBounded[int]("q", 1)
	if err := q.Put(nil, 1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- q.Put(nil, 2) }()
	select {
	case <-done:
		t.Fatal("Put returned while queue was full")
	case <-time.After(20 * time.Millisecond):
	}
	if v, err := q.Take(nil); err != nil || v != 1 {
		t.Fatalf("Take = %d, %v; want 1, nil", v, err)
	}
	if err := <-done; err != nil {
		t.Fatalf("blocked Put returned %v", err)
	}
	if v, err := q.Take(nil); err != nil || v != 2 {
		t.Fatalf("Take = %d, %v; want 2, nil", v, err)
	}
}

func TestTakeBlocksUntilPut(t *testing.T) {
	q := NewBounded[int]("q", 1)
	got := make(chan int, 1)
	go func() {
		v, err := q.Take(nil)
		if err != nil {
			t.Errorf("Take: %v", err)
		}
		got <- v
	}()
	select {
	case <-got:
		t.Fatal("Take returned on empty queue")
	case <-time.After(20 * time.Millisecond):
	}
	if err := q.Put(nil, 42); err != nil {
		t.Fatal(err)
	}
	if v := <-got; v != 42 {
		t.Fatalf("Take = %d, want 42", v)
	}
}

func TestCloseUnblocksPut(t *testing.T) {
	q := NewBounded[int]("q", 1)
	_ = q.Put(nil, 1)
	errc := make(chan error, 1)
	go func() { errc <- q.Put(nil, 2) }()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("blocked Put after Close = %v, want ErrClosed", err)
	}
	if err := q.Put(nil, 3); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
	if ok, err := q.TryPut(3); ok || !errors.Is(err, ErrClosed) {
		t.Fatalf("TryPut after Close = %v, %v; want false, ErrClosed", ok, err)
	}
}

func TestCloseDrainsThenFails(t *testing.T) {
	q := NewBounded[int]("q", 4)
	for i := range 3 {
		_ = q.Put(nil, i)
	}
	q.Close()
	for i := range 3 {
		v, err := q.Take(nil)
		if err != nil || v != i {
			t.Fatalf("Take after Close = %d, %v; want %d, nil", v, err, i)
		}
	}
	if _, err := q.Take(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Take on drained closed queue = %v, want ErrClosed", err)
	}
	if !q.Closed() {
		t.Error("Closed = false after Close")
	}
	q.Close() // idempotent
}

func TestCloseUnblocksTake(t *testing.T) {
	q := NewBounded[int]("q", 1)
	errc := make(chan error, 1)
	go func() {
		_, err := q.Take(nil)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	if err := <-errc; !errors.Is(err, ErrClosed) {
		t.Fatalf("blocked Take after Close = %v, want ErrClosed", err)
	}
}

func TestPoll(t *testing.T) {
	q := NewBounded[int]("q", 1)
	start := time.Now()
	if _, ok, err := q.Poll(nil, 15*time.Millisecond); ok || err != nil {
		t.Fatalf("Poll on empty = %v, %v; want false, nil", ok, err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Errorf("Poll returned after %v, want >= 10ms", elapsed)
	}
	_ = q.Put(nil, 7)
	if v, ok, err := q.Poll(nil, time.Second); !ok || err != nil || v != 7 {
		t.Fatalf("Poll = %d, %v, %v; want 7, true, nil", v, ok, err)
	}
	q.Close()
	if _, ok, err := q.Poll(nil, time.Millisecond); ok || !errors.Is(err, ErrClosed) {
		t.Fatalf("Poll after Close = %v, %v; want false, ErrClosed", ok, err)
	}
}

func TestWaitingAccounting(t *testing.T) {
	r := profiling.NewRegistry()
	th := r.Register("consumer")
	th.Transition(profiling.StateBusy)
	q := NewBounded[int]("q", 1)
	go func() {
		time.Sleep(25 * time.Millisecond)
		_ = q.Put(nil, 1)
	}()
	if _, err := q.Take(th); err != nil {
		t.Fatal(err)
	}
	s := r.Snapshot()[0]
	if s.Waiting < 15*time.Millisecond {
		t.Errorf("Waiting = %v, want >= 15ms", s.Waiting)
	}
}

func TestAvgLen(t *testing.T) {
	q := NewBounded[int]("q", 10)
	// Hold length 5 for a while; average should approach 5.
	for i := range 5 {
		_ = q.Put(nil, i)
	}
	time.Sleep(50 * time.Millisecond)
	avg := q.AvgLen()
	if avg < 3.5 || avg > 5.5 {
		t.Errorf("AvgLen = %v, want ~5", avg)
	}
	q.ResetStats()
	time.Sleep(10 * time.Millisecond)
	avg = q.AvgLen()
	if avg < 4 || avg > 6 {
		t.Errorf("AvgLen after ResetStats = %v, want ~5", avg)
	}
}

func TestPutsTakesCounters(t *testing.T) {
	q := NewBounded[int]("q", 8)
	for i := range 6 {
		_ = q.Put(nil, i)
	}
	for range 4 {
		_, _ = q.Take(nil)
	}
	if q.Puts() != 6 {
		t.Errorf("Puts = %d, want 6", q.Puts())
	}
	if q.Takes() != 4 {
		t.Errorf("Takes = %d, want 4", q.Takes())
	}
	q.ResetStats()
	if q.Puts() != 0 || q.Takes() != 0 {
		t.Errorf("after ResetStats Puts,Takes = %d,%d; want 0,0", q.Puts(), q.Takes())
	}
}

// TestConcurrentProducersConsumers checks that no item is lost or duplicated
// under concurrent access.
func TestConcurrentProducersConsumers(t *testing.T) {
	const (
		producers    = 4
		itemsPerProd = 500
	)
	q := NewBounded[int]("q", 7)
	var wg sync.WaitGroup
	for p := range producers {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := range itemsPerProd {
				if err := q.Put(nil, p*itemsPerProd+i); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(p)
	}
	var mu sync.Mutex
	seen := make(map[int]bool, producers*itemsPerProd)
	var cwg sync.WaitGroup
	for range 3 {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				v, err := q.Take(nil)
				if err != nil {
					return
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("duplicate item %d", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	q.Close()
	cwg.Wait()
	if len(seen) != producers*itemsPerProd {
		t.Errorf("received %d items, want %d", len(seen), producers*itemsPerProd)
	}
}

// TestPropertyFIFOSingleThreaded property-tests that for any sequence of
// puts, takes return the same values in the same order.
func TestPropertyFIFOSingleThreaded(t *testing.T) {
	f := func(items []int64) bool {
		if len(items) > 256 {
			items = items[:256]
		}
		q := NewBounded[int64]("q", 256)
		for _, v := range items {
			if err := q.Put(nil, v); err != nil {
				return false
			}
		}
		for _, want := range items {
			v, err := q.Take(nil)
			if err != nil || v != want {
				return false
			}
		}
		_, ok := q.TryTake()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLenNeverExceedsCap property-tests the capacity bound under
// random interleavings of TryPut/TryTake.
func TestPropertyLenNeverExceedsCap(t *testing.T) {
	f := func(ops []bool, capacity uint8) bool {
		c := int(capacity%16) + 1
		q := NewBounded[int]("q", c)
		for i, put := range ops {
			if put {
				_, _ = q.TryPut(i)
			} else {
				_, _ = q.TryTake()
			}
			if q.Len() > c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
