// Package paxos implements the MultiPaxos protocol state machine that the
// Protocol thread executes (Sec. III-A and V-C2), including the batching and
// pipelining optimizations the paper assumes throughout ([12]):
//
//   - Views number leadership epochs; the leader of view v is replica
//     v mod n. A replica that suspects the leader advances to the next view
//     and, if it is that view's leader, runs Phase 1 over the unstable log
//     suffix (one Prepare for all instances, as in JPaxos).
//   - Phase 2 runs per instance; each instance carries one batch. Up to
//     `window` instances (the paper's WND parameter) are in flight at once.
//   - Followers send Phase 2b (Accept) only to the leader. They learn
//     decisions from the DecidedUpTo watermark piggybacked on Propose and
//     Heartbeat messages, and fill gaps via catch-up.
//
// The Node is a pure state machine: it performs no I/O and starts no
// goroutines. Every event handler returns an Effects value describing what
// the caller must do (send messages, deliver decisions, cancel
// retransmissions, ...). It is owned by a single goroutine — the Protocol
// thread — which is what makes the replication core thread-safe without
// locks (the paper's "no-lock rule").
package paxos

import (
	"fmt"

	"gosmr/internal/storage"
	"gosmr/internal/wire"
)

// Broadcast as a SendEffect target means "all peers".
const Broadcast = -1

// RetransKind distinguishes retransmittable message classes.
type RetransKind uint8

// Retransmission key kinds.
const (
	RetransPrepare RetransKind = iota + 1
	RetransPropose
)

// RetransKey identifies one retransmittable message so the caller can pair
// registration with the lock-free cancel of Sec. V-C4.
type RetransKey struct {
	Kind RetransKind
	View wire.View
	ID   wire.InstanceID
}

// String formats the key for logs.
func (k RetransKey) String() string {
	switch k.Kind {
	case RetransPrepare:
		return fmt.Sprintf("prepare/v%d", k.View)
	case RetransPropose:
		return fmt.Sprintf("propose/%d", k.ID)
	default:
		return fmt.Sprintf("retrans(%d)/v%d/%d", k.Kind, k.View, k.ID)
	}
}

// SendEffect instructs the caller to transmit Msg. If Retrans is non-nil the
// message must be registered for retransmission under that key.
type SendEffect struct {
	To      int // peer ID, or Broadcast
	Msg     wire.Message
	Retrans *RetransKey
}

// Decision is one decided instance, emitted in strict log order.
type Decision struct {
	ID    wire.InstanceID
	Value []byte // an encoded batch (possibly empty: a no-op)
}

// LeaseGrant surfaces a lease grant piggybacked on a leader heartbeat, after
// the node validated it against its view state (sender is the leader of the
// heartbeat's view, and the view is current — a stale grant is dropped with
// its stale heartbeat). The caller starts its local promise timer and
// acknowledges with a wire.LeaseAck; the node itself keeps no wall-clock
// state (it stays a pure state machine).
type LeaseGrant struct {
	From       int
	View       wire.View
	DurationMS uint32
	Seq        uint64
}

// Effects is everything an event handler asks the caller to do. The zero
// value means "nothing".
type Effects struct {
	// Sends lists messages to transmit, in order.
	Sends []SendEffect
	// Decisions lists newly decided instances, contiguous and in order.
	Decisions []Decision
	// CancelRetrans lists retransmissions to cancel.
	CancelRetrans []RetransKey
	// ViewChanged reports that View()/IsLeader() changed; the caller should
	// inform the failure detector.
	ViewChanged bool
	// CatchUp, if non-nil, asks the caller to send this query to a peer that
	// is likely to have the decided values (normally the leader).
	CatchUp *wire.CatchUpQuery
	// CatchUpGen identifies the CatchUp query for timeout pairing: the
	// caller's response timer must hand it back to CatchUpTimeout, which
	// ignores stale generations (a response already landed and a newer query
	// may be in flight).
	CatchUpGen uint64
	// InstallSnapshot, if non-nil, describes a snapshot this node needs
	// installed. Only the metadata travels through consensus: the execution
	// layer pulls the snapshot's image from the responder in bounded chunk
	// frames, persists it durably, and only then releases FastForward to
	// every group — so no group ever journals a cut that outruns the
	// snapshot covering it (a crash between the two would otherwise leave
	// an unbootable data directory).
	InstallSnapshot *wire.SnapshotMeta
	// Lease, if non-nil, is a view-validated lease grant from the current
	// leader's heartbeat; the caller runs the wall-clock side (promise timer
	// + LeaseAck).
	Lease *LeaseGrant
}

func (e *Effects) send(to int, msg wire.Message) {
	e.Sends = append(e.Sends, SendEffect{To: to, Msg: msg})
}

func (e *Effects) sendReliable(to int, msg wire.Message, key RetransKey) {
	e.Sends = append(e.Sends, SendEffect{To: to, Msg: msg, Retrans: &key})
}

// SnapshotProvider supplies the metadata of the most recent snapshot for
// catch-up responses that need state transfer — the state itself is served
// chunk by chunk off the consensus thread. It must be cheap and safe to
// call from the Protocol thread; ok=false means "no snapshot available"
// (the responder then sends whatever decided values it retains).
type SnapshotProvider func() (wire.SnapshotMeta, bool)

// ColdDecidedReader serves decided values below the in-memory log's
// truncation base from durable storage (the group's WAL retains the previous
// checkpoint generation). It must return a contiguous decided prefix
// starting exactly at from, holding at most maxEntries values; ok is false
// when the store cannot serve `from` at all — the requester then needs a
// snapshot. A partial prefix (capped or bounded by to) with ok=true is fine:
// the requester's follow-up query pages through the rest.
type ColdDecidedReader func(from, to wire.InstanceID, maxEntries int) (vals []wire.DecidedValue, ok bool)

// Catch-up response caps: one CatchUpResp never carries more than this many
// decided values or (approximately) this many payload bytes. A lagging
// replica pages through larger gaps with follow-up queries, so a single
// response cannot balloon into an unbounded frame.
const (
	DefaultCatchUpMaxEntries = 512
	DefaultCatchUpMaxBytes   = 1 << 20
)

// openInstance tracks a leader's in-flight Phase 2 instance.
type openInstance struct {
	value []byte
	acks  map[int]bool
}

// Node is the per-replica, per-group protocol state machine. Not safe for
// concurrent use: it is owned by its group's Protocol thread.
type Node struct {
	id     int
	n      int
	window int
	group  int // ordering group this node runs
	groups int // total ordering groups in the replica

	// topo, when non-nil, is the epoch-stamped cluster topology: quorum
	// size and the view→leader map read it instead of the boot-frozen n.
	// Installed by SetTopology on the owner thread when a reconfiguration
	// command is applied; nil means the legacy fixed-shape cluster.
	topo *wire.Topology

	log *storage.Log

	view      wire.View
	leading   bool // leader of view with Phase 1 complete
	preparing bool // Prepare sent for view, awaiting majority

	prepareOKs    map[int]bool
	prepareMerged map[wire.InstanceID]wire.InstanceState

	open map[wire.InstanceID]*openInstance

	lastDelivered  wire.InstanceID // all instances below have been emitted
	leaderUpTo     wire.InstanceID // highest decision watermark seen from a leader
	electionFloor  wire.InstanceID // first fresh instance of this leadership (read barrier)
	catchUpPending bool
	catchUpGen     uint64 // bumped per issued query; pairs timeouts with queries
	// pendingInstall is the group-local cut of a snapshot this node surfaced
	// (InstallSnapshot effect) whose two-phase install has not come back as a
	// FastForward yet. While set, duplicate catch-up responses do not
	// re-surface the same snapshot; CatchUpTimeout clears it so a refused
	// install (persist failure downstream) is retried at timer pace.
	pendingInstall wire.InstanceID

	snapshots         SnapshotProvider
	coldDecided       ColdDecidedReader
	catchUpMaxEntries int
	catchUpMaxBytes   int
}

// Options configures a Node.
type Options struct {
	// ID is this replica's ID in [0, N).
	ID int
	// N is the cluster size.
	N int
	// Window is the maximum number of concurrently executing instances
	// (the paper's WND); defaults to 10, the paper's baseline.
	Window int
	// Group is the ordering group this node runs, in [0, Groups); Groups is
	// the replica's total group count (both default to the single-group
	// configuration). They scope snapshot positions: a transferred snapshot
	// is cut at a *merged* index, and the node derives its own log's cut
	// with wire.GroupCut.
	Group  int
	Groups int
	// Snapshots supplies snapshots for catch-up state transfer (may be nil).
	Snapshots SnapshotProvider
	// ColdDecided, when non-nil, serves decided values below the log's
	// truncation base from durable storage (the group's WAL), so a catch-up
	// query whose gap is disk-covered is answered with values instead of a
	// full snapshot transfer.
	ColdDecided ColdDecidedReader
	// CatchUpMaxEntries and CatchUpMaxBytes cap one catch-up response
	// (defaults DefaultCatchUpMaxEntries / DefaultCatchUpMaxBytes); larger
	// gaps are served across progress-gated follow-up queries.
	CatchUpMaxEntries int
	CatchUpMaxBytes   int
	// Log, when non-nil, seeds the node with a recovered replicated log
	// (crash-restart recovery): delivery resumes at the log's base and
	// Start re-emits the already-decided prefix so the execution stage can
	// rebuild its state. Nil starts with an empty log.
	Log *storage.Log
	// View is the initial (recovered) view — the acceptor's durable
	// promise. Zero for a fresh node.
	View wire.View
	// Topology, when non-nil, is the epoch-stamped cluster topology this
	// node boots in (recovered from WAL/snapshot or the seed config).
	// Quorum size and the view→leader map then read it instead of N.
	Topology *wire.Topology
}

// NewNode returns a Node in view 0 with an empty log. No messages are sent
// until an event requires them; if this replica is the leader of view 0 it
// establishes leadership lazily via Start.
func NewNode(opts Options) *Node {
	if opts.Window <= 0 {
		opts.Window = 10
	}
	if opts.Topology != nil {
		if !opts.Topology.Active(opts.ID) {
			panic(fmt.Sprintf("paxos: ID %d not active in topology epoch %d", opts.ID, opts.Topology.Epoch))
		}
	} else {
		if opts.N <= 0 {
			panic("paxos: N must be positive")
		}
		if opts.ID < 0 || opts.ID >= opts.N {
			panic(fmt.Sprintf("paxos: ID %d out of range [0,%d)", opts.ID, opts.N))
		}
	}
	if opts.Groups <= 0 {
		opts.Groups = 1
	}
	if opts.Group < 0 || opts.Group >= opts.Groups {
		panic(fmt.Sprintf("paxos: Group %d out of range [0,%d)", opts.Group, opts.Groups))
	}
	log := opts.Log
	if log == nil {
		log = storage.NewLog()
	}
	if opts.CatchUpMaxEntries <= 0 {
		opts.CatchUpMaxEntries = DefaultCatchUpMaxEntries
	}
	if opts.CatchUpMaxBytes <= 0 {
		opts.CatchUpMaxBytes = DefaultCatchUpMaxBytes
	}
	n := opts.N
	if opts.Topology != nil {
		n = opts.Topology.N()
	}
	return &Node{
		id:     opts.ID,
		n:      n,
		window: opts.Window,
		group:  opts.Group,
		groups: opts.Groups,
		topo:   opts.Topology,
		log:    log,
		view:   opts.View,
		open:   make(map[wire.InstanceID]*openInstance),
		// Delivery resumes at the recovered log's base: the decided prefix
		// between base and the watermark is re-emitted by Start so the
		// service can be rebuilt from the last durable snapshot.
		lastDelivered:     log.Base(),
		snapshots:         opts.Snapshots,
		coldDecided:       opts.ColdDecided,
		catchUpMaxEntries: opts.CatchUpMaxEntries,
		catchUpMaxBytes:   opts.CatchUpMaxBytes,
	}
}

// ID returns this replica's ID.
func (nd *Node) ID() int { return nd.id }

// Group returns the ordering group this node runs.
func (nd *Node) Group() int { return nd.group }

// N returns the cluster size.
func (nd *Node) N() int { return nd.n }

// View returns the current view.
func (nd *Node) View() wire.View { return nd.view }

// Leader returns the leader of the current view.
func (nd *Node) Leader() int { return nd.leaderOf(nd.view) }

// LeaderOf returns the leader of view v in an n-replica cluster (the legacy
// fixed-shape map; topology-aware nodes use Topology.Leader).
func LeaderOf(v wire.View, n int) int { return int(v) % n }

// leaderOf maps a view to its leader under the installed topology, falling
// back to the classic v mod n map for legacy fixed-shape clusters.
func (nd *Node) leaderOf(v wire.View) int {
	if nd.topo != nil {
		return nd.topo.Leader(v)
	}
	return LeaderOf(v, nd.n)
}

// Topology returns the installed epoch-stamped topology (nil for a legacy
// fixed-shape node).
func (nd *Node) Topology() *wire.Topology { return nd.topo }

// SetTopology installs a new epoch-stamped topology, replacing the quorum
// size and view→leader map. Owner-thread only. The caller is responsible
// for advancing the view to the topology's BaseView afterwards (AdvanceTo),
// which re-runs Phase 1 over the unstable suffix under the new shape — the
// stop-the-group handoff.
func (nd *Node) SetTopology(t *wire.Topology) {
	nd.topo = t
	nd.n = t.N()
}

// IsLeader reports whether this replica is the established leader (Phase 1
// complete) of the current view.
func (nd *Node) IsLeader() bool { return nd.leading }

// Preparing reports whether this replica is a candidate awaiting Phase 1b
// responses.
func (nd *Node) Preparing() bool { return nd.preparing }

// ReadBarrier returns the first instance this leadership proposed fresh: the
// suffix below it was inherited from prior views during Phase 1. A leader
// may serve lease-based local reads only once DecidedUpTo reaches the
// barrier — before that, a command a previous leader acknowledged to a
// client may still be a re-proposal in flight, invisible to the merged
// order, and a local read could miss it (the leader-completeness condition
// of lease reads; Raft solves it with a no-op commit per term, here the
// Phase 1 re-proposals themselves are the barrier). Zero until this replica
// first establishes leadership; meaningless unless IsLeader.
func (nd *Node) ReadBarrier() wire.InstanceID { return nd.electionFloor }

// Log exposes the replicated log (for catch-up service and tests). Callers
// must run on the Protocol thread.
func (nd *Node) Log() *storage.Log { return nd.log }

// DecidedUpTo returns the watermark below which every instance is decided.
func (nd *Node) DecidedUpTo() wire.InstanceID { return nd.log.FirstUndecided() }

// InFlight returns the number of open (undecided, leader-proposed)
// instances.
func (nd *Node) InFlight() int { return len(nd.open) }

// WindowOpen reports whether the leader may start another instance
// (pipelining limit WND, Sec. VI-D2).
func (nd *Node) WindowOpen() bool { return nd.leading && len(nd.open) < nd.window }

// majority returns the quorum size under the current topology.
func (nd *Node) majority() int {
	if nd.topo != nil {
		return nd.topo.Quorum()
	}
	return nd.n/2 + 1
}

// Start bootstraps the protocol: the decided prefix of a recovered log is
// re-emitted (so the caller can rebuild service state), and the leader of
// the current view — view 0 on a fresh start, the recovered promise after a
// restart — establishes itself. Other replicas do nothing until traffic or
// suspicion arrives. Re-running Phase 1 for a view this replica already led
// is safe: any value a peer could have observed was durably accepted by the
// Phase 2 quorum, so the merge re-proposes it unchanged.
func (nd *Node) Start() Effects {
	var e Effects
	nd.emitDecisions(&e)
	if nd.leaderOf(nd.view) == nd.id {
		nd.becomeCandidate(nd.view, &e)
	}
	return e
}

// OnSuspect handles a failure-detector suspicion of the leader of view v.
// Stale suspicions are ignored.
func (nd *Node) OnSuspect(v wire.View) Effects {
	var e Effects
	if v != nd.view {
		return e
	}
	nd.advanceView(nd.view+1, &e)
	return e
}

// AdvanceTo moves the node to view v if it is still below it, becoming
// candidate when this replica leads v. Multi-group replicas use it to keep
// sibling groups' view epochs converged on group 0's (the view the shared
// failure detector tracks): a group that missed a suspicion fan-out —
// delivery is best-effort — re-synchronizes on its next event instead of
// waiting forever on a dead leader. Advancing a view is always safe in
// Paxos; a no-op when v <= the current view.
func (nd *Node) AdvanceTo(v wire.View) Effects {
	var e Effects
	nd.advanceView(v, &e)
	return e
}

// advanceView moves to view v (> current), becoming candidate if this
// replica leads v.
func (nd *Node) advanceView(v wire.View, e *Effects) {
	if v <= nd.view {
		return
	}
	nd.abandonViewState(e)
	nd.view = v
	e.ViewChanged = true
	if nd.leaderOf(v) == nd.id {
		nd.becomeCandidate(v, e)
	}
}

// abandonViewState drops leader/candidate state of the old view and cancels
// its retransmissions.
func (nd *Node) abandonViewState(e *Effects) {
	if nd.preparing {
		e.CancelRetrans = append(e.CancelRetrans, RetransKey{Kind: RetransPrepare, View: nd.view})
	}
	for id := range nd.open {
		e.CancelRetrans = append(e.CancelRetrans, RetransKey{Kind: RetransPropose, View: nd.view, ID: id})
	}
	nd.preparing = false
	nd.leading = false
	nd.prepareOKs = nil
	nd.prepareMerged = nil
	nd.open = make(map[wire.InstanceID]*openInstance)
}

// becomeCandidate starts Phase 1 for view v (leader(v) == nd.id).
func (nd *Node) becomeCandidate(v wire.View, e *Effects) {
	nd.preparing = true
	nd.leading = false
	nd.prepareOKs = map[int]bool{nd.id: true}
	nd.prepareMerged = make(map[wire.InstanceID]wire.InstanceState)
	first := nd.log.FirstUndecided()
	// Merge our own acceptor state first.
	nd.mergePrepareEntries(nd.log.SuffixFrom(first), e)
	msg := &wire.Prepare{View: v, FirstUnstable: first}
	key := RetransKey{Kind: RetransPrepare, View: v}
	nd.sendToPeers(e, msg, &key)
	nd.maybeFinishPrepare(e)
}

// sendToPeers broadcasts msg to all other replicas (with optional
// retransmission). With n == 1 there are no peers and nothing is sent.
func (nd *Node) sendToPeers(e *Effects, msg wire.Message, key *RetransKey) {
	if nd.n == 1 {
		return
	}
	if key != nil {
		e.sendReliable(Broadcast, msg, *key)
	} else {
		e.send(Broadcast, msg)
	}
}

// HandleMessage dispatches a peer message to its handler.
func (nd *Node) HandleMessage(from int, msg wire.Message) Effects {
	var e Effects
	switch m := msg.(type) {
	case *wire.Prepare:
		nd.handlePrepare(from, m, &e)
	case *wire.PrepareOK:
		nd.handlePrepareOK(from, m, &e)
	case *wire.Propose:
		nd.handlePropose(from, m, &e)
	case *wire.Accept:
		nd.handleAccept(from, m, &e)
	case *wire.Heartbeat:
		nd.handleHeartbeat(from, m, &e)
	case *wire.CatchUpQuery:
		nd.handleCatchUpQuery(from, m, &e)
	case *wire.CatchUpResp:
		nd.handleCatchUpResp(m, &e)
	}
	return e
}

// adoptView follows a higher view observed in a peer message.
func (nd *Node) adoptView(v wire.View, e *Effects) {
	if v <= nd.view {
		return
	}
	nd.abandonViewState(e)
	nd.view = v
	e.ViewChanged = true
}

// handlePrepare is Phase 1b: promise and return the unstable suffix.
func (nd *Node) handlePrepare(from int, m *wire.Prepare, e *Effects) {
	if m.View < nd.view {
		return // stale candidate; our FD will sort out leadership
	}
	if nd.leaderOf(m.View) != from {
		return // not the leader of that view: ignore forged/buggy prepare
	}
	nd.adoptView(m.View, e)
	// m.View == nd.view now (adoptView is a no-op for equal views).
	ok := &wire.PrepareOK{View: m.View, Entries: nd.log.SuffixFrom(m.FirstUnstable)}
	e.send(from, ok)
}

// handlePrepareOK collects Phase 1b responses and completes leadership on
// majority.
func (nd *Node) handlePrepareOK(from int, m *wire.PrepareOK, e *Effects) {
	if m.View != nd.view || !nd.preparing {
		return
	}
	if nd.prepareOKs[from] {
		return // duplicate
	}
	nd.prepareOKs[from] = true
	nd.mergePrepareEntries(m.Entries, e)
	nd.maybeFinishPrepare(e)
}

// mergePrepareEntries folds Phase 1b acceptor states into the candidate's
// merge table, keeping the value accepted in the highest view (Paxos value
// selection), and learning decided instances immediately.
func (nd *Node) mergePrepareEntries(entries []wire.InstanceState, e *Effects) {
	for _, st := range entries {
		if st.ID < nd.log.Base() {
			continue
		}
		if st.Decided {
			nd.log.MarkDecided(st.ID, st.Value)
			continue
		}
		prev, ok := nd.prepareMerged[st.ID]
		if !ok || st.AcceptedView > prev.AcceptedView {
			nd.prepareMerged[st.ID] = st
		}
	}
	nd.emitDecisions(e)
}

// maybeFinishPrepare completes Phase 1 once a majority has promised,
// re-proposing merged values and filling gaps with no-ops.
func (nd *Node) maybeFinishPrepare(e *Effects) {
	if !nd.preparing || len(nd.prepareOKs) < nd.majority() {
		return
	}
	nd.preparing = false
	nd.leading = true
	e.ViewChanged = true // leadership established
	e.CancelRetrans = append(e.CancelRetrans, RetransKey{Kind: RetransPrepare, View: nd.view})

	// Determine the range to recover: everything from the first undecided
	// instance up to the highest instance seen anywhere.
	first := nd.log.FirstUndecided()
	maxSeen := nd.log.Next() - 1
	for id := range nd.prepareMerged {
		if id > maxSeen {
			maxSeen = id
		}
	}
	// Everything at or above this is a fresh proposal of this leadership;
	// once DecidedUpTo passes it, every command any prior leader could have
	// acknowledged is decided here too, and lease reads become safe.
	nd.electionFloor = maxSeen + 1
	for id := first; id <= maxSeen; id++ {
		if entry := nd.log.Get(id); entry != nil && entry.Decided {
			continue
		}
		value := wire.EncodeBatch(nil) // no-op filler
		if st, ok := nd.prepareMerged[id]; ok && st.AcceptedView != storage.NoView {
			value = st.Value
		}
		nd.proposeInstance(id, value, e)
	}
	nd.prepareMerged = nil
	nd.emitDecisions(e)
}

// ProposeBatch starts Phase 2 for a new batch. It returns false (and does
// nothing) when this replica is not an established leader or the pipeline
// window is full — the caller keeps the batch queued.
func (nd *Node) ProposeBatch(value []byte) (Effects, bool) {
	var e Effects
	if !nd.WindowOpen() {
		return e, false
	}
	id := nd.log.Next()
	if id < nd.log.FirstUndecided() {
		id = nd.log.FirstUndecided()
	}
	nd.proposeInstance(id, value, &e)
	return e, true
}

// proposeInstance runs Phase 2a for (id, value) in the current view.
func (nd *Node) proposeInstance(id wire.InstanceID, value []byte, e *Effects) {
	nd.log.Accept(id, nd.view, value) // leader accepts its own proposal
	inst := &openInstance{value: value, acks: map[int]bool{nd.id: true}}
	nd.open[id] = inst
	msg := &wire.Propose{View: nd.view, ID: id, DecidedUpTo: nd.log.FirstUndecided(), Value: value}
	key := RetransKey{Kind: RetransPropose, View: nd.view, ID: id}
	nd.sendToPeers(e, msg, &key)
	nd.maybeDecide(id, inst, e)
}

// handlePropose is Phase 2b on the follower side.
func (nd *Node) handlePropose(from int, m *wire.Propose, e *Effects) {
	if m.View < nd.view {
		return
	}
	if nd.leaderOf(m.View) != from {
		return
	}
	// A Propose implies its sender established leadership of m.View, so
	// following a higher view here is safe.
	nd.adoptView(m.View, e)
	if m.ID >= nd.log.Base() {
		nd.log.Accept(m.ID, m.View, m.Value)
		e.send(from, &wire.Accept{View: m.View, ID: m.ID})
	}
	nd.observeWatermark(m.View, m.DecidedUpTo, e)
}

// handleAccept counts Phase 2b acknowledgements at the leader.
func (nd *Node) handleAccept(from int, m *wire.Accept, e *Effects) {
	if m.View != nd.view || !nd.leading {
		return
	}
	inst, ok := nd.open[m.ID]
	if !ok {
		return // already decided or never ours
	}
	inst.acks[from] = true
	nd.maybeDecide(m.ID, inst, e)
}

// maybeDecide finalizes an instance once a majority has accepted it.
func (nd *Node) maybeDecide(id wire.InstanceID, inst *openInstance, e *Effects) {
	if len(inst.acks) < nd.majority() {
		return
	}
	delete(nd.open, id)
	e.CancelRetrans = append(e.CancelRetrans, RetransKey{Kind: RetransPropose, View: nd.view, ID: id})
	nd.log.MarkDecided(id, inst.value)
	nd.emitDecisions(e)
}

// handleHeartbeat processes the leader's liveness/watermark message. A lease
// grant riding on the heartbeat is surfaced only here — after the stale-view
// and leader-identity checks — so the caller's lease manager never sees a
// grant from anyone but the current view's leader.
func (nd *Node) handleHeartbeat(from int, m *wire.Heartbeat, e *Effects) {
	if m.View < nd.view {
		return
	}
	if nd.leaderOf(m.View) != from {
		return
	}
	nd.adoptView(m.View, e)
	if m.LeaseMS != 0 && m.View == nd.view && from != nd.id {
		e.Lease = &LeaseGrant{From: from, View: m.View, DurationMS: m.LeaseMS, Seq: m.LeaseSeq}
	}
	nd.observeWatermark(m.View, m.DecidedUpTo, e)
}

// observeWatermark learns decisions from the leader's DecidedUpTo: every
// instance below it that we accepted in the same view is decided with our
// accepted value; anything else below it is a gap to catch up on.
func (nd *Node) observeWatermark(view wire.View, upTo wire.InstanceID, e *Effects) {
	if upTo > nd.leaderUpTo {
		nd.leaderUpTo = upTo
	}
	for id := nd.log.FirstUndecided(); id < upTo; id++ {
		entry := nd.log.Get(id)
		if entry == nil || entry.Decided {
			continue
		}
		if entry.AcceptedView == view {
			nd.log.MarkDecided(id, nil)
		}
	}
	nd.emitDecisions(e)
	nd.maybeCatchUp(e)
}

// maybeCatchUp issues a catch-up query if decided instances are missing and
// no query is outstanding.
func (nd *Node) maybeCatchUp(e *Effects) {
	if nd.catchUpPending || nd.leaderUpTo <= nd.log.FirstUndecided() {
		return
	}
	missing := nd.log.MissingDecidedBelow(nd.leaderUpTo)
	if len(missing) == 0 {
		return
	}
	nd.catchUpPending = true
	nd.catchUpGen++
	e.CatchUp = &wire.CatchUpQuery{From: missing[0], To: nd.leaderUpTo}
	e.CatchUpGen = nd.catchUpGen
}

// CatchUpTimeout re-arms catch-up after the caller's response timer expires
// without an answer. gen is the Effects.CatchUpGen of the query the timer
// was armed for: a stale timeout — a response landed (and possibly issued a
// newer query) between the timer firing and this call — never re-queries,
// so it can never inject a duplicate query alongside a live one.
func (nd *Node) CatchUpTimeout(gen uint64) Effects {
	var e Effects
	// A surfaced snapshot whose install never came back as a FastForward
	// (lost nudge, or the persist was refused downstream) is re-surfaced at
	// timer pace rather than per-response. This runs on EVERY timeout,
	// stale or not: in a healthy-latency cluster responses beat their
	// timers, so the live-timeout path below may never execute — if the
	// reset lived only there, a refused install would wedge the replica
	// behind the cut forever. Clearing on a stale timeout is harmless: the
	// next response re-surfaces the snapshot and the installer deduplicates
	// against its floor (resending any lost acks, which is the heal).
	if nd.log.Base() < nd.pendingInstall {
		nd.pendingInstall = 0
	}
	if !nd.catchUpPending || gen != nd.catchUpGen {
		return e
	}
	nd.catchUpPending = false
	nd.maybeCatchUp(&e)
	return e
}

// handleCatchUpQuery serves decided values to a lagging replica, in up to
// three tiers: the in-memory log for the retained suffix, the cold store
// (the group's WAL, via Options.ColdDecided) for values between the
// truncation base and the WAL's own retention horizon, and a full snapshot
// only when the gap reaches below both. Responses are capped at
// catchUpMaxEntries/-MaxBytes; the requester pages through larger gaps with
// follow-up queries (progress-gated, so pagination cannot livelock).
func (nd *Node) handleCatchUpQuery(from int, m *wire.CatchUpQuery, e *Effects) {
	to := m.To
	if to > nd.log.FirstUndecided() {
		to = nd.log.FirstUndecided()
	}
	base := nd.log.Base()
	var vals []wire.DecidedValue
	needSnap := false
	if m.From < base {
		served := false
		if nd.coldDecided != nil {
			if cold, ok := nd.coldDecided(m.From, min(base, to), nd.catchUpMaxEntries); ok {
				vals, served = cold, true
			}
		}
		needSnap = !served
	}
	// The in-memory suffix rides along even when a snapshot is attached —
	// the requester applies whatever reaches above the snapshot cut and
	// saves itself a round — but only up to the remaining entry budget:
	// below FirstUndecided everything is decided, so clamping the scan
	// range is exact, and materializing a suffix the cap would discard
	// would make every pagination round O(retained log).
	if remaining := nd.catchUpMaxEntries - len(vals); remaining > 0 {
		lo := max(m.From, base)
		memTo := min(to, lo+wire.InstanceID(remaining))
		mem, _ := nd.log.DecidedInRange(lo, memTo)
		vals = append(vals, mem...)
	}
	vals = capCatchUp(vals, nd.catchUpMaxEntries, nd.catchUpMaxBytes)
	resp := &wire.CatchUpResp{Entries: vals}
	if needSnap && nd.snapshots != nil {
		if meta, ok := nd.snapshots(); ok {
			resp.HasSnapshot = true
			resp.Meta = meta
		}
	}
	e.send(from, resp)
}

// capCatchUp trims a catch-up response to the entry and (approximate) byte
// caps, always keeping at least one entry so a follow-up query makes
// progress.
func capCatchUp(vals []wire.DecidedValue, maxEntries, maxBytes int) []wire.DecidedValue {
	if len(vals) > maxEntries {
		vals = vals[:maxEntries]
	}
	total := 0
	for i, v := range vals {
		total += len(v.Value) + 16
		if total > maxBytes && i > 0 {
			return vals[:i]
		}
	}
	return vals
}

// handleCatchUpResp applies fetched decided values and surfaces a received
// snapshot for the two-phase install. The node does NOT fast-forward its log
// here: the cut may only be journaled once the snapshot is durably on disk,
// so the InstallSnapshot effect travels to the execution layer, which
// persists it and releases FastForward to every group (see servicemgr.go).
// pendingInstall suppresses re-surfacing the same snapshot from duplicate
// responses while that round-trip is in flight.
//
// A follow-up query for the remaining gap is issued immediately only when
// this response made progress (filled a missing instance). A useless
// response — the responder may simply not have the values, e.g. a
// just-elected leader behind the watermark we chased — and the install
// round-trip both wait for the caller's catch-up timer instead: re-querying
// synchronously would ping-pong query/response at network speed (a livelock
// the randomized-schedule property test reproduces).
func (nd *Node) handleCatchUpResp(m *wire.CatchUpResp, e *Effects) {
	nd.catchUpPending = false
	progress := false
	if m.HasSnapshot && m.Meta.GroupCount() == nd.groups {
		cut := wire.GroupCut(m.Meta.LastIncluded, nd.groups, nd.group)
		if cut > nd.log.Base() && cut > nd.pendingInstall {
			nd.pendingInstall = cut
			meta := m.Meta
			e.InstallSnapshot = &meta
		}
	}
	for _, dv := range m.Entries {
		if dv.ID < nd.log.Base() {
			continue
		}
		if entry := nd.log.Get(dv.ID); entry == nil || !entry.Decided {
			progress = true
		}
		nd.log.MarkDecided(dv.ID, dv.Value)
	}
	nd.emitDecisions(e)
	if progress {
		nd.maybeCatchUp(e)
	}
}

// FastForward advances the log past everything below cut, which an installed
// snapshot covers: covered entries are discarded, delivery resumes at cut,
// and stale open proposals below it are dropped with their retransmissions
// cancelled (their instances are already decided in the snapshot; keeping
// them could trip a below-base decide on a late Accept, and an uncancelled
// handle would re-broadcast the dead Propose forever). Acceptor state at or
// above cut is retained — the snapshot says nothing about those slots, and
// wiping a promised value there would violate Paxos quorum intersection
// (the merge stage fast-forwards healthy sibling groups whose logs hold
// live in-flight accepts). In the two-phase transferred-snapshot install
// this is the release step: it runs only after the snapshot is durably
// persisted, and it is the point where the cut reaches the group's journal.
// Decided entries from cut onward that became contiguous (e.g. catch-up
// values applied while the install was in flight) are emitted here. The
// caller must apply the returned Effects.
func (nd *Node) FastForward(cut wire.InstanceID) Effects {
	var e Effects
	nd.fastForward(cut, &e)
	nd.emitDecisions(&e)
	return e
}

func (nd *Node) fastForward(cut wire.InstanceID, e *Effects) {
	if cut <= nd.log.Base() {
		return
	}
	nd.log.CoverPrefix(cut)
	if nd.lastDelivered < cut {
		nd.lastDelivered = cut
	}
	if nd.pendingInstall <= cut {
		nd.pendingInstall = 0 // install round-trip completed
	}
	for id := range nd.open {
		if id < cut {
			delete(nd.open, id)
			e.CancelRetrans = append(e.CancelRetrans,
				RetransKey{Kind: RetransPropose, View: nd.view, ID: id})
		}
	}
}

// TruncateLog discards log entries below id (after the service snapshotted
// through id-1). Called by the owner thread on snapshot completion.
func (nd *Node) TruncateLog(id wire.InstanceID) {
	nd.log.TruncateBelow(id)
}

// emitDecisions appends all newly contiguous decisions to e, in log order.
func (nd *Node) emitDecisions(e *Effects) {
	for nd.lastDelivered < nd.log.FirstUndecided() {
		id := nd.lastDelivered
		if id < nd.log.Base() {
			// Covered by an installed snapshot; skip.
			nd.lastDelivered = nd.log.Base()
			continue
		}
		entry := nd.log.Get(id)
		e.Decisions = append(e.Decisions, Decision{ID: id, Value: entry.Value})
		nd.lastDelivered++
	}
}
