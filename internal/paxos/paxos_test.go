package paxos

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"gosmr/internal/wire"
)

// collect groups a broadcast effect's sends by destination for assertions.
func sendsByType(e Effects) map[wire.MsgType]int {
	m := make(map[wire.MsgType]int)
	for _, s := range e.Sends {
		m[s.Msg.Type()]++
	}
	return m
}

func TestNewNodeValidation(t *testing.T) {
	for _, bad := range []Options{{ID: 0, N: 0}, {ID: 3, N: 3}, {ID: -1, N: 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewNode(%+v) did not panic", bad)
				}
			}()
			NewNode(bad)
		}()
	}
	nd := NewNode(Options{ID: 0, N: 3})
	if nd.window != 10 {
		t.Errorf("default window = %d, want 10", nd.window)
	}
}

func TestLeaderOf(t *testing.T) {
	tests := []struct {
		v    wire.View
		n    int
		want int
	}{
		{0, 3, 0}, {1, 3, 1}, {2, 3, 2}, {3, 3, 0}, {7, 5, 2},
	}
	for _, tt := range tests {
		if got := LeaderOf(tt.v, tt.n); got != tt.want {
			t.Errorf("LeaderOf(%d, %d) = %d, want %d", tt.v, tt.n, got, tt.want)
		}
	}
}

func TestStartLeaderSendsPrepare(t *testing.T) {
	nd := NewNode(Options{ID: 0, N: 3})
	e := nd.Start()
	if !nd.Preparing() {
		t.Error("leader of view 0 not preparing after Start")
	}
	if got := sendsByType(e); got[wire.TPrepare] != 1 {
		t.Errorf("sends = %v, want one Prepare broadcast", got)
	}
	if e.Sends[0].To != Broadcast || e.Sends[0].Retrans == nil {
		t.Errorf("Prepare send = %+v, want reliable broadcast", e.Sends[0])
	}
	// Non-leader does nothing on Start.
	nd1 := NewNode(Options{ID: 1, N: 3})
	if e := nd1.Start(); len(e.Sends) != 0 || nd1.Preparing() {
		t.Errorf("follower Start sent %v", e.Sends)
	}
}

func TestLeadershipEstablishment(t *testing.T) {
	nd := NewNode(Options{ID: 0, N: 3})
	nd.Start()
	e := nd.HandleMessage(1, &wire.PrepareOK{View: 0})
	if !nd.IsLeader() {
		t.Fatal("not leader after majority PrepareOK")
	}
	if !e.ViewChanged {
		t.Error("ViewChanged not signalled on leadership establishment")
	}
	found := false
	for _, k := range e.CancelRetrans {
		if k.Kind == RetransPrepare {
			found = true
		}
	}
	if !found {
		t.Error("Prepare retransmission not cancelled")
	}
	// Duplicate PrepareOK is harmless.
	if e := nd.HandleMessage(1, &wire.PrepareOK{View: 0}); len(e.Sends) != 0 {
		t.Errorf("duplicate PrepareOK produced sends: %v", e.Sends)
	}
}

// establishLeader returns a 3-node set with node 0 leading view 0.
func establish3(t *testing.T, window int) (*Node, *Node, *Node) {
	t.Helper()
	l := NewNode(Options{ID: 0, N: 3, Window: window})
	f1 := NewNode(Options{ID: 1, N: 3, Window: window})
	f2 := NewNode(Options{ID: 2, N: 3, Window: window})
	e := l.Start()
	// Deliver Prepare to followers, PrepareOKs back.
	for _, s := range e.Sends {
		e1 := f1.HandleMessage(0, s.Msg)
		e2 := f2.HandleMessage(0, s.Msg)
		for _, r := range e1.Sends {
			l.HandleMessage(1, r.Msg)
		}
		for _, r := range e2.Sends {
			l.HandleMessage(2, r.Msg)
		}
	}
	if !l.IsLeader() {
		t.Fatal("setup: node 0 failed to establish leadership")
	}
	return l, f1, f2
}

func TestProposeDecideHappyPath(t *testing.T) {
	l, f1, f2 := establish3(t, 4)
	value := wire.EncodeBatch([]*wire.ClientRequest{{ClientID: 9, Seq: 1, Payload: []byte("x")}})
	e, ok := l.ProposeBatch(value)
	if !ok {
		t.Fatal("ProposeBatch refused")
	}
	if l.InFlight() != 1 {
		t.Errorf("InFlight = %d, want 1", l.InFlight())
	}
	var proposeMsg wire.Message
	for _, s := range e.Sends {
		if s.Msg.Type() == wire.TPropose {
			proposeMsg = s.Msg
			if s.Retrans == nil {
				t.Error("Propose not registered for retransmission")
			}
		}
	}
	if proposeMsg == nil {
		t.Fatal("no Propose broadcast")
	}
	// Follower 1 accepts.
	e1 := f1.HandleMessage(0, proposeMsg)
	if got := sendsByType(e1); got[wire.TAccept] != 1 {
		t.Fatalf("follower sends = %v, want one Accept", got)
	}
	if e1.Sends[0].To != 0 {
		t.Errorf("Accept sent to %d, want leader 0", e1.Sends[0].To)
	}
	// Leader decides on first Accept (self + f1 = majority of 3).
	e = l.HandleMessage(1, e1.Sends[0].Msg)
	if len(e.Decisions) != 1 || e.Decisions[0].ID != 0 || !bytes.Equal(e.Decisions[0].Value, value) {
		t.Fatalf("decisions = %+v, want instance 0 with the proposed value", e.Decisions)
	}
	if l.InFlight() != 0 {
		t.Errorf("InFlight after decide = %d, want 0", l.InFlight())
	}
	if l.DecidedUpTo() != 1 {
		t.Errorf("DecidedUpTo = %d, want 1", l.DecidedUpTo())
	}
	// Late Accept from f2 is ignored quietly.
	e2 := f2.HandleMessage(0, proposeMsg)
	if e := l.HandleMessage(2, e2.Sends[0].Msg); len(e.Decisions) != 0 {
		t.Errorf("late Accept produced decisions: %v", e.Decisions)
	}
}

func TestFollowerLearnsViaWatermark(t *testing.T) {
	l, f1, _ := establish3(t, 4)
	v1 := wire.EncodeBatch([]*wire.ClientRequest{{ClientID: 1, Seq: 1}})
	e, _ := l.ProposeBatch(v1)
	prop1 := e.Sends[0].Msg
	e1 := f1.HandleMessage(0, prop1)
	l.HandleMessage(1, e1.Sends[0].Msg) // decided at leader
	// Next proposal piggybacks DecidedUpTo = 1.
	v2 := wire.EncodeBatch([]*wire.ClientRequest{{ClientID: 1, Seq: 2}})
	e, _ = l.ProposeBatch(v2)
	prop2 := e.Sends[0].Msg.(*wire.Propose)
	if prop2.DecidedUpTo != 1 {
		t.Fatalf("DecidedUpTo = %d, want 1", prop2.DecidedUpTo)
	}
	e1 = f1.HandleMessage(0, prop2)
	if len(e1.Decisions) != 1 || e1.Decisions[0].ID != 0 || !bytes.Equal(e1.Decisions[0].Value, v1) {
		t.Fatalf("follower decisions = %+v, want instance 0", e1.Decisions)
	}
	// Heartbeat carries the watermark too.
	e1 = f1.HandleMessage(0, &wire.Heartbeat{View: 0, DecidedUpTo: 1})
	if len(e1.Decisions) != 0 {
		t.Errorf("duplicate watermark redelivered decisions: %v", e1.Decisions)
	}
}

func TestWindowLimit(t *testing.T) {
	l, _, _ := establish3(t, 2)
	for i := range 2 {
		if _, ok := l.ProposeBatch(wire.EncodeBatch(nil)); !ok {
			t.Fatalf("proposal %d refused below window", i)
		}
	}
	if _, ok := l.ProposeBatch(wire.EncodeBatch(nil)); ok {
		t.Fatal("proposal accepted beyond window")
	}
	if l.WindowOpen() {
		t.Error("WindowOpen with full pipeline")
	}
}

func TestNonLeaderCannotPropose(t *testing.T) {
	_, f1, _ := establish3(t, 4)
	if _, ok := f1.ProposeBatch(wire.EncodeBatch(nil)); ok {
		t.Error("follower accepted a proposal")
	}
}

func TestViewChangePreservesAcceptedValue(t *testing.T) {
	l, f1, f2 := establish3(t, 4)
	value := wire.EncodeBatch([]*wire.ClientRequest{{ClientID: 5, Seq: 5, Payload: []byte("keep-me")}})
	e, _ := l.ProposeBatch(value)
	// Only f1 receives the proposal; the "crashing" leader's decision never
	// completes.
	prop := e.Sends[0].Msg
	f1.HandleMessage(0, prop)
	// f1 and f2 suspect the leader; view 1's leader is f1.
	e1 := f1.OnSuspect(0)
	if !f1.Preparing() {
		t.Fatal("f1 not preparing after suspicion of view 0")
	}
	var prepare wire.Message
	for _, s := range e1.Sends {
		if s.Msg.Type() == wire.TPrepare {
			prepare = s.Msg
		}
	}
	if prepare == nil {
		t.Fatal("no Prepare from new candidate")
	}
	e2 := f2.OnSuspect(0)
	if len(e2.Sends) != 0 {
		t.Errorf("f2 sent on suspicion: %v", e2.Sends)
	}
	if f2.View() != 1 {
		t.Errorf("f2 view = %d, want 1", f2.View())
	}
	// f2 answers the Prepare; with f1's own state that is a majority.
	e2 = f2.HandleMessage(1, prepare)
	var reproposed *wire.Propose
	for _, r := range e2.Sends {
		e1 = f1.HandleMessage(2, r.Msg)
		for _, s := range e1.Sends {
			if p, ok := s.Msg.(*wire.Propose); ok && p.ID == 0 {
				reproposed = p
			}
		}
	}
	if !f1.IsLeader() {
		t.Fatal("f1 did not establish leadership in view 1")
	}
	if reproposed == nil {
		t.Fatal("instance 0 not re-proposed in view 1")
	}
	if !bytes.Equal(reproposed.Value, value) {
		t.Fatalf("re-proposed value = %q, want the accepted value", reproposed.Value)
	}
	// Complete the decision: f2 accepts, f1 decides.
	e2 = f2.HandleMessage(1, reproposed)
	var decided []Decision
	for _, r := range e2.Sends {
		ef := f1.HandleMessage(2, r.Msg)
		decided = append(decided, ef.Decisions...)
	}
	if len(decided) != 1 || !bytes.Equal(decided[0].Value, value) {
		t.Fatalf("decisions after view change = %+v", decided)
	}
	// The deposed leader follows the new view upon seeing its Propose.
	el := l.HandleMessage(1, reproposed)
	if l.View() != 1 || l.IsLeader() {
		t.Errorf("old leader view=%d leading=%v, want view 1 follower", l.View(), l.IsLeader())
	}
	if !el.ViewChanged {
		t.Error("old leader did not signal ViewChanged")
	}
}

func TestNoOpGapFilling(t *testing.T) {
	l, f1, f2 := establish3(t, 8)
	// Propose instances 0 and 1; only instance 1 reaches f1.
	_, _ = l.ProposeBatch(wire.EncodeBatch([]*wire.ClientRequest{{ClientID: 1, Seq: 1}}))
	e2, _ := l.ProposeBatch(wire.EncodeBatch([]*wire.ClientRequest{{ClientID: 1, Seq: 2}}))
	f1.HandleMessage(0, e2.Sends[0].Msg)
	// View change to f1: instance 0 was never seen by {f1, f2}, so it must
	// be filled with a no-op; instance 1 must be re-proposed.
	e := f1.OnSuspect(0)
	f2.OnSuspect(0)
	var prepare wire.Message
	for _, s := range e.Sends {
		prepare = s.Msg
	}
	eResp := f2.HandleMessage(1, prepare)
	proposals := make(map[wire.InstanceID]*wire.Propose)
	for _, r := range eResp.Sends {
		ef := f1.HandleMessage(2, r.Msg)
		for _, s := range ef.Sends {
			if p, ok := s.Msg.(*wire.Propose); ok {
				proposals[p.ID] = p
			}
		}
	}
	if len(proposals) != 2 {
		t.Fatalf("re-proposals = %v, want instances 0 and 1", proposals)
	}
	noop, err := wire.DecodeBatch(proposals[0].Value)
	if err != nil || len(noop) != 0 {
		t.Errorf("instance 0 value = %v (err %v), want empty no-op batch", noop, err)
	}
	reqs, err := wire.DecodeBatch(proposals[1].Value)
	if err != nil || len(reqs) != 1 || reqs[0].Seq != 2 {
		t.Errorf("instance 1 value = %+v (err %v), want the view-0 batch", reqs, err)
	}
}

func TestCatchUpFlow(t *testing.T) {
	l, f1, f2 := establish3(t, 8)
	// Decide instances 0..2 with f1 only; f2 misses everything.
	var lastProp *wire.Propose
	for i := range 3 {
		val := wire.EncodeBatch([]*wire.ClientRequest{{ClientID: 1, Seq: uint64(i)}})
		e, _ := l.ProposeBatch(val)
		lastProp = e.Sends[0].Msg.(*wire.Propose)
		e1 := f1.HandleMessage(0, lastProp)
		l.HandleMessage(1, e1.Sends[0].Msg)
	}
	if l.DecidedUpTo() != 3 {
		t.Fatalf("leader DecidedUpTo = %d, want 3", l.DecidedUpTo())
	}
	// f2 now sees a heartbeat with the watermark: it has gaps and must ask
	// for catch-up.
	e2 := f2.HandleMessage(0, &wire.Heartbeat{View: 0, DecidedUpTo: 3})
	if e2.CatchUp == nil {
		t.Fatal("no catch-up query despite gaps")
	}
	if e2.CatchUp.From != 0 || e2.CatchUp.To != 3 {
		t.Errorf("catch-up range = [%d,%d), want [0,3)", e2.CatchUp.From, e2.CatchUp.To)
	}
	// A second watermark does not duplicate the query.
	if e := f2.HandleMessage(0, &wire.Heartbeat{View: 0, DecidedUpTo: 3}); e.CatchUp != nil {
		t.Error("duplicate catch-up query while one is pending")
	}
	// Leader answers; f2 delivers everything in order.
	el := l.HandleMessage(2, e2.CatchUp)
	if len(el.Sends) != 1 {
		t.Fatalf("leader catch-up sends = %d, want 1", len(el.Sends))
	}
	resp := el.Sends[0].Msg.(*wire.CatchUpResp)
	if len(resp.Entries) != 3 {
		t.Fatalf("catch-up entries = %d, want 3", len(resp.Entries))
	}
	ef := f2.HandleMessage(0, resp)
	if len(ef.Decisions) != 3 {
		t.Fatalf("f2 decisions = %d, want 3", len(ef.Decisions))
	}
	for i, d := range ef.Decisions {
		if d.ID != wire.InstanceID(i) {
			t.Errorf("decision %d has ID %d", i, d.ID)
		}
	}
	// CatchUpTimeout with nothing missing is a no-op.
	if e := f2.CatchUpTimeout(e2.CatchUpGen); e.CatchUp != nil {
		t.Error("CatchUpTimeout re-queried with nothing missing")
	}
}

func TestCatchUpTimeoutRearms(t *testing.T) {
	_, _, f2 := establish3(t, 8)
	e := f2.HandleMessage(0, &wire.Heartbeat{View: 0, DecidedUpTo: 2})
	if e.CatchUp == nil {
		t.Fatal("no catch-up query")
	}
	// The query was lost; the timeout must re-issue it.
	e = f2.CatchUpTimeout(e.CatchUpGen)
	if e.CatchUp == nil {
		t.Fatal("CatchUpTimeout did not re-issue the query")
	}
}

func TestCatchUpTimeoutGenerationChecked(t *testing.T) {
	l, f1, f2 := establish3(t, 8)
	val := wire.EncodeBatch([]*wire.ClientRequest{{ClientID: 1, Seq: 1}})
	e, _ := l.ProposeBatch(val)
	e1 := f1.HandleMessage(0, e.Sends[0].Msg.(*wire.Propose))
	l.HandleMessage(1, e1.Sends[0].Msg)

	// f2 misses the instance and issues query generation g1.
	eq := f2.HandleMessage(0, &wire.Heartbeat{View: 0, DecidedUpTo: 1})
	if eq.CatchUp == nil {
		t.Fatal("no catch-up query")
	}
	g1 := eq.CatchUpGen
	// The response lands (useless: no entries), clearing the pending query.
	f2.HandleMessage(0, &wire.CatchUpResp{})
	// A stale timeout for g1 fired between response delivery and now — but a
	// fresh watermark already re-armed a NEW query g2 in the meantime.
	e2 := f2.HandleMessage(0, &wire.Heartbeat{View: 0, DecidedUpTo: 1})
	if e2.CatchUp == nil {
		t.Fatal("no re-query after useless response + watermark")
	}
	g2 := e2.CatchUpGen
	if g2 == g1 {
		t.Fatalf("generations not distinct: %d", g1)
	}
	// The stale g1 timeout must be a no-op — no duplicate query alongside g2.
	if e := f2.CatchUpTimeout(g1); e.CatchUp != nil {
		t.Error("stale catch-up timeout issued a duplicate query")
	}
	// The live g2 timeout still re-arms.
	if e := f2.CatchUpTimeout(g2); e.CatchUp == nil {
		t.Error("live catch-up timeout did not re-issue the query")
	}
}

// TestCatchUpRespCapPaginates pins the per-response entry cap: a tiny cap
// forces the responder to answer a wide gap in chunks, and the requester's
// progress-gated follow-up queries page through the whole range without ever
// receiving an oversized response.
func TestCatchUpRespCapPaginates(t *testing.T) {
	const capN = 2
	l := NewNode(Options{ID: 0, N: 3, Window: 16, CatchUpMaxEntries: capN})
	f1 := NewNode(Options{ID: 1, N: 3})
	f2 := NewNode(Options{ID: 2, N: 3})
	e := l.Start()
	for _, s := range e.Sends {
		for _, r := range f1.HandleMessage(0, s.Msg).Sends {
			l.HandleMessage(1, r.Msg)
		}
	}
	const n = 7
	for i := range n {
		e, _ := l.ProposeBatch(wire.EncodeBatch([]*wire.ClientRequest{{ClientID: 1, Seq: uint64(i + 1)}}))
		e1 := f1.HandleMessage(0, e.Sends[0].Msg)
		l.HandleMessage(1, e1.Sends[0].Msg)
	}
	eq := f2.HandleMessage(0, &wire.Heartbeat{View: 0, DecidedUpTo: n})
	if eq.CatchUp == nil {
		t.Fatal("no catch-up query")
	}
	rounds := 0
	var decided int
	for q := eq.CatchUp; q != nil; {
		rounds++
		if rounds > n {
			t.Fatal("pagination did not terminate")
		}
		el := l.HandleMessage(2, q)
		resp := el.Sends[0].Msg.(*wire.CatchUpResp)
		if len(resp.Entries) > capN {
			t.Fatalf("response carries %d entries, cap is %d", len(resp.Entries), capN)
		}
		ef := f2.HandleMessage(0, resp)
		decided += len(ef.Decisions)
		q = ef.CatchUp // progress-gated follow-up for the remaining gap
	}
	if decided != n {
		t.Fatalf("paginated catch-up delivered %d decisions, want %d", decided, n)
	}
	if got, want := rounds, (n+capN-1)/capN; got != want {
		t.Errorf("pagination took %d rounds, want %d", got, want)
	}
}

// TestCatchUpByteCapKeepsProgress pins the byte cap's progress guarantee:
// even when a single entry exceeds the byte budget, the response still
// carries it (one entry minimum), so pagination cannot wedge.
func TestCatchUpByteCapKeepsProgress(t *testing.T) {
	l := NewNode(Options{ID: 0, N: 3, Window: 16, CatchUpMaxBytes: 8})
	f1 := NewNode(Options{ID: 1, N: 3})
	e := l.Start()
	for _, s := range e.Sends {
		for _, r := range f1.HandleMessage(0, s.Msg).Sends {
			l.HandleMessage(1, r.Msg)
		}
	}
	big := make([]byte, 100)
	for i := range 3 {
		e, _ := l.ProposeBatch(wire.EncodeBatch([]*wire.ClientRequest{{ClientID: 1, Seq: uint64(i + 1), Payload: big}}))
		e1 := f1.HandleMessage(0, e.Sends[0].Msg)
		l.HandleMessage(1, e1.Sends[0].Msg)
	}
	el := l.HandleMessage(2, &wire.CatchUpQuery{From: 0, To: 3})
	resp := el.Sends[0].Msg.(*wire.CatchUpResp)
	if len(resp.Entries) != 1 {
		t.Fatalf("byte-capped response carries %d entries, want exactly 1", len(resp.Entries))
	}
	if resp.Entries[0].ID != 0 {
		t.Errorf("capped response starts at %d, want 0", resp.Entries[0].ID)
	}
}

// TestCatchUpServedFromColdStore pins catch-up tier 2: a gap below the
// in-memory truncation base that the cold store (the WAL) covers is served
// as plain decided values — no snapshot rides the response.
func TestCatchUpServedFromColdStore(t *testing.T) {
	vals := map[wire.InstanceID][]byte{}
	cold := func(from, to wire.InstanceID, maxEntries int) ([]wire.DecidedValue, bool) {
		var out []wire.DecidedValue
		for id := from; id < to && len(out) < maxEntries; id++ {
			v, ok := vals[id]
			if !ok {
				return nil, false
			}
			out = append(out, wire.DecidedValue{ID: id, Value: v})
		}
		return out, true
	}
	meta := wire.SnapshotMeta{LastIncluded: 4, TotalBytes: 5}
	l := NewNode(Options{
		ID: 0, N: 3, Window: 16,
		Snapshots:   func() (wire.SnapshotMeta, bool) { return meta, true },
		ColdDecided: cold,
	})
	f1 := NewNode(Options{ID: 1, N: 3})
	e := l.Start()
	for _, s := range e.Sends {
		for _, r := range f1.HandleMessage(0, s.Msg).Sends {
			l.HandleMessage(1, r.Msg)
		}
	}
	for i := range 6 {
		val := wire.EncodeBatch([]*wire.ClientRequest{{ClientID: 1, Seq: uint64(i + 1)}})
		e, _ := l.ProposeBatch(val)
		e1 := f1.HandleMessage(0, e.Sends[0].Msg)
		l.HandleMessage(1, e1.Sends[0].Msg)
		vals[wire.InstanceID(i)] = val // "journaled" copy
	}
	l.TruncateLog(5) // memory now retains only instance 5

	// Gap [2, 6): [2,5) comes from the cold store, [5,6) from memory —
	// covered end to end, so no state transfer is needed.
	el := l.HandleMessage(2, &wire.CatchUpQuery{From: 2, To: 6})
	resp := el.Sends[0].Msg.(*wire.CatchUpResp)
	if resp.HasSnapshot {
		t.Fatal("snapshot attached although the cold store covers the gap")
	}
	if len(resp.Entries) != 4 || resp.Entries[0].ID != 2 || resp.Entries[3].ID != 5 {
		t.Fatalf("cold+memory entries = %+v, want instances 2..5", resp.Entries)
	}

	// A gap reaching below the cold store's retention still falls back to
	// state transfer.
	delete(vals, 0)
	el = l.HandleMessage(2, &wire.CatchUpQuery{From: 0, To: 6})
	resp = el.Sends[0].Msg.(*wire.CatchUpResp)
	if !resp.HasSnapshot || resp.Meta.LastIncluded != 4 {
		t.Fatalf("no snapshot fallback below cold retention: %+v", resp)
	}
}

func TestCatchUpWithSnapshot(t *testing.T) {
	meta := wire.SnapshotMeta{LastIncluded: 4, TotalBytes: 7}
	l := NewNode(Options{ID: 0, N: 3, Snapshots: func() (wire.SnapshotMeta, bool) { return meta, true }})
	f1 := NewNode(Options{ID: 1, N: 3})
	e := l.Start()
	for _, s := range e.Sends {
		for _, r := range f1.HandleMessage(0, s.Msg).Sends {
			l.HandleMessage(1, r.Msg)
		}
	}
	// Decide 0..5 at the leader, then truncate through 4.
	for i := range 6 {
		e, _ := l.ProposeBatch(wire.EncodeBatch([]*wire.ClientRequest{{ClientID: 1, Seq: uint64(i)}}))
		prop := e.Sends[0].Msg
		e1 := f1.HandleMessage(0, prop)
		l.HandleMessage(1, e1.Sends[0].Msg)
	}
	l.TruncateLog(5)
	if l.Log().Base() != 5 {
		t.Fatalf("log base = %d, want 5", l.Log().Base())
	}
	// A fresh replica asks for everything.
	el := l.HandleMessage(2, &wire.CatchUpQuery{From: 0, To: 6})
	resp := el.Sends[0].Msg.(*wire.CatchUpResp)
	if !resp.HasSnapshot || resp.Meta.LastIncluded != 4 {
		t.Fatalf("catch-up response = %+v, want snapshot meta through 4", resp)
	}
	if len(resp.Entries) != 1 || resp.Entries[0].ID != 5 {
		t.Fatalf("entries = %+v, want only instance 5", resp.Entries)
	}
	// Install on a lagging node. Phase 1: the snapshot is only SURFACED —
	// the node must not fast-forward (or journal a cut) before the
	// execution layer has the snapshot durably on disk, so no decisions can
	// be emitted yet and the log base must not move.
	f2 := NewNode(Options{ID: 2, N: 3})
	ef := f2.HandleMessage(0, resp)
	if ef.InstallSnapshot == nil || ef.InstallSnapshot.LastIncluded != 4 {
		t.Fatalf("InstallSnapshot effect = %+v", ef.InstallSnapshot)
	}
	if f2.Log().Base() != 0 {
		t.Fatalf("log base = %d before install release, want 0 (persist-before-cut)", f2.Log().Base())
	}
	if len(ef.Decisions) != 0 {
		t.Fatalf("decisions before install release = %+v, want none", ef.Decisions)
	}
	// A duplicate response must not re-surface the same pending install.
	if ef2 := f2.HandleMessage(0, resp); ef2.InstallSnapshot != nil {
		t.Fatal("duplicate response re-surfaced the pending install")
	}
	// Phase 2: the execution layer persisted the snapshot and releases the
	// fast-forward. Only now does the log jump — and the catch-up value
	// applied above the cut (instance 5) is emitted.
	ef = f2.FastForward(5)
	if f2.Log().Base() != 5 {
		t.Fatalf("log base = %d after release, want 5", f2.Log().Base())
	}
	if len(ef.Decisions) != 1 || ef.Decisions[0].ID != 5 {
		t.Fatalf("decisions after release = %+v, want instance 5 only", ef.Decisions)
	}
	if f2.DecidedUpTo() != 6 {
		t.Errorf("DecidedUpTo = %d, want 6", f2.DecidedUpTo())
	}
	// With the install complete, a fresh snapshot response for the same cut
	// is stale (base already past it) and surfaces nothing.
	if ef3 := f2.HandleMessage(0, resp); ef3.InstallSnapshot != nil {
		t.Error("stale snapshot re-surfaced after install completed")
	}
}

func TestStaleAndForgedMessagesIgnored(t *testing.T) {
	l, f1, _ := establish3(t, 4)
	// Move f1 to view 3 (leader = 0 via 3 mod 3).
	f1.OnSuspect(0)
	f1.OnSuspect(1)
	f1.OnSuspect(2)
	if f1.View() != 3 {
		t.Fatalf("f1 view = %d, want 3", f1.View())
	}
	// Stale propose from view 0 is ignored.
	if e := f1.HandleMessage(0, &wire.Propose{View: 0, ID: 9, Value: nil}); len(e.Sends) != 0 {
		t.Errorf("stale Propose answered: %v", e.Sends)
	}
	// Propose claiming view 1 from replica 2 (leader(1) = 1, not 2): forged.
	if e := f1.HandleMessage(2, &wire.Propose{View: 4, ID: 9}); len(e.Sends) != 0 {
		t.Errorf("forged Propose answered: %v", e.Sends)
	}
	// Prepare from non-leader of the view is ignored.
	if e := l.HandleMessage(2, &wire.Prepare{View: 4}); len(e.Sends) != 0 {
		t.Errorf("forged Prepare answered: %v", e.Sends)
	}
	// Accept for unknown instance is ignored.
	if e := l.HandleMessage(1, &wire.Accept{View: 0, ID: 999}); len(e.Decisions) != 0 {
		t.Errorf("unknown Accept decided: %v", e.Decisions)
	}
	// Stale suspicion is ignored.
	if e := f1.OnSuspect(0); e.ViewChanged {
		t.Error("stale suspicion changed view")
	}
}

func TestSingleReplicaDecidesImmediately(t *testing.T) {
	nd := NewNode(Options{ID: 0, N: 1, Window: 4})
	e := nd.Start()
	if !nd.IsLeader() {
		t.Fatal("single replica not leader after Start")
	}
	if len(e.Sends) != 0 {
		t.Errorf("single replica sent: %v", e.Sends)
	}
	val := wire.EncodeBatch([]*wire.ClientRequest{{ClientID: 1, Seq: 1}})
	e, ok := nd.ProposeBatch(val)
	if !ok {
		t.Fatal("proposal refused")
	}
	if len(e.Decisions) != 1 || !bytes.Equal(e.Decisions[0].Value, val) {
		t.Fatalf("decisions = %+v, want immediate decision", e.Decisions)
	}
}

func TestPrepareOKWithDecidedEntries(t *testing.T) {
	// A PrepareOK advertising a decided instance teaches the candidate the
	// decision directly.
	f1 := NewNode(Options{ID: 1, N: 3})
	f1.OnSuspect(0) // candidate for view 1
	val := wire.EncodeBatch([]*wire.ClientRequest{{ClientID: 2, Seq: 2}})
	e := f1.HandleMessage(2, &wire.PrepareOK{View: 1, Entries: []wire.InstanceState{
		{ID: 0, AcceptedView: 0, Decided: true, Value: val},
	}})
	if !f1.IsLeader() {
		t.Fatal("candidate did not finish with majority")
	}
	if len(e.Decisions) != 1 || !bytes.Equal(e.Decisions[0].Value, val) {
		t.Fatalf("decisions = %+v", e.Decisions)
	}
	// The decided instance must not be re-proposed.
	for _, s := range e.Sends {
		if p, ok := s.Msg.(*wire.Propose); ok && p.ID == 0 {
			t.Error("decided instance 0 re-proposed")
		}
	}
}

func TestHigherViewPrepareOverridesCandidate(t *testing.T) {
	// Node 1 is candidate for view 1; a Prepare for view 4 (leader 1 too)
	// from itself cannot happen, but a Prepare for view 3 from node 0 must
	// demote it to follower of view 3.
	f1 := NewNode(Options{ID: 1, N: 3})
	f1.OnSuspect(0)
	if !f1.Preparing() {
		t.Fatal("not preparing")
	}
	e := f1.HandleMessage(0, &wire.Prepare{View: 3, FirstUnstable: 0})
	if f1.Preparing() || f1.View() != 3 {
		t.Errorf("after higher Prepare: preparing=%v view=%d, want follower of 3", f1.Preparing(), f1.View())
	}
	if got := sendsByType(e); got[wire.TPrepareOK] != 1 {
		t.Errorf("sends = %v, want one PrepareOK", got)
	}
}

// ---------------------------------------------------------------------------
// Randomized schedule harness: delivers messages in random order with drops,
// duplications and leader suspicions, then checks the fundamental SMR safety
// properties.

type envelope struct {
	from, to int
	msg      wire.Message
}

type harness struct {
	t        *testing.T
	rng      *rand.Rand
	n        int
	nodes    []*Node
	inflight []envelope
	retrans  map[int]map[RetransKey][]envelope
	// catchGen[i] is node i's latest issued catch-up query generation — what
	// the caller's response timer would carry back to CatchUpTimeout.
	catchGen []uint64
	// delivered[i] is the ordered decision list of node i.
	delivered [][]Decision
	// agreed maps instance -> first value seen decided, for agreement checks.
	agreed map[wire.InstanceID][]byte
}

func newHarness(t *testing.T, n int, seed int64) *harness {
	h := &harness{
		t:         t,
		rng:       rand.New(rand.NewSource(seed)),
		n:         n,
		delivered: make([][]Decision, n),
		retrans:   make(map[int]map[RetransKey][]envelope),
		catchGen:  make([]uint64, n),
		agreed:    make(map[wire.InstanceID][]byte),
	}
	for i := range n {
		h.nodes = append(h.nodes, NewNode(Options{ID: i, N: n, Window: 4}))
		h.retrans[i] = make(map[RetransKey][]envelope)
	}
	for i, nd := range h.nodes {
		h.apply(i, nd.Start())
	}
	return h
}

// apply folds a node's effects into the harness state.
func (h *harness) apply(node int, e Effects) {
	for _, k := range e.CancelRetrans {
		delete(h.retrans[node], k)
	}
	for _, s := range e.Sends {
		var dests []int
		if s.To == Broadcast {
			for d := range h.n {
				if d != node {
					dests = append(dests, d)
				}
			}
		} else {
			dests = []int{s.To}
		}
		var envs []envelope
		for _, d := range dests {
			env := envelope{from: node, to: d, msg: s.Msg}
			envs = append(envs, env)
			h.inflight = append(h.inflight, env)
		}
		if s.Retrans != nil {
			h.retrans[node][*s.Retrans] = envs
		}
	}
	if e.CatchUp != nil {
		h.catchGen[node] = e.CatchUpGen
		// Ask the node's current leader.
		to := LeaderOf(h.nodes[node].View(), h.n)
		if to != node {
			h.inflight = append(h.inflight, envelope{from: node, to: to, msg: e.CatchUp})
		}
	}
	for _, d := range e.Decisions {
		// Per-node decisions must be contiguous from 0.
		if want := wire.InstanceID(len(h.delivered[node])); d.ID != want {
			h.t.Fatalf("node %d delivered instance %d, want %d (gap or duplicate)", node, d.ID, want)
		}
		h.delivered[node] = append(h.delivered[node], d)
		// Cross-node agreement.
		if prev, ok := h.agreed[d.ID]; ok {
			if !bytes.Equal(prev, d.Value) {
				h.t.Fatalf("agreement violated at instance %d: %q vs %q", d.ID, prev, d.Value)
			}
		} else {
			h.agreed[d.ID] = d.Value
		}
	}
}

// deliver hands env to its destination.
func (h *harness) deliver(env envelope) {
	e := h.nodes[env.to].HandleMessage(env.from, env.msg)
	h.apply(env.to, e)
}

// step processes one random event. chaos enables drops/dups/suspicions.
func (h *harness) step(chaos bool) {
	r := h.rng.Float64()
	switch {
	case chaos && r < 0.02:
		// Random suspicion: drives view changes.
		i := h.rng.Intn(h.n)
		h.apply(i, h.nodes[i].OnSuspect(h.nodes[i].View()))
	case chaos && r < 0.08:
		// Redeliver a random retransmittable message (duplication).
		i := h.rng.Intn(h.n)
		for _, envs := range h.retrans[i] {
			for _, env := range envs {
				h.inflight = append(h.inflight, env)
			}
			break
		}
	default:
		if len(h.inflight) == 0 {
			return
		}
		idx := h.rng.Intn(len(h.inflight))
		env := h.inflight[idx]
		h.inflight[idx] = h.inflight[len(h.inflight)-1]
		h.inflight = h.inflight[:len(h.inflight)-1]
		if chaos && h.rng.Float64() < 0.10 {
			return // dropped; retransmission will recover reliable traffic
		}
		h.deliver(env)
	}
}

// proposeAtLeader submits value via whichever node currently leads.
func (h *harness) proposeAtLeader(value []byte) bool {
	for i, nd := range h.nodes {
		if nd.WindowOpen() {
			e, ok := nd.ProposeBatch(value)
			if ok {
				h.apply(i, e)
				return true
			}
		}
	}
	return false
}

// drain runs the cluster with no chaos until quiescence, forcing
// retransmissions and heartbeats so every node converges.
func (h *harness) drain() {
	for round := 0; round < 60; round++ {
		for len(h.inflight) > 0 {
			h.step(false)
		}
		// Fire retransmissions.
		for i := range h.n {
			for _, envs := range h.retrans[i] {
				h.inflight = append(h.inflight, envs...)
			}
		}
		// Leader heartbeats propagate watermarks; followers retry catch-up.
		for i, nd := range h.nodes {
			if nd.IsLeader() {
				hb := &wire.Heartbeat{View: nd.View(), DecidedUpTo: nd.DecidedUpTo()}
				for d := range h.n {
					if d != i {
						h.inflight = append(h.inflight, envelope{from: i, to: d, msg: hb})
					}
				}
			} else {
				h.apply(i, nd.CatchUpTimeout(h.catchGen[i]))
			}
		}
		if len(h.inflight) == 0 {
			return
		}
	}
}

func runRandomizedSchedule(t *testing.T, n int, seed int64, steps int) {
	h := newHarness(t, n, seed)
	proposed := 0
	for s := range steps {
		if s%7 == 0 && proposed < 40 {
			val := wire.EncodeBatch([]*wire.ClientRequest{{ClientID: 77, Seq: uint64(proposed), Payload: []byte(fmt.Sprintf("v%d", proposed))}})
			if h.proposeAtLeader(val) {
				proposed++
			}
		}
		h.step(true)
	}
	h.drain()
	// Safety: all nodes delivered a prefix of the same sequence.
	maxLen := 0
	maxNode := 0
	for i := range h.nodes {
		if len(h.delivered[i]) > maxLen {
			maxLen = len(h.delivered[i])
			maxNode = i
		}
	}
	for i := range h.nodes {
		for j, d := range h.delivered[i] {
			ref := h.delivered[maxNode][j]
			if d.ID != ref.ID || !bytes.Equal(d.Value, ref.Value) {
				t.Fatalf("seed %d: node %d decision %d = (%d,%q), node %d has (%d,%q)",
					seed, i, j, d.ID, d.Value, maxNode, ref.ID, ref.Value)
			}
		}
	}
	// Progress: after drain with a live majority something must decide as
	// long as any proposals happened.
	if proposed > 3 && maxLen == 0 {
		t.Fatalf("seed %d: %d proposals but nothing decided", seed, proposed)
	}
}

func TestPropertyRandomScheduleAgreementN3(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		runRandomizedSchedule(t, 3, seed, 1200)
	}
}

func TestPropertyRandomScheduleAgreementN5(t *testing.T) {
	for seed := int64(100); seed < 115; seed++ {
		runRandomizedSchedule(t, 5, seed, 1500)
	}
}

// TestRefusedInstallResurfacesAfterTimeout pins the install retry loop: a
// surfaced snapshot whose two-phase install never completes (persist
// refused downstream, or every fast-forward nudge lost) must be surfaced
// again after a catch-up timeout — including a STALE timeout, because in a
// healthy-latency cluster responses always beat their timers and a reset
// gated on a live timeout would never run, wedging the replica behind the
// cut forever.
func TestRefusedInstallResurfacesAfterTimeout(t *testing.T) {
	f2 := NewNode(Options{ID: 2, N: 3})
	resp := &wire.CatchUpResp{HasSnapshot: true, Meta: wire.SnapshotMeta{
		LastIncluded: 4, TotalBytes: 1}}
	e := f2.HandleMessage(0, resp)
	if e.InstallSnapshot == nil {
		t.Fatal("snapshot not surfaced")
	}
	// Install in flight: duplicates do not re-surface.
	if e2 := f2.HandleMessage(0, resp); e2.InstallSnapshot != nil {
		t.Fatal("duplicate response re-surfaced a pending install")
	}
	// The install was refused (no FastForward ever arrives). A stale
	// timeout — no query pending, the response long since consumed it —
	// re-opens the gate, and the next response retries the install.
	f2.CatchUpTimeout(0)
	if e3 := f2.HandleMessage(0, resp); e3.InstallSnapshot == nil {
		t.Fatal("refused install never re-surfaced after a stale timeout")
	}
	// Once the install completes (FastForward released), the same snapshot
	// is stale by log position and stays quiet even after timeouts.
	f2.FastForward(5)
	f2.CatchUpTimeout(0)
	if e4 := f2.HandleMessage(0, resp); e4.InstallSnapshot != nil {
		t.Fatal("completed install re-surfaced")
	}
}

func TestGroupScopedSnapshotInstall(t *testing.T) {
	// A node running group 1 of 4 receives a snapshot cut at merged index
	// 99. Its share of the covered prefix is GroupCut(99, 4, 1) = 25 slots,
	// so once the two-phase install releases the fast-forward its log must
	// land at base 25, not 100. (The catch-up response itself only surfaces
	// the snapshot; the cut is released after the snapshot is durable.)
	f := NewNode(Options{ID: 2, N: 3, Group: 1, Groups: 4})
	resp := &wire.CatchUpResp{HasSnapshot: true, Meta: wire.SnapshotMeta{
		LastIncluded: 99, Groups: 4, TotalBytes: 1}}
	e := f.HandleMessage(0, resp)
	if e.InstallSnapshot == nil || e.InstallSnapshot.LastIncluded != 99 {
		t.Fatalf("InstallSnapshot effect = %+v", e.InstallSnapshot)
	}
	want := wire.GroupCut(99, 4, 1)
	if f.Log().Base() != 0 {
		t.Errorf("log base = %d before install release, want 0", f.Log().Base())
	}
	f.FastForward(want)
	if got := f.Log().Base(); got != want {
		t.Errorf("log base = %d, want %d", got, want)
	}

	// A topology-mismatched snapshot must not touch the log.
	f2 := NewNode(Options{ID: 2, N: 3, Group: 1, Groups: 4})
	bad := &wire.CatchUpResp{HasSnapshot: true, Meta: wire.SnapshotMeta{
		LastIncluded: 99, Groups: 2, TotalBytes: 1}}
	e = f2.HandleMessage(0, bad)
	if e.InstallSnapshot != nil {
		t.Error("mismatched-groups snapshot installed")
	}
	if f2.Log().Base() != 0 {
		t.Errorf("log base = %d after mismatched snapshot, want 0", f2.Log().Base())
	}
}

func TestFastForward(t *testing.T) {
	// A leader with open in-flight instances fast-forwards past some of
	// them (a sibling group's catch-up installed a snapshot): the covered
	// instances are dropped from the log and the open table, and delivery
	// resumes at the cut.
	l, f1, _ := establish3(t, 8)
	for i := range 4 {
		e, ok := l.ProposeBatch(wire.EncodeBatch([]*wire.ClientRequest{{ClientID: 1, Seq: uint64(i + 1)}}))
		if !ok {
			t.Fatalf("propose %d rejected", i)
		}
		_ = e
	}
	if l.InFlight() != 4 {
		t.Fatalf("in flight = %d, want 4", l.InFlight())
	}
	eff := l.FastForward(2)
	if l.Log().Base() != 2 {
		t.Errorf("log base = %d, want 2", l.Log().Base())
	}
	if l.InFlight() != 2 {
		t.Errorf("in flight after fast-forward = %d, want 2", l.InFlight())
	}
	// The dropped in-flight instances' retransmissions must be cancelled,
	// or the dead Proposes would re-broadcast every period forever.
	if len(eff.CancelRetrans) != 2 {
		t.Errorf("CancelRetrans = %v, want the 2 covered proposes", eff.CancelRetrans)
	}
	for _, k := range eff.CancelRetrans {
		if k.Kind != RetransPropose || k.ID >= 2 {
			t.Errorf("unexpected cancel %v", k)
		}
	}
	// A late Accept for a covered instance is harmless (no below-base
	// decide), and the surviving instances still decide normally.
	if e := l.HandleMessage(1, &wire.Accept{View: l.View(), ID: 0}); len(e.Decisions) != 0 {
		t.Errorf("covered instance decided after fast-forward: %+v", e.Decisions)
	}
	e := l.HandleMessage(1, &wire.Accept{View: l.View(), ID: 2})
	if len(e.Decisions) != 1 || e.Decisions[0].ID != 2 {
		t.Fatalf("decisions after fast-forward = %+v, want instance 2", e.Decisions)
	}
	// Fast-forwarding backwards is a no-op.
	l.FastForward(1)
	if l.Log().Base() != 2 {
		t.Errorf("log base moved backwards to %d", l.Log().Base())
	}
	_ = f1
}

func TestAdvanceToResynchronizesMissedViewChange(t *testing.T) {
	// A sibling-group node that missed the suspicion fan-out sits at view 0
	// believing the dead replica 0 leads. AdvanceTo(group 0's view) must
	// move it to the new view — and start Phase 1 when this replica leads
	// it — so the group heals without another suspicion.
	n := NewNode(Options{ID: 1, N: 3, Group: 1, Groups: 2})
	e := n.AdvanceTo(1) // leader(1) = 1: this node
	if n.View() != 1 || !e.ViewChanged {
		t.Fatalf("view = %d, changed = %v, want view 1 changed", n.View(), e.ViewChanged)
	}
	if !n.Preparing() {
		t.Error("new-view leader did not start Phase 1")
	}
	if len(e.Sends) == 0 {
		t.Error("no Prepare sent")
	}
	// Stale and equal targets are no-ops.
	if e := n.AdvanceTo(1); e.ViewChanged {
		t.Error("AdvanceTo(current view) changed state")
	}
	if e := n.AdvanceTo(0); e.ViewChanged {
		t.Error("AdvanceTo(older view) changed state")
	}
	// A non-leader of the target view just follows.
	f := NewNode(Options{ID: 2, N: 3, Group: 1, Groups: 2})
	if e := f.AdvanceTo(1); !e.ViewChanged || f.Preparing() {
		t.Errorf("follower AdvanceTo: changed=%v preparing=%v", e.ViewChanged, f.Preparing())
	}
}

func TestFastForwardRetainsAcceptorStateAboveCut(t *testing.T) {
	// A follower accepted slots 0..3 in view 0; a sibling group's snapshot
	// covers only slots < 2. Fast-forwarding must keep the promises for
	// slots 2..3 — wiping them would let a future leader's Phase 1 miss a
	// possibly-decided value.
	f := NewNode(Options{ID: 1, N: 3})
	for i := range 4 {
		f.HandleMessage(0, &wire.Propose{View: 0, ID: wire.InstanceID(i), Value: []byte{byte(i)}})
	}
	f.FastForward(2)
	if f.Log().Base() != 2 {
		t.Fatalf("base = %d, want 2", f.Log().Base())
	}
	suffix := f.Log().SuffixFrom(0)
	if len(suffix) != 2 || suffix[0].ID != 2 || suffix[1].ID != 3 {
		t.Fatalf("suffix after fast-forward = %+v, want accepted slots 2 and 3", suffix)
	}
	if suffix[0].Value[0] != 2 || suffix[1].Value[0] != 3 {
		t.Fatalf("accepted values lost: %+v", suffix)
	}
}
