package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func writeAll(t *testing.T, fs FS, path string, data []byte) {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOSPassthroughRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.bin")
	writeAll(t, OS, path, []byte("hello world"))
	got, err := OS.ReadFile(path)
	if err != nil || string(got) != "hello world" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	if err := OS.Rename(path, path+".2"); err != nil {
		t.Fatal(err)
	}
	if info, err := OS.Stat(path + ".2"); err != nil || info.Size() != 11 {
		t.Fatalf("Stat after rename = %v, %v", info, err)
	}
	if err := OS.Remove(path + ".2"); err != nil {
		t.Fatal(err)
	}
}

func TestFaultFSNthSyncTransientAndSticky(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(nil)
	ff.Fail(Rule{Op: OpSync, Path: "wal", Nth: 2})               // transient
	ff.Fail(Rule{Op: OpSync, Path: "wal", Nth: 4, Sticky: true}) // sticky from #4

	f, err := ff.OpenFile(filepath.Join(dir, "wal-1.seg"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var got []error
	for range 6 {
		got = append(got, f.Sync())
	}
	want := []bool{false, true, false, true, true, true} // true = error
	for i, e := range got {
		if (e != nil) != want[i] {
			t.Fatalf("sync #%d error = %v, want error=%v (all: %v)", i+1, e, want[i], got)
		}
	}
	if !errors.Is(got[1], ErrInjected) {
		t.Fatalf("transient fault error = %v, want ErrInjected", got[1])
	}
	if len(ff.Trips()) != 4 {
		t.Fatalf("trips = %v, want 4 entries", ff.Trips())
	}
}

func TestFaultFSPathFilterAndShortWrite(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(nil)
	ff.Fail(Rule{Op: OpWrite, Path: "target", Mode: ModeShortWrite})

	// Non-matching path is untouched.
	writeAll(t, ff, filepath.Join(dir, "other.bin"), []byte("unaffected"))

	f, err := ff.OpenFile(filepath.Join(dir, "target.bin"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if err == nil || n != 5 {
		t.Fatalf("short write = (%d, %v), want (5, error)", n, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(filepath.Join(dir, "target.bin"))
	if string(data) != "01234" {
		t.Fatalf("on-disk bytes after short write = %q, want %q", data, "01234")
	}
}

func TestFaultFSWriteBudgetAndCredit(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(nil)
	ff.SetWriteBudget(10)

	a := filepath.Join(dir, "a.bin")
	writeAll(t, ff, a, []byte("12345678")) // 8 bytes, 2 left

	f, err := ff.OpenFile(filepath.Join(dir, "b.bin"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("xyz")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("over-budget write error = %v, want ENOSPC", err)
	}
	// Removing a.bin credits its 8 bytes back; the same write now fits.
	if err := ff.Remove(a); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("xyz")); err != nil {
		t.Fatalf("write after credit: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	ff.SetWriteBudget(0)
	if err := writeErr(ff, filepath.Join(dir, "c.bin")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("zero budget write error = %v, want ENOSPC", err)
	}
	ff.FreeSpace()
	if err := writeErr(ff, filepath.Join(dir, "c.bin")); err != nil {
		t.Fatalf("write after FreeSpace: %v", err)
	}
}

func writeErr(fs FS, path string) error {
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write([]byte("data"))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

func TestFaultFSRenameAndOpenFaults(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(nil)
	ff.Fail(Rule{Op: OpRename, Path: "manifest"})
	ff.Fail(Rule{Op: OpOpen, Path: "blocked", Mode: ModeENOSPC})

	src := filepath.Join(dir, "manifest.tmp")
	writeAll(t, ff, src, []byte("m"))
	if err := ff.Rename(src, filepath.Join(dir, "manifest-9.mf")); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename error = %v, want injected", err)
	}
	// Rule was transient: the retry commits.
	if err := ff.Rename(src, filepath.Join(dir, "manifest-9.mf")); err != nil {
		t.Fatalf("rename retry: %v", err)
	}
	if _, err := ff.OpenFile(filepath.Join(dir, "blocked.seg"), os.O_WRONLY|os.O_CREATE, 0o644); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("open error = %v, want ENOSPC", err)
	}
}

func TestFaultFSReadCorruption(t *testing.T) {
	dir := t.TempDir()
	clean := []byte("0123456789abcdef")
	path := filepath.Join(dir, "seg.bin")
	writeAll(t, OS, path, clean)

	ff := NewFaultFS(nil)
	ff.Fail(Rule{Op: OpRead, Mode: ModeCorruptRead})
	got, err := ff.ReadFile(path)
	if err != nil || len(got) != len(clean) {
		t.Fatalf("ReadFile = %d bytes, %v", len(got), err)
	}
	if string(got) == string(clean) {
		t.Fatal("corrupt read returned clean bytes")
	}

	ff2 := NewFaultFS(nil)
	ff2.Fail(Rule{Op: OpRead, Mode: ModeTruncateRead})
	got, err = ff2.ReadFile(path)
	if err != nil || len(got) != len(clean)/2 {
		t.Fatalf("truncated ReadFile = %d bytes, %v; want %d", len(got), err, len(clean)/2)
	}

	ff3 := NewFaultFS(nil)
	ff3.Fail(Rule{Op: OpRead, Mode: ModeCorruptRead})
	f, err := ff3.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, len(clean))
	if n, err := f.ReadAt(buf, 0); err != nil || n != len(clean) {
		t.Fatalf("ReadAt = (%d, %v)", n, err)
	}
	if string(buf) == string(clean) {
		t.Fatal("corrupt ReadAt returned clean bytes")
	}
}

func TestSeedNthDeterministicAndInRange(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		for _, label := range []string{"wal-append/g1", "wal-fsync/g2", "chunk-write/g1"} {
			a, b := SeedNth(seed, label, 4), SeedNth(seed, label, 4)
			if a != b {
				t.Fatalf("SeedNth not deterministic: %d vs %d", a, b)
			}
			if a < 1 || a > 4 {
				t.Fatalf("SeedNth(%d, %q, 4) = %d out of range", seed, label, a)
			}
		}
	}
	// Different labels spread across the range for at least one seed.
	seen := map[int]bool{}
	for i := range 32 {
		seen[SeedNth(7, string(rune('a'+i)), 4)] = true
	}
	if len(seen) < 3 {
		t.Fatalf("SeedNth degenerate spread: %v", seen)
	}
}
