// Package vfs abstracts the filesystem underneath every durability layer
// (WAL segments, snapshot manifests and chunks, transfer staging) so that
// disk faults — failed fsyncs, short writes, ENOSPC, read corruption — can
// be injected deterministically in tests. Two implementations exist: OS, a
// zero-overhead passthrough to the real filesystem (the *os.File handles it
// returns satisfy File natively, so the WAL append hot path stays at
// 0 allocs/op), and FaultFS (faultfs.go), a rule-scripted wrapper that
// fails the Nth matching operation.
package vfs

import (
	"io"
	"os"
)

// File is the handle surface the durability layers need. *os.File satisfies
// it directly — implementations must honor the same contracts (Sync flushes
// to stable storage, Truncate extends with zeros, ReadAt is positionless).
type File interface {
	io.Writer
	io.ReaderAt
	io.Seeker
	io.Closer
	Name() string
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
}

// FS is the filesystem operations surface. Semantics mirror the os package
// functions of the same names. SyncDir fsyncs a directory, making previously
// committed renames/creates/removes inside it durable.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]os.DirEntry, error)
	MkdirAll(path string, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	RemoveAll(path string) error
	Stat(name string) (os.FileInfo, error)
	Truncate(name string, size int64) error
	SyncDir(name string) error
}

// OS is the passthrough to the real filesystem. Interface method dispatch on
// the returned *os.File handles adds no allocations.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		// Explicit nil: wrapping a nil *os.File in the interface would make
		// callers' f != nil checks pass on a dead handle.
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error) {
	return os.ReadDir(name)
}
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) RemoveAll(path string) error                  { return os.RemoveAll(path) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
