package vfs

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
)

// FaultFS wraps a base FS and fails operations according to a scripted rule
// list. It is fully deterministic: given the same rule script and the same
// sequence of filesystem operations, the same calls fail the same way —
// "seeding" a schedule means deriving rule positions from a seed up front
// (see SeedNth), not consulting randomness at run time.
type FaultFS struct {
	base FS

	mu     sync.Mutex
	rules  []*Rule
	budget int64 // remaining write budget in bytes; < 0 means unlimited
	trips  []string
}

// Op classifies filesystem operations for fault-rule matching.
type Op uint8

const (
	OpWrite Op = iota + 1
	OpSync     // File.Sync
	OpRead     // File.ReadAt and FS.ReadFile
	OpClose
	OpOpen // FS.OpenFile, any flags (creates included)
	OpRename
	OpRemove
	OpTruncate
	OpSyncDir
)

var opNames = map[Op]string{
	OpWrite: "write", OpSync: "sync", OpRead: "read", OpClose: "close",
	OpOpen: "open", OpRename: "rename", OpRemove: "remove",
	OpTruncate: "truncate", OpSyncDir: "syncdir",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Mode selects what a tripped rule does to the operation.
type Mode uint8

const (
	// ModeError fails the operation with Rule.Err (ErrInjected by default).
	ModeError Mode = iota
	// ModeShortWrite (OpWrite only) writes the first half of the buffer,
	// then reports the error — the torn-write shape a crash mid-write or a
	// failing device produces.
	ModeShortWrite
	// ModeENOSPC fails with ErrNoSpace (wraps syscall.ENOSPC).
	ModeENOSPC
	// ModeCorruptRead (OpRead only) lets the read succeed but flips one bit
	// in the middle of the returned bytes — silent corruption a CRC must
	// catch.
	ModeCorruptRead
	// ModeTruncateRead (OpRead only) returns only the first half of the
	// bytes the read produced.
	ModeTruncateRead
)

var modeNames = map[Mode]string{
	ModeError: "error", ModeShortWrite: "short-write", ModeENOSPC: "enospc",
	ModeCorruptRead: "corrupt-read", ModeTruncateRead: "truncate-read",
}

func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// ErrInjected is the default error a tripped rule returns.
var ErrInjected = errors.New("vfs: injected fault")

// ErrNoSpace is the injected out-of-space error; errors.Is(err,
// syscall.ENOSPC) holds so production ENOSPC handling triggers on it.
var ErrNoSpace = fmt.Errorf("vfs: injected: %w", syscall.ENOSPC)

// Rule scripts one fault: the Nth operation of kind Op whose path contains
// Path trips it. Transient rules (Sticky=false) trip exactly once and then
// go inert; sticky rules keep tripping from the Nth match on.
type Rule struct {
	Op     Op
	Path   string // substring the operation's path must contain; "" = any
	Nth    int    // 1-based matching occurrence that trips; 0 means 1
	Sticky bool
	Mode   Mode
	Err    error // overrides the injected error for ModeError/ModeShortWrite

	count int
	done  bool
}

func (r *Rule) err() error {
	if r.Err != nil {
		return r.Err
	}
	if r.Mode == ModeENOSPC {
		return ErrNoSpace
	}
	return ErrInjected
}

// NewFaultFS wraps base (OS when nil) with an empty script: every operation
// passes through until rules or a write budget are installed.
func NewFaultFS(base FS) *FaultFS {
	if base == nil {
		base = OS
	}
	return &FaultFS{base: base, budget: -1}
}

// Fail appends a rule to the script and returns the FaultFS for chaining.
func (f *FaultFS) Fail(r Rule) *FaultFS {
	if r.Nth <= 0 {
		r.Nth = 1
	}
	f.mu.Lock()
	f.rules = append(f.rules, &r)
	f.mu.Unlock()
	return f
}

// SetWriteBudget caps further writes at n bytes; once exhausted every write
// fails with ErrNoSpace. Remove/RemoveAll credit the removed bytes back, so
// retention GC genuinely frees injected "disk space". Negative n removes the
// cap.
func (f *FaultFS) SetWriteBudget(n int64) {
	f.mu.Lock()
	f.budget = n
	f.mu.Unlock()
}

// FreeSpace removes the write budget cap — the "operator freed disk space"
// event.
func (f *FaultFS) FreeSpace() { f.SetWriteBudget(-1) }

// Trips returns a copy of the log of every injected fault, in order.
func (f *FaultFS) Trips() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.trips...)
}

// check advances every rule matching (op, path) and returns the first rule
// that trips on this occurrence, or nil.
func (f *FaultFS) check(op Op, path string) *Rule {
	f.mu.Lock()
	defer f.mu.Unlock()
	var hit *Rule
	for _, r := range f.rules {
		if r.Op != op || (r.Path != "" && !strings.Contains(path, r.Path)) {
			continue
		}
		r.count++
		if hit != nil || r.done {
			continue
		}
		if r.count == r.Nth || (r.Sticky && r.count > r.Nth) {
			if !r.Sticky {
				r.done = true
			}
			f.trips = append(f.trips, fmt.Sprintf("%s %s #%d", op, filepath.Base(path), r.count))
			hit = r
		}
	}
	return hit
}

// chargeWrite debits n bytes from the write budget, failing with ErrNoSpace
// when the budget cannot cover them.
func (f *FaultFS) chargeWrite(path string, n int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.budget < 0 {
		return nil
	}
	if int64(n) > f.budget {
		f.trips = append(f.trips, fmt.Sprintf("enospc %s (%d > budget %d)", filepath.Base(path), n, f.budget))
		return ErrNoSpace
	}
	f.budget -= int64(n)
	return nil
}

// credit returns n bytes to the write budget (space freed by a remove).
func (f *FaultFS) credit(n int64) {
	f.mu.Lock()
	if f.budget >= 0 {
		f.budget += n
	}
	f.mu.Unlock()
}

// pathSize sums the file bytes under path (a file or directory) via the
// base FS, for budget credit on removal.
func (f *FaultFS) pathSize(path string) int64 {
	info, err := f.base.Stat(path)
	if err != nil {
		return 0
	}
	if !info.IsDir() {
		return info.Size()
	}
	var total int64
	entries, err := f.base.ReadDir(path)
	if err != nil {
		return 0
	}
	for _, e := range entries {
		total += f.pathSize(filepath.Join(path, e.Name()))
	}
	return total
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if r := f.check(OpOpen, name); r != nil {
		return nil, r.err()
	}
	base, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: base, fs: f, name: name}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	r := f.check(OpRead, name)
	if r != nil && r.Mode != ModeCorruptRead && r.Mode != ModeTruncateRead {
		return nil, r.err()
	}
	data, err := f.base.ReadFile(name)
	if err != nil || r == nil || len(data) == 0 {
		return data, err
	}
	switch r.Mode {
	case ModeCorruptRead:
		data[len(data)/2] ^= 0x01
	case ModeTruncateRead:
		data = data[:len(data)/2]
	}
	return data, nil
}

func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) { return f.base.ReadDir(name) }

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return f.base.MkdirAll(path, perm)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	// Match rules against both names so a rule scripted on either the
	// staging name or the committed name trips.
	if r := f.check(OpRename, oldpath+" -> "+newpath); r != nil {
		return r.err()
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if r := f.check(OpRemove, name); r != nil {
		return r.err()
	}
	size := f.pathSize(name)
	if err := f.base.Remove(name); err != nil {
		return err
	}
	f.credit(size)
	return nil
}

func (f *FaultFS) RemoveAll(path string) error {
	if r := f.check(OpRemove, path); r != nil {
		return r.err()
	}
	size := f.pathSize(path)
	if err := f.base.RemoveAll(path); err != nil {
		return err
	}
	f.credit(size)
	return nil
}

func (f *FaultFS) Stat(name string) (os.FileInfo, error) { return f.base.Stat(name) }

func (f *FaultFS) Truncate(name string, size int64) error {
	if r := f.check(OpTruncate, name); r != nil {
		return r.err()
	}
	return f.base.Truncate(name, size)
}

func (f *FaultFS) SyncDir(name string) error {
	if r := f.check(OpSyncDir, name); r != nil {
		return r.err()
	}
	return f.base.SyncDir(name)
}

// faultFile wraps a File so per-handle operations consult the script. It
// deliberately does not expose Fd(): preallocation falls back to the
// Truncate path, keeping every byte-extending operation visible to the
// wrapper.
type faultFile struct {
	f    File
	fs   *FaultFS
	name string
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if r := ff.fs.check(OpWrite, ff.name); r != nil {
		if r.Mode == ModeShortWrite && len(p) > 1 {
			n, err := ff.f.Write(p[:len(p)/2])
			if err != nil {
				return n, err
			}
			return n, r.err()
		}
		return 0, r.err()
	}
	if err := ff.fs.chargeWrite(ff.name, len(p)); err != nil {
		return 0, err
	}
	return ff.f.Write(p)
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := ff.f.ReadAt(p, off)
	if r := ff.fs.check(OpRead, ff.name); r != nil {
		switch r.Mode {
		case ModeCorruptRead:
			if n > 0 {
				p[n/2] ^= 0x01
			}
		case ModeTruncateRead:
			if n > 0 {
				return n / 2, r.err()
			}
		default:
			return 0, r.err()
		}
	}
	return n, err
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	return ff.f.Seek(offset, whence)
}

func (ff *faultFile) Close() error {
	if r := ff.fs.check(OpClose, ff.name); r != nil {
		// Close the real handle anyway — the injected error models a
		// buffered write surfacing at close, not a leaked descriptor.
		_ = ff.f.Close() // best-effort: the injected error supersedes it
		return r.err()
	}
	return ff.f.Close()
}

func (ff *faultFile) Name() string { return ff.name }

func (ff *faultFile) Sync() error {
	if r := ff.fs.check(OpSync, ff.name); r != nil {
		return r.err()
	}
	return ff.f.Sync()
}

func (ff *faultFile) Truncate(size int64) error {
	if r := ff.fs.check(OpTruncate, ff.name); r != nil {
		return r.err()
	}
	return ff.f.Truncate(size)
}

func (ff *faultFile) Stat() (os.FileInfo, error) { return ff.f.Stat() }

// SeedNth derives a deterministic rule position in [1, max] from a seed and
// a cell label — how fault-matrix tests turn one seed into a scripted,
// reproducible schedule that still varies across cells. splitmix64 over an
// FNV hash of the label keeps neighboring seeds uncorrelated.
func SeedNth(seed int64, label string, max int) int {
	if max <= 1 {
		return 1
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(label)) // best-effort: hash.Hash Write never errors
	z := uint64(seed)*0x9E3779B97F4A7C15 + h.Sum64()
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int(z%uint64(max)) + 1
}
