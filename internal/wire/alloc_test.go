package wire

import "testing"

// Allocation regression guards for the zero-copy hot path, run by plain
// `go test` so CI fails the moment pooling or append-encoding rots. The
// bounds are the PR's acceptance criteria: steady-state encode is
// allocation-free; decode+deliver stays within a small fixed budget (pool
// refills after a GC may cost the odd allocation, hence the slack).
const (
	maxEncodeAllocs = 0
	maxDecodeAllocs = 2
)

func TestEncodeHotPathAllocs(t *testing.T) {
	propose := &Propose{View: 3, ID: 42, DecidedUpTo: 41, Value: make([]byte, 1300)}
	grouped := &GroupMsg{Group: 2, Msg: propose}
	reqs := []*ClientRequest{
		{ClientID: 1, Seq: 1, Payload: make([]byte, 128)},
		{ClientID: 2, Seq: 7, Payload: make([]byte, 128)},
	}
	// The transfer responder's steady state: one pooled chunk per request,
	// Data borrowing the snapshot image.
	image := make([]byte, 64<<10)
	chunk := NewSnapshotChunk()
	chunk.Cut, chunk.Total, chunk.OK = 42, uint64(len(image)), true
	chunk.Data = image[:32<<10]
	// The post-reconfiguration steady state: every frame rides an epoch
	// envelope, reused by the sender exactly like this.
	stamped := &EpochMsg{Epoch: 3, Msg: grouped}
	buf := make([]byte, 0, 40<<10)
	for name, fn := range map[string]func(){
		"AppendMessage/Propose":       func() { buf = AppendMessage(buf[:0], propose) },
		"AppendMessage/GroupMsg":      func() { buf = AppendMessage(buf[:0], grouped) },
		"AppendMessage/EpochMsg":      func() { buf = AppendMessage(buf[:0], stamped) },
		"AppendMessage/SnapshotChunk": func() { buf = AppendMessage(buf[:0], chunk) },
		"AppendBatch":                 func() { buf = AppendBatch(buf[:0], reqs) },
	} {
		if got := testing.AllocsPerRun(200, fn); got > maxEncodeAllocs {
			t.Errorf("%s: %.1f allocs/op, budget %d", name, got, maxEncodeAllocs)
		}
	}
}

func TestDecodeHotPathAllocs(t *testing.T) {
	propose := Marshal(&Propose{View: 3, ID: 42, DecidedUpTo: 41, Value: make([]byte, 1300)})
	grouped := Marshal(&GroupMsg{Group: 2, Msg: &Propose{View: 3, ID: 42, Value: make([]byte, 1300)}})
	stamped := Marshal(&EpochMsg{Epoch: 3,
		Msg: &GroupMsg{Group: 2, Msg: &Propose{View: 3, ID: 42, Value: make([]byte, 1300)}}})
	accept := Marshal(&Accept{View: 3, ID: 42})
	chunkReq := Marshal(&SnapshotChunkReq{Cut: 42, Offset: 4096, MaxBytes: 32 << 10})
	chunkResp := Marshal(&SnapshotChunk{Cut: 42, Offset: 4096, Total: 1 << 20, OK: true,
		Data: make([]byte, 32<<10)})
	batch := EncodeBatch([]*ClientRequest{
		{ClientID: 1, Seq: 1, Payload: make([]byte, 128)},
		{ClientID: 2, Seq: 7, Payload: make([]byte, 128)},
	})
	var reqs []*ClientRequest
	for name, fn := range map[string]func(){
		// The follower's hottest inbound message, borrowed then released.
		"Unmarshal/Propose": func() {
			m, err := Unmarshal(propose)
			if err != nil {
				t.Fatal(err)
			}
			Release(m)
		},
		// The multi-group envelope decodes inline: no nested copy.
		"Unmarshal/GroupMsg": func() {
			m, err := Unmarshal(grouped)
			if err != nil {
				t.Fatal(err)
			}
			Release(m.(*GroupMsg).Msg)
			Release(m)
		},
		// The epoch fence's steady state: unwrap, match, dispatch inner.
		"Unmarshal/EpochMsg": func() {
			m, err := Unmarshal(stamped)
			if err != nil {
				t.Fatal(err)
			}
			em := m.(*EpochMsg)
			gm := em.Msg.(*GroupMsg)
			Release(gm.Msg)
			Release(gm)
			Release(em)
		},
		// The leader's hottest inbound message.
		"Unmarshal/Accept": func() {
			m, err := Unmarshal(accept)
			if err != nil {
				t.Fatal(err)
			}
			Release(m)
		},
		// The transfer hot path, both directions: pooled structs, Data
		// borrowing the frame.
		"Unmarshal/SnapshotChunkReq": func() {
			m, err := Unmarshal(chunkReq)
			if err != nil {
				t.Fatal(err)
			}
			Release(m)
		},
		"Unmarshal/SnapshotChunk": func() {
			m, err := Unmarshal(chunkResp)
			if err != nil {
				t.Fatal(err)
			}
			Release(m)
		},
		// The deliver path: decode a decided batch into reused storage.
		"DecodeBatchInto": func() {
			var err error
			reqs, err = DecodeBatchInto(reqs, batch)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range reqs {
				Release(r)
			}
		},
	} {
		if got := testing.AllocsPerRun(200, fn); got > maxDecodeAllocs {
			t.Errorf("%s: %.1f allocs/op, budget %d", name, got, maxDecodeAllocs)
		}
	}
}
