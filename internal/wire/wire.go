// Package wire defines the messages exchanged by replicas and clients and a
// compact binary codec for them (encoding/binary, little-endian).
//
// The protocol is the MultiPaxos variant the paper builds on (Sec. III-A with
// the batching and pipelining optimizations of [12]): views number leadership
// epochs (the leader of view v is replica v mod n), Phase 1 runs once per
// view over the unstable log suffix, and Phase 2 runs per instance, each
// instance carrying one *batch* of client requests. Followers send Phase 2b
// acknowledgements only to the leader (matching the packet accounting of
// Table III); they learn decisions through the DecidedUpTo watermark
// piggybacked on Propose and Heartbeat messages, and fetch anything they
// missed with the catch-up messages.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// View numbers leadership epochs. The leader of view v in an n-replica
// cluster is replica v mod n.
type View int32

// InstanceID identifies one consensus instance (one slot of the replicated
// log; each slot holds a batch).
type InstanceID int64

// MsgType discriminates messages on the wire.
type MsgType uint8

// Message type tags.
const (
	THello MsgType = iota + 1
	TPrepare
	TPrepareOK
	TPropose
	TAccept
	THeartbeat
	TCatchUpQuery
	TCatchUpResp
	TClientRequest
	TClientReply
	TGroupMsg
)

// String returns the message type name.
func (t MsgType) String() string {
	switch t {
	case THello:
		return "Hello"
	case TPrepare:
		return "Prepare"
	case TPrepareOK:
		return "PrepareOK"
	case TPropose:
		return "Propose"
	case TAccept:
		return "Accept"
	case THeartbeat:
		return "Heartbeat"
	case TCatchUpQuery:
		return "CatchUpQuery"
	case TCatchUpResp:
		return "CatchUpResp"
	case TClientRequest:
		return "ClientRequest"
	case TClientReply:
		return "ClientReply"
	case TGroupMsg:
		return "GroupMsg"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Message is implemented by every wire message.
type Message interface {
	Type() MsgType
}

// Hello is the first frame on a freshly established replica connection,
// identifying the sender.
type Hello struct {
	ID int32
}

// Type implements Message.
func (*Hello) Type() MsgType { return THello }

// Prepare is Phase 1a: a replica that believes itself leader of View asks
// the others for their accepted state from FirstUnstable onward.
type Prepare struct {
	View          View
	FirstUnstable InstanceID
}

// Type implements Message.
func (*Prepare) Type() MsgType { return TPrepare }

// InstanceState carries one log slot's acceptor state inside PrepareOK.
type InstanceState struct {
	ID           InstanceID
	AcceptedView View
	Decided      bool
	Value        []byte
}

// PrepareOK is Phase 1b: the acceptor's promise for View together with every
// instance it has accepted or decided at or above the leader's FirstUnstable.
type PrepareOK struct {
	View    View
	Entries []InstanceState
}

// Type implements Message.
func (*PrepareOK) Type() MsgType { return TPrepareOK }

// Propose is Phase 2a: the leader of View proposes Value (a batch) for
// instance ID. DecidedUpTo piggybacks the leader's decision watermark: every
// instance below it is decided, letting followers learn decisions without
// extra messages.
type Propose struct {
	View        View
	ID          InstanceID
	DecidedUpTo InstanceID
	Value       []byte
}

// Type implements Message.
func (*Propose) Type() MsgType { return TPropose }

// Accept is Phase 2b, sent only to the leader (Sec. VI-D3: "replicas send a
// single Phase 2b message to the leader in response to each batch").
type Accept struct {
	View View
	ID   InstanceID
}

// Type implements Message.
func (*Accept) Type() MsgType { return TAccept }

// Heartbeat is sent by the leader when idle; it drives the failure detector
// and carries the decision watermark so followers keep learning decisions
// even without new proposals.
type Heartbeat struct {
	View        View
	DecidedUpTo InstanceID
}

// Type implements Message.
func (*Heartbeat) Type() MsgType { return THeartbeat }

// CatchUpQuery asks a peer for the decided values of instances in
// [From, To). Sent by a replica that has learned instances are decided but
// is missing their values (Sec. III-C's catch-up/state-transfer service).
type CatchUpQuery struct {
	From InstanceID
	To   InstanceID
}

// Type implements Message.
func (*CatchUpQuery) Type() MsgType { return TCatchUpQuery }

// DecidedValue is one decided instance inside CatchUpResp.
type DecidedValue struct {
	ID    InstanceID
	Value []byte
}

// Snapshot transfers service state when the responder has truncated the log
// below the requested range. LastIncluded is an index into the replica's
// *merged* total order: with multi-group ordering the per-group log positions
// it covers are derived with GroupCut.
type Snapshot struct {
	LastIncluded InstanceID // state covers all merged instances <= LastIncluded
	ServiceState []byte
	ReplyCache   []byte
	// Groups records how many ordering groups produced the merged order the
	// snapshot was cut from. 0 and 1 both mean single-group; values > 1 are
	// appended to the encoding (single-group snapshots stay byte-identical to
	// the pre-group wire format).
	Groups int32
}

// GroupCount normalizes the snapshot's group topology: 0 (a legacy frame
// with no metadata) and 1 both mean single-group. Every consumer must use
// this — a snapshot is only installable on a replica running the same
// number of ordering groups.
func (s Snapshot) GroupCount() int {
	if s.Groups <= 1 {
		return 1
	}
	return int(s.Groups)
}

// GroupCut returns the first group-local instance of group g that is NOT
// covered by a snapshot through merged index lastIncluded, under the
// deterministic round-robin merge: merged index m holds group m%groups,
// group-local slot m/groups. Equivalently it is the number of group-g slots
// the merged prefix [0, lastIncluded] consumed. With groups <= 1 it reduces
// to lastIncluded+1, the classic single-log cut.
func GroupCut(lastIncluded InstanceID, groups, g int) InstanceID {
	if groups <= 1 {
		return lastIncluded + 1
	}
	m := int64(lastIncluded)
	if m < int64(g) {
		return 0
	}
	return InstanceID((m-int64(g))/int64(groups) + 1)
}

// CatchUpResp answers a CatchUpQuery with decided values and, if the
// responder's log no longer retains part of the range, a snapshot.
type CatchUpResp struct {
	Entries     []DecidedValue
	HasSnapshot bool
	Snapshot    Snapshot
}

// Type implements Message.
func (*CatchUpResp) Type() MsgType { return TCatchUpResp }

// ClientRequest is one client command. ClientID must be unique per client;
// Seq increases by one per request, giving at-most-once execution through
// the reply cache.
type ClientRequest struct {
	ClientID uint64
	Seq      uint64
	Payload  []byte
}

// Type implements Message.
func (*ClientRequest) Type() MsgType { return TClientRequest }

// NoRedirect in ClientReply.Redirect means the replica served the request.
const NoRedirect int32 = -1

// ClientReply answers a ClientRequest. If OK is false and Redirect is a
// replica ID, the client should retry at that replica (the current leader).
type ClientReply struct {
	ClientID uint64
	Seq      uint64
	OK       bool
	Redirect int32
	Payload  []byte
}

// Type implements Message.
func (*ClientReply) Type() MsgType { return TClientReply }

// GroupMsg multiplexes multi-group consensus traffic over the single
// per-peer connection: it wraps a consensus message with the ordering group
// it belongs to. Group-0 messages are always sent unwrapped, so a cluster
// configured with one group speaks exactly the pre-group wire format.
type GroupMsg struct {
	Group int32
	Msg   Message
}

// Type implements Message.
func (*GroupMsg) Type() MsgType { return TGroupMsg }

// Interface compliance checks.
var (
	_ Message = (*Hello)(nil)
	_ Message = (*Prepare)(nil)
	_ Message = (*PrepareOK)(nil)
	_ Message = (*Propose)(nil)
	_ Message = (*Accept)(nil)
	_ Message = (*Heartbeat)(nil)
	_ Message = (*CatchUpQuery)(nil)
	_ Message = (*CatchUpResp)(nil)
	_ Message = (*ClientRequest)(nil)
	_ Message = (*ClientReply)(nil)
	_ Message = (*GroupMsg)(nil)
)

// Codec errors.
var (
	ErrShortBuffer  = errors.New("wire: short buffer")
	ErrUnknownType  = errors.New("wire: unknown message type")
	ErrFrameTooBig  = errors.New("wire: frame exceeds maximum size")
	ErrTrailingData = errors.New("wire: trailing bytes after message")
)

// MaxFrameSize bounds a single frame; larger frames are rejected to protect
// against corrupt length prefixes.
const MaxFrameSize = 64 << 20

// appender accumulates the encoded form.
type appender struct{ b []byte }

func (a *appender) u8(v uint8)   { a.b = append(a.b, v) }
func (a *appender) u32(v uint32) { a.b = binary.LittleEndian.AppendUint32(a.b, v) }
func (a *appender) u64(v uint64) { a.b = binary.LittleEndian.AppendUint64(a.b, v) }
func (a *appender) i32(v int32)  { a.u32(uint32(v)) }
func (a *appender) i64(v int64)  { a.u64(uint64(v)) }
func (a *appender) bool(v bool) {
	if v {
		a.u8(1)
	} else {
		a.u8(0)
	}
}
func (a *appender) bytes(v []byte) {
	a.u32(uint32(len(v)))
	a.b = append(a.b, v...)
}

// reader consumes the encoded form with a sticky error.
type reader struct {
	b   []byte
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) i32() int32  { return int32(r.u32()) }
func (r *reader) i64() int64  { return int64(r.u64()) }
func (r *reader) bool() bool  { return r.u8() != 0 }
func (r *reader) fail()       { r.err = ErrShortBuffer; r.b = nil }
func (r *reader) len() uint32 { return uint32(len(r.b)) }

func (r *reader) bytes() []byte {
	n := r.u32()
	if r.err != nil || n > r.len() {
		r.fail()
		return nil
	}
	// Copy out so decoded messages do not alias transport buffers
	// (copy-slices-at-boundaries).
	v := make([]byte, n)
	copy(v, r.b[:n])
	r.b = r.b[n:]
	return v
}

// Marshal encodes m as a self-describing byte slice (type tag + body).
func Marshal(m Message) []byte {
	a := appender{b: make([]byte, 0, 64)}
	a.u8(uint8(m.Type()))
	switch v := m.(type) {
	case *Hello:
		a.i32(v.ID)
	case *Prepare:
		a.i32(int32(v.View))
		a.i64(int64(v.FirstUnstable))
	case *PrepareOK:
		a.i32(int32(v.View))
		a.u32(uint32(len(v.Entries)))
		for _, e := range v.Entries {
			a.i64(int64(e.ID))
			a.i32(int32(e.AcceptedView))
			a.bool(e.Decided)
			a.bytes(e.Value)
		}
	case *Propose:
		a.i32(int32(v.View))
		a.i64(int64(v.ID))
		a.i64(int64(v.DecidedUpTo))
		a.bytes(v.Value)
	case *Accept:
		a.i32(int32(v.View))
		a.i64(int64(v.ID))
	case *Heartbeat:
		a.i32(int32(v.View))
		a.i64(int64(v.DecidedUpTo))
	case *CatchUpQuery:
		a.i64(int64(v.From))
		a.i64(int64(v.To))
	case *CatchUpResp:
		a.u32(uint32(len(v.Entries)))
		for _, e := range v.Entries {
			a.i64(int64(e.ID))
			a.bytes(e.Value)
		}
		a.bool(v.HasSnapshot)
		if v.HasSnapshot {
			a.i64(int64(v.Snapshot.LastIncluded))
			a.bytes(v.Snapshot.ServiceState)
			a.bytes(v.Snapshot.ReplyCache)
			// Multi-group metadata is appended only when present, keeping
			// single-group snapshots byte-identical to the legacy format.
			if v.Snapshot.Groups > 1 {
				a.i32(v.Snapshot.Groups)
			}
		}
	case *ClientRequest:
		a.u64(v.ClientID)
		a.u64(v.Seq)
		a.bytes(v.Payload)
	case *ClientReply:
		a.u64(v.ClientID)
		a.u64(v.Seq)
		a.bool(v.OK)
		a.i32(v.Redirect)
		a.bytes(v.Payload)
	case *GroupMsg:
		if _, nested := v.Msg.(*GroupMsg); nested {
			panic("wire: Marshal of nested GroupMsg")
		}
		a.i32(v.Group)
		a.bytes(Marshal(v.Msg))
	default:
		panic(fmt.Sprintf("wire: Marshal of unknown message %T", m))
	}
	return a.b
}

// Unmarshal decodes a message produced by Marshal. The returned message owns
// its memory (no aliasing of b).
func Unmarshal(b []byte) (Message, error) {
	r := reader{b: b}
	t := MsgType(r.u8())
	if r.err != nil {
		return nil, r.err
	}
	var m Message
	switch t {
	case THello:
		m = &Hello{ID: r.i32()}
	case TPrepare:
		m = &Prepare{View: View(r.i32()), FirstUnstable: InstanceID(r.i64())}
	case TPrepareOK:
		v := &PrepareOK{View: View(r.i32())}
		n := r.u32()
		if r.err == nil && n <= r.len() { // each entry is >= 1 byte
			v.Entries = make([]InstanceState, 0, n)
			for range n {
				v.Entries = append(v.Entries, InstanceState{
					ID:           InstanceID(r.i64()),
					AcceptedView: View(r.i32()),
					Decided:      r.bool(),
					Value:        r.bytes(),
				})
			}
		} else if n > 0 {
			r.fail()
		}
		m = v
	case TPropose:
		m = &Propose{
			View:        View(r.i32()),
			ID:          InstanceID(r.i64()),
			DecidedUpTo: InstanceID(r.i64()),
			Value:       r.bytes(),
		}
	case TAccept:
		m = &Accept{View: View(r.i32()), ID: InstanceID(r.i64())}
	case THeartbeat:
		m = &Heartbeat{View: View(r.i32()), DecidedUpTo: InstanceID(r.i64())}
	case TCatchUpQuery:
		m = &CatchUpQuery{From: InstanceID(r.i64()), To: InstanceID(r.i64())}
	case TCatchUpResp:
		v := &CatchUpResp{}
		n := r.u32()
		if r.err == nil && n <= r.len() {
			v.Entries = make([]DecidedValue, 0, n)
			for range n {
				v.Entries = append(v.Entries, DecidedValue{
					ID:    InstanceID(r.i64()),
					Value: r.bytes(),
				})
			}
		} else if n > 0 {
			r.fail()
		}
		v.HasSnapshot = r.bool()
		if v.HasSnapshot {
			v.Snapshot = Snapshot{
				LastIncluded: InstanceID(r.i64()),
				ServiceState: r.bytes(),
				ReplyCache:   r.bytes(),
			}
			if r.err == nil && r.len() > 0 {
				v.Snapshot.Groups = r.i32()
			}
		}
		m = v
	case TClientRequest:
		m = &ClientRequest{ClientID: r.u64(), Seq: r.u64(), Payload: r.bytes()}
	case TClientReply:
		m = &ClientReply{
			ClientID: r.u64(),
			Seq:      r.u64(),
			OK:       r.bool(),
			Redirect: r.i32(),
			Payload:  r.bytes(),
		}
	case TGroupMsg:
		group := r.i32()
		body := r.bytes()
		if r.err != nil {
			return nil, r.err
		}
		inner, err := Unmarshal(body)
		if err != nil {
			return nil, err
		}
		if _, nested := inner.(*GroupMsg); nested {
			return nil, fmt.Errorf("%w: nested GroupMsg", ErrUnknownType)
		}
		m = &GroupMsg{Group: group, Msg: inner}
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, uint8(t))
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, ErrTrailingData
	}
	return m, nil
}

// EncodeBatch serializes a batch of client requests into one consensus value
// (Sec. III-B: requests are grouped into batches, the unit of ordering).
func EncodeBatch(reqs []*ClientRequest) []byte {
	a := appender{b: make([]byte, 0, 32*len(reqs)+4)}
	a.u32(uint32(len(reqs)))
	for _, req := range reqs {
		a.u64(req.ClientID)
		a.u64(req.Seq)
		a.bytes(req.Payload)
	}
	return a.b
}

// DecodeBatch parses a consensus value back into client requests.
func DecodeBatch(b []byte) ([]*ClientRequest, error) {
	r := reader{b: b}
	n := r.u32()
	if r.err != nil || uint64(n) > uint64(r.len()) {
		return nil, ErrShortBuffer
	}
	reqs := make([]*ClientRequest, 0, n)
	for range n {
		reqs = append(reqs, &ClientRequest{
			ClientID: r.u64(),
			Seq:      r.u64(),
			Payload:  r.bytes(),
		})
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, ErrTrailingData
	}
	return reqs, nil
}

// BatchOverhead is the encoded size overhead per batch, and RequestOverhead
// per request within it; used by the batching policy to respect the BSZ
// budget in wire bytes.
const (
	BatchOverhead   = 4
	RequestOverhead = 8 + 8 + 4
)

// EncodedRequestSize returns the wire size of one request inside a batch.
func EncodedRequestSize(payload int) int { return RequestOverhead + payload }

// WriteFrame writes payload to w prefixed with its uint32 length.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooBig
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: write frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame from r.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooBig
	}
	if n > math.MaxInt32 {
		return nil, ErrFrameTooBig
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: read frame payload: %w", err)
	}
	return payload, nil
}
