// Package wire defines the messages exchanged by replicas and clients and a
// compact binary codec for them (encoding/binary, little-endian).
//
// The protocol is the MultiPaxos variant the paper builds on (Sec. III-A with
// the batching and pipelining optimizations of [12]): views number leadership
// epochs (the leader of view v is replica v mod n), Phase 1 runs once per
// view over the unstable log suffix, and Phase 2 runs per instance, each
// instance carrying one *batch* of client requests. Followers send Phase 2b
// acknowledgements only to the leader (matching the packet accounting of
// Table III); they learn decisions through the DecidedUpTo watermark
// piggybacked on Propose and Heartbeat messages, and fetch anything they
// missed with the catch-up messages.
//
// # Buffer ownership (the zero-copy contract)
//
// The codec is built for an allocation-free steady state, which makes buffer
// ownership explicit at every boundary the bytes cross:
//
//   - AppendMessage encodes into a caller-supplied buffer (append-style);
//     Marshal is a convenience wrapper that allocates an exact-size buffer.
//   - Unmarshal BORROWS: every []byte field of the returned message aliases
//     the input frame, and the message struct itself may come from an
//     internal pool. The message is valid only while the frame is: a caller
//     that retains the message (or any of its byte fields) past the point
//     where the frame is recycled or rewritten must call Retain first.
//   - Retain(m) copies every borrowed byte field of m into fresh memory, in
//     place, severing all aliases to the frame.
//   - Release(m) hands the struct of a hot-path message back to its pool.
//     Only the sole owner may call it, and never twice; the byte buffers the
//     fields point at are NOT recycled (they may be shared — Release only
//     zeroes the struct). Releasing is optional: an unreleased message is
//     simply garbage collected.
//
// The replica pipeline applies the rule as: readers Retain value-carrying
// messages and recycle the frame immediately; the long-term retainers
// (storage.Log entries, the reply cache, snapshot stores) therefore always
// hold owned, immutable memory and never a transport buffer.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// View numbers leadership epochs. The leader of view v in an n-replica
// cluster is replica v mod n.
type View int32

// InstanceID identifies one consensus instance (one slot of the replicated
// log; each slot holds a batch).
type InstanceID int64

// MsgType discriminates messages on the wire.
type MsgType uint8

// Message type tags.
const (
	THello MsgType = iota + 1
	TPrepare
	TPrepareOK
	TPropose
	TAccept
	THeartbeat
	TCatchUpQuery
	TCatchUpResp
	TClientRequest
	TClientReply
	TGroupMsg
	TLeaseAck
	TReadIndexQuery
	TReadIndexResp
	TClientRead
	TSnapshotChunkReq
	TSnapshotChunk
	TEpochMsg
	TTopoUpdate
	TReconfig
)

// String returns the message type name.
func (t MsgType) String() string {
	switch t {
	case THello:
		return "Hello"
	case TPrepare:
		return "Prepare"
	case TPrepareOK:
		return "PrepareOK"
	case TPropose:
		return "Propose"
	case TAccept:
		return "Accept"
	case THeartbeat:
		return "Heartbeat"
	case TCatchUpQuery:
		return "CatchUpQuery"
	case TCatchUpResp:
		return "CatchUpResp"
	case TClientRequest:
		return "ClientRequest"
	case TClientReply:
		return "ClientReply"
	case TGroupMsg:
		return "GroupMsg"
	case TLeaseAck:
		return "LeaseAck"
	case TReadIndexQuery:
		return "ReadIndexQuery"
	case TReadIndexResp:
		return "ReadIndexResp"
	case TClientRead:
		return "ClientRead"
	case TSnapshotChunkReq:
		return "SnapshotChunkReq"
	case TSnapshotChunk:
		return "SnapshotChunk"
	case TEpochMsg:
		return "EpochMsg"
	case TTopoUpdate:
		return "TopoUpdate"
	case TReconfig:
		return "Reconfig"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Message is implemented by every wire message.
type Message interface {
	Type() MsgType
}

// Hello is the first frame on a freshly established replica connection,
// identifying the sender.
type Hello struct {
	ID int32
}

// Type implements Message.
func (*Hello) Type() MsgType { return THello }

// Prepare is Phase 1a: a replica that believes itself leader of View asks
// the others for their accepted state from FirstUnstable onward.
type Prepare struct {
	View          View
	FirstUnstable InstanceID
}

// Type implements Message.
func (*Prepare) Type() MsgType { return TPrepare }

// InstanceState carries one log slot's acceptor state inside PrepareOK.
type InstanceState struct {
	ID           InstanceID
	AcceptedView View
	Decided      bool
	Value        []byte
}

// PrepareOK is Phase 1b: the acceptor's promise for View together with every
// instance it has accepted or decided at or above the leader's FirstUnstable.
type PrepareOK struct {
	View    View
	Entries []InstanceState
}

// Type implements Message.
func (*PrepareOK) Type() MsgType { return TPrepareOK }

// Propose is Phase 2a: the leader of View proposes Value (a batch) for
// instance ID. DecidedUpTo piggybacks the leader's decision watermark: every
// instance below it is decided, letting followers learn decisions without
// extra messages.
type Propose struct {
	View        View
	ID          InstanceID
	DecidedUpTo InstanceID
	Value       []byte
}

// Type implements Message.
func (*Propose) Type() MsgType { return TPropose }

// Accept is Phase 2b, sent only to the leader (Sec. VI-D3: "replicas send a
// single Phase 2b message to the leader in response to each batch").
type Accept struct {
	View View
	ID   InstanceID
}

// Type implements Message.
func (*Accept) Type() MsgType { return TAccept }

// Heartbeat is sent by the leader when idle; it drives the failure detector
// and carries the decision watermark so followers keep learning decisions
// even without new proposals.
//
// When leader leases are enabled, group-0 heartbeats double as lease grants:
// LeaseMS is the lease duration in milliseconds and LeaseSeq numbers the
// grant round the follower acknowledges with a LeaseAck. Both fields are
// appended to the encoding only when LeaseMS is nonzero, so lease-less
// heartbeats stay byte-identical to the legacy wire format and old peers
// decode them unchanged.
type Heartbeat struct {
	View        View
	DecidedUpTo InstanceID
	LeaseMS     uint32
	LeaseSeq    uint64
}

// Type implements Message.
func (*Heartbeat) Type() MsgType { return THeartbeat }

// LeaseAck acknowledges a lease grant carried on a Heartbeat: the follower
// promises not to suspect (or help depose) the leader of View until its
// local lease timer — started at the grant's receipt — expires. Seq echoes
// the grant round so the leader can compute the quorum's ack coverage
// against its own send timestamps, which keeps the expiry arithmetic
// one-clock-local on each side (only bounded clock RATE skew is assumed,
// never synchronized clocks).
type LeaseAck struct {
	View View
	Seq  uint64
}

// Type implements Message.
func (*LeaseAck) Type() MsgType { return TLeaseAck }

// ReadIndexQuery asks the lease-holding leader for its current merged-order
// read index. It carries no values — the answer is one integer — which is
// what makes follower reads cheap: the follower waits locally until its own
// executor passes the returned index. Seq matches queries to responses on
// the asking replica.
type ReadIndexQuery struct {
	Seq uint64
}

// Type implements Message.
func (*ReadIndexQuery) Type() MsgType { return TReadIndexQuery }

// ReadIndexResp answers a ReadIndexQuery. OK is false when the responder is
// not a valid leaseholder (not leader, or its lease lapsed); the asker then
// falls back to ordering its reads through the log.
type ReadIndexResp struct {
	Seq   uint64
	Index InstanceID // merged index the asker must apply through before reading
	OK    bool
}

// Type implements Message.
func (*ReadIndexResp) Type() MsgType { return TReadIndexResp }

// ClientRead is a client read-only command addressed to the local read path:
// it never enters the ordering pipeline. Consistency selects the guarantee
// (see the gosmr.ReadConsistency constants); Seq gives reads their own
// at-most-once-free numbering — reads are never retried through the reply
// cache, a failed read simply falls back to an ordered ClientRequest.
// ClientRead.Consistency values (mirrored by gosmr.ReadConsistency).
const (
	// ReadLinearizable observes every write acknowledged before the read
	// started (lease check on the leader, read-index round on a follower).
	ReadLinearizable uint8 = 0
	// ReadStable reads whatever state the local replica has applied — no
	// coordination, no staleness bound.
	ReadStable uint8 = 1
)

type ClientRead struct {
	ClientID    uint64
	Seq         uint64
	Consistency uint8
	Payload     []byte
}

// Type implements Message.
func (*ClientRead) Type() MsgType { return TClientRead }

// CatchUpQuery asks a peer for the decided values of instances in
// [From, To). Sent by a replica that has learned instances are decided but
// is missing their values (Sec. III-C's catch-up/state-transfer service).
//
// The responder is free to answer with any prefix of the range: responses
// are capped (entries and bytes — see paxos.DefaultCatchUpMaxEntries), so a
// wide gap is paginated across several query/response rounds. The requester
// re-queries from its first still-missing instance whenever a response made
// progress, and otherwise falls back to its catch-up timer — which is what
// keeps pagination live without letting a useless response trigger a
// query/response ping-pong.
type CatchUpQuery struct {
	From InstanceID
	To   InstanceID
}

// Type implements Message.
func (*CatchUpQuery) Type() MsgType { return TCatchUpQuery }

// DecidedValue is one decided instance inside CatchUpResp.
type DecidedValue struct {
	ID    InstanceID
	Value []byte
}

// Snapshot is the in-memory assembled snapshot — the currency between the
// ServiceManager, Merger, ordering groups, and boot. LastIncluded is an
// index into the replica's *merged* total order: with multi-group ordering
// the per-group log positions it covers are derived with GroupCut.
//
// A Snapshot never crosses the wire whole anymore: catch-up carries only a
// SnapshotMeta describing it, and the requester pulls the snapshot's
// serialized image in bounded SnapshotChunk frames. ServiceState holds the
// service's framed generation chain (see internal/snapshot.EncodeChain) —
// for chunk-contract services a base generation plus deltas, for blob
// services a single full generation.
type Snapshot struct {
	LastIncluded InstanceID // state covers all merged instances <= LastIncluded
	ServiceState []byte
	ReplyCache   []byte
	// Groups records how many ordering groups produced the merged order the
	// snapshot was cut from. 0 and 1 both mean single-group.
	Groups int32
	// Topo is the encoded cluster topology (EncodeTopology) in force at the
	// cut, nil on legacy epoch-0 snapshots. A joiner bootstrapping through
	// state transfer learns the epoch it is joining from here, and a reboot
	// from a snapshot resumes in the shape it crashed in.
	Topo []byte
}

// SnapshotMeta describes an available snapshot without carrying its state:
// the catch-up answer when the responder has truncated the log below the
// requested range. The requester pulls the TotalBytes-long snapshot image
// with SnapshotChunkReq/SnapshotChunk rounds, then installs the decoded
// Snapshot.
type SnapshotMeta struct {
	LastIncluded InstanceID
	Groups       int32
	TotalBytes   uint64
}

// GroupCount normalizes the meta's group topology exactly like
// Snapshot.GroupCount.
func (m SnapshotMeta) GroupCount() int {
	if m.Groups <= 1 {
		return 1
	}
	return int(m.Groups)
}

// GroupCount normalizes the snapshot's group topology: 0 (a legacy frame
// with no metadata) and 1 both mean single-group. Every consumer must use
// this — a snapshot is only installable on a replica running the same
// number of ordering groups.
func (s Snapshot) GroupCount() int {
	if s.Groups <= 1 {
		return 1
	}
	return int(s.Groups)
}

// GroupCut returns the first group-local instance of group g that is NOT
// covered by a snapshot through merged index lastIncluded, under the
// deterministic round-robin merge: merged index m holds group m%groups,
// group-local slot m/groups. Equivalently it is the number of group-g slots
// the merged prefix [0, lastIncluded] consumed. With groups <= 1 it reduces
// to lastIncluded+1, the classic single-log cut.
func GroupCut(lastIncluded InstanceID, groups, g int) InstanceID {
	if groups <= 1 {
		return lastIncluded + 1
	}
	m := int64(lastIncluded)
	if m < int64(g) {
		return 0
	}
	return InstanceID((m-int64(g))/int64(groups) + 1)
}

// ---------------------------------------------------------------------------
// Topology: the epoch-stamped cluster shape.

// Topology is the explicit, versioned cluster shape: which replica IDs
// exist, their inter-replica and client-facing addresses, and how many
// ordering groups partition the log. It replaces the boot-frozen
// len(Peers) arithmetic everywhere quorum or view math happens.
//
// Replica IDs are never reused: a removed replica leaves an empty-string
// hole in Peers, and an added replica always takes the next free slot at
// the end. Epochs advance by exactly one per reconfiguration, each step
// adding or removing a single replica, so the quorums of adjacent epochs
// always intersect — the invariant the reconfiguration safety argument
// rests on (see the README's Reconfiguration section).
//
// BaseView is the first view valid in this epoch: applying the topology
// advances every ordering group to at least BaseView, so the leader map of
// views below it (which the PREVIOUS epoch's shape may have assigned to a
// different replica) can never produce a second proposer for a ballot the
// new epoch uses.
type Topology struct {
	Epoch    int64
	BaseView View
	Groups   int32
	Peers    []string // inter-replica addresses, indexed by ID; "" = removed
	Clients  []string // client-facing addresses, parallel to Peers ("" = unknown)
}

// N returns the number of active replicas (non-hole slots).
func (t *Topology) N() int {
	n := 0
	for _, a := range t.Peers {
		if a != "" {
			n++
		}
	}
	return n
}

// Quorum returns the majority size of the active replica set.
func (t *Topology) Quorum() int { return t.N()/2 + 1 }

// Active reports whether replica id is a live member of this epoch.
func (t *Topology) Active(id int) bool {
	return id >= 0 && id < len(t.Peers) && t.Peers[id] != ""
}

// Leader returns the leader of view v: the (v mod N)-th active replica in
// ID order. For a hole-free topology this is exactly the classic v mod n.
// Allocation-free — it runs on the per-message leader-identity checks.
func (t *Topology) Leader(v View) int {
	n := t.N()
	if n == 0 {
		return 0
	}
	k := int(uint32(v)) % n
	for i, a := range t.Peers {
		if a != "" {
			if k == 0 {
				return i
			}
			k--
		}
	}
	return 0
}

// ClientAddr returns replica id's client-facing address ("" if unknown).
func (t *Topology) ClientAddr(id int) string {
	if id < 0 || id >= len(t.Clients) {
		return ""
	}
	return t.Clients[id]
}

// Clone returns a deep copy (the slices are freshly allocated).
func (t *Topology) Clone() *Topology {
	cp := *t
	cp.Peers = append([]string(nil), t.Peers...)
	cp.Clients = append([]string(nil), t.Clients...)
	return &cp
}

// GroupCount normalizes Groups exactly like Snapshot.GroupCount.
func (t *Topology) GroupCount() int {
	if t.Groups <= 1 {
		return 1
	}
	return int(t.Groups)
}

// Validate checks structural invariants.
func (t *Topology) Validate() error {
	if t.Epoch < 0 {
		return fmt.Errorf("wire: topology epoch %d is negative", t.Epoch)
	}
	if t.N() == 0 {
		return fmt.Errorf("wire: topology epoch %d has no active replicas", t.Epoch)
	}
	if len(t.Clients) > len(t.Peers) {
		return fmt.Errorf("wire: topology epoch %d has %d client addrs for %d peer slots",
			t.Epoch, len(t.Clients), len(t.Peers))
	}
	return nil
}

// TopologySize returns the exact encoded size of t.
func TopologySize(t *Topology) int {
	n := 8 + 4 + 4 + 4 + 4
	for _, a := range t.Peers {
		n += 4 + len(a)
	}
	for _, a := range t.Clients {
		n += 4 + len(a)
	}
	return n
}

// AppendTopology appends t's encoding to dst. The same serialization is
// used on the wire (TopoUpdate), in the WAL (RecTopo values), and inside
// snapshot images and manifests — one format, one decoder.
func AppendTopology(dst []byte, t *Topology) []byte {
	a := appender{b: dst}
	a.i64(t.Epoch)
	a.i32(int32(t.BaseView))
	a.i32(t.Groups)
	a.u32(uint32(len(t.Peers)))
	for _, addr := range t.Peers {
		a.bytes([]byte(addr))
	}
	a.u32(uint32(len(t.Clients)))
	for _, addr := range t.Clients {
		a.bytes([]byte(addr))
	}
	return a.b
}

// EncodeTopology serializes t into a fresh exact-size buffer.
func EncodeTopology(t *Topology) []byte {
	return AppendTopology(make([]byte, 0, TopologySize(t)), t)
}

// decodeTopologyFrom parses one topology out of r (strings are copied —
// topologies are rare control data and long-lived, never frame-borrowed).
func decodeTopologyFrom(r *reader) (*Topology, error) {
	t := &Topology{
		Epoch:    r.i64(),
		BaseView: View(r.i32()),
		Groups:   r.i32(),
	}
	np := r.u32()
	if r.err != nil || np > r.len() {
		r.fail()
		return nil, r.err
	}
	t.Peers = make([]string, 0, np)
	for range np {
		t.Peers = append(t.Peers, string(r.bytes()))
	}
	nc := r.u32()
	if r.err != nil || nc > r.len() {
		r.fail()
		return nil, r.err
	}
	t.Clients = make([]string, 0, nc)
	for range nc {
		t.Clients = append(t.Clients, string(r.bytes()))
	}
	if r.err != nil {
		return nil, r.err
	}
	return t, nil
}

// DecodeTopology parses an EncodeTopology buffer.
func DecodeTopology(b []byte) (*Topology, error) {
	r := reader{b: b}
	t, err := decodeTopologyFrom(&r)
	if err != nil {
		return nil, err
	}
	if len(r.b) != 0 {
		return nil, ErrTrailingData
	}
	return t, nil
}

// TopoUpdate carries a committed topology to a peer or client whose epoch
// is stale: the "redirect carrying the new topology". Replicas send it in
// response to mismatched-epoch frames; clients receive it as a connection
// greeting and on every reconfiguration, and re-resolve their address list
// from it.
type TopoUpdate struct {
	Topo Topology
}

// Type implements Message.
func (*TopoUpdate) Type() MsgType { return TTopoUpdate }

// Reconfig is a client-path administrative request: add one replica
// (Remove < 0, PeerAddr/ClientAddr name the joiner) or remove one
// (Remove = its ID). The contacted replica must lead group 0; otherwise it
// answers with a redirect like any write. The success reply's payload is
// the committed new topology (EncodeTopology).
type Reconfig struct {
	ClientID   uint64
	Seq        uint64
	Remove     int32
	PeerAddr   string
	ClientAddr string
}

// Type implements Message.
func (*Reconfig) Type() MsgType { return TReconfig }

// ConfigClientID is the reserved client ID that marks a batch as a
// configuration command: a batch holding exactly one request with this
// client ID carries an encoded Topology instead of a service command, and
// the ServiceManager applies it instead of executing it. Real clients can
// never use ID 0 (gosmr.Dial ORs the low bit into random IDs and ClientIO
// rejects it), so the distinguished value can't collide.
const ConfigClientID uint64 = 0

// CatchUpResp answers a CatchUpQuery with decided values and, if neither
// the responder's in-memory log nor its WAL (the disk-backed catch-up tier)
// can serve the start of the range, the metadata of a snapshot the
// requester should pull instead (chunk by chunk — the state itself never
// rides inline). Entries may cover only a capped prefix of the queried
// range — the requester pages through the rest with follow-up queries (see
// CatchUpQuery).
type CatchUpResp struct {
	Entries     []DecidedValue
	HasSnapshot bool
	Meta        SnapshotMeta
}

// Type implements Message.
func (*CatchUpResp) Type() MsgType { return TCatchUpResp }

// SnapshotChunkReq asks a peer for MaxBytes of the snapshot image cut at
// Cut (its LastIncluded merged index), starting at byte Offset. The puller
// keeps a single request outstanding and advances Offset by what it
// received — which is what makes the pull resumable (after a reconnect or
// restart it continues from the last byte it durably staged, not byte 0)
// and rate-limitable (the requester paces its own requests).
type SnapshotChunkReq struct {
	Cut      InstanceID
	Offset   uint64
	MaxBytes uint32
}

// Type implements Message.
func (*SnapshotChunkReq) Type() MsgType { return TSnapshotChunkReq }

// SnapshotChunk answers a SnapshotChunkReq with one bounded slice of the
// snapshot image: Data is image[Offset : Offset+len(Data)] of an image
// Total bytes long. OK is false when the responder no longer holds a
// snapshot at Cut (it moved on to a newer one); the puller then restarts
// against the responder's current snapshot. Every frame respects the
// requester's MaxBytes — the snapshot never crosses the wire as a single
// unbounded unit.
type SnapshotChunk struct {
	Cut    InstanceID
	Offset uint64
	Total  uint64
	OK     bool
	Data   []byte
}

// Type implements Message.
func (*SnapshotChunk) Type() MsgType { return TSnapshotChunk }

// ClientRequest is one client command. ClientID must be unique per client;
// Seq increases by one per request, giving at-most-once execution through
// the reply cache.
type ClientRequest struct {
	ClientID uint64
	Seq      uint64
	Payload  []byte
}

// Type implements Message.
func (*ClientRequest) Type() MsgType { return TClientRequest }

// NoRedirect in ClientReply.Redirect means the replica served the request.
const NoRedirect int32 = -1

// ClientReply answers a ClientRequest. If OK is false and Redirect is a
// replica ID, the client should retry at that replica (the current leader).
type ClientReply struct {
	ClientID uint64
	Seq      uint64
	OK       bool
	Redirect int32
	Payload  []byte
}

// Type implements Message.
func (*ClientReply) Type() MsgType { return TClientReply }

// GroupMsg multiplexes multi-group consensus traffic over the single
// per-peer connection: it wraps a consensus message with the ordering group
// it belongs to. Group-0 messages are always sent unwrapped, so a cluster
// configured with one group speaks exactly the pre-group wire format.
type GroupMsg struct {
	Group int32
	Msg   Message
}

// Type implements Message.
func (*GroupMsg) Type() MsgType { return TGroupMsg }

// EpochMsg stamps a peer frame with the sender's topology epoch. It is the
// OUTERMOST envelope (it may wrap a GroupMsg; nothing wraps it): the reader
// compares the stamp against its own epoch before the inner message is
// looked at, and a mismatch drops the frame and answers with a TopoUpdate.
// Epoch-0 clusters (never reconfigured) send every frame unwrapped, so the
// pre-topology wire format is preserved byte for byte.
type EpochMsg struct {
	Epoch int64
	Msg   Message
}

// Type implements Message.
func (*EpochMsg) Type() MsgType { return TEpochMsg }

// Interface compliance checks.
var (
	_ Message = (*Hello)(nil)
	_ Message = (*Prepare)(nil)
	_ Message = (*PrepareOK)(nil)
	_ Message = (*Propose)(nil)
	_ Message = (*Accept)(nil)
	_ Message = (*Heartbeat)(nil)
	_ Message = (*CatchUpQuery)(nil)
	_ Message = (*CatchUpResp)(nil)
	_ Message = (*ClientRequest)(nil)
	_ Message = (*ClientReply)(nil)
	_ Message = (*GroupMsg)(nil)
	_ Message = (*LeaseAck)(nil)
	_ Message = (*ReadIndexQuery)(nil)
	_ Message = (*ReadIndexResp)(nil)
	_ Message = (*ClientRead)(nil)
	_ Message = (*SnapshotChunkReq)(nil)
	_ Message = (*SnapshotChunk)(nil)
	_ Message = (*EpochMsg)(nil)
	_ Message = (*TopoUpdate)(nil)
	_ Message = (*Reconfig)(nil)
)

// Codec errors.
var (
	ErrShortBuffer  = errors.New("wire: short buffer")
	ErrUnknownType  = errors.New("wire: unknown message type")
	ErrFrameTooBig  = errors.New("wire: frame exceeds maximum size")
	ErrTrailingData = errors.New("wire: trailing bytes after message")
)

// MaxFrameSize bounds a single frame; larger frames are rejected to protect
// against corrupt length prefixes.
const MaxFrameSize = 64 << 20

// ---------------------------------------------------------------------------
// Message struct pools.
//
// The steady-state message types — everything the decide hot path touches —
// are recycled through sync.Pools so a busy replica decodes without
// allocating. Rare control messages (PrepareOK, CatchUpResp, ...) are
// allocated normally: pooling them would widen the ownership audit for no
// measurable gain.

var (
	proposePool   = sync.Pool{New: func() any { return new(Propose) }}
	acceptPool    = sync.Pool{New: func() any { return new(Accept) }}
	heartbeatPool = sync.Pool{New: func() any { return new(Heartbeat) }}
	requestPool   = sync.Pool{New: func() any { return new(ClientRequest) }}
	replyPool     = sync.Pool{New: func() any { return new(ClientReply) }}
	groupMsgPool  = sync.Pool{New: func() any { return new(GroupMsg) }}
	readPool      = sync.Pool{New: func() any { return new(ClientRead) }}
	// Chunk transfer messages are pooled too: a big-state pull streams
	// thousands of them, and the responder encodes each from a borrowed
	// image slice — steady-state transfer must not allocate per frame.
	chunkReqPool = sync.Pool{New: func() any { return new(SnapshotChunkReq) }}
	chunkPool    = sync.Pool{New: func() any { return new(SnapshotChunk) }}
	// EpochMsg envelopes wrap every peer frame of a reconfigured cluster —
	// pooled so the epoch stamp adds zero steady-state allocations.
	epochMsgPool = sync.Pool{New: func() any { return new(EpochMsg) }}
)

// NewClientReply returns a pooled, zeroed ClientReply for callers that build
// replies on the hot path and Release them after encoding.
func NewClientReply() *ClientReply {
	v := replyPool.Get().(*ClientReply)
	*v = ClientReply{}
	return v
}

// Release returns a hot-path message struct to its pool. The caller must be
// the message's sole owner and must not touch it afterwards. Byte fields are
// NOT recycled — they may be shared with a log entry or reply cache — so
// Release only severs the struct's references. Non-pooled message types are
// ignored (plain garbage collection reclaims them). Releasing a GroupMsg
// envelope does not release the wrapped message.
func Release(m Message) {
	switch v := m.(type) {
	case *Propose:
		*v = Propose{}
		proposePool.Put(v)
	case *Accept:
		*v = Accept{}
		acceptPool.Put(v)
	case *Heartbeat:
		*v = Heartbeat{}
		heartbeatPool.Put(v)
	case *ClientRequest:
		*v = ClientRequest{}
		requestPool.Put(v)
	case *ClientReply:
		*v = ClientReply{}
		replyPool.Put(v)
	case *GroupMsg:
		*v = GroupMsg{}
		groupMsgPool.Put(v)
	case *ClientRead:
		*v = ClientRead{}
		readPool.Put(v)
	case *SnapshotChunkReq:
		*v = SnapshotChunkReq{}
		chunkReqPool.Put(v)
	case *SnapshotChunk:
		*v = SnapshotChunk{}
		chunkPool.Put(v)
	case *EpochMsg:
		*v = EpochMsg{}
		epochMsgPool.Put(v)
	}
}

// NewSnapshotChunk returns a pooled, zeroed SnapshotChunk for responders
// that build chunks on the transfer path and Release them after encoding.
func NewSnapshotChunk() *SnapshotChunk {
	v := chunkPool.Get().(*SnapshotChunk)
	*v = SnapshotChunk{}
	return v
}

// NewSnapshotChunkReq returns a pooled, zeroed SnapshotChunkReq.
func NewSnapshotChunkReq() *SnapshotChunkReq {
	v := chunkReqPool.Get().(*SnapshotChunkReq)
	*v = SnapshotChunkReq{}
	return v
}

// ownedCopy returns an owned copy of b (nil stays nil, so retained messages
// compare equal to their borrowed originals).
func ownedCopy(b []byte) []byte {
	if b == nil {
		return nil
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	return cp
}

// Retain copies every borrowed byte field of m into fresh memory, in place.
// After Retain the message no longer aliases the frame it was decoded from
// and survives the frame being recycled or rewritten. Messages without byte
// fields (Accept, Heartbeat, ...) are no-ops; retaining a GroupMsg retains
// the wrapped message.
func Retain(m Message) {
	switch v := m.(type) {
	case *Propose:
		v.Value = ownedCopy(v.Value)
	case *PrepareOK:
		for i := range v.Entries {
			v.Entries[i].Value = ownedCopy(v.Entries[i].Value)
		}
	case *CatchUpResp:
		for i := range v.Entries {
			v.Entries[i].Value = ownedCopy(v.Entries[i].Value)
		}
	case *SnapshotChunk:
		v.Data = ownedCopy(v.Data)
	case *ClientRequest:
		v.Payload = ownedCopy(v.Payload)
	case *ClientReply:
		v.Payload = ownedCopy(v.Payload)
	case *ClientRead:
		v.Payload = ownedCopy(v.Payload)
	case *GroupMsg:
		Retain(v.Msg)
	case *EpochMsg:
		Retain(v.Msg)
	}
}

// ---------------------------------------------------------------------------
// Encoding.

// appender accumulates the encoded form.
type appender struct{ b []byte }

func (a *appender) u8(v uint8)   { a.b = append(a.b, v) }
func (a *appender) u32(v uint32) { a.b = binary.LittleEndian.AppendUint32(a.b, v) }
func (a *appender) u64(v uint64) { a.b = binary.LittleEndian.AppendUint64(a.b, v) }
func (a *appender) i32(v int32)  { a.u32(uint32(v)) }
func (a *appender) i64(v int64)  { a.u64(uint64(v)) }
func (a *appender) bool(v bool) {
	if v {
		a.u8(1)
	} else {
		a.u8(0)
	}
}
func (a *appender) bytes(v []byte) {
	a.u32(uint32(len(v)))
	a.b = append(a.b, v...)
}

// Size returns the exact encoded size of m (type tag + body) — the
// pre-allocation hint for AppendMessage and the frame length the transport
// writes without encoding first.
func Size(m Message) int {
	switch v := m.(type) {
	case *Hello:
		return 1 + 4
	case *Prepare:
		return 1 + 4 + 8
	case *PrepareOK:
		n := 1 + 4 + 4
		for i := range v.Entries {
			n += 8 + 4 + 1 + 4 + len(v.Entries[i].Value)
		}
		return n
	case *Propose:
		return 1 + 4 + 8 + 8 + 4 + len(v.Value)
	case *Accept:
		return 1 + 4 + 8
	case *Heartbeat:
		if v.LeaseMS != 0 {
			return 1 + 4 + 8 + 4 + 8
		}
		return 1 + 4 + 8
	case *LeaseAck:
		return 1 + 4 + 8
	case *ReadIndexQuery:
		return 1 + 8
	case *ReadIndexResp:
		return 1 + 8 + 8 + 1
	case *ClientRead:
		return 1 + 8 + 8 + 1 + 4 + len(v.Payload)
	case *CatchUpQuery:
		return 1 + 8 + 8
	case *CatchUpResp:
		n := 1 + 4
		for i := range v.Entries {
			n += 8 + 4 + len(v.Entries[i].Value)
		}
		n++ // HasSnapshot flag
		if v.HasSnapshot {
			n += 8 + 4 + 8 // SnapshotMeta: LastIncluded, Groups, TotalBytes
		}
		return n
	case *SnapshotChunkReq:
		return 1 + 8 + 8 + 4
	case *SnapshotChunk:
		return 1 + 8 + 8 + 8 + 1 + 4 + len(v.Data)
	case *ClientRequest:
		return 1 + 8 + 8 + 4 + len(v.Payload)
	case *ClientReply:
		return 1 + 8 + 8 + 1 + 4 + 4 + len(v.Payload)
	case *GroupMsg:
		if _, nested := v.Msg.(*GroupMsg); nested {
			panic("wire: Size of nested GroupMsg")
		}
		return 1 + 4 + 4 + Size(v.Msg)
	case *EpochMsg:
		if _, nested := v.Msg.(*EpochMsg); nested {
			panic("wire: Size of nested EpochMsg")
		}
		return 1 + 8 + 4 + Size(v.Msg)
	case *TopoUpdate:
		return 1 + TopologySize(&v.Topo)
	case *Reconfig:
		return 1 + 8 + 8 + 4 + 4 + len(v.PeerAddr) + 4 + len(v.ClientAddr)
	default:
		panic(fmt.Sprintf("wire: Size of unknown message %T", m))
	}
}

// AppendMessage appends m's self-describing encoding (type tag + body) to
// dst and returns the extended slice. With dst pre-sized (Size) the encode
// is allocation-free; a GroupMsg envelope is encoded inline — no nested
// marshal, no intermediate copy — and stays byte-identical to the legacy
// nested encoding.
func AppendMessage(dst []byte, m Message) []byte {
	a := appender{b: dst}
	a.u8(uint8(m.Type()))
	switch v := m.(type) {
	case *Hello:
		a.i32(v.ID)
	case *Prepare:
		a.i32(int32(v.View))
		a.i64(int64(v.FirstUnstable))
	case *PrepareOK:
		a.i32(int32(v.View))
		a.u32(uint32(len(v.Entries)))
		for _, e := range v.Entries {
			a.i64(int64(e.ID))
			a.i32(int32(e.AcceptedView))
			a.bool(e.Decided)
			a.bytes(e.Value)
		}
	case *Propose:
		a.i32(int32(v.View))
		a.i64(int64(v.ID))
		a.i64(int64(v.DecidedUpTo))
		a.bytes(v.Value)
	case *Accept:
		a.i32(int32(v.View))
		a.i64(int64(v.ID))
	case *Heartbeat:
		a.i32(int32(v.View))
		a.i64(int64(v.DecidedUpTo))
		// Lease grant fields are appended only when present, keeping
		// lease-less heartbeats byte-identical to the legacy format.
		if v.LeaseMS != 0 {
			a.u32(v.LeaseMS)
			a.u64(v.LeaseSeq)
		}
	case *LeaseAck:
		a.i32(int32(v.View))
		a.u64(v.Seq)
	case *ReadIndexQuery:
		a.u64(v.Seq)
	case *ReadIndexResp:
		a.u64(v.Seq)
		a.i64(int64(v.Index))
		a.bool(v.OK)
	case *ClientRead:
		a.u64(v.ClientID)
		a.u64(v.Seq)
		a.u8(v.Consistency)
		a.bytes(v.Payload)
	case *CatchUpQuery:
		a.i64(int64(v.From))
		a.i64(int64(v.To))
	case *CatchUpResp:
		a.u32(uint32(len(v.Entries)))
		for _, e := range v.Entries {
			a.i64(int64(e.ID))
			a.bytes(e.Value)
		}
		a.bool(v.HasSnapshot)
		if v.HasSnapshot {
			a.i64(int64(v.Meta.LastIncluded))
			a.i32(v.Meta.Groups)
			a.u64(v.Meta.TotalBytes)
		}
	case *SnapshotChunkReq:
		a.i64(int64(v.Cut))
		a.u64(v.Offset)
		a.u32(v.MaxBytes)
	case *SnapshotChunk:
		a.i64(int64(v.Cut))
		a.u64(v.Offset)
		a.u64(v.Total)
		a.bool(v.OK)
		a.bytes(v.Data)
	case *ClientRequest:
		a.u64(v.ClientID)
		a.u64(v.Seq)
		a.bytes(v.Payload)
	case *ClientReply:
		a.u64(v.ClientID)
		a.u64(v.Seq)
		a.bool(v.OK)
		a.i32(v.Redirect)
		a.bytes(v.Payload)
	case *GroupMsg:
		if _, nested := v.Msg.(*GroupMsg); nested {
			panic("wire: AppendMessage of nested GroupMsg")
		}
		a.i32(v.Group)
		a.u32(uint32(Size(v.Msg))) // inner length prefix, as the nested encoding wrote
		a.b = AppendMessage(a.b, v.Msg)
	case *EpochMsg:
		if _, nested := v.Msg.(*EpochMsg); nested {
			panic("wire: AppendMessage of nested EpochMsg")
		}
		a.i64(v.Epoch)
		a.u32(uint32(Size(v.Msg))) // inner length prefix, mirroring GroupMsg
		a.b = AppendMessage(a.b, v.Msg)
	case *TopoUpdate:
		a.b = AppendTopology(a.b, &v.Topo)
	case *Reconfig:
		a.u64(v.ClientID)
		a.u64(v.Seq)
		a.i32(v.Remove)
		a.bytes([]byte(v.PeerAddr))
		a.bytes([]byte(v.ClientAddr))
	default:
		panic(fmt.Sprintf("wire: AppendMessage of unknown message %T", m))
	}
	return a.b
}

// Marshal encodes m as a self-describing byte slice (type tag + body). It is
// the allocating convenience wrapper around AppendMessage; hot paths keep a
// scratch buffer and append instead.
func Marshal(m Message) []byte {
	return AppendMessage(make([]byte, 0, Size(m)), m)
}

// ---------------------------------------------------------------------------
// Decoding.

// reader consumes the encoded form with a sticky error.
type reader struct {
	b   []byte
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) i32() int32  { return int32(r.u32()) }
func (r *reader) i64() int64  { return int64(r.u64()) }
func (r *reader) bool() bool  { return r.u8() != 0 }
func (r *reader) fail()       { r.err = ErrShortBuffer; r.b = nil }
func (r *reader) len() uint32 { return uint32(len(r.b)) }

// bytes returns the next length-prefixed field as a sub-slice of the input
// — the borrow at the heart of the zero-copy decode path. Callers of
// Unmarshal that outlive the frame go through Retain.
func (r *reader) bytes() []byte {
	n := r.u32()
	if r.err != nil || n > r.len() {
		r.fail()
		return nil
	}
	v := r.b[:n:n]
	r.b = r.b[n:]
	return v
}

// Unmarshal decodes a message produced by Marshal/AppendMessage.
//
// Ownership: the returned message BORROWS from b — its []byte fields alias
// the input — and its struct may come from an internal pool. It is valid
// only while b is; callers that retain it past b's reuse must call Retain,
// and callers that fully consume it may hand the struct back with Release.
func Unmarshal(b []byte) (Message, error) {
	r := reader{b: b}
	m, err := decodeMessage(&r, true, true)
	if err != nil {
		return nil, err
	}
	if len(r.b) != 0 {
		Release(m) // decoded but rejected: the pooled struct is still ours
		return nil, ErrTrailingData
	}
	return m, nil
}

// decodeMessage parses one message from r. allowGroup permits a GroupMsg
// envelope and allowEpoch an EpochMsg one (EpochMsg is outermost and may
// wrap a GroupMsg; neither envelope nests with itself).
func decodeMessage(r *reader, allowGroup, allowEpoch bool) (Message, error) {
	t := MsgType(r.u8())
	if r.err != nil {
		return nil, r.err
	}
	var m Message
	switch t {
	case THello:
		m = &Hello{ID: r.i32()}
	case TPrepare:
		m = &Prepare{View: View(r.i32()), FirstUnstable: InstanceID(r.i64())}
	case TPrepareOK:
		v := &PrepareOK{View: View(r.i32())}
		n := r.u32()
		if r.err == nil && n <= r.len() { // each entry is >= 1 byte
			v.Entries = make([]InstanceState, 0, n)
			for range n {
				v.Entries = append(v.Entries, InstanceState{
					ID:           InstanceID(r.i64()),
					AcceptedView: View(r.i32()),
					Decided:      r.bool(),
					Value:        r.bytes(),
				})
			}
		} else if n > 0 {
			r.fail()
		}
		m = v
	case TPropose:
		v := proposePool.Get().(*Propose)
		v.View = View(r.i32())
		v.ID = InstanceID(r.i64())
		v.DecidedUpTo = InstanceID(r.i64())
		v.Value = r.bytes()
		m = v
	case TAccept:
		v := acceptPool.Get().(*Accept)
		v.View = View(r.i32())
		v.ID = InstanceID(r.i64())
		m = v
	case THeartbeat:
		v := heartbeatPool.Get().(*Heartbeat)
		v.View = View(r.i32())
		v.DecidedUpTo = InstanceID(r.i64())
		// Trailing lease grant (absent on legacy frames). Inside a GroupMsg
		// the reader is scoped to the inner body, so r.len() is exact there
		// too.
		if r.err == nil && r.len() > 0 {
			v.LeaseMS = r.u32()
			v.LeaseSeq = r.u64()
		}
		m = v
	case TLeaseAck:
		m = &LeaseAck{View: View(r.i32()), Seq: r.u64()}
	case TReadIndexQuery:
		m = &ReadIndexQuery{Seq: r.u64()}
	case TReadIndexResp:
		m = &ReadIndexResp{Seq: r.u64(), Index: InstanceID(r.i64()), OK: r.bool()}
	case TClientRead:
		v := readPool.Get().(*ClientRead)
		v.ClientID = r.u64()
		v.Seq = r.u64()
		v.Consistency = r.u8()
		v.Payload = r.bytes()
		m = v
	case TCatchUpQuery:
		m = &CatchUpQuery{From: InstanceID(r.i64()), To: InstanceID(r.i64())}
	case TCatchUpResp:
		v := &CatchUpResp{}
		n := r.u32()
		if r.err == nil && n <= r.len() {
			v.Entries = make([]DecidedValue, 0, n)
			for range n {
				v.Entries = append(v.Entries, DecidedValue{
					ID:    InstanceID(r.i64()),
					Value: r.bytes(),
				})
			}
		} else if n > 0 {
			r.fail()
		}
		v.HasSnapshot = r.bool()
		if v.HasSnapshot {
			v.Meta = SnapshotMeta{
				LastIncluded: InstanceID(r.i64()),
				Groups:       r.i32(),
				TotalBytes:   r.u64(),
			}
		}
		m = v
	case TSnapshotChunkReq:
		v := chunkReqPool.Get().(*SnapshotChunkReq)
		v.Cut = InstanceID(r.i64())
		v.Offset = r.u64()
		v.MaxBytes = r.u32()
		m = v
	case TSnapshotChunk:
		v := chunkPool.Get().(*SnapshotChunk)
		v.Cut = InstanceID(r.i64())
		v.Offset = r.u64()
		v.Total = r.u64()
		v.OK = r.bool()
		v.Data = r.bytes()
		m = v
	case TClientRequest:
		v := requestPool.Get().(*ClientRequest)
		v.ClientID = r.u64()
		v.Seq = r.u64()
		v.Payload = r.bytes()
		m = v
	case TClientReply:
		v := replyPool.Get().(*ClientReply)
		v.ClientID = r.u64()
		v.Seq = r.u64()
		v.OK = r.bool()
		v.Redirect = r.i32()
		v.Payload = r.bytes()
		m = v
	case TGroupMsg:
		if !allowGroup {
			return nil, fmt.Errorf("%w: nested GroupMsg", ErrUnknownType)
		}
		group := r.i32()
		body := r.bytes()
		if r.err != nil {
			return nil, r.err
		}
		// Decode the wrapped message inline from the borrowed body — the
		// legacy path copied the body out and recursed into Unmarshal.
		sub := reader{b: body}
		inner, err := decodeMessage(&sub, false, false)
		if err != nil {
			return nil, err
		}
		if len(sub.b) != 0 {
			Release(inner)
			return nil, ErrTrailingData
		}
		v := groupMsgPool.Get().(*GroupMsg)
		v.Group = group
		v.Msg = inner
		m = v
	case TEpochMsg:
		if !allowEpoch {
			return nil, fmt.Errorf("%w: nested EpochMsg", ErrUnknownType)
		}
		epoch := r.i64()
		body := r.bytes()
		if r.err != nil {
			return nil, r.err
		}
		sub := reader{b: body}
		inner, err := decodeMessage(&sub, true, false)
		if err != nil {
			return nil, err
		}
		if len(sub.b) != 0 {
			Release(inner)
			return nil, ErrTrailingData
		}
		v := epochMsgPool.Get().(*EpochMsg)
		v.Epoch = epoch
		v.Msg = inner
		m = v
	case TTopoUpdate:
		t, err := decodeTopologyFrom(r)
		if err != nil {
			return nil, err
		}
		m = &TopoUpdate{Topo: *t}
	case TReconfig:
		v := &Reconfig{
			ClientID: r.u64(),
			Seq:      r.u64(),
			Remove:   r.i32(),
		}
		v.PeerAddr = string(r.bytes())
		v.ClientAddr = string(r.bytes())
		m = v
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, uint8(t))
	}
	if r.err != nil {
		releasePartial(m)
		return nil, r.err
	}
	return m, nil
}

// releasePartial returns a pooled struct that failed mid-decode. Safe: the
// struct was never handed to the caller.
func releasePartial(m Message) {
	if m != nil {
		Release(m)
	}
}

// ---------------------------------------------------------------------------
// Batch encoding.

// BatchOverhead is the encoded size overhead per batch, and RequestOverhead
// per request within it; used by the batching policy to respect the BSZ
// budget in wire bytes.
const (
	BatchOverhead   = 4
	RequestOverhead = 8 + 8 + 4
)

// EncodedRequestSize returns the wire size of one request inside a batch.
func EncodedRequestSize(payload int) int { return RequestOverhead + payload }

// BatchSize returns the exact encoded size of a batch of reqs.
func BatchSize(reqs []*ClientRequest) int {
	n := BatchOverhead
	for _, req := range reqs {
		n += EncodedRequestSize(len(req.Payload))
	}
	return n
}

// AppendBatch appends the batch encoding of reqs to dst.
func AppendBatch(dst []byte, reqs []*ClientRequest) []byte {
	a := appender{b: dst}
	a.u32(uint32(len(reqs)))
	for _, req := range reqs {
		a.u64(req.ClientID)
		a.u64(req.Seq)
		a.bytes(req.Payload)
	}
	return a.b
}

// EncodeBatch serializes a batch of client requests into one consensus value
// (Sec. III-B: requests are grouped into batches, the unit of ordering). The
// result is exact-size: batch values are retained by the replicated log, so
// the one allocation per batch is inherent — but it never over-allocates.
func EncodeBatch(reqs []*ClientRequest) []byte {
	return AppendBatch(make([]byte, 0, BatchSize(reqs)), reqs)
}

// DecodeBatch parses a consensus value back into client requests. Like
// Unmarshal it BORROWS: request payloads alias b. Batch values live in the
// replicated log and are immutable, so borrowing is safe for log-owned
// values; decode of a transient buffer must Retain what it keeps.
func DecodeBatch(b []byte) ([]*ClientRequest, error) {
	return DecodeBatchInto(nil, b)
}

// DecodeBatchInto is DecodeBatch with caller-managed storage: the request
// slice reuses dst's capacity and the ClientRequest structs come from the
// shared pool, so a steady-state decode loop that Releases its requests
// after execution allocates nothing. Payloads borrow from b.
func DecodeBatchInto(dst []*ClientRequest, b []byte) ([]*ClientRequest, error) {
	r := reader{b: b}
	n := r.u32()
	if r.err != nil || uint64(n) > uint64(r.len()) {
		return nil, ErrShortBuffer
	}
	reqs := dst[:0]
	ok := true
	for range n {
		req := requestPool.Get().(*ClientRequest)
		req.ClientID = r.u64()
		req.Seq = r.u64()
		req.Payload = r.bytes()
		reqs = append(reqs, req)
		if r.err != nil {
			ok = false
			break
		}
	}
	if ok && len(r.b) != 0 {
		r.err = ErrTrailingData
		ok = false
	}
	if !ok {
		for _, req := range reqs {
			Release(req)
		}
		if r.err == nil {
			r.err = ErrShortBuffer
		}
		return nil, r.err
	}
	return reqs, nil
}

// ---------------------------------------------------------------------------
// Framing.

// WriteFrame writes payload to w prefixed with its uint32 length.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooBig
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: write frame payload: %w", err)
	}
	return nil
}

// ReadFrameHeader reads and validates a frame's length prefix, returning
// the payload size the caller must read next. The single definition of the
// framing protocol, shared by ReadFrame and the transports' pooled readers.
func ReadFrameHeader(r io.Reader) (int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrameSize || n > math.MaxInt32 {
		return 0, ErrFrameTooBig
	}
	return int(n), nil
}

// ReadFrame reads one length-prefixed frame from r.
func ReadFrame(r io.Reader) ([]byte, error) {
	n, err := ReadFrameHeader(r)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: read frame payload: %w", err)
	}
	return payload, nil
}
