package wire

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalRoundTrip guards the borrow-ownership codec against aliasing
// and round-trip bugs: for every input that decodes, the message must
// re-encode to the same bytes (the codec has exactly one encoding per
// message), Size must predict the re-encoded length, and a Retained message
// must survive the frame buffer being recycled and rewritten — the exact
// lifecycle of a pooled transport read buffer. Truncated and corrupt inputs
// must error without panicking.
func FuzzUnmarshalRoundTrip(f *testing.F) {
	// Seed with every message type, GroupMsg envelopes, and adversarial
	// prefixes/truncations.
	seeds := []Message{
		&Hello{ID: 2},
		&Prepare{View: 7, FirstUnstable: 42},
		&PrepareOK{View: 7, Entries: []InstanceState{
			{ID: 42, AcceptedView: 3, Decided: true, Value: []byte("abc")},
			{ID: 43, AcceptedView: 6},
		}},
		&Propose{View: 7, ID: 44, DecidedUpTo: 41, Value: []byte{1, 2, 3, 4}},
		&Accept{View: 7, ID: 44},
		&Heartbeat{View: 7, DecidedUpTo: 43},
		&CatchUpQuery{From: 10, To: 20},
		&CatchUpResp{Entries: []DecidedValue{{ID: 10, Value: []byte("x")}}},
		&CatchUpResp{HasSnapshot: true, Meta: SnapshotMeta{
			LastIncluded: 9, Groups: 4, TotalBytes: 1 << 30}},
		&SnapshotChunkReq{Cut: 9, Offset: 1 << 20, MaxBytes: 256 << 10},
		&SnapshotChunk{Cut: 9, Offset: 1 << 20, Total: 1 << 30, OK: true, Data: []byte("chunk-data")},
		&SnapshotChunk{Cut: 9, OK: false},
		&ClientRequest{ClientID: 0xdeadbeef, Seq: 17, Payload: []byte("hello")},
		&ClientReply{ClientID: 1, Seq: 2, OK: true, Redirect: NoRedirect, Payload: []byte("ok")},
		&GroupMsg{Group: 3, Msg: &Propose{View: 1, ID: 2, DecidedUpTo: 1, Value: []byte("grouped")}},
		&GroupMsg{Group: 1, Msg: &Accept{View: 1, ID: 2}},
		&Heartbeat{View: 7, DecidedUpTo: 43, LeaseMS: 250, LeaseSeq: 9},
		&GroupMsg{Group: 2, Msg: &Heartbeat{View: 1, DecidedUpTo: 3, LeaseMS: 100, LeaseSeq: 1}},
		&LeaseAck{View: 7, Seq: 9},
		&ReadIndexQuery{Seq: 4},
		&ReadIndexResp{Seq: 4, Index: 99, OK: true},
		&ClientRead{ClientID: 0xfeed, Seq: 2, Consistency: 1, Payload: []byte("k")},
		// Epoch-stamped frames and the reconfiguration vocabulary: the
		// envelope around each hot-path shape, topology holes included.
		&EpochMsg{Epoch: 3, Msg: &Propose{View: 7, ID: 44, DecidedUpTo: 41, Value: []byte("stamped")}},
		&EpochMsg{Epoch: 3, Msg: &GroupMsg{Group: 1, Msg: &Accept{View: 7, ID: 44}}},
		&EpochMsg{Epoch: 1, Msg: &Heartbeat{View: 7, DecidedUpTo: 43, LeaseMS: 250, LeaseSeq: 9}},
		&TopoUpdate{Topo: Topology{Epoch: 3, BaseView: 12, Groups: 2,
			Peers: []string{"a:1", "", "c:3", "d:4"}, Clients: []string{"a:9", "", "c:9", "d:9"}}},
		&Reconfig{ClientID: 0xbeef, Seq: 5, Remove: -1, PeerAddr: "d:4", ClientAddr: "d:9"},
		&Reconfig{ClientID: 0xbeef, Seq: 6, Remove: 2},
	}
	for _, m := range seeds {
		b := Marshal(m)
		f.Add(b)
		if len(b) > 3 {
			f.Add(b[:len(b)-3]) // truncated
		}
		corrupt := append([]byte(nil), b...)
		corrupt[0] ^= 0xFF // unknown/confused type tag
		f.Add(corrupt)
	}
	f.Add([]byte{})
	f.Add([]byte{byte(TGroupMsg), 1, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF}) // huge inner length

	f.Fuzz(func(t *testing.T, frame []byte) {
		m, err := Unmarshal(frame)
		if err != nil {
			return // malformed input rejected: fine
		}
		// Canonical fixed point: re-encoding a decoded message and decoding
		// it again must converge (non-canonical inputs — bool bytes other
		// than 0/1, redundant snapshot metadata — canonicalize in one step).
		enc := Marshal(m)
		if Size(m) != len(enc) {
			t.Fatalf("Size = %d, encoded length = %d", Size(m), len(enc))
		}
		m2, err := Unmarshal(enc)
		if err != nil {
			t.Fatalf("canonical re-encode failed to decode: %v\nframe %x\nenc   %x", err, frame, enc)
		}
		enc2 := Marshal(m2)
		if !bytes.Equal(enc2, enc) {
			t.Fatalf("canonical encoding is not a fixed point:\n enc  %x\n enc2 %x", enc, enc2)
		}
		// Borrow rule: m2 borrows from enc; Retain must fully sever it, so
		// rewriting enc — the lifecycle of a recycled frame buffer — must
		// not change the retained message.
		Retain(m2)
		for i := range enc {
			enc[i] = 0xA5
		}
		if enc3 := Marshal(m2); !bytes.Equal(enc3, enc2) {
			t.Fatalf("retained message changed after frame rewrite:\n before %x\n after  %x", enc2, enc3)
		}
		Release(m)
		Release(m2)
	})
}
