package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"
	"testing/quick"
)

// allMessages returns one populated instance of every message type.
func allMessages() []Message {
	return []Message{
		&Hello{ID: 2},
		&Prepare{View: 7, FirstUnstable: 42},
		&PrepareOK{View: 7, Entries: []InstanceState{
			{ID: 42, AcceptedView: 3, Decided: true, Value: []byte("abc")},
			{ID: 43, AcceptedView: 6, Decided: false, Value: nil},
		}},
		&Propose{View: 7, ID: 44, DecidedUpTo: 41, Value: []byte{1, 2, 3, 4}},
		&Accept{View: 7, ID: 44},
		&Heartbeat{View: 7, DecidedUpTo: 43},
		&CatchUpQuery{From: 10, To: 20},
		&CatchUpResp{Entries: []DecidedValue{{ID: 10, Value: []byte("x")}}},
		&CatchUpResp{HasSnapshot: true, Meta: SnapshotMeta{
			LastIncluded: 9, Groups: 2, TotalBytes: 123456}},
		&SnapshotChunkReq{Cut: 9, Offset: 4096, MaxBytes: 1024},
		&SnapshotChunk{Cut: 9, Offset: 4096, Total: 123456, OK: true, Data: []byte("image-bytes")},
		&SnapshotChunk{Cut: 9, OK: false},
		&ClientRequest{ClientID: 0xdeadbeef, Seq: 17, Payload: []byte("hello")},
		&ClientReply{ClientID: 0xdeadbeef, Seq: 17, OK: true, Redirect: NoRedirect, Payload: []byte("ok")},
		&ClientReply{ClientID: 1, Seq: 2, OK: false, Redirect: 2},
	}
}

// normalize maps empty slices to nil so reflect.DeepEqual treats a
// round-tripped empty value as equal to the original.
func normalize(m Message) Message {
	switch v := m.(type) {
	case *PrepareOK:
		for i := range v.Entries {
			if len(v.Entries[i].Value) == 0 {
				v.Entries[i].Value = nil
			}
		}
		if len(v.Entries) == 0 {
			v.Entries = nil
		}
	case *CatchUpResp:
		for i := range v.Entries {
			if len(v.Entries[i].Value) == 0 {
				v.Entries[i].Value = nil
			}
		}
		if len(v.Entries) == 0 {
			v.Entries = nil
		}
	case *SnapshotChunk:
		if len(v.Data) == 0 {
			v.Data = nil
		}
	case *Propose:
		if len(v.Value) == 0 {
			v.Value = nil
		}
	case *ClientRequest:
		if len(v.Payload) == 0 {
			v.Payload = nil
		}
	case *ClientReply:
		if len(v.Payload) == 0 {
			v.Payload = nil
		}
	}
	return m
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, m := range allMessages() {
		b := Marshal(m)
		got, err := Unmarshal(b)
		if err != nil {
			t.Errorf("Unmarshal(%s): %v", m.Type(), err)
			continue
		}
		if !reflect.DeepEqual(normalize(got), normalize(m)) {
			t.Errorf("round trip %s:\n got %+v\nwant %+v", m.Type(), got, m)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	tests := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrShortBuffer},
		{"unknown type", []byte{0xff}, ErrUnknownType},
		{"truncated prepare", []byte{byte(TPrepare), 1, 2}, ErrShortBuffer},
		{"trailing bytes", append(Marshal(&Accept{View: 1, ID: 2}), 0xAB), ErrTrailingData},
		{"huge entry count", append(Marshal(&PrepareOK{View: 1})[:5], 0xff, 0xff, 0xff, 0xff), ErrShortBuffer},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Unmarshal(tt.b)
			if !errors.Is(err, tt.want) {
				t.Errorf("Unmarshal = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestUnmarshalTruncationNeverPanics(t *testing.T) {
	for _, m := range allMessages() {
		b := Marshal(m)
		for i := range b {
			if _, err := Unmarshal(b[:i]); err == nil {
				t.Errorf("%s truncated to %d bytes decoded without error", m.Type(), i)
			}
		}
	}
}

// TestUnmarshalBorrowsAndRetainSevers pins the ownership contract: a decoded
// message borrows from the frame; Retain copies it out so it survives the
// frame being recycled and rewritten.
func TestUnmarshalBorrowsAndRetainSevers(t *testing.T) {
	b := Marshal(&ClientRequest{ClientID: 1, Seq: 1, Payload: []byte("orig")})
	m, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	req := m.(*ClientRequest)
	if len(req.Payload) > 0 && &req.Payload[0] != &b[len(b)-len(req.Payload)] {
		t.Error("Unmarshal copied the payload; the zero-copy contract is to borrow")
	}
	Retain(m)
	for i := range b {
		b[i] = 0xFF
	}
	if string(req.Payload) != "orig" {
		t.Errorf("retained payload did not survive frame rewrite: %q", req.Payload)
	}
}

// TestRetainSeversAllTypes rewrites the frame under every value-carrying
// message type and checks the retained copy is unaffected.
func TestRetainSeversAllTypes(t *testing.T) {
	for _, m := range allMessages() {
		b := Marshal(m)
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("%s: %v", m.Type(), err)
		}
		Retain(got)
		for i := range b {
			b[i] = 0xFF
		}
		if !reflect.DeepEqual(normalize(got), normalize(m)) {
			t.Errorf("%s: retained message corrupted by frame rewrite:\n got %+v\nwant %+v",
				m.Type(), got, m)
		}
	}
}

// TestAppendMessageMatchesMarshalAndSize pins append-style encoding to the
// legacy wire format: AppendMessage extends dst in place, produces exactly
// Marshal's bytes, and Size predicts the encoded length exactly.
func TestAppendMessageMatchesMarshalAndSize(t *testing.T) {
	msgs := allMessages()
	msgs = append(msgs,
		&GroupMsg{Group: 2, Msg: &Propose{View: 1, ID: 3, DecidedUpTo: 2, Value: []byte("vv")}},
		&GroupMsg{Group: 7, Msg: &Accept{View: 1, ID: 3}},
	)
	for _, m := range msgs {
		want := Marshal(m)
		if got := Size(m); got != len(want) {
			t.Errorf("%s: Size = %d, encoded length = %d", m.Type(), got, len(want))
		}
		prefix := []byte("prefix")
		got := AppendMessage(append([]byte(nil), prefix...), m)
		if !bytes.Equal(got[:len(prefix)], prefix) {
			t.Fatalf("%s: AppendMessage clobbered dst prefix", m.Type())
		}
		if !bytes.Equal(got[len(prefix):], want) {
			t.Errorf("%s: AppendMessage bytes differ from Marshal", m.Type())
		}
	}
}

// TestGroupMsgInlineEncodingMatchesNested pins the inline GroupMsg envelope
// encoding to the legacy nested-Marshal format byte for byte.
func TestGroupMsgInlineEncodingMatchesNested(t *testing.T) {
	inner := &Propose{View: 5, ID: 77, DecidedUpTo: 70, Value: []byte("payload")}
	innerBytes := Marshal(inner)
	// The legacy encoding: tag, group, then the inner marshal as a
	// length-prefixed byte field.
	var legacy []byte
	legacy = append(legacy, byte(TGroupMsg))
	legacy = binary.LittleEndian.AppendUint32(legacy, uint32(int32(3)))
	legacy = binary.LittleEndian.AppendUint32(legacy, uint32(len(innerBytes)))
	legacy = append(legacy, innerBytes...)
	if got := Marshal(&GroupMsg{Group: 3, Msg: inner}); !bytes.Equal(got, legacy) {
		t.Errorf("inline GroupMsg encoding differs from the nested format:\n got %x\nwant %x", got, legacy)
	}
}

// TestReleaseAndReuse checks the pool round trip: a released struct serves a
// later decode without corrupting earlier retained state.
func TestReleaseAndReuse(t *testing.T) {
	b1 := Marshal(&Propose{View: 1, ID: 1, Value: []byte("one")})
	m1, err := Unmarshal(b1)
	if err != nil {
		t.Fatal(err)
	}
	Retain(m1)
	p1 := m1.(*Propose)
	val := p1.Value
	Release(m1)
	// The pool may hand the same struct to the next decode; the retained
	// value buffer must be untouched.
	b2 := Marshal(&Propose{View: 2, ID: 2, Value: []byte("two")})
	m2, err := Unmarshal(b2)
	if err != nil {
		t.Fatal(err)
	}
	if string(val) != "one" {
		t.Errorf("retained value corrupted after Release+reuse: %q", val)
	}
	Release(m2)
}

// TestDecodeBatchIntoReusesStorage checks the steady-state decode loop:
// slice capacity is reused and released structs cycle through the pool.
func TestDecodeBatchIntoReusesStorage(t *testing.T) {
	batch := EncodeBatch([]*ClientRequest{
		{ClientID: 1, Seq: 1, Payload: []byte("a")},
		{ClientID: 2, Seq: 2, Payload: []byte("bb")},
	})
	var reqs []*ClientRequest
	for range 3 {
		var err error
		reqs, err = DecodeBatchInto(reqs, batch)
		if err != nil {
			t.Fatal(err)
		}
		if len(reqs) != 2 || reqs[0].ClientID != 1 || string(reqs[1].Payload) != "bb" {
			t.Fatalf("decode = %+v", reqs)
		}
		for _, r := range reqs {
			Release(r)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		reqs []*ClientRequest
	}{
		{"empty", nil},
		{"one", []*ClientRequest{{ClientID: 1, Seq: 2, Payload: []byte("a")}}},
		{"several", []*ClientRequest{
			{ClientID: 1, Seq: 1, Payload: bytes.Repeat([]byte("x"), 128)},
			{ClientID: 2, Seq: 9, Payload: nil},
			{ClientID: 3, Seq: 100, Payload: []byte{0}},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := EncodeBatch(tt.reqs)
			got, err := DecodeBatch(b)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tt.reqs) {
				t.Fatalf("decoded %d requests, want %d", len(got), len(tt.reqs))
			}
			for i := range got {
				if got[i].ClientID != tt.reqs[i].ClientID || got[i].Seq != tt.reqs[i].Seq ||
					!bytes.Equal(got[i].Payload, tt.reqs[i].Payload) {
					t.Errorf("request %d = %+v, want %+v", i, got[i], tt.reqs[i])
				}
			}
		})
	}
}

func TestDecodeBatchErrors(t *testing.T) {
	if _, err := DecodeBatch(nil); err == nil {
		t.Error("DecodeBatch(nil) succeeded")
	}
	if _, err := DecodeBatch([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Error("DecodeBatch with huge count succeeded")
	}
	b := EncodeBatch([]*ClientRequest{{ClientID: 1, Seq: 1}})
	if _, err := DecodeBatch(append(b, 1)); !errors.Is(err, ErrTrailingData) {
		t.Errorf("trailing data err = %v, want ErrTrailingData", err)
	}
}

func TestEncodedRequestSize(t *testing.T) {
	reqs := []*ClientRequest{{ClientID: 1, Seq: 1, Payload: make([]byte, 128)}}
	want := BatchOverhead + EncodedRequestSize(128)
	if got := len(EncodeBatch(reqs)); got != want {
		t.Errorf("encoded batch size = %d, want %d", got, want)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("first"), {}, bytes.Repeat([]byte("z"), 10000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame = %q, want %q", got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("ReadFrame on empty = %v, want EOF", err)
	}
}

func TestReadFrameRejectsHugeLength(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooBig) {
		t.Errorf("ReadFrame = %v, want ErrFrameTooBig", err)
	}
	if err := WriteFrame(io.Discard, make([]byte, MaxFrameSize+1)); !errors.Is(err, ErrFrameTooBig) {
		t.Errorf("WriteFrame = %v, want ErrFrameTooBig", err)
	}
}

func TestReadFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()-2])
	if _, err := ReadFrame(trunc); err == nil {
		t.Error("ReadFrame on truncated payload succeeded")
	}
}

// TestPropertyClientRequestRoundTrip property-tests the codec on arbitrary
// client requests.
func TestPropertyClientRequestRoundTrip(t *testing.T) {
	f := func(id, seq uint64, payload []byte) bool {
		m := &ClientRequest{ClientID: id, Seq: seq, Payload: payload}
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			return false
		}
		r, ok := got.(*ClientRequest)
		return ok && r.ClientID == id && r.Seq == seq && bytes.Equal(r.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBatchRoundTrip property-tests batch encoding on arbitrary
// request sets.
func TestPropertyBatchRoundTrip(t *testing.T) {
	f := func(ids []uint64, payload []byte) bool {
		reqs := make([]*ClientRequest, len(ids))
		for i, id := range ids {
			reqs[i] = &ClientRequest{ClientID: id, Seq: uint64(i), Payload: payload}
		}
		got, err := DecodeBatch(EncodeBatch(reqs))
		if err != nil || len(got) != len(reqs) {
			return false
		}
		for i := range got {
			if got[i].ClientID != reqs[i].ClientID || got[i].Seq != reqs[i].Seq ||
				!bytes.Equal(got[i].Payload, reqs[i].Payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyProposeRoundTrip property-tests Propose with arbitrary fields,
// the hottest message on the wire.
func TestPropertyProposeRoundTrip(t *testing.T) {
	f := func(view int32, id, upto int64, val []byte) bool {
		m := &Propose{View: View(view), ID: InstanceID(id), DecidedUpTo: InstanceID(upto), Value: val}
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			return false
		}
		p, ok := got.(*Propose)
		return ok && p.View == m.View && p.ID == m.ID && p.DecidedUpTo == m.DecidedUpTo &&
			bytes.Equal(p.Value, m.Value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyUnmarshalRandomBytesNeverPanics fuzzes the decoder with random
// byte strings; any outcome but a panic is acceptable.
func TestPropertyUnmarshalRandomBytesNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		_, _ = Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestGroupMsgRoundTrip(t *testing.T) {
	for _, inner := range []Message{
		&Propose{View: 3, ID: 9, DecidedUpTo: 8, Value: []byte("batch")},
		&Accept{View: 3, ID: 9},
		&Heartbeat{View: 1, DecidedUpTo: 4},
		&CatchUpQuery{From: 1, To: 5},
	} {
		m := &GroupMsg{Group: 3, Msg: inner}
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			t.Fatalf("%T: %v", inner, err)
		}
		gm, ok := got.(*GroupMsg)
		if !ok || gm.Group != 3 {
			t.Fatalf("round trip = %#v", got)
		}
		if !reflect.DeepEqual(normalize(gm.Msg), normalize(inner)) {
			t.Errorf("inner %T round trip = %#v, want %#v", inner, gm.Msg, inner)
		}
	}
}

func TestNestedGroupMsgRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Marshal of nested GroupMsg did not panic")
		}
	}()
	Marshal(&GroupMsg{Group: 1, Msg: &GroupMsg{Group: 2, Msg: &Accept{}}})
}

func TestSnapshotMetaEncoding(t *testing.T) {
	// A snapshot-bearing catch-up response carries only metadata — its size
	// is independent of the state size it describes.
	small := &CatchUpResp{HasSnapshot: true, Meta: SnapshotMeta{LastIncluded: 9, TotalBytes: 64}}
	huge := &CatchUpResp{HasSnapshot: true, Meta: SnapshotMeta{LastIncluded: 9, TotalBytes: 64 << 30}}
	if Size(small) != Size(huge) {
		t.Errorf("meta size varies with TotalBytes: %d vs %d", Size(small), Size(huge))
	}
	multi := &CatchUpResp{HasSnapshot: true, Meta: SnapshotMeta{
		LastIncluded: 41, Groups: 4, TotalBytes: 12345}}
	got, err := Unmarshal(Marshal(multi))
	if err != nil {
		t.Fatal(err)
	}
	if resp := got.(*CatchUpResp); resp.Meta != multi.Meta {
		t.Errorf("Meta = %+v after round trip, want %+v", resp.Meta, multi.Meta)
	}
	if (SnapshotMeta{Groups: 0}).GroupCount() != 1 || (SnapshotMeta{Groups: 4}).GroupCount() != 4 {
		t.Error("SnapshotMeta.GroupCount normalization broken")
	}
}

func TestSnapshotChunkRoundTrip(t *testing.T) {
	// The transfer frames must round-trip exactly and respect borrow
	// semantics: a Retained chunk survives frame reuse.
	frame := Marshal(&SnapshotChunk{Cut: 77, Offset: 8192, Total: 1 << 20, OK: true,
		Data: bytes.Repeat([]byte{0xAB}, 512)})
	m, err := Unmarshal(frame)
	if err != nil {
		t.Fatal(err)
	}
	c := m.(*SnapshotChunk)
	if c.Cut != 77 || c.Offset != 8192 || c.Total != 1<<20 || !c.OK || len(c.Data) != 512 {
		t.Fatalf("round trip = %+v", c)
	}
	Retain(c)
	for i := range frame {
		frame[i] = 0
	}
	if c.Data[0] != 0xAB {
		t.Fatal("Retain did not sever the chunk's alias to the frame")
	}
	Release(c)
}

func TestGroupCut(t *testing.T) {
	// Single group: the classic cut.
	for _, last := range []InstanceID{-1, 0, 5, 100} {
		if got := GroupCut(last, 1, 0); got != last+1 {
			t.Errorf("GroupCut(%d,1,0) = %d, want %d", last, got, last+1)
		}
	}
	// Multi-group: GroupCut(M, G, g) counts merged indices m <= M with
	// m % G == g. Check against direct enumeration.
	for _, groups := range []int{2, 3, 4} {
		for last := InstanceID(-1); last < 40; last++ {
			for g := 0; g < groups; g++ {
				want := InstanceID(0)
				for m := InstanceID(0); m <= last; m++ {
					if int(m)%groups == g {
						want++
					}
				}
				if got := GroupCut(last, groups, g); got != want {
					t.Fatalf("GroupCut(%d,%d,%d) = %d, want %d", last, groups, g, got, want)
				}
			}
		}
	}
	// The cuts of all groups partition the merged prefix exactly.
	for _, groups := range []int{2, 4, 7} {
		for _, last := range []InstanceID{0, 13, 999} {
			var sum InstanceID
			for g := 0; g < groups; g++ {
				sum += GroupCut(last, groups, g)
			}
			if sum != last+1 {
				t.Errorf("cuts for M=%d G=%d sum to %d, want %d", last, groups, sum, last+1)
			}
		}
	}
}
