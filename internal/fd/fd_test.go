package fd

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gosmr/internal/wire"
)

func TestLeaderSendsHeartbeatsWhenIdle(t *testing.T) {
	var mu sync.Mutex
	sent := make(map[int]int)
	d := New(Options{
		ID: 0, N: 3,
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectTimeout:    time.Hour,
		SendHeartbeat: func(peer int) {
			mu.Lock()
			sent[peer]++
			mu.Unlock()
		},
	})
	defer d.Stop()
	d.UpdateView(0) // view 0: leader = 0 = self
	time.Sleep(80 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	for _, peer := range []int{1, 2} {
		if sent[peer] < 2 {
			t.Errorf("heartbeats to peer %d = %d, want >= 2", peer, sent[peer])
		}
	}
	if sent[0] != 0 {
		t.Errorf("sent %d heartbeats to self", sent[0])
	}
}

func TestLeaderSkipsBusyConnections(t *testing.T) {
	var count atomic.Int32
	d := New(Options{
		ID: 0, N: 2,
		HeartbeatInterval: 20 * time.Millisecond,
		SuspectTimeout:    time.Hour,
		SendHeartbeat:     func(int) { count.Add(1) },
	})
	defer d.Stop()
	d.UpdateView(0)
	// Keep "sending" traffic to peer 1: no heartbeats needed.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(2 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				d.TouchSent(1)
			}
		}
	}()
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	if got := count.Load(); got > 1 {
		t.Errorf("heartbeats on busy connection = %d, want <= 1", got)
	}
}

func TestFollowerSuspectsSilentLeader(t *testing.T) {
	var suspected atomic.Int32
	suspected.Store(-1)
	d := New(Options{
		ID: 1, N: 3,
		HeartbeatInterval: 5 * time.Millisecond,
		SuspectTimeout:    30 * time.Millisecond,
		Suspect:           func(v wire.View) { suspected.Store(int32(v)) },
	})
	defer d.Stop()
	d.UpdateView(0) // leader = replica 0, which stays silent
	deadline := time.Now().Add(time.Second)
	for suspected.Load() < 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if suspected.Load() != 0 {
		t.Fatalf("suspected view = %d, want 0", suspected.Load())
	}
}

func TestFollowerDoesNotSuspectLiveLeader(t *testing.T) {
	var count atomic.Int32
	d := New(Options{
		ID: 1, N: 3,
		HeartbeatInterval: 5 * time.Millisecond,
		SuspectTimeout:    30 * time.Millisecond,
		Suspect:           func(wire.View) { count.Add(1) },
	})
	defer d.Stop()
	d.UpdateView(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(5 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				d.TouchRecv(0) // leader traffic keeps arriving
			}
		}
	}()
	time.Sleep(120 * time.Millisecond)
	close(stop)
	wg.Wait()
	if count.Load() != 0 {
		t.Errorf("suspected live leader %d times", count.Load())
	}
}

func TestSuspectOncePerView(t *testing.T) {
	var count atomic.Int32
	d := New(Options{
		ID: 1, N: 3,
		HeartbeatInterval: 2 * time.Millisecond,
		SuspectTimeout:    10 * time.Millisecond,
		Suspect:           func(wire.View) { count.Add(1) },
	})
	defer d.Stop()
	d.UpdateView(0)
	time.Sleep(100 * time.Millisecond)
	if got := count.Load(); got != 1 {
		t.Errorf("suspect callbacks = %d, want exactly 1", got)
	}
	// Moving to a new view re-arms suspicion (view 3: leader = 0 again).
	d.UpdateView(3)
	if d.View() != 3 {
		t.Errorf("View = %d, want 3", d.View())
	}
	deadline := time.Now().Add(time.Second)
	for count.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := count.Load(); got != 2 {
		t.Errorf("suspect callbacks after view change = %d, want 2", got)
	}
}

func TestUpdateViewGrantsGracePeriod(t *testing.T) {
	var count atomic.Int32
	d := New(Options{
		ID: 1, N: 3,
		HeartbeatInterval: 2 * time.Millisecond,
		SuspectTimeout:    50 * time.Millisecond,
		Suspect:           func(wire.View) { count.Add(1) },
	})
	defer d.Stop()
	d.UpdateView(0)
	time.Sleep(30 * time.Millisecond)
	d.UpdateView(2) // new leader gets a fresh timeout
	time.Sleep(20 * time.Millisecond)
	if count.Load() != 0 {
		t.Errorf("suspected %d times before grace period elapsed", count.Load())
	}
}

func TestTouchOutOfRangeIsSafe(t *testing.T) {
	d := New(Options{ID: 0, N: 2, SuspectTimeout: time.Hour})
	defer d.Stop()
	d.TouchRecv(-1)
	d.TouchRecv(99)
	d.TouchSent(-1)
	d.TouchSent(99)
}
