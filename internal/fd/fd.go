// Package fd implements the FailureDetector thread of Sec. V-C3. The leader
// sends heartbeats when its connections have been idle; followers suspect
// the leader when nothing has been received from it within the timeout.
//
// As in the paper, the per-peer send/receive timestamps are updated directly
// by the ReplicaIO threads using atomics, with no notification to the
// detector: since timestamps only ever move forward, an update can only
// delay the next action, so the detector can safely sleep until the
// originally computed deadline and re-evaluate then. This avoids a context
// switch per message.
package fd

import (
	"sync"
	"sync/atomic"
	"time"

	"gosmr/internal/profiling"
	"gosmr/internal/wire"
)

// Default intervals. The suspect timeout must comfortably exceed the
// heartbeat interval to tolerate scheduling jitter under load.
const (
	DefaultHeartbeatInterval = 50 * time.Millisecond
	DefaultSuspectTimeout    = 500 * time.Millisecond
)

// Options configures a Detector.
type Options struct {
	// ID is this replica's ID; N the cluster size.
	ID, N int
	// HeartbeatInterval is the maximum idle time before the leader sends a
	// heartbeat to a peer.
	HeartbeatInterval time.Duration
	// SuspectTimeout is how long a follower waits for leader traffic before
	// suspecting it.
	SuspectTimeout time.Duration
	// SendHeartbeat sends a heartbeat to peer (called from the detector
	// goroutine, must not block indefinitely).
	SendHeartbeat func(peer int)
	// ForceHeartbeat makes the leader heartbeat every peer once per
	// HeartbeatInterval regardless of connection idleness. Plain failure
	// detection only needs heartbeats on idle connections (any traffic
	// proves liveness), but leader leases renew via heartbeat-carried
	// grants, which must keep flowing under full proposal load.
	ForceHeartbeat bool
	// Suspect reports that the leader of view is suspected. Called at most
	// once per view, from the detector goroutine.
	Suspect func(view wire.View)
	// HoldSuspect, when non-nil, is consulted before reporting a suspicion.
	// Returning true skips the report WITHOUT recording the view as already
	// suspected, so the detector re-evaluates on its next tick and the
	// suspicion fires naturally once the hold lifts. Used to honor a leader
	// lease promise: electing a new leader while the old one may still be
	// serving local reads would violate lease safety.
	HoldSuspect func(view wire.View) bool
	// Thread receives profiling accounting (may be nil).
	Thread *profiling.Thread
}

// membership is the swappable peer-set state: topology (nil for the legacy
// boot-frozen shape) plus the per-peer timestamp arrays sized to it. A
// reconfiguration builds a new membership (copying surviving timestamps)
// and swaps the pointer; a Touch racing the swap can lose one update, which
// at worst delays the next heartbeat/suspicion by an interval.
type membership struct {
	topo     *wire.Topology // nil = legacy fixed shape of size n
	n        int            // len of the arrays (max replica ID + 1)
	lastRecv []atomic.Int64 // unix nanos of last message received from peer
	lastSent []atomic.Int64 // unix nanos of last message sent to peer
}

// active reports whether peer p participates in the current shape.
func (m *membership) active(p int) bool {
	if m.topo != nil {
		return m.topo.Active(p)
	}
	return p >= 0 && p < m.n
}

// leader maps a view to its leader under this shape.
func (m *membership) leader(v wire.View) int {
	if m.topo != nil {
		return m.topo.Leader(v)
	}
	l := int(v) % m.n
	if l < 0 {
		l = -l // defensive; views are non-negative in practice
	}
	return l
}

// Detector is the failure-detector thread. Construct with New, stop with
// Stop.
type Detector struct {
	opts Options

	mem    atomic.Pointer[membership]
	lastHB []int64 // unix nanos of last forced heartbeat (detector goroutine only)

	view      atomic.Int32 // current view
	suspected atomic.Int32 // highest view already reported suspected; -1 none

	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// newMembership builds arrays for n slots initialized to now.
func newMembership(topo *wire.Topology, n int) *membership {
	m := &membership{
		topo:     topo,
		n:        n,
		lastRecv: make([]atomic.Int64, n),
		lastSent: make([]atomic.Int64, n),
	}
	now := time.Now().UnixNano()
	for i := range m.lastRecv {
		m.lastRecv[i].Store(now)
		m.lastSent[i].Store(now)
	}
	return m
}

// New returns a started Detector.
func New(opts Options) *Detector {
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if opts.SuspectTimeout <= 0 {
		opts.SuspectTimeout = DefaultSuspectTimeout
	}
	d := &Detector{
		opts:   opts,
		lastHB: make([]int64, opts.N),
		stop:   make(chan struct{}),
	}
	d.mem.Store(newMembership(nil, opts.N))
	d.suspected.Store(-1)
	d.wg.Add(1)
	go d.run()
	return d
}

// SetTopology swaps the peer set to an epoch-stamped topology. Timestamps
// of surviving peers carry over; added peers start with a full timeout from
// now. Safe to call concurrently with Touch*/UpdateView.
func (d *Detector) SetTopology(topo *wire.Topology) {
	old := d.mem.Load()
	m := newMembership(topo, len(topo.Peers))
	for i := 0; i < len(old.lastRecv) && i < len(m.lastRecv); i++ {
		m.lastRecv[i].Store(old.lastRecv[i].Load())
		m.lastSent[i].Store(old.lastSent[i].Load())
	}
	d.mem.Store(m)
}

// TouchRecv records that a message from peer was just received. Called by
// ReplicaIO reader threads; lock-free.
func (d *Detector) TouchRecv(peer int) {
	m := d.mem.Load()
	if peer >= 0 && peer < len(m.lastRecv) {
		m.lastRecv[peer].Store(time.Now().UnixNano())
	}
}

// TouchSent records that a message to peer was just sent. Called by
// ReplicaIO sender threads; lock-free.
func (d *Detector) TouchSent(peer int) {
	m := d.mem.Load()
	if peer >= 0 && peer < len(m.lastSent) {
		m.lastSent[peer].Store(time.Now().UnixNano())
	}
}

// UpdateView tells the detector the protocol moved to view v, resetting
// suspicion for the new leader.
func (d *Detector) UpdateView(v wire.View) {
	d.view.Store(int32(v))
	// Give the new leader a full timeout from now.
	now := time.Now().UnixNano()
	m := d.mem.Load()
	leader := m.leader(v)
	if leader >= 0 && leader < len(m.lastRecv) {
		m.lastRecv[leader].Store(now)
	}
}

// View returns the detector's current view.
func (d *Detector) View() wire.View { return wire.View(d.view.Load()) }

// Stop terminates the detector thread and waits for it.
func (d *Detector) Stop() {
	d.once.Do(func() { close(d.stop) })
	d.wg.Wait()
}

// run is the FailureDetector thread body: sleep until the earliest possible
// deadline, then re-evaluate against the current timestamps.
func (d *Detector) run() {
	defer d.wg.Done()
	th := d.opts.Thread
	// Polling at a fraction of the heartbeat interval implements the
	// "sleep until original deadline, then re-check" rule with enough
	// resolution for both roles.
	tick := d.opts.HeartbeatInterval / 2
	if tick <= 0 {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		th.Transition(profiling.StateOther) // sleeping
		select {
		case <-d.stop:
			th.Transition(profiling.StateWaiting)
			return
		case <-ticker.C:
		}
		th.Transition(profiling.StateBusy)
		d.evaluate(time.Now())
	}
}

// evaluate performs one leader-heartbeat / follower-suspicion pass.
func (d *Detector) evaluate(now time.Time) {
	view := wire.View(d.view.Load())
	m := d.mem.Load()
	leader := m.leader(view)
	if leader == d.opts.ID {
		// Leader role: heartbeat any peer whose connection has been idle —
		// or, under ForceHeartbeat, any peer not explicitly heartbeated for
		// an interval, even if proposal traffic kept the connection busy
		// (lease grants ride only on heartbeats).
		if len(d.lastHB) < len(m.lastSent) {
			d.lastHB = append(d.lastHB, make([]int64, len(m.lastSent)-len(d.lastHB))...)
		}
		cutoff := now.Add(-d.opts.HeartbeatInterval).UnixNano()
		for p := range m.lastSent {
			if p == d.opts.ID || !m.active(p) {
				continue
			}
			due := m.lastSent[p].Load() <= cutoff
			if d.opts.ForceHeartbeat {
				due = d.lastHB[p] <= cutoff
			}
			if due && d.opts.SendHeartbeat != nil {
				d.opts.SendHeartbeat(p)
				m.lastSent[p].Store(now.UnixNano())
				d.lastHB[p] = now.UnixNano()
			}
		}
		return
	}
	// Follower role: suspect a silent leader, once per view.
	if leader < 0 || leader >= len(m.lastRecv) {
		return
	}
	cutoff := now.Add(-d.opts.SuspectTimeout).UnixNano()
	if m.lastRecv[leader].Load() <= cutoff && d.suspected.Load() < int32(view) {
		if d.opts.HoldSuspect != nil && d.opts.HoldSuspect(view) {
			return // promise active: retry next tick, don't mark suspected
		}
		d.suspected.Store(int32(view))
		if d.opts.Suspect != nil {
			d.opts.Suspect(view)
		}
	}
}
