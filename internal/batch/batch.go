// Package batch implements the batching policy of Sec. III-A/V-C1: client
// requests are grouped into batches of at most MaxBytes (the paper's BSZ
// parameter) or flushed after MaxDelay, whichever comes first. Batches are
// the unit of ordering — one consensus instance carries one batch.
package batch

import (
	"time"

	"gosmr/internal/wire"
)

// DefaultMaxBytes matches the paper's baseline batch size (BSZ = 1300 bytes:
// one Ethernet frame of requests, Sec. VI).
const DefaultMaxBytes = 1300

// DefaultMaxDelay bounds request latency under light load.
const DefaultMaxDelay = 5 * time.Millisecond

// Policy configures the batcher.
type Policy struct {
	// MaxBytes is the batch size budget in encoded wire bytes (BSZ).
	MaxBytes int
	// MaxDelay flushes a non-empty batch that has waited this long.
	MaxDelay time.Duration
}

// withDefaults fills zero fields.
func (p Policy) withDefaults() Policy {
	if p.MaxBytes <= 0 {
		p.MaxBytes = DefaultMaxBytes
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	return p
}

// Builder accumulates requests into a batch under a Policy. Not safe for
// concurrent use; it is owned by the Batcher thread.
type Builder struct {
	policy  Policy
	reqs    []*wire.ClientRequest
	bytes   int
	since   time.Time
	recycle func(*wire.ClientRequest)
}

// NewBuilder returns an empty builder with p (zero fields defaulted).
func NewBuilder(p Policy) *Builder {
	return &Builder{policy: p.withDefaults(), bytes: wire.BatchOverhead}
}

// Policy returns the effective (defaulted) policy.
func (b *Builder) Policy() Policy { return b.policy }

// SetRecycle installs f to be called with each request after Flush has
// encoded it into the batch — the hand-back point of the pipeline's request
// ownership chain (typically wire.Release, returning the struct to the
// decode pool). The caller must not touch flushed requests afterwards. Nil
// (the default) disables recycling.
func (b *Builder) SetRecycle(f func(*wire.ClientRequest)) { b.recycle = f }

// Len returns the number of buffered requests.
func (b *Builder) Len() int { return len(b.reqs) }

// Bytes returns the encoded size of the current batch.
func (b *Builder) Bytes() int { return b.bytes }

// Fits reports whether req can join the current batch without exceeding
// MaxBytes. A request larger than the whole budget always "fits" into an
// empty batch so oversized requests are not starved.
func (b *Builder) Fits(req *wire.ClientRequest) bool {
	sz := wire.EncodedRequestSize(len(req.Payload))
	if len(b.reqs) == 0 {
		return true
	}
	return b.bytes+sz <= b.policy.MaxBytes
}

// Add appends req and reports whether the batch is now at or over budget
// and should be flushed. The MaxDelay clock starts at the first appended
// request of each batch — never at builder creation or at the previous
// flush — so time the batcher spends idle waiting for traffic can not eat
// into a later batch's flush delay (see the idle-then-burst regression
// test).
func (b *Builder) Add(req *wire.ClientRequest) (full bool) {
	if len(b.reqs) == 0 {
		b.since = time.Now()
	}
	b.reqs = append(b.reqs, req)
	b.bytes += wire.EncodedRequestSize(len(req.Payload))
	return b.bytes >= b.policy.MaxBytes
}

// Deadline returns the flush deadline for the current batch. While the
// builder is empty there is no pending batch and therefore no deadline; the
// far future is returned so a caller polling Deadline cannot spuriously
// flush-expire a batch that has not started.
func (b *Builder) Deadline() time.Time {
	if len(b.reqs) == 0 {
		return time.Now().Add(365 * 24 * time.Hour)
	}
	return b.since.Add(b.policy.MaxDelay)
}

// Expired reports whether a non-empty batch has passed its deadline.
func (b *Builder) Expired(now time.Time) bool {
	return len(b.reqs) > 0 && !now.Before(b.Deadline())
}

// Flush encodes and returns the batch, resetting the builder (including the
// MaxDelay clock, which the next batch's first Add restarts). It returns
// nil when empty. The request slice is reused across flushes and the batch
// value is allocated at its exact encoded size (b.bytes tracks it
// incrementally) — the one allocation per batch that is inherent, since the
// value is retained by the replicated log.
func (b *Builder) Flush() []byte {
	if len(b.reqs) == 0 {
		return nil
	}
	enc := wire.AppendBatch(make([]byte, 0, b.bytes), b.reqs)
	if b.recycle != nil {
		for i, req := range b.reqs {
			b.recycle(req)
			b.reqs[i] = nil
		}
	}
	b.reqs = b.reqs[:0]
	b.bytes = wire.BatchOverhead
	b.since = time.Time{}
	return enc
}
