package batch

import (
	"testing"
	"time"

	"gosmr/internal/wire"
)

func req(payload int) *wire.ClientRequest {
	return &wire.ClientRequest{ClientID: 1, Seq: 1, Payload: make([]byte, payload)}
}

func TestDefaults(t *testing.T) {
	b := NewBuilder(Policy{})
	if p := b.Policy(); p.MaxBytes != DefaultMaxBytes || p.MaxDelay != DefaultMaxDelay {
		t.Errorf("defaulted policy = %+v", p)
	}
}

func TestAddUntilFull(t *testing.T) {
	// 128-byte requests, 1300-byte budget: like the paper's workload, about
	// 8-9 requests fit ((1300-4)/(128+20) = 8.7).
	b := NewBuilder(Policy{MaxBytes: 1300})
	n := 0
	for !b.Add(req(128)) {
		n++
		if n > 100 {
			t.Fatal("batch never filled")
		}
	}
	total := n + 1
	if total < 8 || total > 9 {
		t.Errorf("batch holds %d requests, want 8-9", total)
	}
	enc := b.Flush()
	if len(enc) < 1300-148 || len(enc) > 1300+148 {
		t.Errorf("encoded size = %d, want ~1300", len(enc))
	}
	if b.Len() != 0 || b.Bytes() != wire.BatchOverhead {
		t.Errorf("after Flush: Len %d Bytes %d", b.Len(), b.Bytes())
	}
	reqs, err := wire.DecodeBatch(enc)
	if err != nil || len(reqs) != total {
		t.Errorf("decode: %d reqs err %v, want %d", len(reqs), err, total)
	}
}

func TestOversizedRequestFitsEmptyBatch(t *testing.T) {
	b := NewBuilder(Policy{MaxBytes: 100})
	big := req(500)
	if !b.Fits(big) {
		t.Error("oversized request does not fit empty batch")
	}
	if full := b.Add(big); !full {
		t.Error("oversized request did not mark batch full")
	}
	if b.Fits(req(1)) {
		t.Error("request fits a full batch")
	}
}

func TestFlushEmptyReturnsNil(t *testing.T) {
	b := NewBuilder(Policy{})
	if got := b.Flush(); got != nil {
		t.Errorf("Flush on empty = %v, want nil", got)
	}
}

func TestDeadlineAndExpired(t *testing.T) {
	b := NewBuilder(Policy{MaxDelay: 10 * time.Millisecond})
	now := time.Now()
	if b.Expired(now.Add(time.Hour)) {
		t.Error("empty batch reported expired")
	}
	b.Add(req(8))
	if b.Expired(time.Now()) {
		t.Error("fresh batch reported expired")
	}
	if b.Expired(b.Deadline().Add(-time.Nanosecond)) {
		t.Error("batch expired before deadline")
	}
	if !b.Expired(b.Deadline()) {
		t.Error("batch not expired at deadline")
	}
}

func TestDelayClockRestartsPerBatch(t *testing.T) {
	b := NewBuilder(Policy{MaxDelay: 50 * time.Millisecond})
	b.Add(req(4))
	first := b.Deadline()
	b.Flush()
	time.Sleep(5 * time.Millisecond)
	b.Add(req(4))
	if !b.Deadline().After(first) {
		t.Error("second batch deadline did not restart")
	}
}

func TestIdleThenBurstStartsDelayClockAtFirstAdd(t *testing.T) {
	// Regression: an idle stretch before the first request of a batch must
	// not count against the batch's MaxDelay — the flush clock starts at
	// the first appended request, never at builder creation or at the
	// previous flush.
	const delay = 50 * time.Millisecond
	b := NewBuilder(Policy{MaxBytes: 1 << 20, MaxDelay: delay})

	// While empty there is no deadline to expire against.
	if !b.Deadline().After(time.Now().Add(time.Hour)) {
		t.Error("empty builder has a near deadline; idle time would eat the delay budget")
	}

	// Builder sits idle, then a burst arrives: the deadline must be a full
	// MaxDelay away from the first Add, not from creation.
	created := time.Now()
	time.Sleep(20 * time.Millisecond)
	before := time.Now()
	b.Add(req(8))
	b.Add(req(8))
	if dl := b.Deadline(); dl.Before(before.Add(delay)) {
		t.Errorf("deadline %v is before firstAdd+MaxDelay %v (clock started too early, creation was %v)",
			dl, before.Add(delay), created)
	}
	if b.Expired(time.Now()) {
		t.Error("burst batch already expired: idle time was charged to it")
	}

	// After a flush the clock resets again: another idle stretch, another
	// burst, and the second batch gets its own full delay budget.
	b.Flush()
	time.Sleep(20 * time.Millisecond)
	before = time.Now()
	b.Add(req(8))
	if dl := b.Deadline(); dl.Before(before.Add(delay)) {
		t.Errorf("post-flush deadline %v is before firstAdd+MaxDelay %v", dl, before.Add(delay))
	}
}
