// Package profiling provides per-thread (goroutine) state accounting for the
// replica pipeline, mirroring the ThreadMXBean-based measurements of the
// paper (Sec. VI): for every named module thread it tracks the time spent
// busy (executing), blocked (acquiring a contended lock), waiting (idle on an
// empty/full queue or condition), and other (sleeping, scheduled out, I/O).
//
// A nil *Thread or *Registry is valid and disables accounting at near-zero
// cost, so production code paths can share the instrumented hot path with
// experiment runs.
package profiling

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// State classifies what a module thread is doing at an instant. It matches
// the four categories reported in Figures 1b, 8 and 14 of the paper.
type State uint8

// Thread states. StateOther covers sleeping, system calls, and time spent
// runnable but descheduled.
const (
	StateBusy State = iota + 1
	StateBlocked
	StateWaiting
	StateOther
)

// numStates is the number of valid states plus one for 1-based indexing.
const numStates = 5

// String returns the lower-case label used in experiment output.
func (s State) String() string {
	switch s {
	case StateBusy:
		return "busy"
	case StateBlocked:
		return "blocked"
	case StateWaiting:
		return "waiting"
	case StateOther:
		return "other"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Thread accumulates per-state durations for one named module thread. All
// methods are safe for concurrent use and safe on a nil receiver.
type Thread struct {
	name string

	mu     sync.Mutex
	state  State
	since  time.Time
	totals [numStates]time.Duration
}

// Name returns the thread's registered name, or "" for a nil thread.
func (t *Thread) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Transition switches the thread to state s, crediting the elapsed time to
// the previous state.
func (t *Thread) Transition(s State) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	t.totals[t.state] += now.Sub(t.since)
	t.state = s
	t.since = now
	t.mu.Unlock()
}

// stats returns a snapshot including the in-progress interval.
func (t *Thread) stats(now time.Time) ThreadStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	totals := t.totals
	totals[t.state] += now.Sub(t.since)
	return ThreadStats{
		Name:    t.name,
		Busy:    totals[StateBusy],
		Blocked: totals[StateBlocked],
		Waiting: totals[StateWaiting],
		Other:   totals[StateOther],
	}
}

// reset zeroes the accumulated totals and restarts the current interval,
// used to discard warm-up time.
func (t *Thread) reset(now time.Time) {
	t.mu.Lock()
	t.totals = [numStates]time.Duration{}
	t.since = now
	t.mu.Unlock()
}

// ThreadStats is a point-in-time snapshot of one thread's accounting.
type ThreadStats struct {
	Name    string
	Busy    time.Duration
	Blocked time.Duration
	Waiting time.Duration
	Other   time.Duration
}

// Total returns the sum over all states (the wall time observed).
func (s ThreadStats) Total() time.Duration {
	return s.Busy + s.Blocked + s.Waiting + s.Other
}

// Fractions returns each state as a fraction of the observation window d.
// If d is zero the thread's own total is used.
func (s ThreadStats) Fractions(d time.Duration) (busy, blocked, waiting, other float64) {
	if d <= 0 {
		d = s.Total()
	}
	if d <= 0 {
		return 0, 0, 0, 0
	}
	den := float64(d)
	return float64(s.Busy) / den, float64(s.Blocked) / den,
		float64(s.Waiting) / den, float64(s.Other) / den
}

// Registry holds the threads of one replica process. The zero value is not
// usable; construct with NewRegistry. A nil registry disables profiling.
type Registry struct {
	mu      sync.Mutex
	start   time.Time
	threads []*Thread
}

// NewRegistry returns an empty registry whose observation window starts now.
func NewRegistry() *Registry {
	return &Registry{start: time.Now()}
}

// Register creates and tracks a thread named name, initially in StateOther.
// Returns nil when the registry is nil.
func (r *Registry) Register(name string) *Thread {
	if r == nil {
		return nil
	}
	t := &Thread{name: name, state: StateOther, since: time.Now()}
	r.mu.Lock()
	r.threads = append(r.threads, t)
	r.mu.Unlock()
	return t
}

// Window returns the duration since the registry was created or last reset.
func (r *Registry) Window() time.Duration {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return time.Since(r.start)
}

// Reset discards all accumulated totals and restarts the observation window.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	now := time.Now()
	r.mu.Lock()
	r.start = now
	threads := append([]*Thread(nil), r.threads...)
	r.mu.Unlock()
	for _, t := range threads {
		t.reset(now)
	}
}

// Snapshot returns stats for every registered thread, sorted by name for
// stable experiment output.
func (r *Registry) Snapshot() []ThreadStats {
	if r == nil {
		return nil
	}
	now := time.Now()
	r.mu.Lock()
	threads := append([]*Thread(nil), r.threads...)
	r.mu.Unlock()
	out := make([]ThreadStats, 0, len(threads))
	for _, t := range threads {
		out = append(out, t.stats(now))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TotalBlocked returns the sum of blocked time across all threads — the
// "total blocked time" contention metric of Figures 5b/5d, 7 and 13b.
func (r *Registry) TotalBlocked() time.Duration {
	var sum time.Duration
	for _, s := range r.Snapshot() {
		sum += s.Blocked
	}
	return sum
}

// Mutex is a sync.Mutex that credits contended acquisition time to the
// calling thread's blocked state, so coarse-grained locking shows up exactly
// the way the paper's ThreadMXBean measurements report it.
type Mutex struct {
	mu sync.Mutex
}

// Lock acquires the mutex, recording contention against th (which may be
// nil).
func (m *Mutex) Lock(th *Thread) {
	if m.mu.TryLock() {
		return
	}
	th.Transition(StateBlocked)
	m.mu.Lock()
	th.Transition(StateBusy)
}

// Unlock releases the mutex.
func (m *Mutex) Unlock() {
	m.mu.Unlock()
}
