package profiling

import (
	"sync"
	"testing"
	"time"
)

func TestStateString(t *testing.T) {
	tests := []struct {
		s    State
		want string
	}{
		{StateBusy, "busy"},
		{StateBlocked, "blocked"},
		{StateWaiting, "waiting"},
		{StateOther, "other"},
		{State(99), "state(99)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("State(%d).String() = %q, want %q", tt.s, got, tt.want)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	th := r.Register("x")
	if th != nil {
		t.Fatalf("nil registry Register = %v, want nil", th)
	}
	// All of these must not panic.
	th.Transition(StateBusy)
	if got := th.Name(); got != "" {
		t.Errorf("nil thread Name = %q, want empty", got)
	}
	if got := r.Snapshot(); got != nil {
		t.Errorf("nil registry Snapshot = %v, want nil", got)
	}
	if got := r.Window(); got != 0 {
		t.Errorf("nil registry Window = %v, want 0", got)
	}
	r.Reset()
}

func TestTransitionAccounting(t *testing.T) {
	r := NewRegistry()
	th := r.Register("worker")
	th.Transition(StateBusy)
	time.Sleep(20 * time.Millisecond)
	th.Transition(StateWaiting)
	time.Sleep(10 * time.Millisecond)
	th.Transition(StateBusy)

	snaps := r.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("Snapshot returned %d threads, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Name != "worker" {
		t.Errorf("Name = %q, want worker", s.Name)
	}
	if s.Busy < 15*time.Millisecond {
		t.Errorf("Busy = %v, want >= 15ms", s.Busy)
	}
	if s.Waiting < 5*time.Millisecond {
		t.Errorf("Waiting = %v, want >= 5ms", s.Waiting)
	}
	if s.Total() <= 0 {
		t.Errorf("Total = %v, want > 0", s.Total())
	}
}

func TestFractions(t *testing.T) {
	s := ThreadStats{Busy: 60 * time.Millisecond, Blocked: 20 * time.Millisecond,
		Waiting: 15 * time.Millisecond, Other: 5 * time.Millisecond}
	busy, blocked, waiting, other := s.Fractions(100 * time.Millisecond)
	if busy != 0.6 || blocked != 0.2 || waiting != 0.15 || other != 0.05 {
		t.Errorf("Fractions = %v %v %v %v, want 0.6 0.2 0.15 0.05", busy, blocked, waiting, other)
	}
	// Zero window falls back to the thread's own total.
	busy, _, _, _ = s.Fractions(0)
	if busy != 0.6 {
		t.Errorf("Fractions(0) busy = %v, want 0.6", busy)
	}
	var zero ThreadStats
	busy, blocked, waiting, other = zero.Fractions(0)
	if busy != 0 || blocked != 0 || waiting != 0 || other != 0 {
		t.Errorf("zero stats Fractions = %v %v %v %v, want all 0", busy, blocked, waiting, other)
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	th := r.Register("a")
	th.Transition(StateBusy)
	time.Sleep(10 * time.Millisecond)
	r.Reset()
	s := r.Snapshot()[0]
	if s.Busy > 5*time.Millisecond {
		t.Errorf("after Reset Busy = %v, want ~0", s.Busy)
	}
	if w := r.Window(); w > 5*time.Millisecond {
		t.Errorf("after Reset Window = %v, want ~0", w)
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		r.Register(name)
	}
	snaps := r.Snapshot()
	want := []string{"alpha", "mid", "zeta"}
	for i, s := range snaps {
		if s.Name != want[i] {
			t.Errorf("snapshot[%d] = %q, want %q", i, s.Name, want[i])
		}
	}
}

func TestTotalBlockedAndMutex(t *testing.T) {
	r := NewRegistry()
	holder := r.Register("holder")
	contender := r.Register("contender")
	holder.Transition(StateBusy)
	contender.Transition(StateBusy)

	var m Mutex
	m.Lock(holder)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.Lock(contender) // must block ~20ms
		m.Unlock()
	}()
	time.Sleep(20 * time.Millisecond)
	m.Unlock()
	wg.Wait()

	if got := r.TotalBlocked(); got < 10*time.Millisecond {
		t.Errorf("TotalBlocked = %v, want >= 10ms", got)
	}
}

func TestMutexUncontendedNoBlocking(t *testing.T) {
	r := NewRegistry()
	th := r.Register("solo")
	th.Transition(StateBusy)
	var m Mutex
	for range 100 {
		m.Lock(th)
		m.Unlock()
	}
	s := r.Snapshot()[0]
	if s.Blocked > time.Millisecond {
		t.Errorf("uncontended Blocked = %v, want ~0", s.Blocked)
	}
}

func TestConcurrentTransitions(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := range 8 {
		th := r.Register("t")
		wg.Add(1)
		go func(th *Thread, i int) {
			defer wg.Done()
			for j := range 1000 {
				th.Transition(State(1 + (i+j)%4))
			}
		}(th, i)
	}
	// Snapshot concurrently with transitions to catch races.
	for range 10 {
		r.Snapshot()
	}
	wg.Wait()
	if n := len(r.Snapshot()); n != 8 {
		t.Errorf("got %d threads, want 8", n)
	}
}
