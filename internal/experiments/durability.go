package experiments

// Durability experiment: measures what the write-ahead log costs the
// ordering layer. Group commit (SyncPolicy=batch) is designed to keep the
// fsync rate decoupled from the decision rate — the Syncer coalesces
// everything that accumulated during the previous fsync into the next one,
// and only protocol *output* waits for the disk — so decided-batch
// throughput should track the no-fsync baseline (SyncPolicy=none) closely,
// paying only latency. A regression that re-couples fsyncs to the critical
// path (one fsync per record, a gate that serializes the pipeline) shows up
// here as a collapsed ratio.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"gosmr/internal/batch"
	"gosmr/internal/core"
	"gosmr/internal/service"
	"gosmr/internal/transport"
	"gosmr/internal/wal"
	"gosmr/internal/wire"
)

// DurabilityOptions configures the smoke.
type DurabilityOptions struct {
	// Dir is the parent directory for the replicas' data dirs (required;
	// each cell uses a fresh subdirectory).
	Dir string
	// Policies lists the WAL sync policies to measure (default none, batch
	// — the baseline first).
	Policies []wal.SyncPolicy
	// Clients is the number of open-loop sender connections (default 12).
	Clients int
	// Window is the pipelining window WND (default 128: enough in-flight
	// instances that group commit has appends to coalesce).
	Window int
	// Warmup and Measure bound each cell (defaults 150ms / 400ms).
	Warmup  time.Duration
	Measure time.Duration
}

func (o DurabilityOptions) withDefaults() DurabilityOptions {
	if len(o.Policies) == 0 {
		o.Policies = []wal.SyncPolicy{wal.SyncNone, wal.SyncBatch}
	}
	if o.Clients <= 0 {
		o.Clients = 12
	}
	if o.Window <= 0 {
		o.Window = 128
	}
	if o.Warmup <= 0 {
		o.Warmup = 150 * time.Millisecond
	}
	if o.Measure <= 0 {
		o.Measure = 400 * time.Millisecond
	}
	return o
}

// DurabilityCell is one measured policy.
type DurabilityCell struct {
	Policy   wal.SyncPolicy
	Batches  float64 // decided non-empty batches per second
	Executed float64 // executed requests per second
}

// DurabilityResult holds the sweep.
type DurabilityResult struct {
	Cells  []DurabilityCell
	Report string
}

// Ratio returns policy's decided-batch throughput relative to the first
// (baseline) cell, or 0 when missing.
func (r DurabilityResult) Ratio(policy wal.SyncPolicy) float64 {
	if len(r.Cells) == 0 || r.Cells[0].Batches <= 0 {
		return 0
	}
	for _, c := range r.Cells {
		if c.Policy == policy {
			return c.Batches / r.Cells[0].Batches
		}
	}
	return 0
}

// DurabilitySmoke measures decided-batch throughput per WAL sync policy on
// a 3-replica in-process cluster writing real data directories.
func DurabilitySmoke(opts DurabilityOptions) (DurabilityResult, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return DurabilityResult{}, fmt.Errorf("experiments: DurabilityOptions.Dir is required")
	}
	var out DurabilityResult
	t := newTable("Durability", fmt.Sprintf(
		"Decided-batch throughput vs WAL sync policy (batches/s; n=3, %d clients, WND=%d, 1 req/batch)",
		opts.Clients, opts.Window))
	t.row("policy", "batches/s", "executed/s", "vs baseline")
	for i, policy := range opts.Policies {
		cellDir := filepath.Join(opts.Dir, fmt.Sprintf("cell-%d-%s", i, policy))
		cell, err := runDurabilityCell(opts, policy, cellDir)
		if err != nil {
			return out, err
		}
		out.Cells = append(out.Cells, cell)
		ratio := out.Ratio(policy)
		t.row(policy.String(), fmt.Sprintf("%8.0f", cell.Batches),
			fmt.Sprintf("%8.0f", cell.Executed), fmt.Sprintf("%5.2fx", ratio))
	}
	t.note("baseline is the first policy; group commit should stay within ~25%% of it")
	out.Report = t.String()
	return out, nil
}

// runDurabilityCell measures one policy.
func runDurabilityCell(opts DurabilityOptions, policy wal.SyncPolicy, dir string) (DurabilityCell, error) {
	net := transport.NewInproc(0)
	peers := []string{"dur-0", "dur-1", "dur-2"}
	reps := make([]*core.Replica, len(peers))
	for i := range peers {
		dataDir := filepath.Join(dir, fmt.Sprintf("r%d", i))
		if err := os.MkdirAll(dataDir, 0o755); err != nil {
			return DurabilityCell{}, err
		}
		rep, err := core.NewReplica(core.Config{
			ID: i, PeerAddrs: peers, ClientAddr: fmt.Sprintf("dur-c%d", i),
			Network:          net,
			Window:           opts.Window,
			ProposalQueueCap: 2 * opts.Window,
			Batch:            batch.Policy{MaxBytes: 48, MaxDelay: time.Millisecond},
			DataDir:          dataDir,
			SyncPolicy:       policy,
		}, service.NewKV())
		if err != nil {
			return DurabilityCell{}, err
		}
		if err := rep.Start(); err != nil {
			return DurabilityCell{}, err
		}
		defer rep.Stop()
		reps[i] = rep
	}
	leader := reps[0]
	for deadline := time.Now().Add(5 * time.Second); !leader.IsLeader() && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}

	// Open-loop senders, as in the group-scaling harness: the cell measures
	// ordering capacity under backpressure, not request latency.
	var stop atomic.Bool
	var wg sync.WaitGroup
	for c := range opts.Clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("dur-c0")
			if err != nil {
				return
			}
			defer conn.Close()
			value := []byte("dv")
			for seq := uint64(1); !stop.Load(); seq++ {
				req := &wire.ClientRequest{ClientID: uint64(1 + c), Seq: seq,
					Payload: service.EncodePut(fmt.Sprintf("c%d-k%d", c, seq%64), value)}
				if err := conn.WriteFrame(wire.Marshal(req)); err != nil {
					return
				}
			}
		}()
	}
	time.Sleep(opts.Warmup)
	startBatches := leader.DecidedBatches()
	startExecuted := leader.Executed()
	start := time.Now()
	time.Sleep(opts.Measure)
	batches := leader.DecidedBatches() - startBatches
	executed := leader.Executed() - startExecuted
	secs := time.Since(start).Seconds()
	stop.Store(true)
	wg.Wait()
	return DurabilityCell{
		Policy:   policy,
		Batches:  float64(batches) / secs,
		Executed: float64(executed) / secs,
	}, nil
}
