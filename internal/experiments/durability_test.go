package experiments

import (
	"strings"
	"testing"
	"time"

	"gosmr/internal/wal"
)

// TestDurabilitySmoke runs the WAL-cost smoke end to end: group commit
// (SyncPolicy=batch) must keep decided-batch throughput close to the
// no-fsync baseline. On real (multi-core) hardware the target is within 25%
// of the baseline — the fsync runs on the Syncer thread, off the ordering
// threads' critical path. CI runs this repository on a single shared core,
// where the fsync syscalls and the baseline pipeline compete for the same
// CPU and the measured ratio lands around 0.6–0.75 with heavy variance, so
// the hard assertion here is the regression bound: a change that re-couples
// fsync to the critical path (per-record fsync behaves like SyncAlways)
// collapses the ratio to ~0.02–0.05 and fails every attempt.
func TestDurabilitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("durability smoke measures wall-clock throughput; skipped in -short")
	}
	const regressionBound = 0.40
	var r DurabilityResult
	var err error
	ratio := 0.0
	for attempt := 0; attempt < 3 && ratio < regressionBound; attempt++ {
		r, err = DurabilitySmoke(DurabilityOptions{
			Dir:     t.TempDir(),
			Clients: 8,
			Warmup:  120 * time.Millisecond,
			Measure: 400 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range r.Cells {
			if c.Batches <= 0 {
				t.Fatalf("policy %s decided no batches", c.Policy)
			}
		}
		ratio = r.Ratio(wal.SyncBatch)
		t.Logf("attempt %d: batch/none ratio %.2f", attempt, ratio)
	}
	if ratio < regressionBound {
		t.Errorf("SyncPolicy=batch throughput is %.0f%% of the SyncPolicy=none baseline — fsync batching has regressed\n%s",
			100*ratio, r.Report)
	}
	if !strings.Contains(r.Report, "Durability") {
		t.Error("report missing title")
	}
}
