// Package experiments regenerates every figure and table of the paper's
// evaluation (Sec. VI) on the simulation substrate. Each runner returns a
// typed result with a formatted Report, printing the same rows/series the
// paper plots. A Suite memoizes the underlying parameter sweeps so figures
// that share data (e.g. Fig. 4 and Fig. 5) run once.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"gosmr/internal/sim"
	"gosmr/internal/simrsm"
)

// Options controls experiment fidelity.
type Options struct {
	// Warmup is discarded virtual time per run (default 150ms).
	Warmup time.Duration
	// Measure is the measured virtual window per run (default 400ms; the
	// paper ran 3 wall-clock minutes, but the simulator is deterministic so
	// steady state needs far less).
	Measure time.Duration
	// Cores lists the x-axis for scalability sweeps (default
	// 1,2,4,6,8,12,16,20,24 — the parapluie machine).
	Cores []int
}

func (o Options) withDefaults() Options {
	if o.Warmup <= 0 {
		o.Warmup = 150 * time.Millisecond
	}
	if o.Measure <= 0 {
		o.Measure = 400 * time.Millisecond
	}
	if len(o.Cores) == 0 {
		o.Cores = []int{1, 2, 4, 6, 8, 12, 16, 20, 24}
	}
	return o
}

// Suite runs experiments with memoized sweeps.
type Suite struct {
	opts Options

	jp map[string][]simrsm.Results // per sweep key
	zk []simrsm.ZKResults
}

// NewSuite returns a Suite with the given options.
func NewSuite(opts Options) *Suite {
	return &Suite{opts: opts.withDefaults(), jp: make(map[string][]simrsm.Results)}
}

// edelCostFactor slows per-core costs to model the edel cluster (whose
// measured single-core throughput was lower than parapluie's despite the
// higher clock — Fig. 6).
const edelCostFactor = 1.35

// jpSweep runs (and memoizes) a JPaxos cores-sweep.
func (s *Suite) jpSweep(n int, cores []int, costScale float64) []simrsm.Results {
	key := fmt.Sprintf("n%d-s%.2f-%v", n, costScale, cores)
	if res, ok := s.jp[key]; ok {
		return res
	}
	out := make([]simrsm.Results, 0, len(cores))
	for _, c := range cores {
		cfg := simrsm.Config{N: n, Cores: c}
		if costScale != 1 {
			cfg.Costs = simrsm.DefaultCosts().Scale(costScale)
		}
		out = append(out, simrsm.RunJPaxos(cfg, s.opts.Warmup, s.opts.Measure))
	}
	s.jp[key] = out
	return out
}

// zkSweep runs (and memoizes) the ZooKeeper-baseline cores-sweep.
func (s *Suite) zkSweep(cores []int) []simrsm.ZKResults {
	if s.zk != nil {
		return s.zk
	}
	out := make([]simrsm.ZKResults, 0, len(cores))
	for _, c := range cores {
		out = append(out, simrsm.RunZK(simrsm.ZKConfig{Cores: c}, s.opts.Warmup, s.opts.Measure))
	}
	s.zk = out
	return out
}

// ---------------------------------------------------------------------------
// Report formatting helpers.

type table struct {
	b strings.Builder
}

func newTable(id, title string) *table {
	t := &table{}
	fmt.Fprintf(&t.b, "== %s: %s ==\n", id, title)
	return t
}

func (t *table) row(cells ...string) {
	t.b.WriteString(strings.Join(cells, "  "))
	t.b.WriteByte('\n')
}

func (t *table) note(format string, args ...any) {
	fmt.Fprintf(&t.b, "   %s\n", fmt.Sprintf(format, args...))
}

func (t *table) String() string { return t.b.String() }

func threadRows(t *table, threads []sim.Stats, window time.Duration) {
	t.row(fmt.Sprintf("%-18s", "thread"), "busy%", "blocked%", "waiting%", "other%")
	for _, st := range threads {
		den := float64(window)
		t.row(fmt.Sprintf("%-18s", st.Name),
			fmt.Sprintf("%5.1f", 100*float64(st.Busy)/den),
			fmt.Sprintf("%8.1f", 100*float64(st.Blocked)/den),
			fmt.Sprintf("%8.1f", 100*float64(st.Waiting)/den),
			fmt.Sprintf("%6.1f", 100*float64(st.Other)/den))
	}
}

// ---------------------------------------------------------------------------
// Figures.

// ScalabilityResult holds a throughput-vs-cores curve (Figs. 1a, 4, 6, 12).
type ScalabilityResult struct {
	Cores      []int
	Throughput []float64 // requests/second
	Speedup    []float64 // vs the 1-core point
	Report     string
}

func scalability(cores []int, tput []float64) ([]float64, []float64) {
	speedup := make([]float64, len(tput))
	base := tput[0]
	for i, v := range tput {
		if base > 0 {
			speedup[i] = v / base
		}
	}
	return tput, speedup
}

// Fig1 reproduces Figure 1: ZooKeeper throughput vs cores (a) and the
// leader's per-thread profile at 24 cores (b).
func (s *Suite) Fig1() ScalabilityResult {
	res := s.zkSweep(s.opts.Cores)
	var tput []float64
	for _, r := range res {
		tput = append(tput, r.Throughput)
	}
	tput, speedup := scalability(s.opts.Cores, tput)
	t := newTable("Fig 1", "ZooKeeper performance with increasing cores (n=3, 128B writes)")
	t.row("cores", "req/s", "speedup")
	for i, c := range s.opts.Cores {
		t.row(fmt.Sprintf("%5d", c), fmt.Sprintf("%8.0f", tput[i]), fmt.Sprintf("%5.2f", speedup[i]))
	}
	last := res[len(res)-1]
	t.note("(b) leader per-thread states at %d cores:", s.opts.Cores[len(s.opts.Cores)-1])
	threadRows(t, last.LeaderThreads, last.Window)
	return ScalabilityResult{Cores: s.opts.Cores, Throughput: tput, Speedup: speedup, Report: t.String()}
}

// Fig4Result holds the JPaxos n=3 and n=5 scalability curves.
type Fig4Result struct {
	Cores   []int
	N3, N5  []float64
	SpeedN3 []float64
	SpeedN5 []float64
	Report  string
}

// Fig4 reproduces Figure 4: JPaxos throughput and speedup vs cores on the
// 24-core parapluie machine, n=3 and n=5.
func (s *Suite) Fig4() Fig4Result {
	r3 := s.jpSweep(3, s.opts.Cores, 1)
	r5 := s.jpSweep(5, s.opts.Cores, 1)
	out := Fig4Result{Cores: s.opts.Cores}
	for i := range s.opts.Cores {
		out.N3 = append(out.N3, r3[i].Throughput)
		out.N5 = append(out.N5, r5[i].Throughput)
	}
	_, out.SpeedN3 = scalability(s.opts.Cores, out.N3)
	_, out.SpeedN5 = scalability(s.opts.Cores, out.N5)
	t := newTable("Fig 4", "JPaxos throughput & speedup vs cores (parapluie)")
	t.row("cores", "n=3 req/s", "n=3 speedup", "n=5 req/s", "n=5 speedup")
	for i, c := range s.opts.Cores {
		t.row(fmt.Sprintf("%5d", c),
			fmt.Sprintf("%9.0f", out.N3[i]), fmt.Sprintf("%11.2f", out.SpeedN3[i]),
			fmt.Sprintf("%9.0f", out.N5[i]), fmt.Sprintf("%11.2f", out.SpeedN5[i]))
	}
	out.Report = t.String()
	return out
}

// UtilizationResult holds per-replica CPU and blocked-time curves
// (Figs. 5, 7, 13).
type UtilizationResult struct {
	Cores   []int
	CPU     [][]float64 // [replica][corePoint] % of one core
	Blocked [][]float64
	Report  string
}

func utilization(id, title string, cores []int, cpu, blocked [][]float64) UtilizationResult {
	t := newTable(id, title)
	hdr := []string{"cores"}
	for r := range cpu {
		hdr = append(hdr, fmt.Sprintf("cpu-R%d%%", r+1), fmt.Sprintf("blk-R%d%%", r+1))
	}
	t.row(hdr...)
	for i, c := range cores {
		cells := []string{fmt.Sprintf("%5d", c)}
		for r := range cpu {
			cells = append(cells, fmt.Sprintf("%7.0f", cpu[r][i]), fmt.Sprintf("%7.1f", blocked[r][i]))
		}
		t.row(cells...)
	}
	return UtilizationResult{Cores: cores, CPU: cpu, Blocked: blocked, Report: t.String()}
}

// Fig5 reproduces Figure 5: JPaxos per-replica CPU utilization and total
// blocked time vs cores (n=3 and n=5; the leader is the last replica in the
// paper's numbering, the first in ours).
func (s *Suite) Fig5() (n3, n5 UtilizationResult) {
	for _, n := range []int{3, 5} {
		res := s.jpSweep(n, s.opts.Cores, 1)
		cpu := make([][]float64, n)
		blk := make([][]float64, n)
		for i := range res {
			for r := range n {
				cpu[r] = append(cpu[r], res[i].CPUPercent[r])
				blk[r] = append(blk[r], res[i].BlockedPercent[r])
			}
		}
		u := utilization("Fig 5", fmt.Sprintf("JPaxos CPU usage and contention (n=%d, parapluie; R1 is the leader)", n),
			s.opts.Cores, cpu, blk)
		if n == 3 {
			n3 = u
		} else {
			n5 = u
		}
	}
	return n3, n5
}

// edelCores is the edel machine's core axis.
var edelCores = []int{1, 2, 3, 4, 5, 6, 7, 8}

// Fig6 reproduces Figure 6: throughput and speedup on the 8-core edel
// cluster.
func (s *Suite) Fig6() Fig4Result {
	r3 := s.jpSweep(3, edelCores, edelCostFactor)
	r5 := s.jpSweep(5, edelCores, edelCostFactor)
	out := Fig4Result{Cores: edelCores}
	for i := range edelCores {
		out.N3 = append(out.N3, r3[i].Throughput)
		out.N5 = append(out.N5, r5[i].Throughput)
	}
	_, out.SpeedN3 = scalability(edelCores, out.N3)
	_, out.SpeedN5 = scalability(edelCores, out.N5)
	t := newTable("Fig 6", "JPaxos throughput & speedup vs cores (edel, 8-core nodes)")
	t.row("cores", "n=3 req/s", "n=3 speedup", "n=5 req/s", "n=5 speedup")
	for i, c := range edelCores {
		t.row(fmt.Sprintf("%5d", c),
			fmt.Sprintf("%9.0f", out.N3[i]), fmt.Sprintf("%11.2f", out.SpeedN3[i]),
			fmt.Sprintf("%9.0f", out.N5[i]), fmt.Sprintf("%11.2f", out.SpeedN5[i]))
	}
	out.Report = t.String()
	return out
}

// Fig7 reproduces Figure 7: CPU usage and blocked time on edel.
func (s *Suite) Fig7() (n3, n5 UtilizationResult) {
	for _, n := range []int{3, 5} {
		res := s.jpSweep(n, edelCores, edelCostFactor)
		cpu := make([][]float64, n)
		blk := make([][]float64, n)
		for i := range res {
			for r := range n {
				cpu[r] = append(cpu[r], res[i].CPUPercent[r])
				blk[r] = append(blk[r], res[i].BlockedPercent[r])
			}
		}
		u := utilization("Fig 7", fmt.Sprintf("JPaxos CPU usage and blocked time (n=%d, edel; R1 is the leader)", n),
			edelCores, cpu, blk)
		if n == 3 {
			n3 = u
		} else {
			n5 = u
		}
	}
	return n3, n5
}

// ThreadProfileResult is a per-thread state breakdown (Figs. 8 and 14).
type ThreadProfileResult struct {
	Label   string
	Threads []sim.Stats
	Window  time.Duration
	Report  string
}

// Fig8 reproduces Figure 8: the leader's per-thread CPU utilization at 1
// core and at full core count, for both machine models.
func (s *Suite) Fig8() []ThreadProfileResult {
	cases := []struct {
		label string
		cores int
		scale float64
	}{
		{"parapluie-1core", 1, 1},
		{"parapluie-24cores", 24, 1},
		{"edel-1core", 1, edelCostFactor},
		{"edel-8cores", 8, edelCostFactor},
	}
	var out []ThreadProfileResult
	for _, cs := range cases {
		res := s.jpSweep(3, []int{cs.cores}, cs.scale)[0]
		t := newTable("Fig 8", "JPaxos leader per-thread utilization — "+cs.label)
		threadRows(t, res.LeaderThreads, res.Window)
		out = append(out, ThreadProfileResult{
			Label: cs.label, Threads: res.LeaderThreads, Window: res.Window, Report: t.String(),
		})
	}
	return out
}

// SweepResult is a generic x-vs-metrics table (Figs. 9, 10, 11).
type SweepResult struct {
	X       []float64
	Tput    []float64
	Lat     []time.Duration
	Batch   []float64
	Window  []float64
	CPU     []float64
	PktsOut []float64
	Report  string
}

// Fig9 reproduces Figure 9: throughput and leader CPU vs the number of
// ClientIO threads at full cores.
func (s *Suite) Fig9() SweepResult {
	threads := []int{1, 2, 3, 4, 6, 8, 12, 16, 20, 24}
	out := SweepResult{}
	t := newTable("Fig 9", "Varying the number of ClientIO threads (24 cores, n=3)")
	t.row("threads", "req/s", "leader CPU%")
	for _, k := range threads {
		res := simrsm.RunJPaxos(simrsm.Config{ClientIOThreads: k}, s.opts.Warmup, s.opts.Measure)
		out.X = append(out.X, float64(k))
		out.Tput = append(out.Tput, res.Throughput)
		out.CPU = append(out.CPU, res.CPUPercent[0])
		t.row(fmt.Sprintf("%7d", k), fmt.Sprintf("%8.0f", res.Throughput),
			fmt.Sprintf("%11.0f", res.CPUPercent[0]))
	}
	out.Report = t.String()
	return out
}

// Fig10 reproduces Figure 10: performance as a function of the window size
// WND (throughput, instance latency, avg batch size, avg window).
func (s *Suite) Fig10() SweepResult {
	wnds := []int{10, 15, 20, 25, 30, 35, 40, 45, 50}
	out := SweepResult{}
	t := newTable("Fig 10", "Performance vs window size WND (24 cores, n=3, BSZ=1300)")
	t.row("WND", "req/s", "latency", "avg batch", "avg window")
	for _, wnd := range wnds {
		res := simrsm.RunJPaxos(simrsm.Config{Window: wnd}, s.opts.Warmup, s.opts.Measure)
		out.X = append(out.X, float64(wnd))
		out.Tput = append(out.Tput, res.Throughput)
		out.Lat = append(out.Lat, res.InstanceLatency)
		out.Batch = append(out.Batch, res.AvgBatchReqs)
		out.Window = append(out.Window, res.AvgWindow)
		t.row(fmt.Sprintf("%3d", wnd), fmt.Sprintf("%8.0f", res.Throughput),
			fmt.Sprintf("%10v", res.InstanceLatency.Round(time.Microsecond)),
			fmt.Sprintf("%9.2f", res.AvgBatchReqs), fmt.Sprintf("%10.2f", res.AvgWindow))
	}
	out.Report = t.String()
	return out
}

// Fig11 reproduces Figure 11: performance as a function of the batch size
// BSZ at WND=35.
func (s *Suite) Fig11() SweepResult {
	bszs := []int{1300, 2600, 5200, 10400}
	out := SweepResult{}
	t := newTable("Fig 11", "Performance vs batch size BSZ (24 cores, n=3, WND=35)")
	t.row("BSZ", "req/s", "latency", "avg batch KB", "avg window")
	for _, bsz := range bszs {
		res := simrsm.RunJPaxos(simrsm.Config{Window: 35, BatchBytes: bsz}, s.opts.Warmup, s.opts.Measure)
		out.X = append(out.X, float64(bsz))
		out.Tput = append(out.Tput, res.Throughput)
		out.Lat = append(out.Lat, res.InstanceLatency)
		out.Batch = append(out.Batch, res.AvgBatchReqs)
		out.Window = append(out.Window, res.AvgWindow)
		t.row(fmt.Sprintf("%5d", bsz), fmt.Sprintf("%8.0f", res.Throughput),
			fmt.Sprintf("%10v", res.InstanceLatency.Round(time.Microsecond)),
			fmt.Sprintf("%12.2f", res.AvgBatchReqs*133.0/1024),
			fmt.Sprintf("%10.2f", res.AvgWindow))
	}
	out.Report = t.String()
	return out
}

// Fig12Result compares JPaxos and the baseline.
type Fig12Result struct {
	Cores     []int
	JPaxos    []float64
	ZooKeeper []float64
	Report    string
}

// Fig12 reproduces Figure 12: JPaxos vs ZooKeeper throughput and speedup
// with increasing cores.
func (s *Suite) Fig12() Fig12Result {
	jp := s.jpSweep(3, s.opts.Cores, 1)
	zk := s.zkSweep(s.opts.Cores)
	out := Fig12Result{Cores: s.opts.Cores}
	t := newTable("Fig 12", "JPaxos vs ZooKeeper with increasing cores (n=3)")
	t.row("cores", "jpaxos req/s", "jp speedup", "zk req/s", "zk speedup")
	for i, c := range s.opts.Cores {
		out.JPaxos = append(out.JPaxos, jp[i].Throughput)
		out.ZooKeeper = append(out.ZooKeeper, zk[i].Throughput)
		t.row(fmt.Sprintf("%5d", c),
			fmt.Sprintf("%12.0f", jp[i].Throughput),
			fmt.Sprintf("%10.2f", jp[i].Throughput/jp[0].Throughput),
			fmt.Sprintf("%8.0f", zk[i].Throughput),
			fmt.Sprintf("%10.2f", zk[i].Throughput/zk[0].Throughput))
	}
	out.Report = t.String()
	return out
}

// Fig13 reproduces Figure 13: ZooKeeper CPU usage and contention.
func (s *Suite) Fig13() UtilizationResult {
	res := s.zkSweep(s.opts.Cores)
	n := len(res[0].CPUPercent)
	cpu := make([][]float64, n)
	blk := make([][]float64, n)
	for i := range res {
		for r := range n {
			cpu[r] = append(cpu[r], res[i].CPUPercent[r])
			blk[r] = append(blk[r], res[i].BlockedPercent[r])
		}
	}
	return utilization("Fig 13",
		fmt.Sprintf("ZooKeeper CPU usage and contention (n=%d; R%d is the leader)", n, n),
		s.opts.Cores, cpu, blk)
}

// Fig14 reproduces Figure 14: the ZooKeeper leader's per-thread states at 1
// core and at full cores.
func (s *Suite) Fig14() []ThreadProfileResult {
	var out []ThreadProfileResult
	maxCores := s.opts.Cores[len(s.opts.Cores)-1]
	for _, cores := range []int{1, maxCores} {
		var res simrsm.ZKResults
		if idx := indexOf(s.opts.Cores, cores); idx >= 0 {
			res = s.zkSweep(s.opts.Cores)[idx]
		} else {
			res = simrsm.RunZK(simrsm.ZKConfig{Cores: cores}, s.opts.Warmup, s.opts.Measure)
		}
		label := fmt.Sprintf("%d-core(s)", cores)
		t := newTable("Fig 14", "ZooKeeper leader per-thread utilization — "+label)
		threadRows(t, res.LeaderThreads, res.Window)
		out = append(out, ThreadProfileResult{
			Label: label, Threads: res.LeaderThreads, Window: res.Window, Report: t.String(),
		})
	}
	return out
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

// ---------------------------------------------------------------------------
// Tables.

// TableIResult holds the internal-queue averages per WND.
type TableIResult struct {
	WND        []int
	RequestQ   []float64
	ProposalQ  []float64
	DispatchQ  []float64
	AvgBallots []float64
	Report     string
}

// TableI reproduces Table I: average internal queue sizes and parallel
// ballots for varying WND.
func (s *Suite) TableI() TableIResult {
	wnds := []int{10, 35, 40, 45, 50}
	out := TableIResult{WND: wnds}
	t := newTable("Table I", "Average internal queue sizes and parallel ballots (24 cores, n=3, BSZ=1300)")
	t.row("WND", "RequestQueue", "ProposalQueue", "DispatcherQueue", "avg ballots")
	for _, wnd := range wnds {
		res := simrsm.RunJPaxos(simrsm.Config{Window: wnd}, s.opts.Warmup, s.opts.Measure)
		out.RequestQ = append(out.RequestQ, res.QueueAvg["RequestQueue"])
		out.ProposalQ = append(out.ProposalQ, res.QueueAvg["ProposalQueue"])
		out.DispatchQ = append(out.DispatchQ, res.QueueAvg["DispatcherQueue"])
		out.AvgBallots = append(out.AvgBallots, res.AvgWindow)
		t.row(fmt.Sprintf("%3d", wnd),
			fmt.Sprintf("%12.2f", res.QueueAvg["RequestQueue"]),
			fmt.Sprintf("%13.2f", res.QueueAvg["ProposalQueue"]),
			fmt.Sprintf("%15.2f", res.QueueAvg["DispatcherQueue"]),
			fmt.Sprintf("%11.2f", res.AvgWindow))
	}
	out.Report = t.String()
	return out
}

// TableIIResult holds ping RTTs idle and under load.
type TableIIResult struct {
	Idle           time.Duration
	LeaderToAny    time.Duration
	FollowerToPeer time.Duration
	Report         string
}

// TableII reproduces Table II: ping RTTs while idle and during an
// experiment (WND=35, BSZ=1300): the leader's RTT inflates by orders of
// magnitude; follower links barely move.
func (s *Suite) TableII() TableIIResult {
	idle := simrsm.IdlePing()
	res := simrsm.RunJPaxos(simrsm.Config{Window: 35}, s.opts.Warmup, s.opts.Measure)
	out := TableIIResult{
		Idle:           idle,
		LeaderToAny:    res.PingLeaderRTT,
		FollowerToPeer: res.PingFollowerRTT,
	}
	t := newTable("Table II", "Ping RTT between nodes (WND=35, BSZ=1300, n=3)")
	t.row("idle, any<->any:        ", idle.Round(time.Microsecond).String())
	t.row("experiment, fol<->fol:  ", res.PingFollowerRTT.Round(time.Microsecond).String())
	t.row("experiment, leader<->any:", res.PingLeaderRTT.Round(time.Microsecond).String())
	out.Report = t.String()
	return out
}

// TableIIIResult holds packet/bandwidth accounting per BSZ.
type TableIIIResult struct {
	BSZ     []int
	Tput    []float64
	PktsOut []float64 // per second
	PktsIn  []float64
	MBOut   []float64 // MB/s
	MBIn    []float64
	Report  string
}

// TableIII reproduces Table III: throughput and leader network utilization
// for varying BSZ — the out-packet rate pins at the kernel's per-packet
// ceiling regardless of batch size.
func (s *Suite) TableIII() TableIIIResult {
	bszs := []int{650, 1300, 2600, 5200}
	out := TableIIIResult{BSZ: bszs}
	t := newTable("Table III", "Throughput and network utilization vs BSZ (24 cores, n=3, WND=35)")
	t.row("BSZ", "req/s", "pkts/s out", "pkts/s in", "MB/s out", "MB/s in")
	for _, bsz := range bszs {
		res := simrsm.RunJPaxos(simrsm.Config{Window: 35, BatchBytes: bsz}, s.opts.Warmup, s.opts.Measure)
		secs := res.Window.Seconds()
		pOut := float64(res.LeaderNIC.PktsOut) / secs
		pIn := float64(res.LeaderNIC.PktsIn) / secs
		mbOut := float64(res.LeaderNIC.BytesOut) / secs / 1e6
		mbIn := float64(res.LeaderNIC.BytesIn) / secs / 1e6
		out.Tput = append(out.Tput, res.Throughput)
		out.PktsOut = append(out.PktsOut, pOut)
		out.PktsIn = append(out.PktsIn, pIn)
		out.MBOut = append(out.MBOut, mbOut)
		out.MBIn = append(out.MBIn, mbIn)
		t.row(fmt.Sprintf("%5d", bsz), fmt.Sprintf("%8.0f", res.Throughput),
			fmt.Sprintf("%10.0f", pOut), fmt.Sprintf("%9.0f", pIn),
			fmt.Sprintf("%8.1f", mbOut), fmt.Sprintf("%7.1f", mbIn))
	}
	out.Report = t.String()
	return out
}

// ---------------------------------------------------------------------------
// Ablations.

// AblationResult compares two configurations.
type AblationResult struct {
	Baseline, Variant float64 // throughput
	Report            string
}

// AblationRSS reproduces footnote 5: enabling RSS/RPS (multi-queue packet
// processing) roughly doubles peak throughput.
func (s *Suite) AblationRSS() AblationResult {
	off := simrsm.RunJPaxos(simrsm.Config{Window: 35}, s.opts.Warmup, s.opts.Measure)
	on := simrsm.RunJPaxos(simrsm.Config{Window: 35, RSS: true}, s.opts.Warmup, s.opts.Measure)
	t := newTable("Ablation RSS", "Single-queue kernel vs RSS/RPS (24 cores, n=3, WND=35)")
	t.row(fmt.Sprintf("single-queue: %8.0f req/s", off.Throughput))
	t.row(fmt.Sprintf("RSS enabled:  %8.0f req/s (x%.2f)", on.Throughput, on.Throughput/off.Throughput))
	return AblationResult{Baseline: off.Throughput, Variant: on.Throughput, Report: t.String()}
}

// AblationNoBatcher removes the dedicated Batcher thread (Sec. V-C1),
// charging batch building to the Protocol thread's critical path.
func (s *Suite) AblationNoBatcher() AblationResult {
	with := simrsm.RunJPaxos(simrsm.Config{}, s.opts.Warmup, s.opts.Measure)
	without := simrsm.RunJPaxos(simrsm.Config{NoBatcher: true}, s.opts.Warmup, s.opts.Measure)
	t := newTable("Ablation Batcher", "Dedicated Batcher thread vs batching on the Protocol thread (24 cores, n=3)")
	t.row(fmt.Sprintf("with Batcher thread:    %8.0f req/s", with.Throughput))
	t.row(fmt.Sprintf("batching on Protocol:   %8.0f req/s (x%.2f)", without.Throughput, without.Throughput/with.Throughput))
	return AblationResult{Baseline: with.Throughput, Variant: without.Throughput, Report: t.String()}
}

// All runs every experiment and returns the concatenated reports in paper
// order.
func (s *Suite) All() string {
	var b strings.Builder
	b.WriteString(s.Fig1().Report)
	b.WriteString(s.Fig4().Report)
	n3, n5 := s.Fig5()
	b.WriteString(n3.Report)
	b.WriteString(n5.Report)
	b.WriteString(s.Fig6().Report)
	e3, e5 := s.Fig7()
	b.WriteString(e3.Report)
	b.WriteString(e5.Report)
	for _, p := range s.Fig8() {
		b.WriteString(p.Report)
	}
	b.WriteString(s.Fig9().Report)
	b.WriteString(s.Fig10().Report)
	b.WriteString(s.Fig11().Report)
	b.WriteString(s.Fig12().Report)
	b.WriteString(s.Fig13().Report)
	for _, p := range s.Fig14() {
		b.WriteString(p.Report)
	}
	b.WriteString(s.TableI().Report)
	b.WriteString(s.TableII().Report)
	b.WriteString(s.TableIII().Report)
	b.WriteString(s.AblationRSS().Report)
	b.WriteString(s.AblationNoBatcher().Report)
	return b.String()
}
