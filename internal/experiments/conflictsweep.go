package experiments

// Conflict-sweep experiment: the PR 7 acceptance benchmark for dependency-
// tracked execution. A workload over a pool of accounts mixes single-key
// writes with 2-key TXN transfers at a tunable multi-key fraction and runs
// on the real single-replica pipeline in two scheduler modes: "deps" (fence
// scheduling — a multi-key command occupies only the workers its keys hash
// to) and "barrier" (the pre-PR7 behavior — every multi-key command
// quiesces all workers and runs inline). Per-command cost is wall-clock
// (KV.ExecuteWait) rather than CPU spin, so worker overlap is measurable
// even on a single-core host: a sleep parallelizes across workers where a
// spin cannot, which is exactly the scheduling property under test.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"gosmr/internal/batch"
	"gosmr/internal/core"
	"gosmr/internal/executor"
	"gosmr/internal/service"
	"gosmr/internal/transport"
	"gosmr/internal/wire"
)

// ConflictSweepOptions configures the conflict sweep.
type ConflictSweepOptions struct {
	// Workers lists the executor worker counts to sweep (default 1, 8).
	// The 1-worker cell of each mode is that mode's serial baseline.
	Workers []int
	// MultiKeyPct lists the percentage of operations that are 2-key TXN
	// transfers between random accounts (default 0, 50, 100); the rest are
	// single-key writes to client-private keys.
	MultiKeyPct []int
	// Accounts is the size of the shared account pool transfers draw from
	// (default 64).
	Accounts int
	// Clients is the number of closed-loop clients (default 32).
	Clients int
	// ExecuteCost switches the per-command cost model: 0 (default) uses
	// wall-clock cost (ExecuteWait sleep — scheduling overlap visible on
	// any host, the "deps >1×" regime), > 0 uses that many CPU spin rounds
	// and no sleep (the overhead-dominated regime of BENCH_PR4, where the
	// barrier design pays its quiesce tax and measures <1×).
	ExecuteCost int
	// ExecuteWait is the per-command wall-clock cost when ExecuteCost is 0
	// (default 1ms). See the package comment: wall-clock cost makes
	// scheduling overlap visible independently of host core count.
	ExecuteWait time.Duration
	// Warmup is discarded time per cell (default 150ms); Measure is the
	// measurement window (default 300ms).
	Warmup  time.Duration
	Measure time.Duration
}

func (o ConflictSweepOptions) withDefaults() ConflictSweepOptions {
	if len(o.Workers) == 0 {
		o.Workers = []int{1, 8}
	}
	if len(o.MultiKeyPct) == 0 {
		o.MultiKeyPct = []int{0, 50, 100}
	}
	if o.Accounts <= 0 {
		o.Accounts = 64
	}
	if o.Clients <= 0 {
		o.Clients = 32
	}
	if o.ExecuteCost > 0 {
		o.ExecuteWait = 0
	} else if o.ExecuteWait <= 0 {
		o.ExecuteWait = time.Millisecond
	}
	if o.Warmup <= 0 {
		o.Warmup = 150 * time.Millisecond
	}
	if o.Measure <= 0 {
		o.Measure = 300 * time.Millisecond
	}
	return o
}

// costLabel names the active per-command cost model for reports and cells.
func (o ConflictSweepOptions) costLabel() string {
	if o.ExecuteCost > 0 {
		return fmt.Sprintf("cpu-%d", o.ExecuteCost)
	}
	return fmt.Sprintf("wait-%s", o.ExecuteWait)
}

// ConflictSweepCell is one (mode, multi-key%, workers) measurement.
type ConflictSweepCell struct {
	Mode        string // "deps" (fence scheduling) or "barrier" (pre-PR7)
	Cost        string // per-command cost model: "wait-<d>" or "cpu-<rounds>"
	MultiKeyPct int
	Workers     int
	OpsPerS     float64
	// Speedup is OpsPerS over the same mode's 1-worker cell at the same
	// multi-key fraction (0 when no 1-worker cell was swept).
	Speedup float64
	// Scheduler counter deltas over the measurement window.
	Joins, Fences, Barriers uint64
}

// ConflictSweepResult holds the sweep's cells and a rendered report.
type ConflictSweepResult struct {
	Cells  []ConflictSweepCell
	Report string
}

// Speedup returns the speedup of the (mode, pct, workers) cell (0 if absent).
func (r ConflictSweepResult) Speedup(mode string, pct, workers int) float64 {
	for _, c := range r.Cells {
		if c.Mode == mode && c.MultiKeyPct == pct && c.Workers == workers {
			return c.Speedup
		}
	}
	return 0
}

// ConflictSweep measures op throughput of the mixed single/multi-key
// workload across scheduler modes, multi-key fractions, and worker counts.
// The claim under test: with fence scheduling a transfer-heavy workload
// scales past its serial baseline because each 2-key command occupies only
// two workers, while the barrier design degrades below serial — every
// transfer stops all workers.
func ConflictSweep(opts ConflictSweepOptions) ConflictSweepResult {
	opts = opts.withDefaults()
	var out ConflictSweepResult
	t := newTable("ConflictSweep", fmt.Sprintf(
		"Op throughput vs multi-key fraction and scheduler mode (op/s; %d clients, %d accounts, cost=%s)",
		opts.Clients, opts.Accounts, opts.costLabel()))
	hdr := []string{"mode", "multikey"}
	for _, w := range opts.Workers {
		hdr = append(hdr, fmt.Sprintf("%d worker(s)", w), "speedup")
	}
	t.row(hdr...)
	for _, mode := range []string{"deps", "barrier"} {
		for _, pct := range opts.MultiKeyPct {
			var base float64
			cells := []string{fmt.Sprintf("%7s", mode), fmt.Sprintf("%7d%%", pct)}
			for _, w := range opts.Workers {
				cell := runConflictSweepCell(opts, mode, pct, w)
				if w == 1 {
					base = cell.OpsPerS
				}
				if base > 0 {
					cell.Speedup = cell.OpsPerS / base
				}
				out.Cells = append(out.Cells, cell)
				cells = append(cells, fmt.Sprintf("%9.0f", cell.OpsPerS), fmt.Sprintf("%5.2fx", cell.Speedup))
			}
			t.row(cells...)
		}
	}
	out.Report = t.String()
	return out
}

// runConflictSweepCell measures one cell on a single-replica in-process
// pipeline (ordering local, execution the bottleneck by construction).
func runConflictSweepCell(opts ConflictSweepOptions, mode string, multiKeyPct, workers int) ConflictSweepCell {
	net := transport.NewInproc(0)
	svc := service.NewKV()
	svc.ExecuteWait = opts.ExecuteWait
	svc.ExecuteCost = opts.ExecuteCost
	rep, err := core.NewReplica(core.Config{
		ID: 0, PeerAddrs: []string{"csw-peer"}, ClientAddr: "csw-client",
		Network:                 net,
		Batch:                   batch.Policy{MaxBytes: 1300, MaxDelay: time.Millisecond},
		ExecutorWorkers:         workers,
		ExecutorBarrierMultiKey: mode == "barrier",
	}, svc)
	if err != nil {
		panic(err) // static config; cannot fail
	}
	if err := rep.Start(); err != nil {
		panic(err)
	}
	defer rep.Stop()
	for deadline := time.Now().Add(5 * time.Second); !rep.IsLeader() && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}

	account := func(i int) string { return fmt.Sprintf("acct-%d", i) }
	// Seed every account richly enough that transfers never bottom out.
	seedConn, err := net.Dial("csw-client")
	if err != nil {
		panic(err)
	}
	for i := range opts.Accounts {
		req := &wire.ClientRequest{ClientID: 1, Seq: uint64(i + 1),
			Payload: service.EncodePut(account(i), service.EncodeBalance(1<<40))}
		if err := seedConn.WriteFrame(wire.Marshal(req)); err != nil {
			panic(err)
		}
		if _, err := seedConn.ReadFrame(); err != nil {
			panic(err)
		}
	}
	seedConn.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for c := range opts.Clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(13*workers + 1000*multiKeyPct + c)))
			conn, err := net.Dial("csw-client")
			if err != nil {
				return
			}
			defer conn.Close()
			for seq := uint64(1); !stop.Load(); seq++ {
				var payload []byte
				if rng.Intn(100) < multiKeyPct {
					src, dst := rng.Intn(opts.Accounts), rng.Intn(opts.Accounts)
					payload = service.EncodeTxn(account(src), account(dst), 1)
				} else {
					payload = service.EncodePut(fmt.Sprintf("c%d-k%d", c, seq%8), []byte("v"))
				}
				req := &wire.ClientRequest{ClientID: uint64(10 + c), Seq: seq, Payload: payload}
				if err := conn.WriteFrame(wire.Marshal(req)); err != nil {
					return
				}
				if _, err := conn.ReadFrame(); err != nil {
					return
				}
			}
		}()
	}
	time.Sleep(opts.Warmup)
	startExecuted := rep.Executed()
	startStats := rep.ExecStats()
	start := time.Now()
	time.Sleep(opts.Measure)
	executed := rep.Executed() - startExecuted
	endStats := rep.ExecStats()
	elapsed := time.Since(start)
	stop.Store(true)
	wg.Wait()
	return ConflictSweepCell{
		Mode:        mode,
		Cost:        opts.costLabel(),
		MultiKeyPct: multiKeyPct,
		Workers:     workers,
		OpsPerS:     float64(executed) / elapsed.Seconds(),
		Joins:       endStats.Joins - startStats.Joins,
		Fences:      endStats.Fences - startStats.Fences,
		Barriers:    endStats.Barriers - startStats.Barriers,
	}
}

// keySpansWorkers reports whether the account pool actually spreads across
// more than one worker at the given worker count — a deterministic property
// of executor.KeyHash the tests use to know joins must have occurred.
func keySpansWorkers(accounts, workers int) bool {
	if workers <= 1 {
		return false
	}
	seen := map[uint64]bool{}
	for i := range accounts {
		seen[executor.KeyHash(fmt.Sprintf("acct-%d", i))%uint64(workers)] = true
	}
	return len(seen) > 1
}
