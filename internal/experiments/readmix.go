package experiments

// Read-mix experiment: drives the real pipeline with closed-loop clients
// issuing a mix of linearizable reads and writes, and compares two read
// routings — every read at the leaseholder ("leader") vs readers pinned
// round-robin across all replicas ("spread", follower reads). Writes always
// order through the log; reads take the lease / read-index path and never
// enter the ordering pipeline.
//
// The interesting regime is a read-heavy mix on a CPU-loaded service: the
// leaseholder serves its local reads without any coordination, but every one
// of them burns leader CPU. Follower reads pay one read-index round trip to
// the leaseholder and then execute on the follower's cores, so at high read
// fractions the "spread" routing turns the two followers' otherwise idle
// service capacity into read throughput. At low read fractions (or with a
// cheap service) the extra round trip is pure overhead — which is exactly
// the trade the table makes visible.
//
// Unlike the open-loop group-scaling senders, these clients are closed-loop
// (one outstanding request each), so per-op latency is measurable: the cell
// reports p50/p99 for reads and writes separately.

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gosmr"
	"gosmr/internal/service"
	"gosmr/internal/transport"
)

// ReadMixOptions configures the read-mix sweep.
type ReadMixOptions struct {
	// ReadPct lists the read fractions to sweep, in percent of clients
	// (default 0, 50, 90, 99).
	ReadPct []int
	// Routings lists read routings to compare: "leader" sends every read to
	// the leaseholder, "spread" pins readers round-robin across all replicas
	// (default both).
	Routings []string
	// Clients is the total number of closed-loop clients (default 24). Each
	// cell splits them into readers and writers by ReadPct.
	Clients int
	// Delay is the in-process transport's one-way delivery delay (default
	// 200µs) — the cost of a follower's read-index round trip.
	Delay time.Duration
	// ExecuteCost is the KV service's per-command CPU cost knob (default
	// 3000 hash rounds): a service expensive enough that read execution,
	// not the wire, is the contended resource.
	ExecuteCost int
	// Warmup is discarded time per cell, covering leader election AND lease
	// establishment (default 300ms). Measure is the measurement window
	// (default 500ms).
	Warmup  time.Duration
	Measure time.Duration
}

func (o ReadMixOptions) withDefaults() ReadMixOptions {
	if len(o.ReadPct) == 0 {
		o.ReadPct = []int{0, 50, 90, 99}
	}
	if len(o.Routings) == 0 {
		o.Routings = []string{"leader", "spread"}
	}
	if o.Clients <= 0 {
		o.Clients = 24
	}
	if o.Delay <= 0 {
		o.Delay = 200 * time.Microsecond
	}
	if o.ExecuteCost <= 0 {
		o.ExecuteCost = 3000
	}
	if o.Warmup <= 0 {
		o.Warmup = 300 * time.Millisecond
	}
	if o.Measure <= 0 {
		o.Measure = 500 * time.Millisecond
	}
	return o
}

// ReadMixCell is one measured (read fraction, routing) configuration.
type ReadMixCell struct {
	ReadPct int
	Routing string

	ReadsPerS   float64 // completed linearizable reads per second
	WritesPerS  float64 // completed ordered writes per second
	BatchesPerS float64 // decided non-empty batches per second at the leader
	// LocalPerS is the rate of reads served on the lease / read-index path,
	// summed across replicas. Reads above this rate fell back to the
	// ordered path (lease not yet valid, leadership in flux).
	LocalPerS float64

	ReadP50, ReadP99   time.Duration
	WriteP50, WriteP99 time.Duration
}

// ReadMixResult holds the sweep in options order.
type ReadMixResult struct {
	Cells  []ReadMixCell
	Report string
}

// Cell returns the cell for (pct, routing), or a zero cell when missing.
func (r ReadMixResult) Cell(pct int, routing string) ReadMixCell {
	for _, c := range r.Cells {
		if c.ReadPct == pct && c.Routing == routing {
			return c
		}
	}
	return ReadMixCell{}
}

// ReadMix sweeps read fraction × read routing on a 3-replica in-process
// cluster with leader leases enabled and reports throughput and latency
// percentiles per operation class.
func ReadMix(opts ReadMixOptions) ReadMixResult {
	opts = opts.withDefaults()
	out := ReadMixResult{}
	t := newTable("ReadMix", fmt.Sprintf(
		"Mixed read/write workload: leader-only vs follower reads (n=3, delay=%v, %d closed-loop clients, cost=%d)",
		opts.Delay, opts.Clients, opts.ExecuteCost))
	t.row("reads", "routing", "reads/s", "writes/s", "local/s", "read p50", "read p99", "write p50", "write p99")
	for _, pct := range opts.ReadPct {
		for _, routing := range opts.Routings {
			cell := runReadMixCell(opts, pct, routing)
			out.Cells = append(out.Cells, cell)
			t.row(fmt.Sprintf("%4d%%", pct), fmt.Sprintf("%7s", routing),
				fmt.Sprintf("%8.0f", cell.ReadsPerS),
				fmt.Sprintf("%8.0f", cell.WritesPerS),
				fmt.Sprintf("%8.0f", cell.LocalPerS),
				fmtLat(cell.ReadP50), fmtLat(cell.ReadP99),
				fmtLat(cell.WriteP50), fmtLat(cell.WriteP99))
		}
	}
	t.note("reads are linearizable and never enter the ordering pipeline: leaseholder reads are local, follower reads add one read-index round trip")
	t.note("local/s counts reads served on the lease path (across all replicas); the remainder fell back to ordered execution")
	if n := runtime.NumCPU(); n == 1 {
		t.note("host has 1 CPU: spread routing can only show its overhead here — the crossover needs cores, since leader reads execute on one thread while spread reads use one thread per replica")
	} else {
		t.note("host has %d CPUs", n)
	}
	out.Report = t.String()
	return out
}

// fmtLat renders a latency with µs resolution.
func fmtLat(d time.Duration) string {
	return fmt.Sprintf("%9.2fms", float64(d.Microseconds())/1000)
}

// pctile returns the p-th percentile (nearest rank) of a sorted slice.
func pctile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(float64(len(sorted)-1)*p/100 + 0.5)
	return sorted[idx]
}

// clientStats is one client's measurement-window record.
type clientStats struct {
	lats []time.Duration
}

// runReadMixCell measures one (read fraction, routing) cell.
func runReadMixCell(opts ReadMixOptions, pct int, routing string) ReadMixCell {
	net := transport.NewInproc(0)
	net.SetDelay(opts.Delay)
	peers := []string{"rm-0", "rm-1", "rm-2"}
	addrs := []string{"rm-c0", "rm-c1", "rm-c2"}
	reps := make([]*gosmr.Replica, len(peers))
	for i := range peers {
		svc := service.NewKV()
		svc.ExecuteCost = opts.ExecuteCost
		rep, err := gosmr.NewReplica(gosmr.Config{
			ID: i, Peers: peers, ClientAddr: addrs[i],
			Network:           net,
			BatchDelay:        time.Millisecond,
			HeartbeatInterval: 10 * time.Millisecond,
			SuspectTimeout:    100 * time.Millisecond,
		}, svc)
		if err != nil {
			panic(err) // static config; cannot fail
		}
		if err := rep.Start(); err != nil {
			panic(err)
		}
		defer rep.Stop()
		reps[i] = rep
	}
	leader := reps[0]
	// Wait for an established leader AND a valid lease: reads issued before
	// the lease quorum forms just measure the ordered fallback.
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if leader.IsLeader() && leader.LeaseValid() {
			break
		}
		time.Sleep(time.Millisecond)
	}

	readers := opts.Clients * pct / 100
	if pct > 0 && readers == 0 {
		readers = 1
	}
	writers := opts.Clients - readers
	if pct < 100 && writers == 0 {
		writers = 1
		readers = opts.Clients - 1
	}

	var stop, measuring atomic.Bool
	var wg sync.WaitGroup
	dial := func(target int) *gosmr.Client {
		cli, err := gosmr.Dial(gosmr.ClientConfig{
			Addrs: addrs, Network: net,
			Timeout:        5 * time.Second,
			AttemptTimeout: 200 * time.Millisecond,
			InitialTarget:  target,
		})
		if err != nil {
			panic(err)
		}
		return cli
	}
	writeStats := make([]clientStats, writers)
	readStats := make([]clientStats, readers)
	value := make([]byte, 16)
	for w := range writers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli := dial(0) // writes order at the leader anyway; start there
			defer cli.Close()
			for seq := 0; !stop.Load(); seq++ {
				key := fmt.Sprintf("w%d-k%d", w, seq%64)
				t0 := time.Now()
				if _, err := cli.Execute(service.EncodePut(key, value)); err != nil {
					return
				}
				if measuring.Load() {
					writeStats[w].lats = append(writeStats[w].lats, time.Since(t0))
				}
			}
		}()
	}
	for k := range readers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			target := 0
			if routing == "spread" {
				target = k % len(peers)
			}
			cli := dial(target)
			defer cli.Close()
			// Read the writers' key space so gets hit live data.
			owner := 0
			if writers > 0 {
				owner = k % writers
			}
			for seq := 0; !stop.Load(); seq++ {
				key := fmt.Sprintf("w%d-k%d", owner, seq%64)
				t0 := time.Now()
				if _, err := cli.Read(service.EncodeGet(key), gosmr.ReadLinearizable); err != nil {
					return
				}
				if measuring.Load() {
					readStats[k].lats = append(readStats[k].lats, time.Since(t0))
				}
			}
		}()
	}

	time.Sleep(opts.Warmup)
	startBatches := leader.DecidedBatches()
	var startLocal uint64
	for _, rep := range reps {
		startLocal += rep.LocalReads()
	}
	start := time.Now()
	measuring.Store(true)
	time.Sleep(opts.Measure)
	measuring.Store(false)
	secs := time.Since(start).Seconds()
	batches := leader.DecidedBatches() - startBatches
	var local uint64
	for _, rep := range reps {
		local += rep.LocalReads()
	}
	local -= startLocal
	stop.Store(true)
	wg.Wait()

	var readLats, writeLats []time.Duration
	for _, s := range readStats {
		readLats = append(readLats, s.lats...)
	}
	for _, s := range writeStats {
		writeLats = append(writeLats, s.lats...)
	}
	sort.Slice(readLats, func(i, j int) bool { return readLats[i] < readLats[j] })
	sort.Slice(writeLats, func(i, j int) bool { return writeLats[i] < writeLats[j] })
	return ReadMixCell{
		ReadPct: pct, Routing: routing,
		ReadsPerS:   float64(len(readLats)) / secs,
		WritesPerS:  float64(len(writeLats)) / secs,
		BatchesPerS: float64(batches) / secs,
		LocalPerS:   float64(local) / secs,
		ReadP50:     pctile(readLats, 50), ReadP99: pctile(readLats, 99),
		WriteP50: pctile(writeLats, 50), WriteP99: pctile(writeLats, 99),
	}
}
