package experiments

// Reconfiguration experiment: a live 3→4 replica add under closed-loop write
// load, on the real pipeline. The interesting number is the cost of the
// stop-the-group handoff: committing the config command re-runs Phase 1 at
// the new epoch's BaseView in every ordering group, so in-flight instances
// stall for one round trip and throughput dips; meanwhile the joiner
// bootstraps via snapshot transfer and WAL catch-up without ever blocking the
// old quorum. The table reports write throughput before / during / after the
// add, the add's commit latency, the joiner's catch-up time, and — the
// correctness half of the story — that every write acked before or during
// the reconfiguration is present on the joiner afterwards.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gosmr"
	"gosmr/internal/service"
	"gosmr/internal/transport"
)

// ReconfigOptions configures the live-add experiment.
type ReconfigOptions struct {
	// Writers is the number of closed-loop write clients (default 8).
	Writers int
	// Phase is the measurement window for the before and after phases, and
	// the minimum width of the during window (default 700ms). The during
	// window always covers AddReplica commit + joiner catch-up in full.
	Phase time.Duration
	// Warmup is discarded time before the first phase, covering leader
	// election (default 300ms).
	Warmup time.Duration
	// SnapshotEvery forces frequent snapshots so the joiner bootstraps via
	// state transfer rather than raw log replay (default 50 batches).
	SnapshotEvery int
}

func (o ReconfigOptions) withDefaults() ReconfigOptions {
	if o.Writers <= 0 {
		o.Writers = 8
	}
	if o.Phase <= 0 {
		o.Phase = 700 * time.Millisecond
	}
	if o.Warmup <= 0 {
		o.Warmup = 300 * time.Millisecond
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 50
	}
	return o
}

// ReconfigResult holds the live-add measurement.
type ReconfigResult struct {
	BeforePerS float64 // acked writes/s, stable 3-replica cluster
	DuringPerS float64 // acked writes/s across the add + catch-up window
	AfterPerS  float64 // acked writes/s, stable 4-replica cluster
	// DipPct is the throughput drop of the during window relative to the
	// before window, in percent (negative when during was faster).
	DipPct float64

	AddCommit time.Duration // AddReplica call latency (propose → applied)
	Catchup   time.Duration // joiner Start → caught up to the add-time frontier

	AckedWrites    int64  // total writes acked across all three phases
	LostWrites     int    // acked writes missing on the joiner (must be 0)
	StateTransfers uint64 // joiner snapshot transfers (>= 1: bootstrap path)

	Report string
}

// Reconfig measures a live single-replica add on a 3-replica in-process
// cluster under closed-loop write load.
func Reconfig(opts ReconfigOptions) (ReconfigResult, error) {
	opts = opts.withDefaults()
	out := ReconfigResult{}

	net := transport.NewInproc(0)
	peers := []string{"rc-0", "rc-1", "rc-2"}
	clients := []string{"rcc-0", "rcc-1", "rcc-2"}
	cfg := func(id int) gosmr.Config {
		return gosmr.Config{
			ID: id, Peers: peers, ClientAddr: clients[id],
			PeerClientAddrs:    clients,
			Network:            net,
			SnapshotEvery:      opts.SnapshotEvery,
			SnapshotChunkBytes: 4096,
			BatchDelay:         time.Millisecond,
			HeartbeatInterval:  10 * time.Millisecond,
			SuspectTimeout:     100 * time.Millisecond,
		}
	}
	reps := make([]*gosmr.Replica, len(peers))
	for i := range peers {
		rep, err := gosmr.NewReplica(cfg(i), service.NewKV())
		if err != nil {
			return out, err
		}
		if err := rep.Start(); err != nil {
			return out, err
		}
		defer rep.Stop()
		reps[i] = rep
	}
	leader := func() *gosmr.Replica {
		for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
			for _, rep := range reps {
				if rep.IsLeader() {
					return rep
				}
			}
			time.Sleep(time.Millisecond)
		}
		return nil
	}()
	if leader == nil {
		return out, fmt.Errorf("experiments: no leader elected")
	}

	// Closed-loop writers: writer w acks keys w-0 .. w-(acked-1) strictly in
	// order, so the acked counters alone name every key that must survive.
	acked := make([]atomic.Int64, opts.Writers)
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, opts.Writers)
	value := make([]byte, 16)
	for w := range opts.Writers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := gosmr.Dial(gosmr.ClientConfig{
				Addrs: clients, Network: net,
				Timeout:        10 * time.Second,
				AttemptTimeout: 300 * time.Millisecond,
			})
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			for seq := 0; !stop.Load(); seq++ {
				key := fmt.Sprintf("w%d-%d", w, seq)
				if _, err := cli.Execute(service.EncodePut(key, value)); err != nil {
					errs <- fmt.Errorf("writer %d seq %d: %w", w, seq, err)
					return
				}
				acked[w].Add(1)
			}
		}()
	}
	total := func() int64 {
		var n int64
		for w := range acked {
			n += acked[w].Load()
		}
		return n
	}

	time.Sleep(opts.Warmup)

	// Phase 1: stable 3-replica baseline.
	c0 := total()
	t0 := time.Now()
	time.Sleep(opts.Phase)
	out.BeforePerS = float64(total()-c0) / time.Since(t0).Seconds()

	// Phase 2: the add. The during window opens just before AddReplica and
	// stays open until the joiner has caught up to the frontier the cluster
	// had when it booted (and at least one full Phase, so the rate is
	// comparable to the other windows).
	c1 := total()
	t1 := time.Now()
	addStart := time.Now()
	topo, err := leader.AddReplica("rc-3", "rcc-3")
	if err != nil {
		stop.Store(true)
		wg.Wait()
		return out, fmt.Errorf("experiments: AddReplica: %w", err)
	}
	out.AddCommit = time.Since(addStart)

	joinerSvc := service.NewKV()
	jcfg := cfg(0)
	jcfg.ID = 3
	jcfg.Peers = topo.Peers
	jcfg.ClientAddr = topo.Clients[3]
	jcfg.PeerClientAddrs = topo.Clients
	jcfg.TopologyEpoch = topo.Epoch
	jcfg.TopologyBaseView = int64(topo.BaseView)
	joiner, err := gosmr.NewReplica(jcfg, joinerSvc)
	if err != nil {
		stop.Store(true)
		wg.Wait()
		return out, err
	}
	// The joiner's catch-up frontier: writers are closed-loop and strictly
	// sequential, so "the joiner's state holds writer w's last acked key"
	// means it executed everything w had acked by that point.
	hasKey := func(w int, seq int64) bool {
		status, _ := service.DecodeReply(joinerSvc.Execute(service.EncodeGet(fmt.Sprintf("w%d-%d", w, seq))))
		return status == service.KVOK
	}
	frontier := make([]int64, opts.Writers)
	for w := range acked {
		frontier[w] = acked[w].Load()
	}
	atFrontier := func() bool {
		for w, n := range frontier {
			if n > 0 && !hasKey(w, n-1) {
				return false
			}
		}
		return true
	}
	joinStart := time.Now()
	if err := joiner.Start(); err != nil {
		stop.Store(true)
		wg.Wait()
		return out, err
	}
	defer joiner.Stop()
	for deadline := time.Now().Add(30 * time.Second); !atFrontier(); {
		if time.Now().After(deadline) {
			stop.Store(true)
			wg.Wait()
			return out, fmt.Errorf("experiments: joiner never caught up to the add-time frontier")
		}
		time.Sleep(2 * time.Millisecond)
	}
	out.Catchup = time.Since(joinStart)
	if rest := opts.Phase - time.Since(t1); rest > 0 {
		time.Sleep(rest)
	}
	out.DuringPerS = float64(total()-c1) / time.Since(t1).Seconds()
	out.StateTransfers = joiner.StateTransfers()

	// Phase 3: stable 4-replica cluster.
	c2 := total()
	t2 := time.Now()
	time.Sleep(opts.Phase)
	out.AfterPerS = float64(total()-c2) / time.Since(t2).Seconds()

	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errs:
		return out, err
	default:
	}
	out.AckedWrites = total()
	if out.BeforePerS > 0 {
		out.DipPct = (1 - out.DuringPerS/out.BeforePerS) * 100
	}

	// Zero-loss audit: let the joiner drain to each writer's final key, then
	// look up every acked key directly in its service state.
	for w := range frontier {
		frontier[w] = acked[w].Load()
	}
	for deadline := time.Now().Add(10 * time.Second); !atFrontier(); {
		if time.Now().After(deadline) {
			return out, fmt.Errorf("experiments: joiner stalled behind the final frontier after writers stopped")
		}
		time.Sleep(2 * time.Millisecond)
	}
	for w, n := range frontier {
		for seq := int64(0); seq < n; seq++ {
			if !hasKey(w, seq) {
				out.LostWrites++
			}
		}
	}

	t := newTable("Reconfig", fmt.Sprintf(
		"Live 3→4 replica add under write load (%d closed-loop writers, snapshot every %d batches)",
		opts.Writers, opts.SnapshotEvery))
	t.row("phase", "writes/s")
	t.row("before (n=3)", fmt.Sprintf("%8.0f", out.BeforePerS))
	t.row("during add  ", fmt.Sprintf("%8.0f", out.DuringPerS))
	t.row("after  (n=4)", fmt.Sprintf("%8.0f", out.AfterPerS))
	t.note("add committed in %.1fms; joiner caught up in %.1fms via %d snapshot transfer(s)",
		ms(out.AddCommit), ms(out.Catchup), out.StateTransfers)
	t.note("throughput dip during the add: %.1f%% (stop-the-group Phase-1 handoff at the new BaseView)",
		out.DipPct)
	t.note("%d acked writes audited on the joiner, %d lost", out.AckedWrites, out.LostWrites)
	out.Report = t.String()
	return out, nil
}
