package experiments

// Group-scaling experiment: drives the real goroutine pipeline (in-process
// transport) to measure how decided-batch throughput scales with the number
// of ordering (Paxos) groups. A single Protocol thread and its single
// replicated log bound a replica's ordering rate twice over: by the CPU one
// protocol thread can spend, and by the pipelining window — at most WND
// consensus instances overlap one group's round-trip. Multi-group ordering
// multiplies both limits; the deterministic merge stage recombines the
// per-group decisions into one total order, so the execution layer is
// unchanged.
//
// The harness runs a 3-replica cluster over an in-process transport with a
// configurable one-way delivery delay (modeling the network RTT that makes
// windowing matter) and sweeps groups × window × conflict rate. Small
// batches (one request per batch) keep the workload ordering-bound. At 100%
// conflict every request carries the same key, routes to one group, and the
// sibling groups only contribute merge-padding no-ops — the honest worst
// case for group partitioning.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"gosmr/internal/batch"
	"gosmr/internal/core"
	"gosmr/internal/service"
	"gosmr/internal/transport"
	"gosmr/internal/wire"
)

// GroupOptions configures the group-scaling sweep.
type GroupOptions struct {
	// Groups lists the ordering-group counts to sweep (default 1, 2, 4).
	Groups []int
	// Windows lists per-group pipelining windows WND to sweep (default
	// 2, 8: a tight window where the consensus round-trip binds a single
	// group, and a looser one where CPU starts to).
	Windows []int
	// ConflictPct lists workload conflict rates in percent: the probability
	// that a request targets the single shared hot key (routing everything
	// to one group) instead of a key private to its client (default 0, 100).
	ConflictPct []int
	// Clients is the number of open-loop sender connections (default 16).
	// Senders fire requests as fast as the replica's backpressure admits
	// and never wait for replies: the cell measures ordering capacity, not
	// request latency.
	Clients int
	// Delay is the in-process transport's one-way delivery delay, modeling
	// the network (default 2ms).
	Delay time.Duration
	// BatchBytes is the batch budget; the default 48 bytes makes every
	// request its own batch, so decided batches == ordered requests.
	BatchBytes int
	// Warmup is discarded time per cell (leader election and client
	// ramp-up; default 150ms). Measure is the measurement window per cell
	// (default 400ms).
	Warmup  time.Duration
	Measure time.Duration
}

func (o GroupOptions) withDefaults() GroupOptions {
	if len(o.Groups) == 0 {
		o.Groups = []int{1, 2, 4}
	}
	if len(o.Windows) == 0 {
		o.Windows = []int{2, 8}
	}
	if len(o.ConflictPct) == 0 {
		o.ConflictPct = []int{0, 100}
	}
	if o.Clients <= 0 {
		o.Clients = 16
	}
	if o.Delay <= 0 {
		o.Delay = 2 * time.Millisecond
	}
	if o.BatchBytes <= 0 {
		o.BatchBytes = 48
	}
	if o.Warmup <= 0 {
		o.Warmup = 150 * time.Millisecond
	}
	if o.Measure <= 0 {
		o.Measure = 400 * time.Millisecond
	}
	return o
}

// GroupCell is one measured configuration.
type GroupCell struct {
	Groups      int
	Window      int
	ConflictPct int
	Batches     float64 // decided non-empty batches per second (merged order)
	Executed    float64 // executed requests per second
	Pads        float64 // merge-padding no-ops proposed per second
}

// GroupResult holds the sweep, indexed [conflict][window][groups] in the
// order of the options slices.
type GroupResult struct {
	Groups      []int
	Windows     []int
	ConflictPct []int
	Cells       []GroupCell
	Report      string
}

// Speedup returns the decided-batch throughput of (groups, window, conflict)
// relative to the single-group cell with the same window and conflict rate,
// or 0 when either cell is missing.
func (r GroupResult) Speedup(groups, window, conflict int) float64 {
	var base, cell float64
	for _, c := range r.Cells {
		if c.Window != window || c.ConflictPct != conflict {
			continue
		}
		if c.Groups == 1 {
			base = c.Batches
		}
		if c.Groups == groups {
			cell = c.Batches
		}
	}
	if base <= 0 {
		return 0
	}
	return cell / base
}

// GroupScaling sweeps ordering-group counts against window sizes and
// workload conflict rates on a 3-replica in-process cluster and reports
// decided-batch throughput. With private keys and a tight window, a single
// group is bound by WND instances per consensus round-trip and throughput
// grows with G; at 100% conflict every request routes to one group and the
// siblings contribute only padding.
func GroupScaling(opts GroupOptions) GroupResult {
	opts = opts.withDefaults()
	out := GroupResult{Groups: opts.Groups, Windows: opts.Windows, ConflictPct: opts.ConflictPct}
	t := newTable("GroupScaling", fmt.Sprintf(
		"Decided-batch throughput vs ordering groups (batches/s; n=3, delay=%v, %d clients, 1 req/batch)",
		opts.Delay, opts.Clients))
	hdr := []string{"conflict", "WND"}
	for _, g := range opts.Groups {
		hdr = append(hdr, fmt.Sprintf("G=%d", g), "speedup", "pads/s")
	}
	t.row(hdr...)
	for _, pct := range opts.ConflictPct {
		for _, wnd := range opts.Windows {
			cells := []string{fmt.Sprintf("%7d%%", pct), fmt.Sprintf("%3d", wnd)}
			var base float64
			for _, g := range opts.Groups {
				cell := runGroupCell(opts, g, wnd, pct)
				out.Cells = append(out.Cells, cell)
				if g == opts.Groups[0] {
					base = cell.Batches
				}
				speed := 0.0
				if base > 0 {
					speed = cell.Batches / base
				}
				cells = append(cells, fmt.Sprintf("%8.0f", cell.Batches),
					fmt.Sprintf("%5.2fx", speed), fmt.Sprintf("%6.0f", cell.Pads))
			}
			t.row(cells...)
		}
	}
	t.note("speedup is vs the G=%d cell of the same row; padding no-ops are excluded from batch counts", opts.Groups[0])
	t.note("a single group is bound by WND instances per consensus round-trip; groups multiply the in-flight budget")
	out.Report = t.String()
	return out
}

// runGroupCell measures one (groups, window, conflict%) cell.
func runGroupCell(opts GroupOptions, groups, window, conflictPct int) GroupCell {
	net := transport.NewInproc(0)
	net.SetDelay(opts.Delay)
	peers := []string{"gs-0", "gs-1", "gs-2"}
	reps := make([]*core.Replica, len(peers))
	for i := range peers {
		svc := service.NewKV()
		svc.ExecuteCost = 1
		rep, err := core.NewReplica(core.Config{
			ID: i, PeerAddrs: peers, ClientAddr: fmt.Sprintf("gs-c%d", i),
			Network: net,
			Groups:  groups,
			Window:  window,
			Batch:   batch.Policy{MaxBytes: opts.BatchBytes, MaxDelay: time.Millisecond},
		}, svc)
		if err != nil {
			panic(err) // static config; cannot fail
		}
		if err := rep.Start(); err != nil {
			panic(err)
		}
		defer rep.Stop()
		reps[i] = rep
	}
	leader := reps[0]
	for deadline := time.Now().Add(5 * time.Second); !leader.IsLeader() && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}

	// Open-loop senders: write as fast as backpressure admits (full request
	// queues block the ClientIO workers, which block the connection reads),
	// never reading replies. Decided-batch throughput then measures the
	// ordering layer's capacity rather than closed-loop request latency.
	var stop atomic.Bool
	var wg sync.WaitGroup
	for c := range opts.Clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(31*groups + 17*window + 1000*conflictPct + c)))
			conn, err := net.Dial("gs-c0")
			if err != nil {
				return
			}
			defer conn.Close()
			value := []byte("gsval")
			for seq := uint64(1); !stop.Load(); seq++ {
				key := fmt.Sprintf("c%d-k%d", c, seq%64)
				if rng.Intn(100) < conflictPct {
					key = "hot"
				}
				req := &wire.ClientRequest{ClientID: uint64(1 + c), Seq: seq,
					Payload: service.EncodePut(key, value)}
				if err := conn.WriteFrame(wire.Marshal(req)); err != nil {
					return
				}
			}
		}()
	}
	time.Sleep(opts.Warmup)
	startBatches := leader.DecidedBatches()
	startExecuted := leader.Executed()
	startPads := leader.PadsProposed()
	start := time.Now()
	time.Sleep(opts.Measure)
	batches := leader.DecidedBatches() - startBatches
	executed := leader.Executed() - startExecuted
	pads := leader.PadsProposed() - startPads
	secs := time.Since(start).Seconds()
	stop.Store(true)
	wg.Wait()
	return GroupCell{
		Groups: groups, Window: window, ConflictPct: conflictPct,
		Batches:  float64(batches) / secs,
		Executed: float64(executed) / secs,
		Pads:     float64(pads) / secs,
	}
}
