package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"gosmr/internal/executor"
	"gosmr/internal/profiling"
	"gosmr/internal/wal"
	"gosmr/internal/wire"
)

// BenchJSON is the machine-readable perf snapshot gosmr-bench emits (the
// BENCH_PR4.json artifact): decided-batch throughput of the real pipeline
// plus allocs/op of the codec hot paths, so successive PRs can diff
// performance numerically instead of eyeballing reports.
type BenchJSON struct {
	Schema string `json:"schema"` // "gosmr-bench/pr10"
	// NumCPU is the host's CPU count — the read-mix routing comparison and
	// the cpu-cost conflict sweep are only meaningful relative to it
	// (worker overlap of CPU-bound commands needs cores; the wait-cost
	// sweep shows scheduling overlap regardless).
	NumCPU int `json:"num_cpu"`

	// GroupScaling: decided-batch throughput per (groups, window, conflict)
	// cell with the speedup vs the single-group cell.
	GroupScaling []GroupScalingJSON `json:"group_scaling"`

	// Durability: decided-batch throughput per WAL sync policy and the
	// group-commit ratio (batch vs none).
	Durability     []DurabilityJSON `json:"durability"`
	BatchNoneRatio float64          `json:"durability_batch_none_ratio"`

	// ReadMix: mixed read/write workload on the lease / read-index read
	// path — throughput and latency percentiles per (read fraction,
	// routing) cell, leader-only vs follower reads.
	ReadMix []ReadMixJSON `json:"read_mix"`

	// ConflictSweep: op throughput of the mixed single/multi-key transfer
	// workload per (mode, cost model, multi-key fraction, workers) cell —
	// fence scheduling ("deps") against the pre-PR7 quiesce-everything
	// design ("barrier"), with the scheduler counters that explain each
	// number. ConflictSweepNote records the host-dependent caveat.
	ConflictSweep     []ConflictSweepJSON `json:"conflict_sweep"`
	ConflictSweepNote string              `json:"conflict_sweep_note,omitempty"`

	// BigState: the chunked-snapshot tables — cut pause vs state size
	// (the PR 8 acceptance metric: near-flat cut pause while the legacy
	// serialize-under-quiesce pause grows linearly), delta bytes vs churn,
	// and transfer wall time / wire-frame ceiling per SnapshotChunkBytes.
	BigStateCut      []BigStateCutJSON      `json:"bigstate_cut_pause"`
	BigStateDelta    []BigStateDeltaJSON    `json:"bigstate_delta_bytes"`
	BigStateTransfer []BigStateTransferJSON `json:"bigstate_transfer"`

	// Reconfig: write-throughput before / during / after a live 3→4 replica
	// add (the PR 10 acceptance metric: bounded dip from the stop-the-group
	// handoff, zero acked-write loss, snapshot-transfer joiner bootstrap).
	Reconfig ReconfigJSON `json:"reconfig"`

	// AllocsPerOp: steady-state allocations per operation on the encode and
	// decode/deliver hot paths (the PR 4 acceptance metric: encode 0,
	// decode <= 2).
	AllocsPerOp map[string]float64 `json:"allocs_per_op"`
}

// ReconfigJSON is the live-add measurement. Times are milliseconds.
type ReconfigJSON struct {
	BeforeWritesPerS float64 `json:"before_writes_per_sec"`
	DuringWritesPerS float64 `json:"during_writes_per_sec"`
	AfterWritesPerS  float64 `json:"after_writes_per_sec"`
	DipPct           float64 `json:"dip_pct"`
	AddCommitMs      float64 `json:"add_commit_ms"`
	JoinerCatchupMs  float64 `json:"joiner_catchup_ms"`
	AckedWrites      int64   `json:"acked_writes"`
	LostWrites       int     `json:"lost_writes"`
	StateTransfers   uint64  `json:"joiner_state_transfers"`
}

// GroupScalingJSON is one group-scaling cell.
type GroupScalingJSON struct {
	Groups      int     `json:"groups"`
	Window      int     `json:"window"`
	ConflictPct int     `json:"conflict_pct"`
	BatchesPerS float64 `json:"decided_batches_per_sec"`
	Speedup     float64 `json:"speedup_vs_one_group"`
}

// DurabilityJSON is one durability cell.
type DurabilityJSON struct {
	Policy      string  `json:"policy"`
	BatchesPerS float64 `json:"decided_batches_per_sec"`
}

// ReadMixJSON is one read-mix cell. Latencies are milliseconds.
type ReadMixJSON struct {
	ReadPct     int     `json:"read_pct"`
	Routing     string  `json:"routing"`
	ReadsPerS   float64 `json:"reads_per_sec"`
	WritesPerS  float64 `json:"writes_per_sec"`
	LocalPerS   float64 `json:"local_reads_per_sec"`
	BatchesPerS float64 `json:"decided_batches_per_sec"`
	ReadP50Ms   float64 `json:"read_p50_ms"`
	ReadP99Ms   float64 `json:"read_p99_ms"`
	WriteP50Ms  float64 `json:"write_p50_ms"`
	WriteP99Ms  float64 `json:"write_p99_ms"`
}

// ConflictSweepJSON is one conflict-sweep cell.
type ConflictSweepJSON struct {
	Mode        string  `json:"mode"` // "deps" or "barrier"
	Cost        string  `json:"cost"` // "wait-<d>" or "cpu-<rounds>"
	MultiKeyPct int     `json:"multikey_pct"`
	Workers     int     `json:"workers"`
	OpsPerS     float64 `json:"ops_per_sec"`
	Speedup     float64 `json:"speedup_vs_serial"`
	Joins       uint64  `json:"joins"`
	Fences      uint64  `json:"fences"`
	Barriers    uint64  `json:"barriers"`
}

// BigStateCutJSON is one cut-pause row. Times are milliseconds.
type BigStateCutJSON struct {
	Keys          int     `json:"keys"`
	StateBytes    int     `json:"state_bytes"`
	LegacyPauseMs float64 `json:"legacy_pause_ms"`
	CutPauseMs    float64 `json:"cut_pause_ms"`
	DrainMs       float64 `json:"drain_ms"`
	Chunks        int     `json:"chunks"`
}

// BigStateDeltaJSON is one delta-vs-churn row.
type BigStateDeltaJSON struct {
	ChurnPct   int `json:"churn_pct"`
	FullBytes  int `json:"full_bytes"`
	DeltaBytes int `json:"delta_bytes"`
	Chunks     int `json:"chunks"`
}

// BigStateTransferJSON is one transfer-sweep row.
type BigStateTransferJSON struct {
	ChunkBytes    int     `json:"chunk_bytes"`
	ImageBytes    int     `json:"image_bytes"`
	TransferMs    float64 `json:"transfer_ms"`
	Frames        int     `json:"frames"`
	MaxFrameBytes int     `json:"max_frame_bytes"`
}

// ms converts a duration to float milliseconds for the JSON payload.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// allocsPerOp measures steady-state heap allocations of one call to f
// (testing.AllocsPerRun without importing testing into the binary).
func allocsPerOp(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm pools and scratch capacity
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for range runs {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// codecAllocs probes the wire codec's hot paths.
func codecAllocs() map[string]float64 {
	out := map[string]float64{}
	propose := &wire.Propose{View: 3, ID: 42, DecidedUpTo: 41, Value: make([]byte, 1300)}
	grouped := &wire.GroupMsg{Group: 2, Msg: propose}
	reqs := []*wire.ClientRequest{
		{ClientID: 1, Seq: 1, Payload: make([]byte, 128)},
		{ClientID: 2, Seq: 7, Payload: make([]byte, 128)},
	}
	buf := make([]byte, 0, 4096)
	out["encode_propose"] = allocsPerOp(200, func() { buf = wire.AppendMessage(buf[:0], propose) })
	out["encode_groupmsg_propose"] = allocsPerOp(200, func() { buf = wire.AppendMessage(buf[:0], grouped) })
	out["encode_batch"] = allocsPerOp(200, func() { buf = wire.AppendBatch(buf[:0], reqs) })

	proposeFrame := wire.Marshal(propose)
	acceptFrame := wire.Marshal(&wire.Accept{View: 3, ID: 42})
	batchValue := wire.EncodeBatch(reqs)
	out["decode_propose_release"] = allocsPerOp(200, func() {
		m, err := wire.Unmarshal(proposeFrame)
		if err != nil {
			panic(err)
		}
		wire.Release(m)
	})
	out["decode_accept_release"] = allocsPerOp(200, func() {
		m, err := wire.Unmarshal(acceptFrame)
		if err != nil {
			panic(err)
		}
		wire.Release(m)
	})
	var scratch []*wire.ClientRequest
	out["decode_batch_into_release"] = allocsPerOp(200, func() {
		var err error
		scratch, err = wire.DecodeBatchInto(scratch, batchValue)
		if err != nil {
			panic(err)
		}
		for _, r := range scratch {
			wire.Release(r)
		}
	})
	return out
}

// walAppendAllocs probes the WAL's append hot path (pending-buffer double
// buffering): steady-state appends should not allocate.
func walAppendAllocs() (float64, error) {
	dir, err := os.MkdirTemp("", "gosmr-bench-wal")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	w, _, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncNone})
	if err != nil {
		return 0, err
	}
	defer w.Close()
	rec := wal.Record{Type: wal.RecAccept, ID: 1, View: 1, Value: make([]byte, 1300)}
	// Warm until the pending buffer has grown to its steady size.
	for range 64 {
		w.Append(rec)
	}
	w.Sync()
	i := 0
	got := allocsPerOp(200, func() {
		rec.ID = wire.InstanceID(i)
		i++
		w.Append(rec)
		if i%16 == 0 {
			w.Sync() // drain so the buffer cycles like under the real Syncer
		}
	})
	return got, nil
}

// executorSubmitAllocs probes the dependency scheduler's hot path:
// steady-state multi-key Submits — join node from the pool, one fence per
// involved worker, by-value queue items — should allocate (near) nothing.
func executorSubmitAllocs() float64 {
	names := []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"}
	scratch := make([]string, 2)
	keysFn := func(req []byte) []string {
		scratch[0] = names[req[0]%8]
		scratch[1] = names[req[1]%8]
		return scratch
	}
	e := executor.New(executor.Config{Workers: 8, QueueCap: 1024, Keys: keysFn})
	e.Start()
	defer e.Stop()
	task := func(*profiling.Thread) {}
	req := []byte{0, 0}
	i := byte(0)
	return allocsPerOp(100, func() {
		for range 16 {
			req[0], req[1] = i, i+3
			i++
			e.Submit(nil, req, task)
		}
		e.Quiesce(nil) // drain so queues never fill and joins recycle
	}) / 16
}

// BenchSnapshot runs the perf suite — group-scaling, durability, read-mix,
// conflict and reconfiguration sweeps on the real pipeline plus the
// codec/WAL/executor alloc probes — and returns the JSON payload. The conflict sweep runs
// twice, once per cost model (wall-clock wait and CPU spin); the returned
// ConflictSweepResult holds both runs' cells, told apart by their Cost.
func BenchSnapshot(gOpts GroupOptions, dOpts DurabilityOptions, rmOpts ReadMixOptions, csOpts ConflictSweepOptions, bsOpts BigStateOptions, rcOpts ReconfigOptions) (BenchJSON, GroupResult, DurabilityResult, ReadMixResult, ConflictSweepResult, BigStateResult, ReconfigResult, error) {
	out := BenchJSON{Schema: "gosmr-bench/pr10", NumCPU: runtime.NumCPU(), AllocsPerOp: codecAllocs()}
	if wa, err := walAppendAllocs(); err == nil {
		out.AllocsPerOp["wal_append"] = wa
	}
	out.AllocsPerOp["executor_submit_multikey"] = executorSubmitAllocs()

	// Conflict sweep, both cost models. On a single-core host the cpu-cost
	// cells cannot exceed 1× for ANY scheduler (no parallelism to buy) and
	// mostly measure scheduling overhead; the wait-cost cells show worker
	// overlap regardless of core count. Record the caveat in the payload so
	// a reader of the committed numbers doesn't need this comment.
	csWait := ConflictSweep(csOpts)
	cpuOpts := csOpts
	cpuOpts.ExecuteCost = 2000
	cpuOpts.ExecuteWait = 0
	csCPU := ConflictSweep(cpuOpts)
	cs := ConflictSweepResult{
		Cells:  append(append([]ConflictSweepCell{}, csWait.Cells...), csCPU.Cells...),
		Report: csWait.Report + csCPU.Report,
	}
	for _, c := range cs.Cells {
		out.ConflictSweep = append(out.ConflictSweep, ConflictSweepJSON{
			Mode:        c.Mode,
			Cost:        c.Cost,
			MultiKeyPct: c.MultiKeyPct,
			Workers:     c.Workers,
			OpsPerS:     c.OpsPerS,
			Speedup:     c.Speedup,
			Joins:       c.Joins,
			Fences:      c.Fences,
			Barriers:    c.Barriers,
		})
	}
	out.ConflictSweepNote = fmt.Sprintf(
		"wait-cost cells measure scheduling overlap (valid on any host); cpu-cost cells need cores (num_cpu=%d here) and mostly compare scheduler overhead below that",
		runtime.NumCPU())

	gr := GroupScaling(gOpts)
	for _, c := range gr.Cells {
		out.GroupScaling = append(out.GroupScaling, GroupScalingJSON{
			Groups:      c.Groups,
			Window:      c.Window,
			ConflictPct: c.ConflictPct,
			BatchesPerS: c.Batches,
			Speedup:     gr.Speedup(c.Groups, c.Window, c.ConflictPct),
		})
	}

	if dOpts.Dir == "" {
		dir, err := os.MkdirTemp("", "gosmr-bench-durability")
		if err != nil {
			return out, gr, DurabilityResult{}, ReadMixResult{}, cs, BigStateResult{}, ReconfigResult{}, err
		}
		defer os.RemoveAll(dir)
		dOpts.Dir = dir
	}
	dr, err := DurabilitySmoke(dOpts)
	if err != nil {
		return out, gr, dr, ReadMixResult{}, cs, BigStateResult{}, ReconfigResult{}, err
	}
	for _, c := range dr.Cells {
		out.Durability = append(out.Durability, DurabilityJSON{
			Policy:      c.Policy.String(),
			BatchesPerS: c.Batches,
		})
	}
	out.BatchNoneRatio = dr.Ratio(wal.SyncBatch)

	rm := ReadMix(rmOpts)
	for _, c := range rm.Cells {
		out.ReadMix = append(out.ReadMix, ReadMixJSON{
			ReadPct:     c.ReadPct,
			Routing:     c.Routing,
			ReadsPerS:   c.ReadsPerS,
			WritesPerS:  c.WritesPerS,
			LocalPerS:   c.LocalPerS,
			BatchesPerS: c.BatchesPerS,
			ReadP50Ms:   ms(c.ReadP50),
			ReadP99Ms:   ms(c.ReadP99),
			WriteP50Ms:  ms(c.WriteP50),
			WriteP99Ms:  ms(c.WriteP99),
		})
	}

	bs, err := BigState(bsOpts)
	if err != nil {
		return out, gr, dr, rm, cs, bs, ReconfigResult{}, err
	}
	for _, c := range bs.CutCells {
		out.BigStateCut = append(out.BigStateCut, BigStateCutJSON{
			Keys:          c.Keys,
			StateBytes:    c.StateBytes,
			LegacyPauseMs: ms(c.LegacyPause),
			CutPauseMs:    ms(c.CutPause),
			DrainMs:       ms(c.Drain),
			Chunks:        c.Chunks,
		})
	}
	for _, c := range bs.DeltaCells {
		out.BigStateDelta = append(out.BigStateDelta, BigStateDeltaJSON{
			ChurnPct:   c.ChurnPct,
			FullBytes:  c.FullBytes,
			DeltaBytes: c.DeltaBytes,
			Chunks:     c.Chunks,
		})
	}
	for _, c := range bs.TransferCells {
		out.BigStateTransfer = append(out.BigStateTransfer, BigStateTransferJSON{
			ChunkBytes:    c.ChunkBytes,
			ImageBytes:    c.ImageBytes,
			TransferMs:    ms(c.Transfer),
			Frames:        c.Frames,
			MaxFrameBytes: c.MaxFrameBytes,
		})
	}
	rc, err := Reconfig(rcOpts)
	if err != nil {
		return out, gr, dr, rm, cs, bs, rc, err
	}
	out.Reconfig = ReconfigJSON{
		BeforeWritesPerS: rc.BeforePerS,
		DuringWritesPerS: rc.DuringPerS,
		AfterWritesPerS:  rc.AfterPerS,
		DipPct:           rc.DipPct,
		AddCommitMs:      ms(rc.AddCommit),
		JoinerCatchupMs:  ms(rc.Catchup),
		AckedWrites:      rc.AckedWrites,
		LostWrites:       rc.LostWrites,
		StateTransfers:   rc.StateTransfers,
	}
	return out, gr, dr, rm, cs, bs, rc, nil
}

// WriteBenchJSON writes the snapshot to path (indented, trailing newline).
func WriteBenchJSON(path string, r BenchJSON) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("experiments: marshal bench json: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
