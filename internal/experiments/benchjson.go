package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"gosmr/internal/wal"
	"gosmr/internal/wire"
)

// BenchJSON is the machine-readable perf snapshot gosmr-bench emits (the
// BENCH_PR4.json artifact): decided-batch throughput of the real pipeline
// plus allocs/op of the codec hot paths, so successive PRs can diff
// performance numerically instead of eyeballing reports.
type BenchJSON struct {
	Schema string `json:"schema"` // "gosmr-bench/pr6"
	// NumCPU is the host's CPU count — the read-mix routing comparison is
	// only meaningful relative to it (follower reads buy parallelism).
	NumCPU int `json:"num_cpu"`

	// GroupScaling: decided-batch throughput per (groups, window, conflict)
	// cell with the speedup vs the single-group cell.
	GroupScaling []GroupScalingJSON `json:"group_scaling"`

	// Durability: decided-batch throughput per WAL sync policy and the
	// group-commit ratio (batch vs none).
	Durability     []DurabilityJSON `json:"durability"`
	BatchNoneRatio float64          `json:"durability_batch_none_ratio"`

	// ReadMix: mixed read/write workload on the lease / read-index read
	// path — throughput and latency percentiles per (read fraction,
	// routing) cell, leader-only vs follower reads.
	ReadMix []ReadMixJSON `json:"read_mix"`

	// AllocsPerOp: steady-state allocations per operation on the encode and
	// decode/deliver hot paths (the PR 4 acceptance metric: encode 0,
	// decode <= 2).
	AllocsPerOp map[string]float64 `json:"allocs_per_op"`
}

// GroupScalingJSON is one group-scaling cell.
type GroupScalingJSON struct {
	Groups      int     `json:"groups"`
	Window      int     `json:"window"`
	ConflictPct int     `json:"conflict_pct"`
	BatchesPerS float64 `json:"decided_batches_per_sec"`
	Speedup     float64 `json:"speedup_vs_one_group"`
}

// DurabilityJSON is one durability cell.
type DurabilityJSON struct {
	Policy      string  `json:"policy"`
	BatchesPerS float64 `json:"decided_batches_per_sec"`
}

// ReadMixJSON is one read-mix cell. Latencies are milliseconds.
type ReadMixJSON struct {
	ReadPct     int     `json:"read_pct"`
	Routing     string  `json:"routing"`
	ReadsPerS   float64 `json:"reads_per_sec"`
	WritesPerS  float64 `json:"writes_per_sec"`
	LocalPerS   float64 `json:"local_reads_per_sec"`
	BatchesPerS float64 `json:"decided_batches_per_sec"`
	ReadP50Ms   float64 `json:"read_p50_ms"`
	ReadP99Ms   float64 `json:"read_p99_ms"`
	WriteP50Ms  float64 `json:"write_p50_ms"`
	WriteP99Ms  float64 `json:"write_p99_ms"`
}

// ms converts a duration to float milliseconds for the JSON payload.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// allocsPerOp measures steady-state heap allocations of one call to f
// (testing.AllocsPerRun without importing testing into the binary).
func allocsPerOp(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm pools and scratch capacity
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for range runs {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// codecAllocs probes the wire codec's hot paths.
func codecAllocs() map[string]float64 {
	out := map[string]float64{}
	propose := &wire.Propose{View: 3, ID: 42, DecidedUpTo: 41, Value: make([]byte, 1300)}
	grouped := &wire.GroupMsg{Group: 2, Msg: propose}
	reqs := []*wire.ClientRequest{
		{ClientID: 1, Seq: 1, Payload: make([]byte, 128)},
		{ClientID: 2, Seq: 7, Payload: make([]byte, 128)},
	}
	buf := make([]byte, 0, 4096)
	out["encode_propose"] = allocsPerOp(200, func() { buf = wire.AppendMessage(buf[:0], propose) })
	out["encode_groupmsg_propose"] = allocsPerOp(200, func() { buf = wire.AppendMessage(buf[:0], grouped) })
	out["encode_batch"] = allocsPerOp(200, func() { buf = wire.AppendBatch(buf[:0], reqs) })

	proposeFrame := wire.Marshal(propose)
	acceptFrame := wire.Marshal(&wire.Accept{View: 3, ID: 42})
	batchValue := wire.EncodeBatch(reqs)
	out["decode_propose_release"] = allocsPerOp(200, func() {
		m, err := wire.Unmarshal(proposeFrame)
		if err != nil {
			panic(err)
		}
		wire.Release(m)
	})
	out["decode_accept_release"] = allocsPerOp(200, func() {
		m, err := wire.Unmarshal(acceptFrame)
		if err != nil {
			panic(err)
		}
		wire.Release(m)
	})
	var scratch []*wire.ClientRequest
	out["decode_batch_into_release"] = allocsPerOp(200, func() {
		var err error
		scratch, err = wire.DecodeBatchInto(scratch, batchValue)
		if err != nil {
			panic(err)
		}
		for _, r := range scratch {
			wire.Release(r)
		}
	})
	return out
}

// walAppendAllocs probes the WAL's append hot path (pending-buffer double
// buffering): steady-state appends should not allocate.
func walAppendAllocs() (float64, error) {
	dir, err := os.MkdirTemp("", "gosmr-bench-wal")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	w, _, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncNone})
	if err != nil {
		return 0, err
	}
	defer w.Close()
	rec := wal.Record{Type: wal.RecAccept, ID: 1, View: 1, Value: make([]byte, 1300)}
	// Warm until the pending buffer has grown to its steady size.
	for range 64 {
		w.Append(rec)
	}
	w.Sync()
	i := 0
	got := allocsPerOp(200, func() {
		rec.ID = wire.InstanceID(i)
		i++
		w.Append(rec)
		if i%16 == 0 {
			w.Sync() // drain so the buffer cycles like under the real Syncer
		}
	})
	return got, nil
}

// BenchSnapshot runs the perf suite — group-scaling, durability and
// read-mix sweeps on the real pipeline plus the codec/WAL alloc probes —
// and returns the JSON payload.
func BenchSnapshot(gOpts GroupOptions, dOpts DurabilityOptions, rmOpts ReadMixOptions) (BenchJSON, GroupResult, DurabilityResult, ReadMixResult, error) {
	out := BenchJSON{Schema: "gosmr-bench/pr6", NumCPU: runtime.NumCPU(), AllocsPerOp: codecAllocs()}
	if wa, err := walAppendAllocs(); err == nil {
		out.AllocsPerOp["wal_append"] = wa
	}

	gr := GroupScaling(gOpts)
	for _, c := range gr.Cells {
		out.GroupScaling = append(out.GroupScaling, GroupScalingJSON{
			Groups:      c.Groups,
			Window:      c.Window,
			ConflictPct: c.ConflictPct,
			BatchesPerS: c.Batches,
			Speedup:     gr.Speedup(c.Groups, c.Window, c.ConflictPct),
		})
	}

	if dOpts.Dir == "" {
		dir, err := os.MkdirTemp("", "gosmr-bench-durability")
		if err != nil {
			return out, gr, DurabilityResult{}, ReadMixResult{}, err
		}
		defer os.RemoveAll(dir)
		dOpts.Dir = dir
	}
	dr, err := DurabilitySmoke(dOpts)
	if err != nil {
		return out, gr, dr, ReadMixResult{}, err
	}
	for _, c := range dr.Cells {
		out.Durability = append(out.Durability, DurabilityJSON{
			Policy:      c.Policy.String(),
			BatchesPerS: c.Batches,
		})
	}
	out.BatchNoneRatio = dr.Ratio(wal.SyncBatch)

	rm := ReadMix(rmOpts)
	for _, c := range rm.Cells {
		out.ReadMix = append(out.ReadMix, ReadMixJSON{
			ReadPct:     c.ReadPct,
			Routing:     c.Routing,
			ReadsPerS:   c.ReadsPerS,
			WritesPerS:  c.WritesPerS,
			LocalPerS:   c.LocalPerS,
			BatchesPerS: c.BatchesPerS,
			ReadP50Ms:   ms(c.ReadP50),
			ReadP99Ms:   ms(c.ReadP99),
			WriteP50Ms:  ms(c.WriteP50),
			WriteP99Ms:  ms(c.WriteP99),
		})
	}
	return out, gr, dr, rm, nil
}

// WriteBenchJSON writes the snapshot to path (indented, trailing newline).
func WriteBenchJSON(path string, r BenchJSON) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("experiments: marshal bench json: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
