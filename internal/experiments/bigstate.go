package experiments

// Big-state snapshot experiment: measures what the chunked snapshot
// contract (snapshot.Cutter) buys over the old all-at-once Snapshot()
// blob, in three tables:
//
//  1. Cut pause vs state size. The old contract serialized the whole state
//     under quiesce, so the execution pause grew linearly with state size.
//     The cutter only marks the cut (collect the key list, install the
//     copy-on-write overlay) and serialization happens in the background
//     drain — the pause should stay near-flat while the legacy pause and
//     the drain itself keep growing with the state.
//
//  2. Delta bytes vs churn. With per-key dirty tracking, a steady-state
//     snapshot writes only the keys mutated since the previous cut: bytes
//     per snapshot should scale with the churn rate, not with total state.
//
//  3. Transfer time vs frame-size ceiling. State transfer moves the
//     assembled snapshot as offset-addressed SnapshotChunk frames; the
//     sweep bootstraps a lagging replica through a real in-process cluster
//     at several SnapshotChunkBytes ceilings and records the wall time and
//     the largest frame observed on the wire (which must respect the
//     ceiling regardless of state size).
import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gosmr"
	"gosmr/internal/service"
	"gosmr/internal/snapshot"
	"gosmr/internal/transport"
	"gosmr/internal/wire"
)

// BigStateOptions configures the big-state snapshot experiment.
type BigStateOptions struct {
	// StateKeys lists the state sizes (keys) for the cut-pause sweep
	// (default 10000, 40000, 160000).
	StateKeys []int
	// ValueBytes is the value size for every populated key (default 128).
	ValueBytes int
	// ChunkBytes caps drained chunks in the pause and delta measurements
	// (default 256 KiB — the replica default).
	ChunkBytes int
	// DeltaKeys is the state size for the delta-vs-churn table (default
	// 50000). ChurnPct lists the churn levels (default 1, 10).
	DeltaKeys int
	ChurnPct  []int
	// TransferKeys is the state size a lagging replica must fetch in the
	// transfer sweep (default 1500); TransferChunkBytes lists the frame
	// ceilings to sweep (default 16 KiB, 64 KiB, 256 KiB).
	// TransferValueBytes (default 1200) is deliberately around one batch
	// budget: each commit becomes its own instance, so the load overflows
	// the donors' SendQueue backlog and outruns their truncated logs —
	// the rejoining replica can only bootstrap via a state transfer.
	TransferKeys       int
	TransferValueBytes int
	TransferChunkBytes []int
}

func (o *BigStateOptions) defaults() {
	if len(o.StateKeys) == 0 {
		o.StateKeys = []int{10000, 40000, 160000}
	}
	if o.ValueBytes <= 0 {
		o.ValueBytes = 128
	}
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = 256 << 10
	}
	if o.DeltaKeys <= 0 {
		o.DeltaKeys = 50000
	}
	if len(o.ChurnPct) == 0 {
		o.ChurnPct = []int{1, 10}
	}
	if o.TransferKeys <= 0 {
		o.TransferKeys = 1500
	}
	if o.TransferValueBytes <= 0 {
		o.TransferValueBytes = 1200
	}
	if len(o.TransferChunkBytes) == 0 {
		o.TransferChunkBytes = []int{16 << 10, 64 << 10, 256 << 10}
	}
}

// BigStateCutCell is one row of the cut-pause table.
type BigStateCutCell struct {
	Keys        int
	StateBytes  int           // serialized full-state size
	LegacyPause time.Duration // Snapshot(): full serialization under quiesce
	CutPause    time.Duration // CutSnapshot(full): mark only
	Drain       time.Duration // background chunk drain (off the pause path)
	Chunks      int
}

// BigStateDeltaCell is one row of the delta-vs-churn table.
type BigStateDeltaCell struct {
	ChurnPct   int
	FullBytes  int // bytes of a full generation of the same state
	DeltaBytes int // bytes the delta cut actually wrote
	Chunks     int
}

// BigStateTransferCell is one row of the transfer sweep.
type BigStateTransferCell struct {
	ChunkBytes    int
	ImageBytes    int // assembled transfer image the victim had to fetch
	Transfer      time.Duration
	Frames        int // SnapshotChunk frames observed on the wire
	MaxFrameBytes int // largest such frame (must respect the ceiling)
}

// BigStateResult is the experiment's full output.
type BigStateResult struct {
	CutCells      []BigStateCutCell
	DeltaCells    []BigStateDeltaCell
	TransferCells []BigStateTransferCell
	Report        string
}

// populateKV builds a KV with keys entries of valueBytes each, driving
// Execute so dirty tracking sees the writes like real traffic would.
func populateKV(keys, valueBytes int) *service.KV {
	kv := service.NewKV()
	val := make([]byte, valueBytes)
	for i := range keys {
		kv.Execute(service.EncodePut(fmt.Sprintf("key-%07d", i), val))
	}
	return kv
}

// BigState runs the big-state snapshot experiment.
func BigState(opts BigStateOptions) (BigStateResult, error) {
	opts.defaults()
	var res BigStateResult
	var b strings.Builder

	// --- 1. Cut pause vs state size -----------------------------------
	fmt.Fprintf(&b, "\nBig-state snapshots: cut pause vs state size (value %d B, chunk cap %d B)\n", opts.ValueBytes, opts.ChunkBytes)
	fmt.Fprintf(&b, "%10s %12s %14s %14s %12s %8s\n", "keys", "state", "legacy-pause", "cut-pause", "drain", "chunks")
	for _, keys := range opts.StateKeys {
		kv := populateKV(keys, opts.ValueBytes)

		t0 := time.Now()
		blob, err := kv.Snapshot()
		if err != nil {
			return res, err
		}
		legacy := time.Since(t0)

		t0 = time.Now()
		src, full, err := kv.CutSnapshot(true)
		if err != nil {
			return res, err
		}
		pause := time.Since(t0)
		if !full {
			src.Close()
			return res, fmt.Errorf("bigstate: full cut demoted to delta")
		}
		t0 = time.Now()
		chunks, err := snapshot.Drain(src, opts.ChunkBytes)
		if err != nil {
			return res, err
		}
		drain := time.Since(t0)

		cell := BigStateCutCell{
			Keys: keys, StateBytes: len(blob),
			LegacyPause: legacy, CutPause: pause, Drain: drain, Chunks: len(chunks),
		}
		res.CutCells = append(res.CutCells, cell)
		fmt.Fprintf(&b, "%10d %11dK %14s %14s %12s %8d\n",
			keys, len(blob)/1024, legacy.Round(time.Microsecond), pause.Round(time.Microsecond),
			drain.Round(time.Microsecond), len(chunks))
	}
	if n := len(res.CutCells); n >= 2 {
		first, last := res.CutCells[0], res.CutCells[n-1]
		fmt.Fprintf(&b, "  %dx state -> legacy pause %.1fx, cut pause %.1fx (drain absorbs the growth off the pause path)\n",
			last.Keys/first.Keys,
			float64(last.LegacyPause)/float64(first.LegacyPause),
			float64(last.CutPause)/float64(first.CutPause))
	}

	// --- 2. Delta bytes vs churn --------------------------------------
	kv := populateKV(opts.DeltaKeys, opts.ValueBytes)
	src, _, err := kv.CutSnapshot(true)
	if err != nil {
		return res, err
	}
	fullChunks, err := snapshot.Drain(src, opts.ChunkBytes)
	if err != nil {
		return res, err
	}
	fullBytes := snapshot.Gen{Chunks: fullChunks}.Bytes()
	fmt.Fprintf(&b, "\nDelta generations: bytes per snapshot vs churn (%d keys, full generation %d KiB)\n",
		opts.DeltaKeys, fullBytes/1024)
	fmt.Fprintf(&b, "%10s %12s %12s %10s\n", "churn", "delta", "vs full", "chunks")
	val := make([]byte, opts.ValueBytes)
	for _, churn := range opts.ChurnPct {
		n := opts.DeltaKeys * churn / 100
		for i := range n {
			// Spread rewrites across the keyspace.
			kv.Execute(service.EncodePut(fmt.Sprintf("key-%07d", (i*97)%opts.DeltaKeys), val))
		}
		src, full, err := kv.CutSnapshot(false)
		if err != nil {
			return res, err
		}
		if full {
			src.Close()
			return res, fmt.Errorf("bigstate: delta cut promoted to full")
		}
		chunks, err := snapshot.Drain(src, opts.ChunkBytes)
		if err != nil {
			return res, err
		}
		deltaBytes := snapshot.Gen{Chunks: chunks}.Bytes()
		cell := BigStateDeltaCell{ChurnPct: churn, FullBytes: fullBytes, DeltaBytes: deltaBytes, Chunks: len(chunks)}
		res.DeltaCells = append(res.DeltaCells, cell)
		fmt.Fprintf(&b, "%9d%% %11dK %11.1f%% %10d\n",
			churn, deltaBytes/1024, 100*float64(deltaBytes)/float64(fullBytes), len(chunks))
	}

	// --- 3. Transfer time vs frame ceiling ----------------------------
	fmt.Fprintf(&b, "\nChunked state transfer: bootstrap a lagging replica (%d keys x %d B) per frame ceiling\n",
		opts.TransferKeys, opts.TransferValueBytes)
	fmt.Fprintf(&b, "%12s %12s %12s %8s %12s\n", "frame-cap", "image", "transfer", "frames", "max-frame")
	for _, chunkBytes := range opts.TransferChunkBytes {
		cell, err := bigStateTransfer(opts, chunkBytes)
		if err != nil {
			return res, err
		}
		res.TransferCells = append(res.TransferCells, cell)
		fmt.Fprintf(&b, "%11dK %11dK %12s %8d %11dB\n",
			cell.ChunkBytes/1024, cell.ImageBytes/1024, cell.Transfer.Round(time.Millisecond),
			cell.Frames, cell.MaxFrameBytes)
	}

	res.Report = b.String()
	return res, nil
}

// bigStateTransfer boots a 3-replica cluster but starves the third of every
// payload frame (heartbeats still flow, so it stays connected and nothing
// backs up in the donors\' per-peer send queues) while the load runs and the
// donors\' aggressive snapshot cadence truncates their logs. Healing the
// partition then leaves the victim no path back but a chunked state
// transfer. Returns the wall time from heal to convergence and the
// wire-frame statistics of the transfer.
func bigStateTransfer(opts BigStateOptions, chunkBytes int) (BigStateTransferCell, error) {
	cell := BigStateTransferCell{ChunkBytes: chunkBytes}
	net := transport.NewInproc(0)
	var mu sync.Mutex
	frames, maxFrame := 0, 0
	var starve atomic.Bool
	starve.Store(true)
	net.SetFault(func(from, to string, frame []byte) (bool, bool) {
		if len(frame) == 0 {
			return false, false
		}
		switch wire.MsgType(frame[0]) {
		case wire.TSnapshotChunk:
			mu.Lock()
			frames++
			if len(frame) > maxFrame {
				maxFrame = len(frame)
			}
			mu.Unlock()
		case wire.THello, wire.THeartbeat, wire.TLeaseAck:
			return false, false
		}
		if starve.Load() && to == "bst-r2" {
			return true, false
		}
		return false, false
	})
	peers := []string{"bst-r0", "bst-r1", "bst-r2"}
	mk := func(i int) (*gosmr.Replica, *service.KV, error) {
		kv := service.NewKV()
		rep, err := gosmr.NewReplica(gosmr.Config{
			ID: i, Peers: peers, ClientAddr: fmt.Sprintf("bst-c%d", i),
			Network:            net.As(peers[i]),
			SnapshotEvery:      200,
			SnapshotChunkBytes: chunkBytes,
			BatchDelay:         time.Millisecond,
			HeartbeatInterval:  20 * time.Millisecond,
			SuspectTimeout:     400 * time.Millisecond,
		}, kv)
		if err != nil {
			return nil, nil, err
		}
		return rep, kv, rep.Start()
	}
	reps := make([]*gosmr.Replica, 3)
	kvs := make([]*service.KV, 3)
	defer func() {
		for _, r := range reps {
			if r != nil {
				r.Stop()
			}
		}
	}()
	for i := range 3 { // the third is up but starved of payload frames
		rep, kv, err := mk(i)
		if err != nil {
			return cell, err
		}
		reps[i], kvs[i] = rep, kv
	}

	// Load the state through real clients.
	const loaders = 8
	per := opts.TransferKeys / loaders
	val := make([]byte, opts.TransferValueBytes)
	errs := make(chan error, loaders)
	var wg sync.WaitGroup
	for l := range loaders {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			cli, err := gosmr.Dial(gosmr.ClientConfig{
				Addrs: []string{"bst-c0", "bst-c1"}, Network: net,
				Timeout: 30 * time.Second, AttemptTimeout: 500 * time.Millisecond,
			})
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			for i := range per {
				if _, err := cli.Execute(service.EncodePut(fmt.Sprintf("key-%07d", l*per+i), val)); err != nil {
					errs <- err
					return
				}
			}
		}(l)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return cell, err
	}

	// Heal the partition and time the victim\'s convergence; with the
	// donors truncated the bulk of this is the chunked pull itself.
	want, err := kvs[0].Snapshot()
	if err != nil {
		return cell, err
	}
	cell.ImageBytes = len(reps[0].SnapshotImage())
	rep2, kv2 := reps[2], kvs[2]
	starve.Store(false)
	t0 := time.Now()
	deadline := t0.Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if got, err := kv2.Snapshot(); err == nil && string(got) == string(want) {
			cell.Transfer = time.Since(t0)
			mu.Lock()
			cell.Frames, cell.MaxFrameBytes = frames, maxFrame
			mu.Unlock()
			if rep2.StateTransfers() == 0 {
				return cell, fmt.Errorf("bigstate: replica rejoined without a state transfer (chunk cap %d)", chunkBytes)
			}
			return cell, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cell, fmt.Errorf("bigstate: lagging replica never converged (chunk cap %d)", chunkBytes)
}
