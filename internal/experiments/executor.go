package experiments

// Executor-scaling experiment: unlike the figure/table runners above, which
// regenerate the paper's results on the simulator, this one drives the real
// goroutine pipeline (in-process transport) to measure the executed-request
// throughput of the parallel execution stage — the dimension the paper left
// single-threaded. It parameterizes the conflict rate of a KV workload and
// sweeps the executor worker count, the Fig. 4-style scalability curve for
// the execution layer.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"gosmr/internal/batch"
	"gosmr/internal/core"
	"gosmr/internal/service"
	"gosmr/internal/transport"
	"gosmr/internal/wire"
)

// ExecutorOptions configures the executor-scaling workload.
type ExecutorOptions struct {
	// Workers lists the executor worker counts to sweep (default 1, 2, 4, 8).
	Workers []int
	// ConflictPct lists workload conflict rates in percent: the probability
	// that a command targets the single shared hot key instead of a key
	// private to its client (default 0, 10, 100).
	ConflictPct []int
	// Clients is the number of closed-loop clients (default 32).
	Clients int
	// ExecuteCost is the KV per-command processing cost in hash-mix rounds
	// (default 2000, ≈ tens of microseconds — a service where execution,
	// not ordering, is the bottleneck).
	ExecuteCost int
	// Warmup is discarded time per cell before measuring (client ramp-up
	// and leader election; default 100ms).
	Warmup time.Duration
	// Measure is the measurement window per cell (default 300ms).
	Measure time.Duration
}

func (o ExecutorOptions) withDefaults() ExecutorOptions {
	if len(o.Workers) == 0 {
		o.Workers = []int{1, 2, 4, 8}
	}
	if len(o.ConflictPct) == 0 {
		o.ConflictPct = []int{0, 10, 100}
	}
	if o.Clients <= 0 {
		o.Clients = 32
	}
	if o.ExecuteCost <= 0 {
		o.ExecuteCost = 2000
	}
	if o.Warmup <= 0 {
		o.Warmup = 100 * time.Millisecond
	}
	if o.Measure <= 0 {
		o.Measure = 300 * time.Millisecond
	}
	return o
}

// ExecutorResult holds executed-throughput cells indexed
// [conflict][workers].
type ExecutorResult struct {
	Workers     []int
	ConflictPct []int
	Tput        [][]float64 // executed requests/second
	Report      string
}

// ExecutorScaling sweeps executor worker counts against workload conflict
// rates on a single-replica in-process pipeline and reports executed
// throughput. At low conflict rates throughput should grow with workers (up
// to the machine's cores); at 100% conflicts every command hits the same
// key, serializes onto one worker, and parallelism buys nothing.
func ExecutorScaling(opts ExecutorOptions) ExecutorResult {
	opts = opts.withDefaults()
	out := ExecutorResult{Workers: opts.Workers, ConflictPct: opts.ConflictPct}
	t := newTable("Executor", fmt.Sprintf(
		"Executed throughput vs executor workers and conflict rate (req/s; %d clients, cost=%d)",
		opts.Clients, opts.ExecuteCost))
	hdr := []string{"conflict"}
	for _, w := range opts.Workers {
		hdr = append(hdr, fmt.Sprintf("%d worker(s)", w))
	}
	t.row(hdr...)
	for _, pct := range opts.ConflictPct {
		row := make([]float64, 0, len(opts.Workers))
		cells := []string{fmt.Sprintf("%7d%%", pct)}
		for _, w := range opts.Workers {
			tput := runExecutorCell(opts, w, pct)
			row = append(row, tput)
			cells = append(cells, fmt.Sprintf("%11.0f", tput))
		}
		out.Tput = append(out.Tput, row)
		t.row(cells...)
	}
	out.Report = t.String()
	return out
}

// runExecutorCell measures one (workers, conflict%) cell: a single-replica
// cluster (ordering is local, so execution dominates) under closed-loop
// clients for the measurement window.
func runExecutorCell(opts ExecutorOptions, workers, conflictPct int) float64 {
	net := transport.NewInproc(0)
	svc := service.NewKV()
	svc.ExecuteCost = opts.ExecuteCost
	rep, err := core.NewReplica(core.Config{
		ID: 0, PeerAddrs: []string{"exp-peer"}, ClientAddr: "exp-client",
		Network:         net,
		Batch:           batch.Policy{MaxBytes: 1300, MaxDelay: time.Millisecond},
		ExecutorWorkers: workers,
	}, svc)
	if err != nil {
		panic(err) // static config; cannot fail
	}
	if err := rep.Start(); err != nil {
		panic(err)
	}
	defer rep.Stop()
	for deadline := time.Now().Add(5 * time.Second); !rep.IsLeader() && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for c := range opts.Clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7*workers + 1000*conflictPct + c)))
			conn, err := net.Dial("exp-client")
			if err != nil {
				return
			}
			defer conn.Close()
			value := []byte("executor-scaling-value")
			for seq := uint64(1); !stop.Load(); seq++ {
				key := fmt.Sprintf("client%d-key%d", c, seq%8)
				if rng.Intn(100) < conflictPct {
					key = "hot"
				}
				req := &wire.ClientRequest{ClientID: uint64(1 + c), Seq: seq,
					Payload: service.EncodePut(key, value)}
				if err := conn.WriteFrame(wire.Marshal(req)); err != nil {
					return
				}
				if _, err := conn.ReadFrame(); err != nil {
					return
				}
			}
		}()
	}
	// Discard client ramp-up, then measure the executed-counter delta.
	time.Sleep(opts.Warmup)
	startExecuted := rep.Executed()
	start := time.Now()
	time.Sleep(opts.Measure)
	executed := rep.Executed() - startExecuted
	elapsed := time.Since(start)
	stop.Store(true)
	wg.Wait()
	return float64(executed) / elapsed.Seconds()
}
