package experiments

import (
	"strings"
	"testing"
	"time"
)

// fastSuite returns a suite with reduced fidelity for CI-speed shape checks.
func fastSuite() *Suite {
	return NewSuite(Options{
		Warmup:  80 * time.Millisecond,
		Measure: 200 * time.Millisecond,
		Cores:   []int{1, 4, 8, 24},
	})
}

func TestFig1ZooKeeperCollapses(t *testing.T) {
	r := fastSuite().Fig1()
	// Paper Fig. 1a: throughput peaks in the low-core range and degrades
	// substantially at 24 cores.
	peak := 0.0
	for _, v := range r.Throughput {
		if v > peak {
			peak = v
		}
	}
	last := r.Throughput[len(r.Throughput)-1]
	if last >= peak*0.8 {
		t.Errorf("no collapse: peak %.0f, 24-core %.0f", peak, last)
	}
	if peak < 25000 || peak > 70000 {
		t.Errorf("peak = %.0f, want the paper's ~50K scale", peak)
	}
	if !strings.Contains(r.Report, "CommitProcessor") {
		t.Error("report missing leader thread profile")
	}
}

func TestFig4ScalesThenSaturates(t *testing.T) {
	r := fastSuite().Fig4()
	// Single-core throughput matches the paper's ~15K; speedup exceeds 5x
	// at 24 cores; n=5 does not beat n=3 meaningfully.
	if r.N3[0] < 10000 || r.N3[0] > 22000 {
		t.Errorf("1-core n=3 = %.0f, want ~15K", r.N3[0])
	}
	last := len(r.Cores) - 1
	if r.SpeedN3[last] < 4.5 {
		t.Errorf("n=3 speedup at 24 cores = %.2f, want ~5-6", r.SpeedN3[last])
	}
	if r.N3[last] < 80000 || r.N3[last] > 130000 {
		t.Errorf("24-core n=3 = %.0f, want ~100K", r.N3[last])
	}
	// Monotonic non-decreasing throughput with cores (within 5% noise).
	for i := 1; i < len(r.N3); i++ {
		if r.N3[i] < r.N3[i-1]*0.95 {
			t.Errorf("throughput dropped between %d and %d cores: %.0f -> %.0f",
				r.Cores[i-1], r.Cores[i], r.N3[i-1], r.N3[i])
		}
	}
}

func TestFig5ContentionStaysLow(t *testing.T) {
	n3, _ := fastSuite().Fig5()
	// Paper Fig. 5b: JPaxos blocked time is small and does NOT grow with
	// cores — the architecture's headline contention result. (Our 1-core
	// model over-accounts holder-preemption stalls, so the bound is looser
	// there.)
	for r := range n3.Blocked {
		for i, v := range n3.Blocked[r] {
			limit := 30.0
			if n3.Cores[i] < 4 {
				limit = 70.0
			}
			if v > limit {
				t.Errorf("replica %d blocked %.1f%% at %d cores, want < %.0f%%", r+1, v, n3.Cores[i], limit)
			}
		}
		first, last := n3.Blocked[r][0], n3.Blocked[r][len(n3.Blocked[r])-1]
		if last > first+10 {
			t.Errorf("replica %d blocked grew with cores: %.1f%% -> %.1f%%", r+1, first, last)
		}
	}
	// The leader (replica index 0) uses the most CPU.
	last := len(n3.Cores) - 1
	if n3.CPU[0][last] <= n3.CPU[1][last] {
		t.Errorf("leader CPU %.0f%% not above follower %.0f%%", n3.CPU[0][last], n3.CPU[1][last])
	}
}

func TestFig6EdelNearLinearSpeedup(t *testing.T) {
	r := fastSuite().Fig6()
	last := len(r.Cores) - 1
	// Paper Fig. 6b: close-to-linear speedup up to 8 cores (~7x).
	if r.SpeedN3[last] < 5 || r.SpeedN3[last] > 8.5 {
		t.Errorf("edel 8-core speedup = %.2f, want ~7", r.SpeedN3[last])
	}
}

func TestFig8ClientIOAndBatcherDominateAtOneCore(t *testing.T) {
	profiles := fastSuite().Fig8()
	var oneCore *ThreadProfileResult
	for i := range profiles {
		if profiles[i].Label == "parapluie-1core" {
			oneCore = &profiles[i]
		}
	}
	if oneCore == nil {
		t.Fatal("missing parapluie-1core profile")
	}
	// Paper Fig. 8a: ClientIO + Batcher busy time accounts for most of the
	// single core; no thread is blocked meaningfully.
	var cioBatcher, total time.Duration
	for _, st := range oneCore.Threads {
		total += st.Busy
		if strings.HasPrefix(st.Name, "ClientIO") || st.Name == "Batcher" {
			cioBatcher += st.Busy
		}
	}
	if total == 0 || float64(cioBatcher)/float64(total) < 0.5 {
		t.Errorf("ClientIO+Batcher = %.0f%% of busy time, want > 50%%",
			100*float64(cioBatcher)/float64(total))
	}
}

func TestFig9ClientIOSweepShape(t *testing.T) {
	r := fastSuite().Fig9()
	// Paper Fig. 9a: large gain from 1 to 4 threads, degradation past 8.
	idx := func(x float64) int {
		for i, v := range r.X {
			if v == x {
				return i
			}
		}
		return -1
	}
	one, four, twentyFour := r.Tput[idx(1)], r.Tput[idx(4)], r.Tput[idx(24)]
	if four < one*1.9 {
		t.Errorf("4 threads (%.0f) not ~2x 1 thread (%.0f)", four, one)
	}
	peak := 0.0
	for _, v := range r.Tput {
		if v > peak {
			peak = v
		}
	}
	if twentyFour > peak*0.85 {
		t.Errorf("no degradation at 24 threads: %.0f vs peak %.0f", twentyFour, peak)
	}
}

func TestFig10WindowSweepShape(t *testing.T) {
	r := fastSuite().Fig10()
	// Throughput rises from WND=10 to the peak; latency grows monotonically
	// with WND; the window tracks its limit.
	if r.Tput[0] >= r.Tput[3] {
		t.Errorf("no throughput gain from WND=10 (%.0f) to WND=25 (%.0f)", r.Tput[0], r.Tput[3])
	}
	for i := 1; i < len(r.Lat); i++ {
		if r.Lat[i] < r.Lat[i-1] {
			t.Errorf("latency not monotonic at WND=%v: %v -> %v", r.X[i], r.Lat[i-1], r.Lat[i])
		}
	}
	for i, wnd := range r.X {
		if r.Window[i] < wnd*0.9 {
			t.Errorf("avg window %.1f well below limit %.0f", r.Window[i], wnd)
		}
	}
	// Paper Fig. 10b: ~1ms at WND=10 growing to ~4ms at WND=50.
	if r.Lat[0] > 2*time.Millisecond {
		t.Errorf("WND=10 latency = %v, want ~1ms", r.Lat[0])
	}
	if last := r.Lat[len(r.Lat)-1]; last < 3*time.Millisecond {
		t.Errorf("WND=50 latency = %v, want ~4ms", last)
	}
}

func TestFig11BatchSweepFlat(t *testing.T) {
	r := fastSuite().Fig11()
	// Paper Fig. 11a: beyond 1300 bytes the throughput stays flat (within
	// ~10%): bigger batches do not help once frames are full.
	base := r.Tput[0]
	for i, v := range r.Tput {
		if v < base*0.9 || v > base*1.15 {
			t.Errorf("BSZ=%v throughput %.0f deviates from %.0f", r.X[i], v, base)
		}
	}
}

func TestFig12JPaxosBeatsZooKeeper(t *testing.T) {
	r := fastSuite().Fig12()
	last := len(r.Cores) - 1
	// Paper Fig. 12a: ~4x at 24 cores.
	ratio := r.JPaxos[last] / r.ZooKeeper[last]
	if ratio < 3 {
		t.Errorf("JPaxos/ZooKeeper at 24 cores = %.2f, want > 3", ratio)
	}
}

func TestFig13ZooKeeperContentionGrows(t *testing.T) {
	r := fastSuite().Fig13()
	leader := len(r.CPU) - 1
	blocked := r.Blocked[leader]
	if blocked[len(blocked)-1] < 100 {
		t.Errorf("leader blocked at 24 cores = %.1f%%, want > 100%% (Fig. 13b)", blocked[len(blocked)-1])
	}
	if blocked[0] > 20 {
		t.Errorf("leader blocked at 1 core = %.1f%%, want ~0", blocked[0])
	}
}

func TestTableIQueueAverages(t *testing.T) {
	r := fastSuite().TableI()
	// RequestQueue average decreases as WND grows; DispatcherQueue stays
	// near empty; ballots track the limit.
	if r.RequestQ[len(r.RequestQ)-1] >= r.RequestQ[0] {
		t.Errorf("RequestQueue avg did not fall with WND: %v", r.RequestQ)
	}
	for i, v := range r.DispatchQ {
		if r.WND[i] <= 40 && v > 20 {
			t.Errorf("DispatcherQueue avg at WND=%d = %.1f, want near empty", r.WND[i], v)
		}
	}
	for i, v := range r.AvgBallots {
		if v < float64(r.WND[i])*0.9 {
			t.Errorf("avg ballots %.1f below WND %d", v, r.WND[i])
		}
	}
}

func TestTableIIPingInflation(t *testing.T) {
	r := fastSuite().TableII()
	// Paper Table II: idle 0.06ms; leader RTT ~2.5ms under load; follower
	// links near idle levels.
	if r.Idle > 200*time.Microsecond {
		t.Errorf("idle RTT = %v, want ~80µs", r.Idle)
	}
	if r.LeaderToAny < 10*r.Idle {
		t.Errorf("leader RTT %v did not inflate (idle %v)", r.LeaderToAny, r.Idle)
	}
	if r.FollowerToPeer > r.LeaderToAny/2 {
		t.Errorf("follower RTT %v not well below leader RTT %v", r.FollowerToPeer, r.LeaderToAny)
	}
}

func TestTableIIIPacketCeiling(t *testing.T) {
	r := fastSuite().TableIII()
	// Every BSZ pins the leader's out-packet rate at the kernel ceiling
	// (~150K/s), and BSZ=650 yields clearly lower request throughput.
	for i, p := range r.PktsOut {
		low := 140000.0
		if r.BSZ[i] < 1300 {
			low = 110000 // small batches leave the leader slightly CPU-bound
		}
		if p < low || p > 170000 {
			t.Errorf("BSZ=%d pkts/s out = %.0f, want ~155K", r.BSZ[i], p)
		}
	}
	if r.Tput[0] >= r.Tput[1]*0.92 {
		t.Errorf("BSZ=650 (%.0f) not clearly below BSZ=1300 (%.0f)", r.Tput[0], r.Tput[1])
	}
}

func TestAblationRSSImproves(t *testing.T) {
	r := fastSuite().AblationRSS()
	if r.Variant <= r.Baseline*1.1 {
		t.Errorf("RSS gain = %.2fx, want meaningful improvement", r.Variant/r.Baseline)
	}
}

func TestAblationNoBatcherCosts(t *testing.T) {
	r := fastSuite().AblationNoBatcher()
	if r.Variant > r.Baseline*1.02 {
		t.Errorf("removing the Batcher improved throughput (%.0f -> %.0f)?", r.Baseline, r.Variant)
	}
}

func TestExecutorScalingSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("drives the real pipeline; skipped in -short mode")
	}
	// Shape check only: the sweep runs, fills every cell with live traffic,
	// and reports them. Actual speedup is hardware-dependent (needs cores),
	// so it is asserted by the executor benchmarks, not here.
	r := ExecutorScaling(ExecutorOptions{
		Workers:     []int{1, 4},
		ConflictPct: []int{0, 100},
		Clients:     8,
		ExecuteCost: 200,
		Measure:     120 * time.Millisecond,
	})
	if len(r.Tput) != 2 || len(r.Tput[0]) != 2 {
		t.Fatalf("Tput shape = %v, want 2x2", r.Tput)
	}
	for i, row := range r.Tput {
		for j, v := range row {
			if v <= 0 {
				t.Errorf("cell conflict=%d%% workers=%d executed nothing", r.ConflictPct[i], r.Workers[j])
			}
		}
	}
	if !strings.Contains(r.Report, "Executor") {
		t.Error("report missing header")
	}
}

func TestDeterministicReports(t *testing.T) {
	a := fastSuite().TableII()
	b := fastSuite().TableII()
	if a.Report != b.Report {
		t.Error("experiment output is not deterministic across runs")
	}
}
