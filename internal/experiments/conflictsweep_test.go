package experiments

import (
	"testing"
	"time"
)

// TestConflictSweepSmoke runs a miniature sweep end-to-end and sanity-checks
// the cells: every configured cell present, throughputs positive, and the
// scheduler counters telling the right story per mode — joins and fences in
// deps mode, barriers (and zero joins) in barrier mode — whenever the
// account pool actually spans workers.
func TestConflictSweepSmoke(t *testing.T) {
	opts := ConflictSweepOptions{
		Workers:     []int{1, 4},
		MultiKeyPct: []int{0, 100},
		Accounts:    16,
		Clients:     8,
		ExecuteWait: 200 * time.Microsecond,
		Warmup:      50 * time.Millisecond,
		Measure:     100 * time.Millisecond,
	}
	r := ConflictSweep(opts)
	if len(r.Cells) != 8 { // 2 modes × 2 pcts × 2 worker counts
		t.Fatalf("got %d cells, want 8", len(r.Cells))
	}
	spans := keySpansWorkers(opts.Accounts, 4)
	if !spans {
		t.Fatal("16 accounts hash to one worker of 4 — workload cannot exercise joins")
	}
	for _, c := range r.Cells {
		if c.OpsPerS <= 0 {
			t.Errorf("cell %+v measured no throughput", c)
		}
		if c.Workers == 1 && c.Speedup != 1.0 {
			t.Errorf("baseline cell %+v speedup = %v, want 1.0", c, c.Speedup)
		}
		if c.Cost != "wait-200µs" {
			t.Errorf("cell cost label = %q, want wait-200µs", c.Cost)
		}
		multi := c.MultiKeyPct > 0 && c.Workers > 1
		switch {
		case multi && c.Mode == "deps":
			if c.Joins == 0 || c.Fences < 2*c.Joins {
				t.Errorf("deps cell %+v: want joins > 0 and >= 2 fences per 2-key join", c)
			}
			if c.Barriers != 0 {
				t.Errorf("deps cell %+v: well-formed multi-key commands must not barrier", c)
			}
		case multi && c.Mode == "barrier":
			if c.Barriers == 0 || c.Joins != 0 || c.Fences != 0 {
				t.Errorf("barrier cell %+v: want barriers > 0 and no joins/fences", c)
			}
		default: // single-key-only or single-worker cells never join or barrier
			if c.Joins != 0 || c.Barriers != 0 {
				t.Errorf("cell %+v: single-key/single-worker workload recorded joins or barriers", c)
			}
		}
	}
	if r.Speedup("deps", 100, 4) <= 0 {
		t.Error("Speedup lookup failed for a swept cell")
	}
	if r.Report == "" {
		t.Error("empty report")
	}
}
