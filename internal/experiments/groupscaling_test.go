package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestGroupScalingSmoke runs a reduced sweep end to end on the real
// pipeline. It asserts shape and sanity, not speedup ratios: wall-clock
// scaling depends on the host's core count, which CI does not control (the
// full sweep is `gosmr-bench -experiment groupscaling`).
func TestGroupScalingSmoke(t *testing.T) {
	r := GroupScaling(GroupOptions{
		Groups:      []int{1, 2},
		Windows:     []int{4},
		ConflictPct: []int{0},
		Clients:     8,
		Delay:       500 * time.Microsecond,
		Warmup:      80 * time.Millisecond,
		Measure:     150 * time.Millisecond,
	})
	if len(r.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(r.Cells))
	}
	for _, c := range r.Cells {
		if c.Batches <= 0 {
			t.Errorf("G=%d cell decided no batches", c.Groups)
		}
	}
	if s := r.Speedup(2, 4, 0); s <= 0 {
		t.Errorf("Speedup(2,4,0) = %v, want > 0", s)
	}
	if !strings.Contains(r.Report, "GroupScaling") {
		t.Error("report missing title")
	}
}
