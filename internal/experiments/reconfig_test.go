package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestReconfigSmoke runs a reduced live-add measurement end to end on the
// real pipeline. It asserts the invariants — the add commits, the joiner
// bootstraps via state transfer, no acked write is lost — not the dip
// magnitude, which depends on host load (the full run is
// `gosmr-bench -experiment reconfig`).
func TestReconfigSmoke(t *testing.T) {
	r, err := Reconfig(ReconfigOptions{
		Writers: 4,
		Phase:   200 * time.Millisecond,
		Warmup:  150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.BeforePerS <= 0 || r.DuringPerS <= 0 || r.AfterPerS <= 0 {
		t.Errorf("phase rates = %.0f/%.0f/%.0f writes/s, want all > 0",
			r.BeforePerS, r.DuringPerS, r.AfterPerS)
	}
	if r.AddCommit <= 0 {
		t.Error("AddReplica reported zero commit latency")
	}
	if r.StateTransfers == 0 {
		t.Error("joiner bootstrapped without a snapshot transfer")
	}
	if r.AckedWrites == 0 {
		t.Error("no writes acked")
	}
	if r.LostWrites != 0 {
		t.Errorf("lost %d acked writes on the joiner, want 0", r.LostWrites)
	}
	if !strings.Contains(r.Report, "Reconfig") {
		t.Error("report missing title")
	}
}
