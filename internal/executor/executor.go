// Package executor implements the replica's execution stage as a
// deterministic, conflict-aware multi-worker scheduler — the parallel
// successor to the paper's single ServiceManager thread (Sec. V-D).
//
// The paper scales everything *around* execution (ClientIO pools, Batcher,
// Protocol, per-peer ReplicaIO) but applies decided requests on one thread,
// which caps replica throughput once ordering is no longer the bottleneck.
// Following the parallel-SMR line of work (Marandi et al., "Rethinking
// State-Machine Replication for Parallelism"; Alchieri et al., "Early
// Scheduling in Parallel State Machine Replication"), this package executes
// independent requests concurrently while keeping every replica's observable
// state equivalent to a serial execution of the log:
//
//   - A single scheduler (the ServiceManager thread) drains decided requests
//     in log order and dispatches each one by its declared conflict keys.
//   - Every key is hashed to one of N workers; requests whose keys all land
//     on the same worker are appended to that worker's FIFO queue. Two
//     conflicting requests share a key, hash to the same worker, and thus
//     execute in log order.
//   - Requests with no keys, undeclarable keys, or keys spanning several
//     workers are "global": the scheduler quiesces all workers and executes
//     them inline, acting as a barrier (early-scheduling style), so they are
//     totally ordered against everything else.
//
// Non-conflicting requests commute, so any interleaving of the worker FIFOs
// yields the same service state; conflicting requests are serialized per
// worker in log order. Every replica therefore converges to the same state —
// see the determinism tests.
//
// The executor deliberately orders only by conflict keys. Decisions that
// must be deterministic but span keys — per-client at-most-once
// classification (new vs duplicate vs stale) — belong to the scheduler,
// which makes them in log order before dispatch and uses SubmitTo to order
// a duplicate's reply resend behind its original execution.
//
// When the service does not declare conflicts (no Keys function) or only one
// worker is configured, the executor degrades to executing inline on the
// scheduler thread, byte-for-byte the behavior of the original single
// ServiceManager thread.
package executor

import (
	"fmt"
	"sync"

	"gosmr/internal/profiling"
	"gosmr/internal/queue"
)

// ConflictAware is the optional service extension consumed by the executor:
// a service that can declare, per request, the set of state keys the request
// reads or writes. Two requests conflict iff their key sets intersect; the
// executor guarantees conflicting requests execute in log order. Returning
// nil (or an empty set) marks the request "global": it is serialized against
// every other request. Keys must be deterministic and must not depend on
// service state.
type ConflictAware interface {
	Keys(req []byte) []string
}

// Task is one scheduled unit of execution. Run receives the profiling thread
// of whichever goroutine executes it (a worker, or the scheduler for
// sequential/global execution).
type Task func(th *profiling.Thread)

// Config configures an Executor.
type Config struct {
	// Workers is the number of execution goroutines. Values <= 1 select the
	// sequential fallback (no goroutines; Submit runs tasks inline).
	Workers int
	// Keys extracts a request's conflict keys. nil selects the sequential
	// fallback regardless of Workers.
	Keys func(req []byte) []string
	// QueueCap bounds each worker's input queue (default 256); a full queue
	// blocks the scheduler, propagating backpressure to the DecisionQueue.
	QueueCap int
	// Profiling optionally registers the worker threads (Executor-i).
	Profiling *profiling.Registry
}

// Executor dispatches decided requests across worker goroutines. Submit and
// Quiesce must be called from a single scheduler goroutine; dispatch order is
// the deterministic log order that replicas agree on.
type Executor struct {
	keys    func(req []byte) []string
	queues  []*queue.Bounded[Task]
	threads []*profiling.Thread

	// inflight counts dispatched-but-unfinished tasks. Add is called only by
	// the scheduler goroutine (which is also the only Wait caller), Done by
	// workers, so the WaitGroup reuse is race-free.
	inflight sync.WaitGroup
	workers  sync.WaitGroup
	stopOnce sync.Once

	// Counters (read via Stats).
	dispatched uint64 // tasks handed to workers
	barriers   uint64 // global commands executed inline behind a quiesce
}

// New builds an executor. A nil Keys function or Workers <= 1 yields a
// sequential executor that never spawns goroutines.
func New(cfg Config) *Executor {
	e := &Executor{keys: cfg.Keys}
	if cfg.Workers <= 1 || cfg.Keys == nil {
		return e
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 256
	}
	e.queues = make([]*queue.Bounded[Task], cfg.Workers)
	e.threads = make([]*profiling.Thread, cfg.Workers)
	for i := range e.queues {
		e.queues[i] = queue.NewBounded[Task](fmt.Sprintf("ExecutorQueue-%d", i), cfg.QueueCap)
		e.threads[i] = cfg.Profiling.Register(fmt.Sprintf("Executor-%d", i))
	}
	return e
}

// Parallel reports whether the executor dispatches to worker goroutines
// (false for the sequential fallback).
func (e *Executor) Parallel() bool { return len(e.queues) > 0 }

// Workers returns the number of worker goroutines (0 when sequential).
func (e *Executor) Workers() int { return len(e.queues) }

// Start launches the worker goroutines. It is a no-op when sequential.
func (e *Executor) Start() {
	for i := range e.queues {
		e.workers.Add(1)
		go e.run(i)
	}
}

// run is one worker's loop: drain the FIFO, execute, acknowledge.
func (e *Executor) run(i int) {
	defer e.workers.Done()
	th := e.threads[i]
	th.Transition(profiling.StateBusy)
	defer th.Transition(profiling.StateOther)
	for {
		task, err := e.queues[i].Take(th)
		if err != nil {
			return // closed and drained
		}
		task(th)
		e.inflight.Done()
	}
}

// KeyHash is the conflict-key hash shared by every key-routed stage (worker
// assignment here, ordering-group assignment in core): FNV-1a, stable across
// replicas, processes, and architectures, so the same key routes identically
// cluster-wide. Both sites must use the same function — conflicting requests
// serialize correctly only because their key lands in the same place on
// every replica.
func KeyHash(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// workerFor hashes a conflict key to a worker index.
func (e *Executor) workerFor(key string) int {
	return int(KeyHash(key) % uint64(len(e.queues)))
}

// Inline is the pseudo-worker index Submit returns for tasks executed on the
// scheduler itself (sequential mode and global commands). SubmitTo accepts it
// and likewise runs inline.
const Inline = -1

// Submit schedules one request in log order and returns the worker index the
// task was assigned to (Inline when it ran on the scheduler). It must be
// called from the single scheduler goroutine. th is the scheduler's
// profiling thread; time blocked on a full worker queue is credited to it as
// waiting (backpressure).
//
// Sequential executors and global requests run inline on the scheduler;
// single-worker requests are enqueued to their worker's FIFO.
func (e *Executor) Submit(th *profiling.Thread, req []byte, task Task) int {
	if !e.Parallel() {
		task(th)
		return Inline
	}
	keys := e.keys(req)
	w := Inline
	for _, k := range keys {
		kw := e.workerFor(k)
		if w == Inline {
			w = kw
		} else if w != kw {
			w = Inline // keys span workers: treat as global
			break
		}
	}
	if w == Inline {
		// Global command: barrier. Wait for every dispatched task, then
		// execute inline so the command observes (and is observed by) a fully
		// serial prefix.
		e.Quiesce(th)
		e.barriers++
		task(th)
		return Inline
	}
	e.SubmitTo(th, w, task)
	return w
}

// SubmitTo enqueues a task to a specific worker's FIFO (or runs it inline
// for worker == Inline), bypassing key hashing. The scheduler uses it to
// order a request behind an earlier one whose worker assignment it recorded
// — e.g. a duplicate's reply resend behind its original execution.
func (e *Executor) SubmitTo(th *profiling.Thread, worker int, task Task) {
	if !e.Parallel() || worker == Inline {
		task(th)
		return
	}
	e.inflight.Add(1)
	if err := e.queues[worker].Put(th, task); err != nil {
		// Shutting down: the task will never run. Balance the counter so a
		// concurrent Quiesce cannot hang.
		e.inflight.Done()
		return
	}
	e.dispatched++
}

// Quiesce blocks until every dispatched task has finished executing. Called
// by the scheduler before snapshots, state installs, and global commands.
func (e *Executor) Quiesce(th *profiling.Thread) {
	if !e.Parallel() {
		return
	}
	th.Transition(profiling.StateWaiting)
	e.inflight.Wait()
	th.Transition(profiling.StateBusy)
}

// Stop closes the worker queues and waits for the workers to drain and exit.
// Safe to call more than once. Call it from the scheduler goroutine itself,
// after the scheduler's input is drained: closing the queues concurrently
// with an in-flight Submit has a narrow window where a task is accepted by a
// queue whose worker already exited — it would never run, and its inflight
// count would hang the next Quiesce. (A Submit issued after Stop returns is
// safe: it observes the closed queue and drops the task.)
func (e *Executor) Stop() {
	e.stopOnce.Do(func() {
		for _, q := range e.queues {
			q.Close()
		}
	})
	e.workers.Wait()
}

// QueueStats returns the time-averaged length of each worker queue, keyed by
// queue name (ExecutorQueue-i) — the executor's extension of the paper's
// Table I statistics. Empty when sequential.
func (e *Executor) QueueStats() map[string]float64 {
	if !e.Parallel() {
		return nil
	}
	out := make(map[string]float64, len(e.queues))
	for _, q := range e.queues {
		out[q.Name()] = q.AvgLen()
	}
	return out
}

// ResetQueueStats restarts the per-worker queue averages.
func (e *Executor) ResetQueueStats() {
	for _, q := range e.queues {
		q.ResetStats()
	}
}

// Stats reports scheduler counters: tasks dispatched to workers and global
// commands executed behind a barrier. Must be called from the scheduler
// goroutine or after Stop.
func (e *Executor) Stats() (dispatched, barriers uint64) {
	return e.dispatched, e.barriers
}
