// Package executor implements the replica's execution stage as a
// deterministic, conflict-aware multi-worker scheduler — the parallel
// successor to the paper's single ServiceManager thread (Sec. V-D).
//
// The paper scales everything *around* execution (ClientIO pools, Batcher,
// Protocol, per-peer ReplicaIO) but applies decided requests on one thread,
// which caps replica throughput once ordering is no longer the bottleneck.
// Following the parallel-SMR line of work (Marandi et al., "Rethinking
// State-Machine Replication for Parallelism"; Alchieri et al., "Early
// Scheduling in Parallel State Machine Replication"), this package executes
// independent requests concurrently while keeping every replica's observable
// state equivalent to a serial execution of the log.
//
// # Scheduling model
//
// A single scheduler (the ServiceManager thread) drains decided requests in
// log order and dispatches each one by its declared conflict keys. Every key
// is statically hashed to one of N workers, so the per-key dependency tail —
// "the last task that touched this key" — is always the tail of that worker's
// FIFO: enqueueing in log order is all the dependency tracking a key needs.
// Three cases follow from a request's worker set:
//
//   - Single worker (all keys hash to one worker): append to that worker's
//     FIFO. Two conflicting requests share a key, hash to the same worker,
//     and execute in log order.
//
//   - Several workers (a multi-key request whose keys span workers): the
//     request becomes a pooled JOIN NODE with a dependency counter, and a
//     lightweight FENCE task is enqueued into each involved worker's FIFO —
//     and only those. A fence reaching the head of its queue means that
//     worker has finished every earlier conflicting request; the LAST fence
//     to arrive executes the request on its worker, then releases the other
//     involved workers to continue their queues. Workers whose keys the
//     request does not touch never stop (see the regression test): a stream
//     of 2-key transactions pipelines instead of barriering the world, which
//     is what kills the conflict cliff the PR 4 bench measured.
//
//   - No keys at all (no Keys function, or Keys returned nil/empty — an
//     unparseable or whole-state command): the request is "global". The
//     scheduler quiesces every worker and executes it inline, a full
//     barrier. This is now the ONLY barrier case.
//
// Deadlock freedom: fences are enqueued by the single scheduler, for all of
// a join's workers, before the next request is scheduled, so every worker
// sees fences in one consistent log order — waits-for cycles cannot form.
//
// Non-conflicting requests commute, so any interleaving of the worker FIFOs
// yields the same service state; conflicting requests are serialized per
// worker in log order (or through a join's fences for cross-worker key
// sets). Every replica therefore converges to the same state — see the
// determinism tests.
//
// The executor deliberately orders only by conflict keys. Decisions that
// must be deterministic but span keys — per-client at-most-once
// classification (new vs duplicate vs stale) — belong to the scheduler,
// which makes them in log order before dispatch and uses SubmitTo to order
// a duplicate's reply resend behind its original execution (for a multi-key
// original, behind one of its fences, which completes only after the join
// executed).
//
// When the service does not declare conflicts (no Keys function) or only one
// worker is configured, the executor degrades to executing inline on the
// scheduler thread, byte-for-byte the behavior of the original single
// ServiceManager thread.
package executor

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gosmr/internal/profiling"
	"gosmr/internal/queue"
)

// ConflictAware is the optional service extension consumed by the executor:
// a service that can declare, per request, the set of state keys the request
// reads or writes. Two requests conflict iff their key sets intersect; the
// executor guarantees conflicting requests execute in log order. Returning
// nil (or an empty set) marks the request "global": it is serialized against
// every other request. Keys must be deterministic and must not depend on
// service state.
type ConflictAware interface {
	Keys(req []byte) []string
}

// Task is one scheduled unit of execution. Run receives the profiling thread
// of whichever goroutine executes it (a worker, or the scheduler for
// sequential/global execution).
type Task func(th *profiling.Thread)

// Config configures an Executor.
type Config struct {
	// Workers is the number of execution goroutines. Values <= 1 select the
	// sequential fallback (no goroutines; Submit runs tasks inline).
	Workers int
	// Keys extracts a request's conflict keys. nil selects the sequential
	// fallback regardless of Workers.
	Keys func(req []byte) []string
	// QueueCap bounds each worker's input queue (default 256); a full queue
	// blocks the scheduler, propagating backpressure to the DecisionQueue.
	QueueCap int
	// BarrierMultiKey restores the pre-dependency-scheduling behavior:
	// a request whose keys span workers quiesces ALL workers and runs inline
	// instead of being fence-scheduled onto only the involved ones. Kept as
	// the measurable "before" of the conflict-sweep benchmark; never enable
	// it in production.
	BarrierMultiKey bool
	// Profiling optionally registers the worker threads (Executor-i).
	Profiling *profiling.Registry
}

// item is one worker-queue entry: a plain task, or a fence referencing its
// join node. Passed by value through the queue channel, so enqueueing a
// fence allocates nothing.
type item struct {
	run  Task
	join *joinNode
}

// joinNode coordinates one multi-key request across its involved workers.
// arrive counts fences that have not reached the head of their queue yet;
// the fence that drops it to zero executes run on its own worker and wakes
// the others. refs counts fences still using the node at all; the last one
// out recycles it to the pool.
type joinNode struct {
	mu     sync.Mutex
	cond   sync.Cond
	arrive int
	refs   int
	done   bool
	run    Task
}

// joinPool recycles join nodes so steady-state multi-key scheduling does not
// allocate (asserted by TestSubmitHotPathAllocs and the CI allocs guard).
var joinPool = sync.Pool{New: func() any {
	j := &joinNode{}
	j.cond.L = &j.mu
	return j
}}

// Stats is the executor's scheduling counters (see Executor.Stats).
type Stats struct {
	// Dispatched counts items enqueued to worker FIFOs (plain tasks and
	// fences alike).
	Dispatched uint64
	// Barriers counts full quiesce-the-world barriers: keyless/global
	// commands (and, in BarrierMultiKey compat mode, multi-key ones).
	Barriers uint64
	// Joins counts multi-key commands scheduled as join nodes.
	Joins uint64
	// Fences counts fence tasks enqueued for those joins (sum over joins of
	// involved-worker-set sizes).
	Fences uint64
	// JoinWaits counts fences that arrived before their join's last fence
	// and parked their worker — the residual cross-worker wait the
	// dependency scheduler could not avoid (untouched workers never park).
	JoinWaits uint64
}

// Executor dispatches decided requests across worker goroutines. Submit and
// Quiesce must be called from a single scheduler goroutine; dispatch order is
// the deterministic log order that replicas agree on.
type Executor struct {
	keys    func(req []byte) []string
	queues  []*queue.Bounded[item]
	threads []*profiling.Thread

	barrierMultiKey bool

	// wset/wseen are the scheduler's reused scratch for computing a
	// request's distinct worker set without allocating (single scheduler
	// goroutine, so plain fields suffice).
	wset  []int
	wseen []bool

	// inflight counts dispatched-but-unfinished items. Add is called only by
	// the scheduler goroutine (which is also the only Wait caller), Done by
	// workers, so the WaitGroup reuse is race-free.
	inflight sync.WaitGroup
	workers  sync.WaitGroup
	stopOnce sync.Once

	// Counters (read via Stats). Atomics so stats snapshots can be taken
	// from any goroutine mid-run; all but joinWaits are written only by the
	// scheduler.
	dispatched atomic.Uint64
	barriers   atomic.Uint64
	joins      atomic.Uint64
	fences     atomic.Uint64
	joinWaits  atomic.Uint64 // written by workers
}

// New builds an executor. A nil Keys function or Workers <= 1 yields a
// sequential executor that never spawns goroutines.
func New(cfg Config) *Executor {
	e := &Executor{keys: cfg.Keys, barrierMultiKey: cfg.BarrierMultiKey}
	if cfg.Workers <= 1 || cfg.Keys == nil {
		return e
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 256
	}
	e.queues = make([]*queue.Bounded[item], cfg.Workers)
	e.threads = make([]*profiling.Thread, cfg.Workers)
	e.wset = make([]int, 0, cfg.Workers)
	e.wseen = make([]bool, cfg.Workers)
	for i := range e.queues {
		e.queues[i] = queue.NewBounded[item](fmt.Sprintf("ExecutorQueue-%d", i), cfg.QueueCap)
		e.threads[i] = cfg.Profiling.Register(fmt.Sprintf("Executor-%d", i))
	}
	return e
}

// Parallel reports whether the executor dispatches to worker goroutines
// (false for the sequential fallback).
func (e *Executor) Parallel() bool { return len(e.queues) > 0 }

// Workers returns the number of worker goroutines (0 when sequential).
func (e *Executor) Workers() int { return len(e.queues) }

// Start launches the worker goroutines. It is a no-op when sequential.
func (e *Executor) Start() {
	for i := range e.queues {
		e.workers.Add(1)
		go e.run(i)
	}
}

// run is one worker's loop: drain the FIFO, execute, acknowledge.
func (e *Executor) run(i int) {
	defer e.workers.Done()
	th := e.threads[i]
	th.Transition(profiling.StateBusy)
	defer th.Transition(profiling.StateOther)
	for {
		it, err := e.queues[i].Take(th)
		if err != nil {
			return // closed and drained
		}
		if it.join != nil {
			e.runFence(th, it.join)
		} else {
			it.run(th)
		}
		e.inflight.Done()
	}
}

// runFence processes one fence at the head of a worker's queue: every
// earlier request conflicting with the join's keys on this worker has
// finished. The last fence to arrive executes the join's request here; an
// earlier arrival parks until the execution completes, keeping this worker's
// later (conflicting) queue entries correctly behind the multi-key request.
// The last fence to finish with the node recycles it.
func (e *Executor) runFence(th *profiling.Thread, j *joinNode) {
	j.mu.Lock()
	j.arrive--
	if j.arrive == 0 && !j.done {
		run := j.run
		j.mu.Unlock()
		run(th)
		j.mu.Lock()
		j.done = true
		j.cond.Broadcast()
	} else if !j.done {
		e.joinWaits.Add(1)
		th.Transition(profiling.StateWaiting)
		for !j.done {
			j.cond.Wait()
		}
		th.Transition(profiling.StateBusy)
	}
	j.refs--
	last := j.refs == 0
	j.mu.Unlock()
	if last {
		j.run = nil
		joinPool.Put(j)
	}
}

// KeyHash is the conflict-key hash shared by every key-routed stage (worker
// assignment here, ordering-group assignment in core): FNV-1a, stable across
// replicas, processes, and architectures, so the same key routes identically
// cluster-wide. Both sites must use the same function — conflicting requests
// serialize correctly only because their key lands in the same place on
// every replica.
func KeyHash(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// workerFor hashes a conflict key to a worker index.
func (e *Executor) workerFor(key string) int {
	return int(KeyHash(key) % uint64(len(e.queues)))
}

// Inline is the pseudo-worker index Submit returns for tasks executed on the
// scheduler itself (sequential mode and global commands). SubmitTo accepts it
// and likewise runs inline.
const Inline = -1

// Submit schedules one request in log order and returns the worker index a
// later task can be ordered behind via SubmitTo to run after this request
// (Inline when it ran on the scheduler). For a multi-key request that is the
// first involved worker: its fence completes only after the join executed,
// so anything queued behind the fence is ordered behind the request. Submit
// must be called from the single scheduler goroutine. th is the scheduler's
// profiling thread; time blocked on a full worker queue is credited to it as
// waiting (backpressure).
func (e *Executor) Submit(th *profiling.Thread, req []byte, task Task) int {
	if !e.Parallel() {
		task(th)
		return Inline
	}
	keys := e.keys(req)
	// Distinct worker set, in first-key order (deterministic), no allocation.
	ws := e.wset[:0]
	for _, k := range keys {
		w := e.workerFor(k)
		if !e.wseen[w] {
			e.wseen[w] = true
			ws = append(ws, w)
		}
	}
	e.wset = ws
	for _, w := range ws {
		e.wseen[w] = false
	}
	switch {
	case len(ws) == 0 || (len(ws) > 1 && e.barrierMultiKey):
		// Global command (or compat mode): full barrier. Wait for every
		// dispatched task, then execute inline so the command observes (and
		// is observed by) a fully serial prefix.
		e.Quiesce(th)
		e.barriers.Add(1)
		task(th)
		return Inline
	case len(ws) == 1:
		e.SubmitTo(th, ws[0], task)
		return ws[0]
	}
	// Multi-key: join node + one fence per involved worker. Untouched
	// workers are not involved and never stop.
	j := joinPool.Get().(*joinNode)
	j.arrive, j.refs, j.done, j.run = len(ws), len(ws), false, task
	e.joins.Add(1)
	for _, w := range ws {
		e.inflight.Add(1)
		if err := e.queues[w].Put(th, item{join: j}); err != nil {
			// Shutting down: this fence will never run. Balance the counters
			// and cancel the join so fences already enqueued release their
			// workers instead of waiting forever (the command is dropped,
			// like any Submit after Stop).
			e.inflight.Done()
			j.mu.Lock()
			j.arrive--
			j.refs--
			j.done = true
			j.cond.Broadcast()
			last := j.refs == 0
			j.mu.Unlock()
			if last {
				j.run = nil
				joinPool.Put(j)
			}
			continue
		}
		e.dispatched.Add(1)
		e.fences.Add(1)
	}
	return ws[0]
}

// SubmitTo enqueues a task to a specific worker's FIFO (or runs it inline
// for worker == Inline), bypassing key hashing. The scheduler uses it to
// order a request behind an earlier one whose worker assignment it recorded
// — e.g. a duplicate's reply resend behind its original execution.
func (e *Executor) SubmitTo(th *profiling.Thread, worker int, task Task) {
	if !e.Parallel() || worker == Inline {
		task(th)
		return
	}
	e.inflight.Add(1)
	if err := e.queues[worker].Put(th, item{run: task}); err != nil {
		// Shutting down: the task will never run. Balance the counter so a
		// concurrent Quiesce cannot hang.
		e.inflight.Done()
		return
	}
	e.dispatched.Add(1)
}

// Quiesce blocks until every dispatched task has finished executing. Called
// by the scheduler before snapshots, state installs, and global commands.
func (e *Executor) Quiesce(th *profiling.Thread) {
	if !e.Parallel() {
		return
	}
	th.Transition(profiling.StateWaiting)
	e.inflight.Wait()
	th.Transition(profiling.StateBusy)
}

// Stop closes the worker queues and waits for the workers to drain and exit.
// Safe to call more than once. Call it from the scheduler goroutine itself,
// after the scheduler's input is drained: closing the queues concurrently
// with an in-flight Submit has a narrow window where a task is accepted by a
// queue whose worker already exited — it would never run, and its inflight
// count would hang the next Quiesce. (A Submit issued after Stop returns is
// safe: it observes the closed queue and drops the task; a multi-key Submit
// additionally cancels its join so partially enqueued fences release.)
func (e *Executor) Stop() {
	e.stopOnce.Do(func() {
		for _, q := range e.queues {
			q.Close()
		}
	})
	e.workers.Wait()
}

// QueueStats returns the time-averaged length of each worker queue, keyed by
// queue name (ExecutorQueue-i) — the executor's extension of the paper's
// Table I statistics. Empty when sequential.
func (e *Executor) QueueStats() map[string]float64 {
	if !e.Parallel() {
		return nil
	}
	out := make(map[string]float64, len(e.queues))
	for _, q := range e.queues {
		out[q.Name()] = q.AvgLen()
	}
	return out
}

// ResetQueueStats restarts the per-worker queue averages.
func (e *Executor) ResetQueueStats() {
	for _, q := range e.queues {
		q.ResetStats()
	}
}

// Stats snapshots the scheduler counters. Safe from any goroutine; the
// counters are exact once the scheduler is idle (or stopped).
func (e *Executor) Stats() Stats {
	return Stats{
		Dispatched: e.dispatched.Load(),
		Barriers:   e.barriers.Load(),
		Joins:      e.joins.Load(),
		Fences:     e.fences.Load(),
		JoinWaits:  e.joinWaits.Load(),
	}
}
