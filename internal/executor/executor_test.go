package executor

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"gosmr/internal/profiling"
)

// command is one entry of a synthetic decided log.
type command struct {
	index int
	keys  []string // nil = global
}

// recorder accumulates what an executed log looks like: per-key command
// order, plus the completed-command count observed by each global command.
// The mutex only provides memory safety — ordering is the executor's job.
type recorder struct {
	mu      sync.Mutex
	perKey  map[string][]int
	applied int
	globals []int
}

func newRecorder() *recorder { return &recorder{perKey: make(map[string][]int)} }

func (r *recorder) apply(c command) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, k := range c.keys {
		r.perKey[k] = append(r.perKey[k], c.index)
	}
	if len(c.keys) == 0 {
		r.globals = append(r.globals, r.applied)
	}
	r.applied++
}

// randomLog builds a reproducible mixed-conflict workload: mostly single-key
// commands over a small key space, some two-key commands, a few globals.
func randomLog(seed int64, n int) []command {
	rng := rand.New(rand.NewSource(seed))
	log := make([]command, 0, n)
	for i := range n {
		c := command{index: i}
		switch p := rng.Intn(100); {
		case p < 5: // global
		case p < 20: // two keys
			c.keys = []string{
				fmt.Sprintf("k%d", rng.Intn(16)),
				fmt.Sprintf("k%d", rng.Intn(16)),
			}
		default:
			c.keys = []string{fmt.Sprintf("k%d", rng.Intn(16))}
		}
		log = append(log, c)
	}
	return log
}

// keysFor adapts the synthetic log to the executor's Keys function: requests
// are the decimal command index, resolved against the log.
func keysFor(log []command) func([]byte) []string {
	return func(req []byte) []string {
		var i int
		fmt.Sscanf(string(req), "%d", &i)
		return log[i].keys
	}
}

// replay runs the log through an executor with the given worker count.
func replay(t *testing.T, log []command, workers int) *recorder {
	t.Helper()
	rec := newRecorder()
	e := New(Config{Workers: workers, Keys: keysFor(log)})
	e.Start()
	for _, c := range log {
		c := c
		e.Submit(nil, []byte(fmt.Sprintf("%d", c.index)), func(*profiling.Thread) {
			rec.apply(c)
		})
	}
	e.Quiesce(nil)
	e.Stop()
	return rec
}

// TestReplayDeterminism replays the same randomized mixed-conflict log at
// worker counts 1, 2 and 8 and requires identical per-key execution orders
// — the executor-level half of the determinism guarantee (every conflicting
// pair executes in log order regardless of parallelism).
func TestReplayDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 42, 20260730} {
		log := randomLog(seed, 500)
		base := replay(t, log, 1)
		for _, workers := range []int{2, 8} {
			got := replay(t, log, workers)
			if !reflect.DeepEqual(base.perKey, got.perKey) {
				t.Errorf("seed %d: per-key order diverged between 1 and %d workers", seed, workers)
			}
			if got.applied != len(log) {
				t.Errorf("seed %d workers %d: applied %d of %d", seed, workers, got.applied, len(log))
			}
		}
	}
}

// TestGlobalCommandsAreBarriers checks that a global (keyless) command
// observes exactly the commands that precede it in the log: all dispatched
// work quiesced, nothing later started.
func TestGlobalCommandsAreBarriers(t *testing.T) {
	log := randomLog(7, 400)
	rec := replay(t, log, 8)
	want := []int{}
	for _, c := range log {
		if len(c.keys) == 0 {
			want = append(want, c.index)
		}
	}
	if len(rec.globals) != len(want) {
		t.Fatalf("globals executed = %d, want %d", len(rec.globals), len(want))
	}
	for i, observed := range rec.globals {
		// At the barrier, every earlier command has completed and none after
		// has been dispatched, so the completed count equals the command's
		// own log position.
		if observed != want[i] {
			t.Errorf("global #%d observed %d completed commands, want %d", i, observed, want[i])
		}
	}
}

// TestConflictingPairsInLogOrder hammers a single hot key from many
// interleaved commands and checks strict log order.
func TestConflictingPairsInLogOrder(t *testing.T) {
	log := make([]command, 300)
	for i := range log {
		key := "hot"
		if i%3 == 0 {
			key = fmt.Sprintf("cold%d", i%7)
		}
		log[i] = command{index: i, keys: []string{key}}
	}
	rec := replay(t, log, 8)
	hot := rec.perKey["hot"]
	for i := 1; i < len(hot); i++ {
		if hot[i-1] >= hot[i] {
			t.Fatalf("hot-key order violated: %d before %d", hot[i-1], hot[i])
		}
	}
}

// TestSubmitToOrdersBehindWorkerFIFO covers the duplicate-resend contract:
// a task submitted to a specific worker runs after everything already queued
// there (the scheduler orders a retry's reply resend behind the original
// execution this way).
func TestSubmitToOrdersBehindWorkerFIFO(t *testing.T) {
	e := New(Config{Workers: 4, Keys: func(req []byte) []string { return []string{string(req)} }})
	e.Start()
	defer e.Stop()
	var mu sync.Mutex
	var order []string
	record := func(label string, delay time.Duration) Task {
		return func(*profiling.Thread) {
			time.Sleep(delay)
			mu.Lock()
			order = append(order, label)
			mu.Unlock()
		}
	}
	w := e.Submit(nil, []byte("k"), record("original", 20*time.Millisecond))
	if w == Inline {
		t.Fatal("keyed submit ran inline")
	}
	e.SubmitTo(nil, w, record("resend", 0))
	e.SubmitTo(nil, Inline, record("inline", 0)) // Inline runs immediately
	e.Quiesce(nil)
	mu.Lock()
	defer mu.Unlock()
	want := []string{"inline", "original", "resend"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestSequentialFallbackRunsInline(t *testing.T) {
	for _, cfg := range []Config{
		{Workers: 0, Keys: func([]byte) []string { return nil }},
		{Workers: 8, Keys: nil}, // no conflict declaration: sequential
		{Workers: 1, Keys: func([]byte) []string { return []string{"k"} }},
	} {
		e := New(cfg)
		if e.Parallel() {
			t.Fatalf("config %+v produced a parallel executor", cfg)
		}
		e.Start()
		ran := false
		e.Submit(nil, []byte("x"), func(*profiling.Thread) { ran = true })
		if !ran {
			t.Error("sequential Submit did not run inline")
		}
		e.Quiesce(nil)
		e.Stop()
		if stats := e.QueueStats(); stats != nil {
			t.Errorf("sequential executor reported queue stats %v", stats)
		}
	}
}

func TestQueueStatsAndCounters(t *testing.T) {
	e := New(Config{
		Workers: 4,
		Keys: func(req []byte) []string {
			if len(req) == 0 {
				return nil // global
			}
			return []string{string(req)}
		},
		Profiling: profiling.NewRegistry(),
	})
	e.Start()
	for i := range 40 {
		e.Submit(nil, []byte(fmt.Sprintf("key%d", i)), func(*profiling.Thread) {})
	}
	e.Submit(nil, nil, func(*profiling.Thread) {}) // global
	e.Quiesce(nil)
	e.Stop()
	stats := e.QueueStats()
	if len(stats) != 4 {
		t.Fatalf("QueueStats = %v, want 4 entries", stats)
	}
	for name := range stats {
		if !strings.HasPrefix(name, "ExecutorQueue-") {
			t.Errorf("unexpected queue name %q", name)
		}
	}
	st := e.Stats()
	if st.Dispatched != 40 || st.Barriers != 1 {
		t.Errorf("Stats = %+v, want Dispatched=40 Barriers=1", st)
	}
	e.ResetQueueStats()
}

// distinctWorkerKeys returns n keys that hash to n distinct workers of e,
// one per worker in ascending worker order.
func distinctWorkerKeys(e *Executor, n int) []string {
	byWorker := make(map[int]string)
	for i := 0; len(byWorker) < n; i++ {
		k := fmt.Sprintf("wk-%d", i)
		w := e.workerFor(k)
		if _, ok := byWorker[w]; !ok && w < n {
			byWorker[w] = k
		}
	}
	keys := make([]string, n)
	for w, k := range byWorker {
		keys[w] = k
	}
	return keys
}

// TestMultiKeyPropertyVsSerialOracle is the dependency-scheduler property
// test: random logs of 1–3-key commands (over a small keyspace, so
// cross-worker key sets are common) execute against a PLAIN unsynchronized
// state slice — per-key mutual exclusion is the executor's job, so under
// -race any scheduling bug is a detected data race — and the final state
// must equal a serial application of the log. The per-key mix folds in the
// command index, so any conflicting reordering changes the value.
func TestMultiKeyPropertyVsSerialOracle(t *testing.T) {
	const keyspace = 12
	mix := func(v uint64, index int) uint64 {
		h := v ^ uint64(index+1)
		h *= 1099511628211
		return h
	}
	for _, seed := range []int64{3, 99, 20260808} {
		rng := rand.New(rand.NewSource(seed))
		type cmd struct{ keys []int }
		log := make([]cmd, 800)
		for i := range log {
			n := 1 + rng.Intn(3)
			ks := make([]int, n)
			for j := range ks {
				ks[j] = rng.Intn(keyspace)
			}
			log[i] = cmd{keys: ks}
		}
		// Serial oracle.
		want := make([]uint64, keyspace)
		for i, c := range log {
			for _, k := range c.keys {
				want[k] = mix(want[k], i)
			}
		}
		for _, workers := range []int{2, 3, 8} {
			state := make([]uint64, keyspace) // deliberately unsynchronized
			keyNames := make([]string, keyspace)
			for k := range keyNames {
				keyNames[k] = fmt.Sprintf("key-%d", k)
			}
			e := New(Config{Workers: workers, Keys: func(req []byte) []string {
				var i int
				fmt.Sscanf(string(req), "%d", &i)
				out := make([]string, len(log[i].keys))
				for j, k := range log[i].keys {
					out[j] = keyNames[k]
				}
				return out
			}})
			e.Start()
			for i := range log {
				i := i
				e.Submit(nil, []byte(fmt.Sprintf("%d", i)), func(*profiling.Thread) {
					for _, k := range log[i].keys {
						state[k] = mix(state[k], i)
					}
				})
			}
			e.Quiesce(nil)
			e.Stop()
			if !reflect.DeepEqual(want, state) {
				t.Errorf("seed %d workers %d: parallel state diverged from serial oracle\n got %v\nwant %v",
					seed, workers, state, want)
			}
		}
	}
}

// TestMultiKeyDoesNotBlockDisjointWorkers is the conflict-cliff regression
// test: a 2-key command whose keys span workers A and B must not stop worker
// C. Worker A is wedged behind a gated task, so the join cannot execute; a
// command on C's key must still complete. (Under the old quiesce-everything
// design the scheduler itself blocked inside Submit of the 2-key command and
// the C command was never even dispatched.)
func TestMultiKeyDoesNotBlockDisjointWorkers(t *testing.T) {
	e := New(Config{Workers: 3, Keys: func(req []byte) []string {
		return strings.Split(string(req), ",")
	}})
	e.Start()
	defer e.Stop()
	keys := distinctWorkerKeys(e, 3)
	a, b, c := keys[0], keys[1], keys[2]

	gate := make(chan struct{})
	joined := make(chan struct{})
	disjoint := make(chan struct{})
	e.Submit(nil, []byte(a), func(*profiling.Thread) { <-gate }) // wedge worker A
	e.Submit(nil, []byte(a+","+b), func(*profiling.Thread) { close(joined) })
	e.Submit(nil, []byte(c), func(*profiling.Thread) { close(disjoint) })

	select {
	case <-disjoint:
	case <-time.After(5 * time.Second):
		t.Fatal("disjoint-key command blocked behind a multi-key command that does not touch its worker")
	}
	select {
	case <-joined:
		t.Fatal("join executed while one involved worker was still busy")
	default:
	}
	close(gate)
	e.Quiesce(nil)
	select {
	case <-joined:
	default:
		t.Fatal("multi-key command never executed")
	}
	st := e.Stats()
	if st.Joins != 1 || st.Fences != 2 {
		t.Errorf("Stats = %+v, want Joins=1 Fences=2", st)
	}
	if st.JoinWaits != 1 {
		// Worker B's fence arrived while A was wedged, so it must have parked.
		t.Errorf("JoinWaits = %d, want 1", st.JoinWaits)
	}
}

// TestBarrierMultiKeyCompatMode pins the "before" behavior the conflict
// sweep benchmarks against: with BarrierMultiKey set, a cross-worker key set
// quiesces everything and runs inline, counted as a barrier, not a join.
func TestBarrierMultiKeyCompatMode(t *testing.T) {
	e := New(Config{Workers: 4, BarrierMultiKey: true, Keys: func(req []byte) []string {
		return strings.Split(string(req), ",")
	}})
	e.Start()
	defer e.Stop()
	keys := distinctWorkerKeys(e, 2)
	ran := false
	w := e.Submit(nil, []byte(keys[0]+","+keys[1]), func(*profiling.Thread) { ran = true })
	if w != Inline || !ran {
		t.Fatalf("compat multi-key submit: worker=%d ran=%v, want inline synchronous", w, ran)
	}
	st := e.Stats()
	if st.Barriers != 1 || st.Joins != 0 || st.Fences != 0 {
		t.Errorf("Stats = %+v, want Barriers=1 and no joins/fences", st)
	}
}

// TestSubmitHotPathAllocs is the scheduler hot-path allocs guard (the PR 4
// codec-guard discipline applied to dependency scheduling): steady-state
// Submit of a 2-key cross-worker command — pooled join node, by-value
// fences, scratch worker set — must not allocate beyond the occasional
// GC-emptied pool refill. The Keys func and task closure are reused so the
// measurement isolates the scheduler itself.
func TestSubmitHotPathAllocs(t *testing.T) {
	e := New(Config{Workers: 4, Keys: func(req []byte) []string {
		return multiKeyScratch
	}})
	e.Start()
	defer e.Stop()
	multiKeyScratch = distinctWorkerKeys(e, 2)
	task := Task(func(*profiling.Thread) {})
	req := []byte("txn")
	submit := func() {
		for range 16 {
			e.Submit(nil, req, task)
		}
		e.Quiesce(nil)
	}
	submit() // warm the pool and the workers
	allocs := testing.AllocsPerRun(100, submit) / 16
	if allocs > 0.5 {
		t.Errorf("multi-key Submit allocates %.2f allocs/op in steady state, want ~0", allocs)
	}
	t.Logf("multi-key Submit: %.3f allocs/op", allocs)
}

// multiKeyScratch is TestSubmitHotPathAllocs's reused key slice (package
// scope so the Keys closure itself captures nothing).
var multiKeyScratch []string

// TestStopUnblocksAndDropsPending verifies shutdown liveness: Stop while
// tasks are queued drains them, and Submit after Stop neither runs the task
// nor breaks a later Quiesce.
func TestStopUnblocksAndDropsPending(t *testing.T) {
	e := New(Config{Workers: 2, Keys: func(req []byte) []string { return []string{string(req)} }})
	e.Start()
	var mu sync.Mutex
	ran := 0
	for i := range 100 {
		e.Submit(nil, []byte(fmt.Sprintf("k%d", i%4)), func(*profiling.Thread) {
			mu.Lock()
			ran++
			mu.Unlock()
		})
	}
	e.Stop() // drains the 100 queued tasks
	mu.Lock()
	if ran != 100 {
		t.Errorf("ran = %d before Stop returned, want 100", ran)
	}
	mu.Unlock()
	e.Submit(nil, []byte("k0"), func(*profiling.Thread) { t.Error("task ran after Stop") })
	e.Quiesce(nil) // must not hang on the dropped task
	e.Stop()       // idempotent
}
