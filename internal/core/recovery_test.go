package core

import (
	"os"
	"path/filepath"
	"testing"

	"gosmr/internal/snapshot"
	"gosmr/internal/wire"
)

// persistTestSnap commits snap's service state as a single full generation
// via the manifest layout — the test-side stand-in for a drained cut.
func persistTestSnap(t *testing.T, d *snapDisk, snap wire.Snapshot) {
	t.Helper()
	chunks := snapshot.SplitBlob(snap.ServiceState, d.chunkCap)
	rc := snapshot.SplitBlob(snap.ReplyCache, d.chunkCap)
	if err := d.appendGen(snap.LastIncluded, snap.Groups, true, chunks, rc, snap.Topo); err != nil {
		t.Fatal(err)
	}
}

// TestLoadNewestSnapshotReportsSkips pins the skip-reporting contract: an
// unreadable newest manifest must not be silently passed over — the loader
// falls back to the older intact chain, names what it skipped (so the
// boot-time "clear the data dir" refusal can tell the operator why the cuts
// outran the usable snapshot), and quarantines the dead manifest to
// <name>.corrupt so the next scan neither re-trips nor re-logs it.
func TestLoadNewestSnapshotReportsSkips(t *testing.T) {
	dir := t.TempDir()
	d := newSnapDisk(dir, 4, nil)
	older := wire.Snapshot{LastIncluded: 9, ServiceState: []byte("old-state"), ReplyCache: []byte("rc")}
	persistTestSnap(t, d, older)
	// A newer manifest torn mid-write: the CRC cannot match.
	corruptName := manifestName(19)
	if err := os.WriteFile(filepath.Join(dir, corruptName), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	snap, skipped, err := newSnapDisk(dir, 4, nil).loadNewest()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.LastIncluded != 9 {
		t.Fatalf("loaded snapshot = %+v, want fallback with cut 9", snap)
	}
	if got, err := snapshot.DecodeChain(snap.ServiceState); err != nil ||
		string(snapshot.JoinChunks(got[0].Chunks)) != "old-state" {
		t.Fatalf("fallback chain = %v (err %v), want old-state", got, err)
	}
	if len(skipped) != 1 || skipped[0] != corruptName {
		t.Fatalf("skipped = %v, want [%s]", skipped, corruptName)
	}
	// The torn manifest was quarantined: renamed aside, preserved for
	// forensics, invisible to the next manifest scan.
	if _, err := os.Stat(filepath.Join(dir, corruptName)); !os.IsNotExist(err) {
		t.Fatalf("torn manifest still in namespace after quarantine (stat err %v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, corruptName+".corrupt")); err != nil {
		t.Fatalf("quarantined manifest missing: %v", err)
	}
	if snap, skipped, err = newSnapDisk(dir, 4, nil).loadNewest(); err != nil ||
		snap == nil || snap.LastIncluded != 9 || len(skipped) != 0 {
		t.Fatalf("re-scan after quarantine: snap=%+v skipped=%v err=%v, want cut 9 and no skips", snap, skipped, err)
	}

	// A manifest referencing a torn chunk file skips the same way.
	persistTestSnap(t, d, wire.Snapshot{LastIncluded: 19, ServiceState: []byte("newer-bad")})
	if err := os.WriteFile(filepath.Join(dir, genDirName(19, 0), "svc-00000.chk"), []byte("xx"), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, skipped, err = newSnapDisk(dir, 4, nil).loadNewest()
	if err != nil || snap == nil || snap.LastIncluded != 9 {
		t.Fatalf("torn chunk: snap=%+v err=%v, want fallback with cut 9", snap, err)
	}
	if len(skipped) != 1 || skipped[0] != manifestName(19) {
		t.Fatalf("torn chunk: skipped = %v, want [%s]", skipped, manifestName(19))
	}

	// All-intact directory: nothing skipped, reply cache round-trips.
	persistTestSnap(t, d, wire.Snapshot{LastIncluded: 29, ServiceState: []byte("new"), ReplyCache: []byte("rc2")})
	snap, skipped, err = newSnapDisk(dir, 4, nil).loadNewest()
	if err != nil || snap == nil || snap.LastIncluded != 29 || len(skipped) != 0 {
		t.Fatalf("after repair: snap=%+v skipped=%v err=%v, want cut 29 and no skips", snap, skipped, err)
	}
	if string(snap.ReplyCache) != "rc2" {
		t.Fatalf("reply cache = %q, want rc2", snap.ReplyCache)
	}

	// Empty/missing directory stays a clean no-snapshot boot.
	snap, skipped, err = newSnapDisk(filepath.Join(dir, "nope"), 4, nil).loadNewest()
	if err != nil || snap != nil || skipped != nil {
		t.Fatalf("missing dir: snap=%v skipped=%v err=%v, want nil/nil/nil", snap, skipped, err)
	}
}
