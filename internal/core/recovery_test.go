package core

import (
	"os"
	"path/filepath"
	"testing"

	"gosmr/internal/wire"
)

// TestLoadNewestSnapshotReportsSkips pins the skip-reporting contract: an
// unreadable newest snapshot must not be silently passed over — the loader
// falls back to the older intact one AND names what it skipped, so the
// boot-time "clear the data dir" refusal can tell the operator why the cuts
// outran the usable snapshot.
func TestLoadNewestSnapshotReportsSkips(t *testing.T) {
	dir := t.TempDir()
	older := wire.Snapshot{LastIncluded: 9, ServiceState: []byte("old"), ReplyCache: []byte("rc")}
	if err := persistSnapshot(dir, older); err != nil {
		t.Fatal(err)
	}
	// A newer snapshot whose payload was torn mid-write: the CRC cannot
	// match.
	corruptName := snapName(19)
	if err := os.WriteFile(filepath.Join(dir, corruptName), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	snap, skipped, err := loadNewestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.LastIncluded != 9 {
		t.Fatalf("loaded snapshot = %+v, want fallback with cut 9", snap)
	}
	if len(skipped) != 1 || skipped[0] != corruptName {
		t.Fatalf("skipped = %v, want [%s]", skipped, corruptName)
	}

	// All-intact directory: nothing skipped.
	if err := persistSnapshot(dir, wire.Snapshot{LastIncluded: 19, ServiceState: []byte("new")}); err != nil {
		t.Fatal(err)
	}
	snap, skipped, err = loadNewestSnapshot(dir)
	if err != nil || snap == nil || snap.LastIncluded != 19 || len(skipped) != 0 {
		t.Fatalf("after repair: snap=%+v skipped=%v err=%v, want cut 19 and no skips", snap, skipped, err)
	}

	// Empty/missing directory stays a clean no-snapshot boot.
	snap, skipped, err = loadNewestSnapshot(filepath.Join(dir, "nope"))
	if err != nil || snap != nil || skipped != nil {
		t.Fatalf("missing dir: snap=%v skipped=%v err=%v, want nil/nil/nil", snap, skipped, err)
	}
}
