package core

import (
	"math"
	"sync"
	"time"

	"gosmr/internal/wire"
)

// leaseManager tracks both sides of the heartbeat-carried leader lease that
// lets the leader serve linearizable reads without ordering them.
//
// Grant side (leader): every group-0 heartbeat to a peer carries a grant
// (duration + sequence number). The peer's LeaseAck echoes the sequence
// number, and the leader derives the promise's expiry from the moment IT
// SENT that grant, minus MaxClockSkew — so each side measures the interval
// on its own clock, and the skew margin absorbs rate drift between them. The
// lease is valid while a majority (counting the leader itself) holds
// unexpired promises for the current view.
//
// Promise side (follower): accepting a grant promises not to help elect a
// different leader until the promise expires. The promise is enforced in two
// places: the failure detector holds suspicions (fd.Options.HoldSuspect),
// and every group's Protocol thread defers incoming Prepares from anyone but
// the promised leader (holdPrepare). Together with the leader-side skew
// margin this gives the classic quorum-intersection argument: a new leader
// needs a majority of Prepare responses, the old leaseholder held promises
// from a majority, and any replica in both either let its promise expire
// first (so the leaseholder's matching ack expired even earlier, on the
// leader's conservative clock) or IS the old leader — which revokes its own
// lease by adopting the higher view before its PrepareOK leaves (see
// applyEffects: refreshHints precedes send emission).
type leaseManager struct {
	mu sync.Mutex

	enabled  bool
	id, n    int
	duration time.Duration
	skew     time.Duration
	topo     *wire.Topology // non-nil after a reconfiguration: quorum + active set

	// Grant side.
	seq    uint64
	grants [][]grantRec // outstanding grants per peer, oldest first
	ackVw  []wire.View  // view of each peer's newest promise
	ackExp []time.Time  // leader-side conservative expiry of that promise

	// Promise side.
	promLeader int
	promView   wire.View
	promExpiry time.Time
}

// grantRec remembers one grant in flight, so the matching ack can anchor the
// promise's expiry to the grant's send time.
type grantRec struct {
	seq  uint64
	sent time.Time
}

// maxOutstandingGrants bounds per-peer grant memory; acks normally arrive
// within one heartbeat round-trip, so a small window loses nothing.
const maxOutstandingGrants = 8

func newLeaseManager(id, n int, duration, skew time.Duration) *leaseManager {
	lm := &leaseManager{
		enabled:    duration > 0,
		id:         id,
		n:          n,
		duration:   duration,
		skew:       skew,
		grants:     make([][]grantRec, n),
		ackVw:      make([]wire.View, n),
		ackExp:     make([]time.Time, n),
		promLeader: -1,
	}
	for i := range lm.ackVw {
		lm.ackVw[i] = -1
	}
	return lm
}

// setTopology resizes the per-peer tables to an epoch-stamped topology and
// adopts its quorum/active set. Promises already recorded for surviving
// peers carry over.
func (lm *leaseManager) setTopology(t *wire.Topology) {
	if lm == nil {
		return
	}
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for len(lm.grants) < len(t.Peers) {
		lm.grants = append(lm.grants, nil)
		lm.ackVw = append(lm.ackVw, -1)
		lm.ackExp = append(lm.ackExp, time.Time{})
	}
	lm.n = len(lm.grants)
	lm.topo = t.Clone()
}

// grant issues a lease grant to peer for view, to be piggybacked on a group-0
// heartbeat. Returns the wire fields (duration in ms, sequence number) and
// whether a grant should be attached at all.
func (lm *leaseManager) grant(peer int) (uint32, uint64, bool) {
	if lm == nil || !lm.enabled {
		return 0, 0, false
	}
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if peer < 0 || peer >= len(lm.grants) {
		return 0, 0, false
	}
	lm.seq++
	g := lm.grants[peer]
	if len(g) >= maxOutstandingGrants {
		copy(g, g[1:])
		g = g[:len(g)-1]
	}
	lm.grants[peer] = append(g, grantRec{seq: lm.seq, sent: time.Now()})
	return uint32(lm.duration / time.Millisecond), lm.seq, true
}

// onAck records a peer's promise. The expiry is computed from the grant's
// SEND time on the leader's own clock, shortened by the skew bound, so the
// leader always stops relying on a promise before the follower stops
// honoring it.
func (lm *leaseManager) onAck(peer int, view wire.View, seq uint64) {
	if lm == nil || !lm.enabled || peer < 0 || peer >= lm.n {
		return
	}
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for _, gr := range lm.grants[peer] {
		if gr.seq != seq {
			continue
		}
		exp := gr.sent.Add(lm.duration - lm.skew)
		switch {
		case view > lm.ackVw[peer]:
			lm.ackVw[peer], lm.ackExp[peer] = view, exp
		case view == lm.ackVw[peer] && exp.After(lm.ackExp[peer]):
			lm.ackExp[peer] = exp
		}
		return
	}
}

// ackQuorumValid reports whether a majority (counting this replica) holds
// unexpired promises for view v at time now.
func (lm *leaseManager) ackQuorumValid(v wire.View, now time.Time) bool {
	if lm == nil || !lm.enabled {
		return false
	}
	lm.mu.Lock()
	defer lm.mu.Unlock()
	count := 1 // self: revocation is the viewHint flip, not a promise
	quorum := lm.n/2 + 1
	for p := range lm.n {
		if p == lm.id {
			continue
		}
		if lm.topo != nil && !lm.topo.Active(p) {
			continue
		}
		if lm.ackVw[p] == v && lm.ackExp[p].After(now) {
			count++
		}
	}
	if lm.topo != nil {
		quorum = lm.topo.Quorum()
	}
	return count >= quorum
}

// onGrant handles a grant received from the group-0 leader: extend the local
// promise and return the ack to send back, or nil for stale grants.
func (lm *leaseManager) onGrant(from int, view wire.View, durMS uint32, seq uint64) *wire.LeaseAck {
	if lm == nil || !lm.enabled {
		return nil
	}
	exp := time.Now().Add(time.Duration(durMS) * time.Millisecond)
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if view < lm.promView {
		return nil // grant from a view this replica already moved past
	}
	if view > lm.promView || exp.After(lm.promExpiry) {
		lm.promLeader, lm.promView, lm.promExpiry = from, view, exp
	}
	// Ack even a non-extending grant: its expiry (grant send time + duration
	// − skew on the leader's clock) is conservative regardless.
	return &wire.LeaseAck{View: view, Seq: seq}
}

// holdSuspect is the failure detector's HoldSuspect hook: while the local
// promise is unexpired, suppress suspicion (without marking the view
// suspected — the detector re-checks every tick and fires once the promise
// lapses).
func (lm *leaseManager) holdSuspect(wire.View) bool {
	if lm == nil || !lm.enabled {
		return false
	}
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return time.Now().Before(lm.promExpiry)
}

// holdPrepare returns how long an incoming Prepare from `from` must be
// deferred to honor the local promise (0 = process now). The promised leader
// itself is exempt: it cannot violate its own lease, and its new ballot must
// not be slowed down. Applied in EVERY ordering group — a sibling-group
// election completing under an active promise could commit writes the
// group-0 leaseholder's local reads would miss.
func (lm *leaseManager) holdPrepare(from int, now time.Time) time.Duration {
	if lm == nil || !lm.enabled {
		return 0
	}
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if from == lm.promLeader {
		return 0
	}
	if d := lm.promExpiry.Sub(now); d > 0 {
		return d
	}
	return 0
}

// leaseValid reports whether this replica may serve linearizable reads
// locally right now: it leads every ordering group in the current (group-0)
// view, every group's decision watermark has passed its read barrier — so
// every command a previous leadership could have acknowledged is decided
// here (leader completeness) — and a majority holds unexpired lease
// promises for that view. Lock-free except the ack scan; callable from any
// thread.
func (r *Replica) leaseValid(now time.Time) bool {
	if !r.leases.enabled {
		return false
	}
	v0 := wire.View(r.groups[0].viewHint.Load())
	for _, g := range r.groups {
		if !g.isLeader.Load() || wire.View(g.viewHint.Load()) != v0 {
			return false
		}
		if g.decidedUpTo.Load() < g.readBarrier.Load() {
			return false
		}
	}
	return r.leases.ackQuorumValid(v0, now)
}

// readFrontier returns the first merged index not yet known decided — the
// read index. Every merged index below it is decided in its group (merged
// index m lives in group m%G at slot m/G, and each group's watermark covers
// slot m/G), so a read that waits for local execution to pass frontier−1
// observes every command the cluster could have acknowledged when the
// frontier was snapshotted.
func (r *Replica) readFrontier() wire.InstanceID {
	g0 := int64(len(r.groups))
	f := int64(math.MaxInt64)
	for _, g := range r.groups {
		if v := g.decidedUpTo.Load()*g0 + int64(g.idx); v < f {
			f = v
		}
	}
	return wire.InstanceID(f)
}
