package core

import (
	"time"

	"gosmr/internal/batch"
	"gosmr/internal/profiling"
	"gosmr/internal/wire"
)

// runBatcher is one ordering group's Batcher thread (Sec. V-C1): it drains
// the group's RequestQueue, forms batches under the batching policy, and
// feeds the group's ProposalQueue. Building batches here — concurrently with
// the ordering protocol — takes that work off the Protocol thread's critical
// path; when the Protocol thread wants to start a ballot it simply takes a
// ready batch.
//
// Blocking on a full ProposalQueue is the second stage of the flow-control
// chain (Sec. V-E): a stalled Protocol thread stops the Batcher, which stops
// draining the RequestQueue, which stalls the ClientIO workers.
func (r *Replica) runBatcher(g *ordGroup) {
	defer r.wg.Done()
	th := r.profThread(gname("Batcher", g.idx))
	th.Transition(profiling.StateBusy)
	defer th.Transition(profiling.StateOther)

	b := batch.NewBuilder(r.cfg.Batch)
	// Requests reach this thread Retained (owned payloads) from the ClientIO
	// workers; once Flush copies them into the batch value their structs go
	// back to the decode pool.
	b.SetRecycle(func(req *wire.ClientRequest) { wire.Release(req) })
	for {
		// First request opens the batch (blocking take) and starts the
		// MaxDelay clock — an idle stretch before it never counts against
		// the batch's flush deadline.
		req, err := g.requestQ.Take(th)
		if err != nil {
			return
		}
		full := b.Add(req)
		// Keep filling until the size budget or the batch delay runs out.
		for !full {
			remaining := time.Until(b.Deadline())
			if remaining <= 0 {
				break
			}
			next, ok, err := g.requestQ.Poll(th, remaining)
			if err != nil {
				break // shutting down: flush what we have
			}
			if !ok {
				break // deadline expired
			}
			full = b.Add(next)
		}
		value := b.Flush()
		if value == nil {
			continue
		}
		r.batchesMade.Add(1)
		if err := g.proposalQ.Put(th, value); err != nil {
			return
		}
		// Nudge the Protocol thread; if the DispatcherQueue is busy it will
		// drain the ProposalQueue on its next event anyway.
		_, _ = g.dispatchQ.TryPut(event{kind: evProposalReady})
	}
}
