package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gosmr/internal/executor"
	"gosmr/internal/fd"
	"gosmr/internal/paxos"
	"gosmr/internal/profiling"
	"gosmr/internal/queue"
	"gosmr/internal/replycache"
	"gosmr/internal/retrans"
	"gosmr/internal/wire"
)

// Replica is one node of the replicated state machine, wired per Fig. 3 of
// the paper. Construct with NewReplica, then Start; Stop shuts every module
// down and waits for all goroutines.
type Replica struct {
	cfg Config
	svc Service
	n   int

	// Queues (Fig. 3).
	requestQ  *queue.Bounded[*wire.ClientRequest]
	proposalQ *queue.Bounded[[]byte]
	dispatchQ *queue.Bounded[event]
	decisionQ *queue.Bounded[decisionItem]
	sendQ     []*queue.Bounded[wire.Message] // per peer; nil at own index

	// Modules.
	clientIO *clientIO
	peerIO   *replicaIO
	detector *fd.Detector
	retr     *retrans.Retransmitter
	exec     *executor.Executor

	// Shared lock-free hints (the paper's "volatile variable" exceptions).
	viewHint    atomic.Int32 // current view
	leaderHint  atomic.Int32 // current leader ID
	isLeader    atomic.Bool  // leadership established
	decidedUpTo atomic.Int64 // decision watermark (for heartbeats)

	// Snapshot hand-off between ServiceManager and Protocol threads.
	snapshots *snapshotStore

	replyCache replycache.Cache
	registry   *clientRegistry

	// execSeq is the execution scheduler's at-most-once table (client →
	// highest scheduled seq + assigned worker). Owned exclusively by the
	// ServiceManager thread; never touched elsewhere.
	execSeq map[uint64]schedEntry

	// Counters for metrics and experiments.
	executed     atomic.Uint64 // requests executed
	repliesSent  atomic.Uint64
	batchesMade  atomic.Uint64
	droppedSends atomic.Uint64

	stop    chan struct{}
	stopped sync.Once
	started bool
	wg      sync.WaitGroup
}

// NewReplica validates cfg and builds an unstarted replica around svc.
func NewReplica(cfg Config, svc Service) (*Replica, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if svc == nil {
		return nil, fmt.Errorf("core: nil Service")
	}
	cfg = cfg.withDefaults()
	n := len(cfg.PeerAddrs)

	r := &Replica{
		cfg:       cfg,
		svc:       svc,
		n:         n,
		requestQ:  queue.NewBounded[*wire.ClientRequest]("RequestQueue", cfg.RequestQueueCap),
		proposalQ: queue.NewBounded[[]byte]("ProposalQueue", cfg.ProposalQueueCap),
		dispatchQ: queue.NewBounded[event]("DispatcherQueue", cfg.DispatchQueueCap),
		decisionQ: queue.NewBounded[decisionItem]("DecisionQueue", cfg.DecisionQueueCap),
		sendQ:     make([]*queue.Bounded[wire.Message], n),
		snapshots: &snapshotStore{},
		registry:  newClientRegistry(),
		execSeq:   make(map[uint64]schedEntry),
		stop:      make(chan struct{}),
	}
	for p := range n {
		if p != cfg.ID {
			r.sendQ[p] = queue.NewBounded[wire.Message](fmt.Sprintf("SendQueue-%d", p), cfg.SendQueueCap)
		}
	}
	if cfg.CoarseReplyCache {
		r.replyCache = replycache.NewCoarse()
	} else {
		r.replyCache = replycache.NewSharded()
	}
	// Execution stage: parallel when the service declares conflicts and more
	// than one worker is configured, otherwise the sequential fallback that
	// runs inline on the ServiceManager thread.
	var keys func([]byte) []string
	if ca, ok := svc.(ConflictAware); ok {
		keys = ca.Keys
	}
	r.exec = executor.New(executor.Config{
		Workers:   cfg.ExecutorWorkers,
		Keys:      keys,
		QueueCap:  cfg.ExecutorQueueCap,
		Profiling: cfg.Profiling,
	})
	r.leaderHint.Store(0) // leader of view 0
	return r, nil
}

// ID returns this replica's ID.
func (r *Replica) ID() int { return r.cfg.ID }

// N returns the cluster size.
func (r *Replica) N() int { return r.n }

// View returns the replica's current view (lock-free hint).
func (r *Replica) View() wire.View { return wire.View(r.viewHint.Load()) }

// Leader returns the current leader's ID (lock-free hint).
func (r *Replica) Leader() int { return int(r.leaderHint.Load()) }

// IsLeader reports whether this replica currently leads (Phase 1 complete).
func (r *Replica) IsLeader() bool { return r.isLeader.Load() }

// DecidedUpTo returns the decision watermark.
func (r *Replica) DecidedUpTo() wire.InstanceID {
	return wire.InstanceID(r.decidedUpTo.Load())
}

// Executed returns the number of requests executed so far.
func (r *Replica) Executed() uint64 { return r.executed.Load() }

// QueueStats reports the time-averaged lengths of the three queues of
// Table I plus the decision queue and, when parallel execution is enabled,
// each executor worker's queue (ExecutorQueue-i).
func (r *Replica) QueueStats() map[string]float64 {
	stats := map[string]float64{
		"RequestQueue":    r.requestQ.AvgLen(),
		"ProposalQueue":   r.proposalQ.AvgLen(),
		"DispatcherQueue": r.dispatchQ.AvgLen(),
		"DecisionQueue":   r.decisionQ.AvgLen(),
	}
	for name, avg := range r.exec.QueueStats() {
		stats[name] = avg
	}
	return stats
}

// ResetQueueStats restarts queue-average tracking (to discard warm-up).
func (r *Replica) ResetQueueStats() {
	r.requestQ.ResetStats()
	r.proposalQ.ResetStats()
	r.dispatchQ.ResetStats()
	r.decisionQ.ResetStats()
	r.exec.ResetQueueStats()
}

// Start launches every module. It returns once all listeners are bound and
// all module goroutines are running.
func (r *Replica) Start() error {
	if r.started {
		return fmt.Errorf("core: replica already started")
	}
	r.started = true

	node := paxos.NewNode(paxos.Options{
		ID:        r.cfg.ID,
		N:         r.n,
		Window:    r.cfg.Window,
		Snapshots: r.snapshots.get,
	})

	r.retr = retrans.New(retrans.Options{
		Period: r.cfg.RetransPeriod,
		Thread: r.cfg.Profiling.Register("Retransmitter"),
	})

	r.detector = fd.New(fd.Options{
		ID: r.cfg.ID, N: r.n,
		HeartbeatInterval: r.cfg.HeartbeatInterval,
		SuspectTimeout:    r.cfg.SuspectTimeout,
		SendHeartbeat:     r.sendHeartbeat,
		Suspect: func(v wire.View) {
			_, _ = r.dispatchQ.TryPut(event{kind: evSuspect, view: v})
		},
		Thread: r.cfg.Profiling.Register("FailureDetector"),
	})

	// ReplicaIO first: the protocol needs peer links to exist (sends to a
	// not-yet-connected peer are buffered in its SendQueue).
	peerIO, err := newReplicaIO(r)
	if err != nil {
		r.retr.Stop()
		r.detector.Stop()
		return err
	}
	r.peerIO = peerIO

	clientIO, err := newClientIO(r)
	if err != nil {
		r.peerIO.close()
		r.retr.Stop()
		r.detector.Stop()
		return err
	}
	r.clientIO = clientIO

	// Batcher thread (Sec. V-C1).
	r.wg.Add(1)
	go r.runBatcher()

	// Protocol thread (Sec. V-C2).
	r.wg.Add(1)
	go r.runProtocol(node)

	// Execution workers (parallel mode only), then the ServiceManager
	// thread (Sec. V-D) that schedules onto them.
	r.exec.Start()
	r.wg.Add(1)
	go r.runServiceManager()

	return nil
}

// Stop shuts the replica down and waits for every goroutine to exit. Safe to
// call more than once.
func (r *Replica) Stop() {
	r.stopped.Do(func() {
		close(r.stop)
		// Closing the queues unblocks every module loop; closing the
		// transports unblocks every I/O goroutine.
		r.requestQ.Close()
		r.proposalQ.Close()
		r.dispatchQ.Close()
		r.decisionQ.Close()
		for _, q := range r.sendQ {
			if q != nil {
				q.Close()
			}
		}
		// The executor is NOT stopped here: Submit and Stop would race on
		// the worker queues (a Put slipping into a just-closed queue after
		// its worker exited would leak an inflight count and hang Quiesce).
		// Instead the ServiceManager — the only Submit caller — stops the
		// executor itself once the closed DecisionQueue drains. Workers
		// never block (replies use TryPut), so a scheduler blocked on a
		// full worker queue always unblocks without intervention.
		if r.clientIO != nil {
			r.clientIO.close()
		}
		if r.peerIO != nil {
			r.peerIO.close()
		}
		if r.detector != nil {
			r.detector.Stop()
		}
		if r.retr != nil {
			r.retr.Stop()
		}
	})
	r.wg.Wait()
}

// sendHeartbeat is the failure detector's leader-role callback: it emits a
// heartbeat carrying the decision watermark straight onto the peer's
// SendQueue, without involving the Protocol thread.
func (r *Replica) sendHeartbeat(peer int) {
	if !r.isLeader.Load() {
		return
	}
	hb := &wire.Heartbeat{
		View:        wire.View(r.viewHint.Load()),
		DecidedUpTo: wire.InstanceID(r.decidedUpTo.Load()),
	}
	r.enqueueSend(peer, hb)
}

// enqueueSend places msg on peer's SendQueue without blocking; under
// overload messages are dropped and recovered by retransmission (the paper's
// Protocol thread never blocks on socket writes, Sec. V-B).
func (r *Replica) enqueueSend(peer int, msg wire.Message) {
	q := r.sendQ[peer]
	if q == nil {
		return
	}
	if ok, _ := q.TryPut(msg); !ok {
		r.droppedSends.Add(1)
	}
}

// broadcast enqueues msg to every peer.
func (r *Replica) broadcast(msg wire.Message) {
	for p, q := range r.sendQ {
		if q != nil {
			r.enqueueSend(p, msg)
		}
	}
}

// ClientAddr returns the bound client-facing address (useful when the
// configured address used an ephemeral port).
func (r *Replica) ClientAddr() string {
	if r.clientIO == nil {
		return r.cfg.ClientAddr
	}
	return r.clientIO.Addr()
}

// profThread registers a named thread when profiling is enabled.
func (r *Replica) profThread(name string) *profiling.Thread {
	return r.cfg.Profiling.Register(name)
}
