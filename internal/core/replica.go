package core

import (
	"errors"
	"fmt"
	"log"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"gosmr/internal/executor"
	"gosmr/internal/fd"
	"gosmr/internal/paxos"
	"gosmr/internal/profiling"
	"gosmr/internal/queue"
	"gosmr/internal/replycache"
	"gosmr/internal/retrans"
	"gosmr/internal/wal"
	"gosmr/internal/wire"
)

// ordGroup is one ordering group: an independent Batcher → Protocol pipeline
// with its own queues, replicated log (owned by its Protocol goroutine's
// paxos.Node), retransmitter, and lock-free view/leader/watermark hints. A
// replica runs Config.Groups of these; their decision streams meet in the
// merge stage (merger.go), which recombines them into the single total order
// the ServiceManager consumes.
type ordGroup struct {
	idx int

	requestQ  *queue.Bounded[*wire.ClientRequest]
	proposalQ *queue.Bounded[[]byte]
	dispatchQ *queue.Bounded[event]

	retr *retrans.Retransmitter

	// wal is the group's write-ahead log (nil without Config.DataDir).
	// gated reports that protocol output must wait for the WAL's durable
	// watermark (SyncBatch group commit; SyncAlways is durable inline and
	// SyncNone opts out of the guarantee).
	wal   *wal.WAL
	gated bool

	// Shared lock-free hints (the paper's "volatile variable" exceptions),
	// one set per group because views and watermarks are per group.
	viewHint    atomic.Int32
	leaderHint  atomic.Int32
	isLeader    atomic.Bool
	decidedUpTo atomic.Int64
	nextSlot    atomic.Int64 // log frontier hint, for cross-group alignment
	mergedUpTo  atomic.Int64 // slots of this group the merge stage has consumed
	readBarrier atomic.Int64 // first fresh instance of this leadership (lease reads)
}

// gname derives a per-group thread/queue name; group 0 keeps the paper's
// original names so single-group profiles and statistics read unchanged.
func gname(base string, idx int) string {
	if idx == 0 {
		return base
	}
	return fmt.Sprintf("%s-g%d", base, idx)
}

// Replica is one node of the replicated state machine, wired per Fig. 3 of
// the paper, with the ordering layer generalized to Config.Groups parallel
// Paxos groups feeding a deterministic merge stage. Construct with
// NewReplica, then Start; Stop shuts every module down and waits for all
// goroutines.
type Replica struct {
	cfg Config
	svc Service
	n   int

	// Ordering groups (Batcher + Protocol pipelines).
	groups []*ordGroup

	// MergeQueue: per-group decision streams → Merger; DecisionQueue:
	// merged total order → ServiceManager; SendQueues: per peer (copy-on-
	// write slice indexed by replica ID; nil at own index and at removed
	// peers' holes — reconfiguration swaps the slice, see reshapeSendQueues).
	mergeQ    *queue.Bounded[groupDecision]
	decisionQ *queue.Bounded[decisionItem]
	sendQs    atomic.Pointer[[]*queue.Bounded[wire.Message]]

	// topo is the committed epoch-stamped cluster topology (never nil after
	// NewReplica); pendingTopo hands a newly adopted topology to the Protocol
	// threads, which journal it and re-run Phase 1 at its BaseView. topoMu
	// serializes adoptTopology (including its side effects on the detector,
	// leases, and peer/client IO — see adoptTopology); reconfigMu serializes
	// proposeReconfig so two local proposals can never claim the same epoch;
	// faultCB makes Config.OnFaulted at-most-once.
	topo        atomic.Pointer[wire.Topology]
	pendingTopo atomic.Pointer[wire.Topology]
	topoMu      sync.Mutex
	reconfigMu  sync.Mutex
	faultCB     sync.Once

	// smTopo is the topology as of the config commands the ServiceManager
	// has applied in merged order — the epoch a snapshot cut is stamped
	// with. Owned by the ServiceManager thread (seeded before it starts);
	// kept separate from topo because a TopoUpdate from a peer can advance
	// topo ahead of this replica's own position in the log.
	smTopo *wire.Topology

	// Modules.
	clientIO *clientIO
	peerIO   *replicaIO
	detector *fd.Detector
	exec     *executor.Executor

	// Read path: leader-lease state and the ReadManager thread (lease.go,
	// reads.go), plus the applied-index waiter registry reads park in.
	leases  *leaseManager
	reads   *readMgr
	applied applyWaiters

	// groupKeys extracts conflict keys for group routing (nil when the
	// service is not ConflictAware; all requests then order in group 0).
	groupKeys func([]byte) []string

	// Snapshot machinery. snapshots is the cross-thread image store
	// (catch-up advertisements + chunk serving); snapDisk owns the durable
	// manifest/chunk layout (nil without DataDir); puller is the chunk-pull
	// client used during state transfer. snapChain, drain and forceFull are
	// the ServiceManager's drain state: the in-memory generation chain, the
	// in-flight background drain (nil when idle), and the flag forcing the
	// next cut to be full after a failed cut/drain/persist. Chain ownership
	// passes ServiceManager → drainer goroutine → ServiceManager through
	// the drain handle's done channel; no lock is needed.
	snapshots *snapshotStore
	snapDisk  *snapDisk
	puller    *snapPuller
	snapChain []memGen
	drain     *drainJob
	forceFull bool

	replyCache replycache.Cache
	registry   *clientRegistry

	// execSeq is the execution scheduler's at-most-once table (client →
	// highest scheduled seq + assigned worker). Owned exclusively by the
	// ServiceManager thread; never touched elsewhere.
	execSeq map[uint64]schedEntry

	// maxSlot is the highest group-local slot any group has opened — the
	// proposal frontier. Group leaders align to it by proposing no-ops
	// (Mencius-style skips) so the round-robin merge never waits a full
	// consensus round-trip on an idle group (see alignGroup in merger.go).
	maxSlot atomic.Int64

	// bootSnap is the snapshot recovery booted from (nil without DataDir or
	// on a fresh start); the Merger seeds its position from it.
	bootSnap *wire.Snapshot

	// Counters for metrics and experiments.
	executed       atomic.Uint64 // requests executed
	repliesSent    atomic.Uint64
	batchesMade    atomic.Uint64
	decidedMerged  atomic.Uint64 // non-empty batches delivered in merged order
	padsProposed   atomic.Uint64 // no-op batches proposed to unstall the merge
	droppedSends   atomic.Uint64
	stateTransfers atomic.Uint64 // snapshots installed from peers (catch-up)
	localReads     atomic.Uint64 // reads served on the lease/read-index path
	droppedBacklog atomic.Uint64 // stale SendQueue messages dropped on reconnect

	// Snapshot health counters (satellite observability: failures were
	// previously swallowed).
	snapshotFailures atomic.Uint64 // failed cut/drain/persist/pull stages
	transferResumed  atomic.Uint64 // staged bytes reused by resumed pulls
	lastSnapFailLog  atomic.Int64  // rate limit for snapshot failure logging

	// Disk-fault state. faulted latches when any group's WAL fail-stops
	// (write/fsync/seal error on the append path): the replica stops
	// participating — no heartbeats, no new output past the durable
	// watermark — so the quorum continues without it instead of being fed
	// acknowledgements the disk may not hold (the fsyncgate rule: a failed
	// fsync says nothing durable about the pages it covered, so retrying is
	// unsound). walFaults counts the fail-stop events; quarantines counts
	// corrupt on-disk artifacts (WAL segments, snapshot manifests) renamed
	// aside to *.corrupt during recovery.
	faulted     atomic.Bool
	walFaults   atomic.Uint64
	quarantines atomic.Uint64

	stop    chan struct{}
	stopped sync.Once
	started bool
	wg      sync.WaitGroup
}

// NewReplica validates cfg and builds an unstarted replica around svc.
func NewReplica(cfg Config, svc Service) (*Replica, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if svc == nil {
		return nil, fmt.Errorf("core: nil Service")
	}
	cfg = cfg.withDefaults()
	n := len(cfg.PeerAddrs)

	r := &Replica{
		cfg:       cfg,
		svc:       svc,
		n:         n,
		groups:    make([]*ordGroup, cfg.Groups),
		mergeQ:    queue.NewBounded[groupDecision]("MergeQueue", cfg.DecisionQueueCap),
		decisionQ: queue.NewBounded[decisionItem]("DecisionQueue", cfg.DecisionQueueCap),
		snapshots: &snapshotStore{},
		registry:  newClientRegistry(),
		execSeq:   make(map[uint64]schedEntry),
		stop:      make(chan struct{}),
	}
	seed := seedTopology(cfg)
	if err := seed.Validate(); err != nil {
		return nil, fmt.Errorf("core: seed topology: %w", err)
	}
	if !seed.Active(cfg.ID) {
		return nil, fmt.Errorf("core: replica %d is not an active member of the seed topology", cfg.ID)
	}
	r.topo.Store(seed)
	r.smTopo = seed
	r.puller = &snapPuller{resp: make(chan pulledChunk, 4)}
	if cfg.DataDir != "" {
		r.snapDisk = newSnapDisk(filepath.Join(cfg.DataDir, "snapshots"), cfg.SnapshotChunkBytes, cfg.FS)
	}
	for i := range r.groups {
		r.groups[i] = &ordGroup{
			idx:       i,
			requestQ:  queue.NewBounded[*wire.ClientRequest](gname("RequestQueue", i), cfg.RequestQueueCap),
			proposalQ: queue.NewBounded[[]byte](gname("ProposalQueue", i), cfg.ProposalQueueCap),
			dispatchQ: queue.NewBounded[event](gname("DispatcherQueue", i), cfg.DispatchQueueCap),
		}
	}
	sendQs := make([]*queue.Bounded[wire.Message], n)
	for p := range n {
		if p != cfg.ID && seed.Active(p) {
			sendQs[p] = queue.NewBounded[wire.Message](fmt.Sprintf("SendQueue-%d", p), cfg.SendQueueCap)
		}
	}
	r.sendQs.Store(&sendQs)
	if cfg.CoarseReplyCache {
		r.replyCache = replycache.NewCoarse()
	} else {
		r.replyCache = replycache.NewSharded()
	}
	// Execution stage: parallel when the service declares conflicts and more
	// than one worker is configured, otherwise the sequential fallback that
	// runs inline on the ServiceManager thread.
	if ca, ok := svc.(ConflictAware); ok {
		r.groupKeys = ca.Keys
	}
	r.exec = executor.New(executor.Config{
		Workers:         cfg.ExecutorWorkers,
		Keys:            r.groupKeys,
		QueueCap:        cfg.ExecutorQueueCap,
		BarrierMultiKey: cfg.ExecutorBarrierMultiKey,
		Profiling:       cfg.Profiling,
	})
	for _, g := range r.groups {
		g.leaderHint.Store(int32(seed.Leader(seed.BaseView)))
		g.viewHint.Store(int32(seed.BaseView))
	}
	r.leases = newLeaseManager(cfg.ID, n, cfg.LeaseDuration, cfg.MaxClockSkew)
	if seed.Epoch > 0 {
		r.leases.setTopology(seed)
	}
	r.applied.completed = -1
	return r, nil
}

// ID returns this replica's ID.
func (r *Replica) ID() int { return r.cfg.ID }

// N returns the cluster size.
func (r *Replica) N() int { return r.n }

// Groups returns the number of ordering groups.
func (r *Replica) Groups() int { return len(r.groups) }

// View returns group 0's current view (lock-free hint).
func (r *Replica) View() wire.View { return wire.View(r.groups[0].viewHint.Load()) }

// Leader returns group 0's current leader ID (lock-free hint). Groups
// normally share leadership since one failure detector drives them all.
func (r *Replica) Leader() int { return int(r.groups[0].leaderHint.Load()) }

// IsLeader reports whether this replica currently leads group 0 (Phase 1
// complete).
func (r *Replica) IsLeader() bool { return r.groups[0].isLeader.Load() }

// DecidedUpTo returns group 0's decision watermark.
func (r *Replica) DecidedUpTo() wire.InstanceID {
	return wire.InstanceID(r.groups[0].decidedUpTo.Load())
}

// Executed returns the number of requests executed so far.
func (r *Replica) Executed() uint64 { return r.executed.Load() }

// DecidedBatches returns the number of non-empty batches delivered in merged
// order so far (the ordering layer's useful output; merge-padding no-ops are
// excluded).
func (r *Replica) DecidedBatches() uint64 { return r.decidedMerged.Load() }

// PadsProposed returns the number of no-op batches this replica proposed to
// keep the merge stage advancing across idle groups.
func (r *Replica) PadsProposed() uint64 { return r.padsProposed.Load() }

// LeaseValid reports whether this replica currently holds a valid leader
// lease — i.e. whether it may serve linearizable reads from local state
// without ordering them.
func (r *Replica) LeaseValid() bool { return r.leaseValid(time.Now()) }

// LocalReads returns the number of reads served on the lease/read-index
// path (never ordered through the log).
func (r *Replica) LocalReads() uint64 { return r.localReads.Load() }

// DroppedBacklog returns the number of stale SendQueue messages dropped
// when a peer connection was replaced.
func (r *Replica) DroppedBacklog() uint64 { return r.droppedBacklog.Load() }

// StateTransfers returns the number of snapshots this replica installed
// from peers (catch-up state transfer). A replica restarted from its own
// DataDir recovers its durable prefix locally, so the restart tests assert
// this stays zero while survivors retain their logs.
func (r *Replica) StateTransfers() uint64 { return r.stateTransfers.Load() }

// SnapshotFailures returns the number of snapshot stages — cut, drain,
// persist, transfer pull — that have failed since start. A replica with a
// rising count keeps running on its full WAL, but its log is not being
// truncated; operators should alert on this.
func (r *Replica) SnapshotFailures() uint64 { return r.snapshotFailures.Load() }

// TransferResumedBytes returns the total bytes of staged snapshot data
// that resumed pulls reused instead of refetching (0 until a transfer
// survives a restart or reconnect mid-stream).
func (r *Replica) TransferResumedBytes() uint64 { return r.transferResumed.Load() }

// Faulted reports whether this replica has fail-stopped on a WAL disk
// fault. A faulted replica has shut down (or is shutting down): it sends no
// heartbeats and acknowledges nothing, so the rest of the quorum elects
// around it. Restarting from the same DataDir replays whatever the disk
// actually holds — the fail-stop guarantees that is a prefix of what was
// acknowledged.
func (r *Replica) Faulted() bool { return r.faulted.Load() }

// WALFaults returns the number of fail-stop WAL disk faults observed (at
// most one per group; the first latches the replica into Faulted).
func (r *Replica) WALFaults() uint64 { return r.walFaults.Load() }

// DiskQuarantines returns the number of corrupt on-disk artifacts (WAL
// segments, snapshot manifests) this replica renamed aside to *.corrupt —
// at boot or while scanning — instead of refusing to start or re-tripping
// on them every scan.
func (r *Replica) DiskQuarantines() uint64 { return r.quarantines.Load() }

// enterFault latches the fail-stop state and tears the replica down. It is
// the WAL's OnFault callback target, invoked from whatever goroutine first
// hit the disk fault — possibly a Protocol thread mid-drain — so the Stop
// must run on its own goroutine: Stop waits for every module including the
// caller, and wal.Close joins the Syncer that may be the caller.
func (r *Replica) enterFault(group int, err error) {
	r.walFaults.Add(1)
	if r.faulted.CompareAndSwap(false, true) {
		log.Printf("gosmr: replica %d: wal group %d disk fault, fail-stopping: %v", r.cfg.ID, group, err)
		r.fireFaulted(fmt.Sprintf("wal group %d disk fault: %v", group, err))
		go r.Stop()
	}
}

// maybeShrinkWAL reacts to an out-of-space error from a snapshot stage by
// dropping every group's WAL retention extras (catch-up generations and the
// byte-budget tail) down to the hard floor, then letting the failed stage
// retry on the next cut. ENOSPC is the one disk fault where degrading
// retention actually helps: the bytes we hold for lagging peers are exactly
// the bytes the checkpoint needs.
func (r *Replica) maybeShrinkWAL(err error) {
	if !errors.Is(err, syscall.ENOSPC) {
		return
	}
	removed := 0
	for _, g := range r.groups {
		if g.wal != nil {
			removed += g.wal.ShrinkRetention()
		}
	}
	if removed > 0 {
		log.Printf("gosmr: replica %d: out of space, dropped %d retained wal segment(s)", r.cfg.ID, removed)
	}
}

// ReplyCacheBytes returns the canonical (sorted, deterministic) marshaled
// reply cache — the byte string the cluster determinism tests compare
// across replicas, worker counts, and restarts.
func (r *Replica) ReplyCacheBytes() []byte { return r.replyCache.Marshal() }

// SnapshotImage returns a copy of the newest assembled snapshot's transfer
// image (cut + generation chain + reply cache in one deterministic byte
// string), or nil if no snapshot has been cut yet. Replicas that executed
// the same prefix must produce byte-identical images regardless of group
// count or worker count — the cluster determinism tests compare exactly
// this.
func (r *Replica) SnapshotImage() []byte { return r.snapshots.imageCopy() }

// QueueStats reports the time-averaged lengths of the three queues of
// Table I (per ordering group) plus the merge and decision queues and, when
// parallel execution is enabled, each executor worker's queue
// (ExecutorQueue-i).
func (r *Replica) QueueStats() map[string]float64 {
	stats := map[string]float64{
		"MergeQueue":    r.mergeQ.AvgLen(),
		"DecisionQueue": r.decisionQ.AvgLen(),
	}
	for _, g := range r.groups {
		stats[g.requestQ.Name()] = g.requestQ.AvgLen()
		stats[g.proposalQ.Name()] = g.proposalQ.AvgLen()
		stats[g.dispatchQ.Name()] = g.dispatchQ.AvgLen()
	}
	for name, avg := range r.exec.QueueStats() {
		stats[name] = avg
	}
	return stats
}

// ExecStats returns the executor's dependency-scheduler counters —
// dispatched tasks, global barriers, multi-key join nodes, fences enqueued,
// and fences that had to wait at their join. Safe to call while running.
func (r *Replica) ExecStats() executor.Stats { return r.exec.Stats() }

// ResetQueueStats restarts queue-average tracking (to discard warm-up).
func (r *Replica) ResetQueueStats() {
	for _, g := range r.groups {
		g.requestQ.ResetStats()
		g.proposalQ.ResetStats()
		g.dispatchQ.ResetStats()
	}
	r.mergeQ.ResetStats()
	r.decisionQ.ResetStats()
	r.exec.ResetQueueStats()
}

// Start launches every module. It returns once all listeners are bound and
// all module goroutines are running.
func (r *Replica) Start() error {
	if r.started {
		return fmt.Errorf("core: replica already started")
	}
	r.started = true

	// Crash-restart recovery: rebuild per-group logs and views from the
	// data directory before any module runs, and restore the service from
	// the newest durable snapshot so re-emitted decisions apply on top of
	// exactly the state they followed.
	var boot *bootState
	if r.cfg.DataDir != "" {
		b, err := r.recoverBoot()
		if err != nil {
			return err
		}
		boot = b
		if b.topo != nil {
			// The disk refines the seed topology (same epoch, committed
			// BaseView — recoverBoot refused any NEWER on-disk epoch):
			// install it before any module captures the shape.
			r.topoMu.Lock()
			r.topo.Store(b.topo)
			r.reshapeSendQueues(b.topo)
			r.topoMu.Unlock()
			r.leases.setTopology(b.topo)
			r.smTopo = b.topo
			log.Printf("gosmr: replica %d: booting in topology epoch %d (base view %d, from disk)",
				r.cfg.ID, b.topo.Epoch, b.topo.BaseView)
		}
		if b.snap != nil {
			if err := r.restoreFromSnapshot(*b.snap); err != nil {
				b.closeWALs()
				return err
			}
			r.bootSnap = b.snap
			r.applied.completed = int64(b.snap.LastIncluded)
		}
		topo := r.topo.Load()
		for i, g := range r.groups {
			gb := boot.groups[i]
			if gb.view < topo.BaseView {
				// A crash between commit and handoff can leave a group's
				// durable view below the adopted epoch's base view; flooring
				// it keeps every view this epoch uses on the new leader map.
				gb.view = topo.BaseView
				boot.groups[i] = gb
			}
			g.wal = gb.wal
			g.gated = r.cfg.SyncPolicy == wal.SyncBatch
			g.decidedUpTo.Store(int64(gb.log.FirstUndecided()))
			g.nextSlot.Store(int64(gb.log.Next()))
			g.viewHint.Store(int32(gb.view))
			g.leaderHint.Store(int32(topo.Leader(gb.view)))
		}
	}

	for _, g := range r.groups {
		g.retr = retrans.New(retrans.Options{
			Period: r.cfg.RetransPeriod,
			Thread: r.cfg.Profiling.Register(gname("Retransmitter", g.idx)),
		})
	}

	r.detector = fd.New(fd.Options{
		ID: r.cfg.ID, N: r.n,
		HeartbeatInterval: r.cfg.HeartbeatInterval,
		SuspectTimeout:    r.cfg.SuspectTimeout,
		SendHeartbeat:     r.sendHeartbeat,
		// Leases renew on heartbeats, so a leader under full proposal load
		// must keep sending them; and a follower holding a promise must not
		// help elect a replacement until the promise expires.
		ForceHeartbeat: r.leases.enabled,
		HoldSuspect:    r.leases.holdSuspect,
		Suspect: func(v wire.View) {
			// One failure detector serves every group: each maps the
			// suspicion onto its own view (see runProtocol).
			for _, g := range r.groups {
				_, _ = g.dispatchQ.TryPut(event{kind: evSuspect, view: v})
			}
		},
		Thread: r.cfg.Profiling.Register("FailureDetector"),
	})
	if topo := r.topo.Load(); topo.Epoch > 0 {
		r.detector.SetTopology(topo)
	}
	if boot != nil {
		// The failure detector resumes from the recovered view: if that
		// view's leader is gone, the suspect timeout rotates past it.
		r.detector.UpdateView(boot.groups[0].view)
	}

	stopSatellites := func() {
		r.detector.Stop()
		for _, g := range r.groups {
			g.retr.Stop()
		}
		boot.closeWALs()
	}

	// ReplicaIO first: the protocol needs peer links to exist (sends to a
	// not-yet-connected peer are buffered in its SendQueue).
	peerIO, err := newReplicaIO(r)
	if err != nil {
		stopSatellites()
		return err
	}
	r.peerIO = peerIO

	clientIO, err := newClientIO(r)
	if err != nil {
		r.peerIO.close()
		stopSatellites()
		return err
	}
	r.clientIO = clientIO

	// Per-group Batcher and Protocol threads (Sec. V-C1/V-C2, one pipeline
	// per ordering group). With a data directory, each node boots from its
	// recovered log and view, and the log starts journaling to the group's
	// WAL from here on (replay itself is never re-journaled).
	bootTopo := r.topo.Load()
	for _, g := range r.groups {
		opts := paxos.Options{
			ID:        r.cfg.ID,
			N:         r.n,
			Window:    r.cfg.Window,
			Group:     g.idx,
			Groups:    len(r.groups),
			Snapshots: r.snapshots.meta,
		}
		if bootTopo.Epoch > 0 {
			// Epoch-stamped clusters hand the node its topology (quorum and
			// view→leader map); epoch 0 keeps the legacy fixed shape. A fresh
			// start begins at the epoch's base view so every view this epoch
			// uses resolves on the new leader map.
			opts.Topology = bootTopo
			opts.View = bootTopo.BaseView
		}
		if boot != nil {
			gb := boot.groups[g.idx]
			gb.log.SetJournal(walJournal{w: gb.wal})
			opts.Log = gb.log
			opts.View = gb.view
			// Catch-up tier 2: serve decided values the in-memory log has
			// truncated from the group's WAL (it retains one checkpoint
			// generation below the cut), so moderately lagging peers refill
			// from this replica's disk instead of taking a full snapshot.
			w := gb.wal
			opts.ColdDecided = func(from, to wire.InstanceID, maxEntries int) ([]wire.DecidedValue, bool) {
				return w.ReadDecidedRange(from, to, maxEntries)
			}
		}
		node := paxos.NewNode(opts)
		r.wg.Add(2)
		go r.runBatcher(g)
		go r.runProtocol(g, node)
	}

	// Merge stage: recombines the per-group decision streams.
	r.wg.Add(1)
	go r.runMerger()

	// ReadManager: the lease/read-index read path (reads.go).
	r.reads = newReadMgr(r)
	r.wg.Add(1)
	go r.reads.run()

	// Execution workers (parallel mode only), then the ServiceManager
	// thread (Sec. V-D) that schedules onto them.
	r.exec.Start()
	r.wg.Add(1)
	go r.runServiceManager()

	return nil
}

// Stop shuts the replica down and waits for every goroutine to exit. Safe to
// call more than once.
func (r *Replica) Stop() {
	r.stopped.Do(func() {
		close(r.stop)
		// Closing the queues unblocks every module loop; closing the
		// transports unblocks every I/O goroutine.
		for _, g := range r.groups {
			g.requestQ.Close()
			g.proposalQ.Close()
			g.dispatchQ.Close()
		}
		r.mergeQ.Close()
		r.decisionQ.Close()
		if r.reads != nil {
			r.reads.q.Close()
		}
		for _, q := range *r.sendQs.Load() {
			if q != nil {
				q.Close()
			}
		}
		// The executor is NOT stopped here: Submit and Stop would race on
		// the worker queues (a Put slipping into a just-closed queue after
		// its worker exited would leak an inflight count and hang Quiesce).
		// Instead the ServiceManager — the only Submit caller — stops the
		// executor itself once the closed DecisionQueue drains. Workers
		// never block (replies use TryPut), so a scheduler blocked on a
		// full worker queue always unblocks without intervention.
		if r.clientIO != nil {
			r.clientIO.close()
		}
		if r.peerIO != nil {
			r.peerIO.close()
		}
		if r.detector != nil {
			r.detector.Stop()
		}
		for _, g := range r.groups {
			if g.retr != nil {
				g.retr.Stop()
			}
		}
	})
	r.wg.Wait()
	// WALs close only after every journaling goroutine has exited. A
	// graceful close drains pending appends; anything it would lose was
	// never observable outside this process (output is durability-gated).
	for _, g := range r.groups {
		if g.wal != nil {
			g.wal.Close()
		}
	}
}

// sendHeartbeat is the failure detector's leader-role callback: for every
// group this replica leads it emits a heartbeat carrying that group's
// decision watermark straight onto the peer's SendQueue, without involving
// the Protocol threads.
func (r *Replica) sendHeartbeat(peer int) {
	if r.faulted.Load() {
		// A fail-stopped replica must look dead: heartbeats from a leader
		// whose WAL cannot accept writes would keep followers from electing
		// a working one.
		return
	}
	for _, g := range r.groups {
		if !g.isLeader.Load() {
			continue
		}
		hb := &wire.Heartbeat{
			View:        wire.View(g.viewHint.Load()),
			DecidedUpTo: wire.InstanceID(g.decidedUpTo.Load()),
		}
		if g.idx == 0 {
			// Lease grants ride group-0 heartbeats only; the lease covers
			// the whole replica (validity checks every group's hints).
			if ms, seq, ok := r.leases.grant(peer); ok {
				hb.LeaseMS, hb.LeaseSeq = ms, seq
			}
		}
		r.enqueueSend(peer, wrapGroup(g.idx, hb))
	}
}

// wrapGroup tags a consensus message with its ordering group. Group 0 stays
// unwrapped: a single-group cluster speaks exactly the pre-group wire format.
func wrapGroup(group int, msg wire.Message) wire.Message {
	if group == 0 {
		return msg
	}
	return &wire.GroupMsg{Group: int32(group), Msg: msg}
}

// groupFor routes a client request to an ordering group by its first
// conflict key (executor.KeyHash, stable across replicas). Keyless/global
// requests — and every request of a non-ConflictAware service — order in
// group 0. Routing only balances load; the merge stage makes the total
// order deterministic regardless of where a request was ordered.
//
// Note the leader pays one extra Keys() extraction per request here, on the
// ClientIO path, in addition to the executor's post-consensus extraction —
// the two run in different pipeline stages, and carrying keys across
// consensus would put them on the wire. Keep Keys cheap.
func (r *Replica) groupFor(payload []byte) int {
	if len(r.groups) == 1 || r.groupKeys == nil {
		return 0
	}
	keys := r.groupKeys(payload)
	if len(keys) == 0 {
		return 0
	}
	return int(executor.KeyHash(keys[0]) % uint64(len(r.groups)))
}

// enqueueSend places msg on peer's SendQueue without blocking; under
// overload messages are dropped and recovered by retransmission (the paper's
// Protocol thread never blocks on socket writes, Sec. V-B).
func (r *Replica) enqueueSend(peer int, msg wire.Message) {
	q := r.sendQueue(peer)
	if q == nil {
		return
	}
	if ok, _ := q.TryPut(msg); !ok {
		r.droppedSends.Add(1)
	}
}

// broadcast enqueues msg to every active peer.
func (r *Replica) broadcast(msg wire.Message) {
	for _, q := range *r.sendQs.Load() {
		if q != nil {
			if ok, _ := q.TryPut(msg); !ok {
				r.droppedSends.Add(1)
			}
		}
	}
}

// ClientAddr returns the bound client-facing address (useful when the
// configured address used an ephemeral port).
func (r *Replica) ClientAddr() string {
	if r.clientIO == nil {
		return r.cfg.ClientAddr
	}
	return r.clientIO.Addr()
}

// profThread registers a named thread when profiling is enabled.
func (r *Replica) profThread(name string) *profiling.Thread {
	return r.cfg.Profiling.Register(name)
}
