package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gosmr/internal/service"
	"gosmr/internal/transport"
	"gosmr/internal/wire"
)

// mergeRun feeds the per-group streams into a mergeState in the given
// arrival order and returns the concatenated merged output.
func mergeRun(groups int, arrivals []groupDecision) []mergedDecision {
	m := newMergeState(groups)
	var out []mergedDecision
	for _, a := range arrivals {
		out = append(out, m.feed(a.group, a.item.id, a.item.value)...)
	}
	return out
}

// TestMergeDeterminismProperty is the merge-stage analogue of the executor
// determinism tests: for G in {1, 2, 4}, any interleaving of the per-group
// decision arrivals must yield the same merged sequence — the merge is a
// pure function of the per-group logs, not of delivery timing.
func TestMergeDeterminismProperty(t *testing.T) {
	for _, groups := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("groups=%d", groups), func(t *testing.T) {
			const slots = 40
			// Build each group's (deterministic) decision stream.
			streams := make([][]groupDecision, groups)
			for g := range groups {
				for s := range slots {
					streams[g] = append(streams[g], groupDecision{group: g,
						item: decisionItem{id: wire.InstanceID(s),
							value: []byte(fmt.Sprintf("g%d-s%d", g, s))}})
				}
			}
			// Reference: strictly in-order, group-major arrival.
			var reference []groupDecision
			for _, st := range streams {
				reference = append(reference, st...)
			}
			want := mergeRun(groups, reference)
			if len(want) != groups*slots {
				t.Fatalf("reference merge emitted %d of %d", len(want), groups*slots)
			}
			// The merged order is the round-robin over slots.
			for i, d := range want {
				if d.id != wire.InstanceID(i) {
					t.Fatalf("merged id %d at position %d", d.id, i)
				}
				exp := fmt.Sprintf("g%d-s%d", i%groups, i/groups)
				if string(d.value) != exp {
					t.Fatalf("merged[%d] = %q, want %q", i, d.value, exp)
				}
			}
			// Property: random interleavings (preserving each stream's
			// internal order, as the per-group channels do) agree exactly.
			for trial := range 50 {
				rng := rand.New(rand.NewSource(int64(1000*groups + trial)))
				idx := make([]int, groups)
				var arrivals []groupDecision
				for len(arrivals) < groups*slots {
					g := rng.Intn(groups)
					if idx[g] < slots {
						arrivals = append(arrivals, streams[g][idx[g]])
						idx[g]++
					}
				}
				got := mergeRun(groups, arrivals)
				if len(got) != len(want) {
					t.Fatalf("trial %d emitted %d of %d", trial, len(got), len(want))
				}
				for i := range got {
					if got[i].id != want[i].id || !bytes.Equal(got[i].value, want[i].value) {
						t.Fatalf("trial %d diverged at %d: %q vs %q", trial, i, got[i].value, want[i].value)
					}
				}
			}
		})
	}
}

// TestMergeSnapshotJump verifies that a snapshot surfacing mid-stream jumps
// every group's position to its share of the covered prefix, drops stale
// buffered decisions, and rejects stale or topology-mismatched snapshots.
func TestMergeSnapshotJump(t *testing.T) {
	const groups = 4
	m := newMergeState(groups)
	// Buffer some early decisions that the snapshot will supersede, one
	// ahead of it that must survive, and — crucially — the exact slot the
	// cursor will land on after the jump (merged index 100 = group 0,
	// slot 25): it must be emitted by the post-snapshot drain, not sit
	// buffered until unrelated traffic arrives.
	m.feed(1, 0, []byte("stale"))
	m.feed(2, 30, []byte("ahead"))
	m.feed(0, 25, []byte("cursor"))

	snap := &wire.Snapshot{LastIncluded: 99, Groups: groups}
	if !m.feedSnapshot(snap) {
		t.Fatal("snapshot rejected")
	}
	if m.next != 100 {
		t.Errorf("next = %d, want 100", m.next)
	}
	for g := range groups {
		if want := wire.GroupCut(99, groups, g); m.expect[g] != want {
			t.Errorf("expect[%d] = %d, want %d", g, m.expect[g], want)
		}
	}
	if len(m.pending[1]) != 0 {
		t.Error("stale pending decision survived the snapshot")
	}
	if len(m.pending[2]) != 1 {
		t.Error("ahead-of-snapshot pending decision was dropped")
	}
	// The jump landed the cursor on the buffered group-0 slot 25: the
	// post-snapshot drain must emit it as merged index 100 immediately.
	if out := m.drain(); len(out) != 1 || out[0].id != 100 || string(out[0].value) != "cursor" {
		t.Fatalf("post-snapshot drain = %+v, want the buffered cursor slot at merged index 100", out)
	}

	// Stale snapshot (behind the merge position) is rejected.
	if m.feedSnapshot(&wire.Snapshot{LastIncluded: 50, Groups: groups}) {
		t.Error("stale snapshot accepted")
	}
	// Topology mismatch is rejected.
	if m.feedSnapshot(&wire.Snapshot{LastIncluded: 500, Groups: 2}) {
		t.Error("mismatched-groups snapshot accepted")
	}

	// The merge resumes exactly at the post-drain round-robin position:
	// merged index 101 belongs to group 101%4 = 1, slot 101/4 = 25.
	out := m.feed(1, 25, []byte("resume"))
	if len(out) != 1 || out[0].id != 101 || string(out[0].value) != "resume" {
		t.Errorf("post-snapshot feed = %+v", out)
	}
}

// TestGroupClusterDeterminism drives the randomized mixed-conflict KV
// workload through a 3-replica cluster across ordering-group counts {1,2,4}
// × executor workers {1,8} and requires every replica to end with
// byte-identical service snapshots and reply caches: the merge stage keeps
// the total order — and therefore execution, at-most-once classification,
// and snapshot state — deterministic regardless of how requests spread over
// groups and workers.
func TestGroupClusterDeterminism(t *testing.T) {
	const (
		clients       = 6
		reqsPerClient = 30
		sharedKeys    = 3
	)
	for _, groups := range []int{1, 2, 4} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("groups=%d,workers=%d", groups, workers), func(t *testing.T) {
				net := transport.NewInproc(0)
				peers := []string{"gdet-0", "gdet-1", "gdet-2"}
				svcs := make([]*service.KV, 3)
				reps := make([]*Replica, 3)
				for i := range 3 {
					svcs[i] = service.NewKV()
					r, err := NewReplica(Config{
						ID: i, PeerAddrs: peers, ClientAddr: fmt.Sprintf("gdet-c%d", i),
						Network: net, Batch: batchPolicy(),
						Groups: groups, ExecutorWorkers: workers,
					}, svcs[i])
					if err != nil {
						t.Fatal(err)
					}
					if err := r.Start(); err != nil {
						t.Fatal(err)
					}
					defer r.Stop()
					reps[i] = r
				}
				waitAllGroupLeaders(t, reps[0])

				var wg sync.WaitGroup
				for c := range clients {
					wg.Add(1)
					go func() {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(1000*groups + 100*workers + c)))
						conn, err := net.Dial("gdet-c0")
						if err != nil {
							t.Error(err)
							return
						}
						defer conn.Close()
						for seq := 1; seq <= reqsPerClient; seq++ {
							var payload []byte
							switch p := rng.Intn(100); {
							case p < 5:
								payload = []byte{0xEE} // unknown opcode: global barrier, group 0
							case p < 40:
								key := fmt.Sprintf("hot-%d", rng.Intn(sharedKeys))
								payload = service.EncodePut(key, []byte(fmt.Sprintf("c%d-s%d", c, seq)))
							case p < 55:
								payload = service.EncodeGet(fmt.Sprintf("hot-%d", rng.Intn(sharedKeys)))
							case p < 65:
								payload = service.EncodeDel(fmt.Sprintf("hot-%d", rng.Intn(sharedKeys)))
							default:
								key := fmt.Sprintf("c%d-k%d", c, rng.Intn(4))
								payload = service.EncodePut(key, []byte(fmt.Sprintf("v%d", seq)))
							}
							req := &wire.ClientRequest{ClientID: uint64(300 + c), Seq: uint64(seq), Payload: payload}
							// Raw wire client: resend on a redirect reply
							// (a group whose Phase 1 has not finished yet
							// answers OK:false) instead of silently losing
							// the request.
							for {
								if err := conn.WriteFrame(wire.Marshal(req)); err != nil {
									t.Error(err)
									return
								}
								frame, err := conn.ReadFrame()
								if err != nil {
									t.Error(err)
									return
								}
								msg, err := wire.Unmarshal(frame)
								if err != nil {
									t.Error(err)
									return
								}
								if reply, ok := msg.(*wire.ClientReply); ok && reply.OK {
									break
								}
								time.Sleep(2 * time.Millisecond)
							}
						}
					}()
				}
				wg.Wait()

				// Every replica (leader and followers) must execute the full log.
				total := uint64(clients * reqsPerClient)
				deadline := time.Now().Add(15 * time.Second)
				for _, r := range reps {
					for r.Executed() < total && time.Now().Before(deadline) {
						time.Sleep(2 * time.Millisecond)
					}
					if got := r.Executed(); got != total {
						t.Fatalf("replica %d executed %d of %d", r.ID(), got, total)
					}
				}

				// Byte-identical service snapshots and reply caches across
				// the cluster: the merged order was the same everywhere.
				wantSnap, err := svcs[0].Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				wantCache := reps[0].replyCache.Marshal()
				for i := 1; i < 3; i++ {
					snap, err := svcs[i].Snapshot()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(wantSnap, snap) {
						t.Errorf("replica %d service snapshot diverged from replica 0", i)
					}
					if !bytes.Equal(wantCache, reps[i].replyCache.Marshal()) {
						t.Errorf("replica %d reply cache diverged from replica 0", i)
					}
				}
			})
		}
	}
}

// waitAllGroupLeaders blocks until r leads every ordering group (each
// group's Phase 1 completes independently; tests that send raw requests to
// arbitrary groups must wait for all of them, not just group 0).
func waitAllGroupLeaders(t *testing.T, r *Replica) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for _, g := range r.groups {
		for !g.isLeader.Load() {
			if !time.Now().Before(deadline) {
				t.Fatalf("group %d never established leadership", g.idx)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// TestMultiGroupObservability verifies the per-group queues surface in
// QueueStats under their group-suffixed names and that requests spread over
// multiple groups on a multi-group leader.
func TestMultiGroupObservability(t *testing.T) {
	net := transport.NewInproc(0)
	r, err := NewReplica(Config{
		ID: 0, PeerAddrs: []string{"mgobs-peer"}, ClientAddr: "mgobs-client",
		Network: net, Batch: batchPolicy(), Groups: 2,
	}, service.NewKV())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	waitAllGroupLeaders(t, r)

	stats := r.QueueStats()
	for _, name := range []string{
		"RequestQueue", "ProposalQueue", "DispatcherQueue",
		"RequestQueue-g1", "ProposalQueue-g1", "DispatcherQueue-g1",
		"MergeQueue", "DecisionQueue",
	} {
		if _, ok := stats[name]; !ok {
			t.Errorf("QueueStats missing %s (have %v)", name, stats)
		}
	}

	conn, err := net.Dial("mgobs-client")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Enough distinct keys that both groups see traffic.
	for seq := 1; seq <= 32; seq++ {
		req := &wire.ClientRequest{ClientID: 91, Seq: uint64(seq),
			Payload: service.EncodePut(fmt.Sprintf("mg-key-%d", seq), []byte("v"))}
		if err := conn.WriteFrame(wire.Marshal(req)); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.ReadFrame(); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Executed(); got != 32 {
		t.Errorf("Executed = %d, want 32", got)
	}
	if got := r.DecidedBatches(); got == 0 {
		t.Error("DecidedBatches = 0 after traffic")
	}
	// Both groups decided instances (keys spread across them).
	for g, grp := range r.groups {
		if grp.decidedUpTo.Load() == 0 {
			t.Errorf("group %d decided nothing (routing did not spread)", g)
		}
	}
}
