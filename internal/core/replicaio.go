package core

import (
	"fmt"
	"sync"
	"time"

	"gosmr/internal/profiling"
	"gosmr/internal/transport"
	"gosmr/internal/wire"
)

// peerLink manages the single connection to one peer, surviving reconnects.
// The replica with the higher ID dials; the lower-ID side accepts, so each
// pair has exactly one canonical connection.
type peerLink struct {
	peer   int
	mu     sync.Mutex
	cond   *sync.Cond
	conn   transport.FrameConn
	gen    int // bumped on every (re)connect, to pair failures with conns
	closed bool
}

func newPeerLink(peer int) *peerLink {
	l := &peerLink{peer: peer}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// get blocks until a connection is available (or the link is closed).
func (l *peerLink) get() (transport.FrameConn, int, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.conn == nil && !l.closed {
		l.cond.Wait()
	}
	if l.closed {
		return nil, 0, false
	}
	return l.conn, l.gen, true
}

// current returns the connection without blocking (nil if none).
func (l *peerLink) current() (transport.FrameConn, int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.conn, l.gen
}

// set installs a fresh connection, replacing (and closing) any previous one.
func (l *peerLink) set(conn transport.FrameConn) {
	l.mu.Lock()
	old := l.conn
	if l.closed {
		l.mu.Unlock()
		_ = conn.Close()
		return
	}
	l.conn = conn
	l.gen++
	l.cond.Broadcast()
	l.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
}

// fail reports that the connection of generation gen broke; stale reports
// (about already-replaced connections) are ignored.
func (l *peerLink) fail(gen int) {
	l.mu.Lock()
	if l.gen != gen || l.conn == nil {
		l.mu.Unlock()
		return
	}
	old := l.conn
	l.conn = nil
	l.cond.Broadcast()
	l.mu.Unlock()
	_ = old.Close()
}

// close tears the link down permanently.
func (l *peerLink) close() {
	l.mu.Lock()
	l.closed = true
	old := l.conn
	l.conn = nil
	l.cond.Broadcast()
	l.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
}

// disconnected reports whether the link currently has no connection.
func (l *peerLink) disconnected() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.conn == nil && !l.closed
}

// replicaIO is the ReplicaIO module (Sec. V-B): blocking I/O with two
// dedicated threads per peer socket — a reader that deserializes into the
// DispatcherQueue and a sender that drains the peer's SendQueue. The
// dedicated sender prevents the Protocol thread from ever blocking on a
// socket write to a slow or crashed peer (the distributed-deadlock scenario
// of Sec. V-B).
type replicaIO struct {
	r        *Replica
	listener transport.Listener
	links    []*peerLink

	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// newReplicaIO binds the peer listener, starts dialers toward lower-ID
// peers, and launches the per-peer reader/sender threads.
func newReplicaIO(r *Replica) (*replicaIO, error) {
	io := &replicaIO{
		r:     r,
		links: make([]*peerLink, r.n),
		stop:  make(chan struct{}),
	}
	if r.n > 1 {
		l, err := r.cfg.Network.Listen(r.cfg.PeerAddrs[r.cfg.ID])
		if err != nil {
			return nil, fmt.Errorf("core: peer listener: %w", err)
		}
		io.listener = l
		io.wg.Add(1)
		go io.runAcceptLoop()
	}
	for p := range r.n {
		if p == r.cfg.ID {
			continue
		}
		io.links[p] = newPeerLink(p)
		if p < r.cfg.ID {
			io.wg.Add(1)
			go io.runDialer(p)
		}
		io.wg.Add(2)
		go io.runReader(p, r.profThread(fmt.Sprintf("ReplicaIORcv-%d", p)))
		go io.runSender(p, r.profThread(fmt.Sprintf("ReplicaIOSnd-%d", p)))
	}
	return io, nil
}

// runAcceptLoop accepts connections from higher-ID peers; the first frame
// must be a Hello identifying the dialer.
func (io *replicaIO) runAcceptLoop() {
	defer io.wg.Done()
	for {
		conn, err := io.listener.Accept()
		if err != nil {
			return
		}
		io.wg.Add(1)
		go func() {
			defer io.wg.Done()
			frame, err := conn.ReadFrame()
			if err != nil {
				_ = conn.Close()
				return
			}
			msg, err := wire.Unmarshal(frame)
			if err != nil {
				_ = conn.Close()
				return
			}
			hello, ok := msg.(*wire.Hello)
			if !ok || int(hello.ID) <= io.r.cfg.ID || int(hello.ID) >= io.r.n {
				_ = conn.Close()
				return
			}
			io.links[hello.ID].set(conn)
		}()
	}
}

// runDialer maintains the outbound connection to a lower-ID peer,
// redialling with backoff whenever it drops.
func (io *replicaIO) runDialer(peer int) {
	defer io.wg.Done()
	link := io.links[peer]
	backoff := 10 * time.Millisecond
	const maxBackoff = time.Second
	for {
		select {
		case <-io.stop:
			return
		default:
		}
		if !link.disconnected() {
			// Connected: poll for failure. The reader/sender call fail() on
			// error, flipping disconnected back to true.
			select {
			case <-io.stop:
				return
			case <-time.After(20 * time.Millisecond):
			}
			continue
		}
		conn, err := io.r.cfg.Network.Dial(io.r.cfg.PeerAddrs[peer])
		if err == nil {
			err = conn.WriteFrame(wire.Marshal(&wire.Hello{ID: int32(io.r.cfg.ID)}))
			if err == nil {
				link.set(conn)
				backoff = 10 * time.Millisecond
				continue
			}
			_ = conn.Close()
		}
		select {
		case <-io.stop:
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// runReader is the ReplicaIORcv thread for one peer: read, deserialize,
// touch the failure detector, and dispatch to the owning group's Protocol
// thread (GroupMsg envelopes demultiplex the shared connection; bare
// consensus messages belong to group 0, the pre-group wire format).
func (io *replicaIO) runReader(peer int, th *profiling.Thread) {
	defer io.wg.Done()
	th.Transition(profiling.StateBusy)
	defer th.Transition(profiling.StateOther)
	link := io.links[peer]
	for {
		th.Transition(profiling.StateOther) // blocked on socket read
		conn, gen, ok := link.get()
		if !ok {
			return
		}
		frame, err := conn.ReadFrame()
		th.Transition(profiling.StateBusy)
		if err != nil {
			link.fail(gen)
			continue
		}
		msg, err := wire.Unmarshal(frame)
		if err != nil {
			continue
		}
		group := 0
		if gm, ok := msg.(*wire.GroupMsg); ok {
			group = int(gm.Group)
			msg = gm.Msg
			if group < 0 || group >= len(io.r.groups) {
				continue // unknown group: misconfigured peer; drop
			}
		}
		io.r.detector.TouchRecv(peer)
		if err := io.r.groups[group].dispatchQ.Put(th, event{kind: evPeerMsg, from: peer, msg: msg}); err != nil {
			return
		}
	}
}

// runSender is the ReplicaIOSnd thread for one peer: take from the
// SendQueue, serialize, write. When the transport buffers writes
// (transport.BatchWriter), the sender keeps draining the queue without
// flushing and flushes only once the queue is empty, so a burst of
// back-to-back frames — a window's worth of Proposes, a batch of Accepts —
// coalesces into one syscall instead of one per message.
func (io *replicaIO) runSender(peer int, th *profiling.Thread) {
	defer io.wg.Done()
	th.Transition(profiling.StateBusy)
	defer th.Transition(profiling.StateOther)
	link := io.links[peer]
	q := io.r.sendQ[peer]
	for {
		msg, err := q.Take(th)
		if err != nil {
			return
		}
		th.Transition(profiling.StateOther) // possibly blocked on socket write
		conn, gen, ok := link.get()
		if !ok {
			return
		}
		bw, buffered := conn.(transport.BatchWriter)
		werr := writeMsg(conn, bw, buffered, msg)
		if werr == nil && buffered {
			// Drain the backlog into the write buffer before flushing.
			for {
				next, ok := q.TryTake()
				if !ok {
					break
				}
				if werr = writeMsg(conn, bw, true, next); werr != nil {
					break
				}
			}
			if werr == nil {
				werr = bw.Flush()
			}
		}
		th.Transition(profiling.StateBusy)
		if werr != nil {
			link.fail(gen)
			continue // messages dropped; retransmission recovers them
		}
		io.r.detector.TouchSent(peer)
	}
}

// writeMsg serializes and writes one message, buffered when supported.
func writeMsg(conn transport.FrameConn, bw transport.BatchWriter, buffered bool, msg wire.Message) error {
	frame := wire.Marshal(msg)
	if buffered {
		return bw.WriteFrameNoFlush(frame)
	}
	return conn.WriteFrame(frame)
}

// close tears down the module and waits for all its goroutines.
func (io *replicaIO) close() {
	io.once.Do(func() {
		close(io.stop)
		if io.listener != nil {
			_ = io.listener.Close()
		}
		for _, l := range io.links {
			if l != nil {
				l.close()
			}
		}
	})
	io.wg.Wait()
}
