package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gosmr/internal/profiling"
	"gosmr/internal/transport"
	"gosmr/internal/wire"
)

// peerLink manages the single connection to one peer, surviving reconnects.
// The replica with the higher ID dials; the lower-ID side accepts, so each
// pair has exactly one canonical connection.
type peerLink struct {
	peer   int
	mu     sync.Mutex
	cond   *sync.Cond
	conn   transport.FrameConn
	gen    int // bumped on every (re)connect, to pair failures with conns
	closed bool

	// lastTopo rate-limits the TopoUpdate answered to this peer's
	// mismatched-epoch frames (unix nanos of the last send).
	lastTopo atomic.Int64
}

func newPeerLink(peer int) *peerLink {
	l := &peerLink{peer: peer}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// get blocks until a connection is available (or the link is closed).
func (l *peerLink) get() (transport.FrameConn, int, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.conn == nil && !l.closed {
		l.cond.Wait()
	}
	if l.closed {
		return nil, 0, false
	}
	return l.conn, l.gen, true
}

// current returns the connection without blocking (nil if none).
func (l *peerLink) current() (transport.FrameConn, int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.conn, l.gen
}

// set installs a fresh connection, replacing (and closing) any previous one.
func (l *peerLink) set(conn transport.FrameConn) {
	l.mu.Lock()
	old := l.conn
	if l.closed {
		l.mu.Unlock()
		_ = conn.Close()
		return
	}
	l.conn = conn
	l.gen++
	l.cond.Broadcast()
	l.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
}

// fail reports that the connection of generation gen broke; stale reports
// (about already-replaced connections) are ignored.
func (l *peerLink) fail(gen int) {
	l.mu.Lock()
	if l.gen != gen || l.conn == nil {
		l.mu.Unlock()
		return
	}
	old := l.conn
	l.conn = nil
	l.cond.Broadcast()
	l.mu.Unlock()
	_ = old.Close()
}

// close tears the link down permanently.
func (l *peerLink) close() {
	l.mu.Lock()
	l.closed = true
	old := l.conn
	l.conn = nil
	l.cond.Broadcast()
	l.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
}

// disconnected reports whether the link currently has no connection.
func (l *peerLink) disconnected() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.conn == nil && !l.closed
}

// isClosed reports whether the link was torn down permanently.
func (l *peerLink) isClosed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// replicaIO is the ReplicaIO module (Sec. V-B): blocking I/O with two
// dedicated threads per peer socket — a reader that deserializes into the
// DispatcherQueue and a sender that drains the peer's SendQueue. The
// dedicated sender prevents the Protocol thread from ever blocking on a
// socket write to a slow or crashed peer (the distributed-deadlock scenario
// of Sec. V-B).
type replicaIO struct {
	r        *Replica
	listener transport.Listener

	mu      sync.Mutex
	links   []*peerLink // indexed by replica ID; nil = self or removed
	stopped bool

	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// newReplicaIO binds the peer listener, starts dialers toward lower-ID
// peers, and launches the per-peer reader/sender threads. The peer set comes
// from the boot topology; reconfigurations grow or shrink it through
// applyTopology.
func newReplicaIO(r *Replica) (*replicaIO, error) {
	io := &replicaIO{
		r:    r,
		stop: make(chan struct{}),
	}
	t := r.topo.Load()
	// A reconfigured cluster listens even when currently alone: a later
	// AddReplica needs somewhere for the joiner to dial.
	if t.N() > 1 || t.Epoch > 0 {
		l, err := r.cfg.Network.Listen(t.Peers[r.cfg.ID])
		if err != nil {
			return nil, fmt.Errorf("core: peer listener: %w", err)
		}
		io.listener = l
		io.wg.Add(1)
		go io.runAcceptLoop()
	}
	io.mu.Lock()
	for p := range t.Peers {
		if p != r.cfg.ID && t.Active(p) {
			io.spawnPeerLocked(p)
		}
	}
	io.mu.Unlock()
	return io, nil
}

// spawnPeerLocked creates the link and per-peer threads for one active peer.
// Caller holds io.mu.
func (io *replicaIO) spawnPeerLocked(peer int) {
	for len(io.links) <= peer {
		io.links = append(io.links, nil)
	}
	l := newPeerLink(peer)
	io.links[peer] = l
	if peer < io.r.cfg.ID {
		io.wg.Add(1)
		go io.runDialer(peer, l)
	}
	io.wg.Add(2)
	go io.runReader(peer, l, io.r.profThread(fmt.Sprintf("ReplicaIORcv-%d", peer)))
	go io.runSender(peer, l, io.r.profThread(fmt.Sprintf("ReplicaIOSnd-%d", peer)))
}

// linkFor returns peer's link (nil for self, removed, or unknown IDs).
func (io *replicaIO) linkFor(peer int) *peerLink {
	io.mu.Lock()
	defer io.mu.Unlock()
	if peer < 0 || peer >= len(io.links) {
		return nil
	}
	return io.links[peer]
}

// applyTopology reshapes the peer set to a newly adopted topology: links for
// added replicas are created (the joiner has the higher ID, so it dials us —
// our side just needs the link, reader, and sender ready), links for removed
// replicas are closed, terminating their threads. Idempotent.
func (io *replicaIO) applyTopology(t *wire.Topology) {
	io.mu.Lock()
	defer io.mu.Unlock()
	if io.stopped {
		return
	}
	for p, addr := range t.Peers {
		switch {
		case p == io.r.cfg.ID:
		case addr == "":
			if p < len(io.links) && io.links[p] != nil {
				// Detach now (the fence stops honoring the peer immediately)
				// but close after a grace delay: the sender is still draining
				// its closed queue, whose last item is the farewell TopoUpdate
				// telling a lagging removed replica WHY its cluster vanished.
				l := io.links[p]
				io.links[p] = nil
				io.wg.Add(1)
				go func() {
					defer io.wg.Done()
					select {
					case <-io.stop:
					case <-time.After(250 * time.Millisecond):
					}
					l.close()
				}()
			}
		case p >= len(io.links) || io.links[p] == nil:
			io.spawnPeerLocked(p)
		}
	}
}

// runAcceptLoop accepts connections from higher-ID peers; the first frame
// must be a Hello identifying the dialer (always sent unwrapped — the
// handshake predates any epoch agreement). Membership is checked against the
// CURRENT topology: a joiner dialing a replica that has not yet adopted the
// epoch that added it is refused and retries with backoff.
func (io *replicaIO) runAcceptLoop() {
	defer io.wg.Done()
	for {
		conn, err := io.listener.Accept()
		if err != nil {
			return
		}
		io.wg.Add(1)
		go func() {
			defer io.wg.Done()
			frame, err := conn.ReadFrame()
			if err != nil {
				_ = conn.Close()
				return
			}
			msg, err := wire.Unmarshal(frame)
			if err != nil {
				_ = conn.Close()
				return
			}
			hello, ok := msg.(*wire.Hello)
			if !ok || int(hello.ID) <= io.r.cfg.ID {
				_ = conn.Close()
				return
			}
			if t := io.r.topo.Load(); !t.Active(int(hello.ID)) {
				// Not a member of our epoch: refused — but answer the
				// handshake with the committed topology first. A removed
				// replica that missed the ordered decide learns here (each
				// redial is answered until it adopts the epoch excluding it
				// and fail-stops); a joiner dialing before we adopted its
				// epoch just sees a stale map and retries with backoff.
				if t.Epoch > 0 {
					_ = conn.WriteFrame(wire.Marshal(&wire.TopoUpdate{Topo: *t}))
				}
				_ = conn.Close()
				return
			}
			link := io.linkFor(int(hello.ID))
			if link == nil {
				_ = conn.Close()
				return
			}
			link.set(conn)
		}()
	}
}

// runDialer maintains the outbound connection to a lower-ID peer,
// redialling with backoff whenever it drops. The address comes from the
// current topology (a peer's address is fixed for the lifetime of its ID).
func (io *replicaIO) runDialer(peer int, link *peerLink) {
	defer io.wg.Done()
	backoff := 10 * time.Millisecond
	const maxBackoff = time.Second
	for {
		select {
		case <-io.stop:
			return
		default:
		}
		if link.isClosed() {
			return
		}
		if !link.disconnected() {
			// Connected: poll for failure. The reader/sender call fail() on
			// error, flipping disconnected back to true.
			select {
			case <-io.stop:
				return
			case <-time.After(20 * time.Millisecond):
			}
			continue
		}
		t := io.r.topo.Load()
		if peer >= len(t.Peers) || t.Peers[peer] == "" {
			return
		}
		conn, err := io.r.cfg.Network.Dial(t.Peers[peer])
		if err == nil {
			err = conn.WriteFrame(wire.Marshal(&wire.Hello{ID: int32(io.r.cfg.ID)}))
			if err == nil {
				link.set(conn)
				backoff = 10 * time.Millisecond
				continue
			}
			_ = conn.Close()
		}
		select {
		case <-io.stop:
			return
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// answerStaleEpoch replies to a mismatched-epoch frame with this replica's
// committed topology, rate-limited per link — the "redirect carrying the new
// topology". Sent for frames from older epochs (the peer adopts it) and newer
// ones alike (the peer's reader sees our stale stamp and answers in kind, so
// the exchange converges from either side).
func (io *replicaIO) answerStaleEpoch(link *peerLink, t *wire.Topology) {
	now := time.Now().UnixNano()
	last := link.lastTopo.Load()
	if now-last < int64(20*time.Millisecond) || !link.lastTopo.CompareAndSwap(last, now) {
		return
	}
	io.r.enqueueSend(link.peer, &wire.TopoUpdate{Topo: *t})
}

// runReader is the ReplicaIORcv thread for one peer: read, deserialize,
// touch the failure detector, and dispatch to the owning group's Protocol
// thread (GroupMsg envelopes demultiplex the shared connection; bare
// consensus messages belong to group 0, the pre-group wire format).
//
// Ownership: the frame buffer is pooled, the decoded message borrows from
// it, and the dispatched event outlives this loop iteration — so the reader
// Retains the message (copying only the byte fields the Protocol thread
// will store, e.g. a Propose's batch) and recycles the frame immediately.
// The Protocol thread Releases the message struct after handling it.
func (io *replicaIO) runReader(peer int, link *peerLink, th *profiling.Thread) {
	defer io.wg.Done()
	th.Transition(profiling.StateBusy)
	defer th.Transition(profiling.StateOther)
	for {
		th.Transition(profiling.StateOther) // blocked on socket read
		conn, gen, ok := link.get()
		if !ok {
			return
		}
		frame, pooled, err := transport.ReadFrameOwned(conn)
		th.Transition(profiling.StateBusy)
		if err != nil {
			link.fail(gen)
			continue
		}
		msg, err := wire.Unmarshal(frame)
		if err != nil {
			transport.RecycleFrame(frame, pooled)
			continue
		}
		// Epoch fence: the outermost envelope is checked before the payload is
		// looked at. A mismatched (or, past epoch 0, missing) stamp drops the
		// frame and answers with our committed topology. TopoUpdate itself is
		// always unwrapped — it must cross the fence to end the mismatch.
		myTopo := io.r.topo.Load()
		switch m := msg.(type) {
		case *wire.EpochMsg:
			if m.Epoch != myTopo.Epoch {
				wire.Release(m) // inner message is dropped with it (GC reclaims)
				transport.RecycleFrame(frame, pooled)
				io.answerStaleEpoch(link, myTopo)
				continue
			}
			msg = m.Msg
			m.Msg = nil
			wire.Release(m)
		case *wire.TopoUpdate:
			t := m.Topo // decoded with owned strings; safe past frame recycle
			transport.RecycleFrame(frame, pooled)
			if t.Epoch > myTopo.Epoch {
				io.r.adoptTopology(&t, "peer")
			} else if t.Epoch < myTopo.Epoch {
				io.answerStaleEpoch(link, myTopo)
			}
			io.r.detector.TouchRecv(peer)
			continue
		default:
			if myTopo.Epoch > 0 {
				// Unwrapped frame from an epoch-0 peer: same stale-epoch case.
				wire.Release(msg)
				transport.RecycleFrame(frame, pooled)
				io.answerStaleEpoch(link, myTopo)
				continue
			}
		}
		if io.handleDirect(peer, msg) {
			// Lease/read-index/snapshot-chunk traffic is answered on the
			// reader thread and never reaches a Protocol thread (the only
			// byte field among them — SnapshotChunk.Data — is copied by the
			// puller before the frame recycles, so no Retain is needed).
			transport.RecycleFrame(frame, pooled)
			continue
		}
		group := 0
		if gm, ok := msg.(*wire.GroupMsg); ok {
			group = int(gm.Group)
			msg = gm.Msg
			wire.Release(gm) // envelope consumed; the wrapped message lives on
			if group < 0 || group >= len(io.r.groups) {
				wire.Release(msg)
				transport.RecycleFrame(frame, pooled)
				continue // unknown group: misconfigured peer; drop
			}
		}
		wire.Retain(msg)
		transport.RecycleFrame(frame, pooled)
		io.r.detector.TouchRecv(peer)
		if err := io.r.groups[group].dispatchQ.Put(th, event{kind: evPeerMsg, from: peer, msg: msg}); err != nil {
			return
		}
	}
}

// handleDirect intercepts messages the reader answers itself: lease acks,
// read-index queries (answered from lock-free hints + one lease-state scan),
// read-index responses (forwarded to the ReadManager), and snapshot chunk
// traffic (requests answered from the image store; responses copied and
// routed to the puller — the copy matters, the frame recycles when this
// returns). Returns true when the message was consumed.
func (io *replicaIO) handleDirect(peer int, msg wire.Message) bool {
	r := io.r
	switch m := msg.(type) {
	case *wire.LeaseAck:
		r.leases.onAck(peer, m.View, m.Seq)
	case *wire.ReadIndexQuery:
		resp := &wire.ReadIndexResp{Seq: m.Seq}
		// Validate the lease FIRST, then snapshot the frontier: the frontier
		// only grows, so it covers everything decided while the lease was
		// known valid (the follower read's linearization point).
		if r.leaseValid(time.Now()) {
			resp.OK = true
			resp.Index = r.readFrontier()
		}
		r.enqueueSend(peer, resp)
	case *wire.ReadIndexResp:
		r.reads.deliverResp(m.Seq, m.Index, m.OK)
	case *wire.SnapshotChunkReq:
		r.serveSnapshotChunk(peer, m)
		wire.Release(m)
	case *wire.SnapshotChunk:
		r.puller.deliver(m)
		wire.Release(m)
	default:
		return false
	}
	r.detector.TouchRecv(peer)
	return true
}

// runSender is the ReplicaIOSnd thread for one peer: take from the
// SendQueue, serialize, write. When the transport buffers writes
// (transport.BatchWriter), the sender keeps draining the queue without
// flushing and flushes only once the queue is empty, so a burst of
// back-to-back frames — a window's worth of Proposes, a batch of Accepts —
// coalesces into one syscall instead of one per message. With the
// zero-copy extension (transport.MessageWriter) each message is encoded
// straight into the transport's write buffer; otherwise it is encoded into
// a per-sender scratch buffer reused across messages — either way the hot
// send path allocates nothing.
func (io *replicaIO) runSender(peer int, link *peerLink, th *profiling.Thread) {
	defer io.wg.Done()
	th.Transition(profiling.StateBusy)
	defer th.Transition(profiling.StateOther)
	q := io.r.sendQueue(peer)
	if q == nil {
		return
	}
	var mc msgConn
	// env is the per-sender reused epoch envelope: once the cluster has been
	// reconfigured every outbound frame (except TopoUpdate, which must cross
	// the fence raw) is stamped with the sender's epoch, at zero allocations.
	var env wire.EpochMsg
	wrap := func(m wire.Message) wire.Message {
		if _, ok := m.(*wire.TopoUpdate); ok {
			return m
		}
		epoch := io.r.topo.Load().Epoch
		if epoch == 0 {
			return m
		}
		env.Epoch = epoch
		env.Msg = m
		return &env
	}
	lastGen := -1
	for {
		msg, err := q.Take(th)
		if err != nil {
			return
		}
		th.Transition(profiling.StateOther) // possibly blocked on socket write
		conn, gen, ok := link.get()
		if !ok {
			return
		}
		if lastGen >= 0 && gen != lastGen {
			// The connection was replaced while messages queued: that
			// backlog — up to a full SendQueue of Proposes aimed at the dead
			// connection — is stale. Everything in it is recoverable
			// (retransmission, heartbeats, catch-up and read-index retries),
			// so drop it and let the fresh link start from live traffic
			// instead of replaying a window the peer no longer wants.
			dropped := uint64(1) // msg itself
			for {
				if _, ok := q.TryTake(); !ok {
					break
				}
				dropped++
			}
			io.r.droppedBacklog.Add(dropped)
			lastGen = gen
			th.Transition(profiling.StateBusy)
			continue
		}
		lastGen = gen
		mc.bind(conn)
		werr := mc.write(wrap(msg))
		if werr == nil && mc.buffered() {
			// Drain the backlog into the write buffer before flushing.
			for {
				next, ok := q.TryTake()
				if !ok {
					break
				}
				if werr = mc.write(wrap(next)); werr != nil {
					break
				}
			}
			if werr == nil {
				werr = mc.flush()
			}
		}
		env.Msg = nil
		th.Transition(profiling.StateBusy)
		if werr != nil {
			link.fail(gen)
			continue // messages dropped; retransmission recovers them
		}
		io.r.detector.TouchSent(peer)
	}
}

// msgConn wraps one connection with the best available write path: direct
// message encoding (MessageWriter), buffered frames (BatchWriter, via a
// reused scratch buffer), or eager frames. The scratch persists across
// reconnects; bind is cheap for an unchanged connection.
type msgConn struct {
	conn    transport.FrameConn
	mw      transport.MessageWriter
	bw      transport.BatchWriter
	scratch []byte
}

// bind points the writer at conn, re-detecting the extensions only when the
// connection changed.
func (m *msgConn) bind(conn transport.FrameConn) {
	if conn == m.conn {
		return
	}
	m.conn = conn
	m.mw, _ = conn.(transport.MessageWriter)
	m.bw, _ = conn.(transport.BatchWriter)
}

// buffered reports whether writes are staged until flush.
func (m *msgConn) buffered() bool { return m.mw != nil || m.bw != nil }

// write encodes and stages (or eagerly sends) one message.
func (m *msgConn) write(msg wire.Message) error {
	if m.mw != nil {
		return m.mw.WriteMessageNoFlush(msg)
	}
	m.scratch = wire.AppendMessage(m.scratch[:0], msg)
	var err error
	if m.bw != nil {
		err = m.bw.WriteFrameNoFlush(m.scratch)
	} else {
		err = m.conn.WriteFrame(m.scratch)
	}
	m.scratch = transport.TrimScratch(m.scratch)
	return err
}

// flush pushes staged messages to the wire.
func (m *msgConn) flush() error {
	if m.mw != nil {
		return m.mw.Flush()
	}
	if m.bw != nil {
		return m.bw.Flush()
	}
	return nil
}

// close tears down the module and waits for all its goroutines.
func (io *replicaIO) close() {
	io.once.Do(func() {
		close(io.stop)
		if io.listener != nil {
			_ = io.listener.Close()
		}
		io.mu.Lock()
		io.stopped = true
		links := append([]*peerLink(nil), io.links...)
		io.mu.Unlock()
		for _, l := range links {
			if l != nil {
				l.close()
			}
		}
	})
	io.wg.Wait()
}
