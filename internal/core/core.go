// Package core implements the paper's multi-core scalable threading
// architecture for a replicated state machine (Sec. V, Fig. 3).
//
// A Replica is a set of goroutine-owning modules connected by bounded
// queues:
//
//	ClientIO workers ──RequestQueue──▶ Batcher ──ProposalQueue──▶ Protocol
//	ReplicaIORcv-j  ──DispatcherQueue───────────────────────────▶ Protocol
//	Protocol ──SendQueue-j──▶ ReplicaIOSnd-j (one per peer)
//	Protocol ──DecisionQueue──▶ ServiceManager ──reply queues──▶ ClientIO
//
// plus the satellite FailureDetector and Retransmitter threads. Each module
// encapsulates its own state; cross-module communication is message passing
// through the queues, with the few lock-free shared variables the paper
// allows (failure-detector timestamps, the current view/leader hints, the
// decision watermark). Bounded queues implement backpressure flow control
// end to end (Sec. V-E): when the Protocol thread falls behind, the
// ProposalQueue fills, the Batcher stalls, the RequestQueue fills, ClientIO
// stops reading and TCP pushes back on the clients.
package core

import (
	"fmt"
	"sync"
	"time"

	"gosmr/internal/batch"
	"gosmr/internal/profiling"
	"gosmr/internal/queue"
	"gosmr/internal/transport"
	"gosmr/internal/vfs"
	"gosmr/internal/wal"
	"gosmr/internal/wire"
)

// Service is the deterministic application replicated by the state machine
// (Sec. III-A). Execute must be deterministic: every replica applies the
// same requests in the same order.
type Service interface {
	// Execute applies one request and returns its reply.
	Execute(req []byte) []byte
	// Snapshot serializes the service state (for state transfer and log
	// truncation).
	Snapshot() ([]byte, error)
	// Restore replaces the service state from a snapshot.
	Restore(snapshot []byte) error
}

// ConflictAware is the optional Service extension that unlocks parallel
// execution: a service that declares, per request, the conflict keys the
// request touches (see package executor). When the service implements it and
// Config.ExecutorWorkers > 1, non-conflicting requests execute concurrently.
type ConflictAware interface {
	Keys(req []byte) []string
}

// Config configures a Replica. Zero fields take the documented defaults.
type Config struct {
	// ID is this replica's index in PeerAddrs.
	ID int
	// PeerAddrs lists the replica-to-replica addresses of the whole cluster,
	// indexed by replica ID.
	PeerAddrs []string
	// ClientAddr is this replica's client-facing listen address.
	ClientAddr string
	// PeerClientAddrs optionally lists the client-facing addresses of the
	// whole cluster, indexed by replica ID (PeerClientAddrs[ID] should equal
	// ClientAddr). When set, topology updates pushed to clients carry these
	// addresses so a client pinned to a removed replica can re-resolve.
	PeerClientAddrs []string
	// TopologyEpoch is the epoch of the seed topology described by PeerAddrs.
	// Epoch 0 (the default) is the boot-frozen legacy shape: peer frames are
	// sent unwrapped and no reconfiguration has happened. A replica restarted
	// after a reconfiguration must be given the committed epoch (and the
	// matching PeerAddrs); boot refuses to start if the on-disk epoch is
	// newer than this seed.
	TopologyEpoch int64
	// TopologyBaseView is the first view of the seed topology's epoch (the
	// view every ordering group re-ran Phase 1 at when the epoch took
	// effect). Ignored when TopologyEpoch is 0. A zero value is safe — the
	// replica converges to the epoch's real base view from peer traffic or
	// its own WAL — but seeding it avoids a round of stale-view messages.
	TopologyBaseView int64
	// OnFaulted, when non-nil, is called at most once when the replica
	// transitions to the fail-stop Faulted state (disk fault) or is
	// permanently removed from the cluster by a reconfiguration. Called from
	// an internal goroutine; must not block.
	OnFaulted func(reason string)
	// Network supplies the transport (default: TCP).
	Network transport.Network

	// ClientIOWorkers is the size of the ClientIO thread pool (the paper's
	// key tunable, Fig. 9). Default 4 — the measured optimum.
	ClientIOWorkers int
	// Groups is the number of independent ordering (Paxos) groups. Each
	// group runs its own Batcher, Protocol thread, replicated log, and
	// retransmission state, multiplexed over the shared per-peer
	// connections; a deterministic merge stage recombines the per-group
	// decision streams into the single total order the execution stage
	// consumes. Default 1, the paper's single-ordering-thread architecture
	// (and its wire format). Must be identical on every replica.
	Groups int
	// Window is the pipelining limit WND (max concurrent instances) — per
	// ordering group. Default 10, the paper's baseline.
	Window int
	// Batch is the batching policy (BSZ and flush delay).
	Batch batch.Policy

	// Queue capacities (defaults follow the paper's setup where reported:
	// RequestQueue 1000, ProposalQueue 20).
	RequestQueueCap  int
	ProposalQueueCap int
	DispatchQueueCap int
	DecisionQueueCap int
	SendQueueCap     int
	ReplyQueueCap    int

	// Failure-detector timing.
	HeartbeatInterval time.Duration
	SuspectTimeout    time.Duration
	// LeaseDuration is how long a heartbeat-carried leader lease lasts. While
	// a quorum of followers holds unexpired lease promises, the leader serves
	// linearizable reads locally (and answers followers' read-index queries)
	// without ordering them through the log. 0 takes the default
	// (6×HeartbeatInterval); negative disables leases — every read falls back
	// to an ordered command.
	LeaseDuration time.Duration
	// MaxClockSkew bounds how much faster a follower's clock may run than the
	// leader's over one lease: the leader expires its own view of a promise
	// MaxClockSkew early, so a promise always outlives the leader's reliance
	// on it without synchronized clocks. Default 10ms.
	MaxClockSkew time.Duration
	// RetransPeriod is the initial retransmission period.
	RetransPeriod time.Duration
	// CatchUpTimeout re-arms an unanswered catch-up query.
	CatchUpTimeout time.Duration

	// SnapshotEvery triggers a service snapshot (and log truncation) every
	// that many executed instances; 0 disables snapshotting.
	SnapshotEvery int
	// SnapshotChunkBytes caps every unit a snapshot moves in: the chunks a
	// service cut yields, each chunk file persisted under
	// DataDir/snapshots/, and the Data payload of every state-transfer
	// frame. A single unit exceeds it only when one atomic service entry
	// alone is larger than the cap. Default 256 KiB. Must be identical on
	// every replica (chunk boundaries are part of snapshot determinism).
	SnapshotChunkBytes int
	// SnapshotMaxChain bounds the delta-generation chain: snapshots between
	// full cuts persist only the keys mutated since the previous cut, and
	// every SnapshotMaxChain-th snapshot is a full cut that resets the
	// chain. 1 makes every snapshot full (no deltas). Default 4. Must be
	// identical on every replica (the full/delta cadence is a pure function
	// of the cut index, which keeps chains byte-identical cluster-wide).
	SnapshotMaxChain int

	// DataDir, when non-empty, enables crash-restart recovery: each
	// ordering group journals its acceptor state to a write-ahead log under
	// this directory and snapshots are persisted there, so a killed replica
	// restarted from the same DataDir rejoins without state transfer of its
	// durable prefix. Empty keeps the in-memory (seed) behavior.
	DataDir string
	// SyncPolicy selects the WAL fsync discipline (wal.SyncBatch — group
	// commit, the default — wal.SyncAlways, or wal.SyncNone). Only
	// meaningful with DataDir set.
	SyncPolicy wal.SyncPolicy
	// WALMinSyncInterval overrides the WAL Syncer's adaptive group-commit
	// spacing with a fixed floor (0 = adapt from measured fsync latency,
	// the default; negative disables the floor). Only meaningful with
	// DataDir set.
	WALMinSyncInterval time.Duration
	// WALRetainCheckpoints is how many previous checkpoint generations of
	// WAL segments each group keeps for disk-served catch-up (0 takes the
	// wal default of 1). Only meaningful with DataDir set.
	WALRetainCheckpoints int
	// WALRetainBytes, when > 0, keeps WAL segments below the generation
	// floor while total retained bytes fit the budget, so deep catch-up
	// gaps are served from the log instead of state transfer. Only
	// meaningful with DataDir set.
	WALRetainBytes int64
	// FS supplies the filesystem every durable path (WAL segments, snapshot
	// chunks and manifests, pull staging) goes through. Default vfs.OS, the
	// zero-overhead passthrough; tests inject vfs.FaultFS to script disk
	// faults. Only meaningful with DataDir set.
	FS vfs.FS

	// ExecutorWorkers is the number of execution worker goroutines. It takes
	// effect only when the service implements ConflictAware; the default (and
	// any value <= 1) keeps the original single-threaded ServiceManager
	// execution path.
	ExecutorWorkers int
	// ExecutorQueueCap bounds each execution worker's input queue
	// (default 256, applied by withDefaults like every other queue cap).
	ExecutorQueueCap int
	// ExecutorBarrierMultiKey restores the pre-PR7 behavior of running
	// every multi-key command as a global barrier instead of fence-
	// scheduling it onto only its involved workers (ablation/bisection
	// knob; the conflict-sweep benchmark uses it as the "before" mode).
	ExecutorBarrierMultiKey bool

	// CoarseReplyCache switches the reply cache to the single-lock variant
	// (ablation of Sec. V-D).
	CoarseReplyCache bool

	// Profiling optionally receives per-thread accounting; nil disables.
	Profiling *profiling.Registry
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Network == nil {
		c.Network = &transport.TCP{}
	}
	if c.ClientIOWorkers <= 0 {
		c.ClientIOWorkers = 4
	}
	if c.Groups <= 0 {
		c.Groups = 1
	}
	if c.Window <= 0 {
		c.Window = 10
	}
	if c.ExecutorQueueCap <= 0 {
		c.ExecutorQueueCap = 256
	}
	if c.RequestQueueCap <= 0 {
		c.RequestQueueCap = 1000
	}
	if c.ProposalQueueCap <= 0 {
		c.ProposalQueueCap = 20
	}
	if c.DispatchQueueCap <= 0 {
		c.DispatchQueueCap = 4096
	}
	if c.DecisionQueueCap <= 0 {
		c.DecisionQueueCap = 512
	}
	if c.SendQueueCap <= 0 {
		c.SendQueueCap = 1024
	}
	if c.ReplyQueueCap <= 0 {
		c.ReplyQueueCap = 256
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 50 * time.Millisecond
	}
	if c.SuspectTimeout <= 0 {
		c.SuspectTimeout = 500 * time.Millisecond
	}
	if c.LeaseDuration == 0 {
		c.LeaseDuration = 6 * c.HeartbeatInterval
	}
	if c.MaxClockSkew <= 0 {
		c.MaxClockSkew = 10 * time.Millisecond
	}
	if c.LeaseDuration > 0 && c.LeaseDuration <= c.MaxClockSkew {
		// A lease shorter than the skew bound can never be relied on;
		// treat it as disabled rather than granting dead leases.
		c.LeaseDuration = -1
	}
	if c.RetransPeriod <= 0 {
		c.RetransPeriod = 100 * time.Millisecond
	}
	if c.CatchUpTimeout <= 0 {
		c.CatchUpTimeout = 250 * time.Millisecond
	}
	if c.SnapshotChunkBytes <= 0 {
		c.SnapshotChunkBytes = 256 << 10
	}
	if c.SnapshotMaxChain <= 0 {
		c.SnapshotMaxChain = 4
	}
	if c.FS == nil {
		c.FS = vfs.OS
	}
	return c
}

// validate rejects unusable configurations.
func (c Config) validate() error {
	n := len(c.PeerAddrs)
	if n == 0 {
		return fmt.Errorf("core: PeerAddrs is empty")
	}
	if c.ID < 0 || c.ID >= n {
		return fmt.Errorf("core: ID %d out of range [0,%d)", c.ID, n)
	}
	if c.ClientAddr == "" {
		return fmt.Errorf("core: ClientAddr is empty")
	}
	if c.TopologyEpoch < 0 {
		return fmt.Errorf("core: TopologyEpoch %d is negative", c.TopologyEpoch)
	}
	if c.PeerAddrs[c.ID] == "" {
		return fmt.Errorf("core: PeerAddrs[%d] (this replica) is empty", c.ID)
	}
	if c.TopologyEpoch == 0 {
		for i, a := range c.PeerAddrs {
			if a == "" {
				return fmt.Errorf("core: PeerAddrs[%d] is empty at epoch 0 (holes only arise from reconfiguration)", i)
			}
		}
	}
	if len(c.PeerClientAddrs) != 0 && len(c.PeerClientAddrs) != n {
		return fmt.Errorf("core: PeerClientAddrs has %d entries, PeerAddrs has %d", len(c.PeerClientAddrs), n)
	}
	return nil
}

// eventKind discriminates DispatcherQueue events (Sec. V-C2: "messages from
// other replicas, suspicions raised by the failure detector, batches ready
// to be proposed, and other housekeeping events").
type eventKind uint8

const (
	evPeerMsg eventKind = iota + 1
	evSuspect
	evProposalReady
	evCatchUpTimer
	evTruncate
	// evFastForward releases a group's fast-forward past a transferred
	// snapshot's cut. With snap set it is the ServiceManager's install ack —
	// the snapshot is durably persisted, so journaling the cut is now safe —
	// and the Protocol thread echoes an installed-marker into its decision
	// stream so the Merger jumps its position. With snap nil it is the
	// Merger's idempotent post-jump nudge to sibling groups.
	evFastForward
	// evDurable wakes the Protocol thread after the group's WAL Syncer
	// advanced the durable watermark, so effects gated on durability are
	// released. Carries no payload: the thread re-reads the watermark.
	evDurable
)

// event is one DispatcherQueue item.
type event struct {
	kind eventKind
	from int
	msg  wire.Message
	view wire.View       // evSuspect
	upTo wire.InstanceID // evTruncate, evFastForward
	gen  uint64          // evCatchUpTimer: query generation the timer was armed for
	snap *wire.Snapshot  // evFastForward: durably installed snapshot (ack), or nil
}

// decisionItem is one decision-stream item: either a decided batch or a
// snapshot install step (from catch-up state transfer). Per-group streams
// carry group-local instance IDs; after the merge stage the ID is an index
// into the merged total order. The two-phase install travels as two
// different item shapes: first a snapshot announcement (meta set) flowing
// Merger → ServiceManager — the ServiceManager pulls the chunked image from
// peers, persists and restores it; the Merger's position does not move yet —
// then, once installed, an installed marker carrying the assembled snapshot
// (snapshot set, installed=true) flowing each group's Protocol thread →
// Merger, which is what jumps the merge position.
type decisionItem struct {
	id        wire.InstanceID
	value     []byte             // encoded batch
	meta      *wire.SnapshotMeta // install request: pull + install this snapshot
	snapshot  *wire.Snapshot
	installed bool
}

// groupDecision is one MergeQueue item: a per-group decision-stream item
// tagged with its ordering group.
type groupDecision struct {
	group int
	item  decisionItem
}

// clientConn is one connected client: its transport connection plus the
// bounded reply queue drained by the connection's writer goroutine. The
// queue carries wire.Message rather than *wire.ClientReply so topology
// updates (epoch redirects) can ride the same writer.
type clientConn struct {
	conn    transport.FrameConn
	replies *queue.Bounded[wire.Message]
}

// clientRegistry maps client IDs to their current connection so the
// ServiceManager can route replies to the right ClientIO writer. Sharded to
// keep ClientIO threads from contending (same rationale as the reply cache).
type clientRegistry struct {
	shards [16]struct {
		mu sync.Mutex
		m  map[uint64]*clientConn
	}
}

func newClientRegistry() *clientRegistry {
	r := &clientRegistry{}
	for i := range r.shards {
		r.shards[i].m = make(map[uint64]*clientConn)
	}
	return r
}

func (r *clientRegistry) shard(client uint64) *struct {
	mu sync.Mutex
	m  map[uint64]*clientConn
} {
	return &r.shards[(client*0x9E3779B97F4A7C15)>>60]
}

// set binds client to cc (overwriting any previous connection).
func (r *clientRegistry) set(client uint64, cc *clientConn) {
	s := r.shard(client)
	s.mu.Lock()
	s.m[client] = cc
	s.mu.Unlock()
}

// get returns the client's connection, or nil.
func (r *clientRegistry) get(client uint64) *clientConn {
	s := r.shard(client)
	s.mu.Lock()
	cc := s.m[client]
	s.mu.Unlock()
	return cc
}

// drop removes the binding if it still points at cc.
func (r *clientRegistry) drop(client uint64, cc *clientConn) {
	s := r.shard(client)
	s.mu.Lock()
	if s.m[client] == cc {
		delete(s.m, client)
	}
	s.mu.Unlock()
}

// snapshotStore holds the most recent service snapshot, written by the
// ServiceManager thread (or its drainer goroutine) and read by the Protocol
// thread when advertising state transfer and by reader threads when serving
// chunk pulls. This is one of the paper's sanctioned shared-state
// exceptions: a single value behind a small mutex, never held across
// blocking operations.
//
// Snapshots never cross the wire whole: the store lazily flattens the
// current snapshot into its transfer image (the snapshot-file encoding) and
// serves it as offset-addressed byte ranges, so a puller can fetch it one
// bounded frame at a time and resume mid-stream. The image is immutable
// once built — put replaces the pointer, it never mutates in place — so
// readAt can hand out borrowed sub-slices without copying.
type snapshotStore struct {
	mu    sync.Mutex
	snap  wire.Snapshot
	image []byte // lazily built transfer image; nil until first meta/readAt
	ok    bool
}

func (s *snapshotStore) put(snap wire.Snapshot) {
	s.mu.Lock()
	s.snap = snap
	s.image = nil
	s.ok = true
	s.mu.Unlock()
}

func (s *snapshotStore) get() (wire.Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snap, s.ok
}

func (s *snapshotStore) imageLocked() []byte {
	if s.image == nil {
		s.image = encodeSnapshotFile(s.snap)
	}
	return s.image
}

// imageCopy returns an owned copy of the assembled transfer image, or nil
// if no snapshot has been cut yet. Because the image encodes the cut, the
// full generation chain and the reply cache, byte-comparing it across
// replicas is the strongest cheap determinism check the module exposes.
func (s *snapshotStore) imageCopy() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ok {
		return nil
	}
	return append([]byte(nil), s.imageLocked()...)
}

// meta describes the current snapshot for catch-up advertisements (the
// paxos SnapshotProvider).
func (s *snapshotStore) meta() (wire.SnapshotMeta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ok {
		return wire.SnapshotMeta{}, false
	}
	return wire.SnapshotMeta{
		LastIncluded: s.snap.LastIncluded,
		Groups:       s.snap.Groups,
		TotalBytes:   uint64(len(s.imageLocked())),
	}, true
}

// readAt serves one transfer frame: up to maxBytes of the image for cut
// starting at off. The returned slice borrows the immutable image and must
// not be held past the next GC of the store's snapshot generation (in
// practice: encode it into the outgoing frame immediately). ok is false
// when the store no longer holds that cut or off is out of range.
func (s *snapshotStore) readAt(cut wire.InstanceID, off uint64, maxBytes int) (data []byte, total uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ok || s.snap.LastIncluded != cut {
		return nil, 0, false
	}
	img := s.imageLocked()
	total = uint64(len(img))
	if off >= total {
		return nil, total, false
	}
	n := min(uint64(maxBytes), total-off)
	return img[off : off+n], total, true
}
