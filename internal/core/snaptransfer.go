package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"gosmr/internal/vfs"
	"gosmr/internal/wire"
)

// Chunked, resumable snapshot transfer. Catch-up no longer ships a snapshot
// inline: the responder advertises SnapshotMeta, and the lagging replica
// pulls the snapshot's serialized image with SnapshotChunkReq/SnapshotChunk
// rounds — one outstanding request, each frame capped at
// SnapshotChunkBytes, so the pull is self-clocked (its rate is bounded by
// one frame per round trip) and a snapshot never crosses the wire as a
// single unbounded unit. Received bytes are staged in
// DataDir/snapshots/pull-<cut>.part, fsynced per chunk; after a restart or
// reconnect the pull resumes from the staged size instead of byte 0.

// snapPuller routes SnapshotChunk responses from the reader threads to the
// ServiceManager's synchronous pull loop. Only one pull is ever active.
type snapPuller struct {
	mu     sync.Mutex
	cut    wire.InstanceID
	active bool
	resp   chan pulledChunk
}

// pulledChunk is one delivered response; data is an owned copy (the wire
// frame recycles when the reader moves on).
type pulledChunk struct {
	offset, total uint64
	ok            bool
	data          []byte
}

func (p *snapPuller) begin(cut wire.InstanceID) {
	p.mu.Lock()
	p.cut, p.active = cut, true
	p.mu.Unlock()
	// Drop responses left over from an abandoned pull.
	for {
		select {
		case <-p.resp:
		default:
			return
		}
	}
}

func (p *snapPuller) end() {
	p.mu.Lock()
	p.active = false
	p.mu.Unlock()
}

// deliver hands a chunk response to the pull loop. Runs on reader threads;
// drops anything unexpected (no pull active, wrong cut, loop busy) — the
// pull loop re-requests on timeout, so dropping is always safe.
func (p *snapPuller) deliver(m *wire.SnapshotChunk) {
	p.mu.Lock()
	match := p.active && m.Cut == p.cut
	p.mu.Unlock()
	if !match {
		return
	}
	data := make([]byte, len(m.Data))
	copy(data, m.Data)
	select {
	case p.resp <- pulledChunk{offset: m.Offset, total: m.Total, ok: m.OK, data: data}:
	default:
	}
}

// serveSnapshotChunk answers a peer's chunk request from the image store.
// Runs on the reader thread that decoded the request — the store lookup is
// a mutex-guarded slice, never blocking on I/O — and respects the smaller
// of the requester's and this replica's frame caps. Data borrows the
// store's immutable image; the send path encodes it before the store can
// swap generations... and even a swap only drops the old image's last
// reference, it never rewrites the bytes.
func (r *Replica) serveSnapshotChunk(peer int, m *wire.SnapshotChunkReq) {
	maxBytes := int(m.MaxBytes)
	if maxBytes <= 0 || maxBytes > r.cfg.SnapshotChunkBytes {
		maxBytes = r.cfg.SnapshotChunkBytes
	}
	resp := wire.NewSnapshotChunk()
	resp.Cut, resp.Offset = m.Cut, m.Offset
	resp.Data, resp.Total, resp.OK = r.snapshots.readAt(m.Cut, m.Offset, maxBytes)
	r.enqueueSend(peer, resp)
}

// pullSnapshot fetches the advertised snapshot image chunk by chunk and
// decodes it. Requests go to group 0's leader hint first and rotate through
// the peers on timeout or refusal. Synchronous on the ServiceManager
// thread; aborts on shutdown. The staging file survives an error return —
// that is the resume state — but a staged image that fails verification is
// discarded so the next attempt starts clean.
func (r *Replica) pullSnapshot(meta wire.SnapshotMeta) (*wire.Snapshot, error) {
	stage, err := r.openPullStage(meta)
	if err != nil {
		return nil, err
	}
	defer stage.close()
	r.puller.begin(meta.LastIncluded)
	defer r.puller.end()

	topo := r.topo.Load()
	target := int(r.groups[0].leaderHint.Load())
	rotate := func() {
		// Next active peer in ID order, wrapping; skips self and removed IDs.
		for range len(topo.Peers) {
			target = (target + 1) % len(topo.Peers)
			if target != r.cfg.ID && topo.Active(target) {
				return
			}
		}
	}
	if target == r.cfg.ID || !topo.Active(target) {
		target = r.cfg.ID
		rotate()
	}
	misses := 0
	for stage.size < meta.TotalBytes {
		if misses > 4*topo.N() {
			return nil, fmt.Errorf("pull stalled at %d/%d bytes", stage.size, meta.TotalBytes)
		}
		req := wire.NewSnapshotChunkReq()
		req.Cut, req.Offset, req.MaxBytes = meta.LastIncluded, stage.size, uint32(r.cfg.SnapshotChunkBytes)
		r.enqueueSend(target, req)
	wait:
		select {
		case <-r.stop:
			return nil, fmt.Errorf("replica stopping")
		case c := <-r.puller.resp:
			if !c.ok || c.total != meta.TotalBytes {
				// Responder moved past this cut (or serves a different
				// image); try the next peer, and let catch-up re-advertise
				// if everyone has.
				misses++
				rotate()
				continue
			}
			if c.offset != stage.size || len(c.data) == 0 ||
				len(c.data) > r.cfg.SnapshotChunkBytes {
				goto wait // stale duplicate from an earlier round: ignore it
			}
			if err := stage.append(c.data); err != nil {
				return nil, err
			}
			crashPoint("transfer-chunk")
			misses = 0
		case <-time.After(r.cfg.CatchUpTimeout):
			misses++
			rotate()
		}
	}
	img, err := stage.bytes()
	if err != nil {
		return nil, err
	}
	snap, err := decodeSnapshotFile(img)
	if err != nil || snap.LastIncluded != meta.LastIncluded || snap.GroupCount() != meta.GroupCount() {
		// A bad assembled image means the staged prefix mixed donors or
		// rotted; drop it so the retry restarts from byte 0.
		stage.discard()
		if err == nil {
			err = fmt.Errorf("assembled snapshot does not match its advertisement")
		}
		return nil, err
	}
	return &snap, nil
}

// pullStage accumulates the image — in DataDir/snapshots/pull-<cut>.part
// when durability is enabled (each chunk fsynced, so a kill -9 at any chunk
// boundary resumes from the staged size), in memory otherwise.
type pullStage struct {
	fs   vfs.FS
	f    vfs.File
	path string
	mem  []byte
	size uint64
}

func (r *Replica) openPullStage(meta wire.SnapshotMeta) (*pullStage, error) {
	if r.snapDisk == nil {
		return &pullStage{}, nil
	}
	fsys := r.snapDisk.fs
	if err := fsys.MkdirAll(r.snapDisk.dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(r.snapDisk.dir, pullPartName(meta.LastIncluded))
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close() // best-effort: the stage is abandoned on this path
		return nil, err
	}
	size := uint64(st.Size())
	if size > meta.TotalBytes {
		// Staged for a differently sized image of the same cut: start over.
		if err := f.Truncate(0); err != nil {
			_ = f.Close() // best-effort: the stage is abandoned on this path
			return nil, err
		}
		size = 0
	}
	if size > 0 {
		r.transferResumed.Add(size)
	}
	if _, err := f.Seek(int64(size), 0); err != nil {
		_ = f.Close() // best-effort: the stage is abandoned on this path
		return nil, err
	}
	return &pullStage{fs: fsys, f: f, path: path, size: size}, nil
}

func (s *pullStage) append(data []byte) error {
	if s.f == nil {
		s.mem = append(s.mem, data...)
		s.size += uint64(len(data))
		return nil
	}
	if _, err := s.f.Write(data); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.size += uint64(len(data))
	return nil
}

func (s *pullStage) bytes() ([]byte, error) {
	if s.f == nil {
		return s.mem, nil
	}
	buf := make([]byte, s.size)
	if _, err := s.f.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}

// close releases the file handle but keeps the staged bytes — resume state
// for the next attempt. The file itself is cleaned up by snapDisk.gc once a
// manifest at or above its cut commits.
func (s *pullStage) close() {
	if s.f != nil {
		// best-effort: every staged byte was already fsynced by append, so a
		// close error cannot lose resume state.
		_ = s.f.Close()
		s.f = nil
	}
}

// discard drops the staged bytes (verification failure: restart from 0).
func (s *pullStage) discard() {
	s.close()
	s.mem = nil
	if s.path != "" {
		// best-effort: a leftover stage is re-truncated by the next pull.
		_ = s.fs.Remove(s.path)
	}
}
