package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"log"
	"path/filepath"
	"strings"

	"gosmr/internal/storage"
	"gosmr/internal/wal"
	"gosmr/internal/wire"
)

// Crash-restart recovery. With Config.DataDir set, each ordering group
// journals its acceptor state transitions to a write-ahead log
// (internal/wal) and every snapshot cut is committed as a manifest plus
// size-capped chunk files (snapdisk.go), laid out as
//
//	DataDir/
//	  snapshots/manifest-<merged index>.mf (committed generation chain)
//	  snapshots/gen-<merged index>-NN/     (chunk files of one generation)
//	  group-0/wal-00000001.seg ...         (per-group WAL segments)
//	  group-1/...
//
// Boot assembles the newest intact snapshot chain, replays each group's WAL
// suffix on top of its share of the covered prefix, and hands the rebuilt
// logs, views and merge position to the normal pipeline: the decided prefix
// re-executes from the snapshot (rebuilding service state and reply cache
// exactly), and anything decided by the rest of the cluster while this
// replica was down arrives through the existing catch-up path — no state
// transfer is needed for the locally durable prefix.

// walJournal adapts one group's WAL to the storage.Journal interface.
type walJournal struct{ w *wal.WAL }

func (j walJournal) JournalAccept(id wire.InstanceID, view wire.View, value []byte) {
	j.w.Append(wal.Record{Type: wal.RecAccept, ID: id, View: view, Value: value})
}

func (j walJournal) JournalDecide(id wire.InstanceID, value []byte, hasValue bool) {
	j.w.Append(wal.Record{Type: wal.RecDecide, ID: id, Value: value, HasValue: hasValue})
}

func (j walJournal) JournalCut(cut wire.InstanceID) {
	j.w.Append(wal.Record{Type: wal.RecCut, ID: cut})
}

// groupBoot is one group's recovered durable state.
type groupBoot struct {
	wal  *wal.WAL
	log  *storage.Log
	view wire.View
}

// bootState is everything recovery rebuilt before the pipeline starts.
type bootState struct {
	snap   *wire.Snapshot // newest durable snapshot, nil if none
	groups []groupBoot
	// topo is the on-disk topology to install when it refines the seed
	// (same epoch, committed BaseView); nil when the seed stands as-is.
	// recoverBoot refuses to boot at all when the disk's epoch is NEWER
	// than the seed — the operator must restart with the committed
	// topology, not a stale peer list.
	topo *wire.Topology
}

// closeWALs releases the opened WALs (Start error paths).
func (b *bootState) closeWALs() {
	if b == nil {
		return
	}
	for _, g := range b.groups {
		if g.wal != nil {
			g.wal.Close()
		}
	}
}

// recover opens the data directory and rebuilds per-group logs and views.
// The returned WALs have no journal attached yet (replay must not
// re-journal); the caller attaches them once the logs are final.
func (r *Replica) recoverBoot() (*bootState, error) {
	dir := r.cfg.DataDir
	b := &bootState{groups: make([]groupBoot, len(r.groups))}
	snap, skipped, err := r.snapDisk.loadNewest()
	if err != nil {
		return nil, err
	}
	// Track the newest topology the disk remembers (snapshot manifest and
	// per-group RecTopo records), to check against the configured seed.
	var diskTopo *wire.Topology
	consider := func(t *wire.Topology) {
		if t == nil {
			return
		}
		if diskTopo == nil || t.Epoch > diskTopo.Epoch ||
			(t.Epoch == diskTopo.Epoch && t.BaseView > diskTopo.BaseView) {
			diskTopo = t
		}
	}
	if snap != nil {
		if snap.GroupCount() != len(r.groups) {
			return nil, fmt.Errorf("core: data dir %s was written with %d ordering groups, replica configured with %d",
				dir, snap.GroupCount(), len(r.groups))
		}
		b.snap = snap
		if len(snap.Topo) > 0 {
			t, terr := wire.DecodeTopology(snap.Topo)
			if terr != nil {
				return nil, fmt.Errorf("core: data dir %s: snapshot topology: %w", dir, terr)
			}
			consider(t)
		}
	}
	r.quarantines.Add(uint64(len(skipped))) // manifests snapDisk renamed to *.corrupt
	for i := range r.groups {
		g := i // group index
		gdir := filepath.Join(dir, fmt.Sprintf("group-%d", g))
		opts := wal.Options{
			Dir:               gdir,
			FS:                r.cfg.FS,
			Policy:            r.cfg.SyncPolicy,
			MinSyncInterval:   r.cfg.WALMinSyncInterval,
			RetainCheckpoints: r.cfg.WALRetainCheckpoints,
			RetainBytes:       r.cfg.WALRetainBytes,
			OnDurable: func(int64) {
				// Wake the group's Protocol thread so it releases effects
				// gated on this sync. TryPut suffices: a full DispatcherQueue
				// means the thread is already awake and re-checks the durable
				// watermark after every event.
				_, _ = r.groups[g].dispatchQ.TryPut(event{kind: evDurable})
			},
			OnFault: func(err error) { r.enterFault(g, err) },
		}
		w, recs, err := wal.Open(opts)
		var ce *wal.CorruptError
		if errors.As(err, &ce) && r.n > 1 {
			// A sealed segment below the tail fails its CRC: the durable
			// suffix above it is unreadable. With peers to refill from,
			// quarantine the log (rename every segment to *.corrupt) and
			// boot on the snapshot alone — anything the quarantined suffix
			// decided is re-fetched through catch-up or state transfer.
			// Single-replica clusters have no refill source, so there the
			// corruption stays a boot error instead of silent data loss.
			quarantined, qerr := wal.QuarantineSegments(r.cfg.FS, gdir)
			if qerr != nil {
				b.closeWALs()
				return nil, fmt.Errorf("core: group %d: quarantining corrupt WAL: %w (corrupt segment: %s)", g, qerr, ce.Segment)
			}
			r.quarantines.Add(uint64(len(quarantined)))
			log.Printf("gosmr: replica %d: group %d WAL segment %s is corrupt; quarantined %d segment(s), rejoining via catch-up",
				r.cfg.ID, g, ce.Segment, len(quarantined))
			w, recs, err = wal.Open(opts)
		}
		if err != nil {
			b.closeWALs()
			return nil, err
		}
		log := storage.NewLog()
		bootCut := wire.InstanceID(0)
		if b.snap != nil {
			bootCut = wire.GroupCut(b.snap.LastIncluded, len(r.groups), g)
			log.CoverPrefix(bootCut)
		}
		view, gtopo, err := replayWAL(log, recs)
		if err != nil {
			w.Close()
			b.closeWALs()
			return nil, fmt.Errorf("core: group %d: %w", g, err)
		}
		consider(gtopo)
		if log.Base() > bootCut {
			// The WAL records a snapshot cut that is not on disk. With
			// persist-before-cut ordering no crash produces this state any
			// more (the snapshot chain is always committed — manifest
			// renamed — before any group journals its cut); reaching it
			// means a manifest or chunk file was corrupted or deleted after
			// the fact. State below the base is unrecoverable locally;
			// refuse to boot half-blind rather than silently execute from
			// the wrong prefix — and if intact-looking snapshots were
			// skipped on the way here, name them: a skipped newest snapshot
			// is by far the likeliest culprit.
			w.Close()
			b.closeWALs()
			detail := ""
			if len(skipped) > 0 {
				detail = fmt.Sprintf(" (quarantined unreadable snapshot manifest(s): %s — renamed to *.corrupt; see the preceding log lines for each decode error)",
					strings.Join(skipped, ", "))
			}
			return nil, fmt.Errorf("core: group %d WAL is cut at %d but the newest snapshot covers only %d; clear %s to rejoin via state transfer%s",
				g, log.Base(), bootCut, dir, detail)
		}
		b.groups[i] = groupBoot{wal: w, log: log, view: view}
	}
	if diskTopo != nil {
		seed := r.topo.Load()
		switch {
		case diskTopo.Epoch > seed.Epoch:
			// The disk committed a reconfiguration the seed config predates.
			// Booting with the stale peer list would put this replica in the
			// wrong epoch (every frame it sent would be dropped); refuse and
			// name both epochs so the operator restarts with the committed
			// topology.
			b.closeWALs()
			return nil, fmt.Errorf("core: data dir %s holds topology epoch %d, newer than the configured seed epoch %d; restart with the committed topology (the peer list changed)",
				dir, diskTopo.Epoch, seed.Epoch)
		case diskTopo.Epoch == seed.Epoch && diskTopo.BaseView > seed.BaseView:
			// Same epoch, but the disk remembers the committed base view the
			// operator's seed left zero; install the richer version.
			b.topo = diskTopo
		}
	}
	return b, nil
}

// replayWAL applies intact WAL records to log and returns the recovered
// view (the acceptor's durable promise: the highest view it ever adopted or
// accepted in) plus the newest epoch-stamped topology the log remembers
// (nil if the group never journaled one).
func replayWAL(log *storage.Log, recs []wal.Record) (wire.View, *wire.Topology, error) {
	var view wire.View
	var topo *wire.Topology
	for _, rec := range recs {
		switch rec.Type {
		case wal.RecView:
			if rec.View > view {
				view = rec.View
			}
		case wal.RecTopo:
			t, err := wire.DecodeTopology(rec.Value)
			if err != nil {
				return 0, nil, fmt.Errorf("wal replay: topology record: %w", err)
			}
			if topo == nil || t.Epoch > topo.Epoch {
				topo = t
			}
		case wal.RecCut, wal.RecCkpt:
			if rec.ID > log.Base() {
				log.CoverPrefix(rec.ID)
			}
		case wal.RecAccept:
			if rec.View > view {
				view = rec.View
			}
			if rec.ID >= log.Base() {
				log.Accept(rec.ID, rec.View, rec.Value)
			}
		case wal.RecDecide:
			if rec.ID < log.Base() {
				continue
			}
			if rec.HasValue {
				log.MarkDecided(rec.ID, rec.Value)
				continue
			}
			// Watermark decide: the value rides the earlier accept record.
			// The WAL is a prefix, so the accept is always there; tolerate
			// its absence anyway (catch-up refills) rather than deciding a
			// slot with no value.
			if e := log.Get(rec.ID); e != nil && (e.AcceptedView != storage.NoView || e.Decided) {
				log.MarkDecided(rec.ID, nil)
			}
		case wal.RecState:
			log.RestoreEntry(wire.InstanceState{
				ID:           rec.ID,
				AcceptedView: rec.View,
				Decided:      rec.Decided,
				Value:        rec.Value,
			})
		default:
			return 0, nil, fmt.Errorf("wal replay: unknown record type %d", rec.Type)
		}
	}
	return view, topo, nil
}

// suffixStates converts the log's retained acceptor state into checkpoint
// records for wal.Checkpoint.
func suffixStates(log *storage.Log) []wal.Record {
	states := log.SuffixFrom(log.Base())
	out := make([]wal.Record, 0, len(states))
	for _, st := range states {
		out = append(out, wal.Record{
			Type:    wal.RecState,
			ID:      st.ID,
			View:    st.AcceptedView,
			Decided: st.Decided,
			Value:   st.Value,
		})
	}
	return out
}

// Snapshot transfer image: a fixed header (magic, version), the
// wire-encoded snapshot, and a trailing CRC32 of everything before it. No
// longer a disk format (snapdisk.go owns the durable layout) — this is the
// flat serialization state transfer slices into bounded SnapshotChunk
// frames, and what SnapshotMeta.TotalBytes measures.
const (
	snapMagic = 0x50414E53 // "SNAP"
	// Version 1 is the epoch-0 image (no topology section); version 2
	// appends the encoded topology of the epoch the cut was taken under.
	// Epoch-0 cuts still emit version 1 byte-for-byte, so legacy image
	// determinism (and cross-version transfer within epoch 0) is preserved.
	snapVersion     = 1
	snapVersionTopo = 2
)

// encodeSnapshotFile serializes snap into its transfer image.
func encodeSnapshotFile(snap wire.Snapshot) []byte {
	ver := uint32(snapVersion)
	if len(snap.Topo) > 0 {
		ver = snapVersionTopo
	}
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, snapMagic)
	b = binary.LittleEndian.AppendUint32(b, ver)
	b = binary.LittleEndian.AppendUint64(b, uint64(snap.LastIncluded))
	b = binary.LittleEndian.AppendUint32(b, uint32(snap.Groups))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(snap.ServiceState)))
	b = append(b, snap.ServiceState...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(snap.ReplyCache)))
	b = append(b, snap.ReplyCache...)
	if ver >= snapVersionTopo {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(snap.Topo)))
		b = append(b, snap.Topo...)
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// decodeSnapshotFile parses and verifies a transfer image. Length fields
// are validated against the remaining bytes before any allocation.
func decodeSnapshotFile(b []byte) (wire.Snapshot, error) {
	var snap wire.Snapshot
	if len(b) < 24 {
		return snap, fmt.Errorf("snapshot file too short")
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return snap, fmt.Errorf("snapshot file checksum mismatch")
	}
	ver := binary.LittleEndian.Uint32(body[4:])
	if binary.LittleEndian.Uint32(body) != snapMagic ||
		(ver != snapVersion && ver != snapVersionTopo) {
		return snap, fmt.Errorf("snapshot file bad header")
	}
	snap.LastIncluded = wire.InstanceID(binary.LittleEndian.Uint64(body[8:]))
	snap.Groups = int32(binary.LittleEndian.Uint32(body[16:]))
	rest := body[20:]
	take := func() ([]byte, error) {
		if len(rest) < 4 {
			return nil, fmt.Errorf("snapshot file truncated")
		}
		n := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint64(n) > uint64(len(rest)) {
			return nil, fmt.Errorf("snapshot file truncated")
		}
		v := make([]byte, n)
		copy(v, rest[:n])
		rest = rest[n:]
		return v, nil
	}
	var err error
	if snap.ServiceState, err = take(); err != nil {
		return snap, err
	}
	if snap.ReplyCache, err = take(); err != nil {
		return snap, err
	}
	if ver >= snapVersionTopo {
		if snap.Topo, err = take(); err != nil {
			return snap, err
		}
	}
	if len(rest) != 0 {
		return snap, fmt.Errorf("snapshot file trailing bytes")
	}
	return snap, nil
}
