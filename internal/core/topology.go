package core

import (
	"errors"
	"fmt"
	"log"
	"time"

	"gosmr/internal/queue"
	"gosmr/internal/wire"
)

// Dynamic membership (reconfiguration through the log).
//
// The cluster shape is an epoch-stamped wire.Topology. Epoch 0 is the
// boot-frozen legacy shape; every reconfiguration commits exactly one
// membership change (add or remove a single replica) as a distinguished
// config command ordered like any other batch, bumping the epoch by one.
// Because adjacent epochs differ by one replica, any quorum of epoch E and
// any quorum of epoch E+1 intersect — and since every peer frame carries its
// sender's epoch and mismatched frames are dropped symmetrically, a quorum
// can only ever form entirely inside one epoch. The handoff itself is
// stop-the-group: the new topology names a BaseView above every view the old
// epoch used, and every ordering group re-runs Phase 1 at that view under
// the new shape, adopting the old epoch's unstable suffix exactly like any
// leader change (the Phase 1 value-adoption rule is the safety argument; the
// epoch fence only bounds WHO may vote).
//
// Replica IDs are never reused: an added replica takes a fresh ID
// (len(Peers)), a removed one leaves a permanent "" hole. That keeps every
// array indexed by replica ID (queues, links, lease tables, fd timestamps)
// append-only.

// seedTopology builds the boot topology from the static configuration.
// Callers pass a cfg that already went through withDefaults.
func seedTopology(cfg Config) *wire.Topology {
	t := &wire.Topology{
		Epoch:    cfg.TopologyEpoch,
		BaseView: wire.View(cfg.TopologyBaseView),
		Groups:   int32(cfg.Groups),
		Peers:    append([]string(nil), cfg.PeerAddrs...),
	}
	if len(cfg.PeerClientAddrs) > 0 {
		t.Clients = append([]string(nil), cfg.PeerClientAddrs...)
	}
	return t
}

// Topology returns a copy of the current committed cluster topology.
func (r *Replica) Topology() *wire.Topology { return r.topo.Load().Clone() }

// Epoch returns the current committed topology epoch.
func (r *Replica) Epoch() int64 { return r.topo.Load().Epoch }

// AddReplica proposes a single-step reconfiguration appending one replica
// (fresh ID = current len(Peers)) with the given peer-facing and
// client-facing addresses. It blocks until the config command commits and
// takes effect locally, returning the committed topology — the joiner must
// be booted with exactly this topology as its seed (the command commits
// FIRST, under the old quorum; the joiner then catches up via the normal
// snapshot-transfer/WAL path). Must be called on the group-0 leader.
func (r *Replica) AddReplica(peerAddr, clientAddr string) (*wire.Topology, error) {
	return r.proposeReconfig(-1, peerAddr, clientAddr)
}

// RemoveReplica proposes a single-step reconfiguration removing replica id
// (its slot becomes a permanent hole; the ID is never reused). It blocks
// until the config command commits and takes effect locally. Must be called
// on the group-0 leader; the leader cannot remove itself.
func (r *Replica) RemoveReplica(id int) (*wire.Topology, error) {
	return r.proposeReconfig(id, "", "")
}

// reconfigTimeout bounds how long a proposer waits for its config command to
// commit and apply before reporting failure (the command may still commit
// later; retries are idempotent because stale epochs are skipped on apply).
const reconfigTimeout = 10 * time.Second

// ErrReconfigConflict reports that a proposal's epoch slot was won by a
// concurrent reconfiguration carrying a different change: the epoch advanced,
// but the committed topology does not reflect the requested add/remove.
// Re-propose against the new topology (Replica.Topology shows what committed).
var ErrReconfigConflict = errors.New("core: reconfiguration lost to a concurrent proposal")

func (r *Replica) proposeReconfig(remove int, peerAddr, clientAddr string) (*wire.Topology, error) {
	// One proposal at a time: two concurrent callers would both read the
	// same current epoch and commit two config commands claiming the same
	// E+1 slot. The apply side skips the loser deterministically (see
	// applyReconfig), but serializing here means a local racer re-reads the
	// winner's committed topology instead of burning an epoch on a doomed
	// command.
	r.reconfigMu.Lock()
	defer r.reconfigMu.Unlock()
	// A previous reconfiguration's Phase-1 handoff may still be in flight:
	// isLeader drops until the group re-elects at the new BaseView, while the
	// hint still names this replica. Give that window a moment rather than
	// bounce a serialized back-to-back proposal with a redirect to itself; a
	// hint naming another replica is a real deposal and fails fast.
	for grace := time.Now().Add(2 * time.Second); !r.groups[0].isLeader.Load(); {
		if int(r.groups[0].leaderHint.Load()) != r.cfg.ID || time.Now().After(grace) {
			return nil, fmt.Errorf("core: replica %d does not lead group 0 (leader hint: %d)",
				r.cfg.ID, r.groups[0].leaderHint.Load())
		}
		select {
		case <-r.stop:
			return nil, fmt.Errorf("core: replica shutting down")
		case <-time.After(2 * time.Millisecond):
		}
	}
	cur := r.topo.Load()
	next := cur.Clone()
	next.Epoch = cur.Epoch + 1
	if remove < 0 {
		if peerAddr == "" {
			return nil, fmt.Errorf("core: AddReplica needs a peer address")
		}
		next.Peers = append(next.Peers, peerAddr)
		for len(next.Clients) < len(next.Peers)-1 {
			next.Clients = append(next.Clients, "")
		}
		next.Clients = append(next.Clients, clientAddr)
	} else {
		if remove == r.cfg.ID {
			return nil, fmt.Errorf("core: replica %d cannot remove itself; remove it from a surviving leader", remove)
		}
		if !cur.Active(remove) {
			return nil, fmt.Errorf("core: replica %d is not an active member", remove)
		}
		if cur.N() <= 2 {
			return nil, fmt.Errorf("core: refusing to shrink a %d-replica cluster further", cur.N())
		}
		next.Peers[remove] = ""
		if remove < len(next.Clients) {
			next.Clients[remove] = ""
		}
	}
	// BaseView: strictly above every view any group currently uses, and led
	// by this replica under the NEW map — so the proposer that committed the
	// command also drives the Phase-1 handoff, and views the old epoch's
	// leader map already assigned are never reinterpreted.
	maxV := int64(0)
	for _, g := range r.groups {
		if v := int64(g.viewHint.Load()); v > maxV {
			maxV = v
		}
	}
	b := wire.View(maxV + 1)
	for next.Leader(b) != r.cfg.ID {
		b++
	}
	next.BaseView = b
	if err := next.Validate(); err != nil {
		return nil, fmt.Errorf("core: proposed topology invalid: %w", err)
	}

	// Order the change like any command: a one-request batch under the
	// reserved config client ID, injected on group 0's proposal path (the
	// same queue batches and merge pads ride).
	req := &wire.ClientRequest{
		ClientID: wire.ConfigClientID,
		Seq:      uint64(next.Epoch),
		Payload:  wire.EncodeTopology(next),
	}
	enc := wire.EncodeBatch([]*wire.ClientRequest{req})
	if err := r.groups[0].proposalQ.Put(nil, enc); err != nil {
		return nil, fmt.Errorf("core: replica shutting down")
	}
	crashPoint("reconfig-proposed")
	_, _ = r.groups[0].dispatchQ.TryPut(event{kind: evProposalReady})

	deadline := time.Now().Add(reconfigTimeout)
	for {
		if t := r.topo.Load(); t.Epoch >= next.Epoch {
			// Epoch numbers are totally ordered by the log, so whatever
			// topology got committed at (or past) this epoch is the truth.
			// It is NOT necessarily OUR truth: a concurrent proposal (e.g.
			// from a deposed leader) may have won the slot with a different
			// change, in which case our command was skipped on apply —
			// succeeding here would hand the operator a topology that does
			// not contain the joiner (or still contains the removee).
			if err := reconfigOutcome(t, remove, peerAddr, clientAddr); err != nil {
				return nil, err
			}
			return t.Clone(), nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("core: reconfiguration to epoch %d did not commit within %v", next.Epoch, reconfigTimeout)
		}
		select {
		case <-r.stop:
			return nil, fmt.Errorf("core: replica shutting down")
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// reconfigOutcome checks whether the committed topology t reflects the
// requested change: the removed id is gone, or the added peer address is
// present (with its client address, when one was given). A mismatch means a
// concurrent proposal won the epoch slot and ours was skipped on apply.
func reconfigOutcome(t *wire.Topology, remove int, peerAddr, clientAddr string) error {
	if remove >= 0 {
		if t.Active(remove) {
			return fmt.Errorf("%w: replica %d is still active in committed epoch %d",
				ErrReconfigConflict, remove, t.Epoch)
		}
		return nil
	}
	for i, p := range t.Peers {
		if p == peerAddr && (clientAddr == "" || (i < len(t.Clients) && t.Clients[i] == clientAddr)) {
			return nil
		}
	}
	return fmt.Errorf("%w: committed epoch %d does not contain peer %s",
		ErrReconfigConflict, t.Epoch, peerAddr)
}

// applyReconfig is the ServiceManager's handler for an ordered config
// command (a one-request batch under wire.ConfigClientID): decode the
// topology it carries and adopt it. Runs at a deterministic merged index on
// every replica — the reconfiguration point.
func (r *Replica) applyReconfig(payload []byte) {
	t, err := wire.DecodeTopology(payload)
	if err != nil {
		log.Printf("gosmr: replica %d: malformed config command skipped: %v", r.cfg.ID, err)
		return
	}
	crashPoint("reconfig-decided")
	// Epoch fence on the ServiceManager's own topology, mirroring
	// adoptTopology's: two config commands claiming the same epoch can both
	// commit (racing proposers read the same current epoch), and the FIRST
	// one in merged order is the epoch's one true topology on every replica.
	// Installing the loser here would stamp a divergent same-epoch topology
	// into the next snapshot manifest — undetectable by the epoch fence, and
	// fatal to adjacent-epoch quorum intersection on a later state transfer.
	if r.smTopo != nil && t.Epoch <= r.smTopo.Epoch {
		log.Printf("gosmr: replica %d: config command for epoch %d skipped (ServiceManager already at epoch %d)",
			r.cfg.ID, t.Epoch, r.smTopo.Epoch)
		return
	}
	if int(t.Groups) != len(r.groups) {
		log.Printf("gosmr: replica %d: config command for epoch %d skipped: group count %d != configured %d",
			r.cfg.ID, t.Epoch, t.Groups, len(r.groups))
		return
	}
	r.smTopo = t
	r.adoptTopology(t, "log")
}

// adoptTopology installs a committed topology replica-wide: publish it for
// senders/readers to stamp and enforce, reshape the per-peer send queues and
// links, hand it to the protocol threads (which journal it and re-run Phase 1
// at its BaseView — see runProtocol), resize the failure detector and lease
// tables, and push it to connected clients. Stale epochs are ignored, so the
// call is idempotent across every source (log apply, peer TopoUpdate,
// snapshot restore). src names the source for the log line.
func (r *Replica) adoptTopology(t *wire.Topology, src string) {
	r.topoMu.Lock()
	cur := r.topo.Load()
	if t.Epoch <= cur.Epoch {
		r.topoMu.Unlock()
		return
	}
	if int(t.Groups) != len(r.groups) {
		// The group count is part of the topology but epoch-invariant: the
		// round-robin merge (merged index m -> group m%G) bakes G into every
		// merged index ever assigned, so reshaping it needs a restart, not a
		// config command. proposeReconfig never changes it; refuse anything
		// else rather than corrupt the merge.
		r.topoMu.Unlock()
		log.Printf("gosmr: replica %d: refusing topology epoch %d via %s: group count %d != configured %d",
			r.cfg.ID, t.Epoch, src, t.Groups, len(r.groups))
		return
	}
	t = t.Clone()
	r.topo.Store(t)
	r.pendingTopo.Store(t)
	r.reshapeSendQueues(t)

	// The side effects stay under topoMu: the epoch check above is the only
	// staleness fence, and none of the receivers checks epochs itself. If
	// the lock were dropped first, two racing adoptions (log apply of E+1 vs
	// a peer TopoUpdate carrying E+2) could interleave so the OLDER epoch's
	// calls land last, leaving the failure detector and lease manager on a
	// stale membership — ackQuorumValid would then size lease quorums
	// against the wrong active set. Every call below is non-blocking
	// (TryPut, atomic pointer swaps, short internal critical sections), and
	// none of their locks is ever held while acquiring topoMu, so holding it
	// across them is cheap and deadlock-free.
	//
	// Nudge every Protocol thread: each picks pendingTopo up at the top of
	// its event loop (journaling it and advancing to BaseView).
	for _, g := range r.groups {
		_, _ = g.dispatchQ.TryPut(event{kind: evProposalReady})
	}
	if r.detector != nil {
		r.detector.SetTopology(t)
	}
	r.leases.setTopology(t)
	if r.peerIO != nil {
		r.peerIO.applyTopology(t)
	}
	if r.clientIO != nil {
		r.clientIO.broadcastTopology(t)
	}
	removed := !t.Active(r.cfg.ID)
	r.topoMu.Unlock()

	log.Printf("gosmr: replica %d: adopted topology epoch %d (n=%d, base view %d, via %s)",
		r.cfg.ID, t.Epoch, t.N(), t.BaseView, src)

	if removed {
		// Permanently removed: this replica is no longer a member. Fire the
		// operator hook and shut down (Stop must not run on this thread —
		// it joins the module the caller may be running on).
		r.fireFaulted(fmt.Sprintf("removed from the cluster at epoch %d", t.Epoch))
		go r.Stop()
	}
	crashPoint("reconfig-applied")
}

// reshapeSendQueues swaps in a copy-on-write send-queue slice sized to t:
// queues for added replicas are created, queues for removed ones are closed
// (terminating their sender goroutines). Callers hold topoMu.
func (r *Replica) reshapeSendQueues(t *wire.Topology) {
	old := *r.sendQs.Load()
	qs := make([]*queue.Bounded[wire.Message], len(t.Peers))
	copy(qs, old)
	for p := range qs {
		if p == r.cfg.ID {
			qs[p] = nil
			continue
		}
		if !t.Active(p) {
			if qs[p] != nil {
				// Farewell: the removed replica may not have executed the
				// config command itself (it could be lagging), so tell it
				// directly. Close drains remaining items through the sender,
				// and peerIO keeps the link up briefly for the write.
				_, _ = qs[p].TryPut(&wire.TopoUpdate{Topo: *t})
				qs[p].Close()
				qs[p] = nil
			}
			continue
		}
		if qs[p] == nil {
			qs[p] = queue.NewBounded[wire.Message](fmt.Sprintf("SendQueue-%d", p), r.cfg.SendQueueCap)
		}
	}
	r.sendQs.Store(&qs)
}

// sendQueue returns peer p's SendQueue under the current topology (nil for
// self, removed peers, and out-of-range IDs). Lock-free.
func (r *Replica) sendQueue(p int) *queue.Bounded[wire.Message] {
	qs := *r.sendQs.Load()
	if p < 0 || p >= len(qs) {
		return nil
	}
	return qs[p]
}

// fireFaulted invokes Config.OnFaulted at most once, on its own goroutine.
func (r *Replica) fireFaulted(reason string) {
	r.faultCB.Do(func() {
		if r.cfg.OnFaulted != nil {
			go r.cfg.OnFaulted(reason)
		}
	})
}
