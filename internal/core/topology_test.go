package core

import (
	"errors"
	"testing"

	"gosmr/internal/wire"
)

// TestReconfigOutcome pins down the win/lose verdict a proposer derives from
// the committed topology: a success must mean the requested change is really
// in the committed shape, anything else is ErrReconfigConflict.
func TestReconfigOutcome(t *testing.T) {
	topo := &wire.Topology{
		Epoch:   1,
		Groups:  1,
		Peers:   []string{"p0", "p1", "", "p3"},
		Clients: []string{"c0", "c1", "", "c3"},
	}
	cases := []struct {
		name      string
		remove    int
		peer, cli string
		wantErr   bool
	}{
		{name: "add won", remove: -1, peer: "p3", cli: "c3"},
		{name: "add won, no client addr requested", remove: -1, peer: "p3"},
		{name: "add lost the slot", remove: -1, peer: "p9", cli: "c9", wantErr: true},
		{name: "add address present but client addr differs", remove: -1, peer: "p3", cli: "cX", wantErr: true},
		{name: "remove won", remove: 2},
		{name: "remove lost, peer still active", remove: 1, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := reconfigOutcome(topo, tc.remove, tc.peer, tc.cli)
			if tc.wantErr {
				if !errors.Is(err, ErrReconfigConflict) {
					t.Fatalf("got %v, want ErrReconfigConflict", err)
				}
			} else if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
		})
	}
}
